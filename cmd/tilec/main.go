// Command tilec is the tiling compiler CLI: it reads a loop-nest
// specification (JSON, or one of the built-in paper workloads), prints the
// complete compile-time analysis — tiling cone, H' and its Hermite normal
// form, strides, communication vector, tile dependencies, LDS layout — and
// emits the generated C+MPI program.
//
// Usage:
//
//	tilec -spec nest.json [-o out.c] [-report] [-sim] [-verify]
//	tilec -app sor -space 100,200 -factors 50,38,10 -family nr [-o out.c]
//
// Spec format (JSON):
//
//	{
//	  "name":   "sor",
//	  "vars":   ["t", "i", "j"],
//	  "lo":     [1, 1, 1],
//	  "hi":     [10, 10, 10],
//	  "constraints": [{"coef": [1, -1, 0], "rhs": 0}],
//	  "deps":   [[0,1,0], [0,0,1]],
//	  "skew":   [[1,0,0], [1,1,0], [2,0,1]],
//	  "tiling": {"rect": [8,8,8]} | {"rows": [["1/8","0","0"], ...]} | {"edges": [[...], ...]},
//	  "mapdim": 2,
//	  "width":  1,
//	  "kernel": "out[0] = 0.25*(R0[0]+R1[0]);",
//	  "initial": "out[0] = 0.0;"
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tilespace"
)

type specTiling struct {
	Rect  []int64    `json:"rect,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
	Edges [][]int64  `json:"edges,omitempty"`
}

type spec struct {
	Name        string       `json:"name"`
	Vars        []string     `json:"vars"`
	Lo          []int64      `json:"lo,omitempty"`
	Hi          []int64      `json:"hi,omitempty"`
	Constraints []constraint `json:"constraints,omitempty"`
	Deps        [][]int64    `json:"deps"`
	Skew        [][]int64    `json:"skew,omitempty"`
	Tiling      specTiling   `json:"tiling"`
	MapDim      *int         `json:"mapdim,omitempty"`
	Width       int          `json:"width,omitempty"`
	Kernel      string       `json:"kernel,omitempty"`
	Initial     string       `json:"initial,omitempty"`
}

type constraint struct {
	Coef []int64 `json:"coef"`
	Rhs  int64   `json:"rhs"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tilec: "+format+"\n", args...)
	os.Exit(1)
}

func parseInts(s string) []int64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			fail("bad integer list %q: %v", s, err)
		}
		out[i] = v
	}
	return out
}

func main() {
	var (
		specPath = flag.String("spec", "", "JSON loop-nest specification file ('-' for stdin)")
		srcPath  = flag.String("src", "", "loop-nest source file in the textual notation ('-' for stdin)")
		appName  = flag.String("app", "", "built-in workload: sor, jacobi, adi")
		space    = flag.String("space", "", "built-in space size, e.g. 100,200")
		factors  = flag.String("factors", "", "tile factors x,y,z for built-ins")
		family   = flag.String("family", "rect", "tiling family for built-ins: rect, nr, nr1, nr2, nr3")
		out      = flag.String("o", "", "write generated C to this file (default stdout)")
		report   = flag.Bool("report", true, "print the compile-time analysis report")
		sim      = flag.Bool("sim", false, "simulate on the FastEthernet/PIII cluster model")
		emit     = flag.Bool("emit", true, "emit the generated C program")
		doVerify = flag.Bool("verify", false, "statically certify the compiled program (comm exactness, deadlock-freedom, LDS bounds) before emission")
		suggest  = flag.Bool("suggest", false, "search rectangular and cone-derived tilings and report the ranking")
		gantt    = flag.Bool("gantt", false, "render a per-processor timeline of the simulated execution")
	)
	flag.Parse()

	var (
		prog *tilespace.Program
		opts tilespace.CodegenOptions
		err  error
	)
	switch {
	case *srcPath != "":
		prog, opts, err = fromSource(*srcPath)
	case *specPath != "":
		prog, opts, err = fromSpec(*specPath)
	case *appName != "":
		prog, opts, err = fromBuiltin(*appName, parseInts(*space), parseInts(*factors), *family)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail("%v", err)
	}

	if *report {
		fmt.Fprintln(os.Stderr, prog.Report())
	}
	if *doVerify {
		rep, err := prog.Verify()
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintln(os.Stderr, rep)
	}
	if *suggest {
		runSuggest(prog)
	}
	if *sim {
		res, err := prog.Simulate(tilespace.FastEthernetPIII())
		if err != nil {
			fail("simulate: %v", err)
		}
		fmt.Fprintf(os.Stderr, "simulated: %d procs, %d tiles, %d steps, makespan %.4fs, speedup %.2f, util %.0f%%, %d msgs / %d bytes\n",
			res.Procs, res.Tiles, res.Steps, res.Makespan, res.Speedup, res.Utilization*100, res.Messages, res.BytesSent)
	}
	if *gantt {
		tr, err := prog.SimulateTraced(tilespace.FastEthernetPIII())
		if err != nil {
			fail("gantt: %v", err)
		}
		fmt.Fprint(os.Stderr, tr.Gantt(100))
		crit, idle := tr.CriticalRank()
		fmt.Fprintf(os.Stderr, "critical rank %d idle %.0f%% of its makespan\n", crit, idle*100)
	}
	if !*emit {
		return
	}
	if opts.KernelStmt == "" {
		fail(`codegen: the spec has no "kernel" statement; add one (e.g. "out[0] = 0.25*(R0[0]+R1[0]);") or pass -emit=false for analysis only`)
	}
	src, err := prog.GenerateC(opts)
	if err != nil {
		fail("codegen: %v", err)
	}
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fail("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(src))
}

// fromSource compiles a program written in the textual loop-nest notation
// (see ParseSource): bounds, dependencies, kernel, skew, tiling and
// mapping dimension all come from the source file.
// runSuggest reruns the tile-shape search for the compiled nest and
// prints the ranking (the paper's experiment, automated).
func runSuggest(prog *tilespace.Program) {
	res, err := prog.OptimizeShape(tilespace.SearchOptions{
		Params: tilespace.FastEthernetPIII(), MapDim: -1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tilec: suggest: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "tile-shape search (%d candidates):\n", len(res.Candidates))
	top := res.Candidates
	if len(top) > 6 {
		top = top[:6]
	}
	for _, c := range top {
		fmt.Fprintf(os.Stderr, "  %-5s factors %-12s tile %6d procs %4d steps %4d predicted speedup %6.2f\n",
			c.Family, fmt.Sprint(c.Factors), c.TileSize, c.Procs, c.Estimate.Steps, c.Estimate.Speedup)
	}
}

func fromSource(path string) (*tilespace.Program, tilespace.CodegenOptions, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}
	src, err := tilespace.ParseSource(string(data))
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}
	if !src.HasTiling {
		return nil, tilespace.CodegenOptions{}, fmt.Errorf("%s: add a `tile` directive (rows of H)", path)
	}
	prog, err := tilespace.Compile(src.Nest, src.Tiling, tilespace.CompileOptions{
		MapDim: src.MapDim, Width: src.Width, Kernel: src.Kernel,
	})
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}
	return prog, tilespace.CodegenOptions{Name: "tiled", Width: src.Width, KernelStmt: src.KernelC}, nil
}

func fromSpec(path string) (*tilespace.Program, tilespace.CodegenOptions, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}
	var sp spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, tilespace.CodegenOptions{}, fmt.Errorf("parse spec: %w", err)
	}
	if len(sp.Vars) == 0 {
		return nil, tilespace.CodegenOptions{}, fmt.Errorf("spec needs vars")
	}

	b := tilespace.NewNestBuilder(sp.Vars...)
	for k := range sp.Lo {
		if k < len(sp.Hi) {
			b.Range(k, sp.Lo[k], sp.Hi[k])
		}
	}
	for _, c := range sp.Constraints {
		b.Constraint(c.Coef, c.Rhs)
	}
	for _, d := range sp.Deps {
		b.Dep(d...)
	}
	nest, err := b.Build()
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}
	if len(sp.Skew) > 0 {
		if nest, err = nest.Skew(sp.Skew); err != nil {
			return nil, tilespace.CodegenOptions{}, err
		}
	}

	var tl tilespace.Tiling
	switch {
	case len(sp.Tiling.Rect) > 0:
		tl, err = tilespace.RectangularTiling(sp.Tiling.Rect...)
	case len(sp.Tiling.Rows) > 0:
		tl, err = tilespace.TilingFromRows(sp.Tiling.Rows)
	case len(sp.Tiling.Edges) > 0:
		tl, err = tilespace.TilingFromEdges(sp.Tiling.Edges)
	default:
		err = fmt.Errorf("spec needs a tiling (rect, rows or edges)")
	}
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}

	mapDim := -1
	if sp.MapDim != nil {
		mapDim = *sp.MapDim
	}
	prog, err := tilespace.Compile(nest, tl, tilespace.CompileOptions{MapDim: mapDim, Width: max(1, sp.Width)})
	if err != nil {
		return nil, tilespace.CodegenOptions{}, err
	}
	// No placeholder for a missing kernel: emitting "out[0] = 0.0;" would
	// compile to a silently-wrong program. KernelStmt stays empty and
	// codegen rejects it when (and only when) emission is requested, so
	// analysis-only runs (-emit=false) still work on kernel-less specs.
	return prog, tilespace.CodegenOptions{
		Name: defaultStr(sp.Name, "tiled"), Width: max(1, sp.Width),
		KernelStmt: sp.Kernel, InitialStmt: sp.Initial,
	}, nil
}

func defaultStr(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
