package main

import (
	"fmt"

	"tilespace"
)

// builtin describes one of the paper's workloads expressed through the
// public API (the same definitions internal/apps provides for the Go
// executor, rebuilt here with C kernel statements for codegen).
type builtin struct {
	name           string
	defaultSpace   []int64
	defaultFactors []int64
	build          func(space, factors []int64, family string) (*tilespace.Program, tilespace.CodegenOptions, error)
}

func fromBuiltin(name string, space, factors []int64, family string) (*tilespace.Program, tilespace.CodegenOptions, error) {
	for _, b := range builtins {
		if b.name == name {
			if len(space) == 0 {
				space = b.defaultSpace
			}
			if len(factors) == 0 {
				factors = b.defaultFactors
			}
			return b.build(space, factors, family)
		}
	}
	return nil, tilespace.CodegenOptions{}, fmt.Errorf("unknown app %q (have sor, jacobi, adi)", name)
}

var builtins = []builtin{
	{
		name:           "sor",
		defaultSpace:   []int64{100, 200},
		defaultFactors: []int64{50, 38, 20},
		build: func(space, f []int64, family string) (*tilespace.Program, tilespace.CodegenOptions, error) {
			if len(space) != 2 || len(f) != 3 {
				return nil, tilespace.CodegenOptions{}, fmt.Errorf("sor needs -space M,N and -factors x,y,z")
			}
			m, n := space[0], space[1]
			nest, err := tilespace.NewLoopNest([]string{"t", "i", "j"},
				[]int64{1, 1, 1}, []int64{m, n, n},
				[][]int64{{0, 1, 0}, {0, 0, 1}, {1, -1, 0}, {1, 0, -1}, {1, 0, 0}})
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			if nest, err = nest.Skew([][]int64{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}}); err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			x, y, z := itoa(f[0]), itoa(f[1]), itoa(f[2])
			var rows [][]string
			switch family {
			case "rect":
				rows = [][]string{{"1/" + x, "0", "0"}, {"0", "1/" + y, "0"}, {"0", "0", "1/" + z}}
			case "nr":
				rows = [][]string{{"1/" + x, "0", "0"}, {"0", "1/" + y, "0"}, {"-1/" + z, "0", "1/" + z}}
			default:
				return nil, tilespace.CodegenOptions{}, fmt.Errorf("sor families: rect, nr")
			}
			tl, err := tilespace.TilingFromRows(rows)
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			prog, err := tilespace.Compile(nest, tl, tilespace.CompileOptions{MapDim: 2})
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			return prog, tilespace.CodegenOptions{
				Name:        "sor_" + family,
				KernelStmt:  "out[0] = 0.3*(R0[0] + R1[0] + R2[0] + R3[0]) - 0.2*R4[0];",
				InitialStmt: "out[0] = 0.5;",
			}, nil
		},
	},
	{
		name:           "jacobi",
		defaultSpace:   []int64{50, 100},
		defaultFactors: []int64{10, 38, 38},
		build: func(space, f []int64, family string) (*tilespace.Program, tilespace.CodegenOptions, error) {
			if len(space) != 2 || len(f) != 3 {
				return nil, tilespace.CodegenOptions{}, fmt.Errorf("jacobi needs -space T,N and -factors x,y,z")
			}
			tt, n := space[0], space[1]
			nest, err := tilespace.NewLoopNest([]string{"t", "i", "j"},
				[]int64{1, 1, 1}, []int64{tt, n, n},
				[][]int64{{1, 0, 0}, {1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1}})
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			if nest, err = nest.Skew([][]int64{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}}); err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			x, y, z := itoa(f[0]), itoa(f[1]), itoa(f[2])
			var rows [][]string
			switch family {
			case "rect":
				rows = [][]string{{"1/" + x, "0", "0"}, {"0", "1/" + y, "0"}, {"0", "0", "1/" + z}}
			case "nr":
				rows = [][]string{{"1/" + x, "-1/" + itoa(2*f[0]), "0"}, {"0", "1/" + y, "0"}, {"0", "0", "1/" + z}}
			default:
				return nil, tilespace.CodegenOptions{}, fmt.Errorf("jacobi families: rect, nr")
			}
			tl, err := tilespace.TilingFromRows(rows)
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			prog, err := tilespace.Compile(nest, tl, tilespace.CompileOptions{MapDim: 0})
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			return prog, tilespace.CodegenOptions{
				Name:        "jacobi_" + family,
				KernelStmt:  "out[0] = 0.2*(R0[0] + R1[0] + R2[0] + R3[0] + R4[0]);",
				InitialStmt: "out[0] = 0.5;",
			}, nil
		},
	},
	{
		name:           "adi",
		defaultSpace:   []int64{100, 256},
		defaultFactors: []int64{10, 65, 65},
		build: func(space, f []int64, family string) (*tilespace.Program, tilespace.CodegenOptions, error) {
			if len(space) != 2 || len(f) != 3 {
				return nil, tilespace.CodegenOptions{}, fmt.Errorf("adi needs -space T,N and -factors x,y,z")
			}
			tt, n := space[0], space[1]
			nest, err := tilespace.NewLoopNest([]string{"t", "i", "j"},
				[]int64{1, 1, 1}, []int64{tt, n, n},
				[][]int64{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}})
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			x, y, z := itoa(f[0]), itoa(f[1]), itoa(f[2])
			rows := [][]string{{"1/" + x, "0", "0"}, {"0", "1/" + y, "0"}, {"0", "0", "1/" + z}}
			switch family {
			case "rect":
			case "nr1":
				rows[0][1] = "-1/" + x
			case "nr2":
				rows[0][2] = "-1/" + x
			case "nr3":
				rows[0][1], rows[0][2] = "-1/"+x, "-1/"+x
			default:
				return nil, tilespace.CodegenOptions{}, fmt.Errorf("adi families: rect, nr1, nr2, nr3")
			}
			tl, err := tilespace.TilingFromRows(rows)
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			prog, err := tilespace.Compile(nest, tl, tilespace.CompileOptions{MapDim: 0, Width: 2})
			if err != nil {
				return nil, tilespace.CodegenOptions{}, err
			}
			return prog, tilespace.CodegenOptions{
				Name:  "adi_" + family,
				Width: 2,
				KernelStmt: "double a = 0.05; " +
					"out[0] = R0[0] + R2[0]*a/R2[1] - R1[0]*a/R1[1]; " +
					"out[1] = R0[1] - a*a/R2[1] - a*a/R1[1];",
				InitialStmt: "out[0] = 1.0; out[1] = 2.0;",
			}, nil
		},
	},
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }
