package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got := parseInts("1, 2,3")
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v", got)
	}
	if parseInts("") != nil {
		t.Error("empty string should give nil")
	}
}

func TestFromBuiltinAll(t *testing.T) {
	cases := []struct {
		app     string
		space   []int64
		factors []int64
		family  string
	}{
		{"sor", []int64{12, 24}, []int64{6, 10, 8}, "rect"},
		{"sor", []int64{12, 24}, []int64{6, 10, 8}, "nr"},
		{"jacobi", []int64{8, 16}, []int64{2, 6, 6}, "rect"},
		{"jacobi", []int64{8, 16}, []int64{2, 6, 6}, "nr"},
		{"adi", []int64{8, 16}, []int64{2, 4, 4}, "rect"},
		{"adi", []int64{8, 16}, []int64{2, 4, 4}, "nr1"},
		{"adi", []int64{8, 16}, []int64{2, 4, 4}, "nr2"},
		{"adi", []int64{8, 16}, []int64{2, 4, 4}, "nr3"},
	}
	for _, c := range cases {
		prog, opts, err := fromBuiltin(c.app, c.space, c.factors, c.family)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.app, c.family, err)
		}
		if prog.Processors() < 1 {
			t.Errorf("%s/%s: no processors", c.app, c.family)
		}
		src, err := prog.GenerateC(opts)
		if err != nil {
			t.Fatalf("%s/%s codegen: %v", c.app, c.family, err)
		}
		if !strings.Contains(src, "MPI_Init") {
			t.Errorf("%s/%s: incomplete C", c.app, c.family)
		}
	}
}

func TestFromBuiltinDefaultsAndErrors(t *testing.T) {
	if _, _, err := fromBuiltin("nosuch", nil, nil, "rect"); err == nil {
		t.Error("unknown app not rejected")
	}
	if _, _, err := fromBuiltin("sor", []int64{1}, []int64{1, 2, 3}, "rect"); err == nil {
		t.Error("bad space arity not rejected")
	}
	if _, _, err := fromBuiltin("sor", []int64{12, 24}, []int64{6, 10, 8}, "bogus"); err == nil {
		t.Error("unknown family not rejected")
	}
	if _, _, err := fromBuiltin("adi", []int64{8, 16}, []int64{2, 4, 4}, "nr"); err == nil {
		t.Error("adi family 'nr' should be rejected (nr1/nr2/nr3)")
	}
	// Defaults resolve to the paper's configurations.
	if _, _, err := fromBuiltin("jacobi", nil, nil, "rect"); err != nil {
		t.Errorf("jacobi defaults failed: %v", err)
	}
}

func TestFromSpec(t *testing.T) {
	spec := `{
		"name": "demo",
		"vars": ["i", "j"],
		"lo": [0, 0],
		"hi": [15, 15],
		"deps": [[1, 0], [0, 1]],
		"tiling": {"rect": [4, 4]},
		"mapdim": 0,
		"kernel": "out[0] = R0[0] + R1[0] + 1.0;"
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, opts, err := fromSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TileSize() != 16 {
		t.Errorf("TileSize = %d", prog.TileSize())
	}
	src, err := prog.GenerateC(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "demo") {
		t.Error("spec name not propagated")
	}
}

func TestFromSpecWithConstraintsAndSkew(t *testing.T) {
	spec := `{
		"vars": ["t", "i"],
		"lo": [1, 1],
		"hi": [6, 6],
		"constraints": [{"coef": [1, -1], "rhs": 3}],
		"deps": [[1, -1], [1, 0]],
		"skew": [[1, 0], [1, 1]],
		"tiling": {"edges": [[2, 0], [-2, 3]]}
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, opts, err := fromSpec(path)
	if err != nil {
		t.Fatalf("constrained spec failed: %v", err)
	}
	// A kernel-less spec is fine for analysis, but emission must hard-fail
	// rather than generate a silently-wrong placeholder kernel.
	if opts.KernelStmt != "" {
		t.Fatalf("kernel-less spec produced KernelStmt %q, want empty", opts.KernelStmt)
	}
	if src, err := prog.GenerateC(opts); err == nil || strings.Contains(src, "TODO") {
		t.Fatalf("emission without a kernel must error, got err=%v", err)
	}
}

func TestFromSpecErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"bad json":  `{`,
		"no vars":   `{"deps": [], "tiling": {"rect": [2]}}`,
		"no tiling": `{"vars": ["i"], "lo": [0], "hi": [5], "deps": [[1]], "tiling": {}}`,
		"bad rows":  `{"vars": ["i"], "lo": [0], "hi": [5], "deps": [[1]], "tiling": {"rows": [["x"]]}}`,
	}
	for name, body := range cases {
		if _, _, err := fromSpec(write(strings.ReplaceAll(name, " ", "_")+".json", body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, _, err := fromSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file not reported")
	}
}

func TestFromSource(t *testing.T) {
	src := `
for i = 0 .. 11
for j = 0 .. 11
A[i,j] = A[i-1,j] + A[i,j-1] + 1
tile 1/3 0 / 0 1/3
map 1
`
	path := filepath.Join(t.TempDir(), "loop.nest")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, opts, err := fromSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TileSize() != 9 {
		t.Errorf("TileSize = %d", prog.TileSize())
	}
	cSrc, err := prog.GenerateC(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cSrc, "R0[0]") {
		t.Error("kernel reads missing from generated C")
	}
	// Missing tile directive is an error.
	noTile := filepath.Join(t.TempDir(), "nt.nest")
	if err := os.WriteFile(noTile, []byte("for i = 0 .. 4\nA[i] = A[i-1]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fromSource(noTile); err == nil {
		t.Error("missing tile directive not rejected")
	}
}
