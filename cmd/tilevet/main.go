// Command tilevet is the repo's vet tool: it runs the internal/lint
// analyzers (ownedbuf, waitcheck, traceguard, lockorder, goroleak,
// sendstats) over Go packages. It speaks the `go vet -vettool`
// unitchecker protocol, so the usual invocation is
//
//	go build -o /tmp/tilevet ./cmd/tilevet
//	go vet -vettool=/tmp/tilevet ./...
//
// The protocol has three entry points, all driven by cmd/go:
//
//   - tilevet -V=full            → print a version line ending in a
//     content hash of the executable, used as the vet cache key;
//   - tilevet -flags             → print a JSON description of the
//     tool's flags (none beyond the standard ones);
//   - tilevet [flags] foo.cfg    → analyze one package described by the
//     JSON config cmd/go wrote, exiting 2 if there are findings.
//
// tilevet can also be pointed at a directory of import-free Go files
// (`tilevet ./internal/lint/testdata/ownedbuf`) for quick experiments;
// full builds should go through `go vet` so imports resolve from export
// data.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tilespace/internal/lint"
)

func main() {
	// The -V and -flags probes arrive before flag parsing in cmd/go's
	// protocol; handle them on the raw argument list.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	analyzers := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tilevet [-analyzers=a,b] <config.cfg | package-dir>...\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fatal("%v", err)
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	exit := 0
	for _, arg := range flag.Args() {
		var diags []diagJSON
		var err error
		if strings.HasSuffix(arg, ".cfg") {
			diags, err = runConfig(arg, selected)
		} else {
			diags, err = runDir(arg, selected)
		}
		if err != nil {
			fatal("%v", err)
		}
		for _, d := range diags {
			if *jsonOut {
				enc, _ := json.Marshal(d)
				fmt.Println(string(enc))
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s\n", d.Posn, d.Message)
			}
			exit = 2
		}
	}
	os.Exit(exit)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tilevet: "+format+"\n", args...)
	os.Exit(1)
}

// printVersion implements the -V=full probe: cmd/go caches vet results
// keyed on this line, so it must change whenever the tool's behavior
// could — hashing the executable itself guarantees that.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum)
		}
	}
	fmt.Printf("tilevet version devel buildID=%s\n", id)
}

type diagJSON struct {
	Posn     string `json:"posn"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// vetConfig mirrors the JSON cmd/go writes for each vetted package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runConfig analyzes the single package described by a cmd/go vet config.
func runConfig(path string, analyzers []*lint.Analyzer) ([]diagJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse vet config %s: %w", path, err)
	}

	// cmd/go expects the facts file regardless; the analyzers export no
	// facts, so an empty one satisfies downstream PackageVetx consumers.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("write vetx: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Imports resolve from the compiler export data cmd/go listed in
	// PackageFile, after translating source import paths through
	// ImportMap (vendoring, test variants).
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(pkgPath string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[pkgPath]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", pkgPath)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		pkgPath, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if pkgPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(pkgPath)
	})

	info := newInfo()
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " X:boringcrypto"),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	return collect(fset, files, pkg, info, analyzers)
}

// runDir analyzes an import-free directory of Go files (fixture mode).
func runDir(dir string, analyzers []*lint.Analyzer) ([]diagJSON, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := newInfo()
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return nil, fmt.Errorf("directory mode cannot resolve import %q; run via go vet -vettool", path)
		}),
	}
	pkg, err := tc.Check(dir, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return collect(fset, files, pkg, info, analyzers)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

func collect(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*lint.Analyzer) ([]diagJSON, error) {
	diags, err := lint.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]diagJSON, len(diags))
	for i, d := range diags {
		out[i] = diagJSON{
			Posn:     fset.Position(d.Pos).String(),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	return out, nil
}
