package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles tilevet into a temp dir and returns the binary path
// plus the repo root.
func buildTool(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "tilevet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/tilevet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build tilevet: %v\n%s", err, out)
	}
	return bin, root
}

// TestVersionProbe checks the -V=full handshake cmd/go uses as its vet
// cache key: one line, tool name first, ending in a content hash.
func TestVersionProbe(t *testing.T) {
	bin, _ := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	if !strings.HasPrefix(line, "tilevet version ") || !strings.Contains(line, "buildID=") {
		t.Fatalf("-V=full output %q lacks the name/buildID shape cmd/go expects", line)
	}
	flags, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(flags)) != "[]" {
		t.Fatalf("-flags output %q, want []", flags)
	}
}

// TestVetToolCleanOnTree is the acceptance gate: go vet with tilevet as
// the vettool must pass over the entire module — the analyzers produce
// zero false positives on the shipped code, and the unitchecker protocol
// (config files, export-data imports, vetx outputs) round-trips through
// cmd/go.
func TestVetToolCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a full go vet of the module")
	}
	bin, root := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}

// TestVetToolCatchesSeededViolation proves the tool actually fires under
// the go vet protocol, not just in-process: a throwaway module with a
// buffer-reuse bug must make the vet run fail.
func TestVetToolCatchesSeededViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet on a scratch module")
	}
	bin, _ := buildTool(t)
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"scratch.go": `package scratch

type world struct{}

func (w *world) SendOwned(dst, tag int, buf []float64) {}

func leak(w *world, buf []float64) float64 {
	w.SendOwned(0, 1, buf)
	return buf[0]
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a seeded ownedbuf violation:\n%s", out)
	}
	if !strings.Contains(string(out), "buf is used after being passed to SendOwned") {
		t.Fatalf("vet failed for the wrong reason: %v\n%s", err, out)
	}
}
