// Command clusterbench reproduces every figure of the paper's evaluation
// (§4) on the simulated 16-node Pentium-III/FastEthernet cluster:
//
//	Fig. 5/6  — SOR:    maximum speedups per space; speedups vs tile size
//	Fig. 7/8  — Jacobi: maximum speedups per space; speedups vs tile size
//	Fig. 9/10 — ADI:    maximum speedups per space; speedups vs tile size
//
// plus the §4.4 average-improvement summary and the overlap-scheduling
// ablation ([8], the paper's future work).
//
// Usage:
//
//	clusterbench                  # all figures at full paper scale
//	clusterbench -fig 6           # one figure
//	clusterbench -scale 4         # shrink every space dimension 4×
//	clusterbench -overlap         # also run the overlap ablation (simulator)
//	clusterbench -execablation    # run blocking vs overlapped in the real runtime
//	clusterbench -intrabench BENCH_intra.json  # sweep the intra-tile worker pool
//	clusterbench -wirebench BENCH_wire.json    # ping-pong the wire transports, fit α+β
//	clusterbench -fig none -wirecheck wirecheck.json  # model-check the resume protocol
//	clusterbench -trace out.json  # trace the real runtime, export Chrome JSON
//	clusterbench -gantt           # text Gantt of the measured SOR timeline
//	clusterbench -faults          # fault-injection degradation, measured vs predicted
//	clusterbench -fig none -dynbench BENCH_dyn.json  # static vs dynamic scheduling under faults
//	clusterbench -faulttrace f.json  # also export the crash-restart run's timeline
//	clusterbench -o results.txt   # tee output to a file
//
// -execablation selects between blocking and overlapped (Isend) execution
// in the in-process runtime under the simulator's injected cost model and
// checks that the measured winner matches the simulator's prediction.
//
// -trace runs SOR/Jacobi/ADI through the real runtime with the per-rank
// tracer attached, compares measured phase fractions against
// simnet.SimulateTraced, and writes the measured 16-rank SOR timeline as
// Chrome trace_event JSON (open in chrome://tracing or ui.perfetto.dev).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tilespace/internal/bench"
	"tilespace/internal/simnet"
	"tilespace/internal/verify/wirecheck"
)

func main() {
	var (
		figFlag  = flag.String("fig", "all", "figure to run: 5..10, all, or none (ablations only)")
		scale    = flag.Int64("scale", 1, "shrink space dimensions by this factor (1 = paper scale)")
		overlap  = flag.Bool("overlap", false, "also run the computation-communication overlap ablation")
		execAbl  = flag.Bool("execablation", false, "run blocking vs overlapped communication in the real runtime and compare with the simulator's prediction")
		execPerf = flag.String("execbench", "", "measure the compiled-plan executor against the legacy per-point one and write the JSON snapshot to this path (e.g. BENCH_exec.json)")
		intraPth = flag.String("intrabench", "", "sweep the intra-tile worker pool over a single-rank Jacobi chain and write the JSON snapshot to this path (e.g. BENCH_intra.json)")
		tracePth = flag.String("trace", "", "trace the real runtime and write the measured SOR timeline as Chrome trace_event JSON to this path")
		gantt    = flag.Bool("gantt", false, "with -trace (or alone): render a text Gantt of the measured SOR timeline")
		faults   = flag.Bool("faults", false, "run the fault-injection degradation scenarios in the real runtime and compare with simnet's prediction")
		faultTr  = flag.String("faulttrace", "", "with -faults: write the measured crash-restart timeline as Chrome trace_event JSON to this path")
		servePth = flag.String("serve", "", "load-test the tiling service (cold compile vs shared plan cache) and write the JSON snapshot to this path (e.g. BENCH_serve.json)")
		wirePth  = flag.String("wirebench", "", "ping-pong the wire transports (in-process channel, loopback TCP), fit per-message and per-value costs against the simnet model, and write the JSON snapshot to this path (e.g. BENCH_wire.json)")
		wireChk  = flag.String("wirecheck", "", "exhaustively model-check the TCP resume protocol (certification matrix plus seeded mutations) and write the JSON report to this path (e.g. wirecheck.json)")
		dynPth   = flag.String("dynbench", "", "run the static-vs-dynamic scheduling ablation under the fault classes, certify every dynamic firing order, and write the JSON snapshot to this path (e.g. BENCH_dyn.json)")
		outPath  = flag.String("o", "", "also write the report to this file")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	figs, err := bench.Figures(bench.Scale(*scale))
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
		os.Exit(1)
	}
	par := simnet.FastEthernetPIII()

	fmt.Fprintf(out, "tilespace clusterbench — simulated %s cluster model, scale 1/%d\n",
		"FastEthernet + Pentium-III/500", *scale)
	fmt.Fprintf(out, "(paper: Goumas et al., Compiling Tiled Iteration Spaces for Clusters, CLUSTER 2002)\n\n")

	improvements := map[string]float64{}
	matched := 0
	for _, f := range figs {
		if *figFlag == "none" {
			break
		}
		if *figFlag != "all" && f.ID != "fig"+*figFlag {
			continue
		}
		matched++
		start := time.Now()
		fr, err := f.Run(par)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Fprint(out, fr.Render())
		fmt.Fprintf(out, "(%s computed in %.1fs)\n\n", f.ID, time.Since(start).Seconds())
		switch f.ID {
		case "fig5":
			improvements["SOR"] = fr.AverageImprovement()
		case "fig7":
			improvements["Jacobi"] = fr.AverageImprovement()
		case "fig9":
			improvements["ADI"] = fr.AverageImprovement()
		}
	}

	if *figFlag != "all" && *figFlag != "none" && matched == 0 {
		fmt.Fprintf(os.Stderr, "clusterbench: no figure %q (use 5..10, all, or none)\n", *figFlag)
		os.Exit(2)
	}

	if len(improvements) > 0 {
		fmt.Fprintf(out, "== §4.4 summary: average speedup improvement of non-rectangular over rectangular ==\n")
		for _, app := range []string{"SOR", "Jacobi", "ADI"} {
			if v, ok := improvements[app]; ok {
				paper := map[string]float64{"SOR": 17.3, "Jacobi": 9.1, "ADI": 10.1}[app]
				fmt.Fprintf(out, "%-8s measured %+6.1f%%   (paper: %+.1f%%)\n", app, v, paper)
			}
		}
		fmt.Fprintln(out)
	}

	if *overlap {
		runOverlapAblation(out, bench.Scale(*scale), par)
	}

	if *execAbl {
		runExecAblation(out, par)
	}

	if *execPerf != "" {
		runExecPerf(out, *execPerf)
	}

	if *intraPth != "" {
		runIntraPerf(out, *intraPth)
	}

	if *tracePth != "" || *gantt {
		runTraceReport(out, *tracePth, *gantt, par)
	}

	if *faults || *faultTr != "" {
		runFaultReport(out, *faultTr, par)
	}

	if *servePth != "" {
		runServeBench(out, *servePth)
	}

	if *wirePth != "" {
		runWireBench(out, *wirePth)
	}

	if *wireChk != "" {
		runWireCheck(out, *wireChk)
	}

	if *dynPth != "" {
		runDynBench(out, *dynPth, par)
	}
}

// runDynBench runs the static-vs-dynamic fault ablation plus the
// firing-order certification matrix and writes the committed snapshot.
// The acceptance bar is enforced here, not only in CI: every run must be
// bit-identical with a certified firing order, dynamic must never lose to
// static under a fault, and at least one of the straggler/jittery-link
// scenarios must recover >= 1.1x makespan.
func runDynBench(out io.Writer, path string, par simnet.Params) {
	// Same cost balance as the fault report, scaled into OS-timer range.
	par.Bandwidth = 3e5
	par.IterTime = 5e-6
	e, err := bench.RunDynExperiment(par, 10)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: dynbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(out, e.Render())
	fmt.Fprintln(out)
	js, err := e.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: dynbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(js, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: dynbench: %v\n", err)
		os.Exit(1)
	}
	if err := e.Gate(); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: dynbench: gate FAILED (snapshot in %s): %v\n", path, err)
		os.Exit(1)
	}
}

// wirecheckReport is the committed/artifacted shape of one full
// certification run: every matrix configuration exhausted, every seeded
// mutation rejected with its counterexample trace.
type wirecheckReport struct {
	Matrix    []wirecheckConfigReport   `json:"matrix"`
	Mutations []wirecheckMutationReport `json:"mutations"`
	Ok        bool                      `json:"ok"`
}

type wirecheckConfigReport struct {
	Name        string  `json:"name"`
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	Detected    int     `json:"detected_failures,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Ok          bool    `json:"ok"`
	Truncated   bool    `json:"truncated,omitempty"`
	Violation   string  `json:"violation,omitempty"`
}

type wirecheckMutationReport struct {
	Name      string  `json:"name"`
	States    int     `json:"states"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rejected  bool    `json:"rejected"`
	Invariant string  `json:"invariant,omitempty"`
	Trace     string  `json:"trace,omitempty"`
}

// runWireCheck exhaustively model-checks the resume protocol: the
// default matrix must certify (no violation, no truncation) and every
// seeded mutation must be rejected with a concrete counterexample. Any
// other outcome fails the command; the JSON report is written either
// way so CI can archive the trace.
func runWireCheck(out io.Writer, path string) {
	rep := wirecheckReport{Ok: true}
	fmt.Fprintf(out, "== wirecheck: resume-protocol certification ==\n")
	for _, mc := range wirecheck.DefaultMatrix() {
		start := time.Now()
		res := wirecheck.Check(mc.Cfg)
		cr := wirecheckConfigReport{
			Name: mc.Name, States: res.States, Transitions: res.Transitions,
			Detected:  res.DetectedFailures,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Ok:        res.Ok(), Truncated: res.Truncated,
		}
		if res.Violation != nil {
			cr.Violation = res.Violation.String()
		}
		rep.Matrix = append(rep.Matrix, cr)
		verdict := "certified"
		if !cr.Ok {
			verdict = "FAILED"
			rep.Ok = false
		}
		fmt.Fprintf(out, "%-26s %9d states %10d transitions %8.0fms  %s\n",
			mc.Name, res.States, res.Transitions, cr.ElapsedMS, verdict)
		if cr.Violation != "" {
			fmt.Fprintf(os.Stderr, "clusterbench: wirecheck: %s:\n%s\n", mc.Name, cr.Violation)
		}
	}
	for _, m := range wirecheck.Mutations() {
		start := time.Now()
		res := wirecheck.Check(m.Cfg)
		mr := wirecheckMutationReport{
			Name: m.Name, States: res.States,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Rejected:  res.Violation != nil,
		}
		verdict := "MUTATION SURVIVED"
		if res.Violation != nil {
			mr.Invariant = res.Violation.Invariant
			mr.Trace = res.Violation.String()
			verdict = fmt.Sprintf("rejected (%s, %d-step trace)", mr.Invariant, len(res.Violation.Steps))
		} else {
			rep.Ok = false
			fmt.Fprintf(os.Stderr, "clusterbench: wirecheck: mutation %s certified cleanly — the protocol core no longer depends on this decision\n", m.Name)
		}
		rep.Mutations = append(rep.Mutations, mr)
		fmt.Fprintf(out, "%-26s %9d states  %s\n", "mutation:"+m.Name, res.States, verdict)
	}
	fmt.Fprintln(out)

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: wirecheck: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(js, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: wirecheck: %v\n", err)
		os.Exit(1)
	}
	if !rep.Ok {
		fmt.Fprintf(os.Stderr, "clusterbench: wirecheck: certification FAILED (report in %s)\n", path)
		os.Exit(1)
	}
}

// runWireBench measures the point-to-point (α, β) of every wire
// transport by loopback ping-pong and writes the committed snapshot.
// No timing gate: loopback numbers are host-dependent by nature, and
// the snapshot records them honestly next to the FastEthernet model.
func runWireBench(out io.Writer, path string) {
	perf, err := bench.RunWirePerf(400)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: wirebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(out, perf.Render())
	fmt.Fprintln(out)
	js, err := perf.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: wirebench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: wirebench: %v\n", err)
		os.Exit(1)
	}
}

// runServeBench drives the mixed-workload client fleet against a cold
// and a warm tiling service and writes the committed snapshot. The
// acceptance bar lives here, not just in CI: a snapshot that doesn't
// clear a 5x warm/cold speedup or perturbs a checksum fails the command.
func runServeBench(out io.Writer, path string) {
	exp, err := bench.RunServeExperiment(8, 48)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(out, exp.Render())
	fmt.Fprintln(out)
	if !exp.ChecksumsStable {
		fmt.Fprintln(os.Stderr, "clusterbench: serve: caching changed a computed result")
		os.Exit(1)
	}
	if exp.Speedup < 5 {
		fmt.Fprintf(os.Stderr, "clusterbench: serve: warm/cold speedup %.1fx, want >= 5x\n", exp.Speedup)
		os.Exit(1)
	}
	js, err := exp.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: serve: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: serve: %v\n", err)
		os.Exit(1)
	}
}

// runFaultReport runs the fault-injection scenarios (straggler, slow
// link, crash with checkpointed restart) through the real runtime and
// prints the measured-vs-predicted degradation table; optionally exports
// the measured crash-restart timeline — fault markers included — as
// Chrome trace_event JSON.
func runFaultReport(out io.Writer, path string, par simnet.Params) {
	// Same cost balance as the trace report, scaled into OS-timer range.
	par.Bandwidth = 3e5
	par.IterTime = 5e-6
	e, err := bench.RunFaultExperiment(par, 10)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: faults: %v\n", err)
		return
	}
	fmt.Fprint(out, e.Render())
	if !e.Agree() {
		fmt.Fprintf(out, "WARNING: degradation diverged beyond ±%.0f%%\n", bench.FaultTolerance*100)
	}
	fmt.Fprintln(out)

	if path != "" {
		crash := e.Rows[len(e.Rows)-1]
		js, err := crash.Trace.TraceEventJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: faults: %v\n", err)
			return
		}
		if err := os.WriteFile(path, js, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: faults: %v\n", err)
			return
		}
		fmt.Fprintf(out, "wrote fault-run Chrome trace_event JSON (%d bytes) to %s — crash/restart appear as instant markers\n\n", len(js), path)
	}
}

// runTraceReport runs the measured-vs-simulated phase experiment, prints
// the comparison table and the 16-rank SOR straggler summary, optionally
// renders a text Gantt over the measured timeline, and exports the SOR
// trace as Chrome trace_event JSON.
func runTraceReport(out io.Writer, path string, gantt bool, par simnet.Params) {
	// Same cost balance as the exec ablation: compute vs transfer tuned so
	// phases are visible, scaled 10× into OS-timer range.
	par.Bandwidth = 3e5
	par.IterTime = 5e-6
	e, err := bench.RunTraceExperiment(par, 10)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: trace: %v\n", err)
		return
	}
	fmt.Fprint(out, e.Render())
	if !e.Agree() {
		fmt.Fprintf(out, "WARNING: phase fractions diverged beyond ±%.2f\n", bench.PhaseTolerance)
	}
	fmt.Fprintln(out)

	sor := e.Rows[0]
	crit, idle := sor.Trace.CriticalRank()
	fmt.Fprintf(out, "SOR measured: %d ranks, %d tiles, makespan %v (sim %v); critical rank %d, %.0f%% idle\n",
		sor.Procs, sor.Tiles, sor.MeasuredMakespan.Round(time.Millisecond),
		sor.SimMakespan.Round(time.Millisecond), crit, idle*100)
	if gantt {
		fmt.Fprint(out, sor.Trace.Gantt(72))
	}
	fmt.Fprintln(out)

	if path != "" {
		js, err := sor.Trace.TraceEventJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: trace: %v\n", err)
			return
		}
		if err := os.WriteFile(path, js, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: trace: %v\n", err)
			return
		}
		fmt.Fprintf(out, "wrote Chrome trace_event JSON (%d bytes) to %s — open in chrome://tracing or ui.perfetto.dev\n\n", len(js), path)
	}
}

// runIntraPerf sweeps the per-rank worker pool over the single-rank
// Jacobi chain and writes the committed snapshot. The gate is enforced
// here, not only in CI: any max_diff breaks the run everywhere, and on a
// host with ≥ 4 cores the workers=4 compute sweep must clear 2× — on
// smaller hosts the bar cannot bind and the snapshot just records the
// honest numbers.
func runIntraPerf(out io.Writer, path string) {
	// Large (i, j) fronts (~14k points each) so per-front dispatch cost is
	// amortized the way real tiles amortize it.
	perf, err := bench.RunIntraPerf(4, 120, 7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: intrabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(out, perf.Render())
	fmt.Fprintln(out)
	for _, pt := range perf.Sweep {
		if pt.MaxDiff != 0 {
			fmt.Fprintf(os.Stderr, "clusterbench: intrabench: workers=%d diverged from serial by %g, want bit-identical\n", pt.Workers, pt.MaxDiff)
			os.Exit(1)
		}
	}
	if pt := perf.At(4); perf.Cores >= 4 && pt != nil && pt.Speedup < 2 {
		fmt.Fprintf(os.Stderr, "clusterbench: intrabench: %d cores but workers=4 speedup %.2fx, want >= 2x\n", perf.Cores, pt.Speedup)
		os.Exit(1)
	}
	js, err := perf.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: intrabench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: intrabench: %v\n", err)
		os.Exit(1)
	}
}

// runExecPerf compares the compiled-plan executor against the legacy
// per-point reference on the SOR workload (no injected costs — raw
// executor throughput) and writes the JSON snapshot next to the report.
func runExecPerf(out io.Writer, path string) {
	// Large enough that per-point work dominates the fixed per-rank costs
	// (goroutine spawn, channel setup) the two executors share.
	perf, err := bench.RunExecPerf(10, 40, 5)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: execbench: %v\n", err)
		return
	}
	fmt.Fprint(out, perf.Render())
	fmt.Fprintln(out)
	js, err := perf.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: execbench: %v\n", err)
		return
	}
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: execbench: %v\n", err)
	}
}

// runExecAblation measures blocking vs overlapped communication in the
// real in-process runtime under the simulator's injected cost model
// (wire costs via Params.NetOptions, compute via RunOptions.PointDelay)
// and reports whether the measured winner matches the simulated one.
func runExecAblation(out io.Writer, par simnet.Params) {
	// Balance compute against transfer so the overlap gain is visible,
	// then scale the model costs into OS-timer range (matching the
	// parameters validated by TestExecAblationValidatesCostModel).
	par.Bandwidth = 3e5
	par.IterTime = 5e-6
	a, err := bench.RunExecAblation(6, 16, par, 10)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: execablation: %v\n", err)
		return
	}
	fmt.Fprint(out, a.Render())
	fmt.Fprintln(out)
}

// runOverlapAblation compares blocking sends with the overlapped scheme of
// the paper's future-work reference [8] on the Fig. 6 SOR sweep.
func runOverlapAblation(out io.Writer, sc bench.Scale, par simnet.Params) {
	s, err := bench.SORSweep("ablation", 100/int64(sc)+4, 200/int64(sc)+4, []int64{5, 10, 20})
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: ablation: %v\n", err)
		return
	}
	blocking, err := s.Run(par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: ablation: %v\n", err)
		return
	}
	par.Overlap = true
	overlapped, err := s.Run(par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterbench: ablation: %v\n", err)
		return
	}
	fmt.Fprintf(out, "== ablation: blocking vs overlapped communication (SOR, %s) ==\n", s.Space)
	fmt.Fprintf(out, "%8s %12s %12s %8s\n", "z", "S(blocking)", "S(overlap)", "gain%")
	for i, pt := range blocking.Points {
		b := pt.Results["nr"].Speedup
		o := overlapped.Points[i].Results["nr"].Speedup
		fmt.Fprintf(out, "%8d %12.2f %12.2f %+7.1f%%\n", pt.Value, b, o, (o-b)/b*100)
	}
	fmt.Fprintln(out)
}
