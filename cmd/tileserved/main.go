// Command tileserved serves the tiling pipeline over HTTP: POST a
// loop-nest spec, get back the tiling analysis, the static certificate,
// the generated C+MPI program, or an executed run with its result
// digest. Compiled plans are shared across requests through a
// single-flight LRU; execution is admission-controlled.
//
//	tileserved -addr :8421 &
//	curl -s localhost:8421/v1/analyze -d '{"source":"let M = 6\nlet N = 12\nfor t = 1 .. M\nfor i = 1 .. N\nA[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + 3\ntile 1/3 0 / 0 1/4\n"}'
//	curl -s localhost:8421/metrics
//
// Endpoints: POST /v1/analyze /v1/certify /v1/codegen /v1/run;
// GET /metrics /healthz. SIGINT/SIGTERM drains: in-flight runs finish,
// new runs get 503, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tilespace/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8421", "listen address")
		cache      = flag.Int("cache", 256, "compiled-plan cache capacity in entries (0 disables caching)")
		inflight   = flag.Int("inflight", 4, "maximum concurrently executing runs")
		queue      = flag.Int("queue", 16, "maximum runs queued for a slot before 429")
		maxranks   = flag.Int("maxranks", 64, "per-request rank budget; larger distributions get 413")
		watchdog   = flag.Duration("watchdog", 30*time.Second, "per-run deadlock watchdog (0 disables)")
		retryafter = flag.Duration("retryafter", time.Second, "Retry-After hint on 429 responses")
		drainwait  = flag.Duration("drainwait", 30*time.Second, "how long shutdown waits for in-flight runs")
	)
	flag.Parse()

	cfg := serve.Config{
		CacheCapacity: *cache,
		MaxInFlight:   *inflight,
		MaxQueue:      *queue,
		MaxRanks:      *maxranks,
		Watchdog:      *watchdog,
		RetryAfter:    *retryafter,
	}
	if *cache <= 0 {
		cfg = cfg.Uncached()
	}
	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tileserved: listening on %s (cache %d, inflight %d, queue %d, maxranks %d)\n",
		*addr, *cache, *inflight, *queue, *maxranks)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "tileserved: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "tileserved: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainwait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "tileserved: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "tileserved: shutdown: %v\n", err)
		os.Exit(1)
	}
}
