package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestServedEndToEnd builds the binary, boots it on a free port, drives
// one request through the full stack, and checks SIGTERM drains to a
// clean exit. Skipped in -short mode: it compiles the binary.
func TestServedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "tileserved")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the listener.
	url := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v\n%s", err, stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	spec := "let M = 6\nlet N = 12\nfor t = 1 .. M\nfor i = 1 .. N\nA[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + 3\ntile 1/3 0 / 0 1/4\n"
	body := fmt.Sprintf(`{"source":%q}`, spec)
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not exit after SIGTERM\n%s", stderr.String())
	}
}
