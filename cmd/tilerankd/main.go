// Command tilerankd runs ONE rank of a tiled program as its own OS
// process, wired to its peers over the TCP mesh transport. A driver
// (tests, a launcher script) pre-allocates one listen address per rank,
// writes the shared rendezvous file, and starts one tilerankd per rank;
// each process compiles the identical spec, joins the mesh, runs its
// tile chain, and writes its result fragment — owned values in global
// scan order plus its row of the traffic matrix — for the driver to
// merge (internal/procrun.Merge) into the exact Global and Stats a
// single-process run would produce.
//
//	tilerankd -rank 0 -peers peers.json -spec spec.dsl -result rank0.json
//
// With -ckpt the rank snapshots its chain every -every committed tiles
// (gob, atomic rename); relaunching after a kill with the same flags
// restores the snapshot, seeds the mesh's stream counters before
// accepting any peer handshake (the resume protocol's welcome counts
// must reflect the restored state, not zero), and resumes
// mid-conversation: peers resend what the dead process never consumed
// and suppress what it already has.
//
// SIGTERM/SIGINT abort the run via the transport-failure path: in-flight
// blocking calls unwind, the mesh closes, and the process exits 1 with
// the signal named on stderr — no result file is written.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
	"tilespace/internal/procrun"
)

func main() {
	var (
		rank       = flag.Int("rank", -1, "this process's rank (required)")
		peers      = flag.String("peers", "", "rendezvous file: world size and per-rank listen addresses (required)")
		spec       = flag.String("spec", "", "DSL spec file (required)")
		result     = flag.String("result", "", "result fragment output path (required)")
		overlap    = flag.Bool("overlap", false, "use non-blocking Isends (computation-communication overlap)")
		workers    = flag.Int("workers", 1, "intra-tile worker pool size (0 = GOMAXPROCS-aware)")
		watchdog   = flag.Duration("watchdog", 30*time.Second, "deadlock watchdog (0 disables)")
		ckpt       = flag.String("ckpt", "", "checkpoint file; enables snapshot/restore when set")
		every      = flag.Int64("every", 2, "checkpoint cadence in committed tiles")
		peerwait   = flag.Duration("peerwait", 10*time.Second, "how long to wait for an absent peer before failing")
		heartbeat  = flag.Duration("heartbeat", 0, "liveness beacon interval (0 = transport default)")
		pointdelay = flag.Duration("pointdelay", 0, "injected per-point compute cost (test pacing)")
	)
	flag.Parse()
	if err := run(*rank, *peers, *spec, *result, *overlap, *workers,
		*watchdog, *ckpt, *every, *peerwait, *heartbeat, *pointdelay); err != nil {
		fmt.Fprintf(os.Stderr, "tilerankd: %v\n", err)
		os.Exit(1)
	}
}

func run(rank int, peersPath, specPath, resultPath string, overlap bool, workers int,
	watchdog time.Duration, ckptPath string, every int64,
	peerwait, heartbeat, pointdelay time.Duration) error {
	if rank < 0 || peersPath == "" || specPath == "" || resultPath == "" {
		return fmt.Errorf("-rank, -peers, -spec and -result are required")
	}
	source, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	prog, err := procrun.Compile(string(source))
	if err != nil {
		return err
	}
	rv, err := procrun.ReadRendezvous(peersPath)
	if err != nil {
		return err
	}
	if rv.Size != prog.Dist.NumProcs() {
		return fmt.Errorf("rendezvous has %d ranks, spec distributes over %d", rv.Size, prog.Dist.NumProcs())
	}
	if rank >= rv.Size {
		return fmt.Errorf("rank %d outside world of %d", rank, rv.Size)
	}

	var snap *exec.RankSnapshot
	if ckptPath != "" {
		if snap, err = procrun.LoadSnapshot(ckptPath); err != nil {
			return err
		}
	}

	mesh, err := mpi.NewTCPMesh(mpi.TCPConfig{
		Size:      rv.Size,
		Local:     []int{rank},
		Listen:    rv.Addrs[rank],
		Addrs:     rv.Addrs,
		Heartbeat: heartbeat,
		PeerWait:  peerwait,
		Hold:      snap != nil,
	})
	if err != nil {
		return err
	}
	world := mpi.NewRemoteWorld(rv.Size, []int{rank}, mpi.Options{Watchdog: watchdog}, mesh)
	defer world.Close()
	if snap != nil {
		// Seed the resume protocol before any peer can handshake: the
		// welcome counts and outbound sequence numbers must describe the
		// restored conversation, not a fresh one.
		mesh.RestoreRecvStreams(rank, snap.Recv)
		mesh.RestoreSentStreams(rank, snap.Sent)
		world.RestoreStreams(rank, snap.Recv)
		mesh.Release()
		fmt.Fprintf(os.Stderr, "tilerankd: rank %d restored at tile %d from %s\n", rank, snap.NextTile, ckptPath)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		world.Fail(fmt.Errorf("terminated by %v", sig))
	}()

	opt := exec.RunOptions{
		Overlap:    overlap,
		Workers:    workers,
		PointDelay: pointdelay,
		World:      world,
	}
	if ckptPath != "" {
		opt.ProcCheckpoint = &exec.ProcCheckpoint{
			Every:  every,
			Save:   func(s *exec.RankSnapshot) error { return procrun.SaveSnapshot(ckptPath, s) },
			Resume: snap,
		}
	}
	fmt.Fprintf(os.Stderr, "tilerankd: rank %d/%d listening on %s\n", rank, rv.Size, mesh.Addr())
	g, stats, err := prog.RunParallelOpts(opt)
	if err != nil {
		return err
	}
	// Finalize barrier: a rank whose chain ends early must not tear down
	// its mesh while peers still need its listener (their heartbeat and
	// resend links would surface the exit as a peer loss). Every process
	// passes this barrier before any process closes.
	// The flush matters: Barrier returns once the release frames are
	// queued, and exiting before the writer drains them would lose them.
	if err := world.RunE(func(c *mpi.Comm) { c.Barrier(); c.FlushWire() }); err != nil {
		return fmt.Errorf("finalize: %w", err)
	}

	values, err := procrun.OwnedValues(prog, g, rank)
	if err != nil {
		return err
	}
	wire, _ := world.WireStats()
	frag := &procrun.RankResult{
		Rank:    rank,
		Values:  values,
		Traffic: stats.PerRank[rank],
		Wire:    wire,
	}
	if err := procrun.WriteResult(resultPath, frag); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tilerankd: rank %d done: %d owned values, %d frames sent\n",
		rank, len(values), wire.FramesSent)
	return nil
}
