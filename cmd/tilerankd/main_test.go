package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"tilespace/internal/procrun"
)

// rankdSpec is the driver suite's workload: a 2-D skewed-dependence
// stencil whose tiling distributes over several ranks, expressed in the
// DSL so every rank process compiles the identical program. (Go-closure
// apps — the internal differential suite's SOR/ADI/Heat3D kernels —
// are not DSL-expressible, so cross-process differentials run on DSL
// specs; the in-process transport matrix covers the closure apps.)
const rankdSpec = "let M = 12\nlet N = 24\n" +
	"for t = 1 .. M\nfor i = 1 .. N\n" +
	"A[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + 3\n" +
	"tile 1/3 0 / 0 1/6\n"

var buildOnce sync.Once
var builtBin string
var buildErr error

func rankdBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tilerankd-bin-")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "tilerankd")
		if out, err := exec.Command("go", "build", "-o", builtBin, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// freePorts grabs n distinct loopback addresses by listening and
// closing; the rendezvous hands them to the rank processes.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

type rankProc struct {
	cmd    *exec.Cmd
	stderr bytes.Buffer
	done   chan error
}

func (p *rankProc) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-p.done:
		return err
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		t.Fatalf("rank process did not exit\n%s", p.stderr.String())
		return nil
	}
}

func startRank(t *testing.T, bin string, args ...string) *rankProc {
	t.Helper()
	p := &rankProc{cmd: exec.Command(bin, args...), done: make(chan error, 1)}
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.cmd.Process.Kill() })
	go func() { p.done <- p.cmd.Wait() }()
	return p
}

func writeRankdFixture(t *testing.T, dir string, procs int) (peers, spec string) {
	t.Helper()
	addrs := freePorts(t, procs)
	rv := &procrun.Rendezvous{Size: procs, Addrs: map[int]string{}}
	for r, a := range addrs {
		rv.Addrs[r] = a
	}
	peers = filepath.Join(dir, "peers.json")
	if err := procrun.WriteRendezvous(peers, rv); err != nil {
		t.Fatal(err)
	}
	spec = filepath.Join(dir, "spec.dsl")
	if err := os.WriteFile(spec, []byte(rankdSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return peers, spec
}

// TestRankdEndToEnd is the multi-process differential: build the
// binary, boot one OS process per rank, run the spec over real TCP, and
// require the merged fragments bit-identical — Global and Stats — to
// the single-process channel-fabric run of the same spec.
func TestRankdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and boots rank processes; skipped in -short")
	}
	prog, err := procrun.Compile(rankdSpec)
	if err != nil {
		t.Fatal(err)
	}
	procs := prog.Dist.NumProcs()
	if procs < 2 {
		t.Fatalf("spec distributes over %d ranks; the driver test needs at least 2", procs)
	}
	want, wantStats, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}

	bin := rankdBin(t)
	dir := t.TempDir()
	peers, spec := writeRankdFixture(t, dir, procs)

	ranks := make([]*rankProc, procs)
	for r := 0; r < procs; r++ {
		ranks[r] = startRank(t, bin,
			"-rank", strconv.Itoa(r), "-peers", peers, "-spec", spec,
			"-result", filepath.Join(dir, fmt.Sprintf("rank%d.json", r)),
			"-peerwait", "20s")
	}
	var results []*procrun.RankResult
	for r, p := range ranks {
		if err := p.wait(t, 60*time.Second); err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, p.stderr.String())
		}
		frag, err := procrun.ReadResult(filepath.Join(dir, fmt.Sprintf("rank%d.json", r)))
		if err != nil {
			t.Fatalf("rank %d result: %v", r, err)
		}
		results = append(results, frag)
	}

	got, gotStats, err := procrun.Merge(prog, results)
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := want.MaxAbsDiff(got, prog.ScanSpace); diff != 0 {
		t.Fatalf("multi-process run differs from in-process by %g at %v", diff, at)
	}
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("merged stats differ from in-process\nwant %+v\n got %+v", wantStats, gotStats)
	}
	for r, frag := range results {
		if frag.Wire.FramesSent == 0 && frag.Traffic.BlockingSends > 0 {
			t.Errorf("rank %d sent %d messages but reported zero wire frames", r, frag.Traffic.BlockingSends)
		}
	}
}

// TestRankdSIGTERM: a terminated rank exits promptly and controlled
// (error message, no result file), and its peers surface the loss as a
// transport fault instead of hanging.
func TestRankdSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and boots rank processes; skipped in -short")
	}
	prog, err := procrun.Compile(rankdSpec)
	if err != nil {
		t.Fatal(err)
	}
	procs := prog.Dist.NumProcs()
	bin := rankdBin(t)
	dir := t.TempDir()
	peers, spec := writeRankdFixture(t, dir, procs)

	ranks := make([]*rankProc, procs)
	for r := 0; r < procs; r++ {
		ranks[r] = startRank(t, bin,
			"-rank", strconv.Itoa(r), "-peers", peers, "-spec", spec,
			"-result", filepath.Join(dir, fmt.Sprintf("rank%d.json", r)),
			"-peerwait", "2s", "-pointdelay", "20ms")
	}
	// Let the mesh connect and the run start, then terminate rank 0.
	time.Sleep(500 * time.Millisecond)
	if err := ranks[0].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := ranks[0].wait(t, 15*time.Second); err == nil {
		t.Fatalf("terminated rank exited 0\n%s", ranks[0].stderr.String())
	}
	if !bytes.Contains(ranks[0].stderr.Bytes(), []byte("terminated")) {
		t.Errorf("terminated rank's stderr does not name the signal:\n%s", ranks[0].stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "rank0.json")); err == nil {
		t.Error("terminated rank wrote a result file")
	}
	// Peers lose rank 0 and must fail within PeerWait, not hang.
	for r := 1; r < procs; r++ {
		if err := ranks[r].wait(t, 30*time.Second); err == nil {
			t.Errorf("rank %d exited 0 after losing its peer\n%s", r, ranks[r].stderr.String())
		}
	}
}

// TestRankdKillRelaunchRecovers is the acceptance crash case over real
// processes: SIGKILL one rank mid-run, relaunch it from its checkpoint
// file, and require the merged result bit-identical to the in-process
// reference — the relaunched process resumes mid-conversation through
// the mesh's resume protocol (welcome counts, retained-frame resend,
// regenerated-frame suppression).
//
// Only the Global is asserted: traffic counters live in process memory,
// so the killed rank's pre-snapshot counts die with it — merged Stats
// legitimately undercount after a crash (documented in DESIGN.md).
func TestRankdKillRelaunchRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and boots rank processes; skipped in -short")
	}
	prog, err := procrun.Compile(rankdSpec)
	if err != nil {
		t.Fatal(err)
	}
	procs := prog.Dist.NumProcs()
	if procs < 2 {
		t.Fatalf("need at least 2 ranks, got %d", procs)
	}
	want, _, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}

	bin := rankdBin(t)
	dir := t.TempDir()
	peers, spec := writeRankdFixture(t, dir, procs)
	victim := 1
	ckpt := filepath.Join(dir, "rank1.ckpt")

	args := func(r int) []string {
		a := []string{
			"-rank", strconv.Itoa(r), "-peers", peers, "-spec", spec,
			"-result", filepath.Join(dir, fmt.Sprintf("rank%d.json", r)),
			"-peerwait", "30s", "-pointdelay", "4ms",
		}
		if r == victim {
			a = append(a, "-ckpt", ckpt, "-every", "1")
		}
		return a
	}
	ranks := make([]*rankProc, procs)
	for r := 0; r < procs; r++ {
		ranks[r] = startRank(t, bin, args(r)...)
	}

	// Kill the victim as soon as its first checkpoint lands.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared\n%s", ranks[victim].stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := ranks[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-ranks[victim].done

	// Relaunch with identical flags: the process restores the snapshot,
	// seeds its stream state before accepting peers, and rejoins.
	relaunched := startRank(t, bin, args(victim)...)
	if err := relaunched.wait(t, 60*time.Second); err != nil {
		t.Fatalf("relaunched rank: %v\n%s", err, relaunched.stderr.String())
	}
	if !bytes.Contains(relaunched.stderr.Bytes(), []byte("restored at tile")) {
		t.Fatalf("relaunched rank did not restore its checkpoint:\n%s", relaunched.stderr.String())
	}
	for r := 0; r < procs; r++ {
		if r == victim {
			continue
		}
		if err := ranks[r].wait(t, 60*time.Second); err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, ranks[r].stderr.String())
		}
	}

	var results []*procrun.RankResult
	for r := 0; r < procs; r++ {
		frag, err := procrun.ReadResult(filepath.Join(dir, fmt.Sprintf("rank%d.json", r)))
		if err != nil {
			t.Fatalf("rank %d result: %v", r, err)
		}
		results = append(results, frag)
	}
	got, _, err := procrun.Merge(prog, results)
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := want.MaxAbsDiff(got, prog.ScanSpace); diff != 0 {
		t.Fatalf("recovered run differs from reference by %g at %v", diff, at)
	}
}
