package tilespace

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func quickNest(t *testing.T) *LoopNest {
	t.Helper()
	n, err := NewLoopNest([]string{"i", "j"}, []int64{0, 0}, []int64{23, 19},
		[][]int64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func sumKernel(j []int64, reads [][]float64, out []float64) {
	s := 1.0
	for _, r := range reads {
		s += r[0]
	}
	out[0] = s
}

func TestFacadeEndToEnd(t *testing.T) {
	nest := quickNest(t)
	h, err := RectangularTiling(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(nest, h, CompileOptions{MapDim: -1, Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	if prog.TileSize() != 20 {
		t.Errorf("TileSize = %d", prog.TileSize())
	}
	if prog.Processors() <= 1 || prog.Tiles() != 24 {
		t.Errorf("procs = %d, tiles = %d", prog.Processors(), prog.Tiles())
	}
	seq, err := prog.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if d, at := seq.MaxAbsDiff(par); d != 0 {
		t.Fatalf("diff %g at %v", d, at)
	}
	if par.Stats.Messages == 0 {
		t.Error("expected parallel traffic")
	}
	// The top-right corner of a sum stencil counts lattice paths; just pin
	// the origin and one neighbour.
	if got := par.At([]int64{0, 0})[0]; got != 1 {
		t.Errorf("At(0,0) = %v", got)
	}
	if got := par.At([]int64{1, 0})[0]; got != 2 {
		t.Errorf("At(1,0) = %v", got)
	}
}

func TestFacadeSimulateAndReport(t *testing.T) {
	nest := quickNest(t)
	h, _ := RectangularTiling(4, 5)
	prog, err := Compile(nest, h, CompileOptions{Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prog.Simulate(FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 0 || rep.Points != 24*20 {
		t.Errorf("sim report %+v", rep)
	}
	if !strings.Contains(prog.Report(), "tiling analysis") {
		t.Error("report missing analysis")
	}
}

func TestFacadeGenerateC(t *testing.T) {
	nest := quickNest(t)
	h, _ := RectangularTiling(4, 5)
	prog, err := Compile(nest, h, CompileOptions{Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	src, err := prog.GenerateC(CodegenOptions{Name: "quick", KernelStmt: "out[0] = 1 + R0[0] + R1[0];"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "MPI_Init") || !strings.Contains(src, "quick") {
		t.Error("generated C incomplete")
	}
	if _, err := prog.GenerateC(CodegenOptions{}); err == nil {
		t.Error("missing kernel statement not rejected")
	}
}

func TestNestBuilderTriangle(t *testing.T) {
	// Triangular space 0 ≤ i, i ≤ j ≤ 9 with dep (1,0) and (0,1).
	nest, err := NewNestBuilder("i", "j").
		Range(1, 0, 9).
		Constraint([]int64{-1, 0}, 0). // -i ≤ 0
		Constraint([]int64{1, -1}, 0). // i - j ≤ 0
		Dep(1, 0).Dep(0, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	size, err := nest.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 55 {
		t.Errorf("triangle size = %d, want 55", size)
	}
	h, _ := RectangularTiling(3, 3)
	prog, err := Compile(nest, h, CompileOptions{Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := prog.RunSequential()
	par, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := seq.MaxAbsDiff(par); d != 0 {
		t.Fatal("triangle space mismatch")
	}
}

func TestNestBuilderErrors(t *testing.T) {
	if _, err := NewNestBuilder("i").Constraint([]int64{1, 2}, 0).Build(); err == nil {
		t.Error("arity mismatch not rejected")
	}
	if _, err := NewNestBuilder("i").Range(0, 0, 5).Dep(-1).Build(); err == nil {
		t.Error("negative dep not rejected")
	}
}

func TestSkewAndConeRays(t *testing.T) {
	nest, err := NewLoopNest([]string{"t", "i"}, []int64{1, 1}, []int64{8, 8},
		[][]int64{{1, -1}, {1, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nest.ConeRays(); err != nil {
		t.Fatalf("ConeRays: %v", err)
	}
	sk, err := nest.Skew([][]int64{{1, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Depth() != 2 {
		t.Error("depth changed by skew")
	}
	sug, err := sk.SuggestTiling([]int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sk, sug, CompileOptions{Kernel: sumKernel}); err != nil {
		t.Fatalf("suggested tiling failed to compile: %v", err)
	}
}

func TestTilingConstructors(t *testing.T) {
	if _, err := TilingFromRows([][]string{{"1/2", "0"}, {"0", "1/2"}}); err != nil {
		t.Error(err)
	}
	if _, err := TilingFromRows(nil); err == nil {
		t.Error("empty rows not rejected")
	}
	if _, err := TilingFromRows([][]string{{"1/2"}, {"0", "1/2"}}); err == nil {
		t.Error("ragged rows not rejected")
	}
	if _, err := TilingFromRows([][]string{{"x", "0"}, {"0", "1"}}); err == nil {
		t.Error("bad rational not rejected")
	}
	tl, err := TilingFromEdges([][]int64{{2, 0}, {-2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	nest := quickNest(t)
	prog, err := Compile(nest, tl, CompileOptions{Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	if prog.TileSize() != 8 {
		t.Errorf("TileSize = %d", prog.TileSize())
	}
}

func TestCompileErrors(t *testing.T) {
	nest := quickNest(t)
	if _, err := Compile(nest, Tiling{}, CompileOptions{}); err == nil {
		t.Error("zero tiling not rejected")
	}
	h, _ := RectangularTiling(4)
	if _, err := Compile(nest, h, CompileOptions{}); err == nil {
		t.Error("dimension mismatch not rejected")
	}
	h2, _ := RectangularTiling(4, 4)
	if _, err := Compile(nest, h2, CompileOptions{MapDim: 7}); err == nil {
		t.Error("bad map dim not rejected")
	}
}

func TestFacadeTiledSequentialAndSchedule(t *testing.T) {
	nest := quickNest(t)
	h, _ := RectangularTiling(4, 5)
	prog, err := Compile(nest, h, CompileOptions{Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := prog.RunTiledSequential()
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := seq.MaxAbsDiff(tiled); d != 0 {
		t.Fatal("tiled sequential differs")
	}
	if prog.ScheduleSteps() <= 0 {
		t.Error("ScheduleSteps should be positive")
	}
	est, err := prog.PredictSchedule(FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if est.Steps != prog.ScheduleSteps() || est.Total <= 0 {
		t.Errorf("estimate %+v inconsistent", est)
	}
}

func TestParseSourceEndToEnd(t *testing.T) {
	src := `
let N = 12
for i = 0 .. N
for j = 0 .. N
A[i,j] = A[i-1,j] + A[i,j-1] + 1
tile 1/4 0 / 0 1/4
map 1
`
	parsed, err := ParseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.HasTiling || parsed.MapDim != 0 {
		t.Fatalf("directives: tiling=%v map=%d", parsed.HasTiling, parsed.MapDim)
	}
	prog, err := Compile(parsed.Nest, parsed.Tiling, CompileOptions{
		MapDim: parsed.MapDim, Kernel: parsed.Kernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := seq.MaxAbsDiff(par); d != 0 {
		t.Fatal("parsed source verification failed")
	}
	cSrc, err := prog.GenerateC(CodegenOptions{Name: "parsed", KernelStmt: parsed.KernelC})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cSrc, "R0[0]") {
		t.Error("generated C missing dependence reads")
	}
	if _, err := ParseSource("garbage ["); err == nil {
		t.Error("bad source not rejected")
	}
}

func TestFacadeOptimize(t *testing.T) {
	nest, err := NewLoopNest([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{12, 16, 16},
		[][]int64{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(nest, SearchOptions{
		Params: FastEthernetPIII(), MapDim: -1, Factors: []int64{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no winner")
	}
	prog, err := Compile(nest, CandidateTiling(res.Best), CompileOptions{MapDim: res.Best.MapDim, Kernel: sumKernel})
	if err != nil {
		t.Fatalf("winner does not compile: %v", err)
	}
	seq, _ := prog.RunSequential()
	par, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := seq.MaxAbsDiff(par); d != 0 {
		t.Fatal("winner verification failed")
	}
}

// The facade must expose the full fault path: a crash-restart run through
// RunOptions.Faults/Checkpoint reproduces the fault-free result bit for
// bit, and SimulateFaults predicts a degraded makespan for the same plan.
func TestFacadeFaultInjection(t *testing.T) {
	nest := quickNest(t)
	h, err := RectangularTiling(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(nest, h, CompileOptions{MapDim: -1, Kernel: sumKernel})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Crash: map[int]int64{prog.Processors() / 2: 1}}
	faulty, err := prog.RunParallelOpts(RunOptions{
		Faults:     plan,
		Checkpoint: &CheckpointOptions{Every: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, at := clean.MaxAbsDiff(faulty); d != 0 {
		t.Fatalf("crash-restart run differs by %g at %v", d, at)
	}

	par := FastEthernetPIII()
	base, err := prog.Simulate(par)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := prog.SimulateFaults(par, FaultModel{
		Plan: &FaultPlan{Links: map[Link]LinkFault{{Src: 0, Dst: 1}: {Delay: time.Second}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Makespan <= base.Makespan {
		t.Errorf("predicted makespan %v not degraded from %v", pred.Makespan, base.Makespan)
	}
	tr, err := prog.SimulateFaultsTraced(par, FaultModel{
		Plan: &FaultPlan{Crash: map[int]int64{0: 1}, RestartDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var marks int
	for _, e := range tr.Events {
		if e.Kind != "" {
			marks++
		}
	}
	if marks != 2 {
		t.Errorf("traced fault simulation has %d markers, want crash+restart", marks)
	}
}

// TestFacadeTileServer mounts the re-exported service handler and
// drives one spec through analyze and run.
func TestFacadeTileServer(t *testing.T) {
	srv := NewTileServer(TileServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := "let M = 6\nlet N = 12\nfor t = 1 .. M\nfor i = 1 .. N\nA[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + 3\ntile 1/3 0 / 0 1/4\n"
	body, _ := json.Marshal(map[string]string{"source": spec})
	for _, path := range []string{"/v1/analyze", "/v1/run"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, raw)
		}
	}
}
