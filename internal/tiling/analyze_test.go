package tiling

import (
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
)

func unitDeps2() *ilin.Mat {
	return ilin.MatFromRows([]int64{1, 0}, []int64{0, 1})
}

func box2(t *testing.T, hi1, hi2 int64, deps *ilin.Mat) *loopnest.Nest {
	t.Helper()
	n, err := loopnest.Box([]string{"i", "j"}, []int64{0, 0}, []int64{hi1, hi2}, deps)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAnalyzeRect2D(t *testing.T) {
	nest := box2(t, 5, 5, unitDeps2()) // 6×6 points
	tr, _ := Rectangular(2, 3)
	ts, err := Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.NumTiles(); got != 3*2 {
		t.Errorf("NumTiles = %d, want 6", got)
	}
	if got := ts.TotalPoints(); got != 36 {
		t.Errorf("TotalPoints = %d, want 36", got)
	}
	if len(ts.DS) != 2 || !ts.DS[0].Equal(ilin.NewVec(0, 1)) || !ts.DS[1].Equal(ilin.NewVec(1, 0)) {
		t.Errorf("DS = %v", ts.DS)
	}
	if !ts.CC.Equal(ilin.NewVec(1, 2)) { // V - maxd' = (2-1, 3-1)
		t.Errorf("CC = %v", ts.CC)
	}
}

// TestAnalyzeBoundaryClamping: a 7×5 space under 3×2 tiles has ragged
// boundary tiles; the per-tile point counts must sum to the exact size.
func TestAnalyzeBoundaryClamping(t *testing.T) {
	nest := box2(t, 6, 4, unitDeps2()) // 7×5 = 35 points
	tr, _ := Rectangular(3, 2)
	ts, err := Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.NumTiles(); got != 3*3 {
		t.Errorf("NumTiles = %d, want 9", got)
	}
	if got := ts.TotalPoints(); got != 35 {
		t.Errorf("TotalPoints = %d, want 35", got)
	}
	// Corner tile (2,2) covers i=6, j=4: a single point.
	if got := ts.TilePointCount(ilin.NewVec(2, 2)); got != 1 {
		t.Errorf("corner tile count = %d, want 1", got)
	}
	if !ts.ValidTile(ilin.NewVec(2, 2)) || ts.ValidTile(ilin.NewVec(3, 0)) {
		t.Error("ValidTile mismatch")
	}
}

// TestAnalyzeNonRect2D uses a skewed tile H = [[1/2,0],[1/4,1/4]] (rows in
// the cone of unit deps), P = [[2,0],[-2,4]].
func TestAnalyzeNonRect2D(t *testing.T) {
	h := ilin.RatMatFromRows(
		[]string{"1/2", "0"},
		[]string{"1/4", "1/4"},
	)
	nest := box2(t, 7, 7, unitDeps2()) // 64 points
	ts, err := Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	if ts.T.TileSize != 8 {
		t.Fatalf("TileSize = %d, want 8", ts.T.TileSize)
	}
	if got := ts.TotalPoints(); got != 64 {
		t.Errorf("TotalPoints = %d, want 64", got)
	}
	// Every enumerated point must be inside the original space and inside
	// its own tile.
	ts.ScanTiles(func(jS ilin.Vec) bool {
		tile := jS.Clone()
		ts.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
			j := ts.GlobalOf(tile, z)
			if !nest.Space.Contains(j) {
				t.Errorf("tile %v point %v outside space", tile, j)
				return false
			}
			if !ts.T.TileOf(j).Equal(tile) {
				t.Errorf("point %v not in tile %v", j, tile)
				return false
			}
			return true
		})
		return true
	})
}

// TestAnalyzePartition: the tiles partition the iteration space — every
// point appears in exactly one tile.
func TestAnalyzePartition(t *testing.T) {
	h := ilin.RatMatFromRows(
		[]string{"1/2", "0"},
		[]string{"1/4", "1/4"},
	)
	nest := box2(t, 6, 5, unitDeps2())
	ts, err := Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	ts.ScanTiles(func(jS ilin.Vec) bool {
		tile := jS.Clone()
		ts.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
			seen[ts.GlobalOf(tile, z).String()]++
			return true
		})
		return true
	})
	want, _ := nest.Size()
	if int64(len(seen)) != want {
		t.Errorf("covered %d distinct points, want %d", len(seen), want)
	}
	for p, c := range seen {
		if c != 1 {
			t.Errorf("point %s covered %d times", p, c)
		}
	}
}

func TestAnalyzeIllegalTiling(t *testing.T) {
	// Dep (1,0) with tile row (-1/2, 1/2): H·d < 0.
	h := ilin.RatMatFromRows(
		[]string{"-1/2", "1/2"},
		[]string{"0", "1/2"},
	)
	nest := box2(t, 5, 5, unitDeps2())
	if _, err := Analyze(nest, h); err == nil {
		t.Error("illegal tiling not rejected")
	}
}

func TestAnalyzeDimensionMismatch(t *testing.T) {
	nest := box2(t, 5, 5, unitDeps2())
	tr, _ := Rectangular(2, 2, 2)
	if _, err := Analyze(nest, tr.H); err == nil {
		t.Error("dimension mismatch not rejected")
	}
}

func TestAnalyzeDepExceedsTile(t *testing.T) {
	nest, err := loopnest.Box([]string{"i", "j"}, []int64{0, 0}, []int64{5, 5}, ilin.MatFromRows([]int64{3, 0}, []int64{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Rectangular(2, 2)
	if _, err := Analyze(nest, tr.H); err == nil {
		t.Error("dependence longer than tile not rejected")
	}
}

// TestTileDepsSkewedSOR pins D^S for the skewed SOR with its H_nr: all
// unit combinations reachable given D' and tile extents.
func TestTileDepsSkewedSOR(t *testing.T) {
	d := ilin.MatFromRows(
		[]int64{1, 0, 1, 1, 0},
		[]int64{1, 1, 0, 1, 0},
		[]int64{2, 0, 2, 1, 1},
	)
	nest, err := loopnest.Box([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{7, 7, 7}, d)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Analyze(nest, sorHnr(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// D' = H'·D: H' = [[1,0,0],[0,1,0],[-1,0,1]].
	// cols: (1,1,1),(0,1,0),(1,0,1),(1,1,0),(0,0,1).
	wantDP := ilin.MatFromRows(
		[]int64{1, 0, 1, 1, 0},
		[]int64{1, 1, 0, 1, 0},
		[]int64{1, 0, 1, 0, 1},
	)
	if !ts.DP.Equal(wantDP) {
		t.Errorf("D' =\n%v, want\n%v", ts.DP, wantDP)
	}
	for _, dS := range ts.DS {
		if !dS.LexPositive() {
			t.Errorf("tile dep %v not lex positive", dS)
		}
	}
	// The deps must include the three axis-aligned unit vectors.
	set := map[string]bool{}
	for _, dS := range ts.DS {
		set[dS.String()] = true
	}
	for _, w := range []ilin.Vec{ilin.NewVec(1, 0, 0), ilin.NewVec(0, 1, 0), ilin.NewVec(0, 0, 1)} {
		if !set[w.String()] {
			t.Errorf("missing tile dep %v (have %v)", w, ts.DS)
		}
	}
}

// TestJacobiAnalyzeTotal: Jacobi H_nr with stride-2 dimension must still
// partition exactly.
func TestJacobiAnalyzeTotal(t *testing.T) {
	d := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{1, 2, 0, 1, 1},
		[]int64{1, 1, 1, 2, 0},
	)
	nest, err := loopnest.Box([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{5, 6, 6}, d)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Analyze(nest, jacobiHnr(2, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := nest.Size()
	if got := ts.TotalPoints(); got != want {
		t.Errorf("TotalPoints = %d, want %d", got, want)
	}
}

// TestCountTilePointsMatchesScan: the closed-form counter must agree with
// the explicit scan on interior, boundary and empty tiles, with and
// without minimum-TTIS constraints.
func TestCountTilePointsMatchesScan(t *testing.T) {
	h := ilin.RatMatFromRows(
		[]string{"1/2", "0"},
		[]string{"1/4", "1/4"},
	)
	nest := box2(t, 10, 9, unitDeps2())
	ts, err := Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	mins := []ilin.Vec{nil, ilin.NewVec(0, 0), ilin.NewVec(1, 0), ilin.NewVec(0, 3), ilin.NewVec(2, 2)}
	ts.ScanTiles(func(jS ilin.Vec) bool {
		for _, minJP := range mins {
			want := int64(0)
			ts.ScanTilePoints(jS, func(z, jp ilin.Vec) bool {
				for k := range jp {
					if minJP != nil && jp[k] < minJP[k] {
						return true
					}
				}
				want++
				return true
			})
			if got := ts.CountTilePoints(jS, minJP); got != want {
				t.Fatalf("tile %v min %v: closed %d, scan %d", jS, minJP, got, want)
			}
		}
		return true
	})
}

// TestTileFullyInsideConsistent: fully-inside implies exactly TileSize
// points, and never false positives.
func TestTileFullyInsideConsistent(t *testing.T) {
	nest := box2(t, 10, 9, unitDeps2())
	tr, _ := Rectangular(3, 2)
	ts, err := Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	ts.ScanTiles(func(jS ilin.Vec) bool {
		if ts.TileFullyInside(jS) {
			full++
			if got := ts.TilePointCount(jS); got != ts.T.TileSize {
				t.Fatalf("full tile %v has %d points", jS, got)
			}
		}
		if got, want := ts.TilePointCountFast(jS), ts.TilePointCount(jS); got != want {
			t.Fatalf("fast count %d != %d at %v", got, want, jS)
		}
		return true
	})
	if full == 0 {
		t.Error("expected some fully-inside tiles")
	}
}
