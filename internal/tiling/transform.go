// Package tiling implements the paper's central machinery: general
// parallelepiped tiling transformations H, the non-unimodular companion
// transformation H' = V·H that turns the tile into a rectangle, the
// Hermite-normal-form-derived strides and offsets that traverse the
// Transformed Tile Iteration Space (TTIS), tile-space loop bounds via
// Fourier–Motzkin, tile dependencies D^S, and the compile-time
// communication criteria (the CC vector of §3.2).
package tiling

import (
	"fmt"
	"strings"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// Transform is a validated tiling transformation.
//
// H's rows are the hyperplane normals; P = H⁻¹ holds the tile side-vectors
// as columns (integral, so tile corners fall on lattice points, as in all
// the paper's experiment matrices). V is the minimal positive diagonal
// making H' = V·H integral; H̃' = H'·U is the column-style Hermite normal
// form whose diagonal gives the TTIS traversal strides c_k and whose
// sub-diagonal entries give the incremental offsets a_kl (paper Fig. 2).
type Transform struct {
	N int

	H  *ilin.RatMat // n×n tiling matrix
	P  *ilin.Mat    // P = H⁻¹, integer side-vector matrix
	V  ilin.Vec     // diagonal of V
	HP *ilin.Mat    // H' = V·H, integer
	PP *ilin.RatMat // P' = H'⁻¹
	HT *ilin.Mat    // H̃', column HNF of H'
	U  *ilin.Mat    // unimodular, H'·U = H̃' (and P'·H̃' = U)
	C  ilin.Vec     // strides c_k = h̃'_kk

	// TileSize is |det P|, the number of iterations per full tile.
	TileSize int64
}

// New validates H and precomputes every derived matrix. Errors cover:
// non-square or singular H, and non-integral P = H⁻¹.
func New(h *ilin.RatMat) (*Transform, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("tiling: H must be square, got %dx%d", h.Rows, h.Cols)
	}
	n := h.Rows
	det := h.Det()
	if det.IsZero() {
		return nil, fmt.Errorf("tiling: H is singular")
	}
	pRat := h.Inverse()
	if !pRat.IsInt() {
		return nil, fmt.Errorf("tiling: P = H⁻¹ must be integral (tile corners on the lattice); got\n%v", pRat)
	}
	p := pRat.Int()

	// v_kk = lcm of the denominators of row k of H.
	v := make(ilin.Vec, n)
	for k := 0; k < n; k++ {
		l := int64(1)
		for j := 0; j < n; j++ {
			l = rat.Lcm64(l, h.At(k, j).Den)
		}
		v[k] = l
	}
	hpRat := ilin.NewRatMat(n, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			hpRat.Set(k, j, h.At(k, j).MulInt(v[k]))
		}
	}
	hp := hpRat.Int()
	hnf, err := ilin.HermiteNormalForm(hp)
	if err != nil {
		return nil, fmt.Errorf("tiling: HNF of H': %w", err)
	}
	c := make(ilin.Vec, n)
	for k := 0; k < n; k++ {
		c[k] = hnf.H.At(k, k)
	}
	size := p.Det()
	if size < 0 {
		size = -size
	}
	t := &Transform{
		N: n, H: h.Clone(), P: p, V: v,
		HP: hp, PP: hp.Inverse(), HT: hnf.H, U: hnf.U, C: c,
		TileSize: size,
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(h *ilin.RatMat) *Transform {
	t, err := New(h)
	if err != nil {
		panic(err)
	}
	return t
}

// FromP builds the transformation from the integer side-vector matrix P
// (columns are tile edges), computing H = P⁻¹.
func FromP(p *ilin.Mat) (*Transform, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("tiling: P must be square, got %dx%d", p.Rows, p.Cols)
	}
	if p.Det() == 0 {
		return nil, fmt.Errorf("tiling: P is singular")
	}
	return New(p.Inverse())
}

// Rectangular returns the diagonal tiling H_r = diag(1/s_1, …, 1/s_n) with
// tile extents s_k, the baseline the paper compares against.
func Rectangular(sizes ...int64) (*Transform, error) {
	h := ilin.NewRatMat(len(sizes), len(sizes))
	for k, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("tiling: tile extent %d must be positive, got %d", k, s)
		}
		h.Set(k, k, rat.New(1, s))
	}
	return New(h)
}

// TileOf returns j^S = ⌊H·j⌋, the tile containing iteration j. Computed as
// FloorDiv((H'·j)_k, v_k) to stay in integer arithmetic.
func (t *Transform) TileOf(j ilin.Vec) ilin.Vec {
	hj := t.HP.MulVec(j)
	out := make(ilin.Vec, t.N)
	for k := 0; k < t.N; k++ {
		out[k] = rat.FloorDiv(hj[k], t.V[k])
	}
	return out
}

// TTISCoord returns j' = H'·(j − P·j^S), the coordinates of iteration j
// inside its tile's transformed (rectangular) space. For j in tile j^S,
// every component lies in [0, v_k).
func (t *Transform) TTISCoord(j, jS ilin.Vec) ilin.Vec {
	return t.HP.MulVec(j.Sub(t.P.MulVec(jS)))
}

// Global returns j = P·j^S + U·z for a tile j^S and TTIS lattice
// coordinate z (where j' = H̃'·z). This is the paper's j = P·j^S + P'·j'
// specialized to lattice points: P'·j' = P'·H̃'·z = U·z, all-integer.
func (t *Transform) Global(jS, z ilin.Vec) ilin.Vec {
	return t.P.MulVec(jS).Add(t.U.MulVec(z))
}

// JPrime returns j' = H̃'·z.
func (t *Transform) JPrime(z ilin.Vec) ilin.Vec { return t.HT.MulVec(z) }

// ZOf solves j' = H̃'·z for a TTIS point j'; ok is false when j' is not a
// lattice point of the TTIS (a "hole").
func (t *Transform) ZOf(jp ilin.Vec) (ilin.Vec, bool) {
	return ilin.LatticeSolve(t.HT, jp)
}

// Locate decomposes a global iteration j into its tile j^S, TTIS
// coordinate j', and lattice coordinate z. Every integer j decomposes
// uniquely; ok is false only on internal inconsistency (never for valid
// transforms — pinned by property tests).
func (t *Transform) Locate(j ilin.Vec) (jS, jp, z ilin.Vec, ok bool) {
	jS = t.TileOf(j)
	jp = t.TTISCoord(j, jS)
	z, ok = t.ZOf(jp)
	return jS, jp, z, ok
}

// InTIS reports whether j belongs to the tile at the origin (⌊H·j⌋ = 0).
func (t *Transform) InTIS(j ilin.Vec) bool {
	return t.TileOf(j).IsZero()
}

// ScanTTIS enumerates the lattice points of the TTIS — the actual
// iteration points of one full tile in transformed coordinates — in the
// lexicographic order of z. fn receives both z and j' = H̃'·z in reusable
// buffers; returning false stops the scan. The visit count is returned and
// always equals TileSize for a full scan.
func (t *Transform) ScanTTIS(fn func(z, jp ilin.Vec) bool) int64 {
	z := make(ilin.Vec, t.N)
	jp := make(ilin.Vec, t.N)
	var count int64
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == t.N {
			count++
			return fn(z, jp)
		}
		// j'_k = base + c_k·z_k with base from outer lattice coordinates.
		var base int64
		for l := 0; l < k; l++ {
			base += t.HT.At(k, l) * z[l]
		}
		zlo := rat.CeilDiv(-base, t.C[k])
		zhi := rat.FloorDiv(t.V[k]-1-base, t.C[k])
		for zk := zlo; zk <= zhi; zk++ {
			z[k] = zk
			jp[k] = base + t.C[k]*zk
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// TransformedDeps returns D' = H'·D, the dependence vectors expressed in
// TTIS coordinates. For a legal tiling every entry is ≥ 0.
func (t *Transform) TransformedDeps(d *ilin.Mat) *ilin.Mat {
	return t.HP.Mul(d)
}

// Legal reports whether H·D ≥ 0 elementwise — the classical legality
// condition guaranteeing that tiles can execute atomically.
func (t *Transform) Legal(d *ilin.Mat) bool {
	hd := t.HP.Mul(d) // same sign pattern as H·D since V > 0
	for i := 0; i < hd.Rows; i++ {
		for j := 0; j < hd.Cols; j++ {
			if hd.At(i, j) < 0 {
				return false
			}
		}
	}
	return true
}

// MaxDepPrime returns per-dimension max_l d'_kl (taken as 0 when there are
// no dependencies) — the quantity the communication vector and LDS offsets
// are built from.
func (t *Transform) MaxDepPrime(d *ilin.Mat) ilin.Vec {
	dp := t.TransformedDeps(d)
	out := make(ilin.Vec, t.N)
	for k := 0; k < t.N; k++ {
		for l := 0; l < dp.Cols; l++ {
			if dp.At(k, l) > out[k] {
				out[k] = dp.At(k, l)
			}
		}
	}
	return out
}

// CommVector returns the paper's C⃗C: cc_k = v_kk − max_l(d'_kl). A TTIS
// point j' is a communication point along dimension k iff j'_k ≥ cc_k.
func (t *Transform) CommVector(d *ilin.Mat) ilin.Vec {
	md := t.MaxDepPrime(d)
	out := make(ilin.Vec, t.N)
	for k := 0; k < t.N; k++ {
		out[k] = t.V[k] - md[k]
	}
	return out
}

// String renders the complete analysis of the transformation.
func (t *Transform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "H =\n%v\n", t.H)
	fmt.Fprintf(&b, "P = H⁻¹ =\n%v\n", t.P)
	fmt.Fprintf(&b, "V = diag%v\n", t.V)
	fmt.Fprintf(&b, "H' = V·H =\n%v\n", t.HP)
	fmt.Fprintf(&b, "H̃' (HNF) =\n%v\n", t.HT)
	fmt.Fprintf(&b, "strides c = %v\n", t.C)
	fmt.Fprintf(&b, "tile size |det P| = %d", t.TileSize)
	return b.String()
}
