package tiling

import (
	"testing"
	"testing/quick"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// sorHnr builds §4.1's non-rectangular SOR tiling for factors x, y, z.
func sorHnr(x, y, z int64) *ilin.RatMat {
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, x))
	h.Set(1, 1, rat.New(1, y))
	h.Set(2, 0, rat.New(-1, z))
	h.Set(2, 2, rat.New(1, z))
	return h
}

// jacobiHnr builds §4.2's non-rectangular Jacobi tiling (needs even y for
// an integral P).
func jacobiHnr(x, y, z int64) *ilin.RatMat {
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, x))
	h.Set(0, 1, rat.New(-1, 2*x))
	h.Set(1, 1, rat.New(1, y))
	h.Set(2, 2, rat.New(1, z))
	return h
}

func TestRectangularTransform(t *testing.T) {
	tr, err := Rectangular(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.P.Equal(ilin.Diag(3, 4, 5)) {
		t.Errorf("P = \n%v", tr.P)
	}
	if !tr.V.Equal(ilin.NewVec(3, 4, 5)) {
		t.Errorf("V = %v", tr.V)
	}
	if !tr.HP.Equal(ilin.Identity(3)) || !tr.HT.Equal(ilin.Identity(3)) {
		t.Error("H' and H̃' should be the identity for rectangular tiling")
	}
	if !tr.C.Equal(ilin.NewVec(1, 1, 1)) {
		t.Errorf("strides = %v", tr.C)
	}
	if tr.TileSize != 60 {
		t.Errorf("TileSize = %d", tr.TileSize)
	}
	if _, err := Rectangular(2, 0); err == nil {
		t.Error("zero extent not rejected")
	}
}

func TestSORTransform(t *testing.T) {
	tr, err := New(sorHnr(4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	wantP := ilin.MatFromRows([]int64{4, 0, 0}, []int64{0, 5, 0}, []int64{4, 0, 6})
	if !tr.P.Equal(wantP) {
		t.Errorf("P = \n%v, want \n%v", tr.P, wantP)
	}
	if !tr.V.Equal(ilin.NewVec(4, 5, 6)) {
		t.Errorf("V = %v", tr.V)
	}
	wantHP := ilin.MatFromRows([]int64{1, 0, 0}, []int64{0, 1, 0}, []int64{-1, 0, 1})
	if !tr.HP.Equal(wantHP) {
		t.Errorf("H' = \n%v", tr.HP)
	}
	// H' is unimodular here, so the TTIS has no holes: strides are all 1.
	if !tr.C.Equal(ilin.NewVec(1, 1, 1)) {
		t.Errorf("strides = %v", tr.C)
	}
	if tr.TileSize != 4*5*6 {
		t.Errorf("TileSize = %d", tr.TileSize)
	}
}

func TestJacobiTransform(t *testing.T) {
	tr, err := New(jacobiHnr(3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.V.Equal(ilin.NewVec(6, 4, 5)) {
		t.Errorf("V = %v", tr.V)
	}
	wantHP := ilin.MatFromRows([]int64{2, -1, 0}, []int64{0, 1, 0}, []int64{0, 0, 1})
	if !tr.HP.Equal(wantHP) {
		t.Errorf("H' = \n%v", tr.HP)
	}
	wantHT := ilin.MatFromRows([]int64{1, 0, 0}, []int64{1, 2, 0}, []int64{0, 0, 1})
	if !tr.HT.Equal(wantHT) {
		t.Errorf("H̃' = \n%v", tr.HT)
	}
	if !tr.C.Equal(ilin.NewVec(1, 2, 1)) {
		t.Errorf("strides = %v, want (1,2,1)", tr.C)
	}
	if tr.TileSize != 3*4*5 {
		t.Errorf("TileSize = %d, want %d", tr.TileSize, 3*4*5)
	}
}

func TestJacobiOddYRejected(t *testing.T) {
	if _, err := New(jacobiHnr(3, 5, 5)); err == nil {
		t.Error("odd y should make P non-integral and be rejected")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(ilin.NewRatMat(2, 3)); err == nil {
		t.Error("non-square H not rejected")
	}
	if _, err := New(ilin.NewRatMat(2, 2)); err == nil {
		t.Error("singular H not rejected")
	}
}

func TestFromP(t *testing.T) {
	p := ilin.MatFromRows([]int64{4, 0, 0}, []int64{0, 5, 0}, []int64{4, 0, 6})
	tr, err := FromP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.H.Equal(sorHnr(4, 5, 6)) {
		t.Errorf("H = \n%v", tr.H)
	}
	if _, err := FromP(ilin.NewMat(2, 2)); err == nil {
		t.Error("singular P not rejected")
	}
	if _, err := FromP(ilin.NewMat(2, 3)); err == nil {
		t.Error("non-square P not rejected")
	}
}

// TestScanTTISCountsTileSize: the number of TTIS lattice points must equal
// |det P| for every transform (the lattice partitions the box).
func TestScanTTISCountsTileSize(t *testing.T) {
	cases := []*Transform{
		MustNew(sorHnr(3, 4, 5)),
		MustNew(jacobiHnr(3, 4, 5)),
		MustNew(jacobiHnr(2, 2, 3)),
		mustRect(t, 2, 3),
	}
	for i, tr := range cases {
		if got := tr.ScanTTIS(func(z, jp ilin.Vec) bool { return true }); got != tr.TileSize {
			t.Errorf("case %d: TTIS count = %d, want %d", i, got, tr.TileSize)
		}
	}
}

func mustRect(t *testing.T, sizes ...int64) *Transform {
	t.Helper()
	tr, err := Rectangular(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestScanTTISPointsAreInTIS: every enumerated lattice point j' maps to a
// global point U·z inside the origin tile, with TTIS coordinates within
// the box and on the lattice.
func TestScanTTISPointsAreInTIS(t *testing.T) {
	tr := MustNew(jacobiHnr(2, 4, 3))
	tr.ScanTTIS(func(z, jp ilin.Vec) bool {
		j := tr.U.MulVec(z)
		if !tr.InTIS(j) {
			t.Errorf("z=%v: global %v is not in the TIS", z, j)
			return false
		}
		for k := 0; k < tr.N; k++ {
			if jp[k] < 0 || jp[k] >= tr.V[k] {
				t.Errorf("j' = %v outside the TTIS box", jp)
				return false
			}
		}
		if got := tr.JPrime(z); !got.Equal(jp) {
			t.Errorf("JPrime(%v) = %v, scan gave %v", z, got, jp)
			return false
		}
		return true
	})
}

// TestLocateGlobalRoundTrip: for every j in a test box, Locate followed by
// Global is the identity, and TTIS coordinates stay within the box bounds.
func TestLocateGlobalRoundTrip(t *testing.T) {
	for _, tr := range []*Transform{MustNew(jacobiHnr(2, 4, 3)), MustNew(sorHnr(2, 3, 4))} {
		for a := int64(-3); a <= 6; a++ {
			for b := int64(-3); b <= 6; b++ {
				for c := int64(-3); c <= 6; c++ {
					j := ilin.NewVec(a, b, c)
					jS, jp, z, ok := tr.Locate(j)
					if !ok {
						t.Fatalf("Locate(%v) failed", j)
					}
					for k := 0; k < 3; k++ {
						if jp[k] < 0 || jp[k] >= tr.V[k] {
							t.Fatalf("Locate(%v): j' = %v outside box", j, jp)
						}
					}
					if got := tr.Global(jS, z); !got.Equal(j) {
						t.Fatalf("Global(Locate(%v)) = %v", j, got)
					}
					if got := tr.TileOf(j); !got.Equal(jS) {
						t.Fatalf("TileOf mismatch at %v", j)
					}
				}
			}
		}
	}
}

func TestQuickLocateRoundTrip(t *testing.T) {
	tr := MustNew(jacobiHnr(3, 6, 4))
	f := func(a, b, c int16) bool {
		j := ilin.NewVec(int64(a), int64(b), int64(c))
		jS, _, z, ok := tr.Locate(j)
		return ok && tr.Global(jS, z).Equal(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLegalAndDeps(t *testing.T) {
	d := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{1, 2, 0, 1, 1},
		[]int64{1, 1, 1, 2, 0},
	) // skewed Jacobi
	tr := MustNew(jacobiHnr(2, 4, 3))
	if !tr.Legal(d) {
		t.Fatal("Jacobi H_nr should be legal for skewed Jacobi deps")
	}
	dp := tr.TransformedDeps(d)
	wantCol0 := ilin.NewVec(1, 1, 1) // H'·(1,1,1) = (2-1, 1, 1)
	if !dp.Col(0).Equal(wantCol0) {
		t.Errorf("D' col0 = %v, want %v", dp.Col(0), wantCol0)
	}
	if !tr.MaxDepPrime(d).Equal(ilin.NewVec(2, 2, 2)) {
		t.Errorf("MaxDP = %v", tr.MaxDepPrime(d))
	}
	// CC = V - MaxDP = (4-2, 4-2, 3-2).
	if !tr.CommVector(d).Equal(ilin.NewVec(2, 2, 1)) {
		t.Errorf("CC = %v", tr.CommVector(d))
	}

	bad := ilin.MatFromRows([]int64{-1}, []int64{0}, []int64{0})
	if tr.Legal(bad) {
		t.Error("negative-time dependence should be illegal")
	}
}

func TestMaxDepPrimeNoDeps(t *testing.T) {
	tr := mustRect(t, 2, 2)
	if !tr.MaxDepPrime(ilin.NewMat(2, 0)).Equal(ilin.NewVec(0, 0)) {
		t.Error("MaxDP with no deps should be zero")
	}
	if !tr.CommVector(ilin.NewMat(2, 0)).Equal(ilin.NewVec(2, 2)) {
		t.Error("CC with no deps should equal V")
	}
}

func TestZOfHole(t *testing.T) {
	tr := MustNew(jacobiHnr(2, 4, 3))
	// (0,1,0) is a hole: j'_2 = 1 requires j'_1 odd when j'_1 = 0.
	if _, ok := tr.ZOf(ilin.NewVec(0, 1, 0)); ok {
		t.Error("(0,1,0) should be a TTIS hole")
	}
	if _, ok := tr.ZOf(ilin.NewVec(1, 1, 0)); !ok {
		t.Error("(1,1,0) should be a TTIS lattice point")
	}
}

func TestTransformString(t *testing.T) {
	if MustNew(jacobiHnr(2, 4, 3)).String() == "" {
		t.Error("empty String")
	}
}
