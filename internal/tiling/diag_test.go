package tiling

import (
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
)

// These tests pin the exact diagnostic text of every analysis-time
// rejection. The wording is load-bearing: internal/verify re-proves the
// same facts over an already-built TiledSpace through the same error
// constructors, so analysis and certification must keep speaking one
// vocabulary (a drift here would show users two names for one defect).

func TestDiagIllegalTransform(t *testing.T) {
	h := ilin.RatMatFromRows(
		[]string{"-1/2", "1/2"},
		[]string{"0", "1/2"},
	)
	nest := box2(t, 5, 5, unitDeps2())
	_, err := Analyze(nest, h)
	if err == nil {
		t.Fatal("illegal tiling not rejected")
	}
	want := "tiling: illegal transformation: H·D has negative entries (some dependence crosses tiles backwards)"
	if err.Error() != want {
		t.Errorf("diagnostic drifted:\n got %q\nwant %q", err, want)
	}
	if err.Error() != ErrIllegalTransform().Error() {
		t.Errorf("Analyze and ErrIllegalTransform disagree: %q vs %q", err, ErrIllegalTransform())
	}
}

func TestDiagDependenceReach(t *testing.T) {
	// Dependence (3,0) against 2×2 tiles: reach 3 exceeds v_1 = 2.
	nest, err := loopnest.Box([]string{"i", "j"}, []int64{0, 0}, []int64{5, 5},
		ilin.MatFromRows([]int64{3, 0}, []int64{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Rectangular(2, 2)
	_, aerr := Analyze(nest, tr.H)
	if aerr == nil {
		t.Fatal("dependence longer than tile not rejected")
	}
	want := "tiling: dependence reach 3 exceeds tile extent v_1 = 2; enlarge the tile along dimension 1"
	if aerr.Error() != want {
		t.Errorf("diagnostic drifted:\n got %q\nwant %q", aerr, want)
	}
	if aerr.Error() != ErrDependenceReach(3, 0, 2).Error() {
		t.Errorf("Analyze and ErrDependenceReach disagree: %q vs %q", aerr, ErrDependenceReach(3, 0, 2))
	}
}

func TestDiagDimensionMismatch(t *testing.T) {
	nest := box2(t, 5, 5, unitDeps2())
	tr, _ := Rectangular(2, 2, 2)
	_, err := Analyze(nest, tr.H)
	if err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	want := "tiling: H is 3-dimensional, nest is 2-dimensional"
	if err.Error() != want {
		t.Errorf("diagnostic drifted:\n got %q\nwant %q", err, want)
	}
}

// The tile-dependence diagnostics cannot be reached through Analyze on a
// well-formed nest (the reach check fires first), but the certifier
// raises them verbatim on a TiledSpace mutated after analysis — so their
// text is pinned here where the constructors live.
func TestDiagTileDepConstructors(t *testing.T) {
	d := ilin.NewVec(2, 1)
	want := "tiling: tile dependence (2, 1) has component outside {0,1}; the tile is too small along dimension 1 for the §3.2 communication scheme"
	if got := ErrTileDepRange(d, 0).Error(); got != want {
		t.Errorf("ErrTileDepRange drifted:\n got %q\nwant %q", got, want)
	}
	neg := ilin.NewVec(0, -1)
	wantLex := "tiling: tile dependence (0, -1) is not lexicographically positive"
	if got := ErrTileDepNotLexPositive(neg).Error(); got != wantLex {
		t.Errorf("ErrTileDepNotLexPositive drifted:\n got %q\nwant %q", got, wantLex)
	}
}
