package tiling

import (
	"math/rand"
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/poly"
	"tilespace/internal/rat"
)

// Random integral-P transforms plus random convex spaces; cross-check
// CountTilePoints/TileFullyInside/ScanTTIS against brute force. The full
// 300-trial sweep takes minutes; -short keeps a seed-stable slice of it.
func TestProbeRandomized(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 20
	}
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < trials; trial++ {
		n := 2
		// Random P with nonzero det, entries in [-3,4]
		p := ilin.NewMat(n, n)
		for {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					p.Set(i, j, int64(rng.Intn(7)-3))
				}
			}
			d := p.Det()
			if d != 0 && d < 30 && d > -30 {
				// ensure tile not too big
				break
			}
		}
		tr, err := FromP(p)
		if err != nil {
			continue
		}
		// ScanTTIS count vs TileSize and vs brute force over box
		cnt := tr.ScanTTIS(func(z, jp ilin.Vec) bool { return true })
		if cnt != tr.TileSize {
			t.Fatalf("trial %d: ScanTTIS count %d != TileSize %d, P=%v", trial, cnt, tr.TileSize, p)
		}
		// brute force: count j in [-40,40]^2 with TileOf(j)==0
		var brute int64
		lim := int64(25)
		for a := -lim; a <= lim; a++ {
			for b := -lim; b <= lim; b++ {
				if tr.TileOf(ilin.NewVec(a, b)).IsZero() {
					brute++
				}
			}
		}
		if brute != tr.TileSize {
			t.Logf("trial %d: brute TIS count %d != TileSize %d (maybe tile exceeds box), P=%v", trial, brute, tr.TileSize, p)
		}

		// random convex space: box plus a random halfplane
		s := poly.NewSystem(n)
		hi1 := int64(rng.Intn(12) + 3)
		hi2 := int64(rng.Intn(12) + 3)
		s.AddRange(0, 0, hi1)
		s.AddRange(1, 0, hi2)
		if rng.Intn(2) == 0 {
			// i + j <= c
			c := hi1 + int64(rng.Intn(int(hi2)))
			s.Add(poly.Constraint{Coef: ilin.RatVec{rat.One, rat.One}, Rhs: rat.FromInt(c)})
		}
		// deps: need legal tiling; skip legality by using empty deps
		nest, err := loopnest.New(nil, s, nil)
		if err != nil {
			continue
		}
		ts, err := Analyze(nest, tr.H)
		if err != nil {
			continue
		}
		// total points must equal nest size
		sz, _ := nest.Size()
		if tot := ts.TotalPoints(); tot != sz {
			t.Fatalf("trial %d: TotalPoints %d != nest size %d\nP=%v", trial, tot, sz, p)
		}
		ts.ScanTiles(func(jS ilin.Vec) bool {
			jS = jS.Clone()
			// brute-force per-tile count by scanning the nest
			nb, _ := nest.Bounds()
			var want int64
			nb.Scan(func(x ilin.Vec) bool {
				if tr.TileOf(x).Equal(jS) {
					want++
				}
				return true
			})
			if got := ts.TilePointCount(jS); got != want {
				t.Fatalf("trial %d tile %v: TilePointCount %d != brute %d, P=%v", trial, jS, got, want, p)
			}
			if got := ts.CountTilePoints(jS, nil); got != want {
				t.Fatalf("trial %d tile %v: CountTilePoints %d != brute %d, P=%v", trial, jS, got, want, p)
			}
			if got := ts.TilePointCountFast(jS); got != want {
				t.Fatalf("trial %d tile %v: TilePointCountFast %d != brute %d (fullyInside=%v), P=%v", trial, jS, got, want, ts.TileFullyInside(jS), p)
			}
			// random minJP
			minJP := make(ilin.Vec, n)
			for k := 0; k < n; k++ {
				minJP[k] = int64(rng.Intn(int(tr.V[k]) + 1))
			}
			var wantM int64
			ts.ScanTilePoints(jS, func(z, jp ilin.Vec) bool {
				ok := true
				for k := 0; k < n; k++ {
					if jp[k] < minJP[k] {
						ok = false
					}
				}
				if ok {
					wantM++
				}
				return true
			})
			if got := ts.CountTilePoints(jS, minJP); got != wantM {
				t.Fatalf("trial %d tile %v minJP %v: CountTilePoints %d != brute %d, P=%v", trial, jS, minJP, got, wantM, p)
			}
			return true
		})
	}
}
