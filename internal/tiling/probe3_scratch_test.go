package tiling

import (
	"fmt"
	"math/rand"
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/poly"
	"tilespace/internal/rat"
)

func TestProbe3D(t *testing.T) {
	target := 60
	if testing.Short() {
		target = 6
	}
	rng := rand.New(rand.NewSource(777))
	trials := 0
	for iter := 0; iter < 4000 && trials < target; iter++ {
		
		n := 3
		p := ilin.NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.Set(i, j, int64(rng.Intn(5)-2))
			}
		}
		d := p.Det()
		if d == 0 || d > 20 || d < -20 {
			continue
		}
		tr, err := FromP(p)
		if err != nil {
			continue
		}
		if cnt := tr.ScanTTIS(func(z, jp ilin.Vec) bool { return true }); cnt != tr.TileSize {
			t.Fatalf("ScanTTIS count %d != TileSize %d, P=%v", cnt, tr.TileSize, p)
		}
		s := poly.NewSystem(n)
		for k := 0; k < n; k++ {
			s.AddRange(k, 0, int64(rng.Intn(6)+2))
		}
		if rng.Intn(2) == 0 {
			s.Add(poly.Constraint{Coef: ilin.RatVec{rat.One, rat.One, rat.One}, Rhs: rat.FromInt(int64(rng.Intn(10) + 4))})
		}
		nest, err := loopnest.New(nil, s, nil)
		if err != nil {
			continue
		}
		fmt.Printf("iter %d P=%v space:\n%v\n", iter, p, s)
		ts, err := Analyze(nest, tr.H)
		if err != nil {
			continue
		}
		trials++
		sz, _ := nest.Size()
		if tot := ts.TotalPoints(); tot != sz {
			t.Fatalf("TotalPoints %d != nest size %d, P=%v", tot, sz, p)
		}
		nb, _ := nest.Bounds()
		counts := map[string]int64{}
		nb.Scan(func(x ilin.Vec) bool {
			counts[tr.TileOf(x).String()]++
			return true
		})
		ts.ScanTiles(func(jS ilin.Vec) bool {
			jS = jS.Clone()
			want := counts[jS.String()]
			if got := ts.TilePointCountFast(jS); got != want {
				t.Fatalf("tile %v: fast %d != brute %d (inside=%v) P=%v", jS, got, want, ts.TileFullyInside(jS), p)
			}
			minJP := make(ilin.Vec, n)
			for k := 0; k < n; k++ {
				minJP[k] = int64(rng.Intn(int(tr.V[k]) + 1))
			}
			var wantM int64
			ts.ScanTilePoints(jS, func(z, jp ilin.Vec) bool {
				for k := 0; k < n; k++ {
					if jp[k] < minJP[k] {
						return true
					}
				}
				wantM++
				return true
			})
			if got := ts.CountTilePoints(jS, minJP); got != wantM {
				t.Fatalf("tile %v minJP %v: count %d != brute %d P=%v", jS, minJP, got, wantM, p)
			}
			return true
		})
	}
	t.Logf("3D trials: %d", trials)
}

// D^S completeness: brute-force tile offsets over the whole nest for legal
// random tilings with deps, compare against computed DS (must be superset).
func TestProbeTileDeps(t *testing.T) {
	target := 80
	if testing.Short() {
		target = 10
	}
	rng := rand.New(rand.NewSource(99))
	trials := 0
	for iter := 0; iter < 6000 && trials < target; iter++ {
		n := 2
		p := ilin.NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.Set(i, j, int64(rng.Intn(9)-3))
			}
		}
		d := p.Det()
		if d == 0 || d > 40 || d < -40 {
			continue
		}
		tr, err := FromP(p)
		if err != nil {
			continue
		}
		// random deps: q in 1..3, entries 0..2, lex positive
		q := rng.Intn(3) + 1
		deps := ilin.NewMat(n, q)
		for l := 0; l < q; l++ {
			for i := 0; i < n; i++ {
				deps.Set(i, l, int64(rng.Intn(3)))
			}
			if !deps.Col(l).LexPositive() {
				deps.Set(0, l, 1)
			}
		}
		nest, err := loopnest.Box(nil, []int64{0, 0}, []int64{int64(rng.Intn(10) + 4), int64(rng.Intn(10) + 4)}, deps)
		if err != nil {
			continue
		}
		ts, err := Analyze(nest, tr.H)
		if err != nil {
			continue
		}
		trials++
		// brute force: for every iteration j and dep d with j-d... paper: j reads j-d,
		// i.e. value flows from j to j+d. Tile offset = TileOf(j+d)-TileOf(j).
		inDS := map[string]bool{}
		for _, v := range ts.DS {
			inDS[v.String()] = true
		}
		nb, _ := nest.Bounds()
		nb.Scan(func(j ilin.Vec) bool {
			for l := 0; l < deps.Cols; l++ {
				jd := j.Add(deps.Col(l))
				// only count if j+d is in the space
				ok := true
				for _, c := range nest.Space.Cons {
					if c.Coef.Dot(jd.Rat()).Cmp(c.Rhs) > 0 {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				off := ts.T.TileOf(jd).Sub(ts.T.TileOf(j))
				if off.IsZero() {
					continue
				}
				if !inDS[off.String()] {
					t.Fatalf("offset %v (j=%v d=%v) missing from DS=%v, P=%v", off, j, deps.Col(l), ts.DS, p)
				}
			}
			return true
		})
	}
	t.Logf("dep trials: %d", trials)
}
