package tiling

import (
	"fmt"
	"sort"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/poly"
	"tilespace/internal/rat"
)

// TiledSpace is a loop nest together with a legal tiling transformation and
// everything the code generator needs: the combined Fourier–Motzkin bounds
// for tile loops and (boundary-clamped) point loops, the transformed and
// tile-level dependencies, and the compile-time communication vector.
type TiledSpace struct {
	T    *Transform
	Nest *loopnest.Nest

	// Combined holds loop bounds over 2n variables (j^S_1…j^S_n,
	// z_1…z_n): levels 0…n-1 enumerate non-empty-relaxation tiles, levels
	// n…2n-1 enumerate a tile's lattice points with automatic boundary
	// clamping (§2.3: "for boundary tiles these bounds can be corrected
	// using inequalities describing the original iteration space").
	Combined *poly.NestBounds

	// TileLo/TileHi is the integer bounding box of the tile space J^S.
	TileLo, TileHi ilin.Vec

	// DP is D' = H'·D (all entries ≥ 0 for a legal tiling).
	DP *ilin.Mat
	// DS is the tile dependence matrix D^S as a sorted list of distinct
	// nonzero vectors; every component is 0 or 1 (validated).
	DS []ilin.Vec
	// MaxDP[k] = max_l d'_kl.
	MaxDP ilin.Vec
	// CC is the communication vector: cc_k = v_kk − MaxDP[k].
	CC ilin.Vec
}

// Analyze validates that h legally tiles the nest and precomputes the
// complete tiled-space description.
func Analyze(nest *loopnest.Nest, h *ilin.RatMat) (*TiledSpace, error) {
	t, err := New(h)
	if err != nil {
		return nil, err
	}
	if t.N != nest.N {
		return nil, fmt.Errorf("tiling: H is %d-dimensional, nest is %d-dimensional", t.N, nest.N)
	}
	if !t.Legal(nest.Deps) {
		return nil, ErrIllegalTransform()
	}
	ts := &TiledSpace{T: t, Nest: nest}

	if err := ts.buildCombinedBounds(); err != nil {
		return nil, err
	}

	ts.DP = t.TransformedDeps(nest.Deps)
	ts.MaxDP = t.MaxDepPrime(nest.Deps)
	ts.CC = t.CommVector(nest.Deps)
	for k := 0; k < t.N; k++ {
		if ts.MaxDP[k] > t.V[k] {
			return nil, ErrDependenceReach(ts.MaxDP[k], int64(k), t.V[k])
		}
	}
	if err := ts.computeTileDeps(); err != nil {
		return nil, err
	}
	return ts, nil
}

// MustAnalyze is Analyze that panics on error.
func MustAnalyze(nest *loopnest.Nest, h *ilin.RatMat) *TiledSpace {
	ts, err := Analyze(nest, h)
	if err != nil {
		panic(err)
	}
	return ts
}

// buildCombinedBounds constructs the 2n-variable system
//
//	A·(P·j^S + U·z) ≤ b        (original iteration space)
//	0 ≤ (H̃'·z)_k ≤ v_k − 1    (TTIS box)
//
// and runs Fourier–Motzkin once for both loop levels. The decomposition
// j = P·j^S + U·z is an exact integer bijection, so the z-level bounds
// enumerate exactly the original iterations of each tile.
func (ts *TiledSpace) buildCombinedBounds() error {
	n := ts.T.N
	sys := poly.NewSystem(2 * n)
	for _, c := range ts.Nest.Space.Cons {
		row := make(ilin.RatVec, 2*n)
		for j := 0; j < n; j++ {
			row[j] = c.Coef.Dot(ts.T.P.Col(j).Rat())
			row[n+j] = c.Coef.Dot(ts.T.U.Col(j).Rat())
		}
		sys.Add(poly.Constraint{Coef: row, Rhs: c.Rhs})
	}
	for k := 0; k < n; k++ {
		lo := make(ilin.RatVec, 2*n)
		for i := range lo {
			lo[i] = rat.Zero
		}
		hi := lo.Clone()
		for l := 0; l <= k; l++ {
			lo[n+l] = rat.FromInt(-ts.T.HT.At(k, l))
			hi[n+l] = rat.FromInt(ts.T.HT.At(k, l))
		}
		sys.Add(poly.Constraint{Coef: lo, Rhs: rat.Zero})                   // -(H̃'z)_k ≤ 0
		sys.Add(poly.Constraint{Coef: hi, Rhs: rat.FromInt(ts.T.V[k] - 1)}) // (H̃'z)_k ≤ v_k - 1
	}
	nb, err := poly.LoopBounds(sys)
	if err != nil {
		return fmt.Errorf("tiling: combined bounds: %w", err)
	}
	ts.Combined = nb

	lo, hi, err := poly.BoundingBox(sys)
	if err != nil {
		return fmt.Errorf("tiling: tile-space box: %w", err)
	}
	ts.TileLo, ts.TileHi = lo[:n], hi[:n]
	return nil
}

// TileBounds evaluates the tile-loop bounds at level k given the outer
// tile coordinates jS[0:k].
func (ts *TiledSpace) TileBounds(k int, prefix ilin.Vec) (lo, hi int64) {
	lo, _ = ts.Combined.Vars[k].EvalLower(prefix)
	hi, _ = ts.Combined.Vars[k].EvalUpper(prefix)
	return lo, hi
}

// ValidTile reports whether j^S is enumerated by the tile loops — the
// paper's valid() predicate. (A valid tile may still contain zero integer
// points when the rational relaxation is nonempty but holds no lattice
// point; such tiles run the communication protocol but compute nothing.)
func (ts *TiledSpace) ValidTile(jS ilin.Vec) bool {
	for k := 0; k < ts.T.N; k++ {
		lo, hi := ts.TileBounds(k, jS[:k])
		if jS[k] < lo || jS[k] > hi {
			return false
		}
	}
	return true
}

// ScanTiles enumerates all valid tiles in lexicographic order. fn receives
// a reusable buffer; returning false stops the scan. Returns the number of
// tiles visited.
func (ts *TiledSpace) ScanTiles(fn func(jS ilin.Vec) bool) int64 {
	n := ts.T.N
	x := make(ilin.Vec, n)
	var count int64
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			count++
			return fn(x)
		}
		lo, hi := ts.TileBounds(k, x[:k])
		for v := lo; v <= hi; v++ {
			x[k] = v
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// ScanTilePoints enumerates the lattice points of tile j^S in
// lexicographic z order, with boundary clamping applied. fn receives the
// lattice coordinate z and the TTIS coordinate j' = H̃'·z in reusable
// buffers. Returns the number of points visited.
func (ts *TiledSpace) ScanTilePoints(jS ilin.Vec, fn func(z, jp ilin.Vec) bool) int64 {
	n := ts.T.N
	x := make(ilin.Vec, 2*n)
	copy(x, jS)
	jp := make(ilin.Vec, n)
	var count int64
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			count++
			return fn(x[n:], jp)
		}
		lo, okL := ts.Combined.Vars[n+k].EvalLower(x[:n+k])
		hi, okU := ts.Combined.Vars[n+k].EvalUpper(x[:n+k])
		if !okL || !okU {
			panic("tiling: unbounded point loop")
		}
		var base int64
		for l := 0; l < k; l++ {
			base += ts.T.HT.At(k, l) * x[n+l]
		}
		for zk := lo; zk <= hi; zk++ {
			x[n+k] = zk
			jp[k] = base + ts.T.C[k]*zk
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// TilePointCount returns the number of iterations in tile j^S.
func (ts *TiledSpace) TilePointCount(jS ilin.Vec) int64 {
	return ts.ScanTilePoints(jS, func(z, jp ilin.Vec) bool { return true })
}

// TotalPoints returns the total number of iterations across all tiles
// (equals the nest size; pinned by tests).
func (ts *TiledSpace) TotalPoints() int64 {
	var total int64
	ts.ScanTiles(func(jS ilin.Vec) bool {
		total += ts.TilePointCount(jS)
		return true
	})
	return total
}

// computeTileDeps derives D^S = {⌊H(j+d)⌋ : j ∈ TIS, d ∈ D} exactly by
// enumerating the TIS lattice (its size is the tile size) and collecting
// the distinct nonzero offsets, then validates the {0,1} range the §3.2
// communication scheme requires.
func (ts *TiledSpace) computeTileDeps() error {
	n := ts.T.N
	// Chained under the vector hash (collisions resolved by Equal), so the
	// TileSize·q-iteration sweep allocates only per distinct offset instead
	// of building a string key per lattice point.
	seen := map[uint64][]ilin.Vec{}
	off := make(ilin.Vec, n)
	ts.T.ScanTTIS(func(z, jp ilin.Vec) bool {
		for l := 0; l < ts.DP.Cols; l++ {
			zero := true
			for k := 0; k < n; k++ {
				off[k] = rat.FloorDiv(jp[k]+ts.DP.At(k, l), ts.T.V[k])
				if off[k] != 0 {
					zero = false
				}
			}
			if zero {
				continue
			}
			key := ilin.VecHash(off)
			dup := false
			for _, v := range seen[key] {
				if v.Equal(off) {
					dup = true
					break
				}
			}
			if !dup {
				seen[key] = append(seen[key], off.Clone())
			}
		}
		return true
	})
	ts.DS = ts.DS[:0]
	for _, vs := range seen {
		ts.DS = append(ts.DS, vs...)
	}
	sort.Slice(ts.DS, func(i, j int) bool { return ts.DS[i].LexLess(ts.DS[j]) })
	for _, d := range ts.DS {
		for k := 0; k < n; k++ {
			if d[k] < 0 || d[k] > 1 {
				return ErrTileDepRange(d, k)
			}
		}
		if !d.LexPositive() {
			return ErrTileDepNotLexPositive(d)
		}
	}
	return nil
}

// GlobalOf maps (j^S, z) to the original iteration j = P·j^S + U·z.
func (ts *TiledSpace) GlobalOf(jS, z ilin.Vec) ilin.Vec { return ts.T.Global(jS, z) }

// NumTiles returns the number of valid tiles.
func (ts *TiledSpace) NumTiles() int64 {
	return ts.ScanTiles(func(ilin.Vec) bool { return true })
}

// TileFullyInside reports whether the entire closed tile cell
// {x : j^S ≤ H·x ≤ j^S + 1} lies inside the iteration space, by testing
// its 2ⁿ vertices x = P·(j^S + ε), ε ∈ {0,1}ⁿ, against every constraint
// (sufficient by convexity). A fully inside tile contains exactly TileSize
// lattice points, so large simulations can skip per-point scans for
// interior tiles.
func (ts *TiledSpace) TileFullyInside(jS ilin.Vec) bool {
	n := ts.T.N
	corner := make(ilin.RatVec, n)
	for mask := 0; mask < 1<<n; mask++ {
		for k := 0; k < n; k++ {
			c := rat.FromInt(jS[k])
			if mask&(1<<k) != 0 {
				c = c.AddInt(1)
			}
			corner[k] = c
		}
		// x = P·corner (rational point).
		for _, con := range ts.Nest.Space.Cons {
			// coef·(P·corner) ≤ rhs
			s := rat.Zero
			for j := 0; j < n; j++ {
				pj := con.Coef.Dot(ts.T.P.Col(j).Rat())
				s = s.Add(pj.Mul(corner[j]))
			}
			if s.Cmp(con.Rhs) > 0 {
				return false
			}
		}
	}
	return true
}

// TilePointCountFast returns the tile's lattice point count, using the
// convexity shortcut for interior tiles and a scan otherwise.
func (ts *TiledSpace) TilePointCountFast(jS ilin.Vec) int64 {
	if ts.TileFullyInside(jS) {
		return ts.T.TileSize
	}
	return ts.TilePointCount(jS)
}

// CountTilePoints counts the lattice points of tile j^S whose TTIS
// coordinate satisfies j'_k ≥ minJP[k] for every k (pass nil for no
// constraint). It recurses over the outer lattice dimensions and closes
// the innermost level in O(1), so boundary tiles cost O(area) instead of
// O(volume) — what makes paper-scale simulation sweeps affordable.
func (ts *TiledSpace) CountTilePoints(jS ilin.Vec, minJP ilin.Vec) int64 {
	n := ts.T.N
	x := make(ilin.Vec, 2*n)
	copy(x, jS)
	var rec func(k int) int64
	rec = func(k int) int64 {
		lo, okL := ts.Combined.Vars[n+k].EvalLower(x[:n+k])
		hi, okU := ts.Combined.Vars[n+k].EvalUpper(x[:n+k])
		if !okL || !okU {
			panic("tiling: unbounded point loop")
		}
		var base int64
		for l := 0; l < k; l++ {
			base += ts.T.HT.At(k, l) * x[n+l]
		}
		if minJP != nil && minJP[k] > 0 {
			// j'_k = base + c_k·z_k ≥ minJP[k]
			if zlo := rat.CeilDiv(minJP[k]-base, ts.T.C[k]); zlo > lo {
				lo = zlo
			}
		}
		if hi < lo {
			return 0
		}
		if k == n-1 {
			return hi - lo + 1
		}
		var total int64
		for zk := lo; zk <= hi; zk++ {
			x[n+k] = zk
			total += rec(k + 1)
		}
		return total
	}
	return rec(0)
}
