package tiling

import (
	"fmt"

	"tilespace/internal/ilin"
)

// Shared compile-time diagnostics. Analyze rejects an illegal tiling with
// these exact messages, and the static certifier (internal/verify)
// re-proves the same facts over an already-built TiledSpace with the same
// wording, so users see one diagnostic vocabulary whether the fact fails
// at analysis time or at certification time. Tests assert the exact text.

// ErrIllegalTransform is the legality failure H·D ≥ 0 (§2.1): some
// dependence crosses tiles against the tile execution order.
func ErrIllegalTransform() error {
	return fmt.Errorf("tiling: illegal transformation: H·D has negative entries (some dependence crosses tiles backwards)")
}

// ErrDependenceReach reports a transformed dependence component d'_k that
// exceeds the tile extent v_k, which would make data flow skip over a
// neighbouring tile (k is 0-based).
func ErrDependenceReach(reach, k, v int64) error {
	return fmt.Errorf("tiling: dependence reach %d exceeds tile extent v_%d = %d; enlarge the tile along dimension %d", reach, k+1, v, k+1)
}

// ErrTileDepRange reports a tile dependence component outside {0,1},
// which the §3.2 single-message-per-direction communication scheme cannot
// express (k is 0-based).
func ErrTileDepRange(d ilin.Vec, k int) error {
	return fmt.Errorf("tiling: tile dependence %v has component outside {0,1}; the tile is too small along dimension %d for the §3.2 communication scheme", d, k+1)
}

// ErrTileDepNotLexPositive reports a tile dependence that is not
// lexicographically positive, i.e. the tiled execution order would not be
// sequentially consistent.
func ErrTileDepNotLexPositive(d ilin.Vec) error {
	return fmt.Errorf("tiling: tile dependence %v is not lexicographically positive", d)
}
