package distrib

import (
	"testing"

	"tilespace/internal/ilin"
)

// TestChainStepExact: Flat/FlatRead/FlatUnpack must be affine in the chain
// slot with slope ChainStep, for every TTIS point — the identity compiled
// tile plans rely on.
func TestChainStepExact(t *testing.T) {
	d := jacobiDist(t)
	a := d.Addresser(0)
	step := a.ChainStep()
	if step <= 0 {
		t.Fatalf("ChainStep = %d, want positive", step)
	}
	dp := d.TS.DP.Col(0)
	d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
		base := a.Flat(jp, 0)
		baseR := a.FlatRead(jp, dp, 0)
		for ti := int64(1); ti < 4; ti++ {
			if got := a.Flat(jp, ti); got != base+ti*step {
				t.Fatalf("Flat(%v, %d) = %d, want %d + %d·%d", jp, ti, got, base, ti, step)
			}
			if got := a.FlatRead(jp, dp, ti); got != baseR+ti*step {
				t.Fatalf("FlatRead(%v, %v, %d) = %d, want %d + %d·%d", jp, dp, ti, got, baseR, ti, step)
			}
		}
		return true
	})
}

// TestDirShiftExact: FlatUnpack must equal Flat shifted by the constant
// DirShift for every processor direction and every chain slot.
func TestDirShiftExact(t *testing.T) {
	d := jacobiDist(t)
	a := d.Addresser(0)
	for _, dm := range d.DM {
		dmF := make(ilin.Vec, 0, d.TS.T.N)
		dmF = append(dmF, dm[:d.M]...)
		dmF = append(dmF, 0)
		dmF = append(dmF, dm[d.M:]...)
		shift := a.DirShift(dmF)
		d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			for tau := int64(0); tau < 3; tau++ {
				want := a.FlatUnpack(jp, dmF, tau)
				if got := a.Flat(jp, tau) + shift; got != want {
					t.Fatalf("Flat(%v,%d)+DirShift(%v) = %d, want FlatUnpack = %d", jp, tau, dmF, got, want)
				}
			}
			return true
		})
	}
}

// TestCommRunsCoverRegion: for every tile (interior and boundary) and
// every direction, the run list must enumerate exactly the CommRegion's
// flat addresses in order, with maximal contiguous runs, and the fused
// count must match CommRegion's.
func TestCommRunsCoverRegion(t *testing.T) {
	for r := 0; r < 2; r++ {
		d := jacobiDist(t)
		a := d.Addresser(r)
		d.TS.ScanTiles(func(s ilin.Vec) bool {
			tile := s.Clone()
			for _, dm := range d.DM {
				runs, total := d.CommRuns(tile, dm, a)
				var want []int64
				n := d.CommRegion(tile, dm, func(z, jp ilin.Vec) bool {
					want = append(want, a.Flat(jp, 0))
					return true
				})
				if total != n {
					t.Fatalf("tile %v dm %v: fused count %d, CommRegion %d", tile, dm, total, n)
				}
				var got []int64
				for i, run := range runs {
					if run.N <= 0 {
						t.Fatalf("tile %v dm %v: empty run", tile, dm)
					}
					if i > 0 && runs[i-1].Off+runs[i-1].N == run.Off {
						t.Fatalf("tile %v dm %v: runs %d and %d are adjacent (not maximal)", tile, dm, i-1, i)
					}
					for j := int64(0); j < run.N; j++ {
						got = append(got, run.Off+j)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("tile %v dm %v: runs cover %d cells, region has %d", tile, dm, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("tile %v dm %v: cell %d: run address %d, region address %d", tile, dm, i, got[i], want[i])
					}
				}
			}
			return true
		})
	}
}

// TestCommRunsBoundaryTileSmaller: boundary tiles must produce clamped
// (strictly smaller) regions than the interior full-tile count for at
// least one direction, exercising the boundary branch of run extraction.
func TestCommRunsBoundaryTileSmaller(t *testing.T) {
	d := jacobiDist(t)
	a := d.Addresser(0)
	for _, dm := range d.DM {
		full := d.FullTileCommCount(dm)
		sawSmaller := false
		d.TS.ScanTiles(func(s ilin.Vec) bool {
			_, total := d.CommRuns(s, dm, a)
			if total < full {
				sawSmaller = true
				return false
			}
			return true
		})
		if !sawSmaller {
			t.Fatalf("dm %v: no boundary tile with a clamped region (full = %d)", dm, full)
		}
	}
}
