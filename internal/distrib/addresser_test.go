package distrib

import (
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/rat"
	"tilespace/internal/tiling"
)

func jacobiDist(t *testing.T) *Distribution {
	t.Helper()
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 2))
	h.Set(0, 1, rat.New(-1, 4))
	h.Set(1, 1, rat.New(1, 4))
	h.Set(2, 2, rat.New(1, 3))
	deps := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{1, 2, 0, 1, 1},
		[]int64{1, 1, 1, 2, 0},
	)
	nest, err := loopnest.Box([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{7, 7, 7}, deps)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAddresserMatchesMapFlatten: the allocation-free addresser must agree
// with the reference Map ∘ Flatten on writes and dependence reads.
func TestAddresserMatchesMapFlatten(t *testing.T) {
	d := jacobiDist(t)
	a := d.Addresser(0)
	if a.Size() != d.LDSSize(0) {
		t.Fatalf("Size = %d, want %d", a.Size(), d.LDSSize(0))
	}
	for ti := int64(0); ti < min64(3, d.ChainLen[0]); ti++ {
		d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			want := d.Flatten(0, d.Map(jp, ti))
			if got := a.Flat(jp, ti); got != want {
				t.Fatalf("Flat(%v, %d) = %d, want %d", jp, ti, got, want)
			}
			return true
		})
	}
}

func TestAddresserFlatRead(t *testing.T) {
	d := jacobiDist(t)
	a := d.Addresser(0)
	shifted := make(ilin.Vec, 3)
	for l := 0; l < d.TS.DP.Cols; l++ {
		dp := d.TS.DP.Col(l)
		d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			for k := range shifted {
				shifted[k] = jp[k] - dp[k]
			}
			want := d.Flatten(0, d.Map(shifted, 1))
			if got := a.FlatRead(jp, dp, 1); got != want {
				t.Fatalf("FlatRead(%v, %v) = %d, want %d", jp, dp, got, want)
			}
			return true
		})
	}
}

// TestAddresserUnpackConsistency: for every dependence crossing processors
// the unpack cell of the owner point must equal the cell every consumer
// read resolves to.
func TestAddresserUnpackConsistency(t *testing.T) {
	d := jacobiDist(t)
	a := d.Addresser(0)
	n := d.TS.T.N
	for _, dS := range d.TS.DS {
		dm := d.DmOf(dS)
		if dm.IsZero() {
			continue
		}
		dmF := insertAt(dm, d.M, 0)
		// Consumer tile at chain slot t reads point j' via d' where the
		// owner point is p' = j' − d' + V·dS.
		for l := 0; l < d.TS.DP.Cols; l++ {
			dp := d.TS.DP.Col(l)
			d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
				// Does this read resolve to owner offset dS?
				match := true
				pp := make(ilin.Vec, n)
				for k := 0; k < n; k++ {
					pp[k] = jp[k] - dp[k] + d.TS.T.V[k]*dS[k]
					if rat.FloorDiv(jp[k]-dp[k], d.TS.T.V[k]) != -dS[k] {
						match = false
					}
				}
				if !match {
					return true
				}
				const t0 = int64(2)
				tau := t0 - dS[d.M]
				if got, want := a.FlatUnpack(pp, dmF, tau), a.FlatRead(jp, dp, t0); got != want {
					t.Fatalf("unpack cell %d != read cell %d (j'=%v d'=%v dS=%v)", got, want, jp, dp, dS)
				}
				return true
			})
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
