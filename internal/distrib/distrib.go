// Package distrib implements the paper's §3.1 computation and data
// distribution: tiles are mapped to an (n−1)-dimensional processor mesh by
// collapsing the mapping dimension m (chosen as the dimension with the
// maximum number of tiles, per the UET-UCT optimality result [3]); each
// processor executes its chain of tiles in sequence and owns a dense
// rectangular Local Data Space (LDS) addressed through the map()/map⁻¹()
// and loc()/loc⁻¹() functions of Tables 1–2.
package distrib

import (
	"fmt"
	"sort"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
	"tilespace/internal/tiling"
)

// Distribution assigns every tile of a tiled space to a processor and lays
// out each processor's LDS.
type Distribution struct {
	TS *tiling.TiledSpace
	// M is the 0-based mapping dimension: tiles differing only in j^S_m
	// run on the same processor.
	M int

	// Off holds the paper's LDS offsets: Off[k] = ⌈maxd'_k / c_k⌉ for
	// k ≠ m (space for received data), Off[m] = v_m/c_m (space for the
	// initial chain boundary).
	Off ilin.Vec

	// Pids lists the processor identifiers — the (n−1)-dimensional tile
	// coordinates with dimension m removed — in lexicographic order; the
	// index of a pid in this list is its rank.
	Pids []ilin.Vec

	// ChainStart[r] and ChainLen[r] describe processor r's tile chain:
	// tiles j^S with j^S_m = ChainStart[r] … ChainStart[r]+ChainLen[r]−1.
	ChainStart []int64
	ChainLen   []int64

	// DM is the set of processor dependencies D^m: the distinct nonzero
	// projections of D^S onto the non-mapping dimensions.
	DM []ilin.Vec

	rankOf map[string]int
}

// ChooseMappingDim returns the dimension with the maximum number of tiles,
// the paper's mapping heuristic (map the longest chain onto one processor
// so the (n−1)-D mesh is as small as the problem allows).
func ChooseMappingDim(ts *tiling.TiledSpace) int {
	best, bestLen := 0, int64(-1)
	for k := 0; k < ts.T.N; k++ {
		if l := ts.TileHi[k] - ts.TileLo[k] + 1; l > bestLen {
			best, bestLen = k, l
		}
	}
	return best
}

// New builds the distribution for mapping dimension m. Errors cover: m out
// of range, stride/extent divisibility violations (the LDS addressing of
// §3.1 requires c_k | v_k), and non-contiguous tile chains (impossible for
// convex spaces; checked defensively).
func New(ts *tiling.TiledSpace, m int) (*Distribution, error) {
	n := ts.T.N
	if m < 0 || m >= n {
		return nil, fmt.Errorf("distrib: mapping dimension %d out of range [0, %d)", m, n)
	}
	for k := 0; k < n; k++ {
		if ts.T.V[k]%ts.T.C[k] != 0 {
			return nil, fmt.Errorf("distrib: stride c_%d = %d does not divide tile extent v_%d = %d; LDS addressing needs c_k | v_k", k+1, ts.T.C[k], k+1, ts.T.V[k])
		}
	}
	d := &Distribution{TS: ts, M: m, rankOf: map[string]int{}}

	d.Off = make(ilin.Vec, n)
	for k := 0; k < n; k++ {
		if k == m {
			d.Off[k] = ts.T.V[k] / ts.T.C[k]
		} else {
			d.Off[k] = rat.CeilDiv(ts.MaxDP[k], ts.T.C[k])
		}
	}

	// Group tiles by pid, collecting each chain's m-range.
	type chain struct {
		pid      ilin.Vec
		min, max int64
		count    int64
	}
	chains := map[string]*chain{}
	ts.ScanTiles(func(jS ilin.Vec) bool {
		pid := projectOut(jS, m)
		key := pid.String()
		c, ok := chains[key]
		if !ok {
			c = &chain{pid: pid.Clone(), min: jS[m], max: jS[m]}
			chains[key] = c
		}
		if jS[m] < c.min {
			c.min = jS[m]
		}
		if jS[m] > c.max {
			c.max = jS[m]
		}
		c.count++
		return true
	})
	keys := make([]string, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return chains[keys[i]].pid.LexLess(chains[keys[j]].pid)
	})
	for r, k := range keys {
		c := chains[k]
		if c.count != c.max-c.min+1 {
			return nil, fmt.Errorf("distrib: tile chain of processor %v is not contiguous (%d tiles over [%d, %d])", c.pid, c.count, c.min, c.max)
		}
		d.Pids = append(d.Pids, c.pid)
		d.ChainStart = append(d.ChainStart, c.min)
		d.ChainLen = append(d.ChainLen, c.count)
		d.rankOf[k] = r
	}

	// Processor dependencies D^m: distinct nonzero projections of D^S.
	seen := map[string]bool{}
	for _, dS := range ts.DS {
		dm := projectOut(dS, m)
		if dm.IsZero() {
			continue
		}
		if key := dm.String(); !seen[key] {
			seen[key] = true
			d.DM = append(d.DM, dm)
		}
	}
	sort.Slice(d.DM, func(i, j int) bool { return d.DM[i].LexLess(d.DM[j]) })
	return d, nil
}

// projectOut removes coordinate m from v.
func projectOut(v ilin.Vec, m int) ilin.Vec {
	out := make(ilin.Vec, 0, len(v)-1)
	out = append(out, v[:m]...)
	return append(out, v[m+1:]...)
}

// insertAt re-inserts coordinate m with value x.
func insertAt(v ilin.Vec, m int, x int64) ilin.Vec {
	out := make(ilin.Vec, 0, len(v)+1)
	out = append(out, v[:m]...)
	out = append(out, x)
	return append(out, v[m:]...)
}

// NumProcs returns the number of processors (mesh cells with ≥ 1 tile).
func (d *Distribution) NumProcs() int { return len(d.Pids) }

// PidOf returns the processor identifier of tile j^S.
func (d *Distribution) PidOf(jS ilin.Vec) ilin.Vec { return projectOut(jS, d.M) }

// Rank returns the linear rank of a pid; ok is false for pids with no
// tiles.
func (d *Distribution) Rank(pid ilin.Vec) (int, bool) {
	r, ok := d.rankOf[pid.String()]
	return r, ok
}

// RankOfTile returns the rank executing tile j^S.
func (d *Distribution) RankOfTile(jS ilin.Vec) (int, bool) {
	return d.Rank(d.PidOf(jS))
}

// TileAt reconstructs the tile j^S of processor rank r at chain position t
// (t = 0 is the processor's first tile).
func (d *Distribution) TileAt(r int, t int64) ilin.Vec {
	return insertAt(d.Pids[r], d.M, d.ChainStart[r]+t)
}

// TIndex returns the chain position of tile j^S on its own processor.
func (d *Distribution) TIndex(jS ilin.Vec) (int64, bool) {
	r, ok := d.RankOfTile(jS)
	if !ok {
		return 0, false
	}
	return jS[d.M] - d.ChainStart[r], true
}

// DmOf projects a tile dependence to its processor dependence.
func (d *Distribution) DmOf(dS ilin.Vec) ilin.Vec { return projectOut(dS, d.M) }

// MinSucc returns the paper's minsucc(s, d^m): the lexicographically
// minimum valid successor tile of s in processor direction d^m, i.e. the
// tile that performs the (single) receive of s's message along d^m. ok is
// false when no valid successor exists.
func (d *Distribution) MinSucc(s ilin.Vec, dm ilin.Vec) (ilin.Vec, bool) {
	var best ilin.Vec
	for _, dS := range d.TS.DS {
		if !d.DmOf(dS).Equal(dm) {
			continue
		}
		succ := s.Add(dS)
		if !d.TS.ValidTile(succ) {
			continue
		}
		if best == nil || succ.LexLess(best) {
			best = succ
		}
	}
	return best, best != nil
}

// LDSShape returns the per-dimension extents of processor r's Local Data
// Space: Off[k] + v_k/c_k for k ≠ m, and Off[m] + |chain|·v_m/c_m for the
// mapping dimension (Figure 3).
func (d *Distribution) LDSShape(r int) ilin.Vec {
	n := d.TS.T.N
	shape := make(ilin.Vec, n)
	for k := 0; k < n; k++ {
		per := d.TS.T.V[k] / d.TS.T.C[k]
		if k == d.M {
			shape[k] = d.Off[k] + d.ChainLen[r]*per
		} else {
			shape[k] = d.Off[k] + per
		}
	}
	return shape
}

// LDSSize returns the number of cells in processor r's LDS.
func (d *Distribution) LDSSize(r int) int64 {
	size := int64(1)
	for _, s := range d.LDSShape(r) {
		size *= s
	}
	return size
}

// Map is the paper's map(j', t): the LDS cell storing the computation of
// TTIS point j' of the t-th tile in a processor's chain. Floor division
// condenses the TTIS lattice (stride c_k) into dense cells; negative
// arguments (reads of received or initial data, j' − d') land in the
// offset pad.
func (d *Distribution) Map(jp ilin.Vec, t int64) ilin.Vec {
	n := d.TS.T.N
	out := make(ilin.Vec, n)
	for k := 0; k < n; k++ {
		if k == d.M {
			out[k] = rat.FloorDiv(t*d.TS.T.V[k]+jp[k], d.TS.T.C[k]) + d.Off[k]
		} else {
			out[k] = rat.FloorDiv(jp[k], d.TS.T.C[k]) + d.Off[k]
		}
	}
	return out
}

// MapInverse inverts Map for cells in the computation region: given an LDS
// cell j” it returns the chain position t and the TTIS point j'. The
// reconstruction walks the Hermite form H̃' top-down, recovering each
// lattice coordinate and the stride remainders the paper's Table 2
// expresses with modulo sums. ok is false for cells that correspond to no
// lattice point (padding or unused cells).
func (d *Distribution) MapInverse(jpp ilin.Vec) (t int64, jp ilin.Vec, ok bool) {
	n := d.TS.T.N
	ht := d.TS.T.HT
	c := d.TS.T.C
	v := d.TS.T.V
	jp = make(ilin.Vec, n)
	z := make(ilin.Vec, n)
	for k := 0; k < n; k++ {
		var base int64
		for l := 0; l < k; l++ {
			base += ht.At(k, l) * z[l]
		}
		rem := rat.Mod(base, c[k])
		if k == d.M {
			x := c[k]*(jpp[k]-d.Off[k]) + rem
			t = rat.FloorDiv(x, v[k])
			jp[k] = x - t*v[k]
		} else {
			jp[k] = c[k]*(jpp[k]-d.Off[k]) + rem
		}
		if jp[k] < 0 || jp[k] >= v[k] {
			return 0, nil, false
		}
		z[k] = (jp[k] - base) / c[k]
	}
	return t, jp, true
}

// Loc is the paper's loc(j) (Table 1): the processor rank and LDS cell
// where iteration j's result is stored.
func (d *Distribution) Loc(j ilin.Vec) (rank int, jpp ilin.Vec, err error) {
	jS := d.TS.T.TileOf(j)
	r, ok := d.RankOfTile(jS)
	if !ok {
		return 0, nil, fmt.Errorf("distrib: iteration %v falls in unassigned tile %v", j, jS)
	}
	jp := d.TS.T.TTISCoord(j, jS)
	t := jS[d.M] - d.ChainStart[r]
	return r, d.Map(jp, t), nil
}

// LocInverse is the paper's loc⁻¹(j”, pid) (Table 2): the original
// iteration whose result lives in cell j” of processor rank r. ok is
// false for pad/unused cells.
func (d *Distribution) LocInverse(r int, jpp ilin.Vec) (ilin.Vec, bool) {
	t, jp, ok := d.MapInverse(jpp)
	if !ok {
		return nil, false
	}
	if t < 0 || t >= d.ChainLen[r] {
		return nil, false
	}
	jS := d.TileAt(r, t)
	z, ok := d.TS.T.ZOf(jp)
	if !ok {
		return nil, false
	}
	return d.TS.T.Global(jS, z), true
}

// Flatten converts a multi-dimensional LDS cell to a linear index for
// processor r's backing array, row-major.
func (d *Distribution) Flatten(r int, jpp ilin.Vec) int64 {
	shape := d.LDSShape(r)
	var idx int64
	for k := 0; k < len(shape); k++ {
		if jpp[k] < 0 || jpp[k] >= shape[k] {
			panic(fmt.Sprintf("distrib: LDS cell %v outside shape %v (rank %d)", jpp, shape, r))
		}
		idx = idx*shape[k] + jpp[k]
	}
	return idx
}

// String summarizes the distribution.
func (d *Distribution) String() string {
	return fmt.Sprintf("distrib: m=%d, %d processors, offsets %v, %d processor deps", d.M+1, d.NumProcs(), d.Off, len(d.DM))
}

// CommRegion enumerates the communication points of tile s along processor
// direction d^m: the (boundary-clamped) lattice points of s whose TTIS
// coordinate satisfies j'_k ≥ cc_k on every non-mapping dimension where
// d^m is 1 (§3.2). Sender pack, receiver unpack and the simulator all
// evaluate this identically, so message contents pair up by construction.
// fn may be nil to just count.
func (d *Distribution) CommRegion(s, dm ilin.Vec, fn func(z, jp ilin.Vec) bool) int64 {
	cc := d.TS.CC
	var count int64
	d.TS.ScanTilePoints(s, func(z, jp ilin.Vec) bool {
		idx := 0
		for k := 0; k < d.TS.T.N; k++ {
			if k == d.M {
				continue
			}
			if dm[idx] == 1 && jp[k] < cc[k] {
				return true
			}
			idx++
		}
		count++
		if fn != nil {
			return fn(z, jp)
		}
		return true
	})
	return count
}

// FullTileCommCount returns the communication-region size of a tile that
// is fully inside the iteration space — a tile-independent constant per
// direction, so large simulations can cache it.
func (d *Distribution) FullTileCommCount(dm ilin.Vec) int64 {
	cc := d.TS.CC
	var count int64
	d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
		idx := 0
		for k := 0; k < d.TS.T.N; k++ {
			if k == d.M {
				continue
			}
			if dm[idx] == 1 && jp[k] < cc[k] {
				return true
			}
			idx++
		}
		count++
		return true
	})
	return count
}

// HasSuccessor reports whether tile s has at least one valid successor
// tile in processor direction d^m (the paper's send condition).
func (d *Distribution) HasSuccessor(s, dm ilin.Vec) bool {
	for _, dS := range d.TS.DS {
		if d.DmOf(dS).Equal(dm) && d.TS.ValidTile(s.Add(dS)) {
			return true
		}
	}
	return false
}

// CommRegionCount counts the §3.2 communication region of tile s along
// d^m without enumerating the innermost loop (closed form via
// tiling.CountTilePoints); always equals CommRegion(s, dm, nil).
func (d *Distribution) CommRegionCount(s, dm ilin.Vec) int64 {
	minJP := make(ilin.Vec, d.TS.T.N)
	idx := 0
	for k := 0; k < d.TS.T.N; k++ {
		if k == d.M {
			continue
		}
		if dm[idx] == 1 {
			minJP[k] = d.TS.CC[k]
		}
		idx++
	}
	return d.TS.CountTilePoints(s, minJP)
}

// MapInversePaper is the literal Table 2 map⁻¹ formula of the paper:
//
//	t    = (j''_m − off_m)·c_m / v_m
//	j'_k = c_k·(j''_k − off_k) + (Σ_{l<k} h̃'_kl·j'_l) mod c_k   (k ≠ m)
//	j'_m = c_m·(j''_m − off_m) − t·v_m + (Σ_{l<m} h̃'_ml·j'_l) mod c_m
//
// using previously recovered j'_l values (not lattice coordinates) inside
// the modulo sums. MapInverse recovers the strides' remainders through the
// lattice coordinates instead; the two agree on every computation cell
// (pinned by tests), because modulo c_k the Hermite column relations make
// Σ h̃'_kl·j'_l ≡ Σ h̃'_kl·z_l. Kept as a faithful reference.
func (d *Distribution) MapInversePaper(jpp ilin.Vec) (t int64, jp ilin.Vec) {
	n := d.TS.T.N
	ht := d.TS.T.HT
	c := d.TS.T.C
	v := d.TS.T.V
	jp = make(ilin.Vec, n)
	// The paper evaluates t first from the mapping coordinate alone.
	t = rat.FloorDiv((jpp[d.M]-d.Off[d.M])*c[d.M], v[d.M])
	for k := 0; k < n; k++ {
		var sum int64
		for l := 0; l < k; l++ {
			sum += ht.At(k, l) * jp[l]
		}
		rem := rat.Mod(sum, c[k])
		if k == d.M {
			jp[k] = c[k]*(jpp[k]-d.Off[k]) - t*v[k] + rem
		} else {
			jp[k] = c[k]*(jpp[k]-d.Off[k]) + rem
		}
	}
	return t, jp
}
