package distrib

import (
	"sort"

	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// This file derives the intra-tile parallel schedule: the second tiling
// level that splits one tile's clamped TTIS lattice into wavefronts of
// mutually independent points. Ranks already walk tiles in the paper's
// chain order; inside a tile the executor was point-serial. The dependence
// cone says it does not have to be: a legal tiling makes every transformed
// dependence d' = H'·d componentwise non-negative and non-zero, so a small
// set S of "sequential" dimensions covers every dependence (each d' has a
// positive component in S), and the level sets of
//
//	σ(j') = Σ_{k∈S} j'_k
//
// are safe wavefronts: if point A reads point B = A − d' of the same tile,
// then σ(B) = σ(A) − Σ_{k∈S} d'_k < σ(A), so B lies in a strictly earlier
// wavefront. Points sharing a σ value are mutually independent (their
// difference would be a dependence with zero S-components, which the cover
// rules out), and each point writes only its own LDS cell, so any
// execution order inside a wavefront — including concurrent workers —
// yields bit-identical results. internal/verify re-proves this per shape
// (the firing order is a linear extension of the intra-tile dependence
// order); internal/exec executes it with a per-rank worker pool.

// SeqDims returns the sequential dimension set S for the transformed
// dependence matrix dp (D' = H'·D, dimensions × dependences): a greedy
// cover choosing the lowest dimensions first, so that every dependence
// column has a positive component in some chosen dimension. Dimensions
// outside S carry no uncovered dependence and may be walked in parallel
// within a wavefront. An empty dependence matrix yields an empty S (every
// point independent).
func SeqDims(dp *ilin.Mat) []int {
	covered := make([]bool, dp.Cols)
	left := dp.Cols
	var seq []int
	for k := 0; k < dp.Rows && left > 0; k++ {
		use := false
		for l := 0; l < dp.Cols; l++ {
			if !covered[l] && dp.At(k, l) != 0 {
				use = true
				break
			}
		}
		if !use {
			continue
		}
		seq = append(seq, k)
		for l := 0; l < dp.Cols; l++ {
			if !covered[l] && dp.At(k, l) != 0 {
				covered[l] = true
				left--
			}
		}
	}
	return seq
}

// LocalSchedule is the wavefront decomposition of one clamped tile shape:
// point indices (into the shape's ScanTilePoints-order lattice list) are
// grouped into fronts of mutually independent points, fronts ordered by
// strictly ascending σ. The schedule depends only on the shape's z-list
// and the tiling (not on the tile position), so one schedule serves every
// same-shape tile — it is cached alongside the tile plans.
type LocalSchedule struct {
	// Seq is the sequential dimension set S the wavefront key sums over.
	Seq []int
	// Sigma[i] is σ of point i in shape order.
	Sigma []int64
	// Fronts lists point indices per wavefront, σ strictly ascending
	// across fronts; within a front indices keep shape (z-lex) order.
	Fronts [][]int32
}

// NewLocalSchedule derives the wavefront schedule of the clamped shape zs
// (the flat npts×n lattice point list of ScanTilePoints) under the tiling
// of ts, with seq the sequential dimension set (SeqDims of ts.DP).
func NewLocalSchedule(ts *tiling.TiledSpace, zs []int64, seq []int) *LocalSchedule {
	n := ts.T.N
	npts := len(zs) / n
	ls := &LocalSchedule{Seq: seq, Sigma: make([]int64, npts)}
	// j'_k = Σ_{l≤k} H̃'_{kl}·z_l (H̃' is lower-triangular); σ only needs
	// the rows in S.
	for i := 0; i < npts; i++ {
		z := zs[i*n : i*n+n]
		var sig int64
		for _, k := range seq {
			for l := 0; l <= k; l++ {
				sig += ts.T.HT.At(k, l) * z[l]
			}
		}
		ls.Sigma[i] = sig
	}
	idx := make([]int32, npts)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return ls.Sigma[idx[a]] < ls.Sigma[idx[b]] })
	for s := 0; s < npts; {
		e := s
		for e < npts && ls.Sigma[idx[e]] == ls.Sigma[idx[s]] {
			e++
		}
		ls.Fronts = append(ls.Fronts, idx[s:e:e])
		s = e
	}
	return ls
}

// FootprintRun is one maximal stride-1 stretch of a wavefront's compute
// footprint: N points, in the given order, whose write cell and every
// read cell all advance by exactly one LDS cell per point. Offsets are
// chain-slot-0 cell addresses (add t·Addresser.ChainStep to place them),
// exactly like pack runs. Within a run the executor's inner loop is a
// contiguous slice walk — no address table lookups.
type FootprintRun struct {
	// Start indexes the first point of the run in the order slice passed
	// to FootprintRuns.
	Start int32
	// N is the run length in points.
	N int32
	// WO is the write cell of the first point.
	WO int64
	// RO[l] is read cell of dependence l for the first point.
	RO []int64
}

// FootprintRuns decomposes one wavefront's points — order holds point
// indices, already sorted by write offset — into maximal stride-1 runs
// over the full compute footprint: writeOff[p] and all q entries of
// readOff[p·q : p·q+q] must advance by +1 from one point to the next,
// the same empirical contiguity test CommRuns applies to pack regions.
func FootprintRuns(order []int32, writeOff, readOff []int64, q int) []FootprintRun {
	var runs []FootprintRun
	for s := 0; s < len(order); {
		p := int(order[s])
		run := FootprintRun{Start: int32(s), WO: writeOff[p], RO: make([]int64, q)}
		copy(run.RO, readOff[p*q:p*q+q])
		e := s + 1
		for ; e < len(order); e++ {
			a, b := int(order[e-1]), int(order[e])
			if writeOff[b] != writeOff[a]+1 {
				break
			}
			ok := true
			for l := 0; l < q; l++ {
				if readOff[b*q+l] != readOff[a*q+l]+1 {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		run.N = int32(e - s)
		runs = append(runs, run)
		s = e
	}
	return runs
}
