package distrib

import (
	"tilespace/internal/ilin"
)

// Run is one maximal contiguous stretch of LDS cells inside a
// communication region: N cells starting at flat address Off (cell units,
// evaluated at chain slot 0 — add t·Addresser.ChainStep() to place it at
// chain slot t, and Addresser.DirShift(dmFull) to turn a pack run into its
// unpack counterpart).
type Run struct {
	Off int64
	N   int64
}

// CommRuns walks the §3.2 communication region of tile s along processor
// direction d^m once and returns it as maximal contiguous LDS runs in
// region scan order, together with the total point count (fusing the
// count-then-pack double walk the executor used to do). The innermost TTIS
// dimension has stride 1 in the flat LDS by construction, so full-tile
// regions collapse to a handful of runs; bulk copies over the runs replace
// per-point address evaluation in both pack and unpack.
func (d *Distribution) CommRuns(s, dm ilin.Vec, a *Addresser) ([]Run, int64) {
	var (
		runs  []Run
		total int64
		prev  int64 = -2 // never adjacent to a real first address
	)
	d.CommRegion(s, dm, func(z, jp ilin.Vec) bool {
		flat := a.Flat(jp, 0)
		if flat == prev+1 {
			runs[len(runs)-1].N++
		} else {
			runs = append(runs, Run{Off: flat, N: 1})
		}
		prev = flat
		total++
		return true
	})
	return runs, total
}
