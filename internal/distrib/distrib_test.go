package distrib

import (
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/rat"
	"tilespace/internal/tiling"
)

func rect2D(t *testing.T, hi1, hi2, s1, s2 int64) *tiling.TiledSpace {
	t.Helper()
	nest, err := loopnest.Box([]string{"i", "j"}, []int64{0, 0}, []int64{hi1, hi2},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tiling.Rectangular(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestChooseMappingDim(t *testing.T) {
	ts := rect2D(t, 19, 5, 2, 2) // 10 tiles × 3 tiles
	if got := ChooseMappingDim(ts); got != 0 {
		t.Errorf("mapping dim = %d, want 0", got)
	}
	ts2 := rect2D(t, 5, 19, 2, 2)
	if got := ChooseMappingDim(ts2); got != 1 {
		t.Errorf("mapping dim = %d, want 1", got)
	}
}

func TestNewBasics(t *testing.T) {
	ts := rect2D(t, 19, 5, 2, 2)
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumProcs() != 3 {
		t.Errorf("NumProcs = %d, want 3", d.NumProcs())
	}
	for r := 0; r < 3; r++ {
		if d.ChainLen[r] != 10 || d.ChainStart[r] != 0 {
			t.Errorf("chain %d = start %d len %d", r, d.ChainStart[r], d.ChainLen[r])
		}
	}
	// D^S = {(1,0),(0,1)}; projecting out m=0: (1,0)→(0) drops, (0,1)→(1).
	if len(d.DM) != 1 || !d.DM[0].Equal(ilin.NewVec(1)) {
		t.Errorf("DM = %v", d.DM)
	}
	// Off: k=0 is m → v_0/c_0 = 2; k=1: ceil(maxd'_1/c_1) = 1.
	if !d.Off.Equal(ilin.NewVec(2, 1)) {
		t.Errorf("Off = %v", d.Off)
	}
	if !d.LDSShape(0).Equal(ilin.NewVec(2+10*2, 1+2)) {
		t.Errorf("LDSShape = %v", d.LDSShape(0))
	}
	if d.LDSSize(0) != 22*3 {
		t.Errorf("LDSSize = %d", d.LDSSize(0))
	}
	if d.String() == "" {
		t.Error("empty String")
	}
}

func TestNewErrors(t *testing.T) {
	ts := rect2D(t, 5, 5, 2, 2)
	if _, err := New(ts, -1); err == nil {
		t.Error("negative m not rejected")
	}
	if _, err := New(ts, 2); err == nil {
		t.Error("out-of-range m not rejected")
	}
}

func TestRankPidRoundTrip(t *testing.T) {
	ts := rect2D(t, 9, 9, 2, 2) // 5×5 tiles
	d, err := New(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumProcs() != 5 {
		t.Fatalf("NumProcs = %d", d.NumProcs())
	}
	ts.ScanTiles(func(jS ilin.Vec) bool {
		r, ok := d.RankOfTile(jS)
		if !ok {
			t.Fatalf("tile %v unassigned", jS)
		}
		ti, _ := d.TIndex(jS)
		if got := d.TileAt(r, ti); !got.Equal(jS) {
			t.Fatalf("TileAt(RankOfTile) = %v, want %v", got, jS)
		}
		return true
	})
	if _, ok := d.Rank(ilin.NewVec(99)); ok {
		t.Error("unknown pid should have no rank")
	}
}

func TestMinSucc(t *testing.T) {
	ts := rect2D(t, 9, 9, 2, 2)
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Successors of tile (2,2) in direction (1): only d^S = (0,1) projects
	// to (1), so minsucc = (2,3).
	succ, ok := d.MinSucc(ilin.NewVec(2, 2), ilin.NewVec(1))
	if !ok || !succ.Equal(ilin.NewVec(2, 3)) {
		t.Errorf("MinSucc = %v, %v", succ, ok)
	}
	// Boundary tile (2,4) has no successor in direction (1).
	if _, ok := d.MinSucc(ilin.NewVec(2, 4), ilin.NewVec(1)); ok {
		t.Error("boundary tile should have no successor")
	}
}

// TestMapDense: over a chain, Map must be a bijection from (t, lattice j')
// onto the computation region of the LDS.
func TestMapDense(t *testing.T) {
	ts := rect2D(t, 9, 5, 2, 3)
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	var points int64
	for ti := int64(0); ti < d.ChainLen[0]; ti++ {
		ts.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			cell := d.Map(jp, ti)
			idx := d.Flatten(0, cell)
			if seen[idx] {
				t.Fatalf("cell %v hit twice", cell)
			}
			seen[idx] = true
			points++
			return true
		})
	}
	if int64(len(seen)) != points || points != d.ChainLen[0]*ts.T.TileSize {
		t.Errorf("mapped %d cells for %d points", len(seen), points)
	}
}

// TestMapInverseRoundTrip covers the stride-2 Jacobi lattice.
func TestMapInverseRoundTrip(t *testing.T) {
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 2))
	h.Set(0, 1, rat.New(-1, 4))
	h.Set(1, 1, rat.New(1, 4))
	h.Set(2, 2, rat.New(1, 3))
	deps := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{1, 2, 0, 1, 1},
		[]int64{1, 1, 1, 2, 0},
	)
	nest, err := loopnest.Box([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{7, 7, 7}, deps)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ti := int64(0); ti < 3; ti++ {
		ts.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			cell := d.Map(jp, ti)
			gt, gjp, ok := d.MapInverse(cell)
			if !ok || gt != ti || !gjp.Equal(jp) {
				t.Fatalf("MapInverse(Map(%v, %d)) = (%d, %v, %v)", jp, ti, gt, gjp, ok)
			}
			return true
		})
	}
}

// TestLocRoundTrip: loc followed by loc⁻¹ is the identity on every
// iteration of the space (Table 1 ∘ Table 2 = id).
func TestLocRoundTrip(t *testing.T) {
	ts := rect2D(t, 9, 6, 2, 3)
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ts.Nest.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	nb.Scan(func(j ilin.Vec) bool {
		r, cell, err := d.Loc(j)
		if err != nil {
			t.Fatalf("Loc(%v): %v", j, err)
		}
		back, ok := d.LocInverse(r, cell)
		if !ok || !back.Equal(j) {
			t.Fatalf("LocInverse(Loc(%v)) = %v, %v", j, back, ok)
		}
		return true
	})
}

// TestLocDistinct: no two iterations share a processor cell.
func TestLocDistinct(t *testing.T) {
	ts := rect2D(t, 8, 8, 3, 3)
	d, err := New(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := ts.Nest.Bounds()
	seen := map[string]bool{}
	nb.Scan(func(j ilin.Vec) bool {
		r, cell, err := d.Loc(j)
		if err != nil {
			t.Fatal(err)
		}
		key := string(rune(r)) + cell.String()
		if seen[key] {
			t.Fatalf("cell collision at %v", j)
		}
		seen[key] = true
		return true
	})
}

func TestLocInversePadCells(t *testing.T) {
	ts := rect2D(t, 9, 5, 2, 3)
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cell in the pad region (below offsets) must not invert.
	if _, ok := d.LocInverse(0, ilin.NewVec(0, 0)); ok {
		t.Error("pad cell inverted")
	}
}

func TestFlattenPanicsOutside(t *testing.T) {
	ts := rect2D(t, 5, 5, 2, 2)
	d, _ := New(ts, 0)
	defer func() {
		if recover() == nil {
			t.Error("Flatten outside shape did not panic")
		}
	}()
	d.Flatten(0, ilin.NewVec(-1, 0))
}

// TestCommRegionCountMatchesScan: closed form vs enumerated region.
func TestCommRegionCountMatchesScan(t *testing.T) {
	ts := rect2D(t, 13, 10, 3, 4)
	d, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts.ScanTiles(func(jS ilin.Vec) bool {
		for _, dm := range d.DM {
			if got, want := d.CommRegionCount(jS, dm), d.CommRegion(jS, dm, nil); got != want {
				t.Fatalf("tile %v dm %v: closed %d, scan %d", jS, dm, got, want)
			}
		}
		return true
	})
	if d.FullTileCommCount(d.DM[0]) != d.CommRegionCount(ilin.NewVec(1, 1), d.DM[0]) {
		t.Error("full-tile comm count mismatch on interior tile")
	}
}

// TestMapInversePaperAgrees: the literal Table 2 formula and our
// lattice-coordinate reconstruction agree on every computation cell of a
// chain, including the stride-2 Jacobi lattice.
func TestMapInversePaperAgrees(t *testing.T) {
	// Jacobi-style (stride 2, incremental offset) distribution.
	d := jacobiDist(t)
	for ti := int64(0); ti < min64(3, d.ChainLen[0]); ti++ {
		d.TS.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			cell := d.Map(jp, ti)
			wt, wjp, ok := d.MapInverse(cell)
			if !ok {
				t.Fatalf("MapInverse failed at %v", cell)
			}
			pt, pjp := d.MapInversePaper(cell)
			if pt != wt || !pjp.Equal(wjp) {
				t.Fatalf("paper formula (%d, %v) != reconstruction (%d, %v) at cell %v",
					pt, pjp, wt, wjp, cell)
			}
			return true
		})
	}
	// And a dense (all strides 1) SOR-style case.
	ts := rect2D(t, 11, 7, 3, 2)
	d2, err := New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ti := int64(0); ti < d2.ChainLen[0]; ti++ {
		ts.T.ScanTTIS(func(z, jp ilin.Vec) bool {
			cell := d2.Map(jp, ti)
			wt, wjp, _ := d2.MapInverse(cell)
			pt, pjp := d2.MapInversePaper(cell)
			if pt != wt || !pjp.Equal(wjp) {
				t.Fatalf("dense case mismatch at %v", cell)
			}
			return true
		})
	}
}
