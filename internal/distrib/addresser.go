package distrib

import (
	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// Addresser computes flat LDS indices for one processor rank without
// allocating — the execution hot path evaluates Map ∘ Flatten per
// dependence per iteration point.
type Addresser struct {
	n      int
	m      int
	off    ilin.Vec
	c, v   ilin.Vec
	shape  ilin.Vec
	stride ilin.Vec // row-major flattening strides
}

// Addresser returns the flat addresser for processor rank r.
func (d *Distribution) Addresser(r int) *Addresser {
	shape := d.LDSShape(r)
	n := len(shape)
	stride := make(ilin.Vec, n)
	s := int64(1)
	for k := n - 1; k >= 0; k-- {
		stride[k] = s
		s *= shape[k]
	}
	return &Addresser{
		n: n, m: d.M, off: d.Off.Clone(),
		c: d.TS.T.C.Clone(), v: d.TS.T.V.Clone(),
		shape: shape, stride: stride,
	}
}

// Size returns the number of LDS cells.
func (a *Addresser) Size() int64 { return a.stride[0] * a.shape[0] }

// ChainStep returns the flat-address increment per chain slot: because the
// distribution validates c_m | v_m, Flat(j', t) = Flat(j', 0) + t·ChainStep
// exactly — FloorDiv(t·v_m + x, c_m) = t·(v_m/c_m) + FloorDiv(x, c_m). The
// same step applies to FlatRead (in t) and FlatUnpack (in tau). This is the
// strength-reduction identity compiled tile plans replay addresses with.
func (a *Addresser) ChainStep() int64 {
	return (a.v[a.m] / a.c[a.m]) * a.stride[a.m]
}

// DirShift returns the constant flat-address shift that turns a pack
// address into the matching unpack address for processor direction dmFull
// (the full-dimensional direction with 0 at the mapping dimension):
//
//	FlatUnpack(p', dmFull, tau) = Flat(p', tau) + DirShift(dmFull)
//
// exactly, because c_k | v_k makes FloorDiv(p'_k − v_k·dm_k, c_k) =
// FloorDiv(p'_k, c_k) − (v_k/c_k)·dm_k. Receivers replay the sender-order
// run list shifted by this constant instead of evaluating FlatUnpack per
// point.
func (a *Addresser) DirShift(dmFull ilin.Vec) int64 {
	var shift int64
	for k := 0; k < a.n; k++ {
		if k == a.m {
			continue
		}
		shift -= (a.v[k] / a.c[k]) * dmFull[k] * a.stride[k]
	}
	return shift
}

// Flat returns Flatten(Map(j', t)): the flat cell of TTIS point j' in
// chain slot t.
func (a *Addresser) Flat(jp ilin.Vec, t int64) int64 {
	var idx int64
	for k := 0; k < a.n; k++ {
		var cell int64
		if k == a.m {
			cell = rat.FloorDiv(t*a.v[k]+jp[k], a.c[k]) + a.off[k]
		} else {
			cell = rat.FloorDiv(jp[k], a.c[k]) + a.off[k]
		}
		idx += cell * a.stride[k]
	}
	return idx
}

// FlatRead returns the flat cell a compute step reads for dependence d':
// Flatten(Map(j' − d', t)). Negative components land in the offset pads or
// earlier chain slots, exactly as the paper's map() does.
func (a *Addresser) FlatRead(jp, dp ilin.Vec, t int64) int64 {
	var idx int64
	for k := 0; k < a.n; k++ {
		x := jp[k] - dp[k]
		var cell int64
		if k == a.m {
			cell = rat.FloorDiv(t*a.v[k]+x, a.c[k]) + a.off[k]
		} else {
			cell = rat.FloorDiv(x, a.c[k]) + a.off[k]
		}
		idx += cell * a.stride[k]
	}
	return idx
}

// FlatUnpack returns the flat cell where received data is stored: the
// owner-tile point p' of predecessor tile s (whose m-coordinate places it
// at chain offset tau = s_m − chainStart on this processor), shifted by
// the processor direction d^m on the non-mapping dimensions. Every future
// read of this value through any dependence resolves to this cell.
func (a *Addresser) FlatUnpack(pp ilin.Vec, dmFull ilin.Vec, tau int64) int64 {
	var idx int64
	for k := 0; k < a.n; k++ {
		var cell int64
		if k == a.m {
			cell = rat.FloorDiv(tau*a.v[k]+pp[k], a.c[k]) + a.off[k]
		} else {
			cell = rat.FloorDiv(pp[k]-a.v[k]*dmFull[k], a.c[k]) + a.off[k]
		}
		idx += cell * a.stride[k]
	}
	return idx
}
