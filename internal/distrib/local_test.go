package distrib

import (
	"testing"

	"tilespace/internal/ilin"
)

// TestSeqDimsHandCases pins the greedy cover on hand matrices.
func TestSeqDimsHandCases(t *testing.T) {
	cases := []struct {
		name string
		rows [][]int64
		want []int
	}{
		// Every column positive in dim 0 (Jacobi-after-skew shape): only
		// the time dimension is sequential.
		{"first-row-covers", [][]int64{{1, 1, 1}, {0, 2, 1}, {1, 0, 3}}, []int{0}},
		// Dim 0 misses column 2; dim 1 picks it up.
		{"two-dims", [][]int64{{1, 1, 0}, {0, 1, 2}, {3, 0, 1}}, []int{0, 1}},
		// Dim 0 carries nothing: skipped entirely.
		{"skip-empty-dim", [][]int64{{0, 0}, {2, 1}}, []int{1}},
		// Diagonal: every dimension carries its own dependence.
		{"diagonal", [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		got := SeqDims(ilin.MatFromRows(c.rows...))
		if len(got) != len(c.want) {
			t.Fatalf("%s: SeqDims = %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: SeqDims = %v, want %v", c.name, got, c.want)
			}
		}
	}
	if got := SeqDims(ilin.NewMat(3, 0)); len(got) != 0 {
		t.Fatalf("empty dependence matrix: SeqDims = %v, want empty", got)
	}
}

// TestSeqDimsCoverProperty: on a real cone-derived DP, every dependence
// column must have a nonzero component in some chosen dimension, and each
// chosen dimension must cover a column no earlier choice did (greedy
// non-redundancy).
func TestSeqDimsCoverProperty(t *testing.T) {
	dp := jacobiDist(t).TS.DP
	seq := SeqDims(dp)
	if len(seq) == 0 {
		t.Fatal("nonempty DP produced an empty sequential set")
	}
	covered := make([]bool, dp.Cols)
	for _, k := range seq {
		fresh := false
		for l := 0; l < dp.Cols; l++ {
			if dp.At(k, l) != 0 && !covered[l] {
				fresh = true
				covered[l] = true
			}
		}
		if !fresh {
			t.Fatalf("dimension %d covers no new column — not a greedy cover", k)
		}
	}
	for l, c := range covered {
		if !c {
			t.Fatalf("dependence column %d uncovered by %v", l, seq)
		}
	}
}

// TestNewLocalScheduleSafety: on real clamped shapes (interior and
// boundary), the schedule must partition the point set, keep σ strictly
// ascending across fronts and constant within a front, and — the safety
// theorem — place the source of every intra-tile dependence in a strictly
// earlier front than its sink.
func TestNewLocalScheduleSafety(t *testing.T) {
	d := jacobiDist(t)
	ts := d.TS
	n := ts.T.N
	seq := SeqDims(ts.DP)
	for r := 0; r < d.NumProcs(); r += d.NumProcs() - 1 {
		for ti := int64(0); ti < min64(2, d.ChainLen[r]); ti++ {
			tile := d.TileAt(r, ti)
			var zs []int64
			var jps [][]int64
			ts.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
				zs = append(zs, z...)
				jps = append(jps, append([]int64(nil), jp...))
				return true
			})
			npts := len(zs) / n
			ls := NewLocalSchedule(ts, zs, seq)
			if len(ls.Sigma) != npts {
				t.Fatalf("Sigma has %d entries, shape has %d points", len(ls.Sigma), npts)
			}
			frontOf := make([]int, npts)
			for i := range frontOf {
				frontOf[i] = -1
			}
			prev := int64(0)
			for fi, front := range ls.Fronts {
				if len(front) == 0 {
					t.Fatalf("front %d is empty", fi)
				}
				sig := ls.Sigma[front[0]]
				if fi > 0 && sig <= prev {
					t.Fatalf("front %d: σ=%d not above previous front's %d", fi, sig, prev)
				}
				prev = sig
				for _, idx := range front {
					if ls.Sigma[idx] != sig {
						t.Fatalf("front %d mixes σ=%d and σ=%d", fi, sig, ls.Sigma[idx])
					}
					if frontOf[idx] != -1 {
						t.Fatalf("point %d scheduled twice", idx)
					}
					frontOf[idx] = fi
				}
			}
			for i, f := range frontOf {
				if f == -1 {
					t.Fatalf("point %d never scheduled", i)
				}
			}
			// Safety: every intra-tile dependence crosses fronts forward.
			at := map[[3]int64]int{}
			for i, jp := range jps {
				at[[3]int64{jp[0], jp[1], jp[2]}] = i
			}
			for i, jp := range jps {
				for l := 0; l < ts.DP.Cols; l++ {
					src := [3]int64{
						jp[0] - ts.DP.At(0, l),
						jp[1] - ts.DP.At(1, l),
						jp[2] - ts.DP.At(2, l),
					}
					if s, ok := at[src]; ok && frontOf[s] >= frontOf[i] {
						t.Fatalf("dependence %d: source %v (front %d) not before sink %v (front %d)",
							l, src, frontOf[s], jp, frontOf[i])
					}
				}
			}
		}
	}
}

// TestFootprintRuns pins the run extraction on hand-built footprints.
func TestFootprintRuns(t *testing.T) {
	// Three points fully contiguous, then a write gap, then two more.
	writeOff := []int64{10, 11, 12, 20, 21}
	readOff := []int64{ // q = 2, interleaved per point
		5, 100, 6, 101, 7, 102,
		40, 200, 41, 201,
	}
	order := []int32{0, 1, 2, 3, 4}
	runs := FootprintRuns(order, writeOff, readOff, 2)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2: %+v", len(runs), runs)
	}
	if runs[0].Start != 0 || runs[0].N != 3 || runs[0].WO != 10 ||
		runs[0].RO[0] != 5 || runs[0].RO[1] != 100 {
		t.Fatalf("run 0 = %+v", runs[0])
	}
	if runs[1].Start != 3 || runs[1].N != 2 || runs[1].WO != 20 {
		t.Fatalf("run 1 = %+v", runs[1])
	}

	// Contiguous writes but one read stream jumps: the run must split even
	// though the write footprint alone would not.
	writeOff = []int64{0, 1, 2}
	readOff = []int64{50, 51, 99} // q = 1; point 2's read breaks stride
	runs = FootprintRuns([]int32{0, 1, 2}, writeOff, readOff, 1)
	if len(runs) != 2 || runs[0].N != 2 || runs[1].N != 1 || runs[1].WO != 2 {
		t.Fatalf("read-break runs = %+v", runs)
	}

	if runs := FootprintRuns(nil, nil, nil, 0); len(runs) != 0 {
		t.Fatalf("empty order produced %d runs", len(runs))
	}
}
