package apps

import (
	"testing"

	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// runOverlapMatrix executes an app under a tiling serially, in blocking
// parallel mode and in overlapped parallel mode, and requires all three
// to agree bit-for-bit — the §6 overlap scheme may change timing only,
// never results.
func runOverlapMatrix(t *testing.T, app *App, h *ilin.RatMat) {
	t.Helper()
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	for _, overlap := range []bool{false, true} {
		g, st, err := p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
		if err != nil {
			t.Fatalf("%s overlap=%v: %v", app.Name, overlap, err)
		}
		if diff, at := seq.MaxAbsDiff(g, p.ScanSpace); diff != 0 {
			t.Fatalf("%s overlap=%v: differs from serial by %g at %v", app.Name, overlap, diff, at)
		}
		if overlap && st.Messages > 0 && st.OverlappedSends != st.Messages {
			t.Fatalf("%s: %d of %d messages went through the blocking path in overlap mode",
				app.Name, st.Messages-st.OverlappedSends, st.Messages)
		}
	}
}

// The size grid: small enough to keep -short fast, varied enough to cover
// ragged boundaries (extents that don't divide the tile factors) and
// multi-chain mappings.
var overlapSizes = []struct{ a, b int64 }{
	{4, 8},
	{5, 9},
	{6, 12},
}

func TestSOROverlapMatchesSerial(t *testing.T) {
	for _, sz := range overlapSizes {
		app, err := SOR(sz.a, sz.b)
		if err != nil {
			t.Fatal(err)
		}
		runOverlapMatrix(t, app, app.Rect.H(2, 4, 4))
		runOverlapMatrix(t, app, app.NonRect[0].H(2, 4, 4))
	}
}

func TestJacobiOverlapMatchesSerial(t *testing.T) {
	for _, sz := range overlapSizes {
		app, err := Jacobi(sz.a, sz.b)
		if err != nil {
			t.Fatal(err)
		}
		runOverlapMatrix(t, app, app.Rect.H(2, 4, 4))
		runOverlapMatrix(t, app, app.NonRect[0].H(2, 4, 4))
	}
}

func TestADIOverlapMatchesSerial(t *testing.T) {
	for _, sz := range overlapSizes {
		app, err := ADI(sz.a, sz.b)
		if err != nil {
			t.Fatal(err)
		}
		runOverlapMatrix(t, app, app.Rect.H(2, 3, 3))
		for _, f := range app.NonRect {
			runOverlapMatrix(t, app, f.H(2, 3, 3))
		}
	}
}
