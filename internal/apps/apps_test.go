package apps

import (
	"testing"

	"tilespace/internal/cone"
	"tilespace/internal/distrib"
	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// colSet collects a dependence matrix's columns as a set of strings.
func colSet(d *ilin.Mat) map[string]bool {
	s := map[string]bool{}
	for l := 0; l < d.Cols; l++ {
		s[d.Col(l).String()] = true
	}
	return s
}

// TestSORSkewedDepsMatchPaper pins §4.1: the skewed SOR dependence columns
// are exactly {(1,1,2),(0,1,0),(1,0,2),(1,1,1),(0,0,1)}.
func TestSORSkewedDepsMatchPaper(t *testing.T) {
	app, err := SOR(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := colSet(app.Nest.Deps)
	want := ilin.MatFromRows(
		[]int64{1, 0, 1, 1, 0},
		[]int64{1, 1, 0, 1, 0},
		[]int64{2, 0, 2, 1, 1},
	)
	wantSet := colSet(want)
	if len(got) != len(wantSet) {
		t.Fatalf("got %d distinct deps, want %d", len(got), len(wantSet))
	}
	for k := range wantSet {
		if !got[k] {
			t.Errorf("missing skewed dep %s", k)
		}
	}
}

// TestJacobiSkewedDepsMatchPaper pins §4.2's skewed dependence columns.
func TestJacobiSkewedDepsMatchPaper(t *testing.T) {
	app, err := Jacobi(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := colSet(app.Nest.Deps)
	want := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{1, 2, 0, 1, 1},
		[]int64{1, 1, 1, 2, 0},
	)
	for k := range colSet(want) {
		if !got[k] {
			t.Errorf("missing skewed dep %s", k)
		}
	}
}

// TestADIDepsMatchPaper pins §4.3's D = [[1,1,1],[0,1,0],[0,0,1]].
func TestADIDepsMatchPaper(t *testing.T) {
	app, err := ADI(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := ilin.MatFromRows([]int64{1, 1, 1}, []int64{0, 1, 0}, []int64{0, 0, 1})
	if !app.Nest.Deps.Equal(want) {
		t.Errorf("ADI D =\n%v", app.Nest.Deps)
	}
}

// TestTilingFamiliesSameTileSize: for common (x,y,z) every family of an
// app yields 1/|det H| = x·y·z — the property that makes the paper's
// comparisons fair.
func TestTilingFamiliesSameTileSize(t *testing.T) {
	apps := buildAll(t, 6, 8)
	const x, y, z = 2, 4, 3
	for _, app := range apps {
		families := append([]TilingFamily{app.Rect}, app.NonRect...)
		for _, f := range families {
			tr, err := tiling.New(f.H(x, y, z))
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, f.Name, err)
			}
			if tr.TileSize != x*y*z {
				t.Errorf("%s/%s: tile size %d, want %d", app.Name, f.Name, tr.TileSize, x*y*z)
			}
		}
	}
}

// TestTilingsLegalAndConePlacement: all families are legal; the
// non-rectangular rows taken from the cone lie on its surface while the
// corresponding rectangular rows are interior (the Hodzic–Shang setup).
func TestTilingsLegalAndConePlacement(t *testing.T) {
	apps := buildAll(t, 6, 8)
	const x, y, z = 2, 4, 3
	for _, app := range apps {
		c := cone.New(app.Nest.Deps)
		families := append([]TilingFamily{app.Rect}, app.NonRect...)
		for _, f := range families {
			h := f.H(x, y, z)
			if !c.LegalTiling(h) {
				t.Errorf("%s/%s: illegal tiling", app.Name, f.Name)
			}
		}
		// The distinguishing row of each non-rect family must be on the
		// cone surface.
		for _, f := range app.NonRect {
			h := f.H(x, y, z)
			if !c.OnSurface(h.Row(0)) && !c.OnSurface(h.Row(2)) {
				t.Errorf("%s/%s: no modified row on the cone surface", app.Name, f.Name)
			}
		}
	}
}

func buildAll(t *testing.T, a, b int64) []*App {
	t.Helper()
	sor, err := SOR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	jac, err := Jacobi(a, b)
	if err != nil {
		t.Fatal(err)
	}
	adi, err := ADI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return []*App{sor, jac, adi}
}

// runBoth executes an app under a tiling both sequentially and in parallel
// and requires bit-identical results.
func runBoth(t *testing.T, app *App, h *ilin.RatMat) {
	t.Helper()
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := p.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(par, p.ScanSpace); diff != 0 {
		t.Fatalf("%s: parallel differs by %g at %v", app.Name, diff, at)
	}
}

// TestSORParallelMatchesSequential runs the real SOR stencil under both
// §4.1 tilings.
func TestSORParallelMatchesSequential(t *testing.T) {
	app, err := SOR(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, app, app.Rect.H(2, 4, 4))
	runBoth(t, app, app.NonRect[0].H(2, 4, 4))
}

func TestJacobiParallelMatchesSequential(t *testing.T) {
	app, err := Jacobi(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, app, app.Rect.H(2, 4, 4))
	runBoth(t, app, app.NonRect[0].H(2, 4, 4))
}

func TestADIParallelMatchesSequential(t *testing.T) {
	app, err := ADI(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, app, app.Rect.H(2, 3, 3))
	for _, f := range app.NonRect {
		runBoth(t, app, f.H(2, 3, 3))
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := SOR(0, 5); err == nil {
		t.Error("SOR(0, 5) should fail")
	}
	if _, err := Jacobi(5, 0); err == nil {
		t.Error("Jacobi(5, 0) should fail")
	}
	if _, err := ADI(-1, 5); err == nil {
		t.Error("ADI(-1, 5) should fail")
	}
}

// TestJacobiOddYRejected: the Jacobi non-rectangular H needs an even y.
func TestJacobiOddYRejected(t *testing.T) {
	app, err := Jacobi(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiling.New(app.NonRect[0].H(2, 3, 3)); err == nil {
		t.Error("odd y should be rejected (non-integral P)")
	}
}

// TestBoundaryValueDeterministic guards the test oracle itself.
func TestBoundaryValueDeterministic(t *testing.T) {
	if boundaryValue(3, 4) != boundaryValue(3, 4) {
		t.Error("boundaryValue not deterministic")
	}
	if adiCoef(2, 2) <= 0 {
		t.Error("adiCoef must be positive")
	}
}

// TestHeat3DParallelMatchesSequential: the 4-D extension verifies under
// both families (framework is dimension-generic).
func TestHeat3DParallelMatchesSequential(t *testing.T) {
	app, err := Heat3D(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, app, app.Rect.H(1, 4, 4))
	runBoth(t, app, app.NonRect[0].H(1, 4, 4))
}

func TestHeat3DNonRectBeatsRectSimulated(t *testing.T) {
	app, err := Heat3D(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Equal factors for both families.
	speedup := func(h *ilin.RatMat) float64 {
		ts, err := tiling.Analyze(app.Nest, h)
		if err != nil {
			t.Fatal(err)
		}
		d, err := distrib.New(ts, app.MapDim)
		if err != nil {
			t.Fatal(err)
		}
		res, err := simnet.Simulate(d, simnet.FastEthernetPIII())
		if err != nil {
			t.Fatal(err)
		}
		return res.Speedup
	}
	r := speedup(app.Rect.H(2, 6, 7))
	nr := speedup(app.NonRect[0].H(2, 6, 7))
	if nr < r {
		t.Errorf("4-D non-rect speedup %.3f below rect %.3f", nr, r)
	}
}

func TestHeat3DErrors(t *testing.T) {
	if _, err := Heat3D(0, 4); err == nil {
		t.Error("Heat3D(0, 4) should fail")
	}
}
