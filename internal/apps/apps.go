// Package apps defines the paper's three experiment workloads — Gauss
// Successive Over-Relaxation (§4.1), Jacobi (§4.2) and ADI integration
// (§4.3) — as loop nests with their dependence matrices, the skewing
// matrices that make them rectangularly tileable, their kernels for real
// execution, and the rectangular / non-rectangular tiling families the
// paper compares.
package apps

import (
	"fmt"

	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/rat"
)

// TilingFamily is one of an app's parameterized tiling transformations:
// given per-dimension factors (x, y, z) it produces the matrix H. Factors
// scale the tile extents so that 1/|det H| = x·y·z for every family of one
// app, which is what makes the paper's comparisons fair (equal tile size,
// communication volume and processor count).
type TilingFamily struct {
	Name string
	H    func(x, y, z int64) *ilin.RatMat
}

// App is a complete experiment workload.
type App struct {
	Name string
	// Nest is the (already skewed, where needed) loop nest.
	Nest *loopnest.Nest
	// Width is the number of values per iteration point (2 for ADI: X, B).
	Width int
	// Kernel and Initial drive real execution.
	Kernel  exec.Kernel
	Initial exec.Initial
	// MapDim is the paper's mapping dimension (0-based): SOR maps along
	// the third dimension, Jacobi and ADI along the first.
	MapDim int
	// Rect is the rectangular baseline family; NonRect the paper's
	// cone-derived alternatives (one for SOR/Jacobi, three for ADI).
	Rect    TilingFamily
	NonRect []TilingFamily
}

func rectH(x, y, z int64) *ilin.RatMat {
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, x))
	h.Set(1, 1, rat.New(1, y))
	h.Set(2, 2, rat.New(1, z))
	return h
}

// SOR builds the skewed SOR workload for an M×N×N space.
//
// Original loop (§4.1): A[t,i,j] = w/4·(A[t,i−1,j] + A[t,i,j−1] +
// A[t−1,i+1,j] + A[t−1,i,j+1]) + (1−w)·A[t−1,i,j], skewed by
// T = [[1,0,0],[1,1,0],[2,0,1]] so all dependence components become
// non-negative.
func SOR(m, n int64) (*App, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("apps: SOR needs M, N ≥ 1")
	}
	// Dependence columns (t, i, j): (0,1,0), (0,0,1), (1,−1,0), (1,0,−1),
	// (1,0,0) — the reads above, in order.
	deps := ilin.MatFromRows(
		[]int64{0, 0, 1, 1, 1},
		[]int64{1, 0, -1, 0, 0},
		[]int64{0, 1, 0, -1, 0},
	)
	orig, err := loopnest.Box([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{m, n, n}, deps)
	if err != nil {
		return nil, err
	}
	skew := ilin.MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{2, 0, 1})
	nest, err := orig.Skew(skew)
	if err != nil {
		return nil, err
	}
	const w = 1.2 // over-relaxation factor
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		out[0] = w/4*(reads[0][0]+reads[1][0]+reads[2][0]+reads[3][0]) + (1-w)*reads[4][0]
	}
	tinv := skew.Inverse().Int() // unimodular: exact integer inverse
	initial := func(js ilin.Vec, out []float64) {
		j := tinv.MulVec(js) // back to original (t, i, j)
		out[0] = boundaryValue(j[1], j[2])
	}
	return &App{
		Name: "sor", Nest: nest, Width: 1, Kernel: kernel, Initial: initial,
		MapDim: 2,
		Rect:   TilingFamily{Name: "rect", H: rectH},
		NonRect: []TilingFamily{{
			Name: "nr",
			H: func(x, y, z int64) *ilin.RatMat {
				h := ilin.NewRatMat(3, 3)
				h.Set(0, 0, rat.New(1, x))
				h.Set(1, 1, rat.New(1, y))
				h.Set(2, 0, rat.New(-1, z))
				h.Set(2, 2, rat.New(1, z))
				return h
			},
		}},
	}, nil
}

// Jacobi builds the skewed Jacobi workload for a T×I×J space (I = J = n).
//
// Original loop (§4.2): five-point average of the previous time step,
// skewed by T = [[1,0,0],[1,1,0],[1,0,1]]. The non-rectangular family
// needs an even y factor (P must be integral).
func Jacobi(tSteps, n int64) (*App, error) {
	if tSteps < 1 || n < 1 {
		return nil, fmt.Errorf("apps: Jacobi needs T, N ≥ 1")
	}
	// Dependence columns: (1,0,0), (1,1,0), (1,−1,0), (1,0,1), (1,0,−1).
	deps := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{0, 1, -1, 0, 0},
		[]int64{0, 0, 0, 1, -1},
	)
	orig, err := loopnest.Box([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{tSteps, n, n}, deps)
	if err != nil {
		return nil, err
	}
	skew := ilin.MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{1, 0, 1})
	nest, err := orig.Skew(skew)
	if err != nil {
		return nil, err
	}
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		out[0] = 0.2 * (reads[0][0] + reads[1][0] + reads[2][0] + reads[3][0] + reads[4][0])
	}
	tinv := skew.Inverse().Int()
	initial := func(js ilin.Vec, out []float64) {
		j := tinv.MulVec(js)
		out[0] = boundaryValue(j[1], j[2])
	}
	return &App{
		Name: "jacobi", Nest: nest, Width: 1, Kernel: kernel, Initial: initial,
		MapDim: 0,
		Rect:   TilingFamily{Name: "rect", H: rectH},
		NonRect: []TilingFamily{{
			Name: "nr",
			H: func(x, y, z int64) *ilin.RatMat {
				h := ilin.NewRatMat(3, 3)
				h.Set(0, 0, rat.New(1, x))
				h.Set(0, 1, rat.New(-1, 2*x))
				h.Set(1, 1, rat.New(1, y))
				h.Set(2, 2, rat.New(1, z))
				return h
			},
		}},
	}, nil
}

// ADI builds the ADI integration workload for a T×N×N space (Table 3).
// No skewing is needed; the statement updates two arrays (X and B), so
// iteration values have width 2.
func ADI(tSteps, n int64) (*App, error) {
	if tSteps < 1 || n < 1 {
		return nil, fmt.Errorf("apps: ADI needs T, N ≥ 1")
	}
	// Dependence columns: (1,0,0), (1,1,0), (1,0,1).
	deps := ilin.MatFromRows(
		[]int64{1, 1, 1},
		[]int64{0, 1, 0},
		[]int64{0, 0, 1},
	)
	nest, err := loopnest.Box([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{tSteps, n, n}, deps)
	if err != nil {
		return nil, err
	}
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		a := adiCoef(j[1], j[2])
		up, left, prev := reads[1], reads[2], reads[0]
		out[0] = prev[0] + left[0]*a/left[1] - up[0]*a/up[1] // X
		out[1] = prev[1] - a*a/left[1] - a*a/up[1]           // B
	}
	initial := func(j ilin.Vec, out []float64) {
		out[0] = 1 + boundaryValue(j[1], j[2])
		out[1] = 2
	}
	mkNR := func(c1, c2 bool) func(x, y, z int64) *ilin.RatMat {
		return func(x, y, z int64) *ilin.RatMat {
			h := rectH(x, y, z)
			if c1 {
				h.Set(0, 1, rat.New(-1, x))
			}
			if c2 {
				h.Set(0, 2, rat.New(-1, x))
			}
			return h
		}
	}
	return &App{
		Name: "adi", Nest: nest, Width: 2, Kernel: kernel, Initial: initial,
		MapDim: 0,
		Rect:   TilingFamily{Name: "rect", H: rectH},
		NonRect: []TilingFamily{
			{Name: "nr1", H: mkNR(true, false)},
			{Name: "nr2", H: mkNR(false, true)},
			{Name: "nr3", H: mkNR(true, true)},
		},
	}, nil
}

// boundaryValue is a deterministic, smooth-ish boundary/initial condition.
func boundaryValue(i, j int64) float64 {
	return 0.5 + float64((i*31+j*17)%23)/46
}

// adiCoef is the ADI coefficient array A[i,j] (the paper's input data);
// values stay small so B remains well away from zero over short runs.
func adiCoef(i, j int64) float64 {
	return 0.01 + float64((i*13+j*7)%8)/100
}

// Heat3D builds a four-dimensional workload (time × 3-D grid, 7-point
// stencil) — an extension beyond the paper's three benchmarks showing the
// framework is not specialized to depth 3. Skewed by the 4-D analogue of
// the Jacobi skew; the non-rectangular family skews the time row against
// the first space dimension (even y required, as for Jacobi).
func Heat3D(tSteps, n int64) (*App, error) {
	if tSteps < 1 || n < 1 {
		return nil, fmt.Errorf("apps: Heat3D needs T, N ≥ 1")
	}
	// Dependence columns: center + ±1 along each space axis at t−1.
	deps := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1, 1, 1},
		[]int64{0, 1, -1, 0, 0, 0, 0},
		[]int64{0, 0, 0, 1, -1, 0, 0},
		[]int64{0, 0, 0, 0, 0, 1, -1},
	)
	orig, err := loopnest.Box([]string{"t", "x", "y", "z"},
		[]int64{1, 1, 1, 1}, []int64{tSteps, n, n, n}, deps)
	if err != nil {
		return nil, err
	}
	skew := ilin.MatFromRows(
		[]int64{1, 0, 0, 0},
		[]int64{1, 1, 0, 0},
		[]int64{1, 0, 1, 0},
		[]int64{1, 0, 0, 1},
	)
	nest, err := orig.Skew(skew)
	if err != nil {
		return nil, err
	}
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		s := 0.0
		for _, r := range reads {
			s += r[0]
		}
		out[0] = s / 7
	}
	tinv := skew.Inverse().Int()
	initial := func(js ilin.Vec, out []float64) {
		j := tinv.MulVec(js)
		out[0] = boundaryValue(j[1]+j[3], j[2])
	}
	rect4 := func(x, y, z int64) *ilin.RatMat {
		// The fourth extent reuses z (the API carries three factors).
		h := ilin.NewRatMat(4, 4)
		h.Set(0, 0, rat.New(1, x))
		h.Set(1, 1, rat.New(1, y))
		h.Set(2, 2, rat.New(1, z))
		h.Set(3, 3, rat.New(1, z))
		return h
	}
	return &App{
		Name: "heat3d", Nest: nest, Width: 1, Kernel: kernel, Initial: initial,
		MapDim: 0,
		Rect:   TilingFamily{Name: "rect", H: rect4},
		NonRect: []TilingFamily{{
			Name: "nr",
			H: func(x, y, z int64) *ilin.RatMat {
				h := rect4(x, y, z)
				h.Set(0, 1, rat.New(-1, 2*x))
				return h
			},
		}},
	}, nil
}
