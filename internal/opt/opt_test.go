package opt

import (
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/cone"
	"tilespace/internal/simnet"
)

func fastOpts() Options {
	return Options{Params: simnet.FastEthernetPIII(), MapDim: -1, Factors: []int64{2, 4, 8}}
}

func TestSearchADI(t *testing.T) {
	app, err := apps.ADI(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(app.Nest, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// Candidates must be sorted by predicted speedup.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Estimate.Speedup > res.Candidates[i-1].Estimate.Speedup {
			t.Fatalf("candidates not sorted at %d", i)
		}
	}
	// The winner must be at least as good as every rectangular candidate:
	// the cone family dominates on ADI (the paper's conclusion).
	var bestRect float64
	for _, c := range res.Candidates {
		if c.Family == "rect" && c.Estimate.Speedup > bestRect {
			bestRect = c.Estimate.Speedup
		}
	}
	if res.Best.Estimate.Speedup < bestRect {
		t.Errorf("best %.3f below best rect %.3f", res.Best.Estimate.Speedup, bestRect)
	}
	// All candidates legal by construction; spot-check the winner.
	if !cone.New(app.Nest.Deps).LegalTiling(res.Best.H) {
		t.Error("winner is not a legal tiling")
	}
}

// TestSearchPrefersConeOnADI: with generous factor coverage the winner
// should come from the cone family (Hodzic-Shang optimality).
func TestSearchPrefersConeOnADI(t *testing.T) {
	app, err := apps.ADI(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(app.Nest, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Family != "cone" {
		// Not fatal for every cost model, but for this workload the cone
		// family should win: flag it loudly.
		t.Errorf("best family = %s (speedup %.3f); expected cone", res.Best.Family, res.Best.Estimate.Speedup)
	}
}

func TestSearchMaxTileSize(t *testing.T) {
	app, err := apps.ADI(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.MaxTileSize = 64
	res, err := Search(app.Nest, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.TileSize > 64 {
			t.Errorf("candidate tile size %d exceeds cap", c.TileSize)
		}
	}
	if res.Skipped == 0 {
		t.Error("expected skipped oversize candidates")
	}
}

func TestSearchCandidateCap(t *testing.T) {
	app, err := apps.ADI(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.MaxCandidates = 3
	res, err := Search(app.Nest, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates)+res.Skipped > 3 {
		t.Errorf("evaluated %d+%d candidates, cap was 3", len(res.Candidates), res.Skipped)
	}
}

func TestSearchBadParams(t *testing.T) {
	app, err := apps.ADI(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(app.Nest, Options{}); err == nil {
		t.Error("zero params not rejected")
	}
}

func TestConfirmAgreesOnWinner(t *testing.T) {
	app, err := apps.ADI(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	res, err := Search(app.Nest, o)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Confirm(app.Nest, res.Best, o)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Speedup <= 0 {
		t.Errorf("simulated speedup %v", sim.Speedup)
	}
	// The analytic score should be within 2x of the simulated one.
	ratio := res.Best.Estimate.Speedup / sim.Speedup
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("model/sim speedup ratio %.2f out of band", ratio)
	}
}

// TestSearchSOR covers the skewed-space path (cone family with the
// paper's SOR rays).
func TestSearchSOR(t *testing.T) {
	app, err := apps.SOR(12, 24)
	if err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.Factors = []int64{3, 6, 9}
	res, err := Search(app.Nest, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no winner")
	}
	foundCone := false
	for _, c := range res.Candidates {
		if c.Family == "cone" {
			foundCone = true
			break
		}
	}
	if !foundCone {
		t.Error("no cone-family candidate survived for SOR")
	}
}
