// Package opt searches for good tiling transformations automatically —
// the tool the paper's conclusions call for: it enumerates the rectangular
// family and cone-derived non-rectangular families (rows on the tiling
// cone's extreme rays, per Hodzic–Shang) over a grid of tile-size factors,
// scores every legal candidate with the fast analytic schedule model, and
// returns them ranked. The winning shapes can then be confirmed with the
// discrete-event simulator or real execution.
package opt

import (
	"fmt"
	"sort"

	"tilespace/internal/cone"
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/schedule"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// Options bound the search.
type Options struct {
	// Params is the cluster cost model used for scoring.
	Params simnet.Params
	// MapDim fixes the mapping dimension; negative selects per candidate
	// (longest tile dimension).
	MapDim int
	// Factors is the per-dimension candidate factor list; the default is
	// {2, 4, 8, 16}.
	Factors []int64
	// MaxTileSize skips candidates whose tile exceeds this volume
	// (0 = unlimited).
	MaxTileSize int64
	// MaxCandidates caps the number of evaluated candidates as a safety
	// valve (0 = 4096).
	MaxCandidates int
}

// Candidate is one evaluated tiling.
type Candidate struct {
	Family   string // "rect" or "cone"
	H        *ilin.RatMat
	Factors  []int64
	TileSize int64
	Procs    int
	// MapDim is the mapping dimension the candidate was scored with
	// (resolved when Options.MapDim is negative); pass it to Compile.
	MapDim   int
	Estimate *schedule.Estimate
}

// Result is a ranked search outcome.
type Result struct {
	Best       *Candidate
	Candidates []Candidate // sorted by descending predicted speedup
	Skipped    int         // structurally invalid combinations
}

// Search evaluates all candidates and ranks them by predicted speedup.
func Search(nest *loopnest.Nest, o Options) (*Result, error) {
	if err := o.Params.Validate(); err != nil {
		return nil, err
	}
	if len(o.Factors) == 0 {
		o.Factors = []int64{2, 4, 8, 16}
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4096
	}
	n := nest.N

	type family struct {
		name  string
		build func(scale []int64) (*ilin.RatMat, error)
	}
	families := []family{{
		name: "rect",
		build: func(scale []int64) (*ilin.RatMat, error) {
			t, err := tiling.Rectangular(scale...)
			if err != nil {
				return nil, err
			}
			return t.H, nil
		},
	}}
	c := cone.New(nest.Deps)
	if _, err := c.ExtremeRays(); err == nil {
		families = append(families, family{
			name:  "cone",
			build: func(scale []int64) (*ilin.RatMat, error) { return c.SuggestTiling(scale) },
		})
	}

	res := &Result{}
	evaluated := 0
	scale := make([]int64, n)
	var sweep func(k int) error
	sweep = func(k int) error {
		if evaluated >= o.MaxCandidates {
			return nil
		}
		if k == n {
			for _, f := range families {
				if evaluated >= o.MaxCandidates {
					return nil
				}
				evaluated++
				cand, ok, err := evaluate(nest, f.name, f.build, scale, o)
				if err != nil {
					return err
				}
				if !ok {
					res.Skipped++
					continue
				}
				res.Candidates = append(res.Candidates, *cand)
			}
			return nil
		}
		for _, v := range o.Factors {
			scale[k] = v
			if err := sweep(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sweep(0); err != nil {
		return nil, err
	}
	if len(res.Candidates) == 0 {
		return nil, fmt.Errorf("opt: no legal candidate tiling found")
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Estimate.Speedup > res.Candidates[j].Estimate.Speedup
	})
	res.Best = &res.Candidates[0]
	return res, nil
}

// evaluate builds, validates and scores one candidate; ok=false marks a
// structurally invalid combination (not an error).
func evaluate(nest *loopnest.Nest, name string, build func([]int64) (*ilin.RatMat, error), scale []int64, o Options) (*Candidate, bool, error) {
	h, err := build(scale)
	if err != nil {
		return nil, false, nil
	}
	ts, err := tiling.Analyze(nest, h)
	if err != nil {
		return nil, false, nil
	}
	if o.MaxTileSize > 0 && ts.T.TileSize > o.MaxTileSize {
		return nil, false, nil
	}
	m := o.MapDim
	if m < 0 {
		m = distrib.ChooseMappingDim(ts)
	}
	d, err := distrib.New(ts, m)
	if err != nil {
		return nil, false, nil
	}
	cm := schedule.CostModel{Params: o.Params}
	est, err := cm.Predict(d)
	if err != nil {
		return nil, false, nil
	}
	return &Candidate{
		Family:   name,
		H:        h,
		Factors:  append([]int64(nil), scale...),
		TileSize: ts.T.TileSize,
		Procs:    d.NumProcs(),
		MapDim:   m,
		Estimate: est,
	}, true, nil
}

// Confirm re-scores a candidate with the discrete-event simulator.
func Confirm(nest *loopnest.Nest, cand *Candidate, o Options) (*simnet.Result, error) {
	ts, err := tiling.Analyze(nest, cand.H)
	if err != nil {
		return nil, err
	}
	d, err := distrib.New(ts, cand.MapDim)
	if err != nil {
		return nil, err
	}
	return simnet.Simulate(d, o.Params)
}
