package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		num, den int64
		want     Rat
	}{
		{1, 2, Rat{1, 2}},
		{2, 4, Rat{1, 2}},
		{-2, 4, Rat{-1, 2}},
		{2, -4, Rat{-1, 2}},
		{-2, -4, Rat{1, 2}},
		{0, 5, Rat{0, 1}},
		{0, -5, Rat{0, 1}},
		{7, 1, Rat{7, 1}},
		{-21, 14, Rat{-3, 2}},
	}
	for _, c := range cases {
		if got := New(c.num, c.den); got != c.want {
			t.Errorf("New(%d,%d) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
}

func TestNewZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
	if got := half.Div(third); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
	if got := half.Neg(); !got.Equal(New(-1, 2)) {
		t.Errorf("-(1/2) = %v", got)
	}
	if got := third.Inv(); !got.Equal(FromInt(3)) {
		t.Errorf("(1/3)^-1 = %v", got)
	}
	if got := half.MulInt(4); !got.Equal(FromInt(2)) {
		t.Errorf("1/2*4 = %v", got)
	}
	if got := half.AddInt(1); !got.Equal(New(3, 2)) {
		t.Errorf("1/2+1 = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv of zero did not panic")
		}
	}()
	Zero.Inv()
}

func TestCmpSign(t *testing.T) {
	if New(1, 3).Cmp(New(1, 2)) != -1 {
		t.Error("1/3 < 1/2 expected")
	}
	if New(1, 2).Cmp(New(1, 2)) != 0 {
		t.Error("1/2 == 1/2 expected")
	}
	if New(-1, 2).Cmp(New(-1, 3)) != -1 {
		t.Error("-1/2 < -1/3 expected")
	}
	if Zero.Sign() != 0 || New(-3, 7).Sign() != -1 || New(3, 7).Sign() != 1 {
		t.Error("Sign mismatch")
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(6, 2), 3, 3},
		{New(-6, 2), -3, -3},
		{Zero, 0, 0},
		{New(1, 100), 0, 1},
		{New(-1, 100), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
		ok   bool
	}{
		{"3", FromInt(3), true},
		{"-3", FromInt(-3), true},
		{"3/4", New(3, 4), true},
		{"-3/4", New(-3, 4), true},
		{" 6 / 8 ", New(3, 4), true},
		{"1/0", Zero, false},
		{"x", Zero, false},
		{"1/x", Zero, false},
		{"x/1", Zero, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok && (err != nil || !got.Equal(c.want)) {
			t.Errorf("Parse(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.in)
		}
	}
}

func TestString(t *testing.T) {
	if New(3, 4).String() != "3/4" {
		t.Error("3/4 string")
	}
	if FromInt(-2).String() != "-2" {
		t.Error("-2 string")
	}
	if Zero.String() != "0" {
		t.Error("0 string")
	}
}

func TestMinMaxAbs(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !Min(a, b).Equal(a) || !Max(a, b).Equal(b) {
		t.Error("Min/Max mismatch")
	}
	if !New(-5, 3).Abs().Equal(New(5, 3)) {
		t.Error("Abs mismatch")
	}
}

func TestGcdLcm(t *testing.T) {
	if Gcd64(12, 18) != 6 || Gcd64(-12, 18) != 6 || Gcd64(0, 5) != 5 || Gcd64(0, 0) != 0 {
		t.Error("Gcd64 mismatch")
	}
	if Lcm64(4, 6) != 12 || Lcm64(0, 6) != 0 || Lcm64(-4, 6) != 12 {
		t.Error("Lcm64 mismatch")
	}
}

func TestExtGcd(t *testing.T) {
	cases := [][2]int64{{12, 18}, {-12, 18}, {17, 5}, {0, 7}, {7, 0}, {1, 1}, {-3, -9}}
	for _, c := range cases {
		g, x, y := ExtGcd(c[0], c[1])
		if g != Gcd64(c[0], c[1]) {
			t.Errorf("ExtGcd(%d,%d) g = %d", c[0], c[1], g)
		}
		if c[0]*x+c[1]*y != g {
			t.Errorf("ExtGcd(%d,%d): %d*%d + %d*%d != %d", c[0], c[1], c[0], x, c[1], y, g)
		}
	}
}

func TestFloorCeilDivMod(t *testing.T) {
	cases := []struct {
		a, b, fd, cd int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.fd {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fd)
		}
		if got := CeilDiv(c.a, c.b); got != c.cd {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.cd)
		}
	}
	if Mod(-7, 3) != 2 || Mod(7, 3) != 1 || Mod(-6, 3) != 0 || Mod(-7, -3) != 2 {
		t.Error("Mod mismatch")
	}
}

// clampRat builds a small rational from arbitrary int16s so quick-check
// inputs stay far from overflow.
func clampRat(n int16, d int16) Rat {
	den := int64(d)
	if den == 0 {
		den = 1
	}
	return New(int64(n), den)
}

func TestQuickFieldAxioms(t *testing.T) {
	comm := func(an, ad, bn, bd int16) bool {
		a, b := clampRat(an, ad), clampRat(bn, bd)
		return a.Add(b).Equal(b.Add(a)) && a.Mul(b).Equal(b.Mul(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(an, ad, bn, bd, cn, cd int16) bool {
		a, b, c := clampRat(an, ad), clampRat(bn, bd), clampRat(cn, cd)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c))) &&
			a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	distr := func(an, ad, bn, bd, cn, cd int16) bool {
		a, b, c := clampRat(an, ad), clampRat(bn, bd), clampRat(cn, cd)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distr, nil); err != nil {
		t.Error(err)
	}
	inverse := func(an, ad, bn, bd int16) bool {
		a, b := clampRat(an, ad), clampRat(bn, bd)
		if !a.Sub(a).IsZero() {
			return false
		}
		if b.IsZero() {
			return true
		}
		return a.Div(b).Mul(b).Equal(a)
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorCeilConsistency(t *testing.T) {
	f := func(n int32, d int32) bool {
		den := int64(d)
		if den == 0 {
			den = 1
		}
		r := New(int64(n), den)
		fl, ce := r.Floor(), r.Ceil()
		if r.IsInt() {
			return fl == ce && fl == r.Int()
		}
		return ce == fl+1 &&
			FromInt(fl).Cmp(r) < 0 && r.Cmp(FromInt(ce)) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorDivMatchesRat(t *testing.T) {
	f := func(a int32, b int32) bool {
		bb := int64(b)
		if bb == 0 {
			bb = 1
		}
		r := New(int64(a), bb)
		return FloorDiv(int64(a), bb) == r.Floor() && CeilDiv(int64(a), bb) == r.Ceil()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExtGcd(t *testing.T) {
	f := func(a int32, b int32) bool {
		g, x, y := ExtGcd(int64(a), int64(b))
		return int64(a)*x+int64(b)*y == g && g == Gcd64(int64(a), int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverflowPanics(t *testing.T) {
	big := Rat{math.MaxInt64, 1}
	for name, f := range map[string]func(){
		"add": func() { big.Add(big) },
		"mul": func() { big.Mul(big) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s overflow did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFloat(t *testing.T) {
	if New(1, 2).Float() != 0.5 {
		t.Error("Float(1/2) != 0.5")
	}
}

func TestMustParse(t *testing.T) {
	if !MustParse("3/4").Equal(New(3, 4)) {
		t.Error("MustParse(3/4)")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	MustParse("x")
}

func TestIntAccessor(t *testing.T) {
	if FromInt(7).Int() != 7 {
		t.Error("Int(7)")
	}
	defer func() {
		if recover() == nil {
			t.Error("Int on non-integer should panic")
		}
	}()
	New(1, 2).Int()
}

func TestCmpEqualAndGreater(t *testing.T) {
	if New(2, 4).Cmp(New(1, 2)) != 0 {
		t.Error("equal compare")
	}
	if New(3, 4).Cmp(New(1, 2)) != 1 {
		t.Error("greater compare")
	}
}

func TestAbsMinMaxBranches(t *testing.T) {
	if !New(5, 3).Abs().Equal(New(5, 3)) {
		t.Error("Abs of positive")
	}
	a, b := New(2, 3), New(1, 3)
	if !Min(a, b).Equal(b) || !Max(b, a).Equal(a) {
		t.Error("Min/Max other branch")
	}
}

func TestDivisionByZeroPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"FloorDiv": func() { FloorDiv(1, 0) },
		"CeilDiv":  func() { CeilDiv(1, 0) },
		"Mod":      func() { Mod(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s by zero should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNegOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negating MinInt64 should panic")
		}
	}()
	Rat{math.MinInt64, 1}.Neg()
}
