// Package rat implements exact rational arithmetic on 64-bit integers.
//
// The tiling framework only needs rational numbers at compile time — matrix
// inverses, Fourier–Motzkin combinations, Hermite normal forms — on matrices
// whose entries are small (loop bounds, dependence components, tile edge
// lengths). All run-time hot loops operate on precomputed integers. We
// therefore use an int64 numerator/denominator pair with explicit overflow
// checking rather than math/big: values stay small, operations stay cheap,
// and any overflow (which would indicate a misuse of the package) panics
// with a descriptive message instead of silently wrapping.
package rat

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Rat is an exact rational number. The zero value is 0.
//
// Invariants (maintained by all constructors and operations):
//   - Den > 0
//   - gcd(|Num|, Den) == 1
//   - 0 is represented as 0/1
type Rat struct {
	Num int64
	Den int64
}

// Zero and One are the additive and multiplicative identities.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
)

// New returns the normalized rational num/den. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if den < 0 {
		num, den = checkedNeg(num), checkedNeg(den)
	}
	if num == 0 {
		return Rat{0, 1}
	}
	g := Gcd64(abs64(num), den)
	return Rat{num / g, den / g}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Parse parses strings of the form "3", "-3", "3/4", "-3/4".
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, err := strconv.ParseInt(strings.TrimSpace(s[:i]), 10, 64)
		if err != nil {
			return Zero, fmt.Errorf("rat: parse %q: %w", s, err)
		}
		den, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return Zero, fmt.Errorf("rat: parse %q: %w", s, err)
		}
		if den == 0 {
			return Zero, fmt.Errorf("rat: parse %q: zero denominator", s)
		}
		return New(num, den), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Zero, fmt.Errorf("rat: parse %q: %w", s, err)
	}
	return FromInt(n), nil
}

// MustParse is Parse that panics on error; intended for literals in tests
// and example programs.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// String renders the rational as "n" or "n/d".
func (r Rat) String() string {
	if r.Den == 1 || r.Num == 0 {
		return strconv.FormatInt(r.Num, 10)
	}
	return strconv.FormatInt(r.Num, 10) + "/" + strconv.FormatInt(r.Den, 10)
}

// norm renormalizes after an arithmetic operation.
func norm(num, den int64) Rat {
	return New(num, den)
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	// r.Num/r.Den + s.Num/s.Den; use lcm denominator to delay overflow.
	g := Gcd64(r.Den, s.Den)
	rd, sd := r.Den/g, s.Den/g
	num := checkedAdd(checkedMul(r.Num, sd), checkedMul(s.Num, rd))
	den := checkedMul(rd, s.Den)
	return norm(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat { return Rat{checkedNeg(r.Num), r.Den} }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	// Cross-cancel before multiplying to keep magnitudes small.
	g1 := Gcd64(abs64(r.Num), s.Den)
	g2 := Gcd64(abs64(s.Num), r.Den)
	num := checkedMul(r.Num/g1, s.Num/g2)
	den := checkedMul(r.Den/g2, s.Den/g1)
	return norm(num, den)
}

// Div returns r / s. It panics if s is zero.
func (r Rat) Div(s Rat) Rat {
	if s.Num == 0 {
		panic("rat: division by zero")
	}
	return r.Mul(s.Inv())
}

// Inv returns 1/r. It panics if r is zero.
func (r Rat) Inv() Rat {
	if r.Num == 0 {
		panic("rat: inverse of zero")
	}
	return New(r.Den, r.Num)
}

// MulInt returns r * n.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// AddInt returns r + n.
func (r Rat) AddInt(n int64) Rat { return r.Add(FromInt(n)) }

// Cmp compares r and s, returning -1, 0, or +1.
func (r Rat) Cmp(s Rat) int {
	// r - s sign without building the difference is cheaper but subtler;
	// compile-time code can afford the subtraction.
	d := r.Sub(s)
	switch {
	case d.Num < 0:
		return -1
	case d.Num > 0:
		return 1
	default:
		return 0
	}
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.Num < 0:
		return -1
	case r.Num > 0:
		return 1
	default:
		return 0
	}
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den == 1 }

// Int returns the integer value of r; it panics unless r.IsInt().
func (r Rat) Int() int64 {
	if r.Den != 1 {
		panic(fmt.Sprintf("rat: %v is not an integer", r))
	}
	return r.Num
}

// Floor returns ⌊r⌋.
func (r Rat) Floor() int64 {
	q := r.Num / r.Den
	if r.Num%r.Den != 0 && r.Num < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉.
func (r Rat) Ceil() int64 {
	q := r.Num / r.Den
	if r.Num%r.Den != 0 && r.Num > 0 {
		q++
	}
	return q
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Num < 0 {
		return r.Neg()
	}
	return r
}

// Float returns the nearest float64; only intended for reporting.
func (r Rat) Float() float64 { return float64(r.Num) / float64(r.Den) }

// Equal reports whether r == s exactly.
func (r Rat) Equal(s Rat) bool { return r.Num == s.Num && r.Den == s.Den }

// Min returns the smaller of r and s.
func Min(r, s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Gcd64 returns the non-negative greatest common divisor of |a| and |b|;
// Gcd64(0, 0) == 0.
func Gcd64(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Lcm64 returns the least common multiple of |a| and |b|; zero if either is
// zero. Panics on overflow.
func Lcm64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	a, b = abs64(a), abs64(b)
	return checkedMul(a/Gcd64(a, b), b)
}

// ExtGcd returns (g, x, y) such that a*x + b*y == g == gcd(a, b), g ≥ 0.
func ExtGcd(a, b int64) (g, x, y int64) {
	oldR, r := a, b
	oldX, x := int64(1), int64(0)
	oldY, y := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldX, x = x, oldX-q*x
		oldY, y = y, oldY-q*y
	}
	if oldR < 0 {
		oldR, oldX, oldY = -oldR, -oldX, -oldY
	}
	return oldR, oldX, oldY
}

// FloorDiv returns ⌊a/b⌋ for b != 0, rounding toward negative infinity.
func FloorDiv(a, b int64) int64 {
	if b == 0 {
		panic("rat: FloorDiv by zero")
	}
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b != 0, rounding toward positive infinity.
func CeilDiv(a, b int64) int64 {
	if b == 0 {
		panic("rat: CeilDiv by zero")
	}
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// Mod returns a mod b in [0, |b|), the mathematical (Euclidean) remainder.
func Mod(a, b int64) int64 {
	if b == 0 {
		panic("rat: Mod by zero")
	}
	m := a % b
	if m < 0 {
		m += abs64(b)
	}
	return m
}

func abs64(a int64) int64 {
	if a == math.MinInt64 {
		panic("rat: int64 overflow in abs")
	}
	if a < 0 {
		return -a
	}
	return a
}

func checkedNeg(a int64) int64 {
	if a == math.MinInt64 {
		panic("rat: int64 overflow in negation")
	}
	return -a
}

func checkedAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Sprintf("rat: int64 overflow in %d + %d", a, b))
	}
	return s
}

func checkedMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		panic(fmt.Sprintf("rat: int64 overflow in %d * %d", a, b))
	}
	return p
}
