// Package loopnest models the paper's source-program domain (§2.1):
// perfectly nested FOR loops over a general convex, parameterized iteration
// space, with uniform constant dependencies expressed as a dependence
// matrix D, and a single-assignment write reference.
//
// A Nest is pure structure — the actual computation (the loop body F) is
// attached later by the execution backend, so that one analysed nest can be
// compiled, scheduled and simulated without any floating-point code, and
// executed with real arrays when verification is wanted.
package loopnest

import (
	"fmt"
	"strings"

	"tilespace/internal/ilin"
	"tilespace/internal/poly"
)

// Nest is a perfectly nested loop with uniform dependencies.
type Nest struct {
	// N is the nesting depth (the paper's n).
	N int
	// Names are the loop variable names, e.g. ["t", "i", "j"]; purely
	// cosmetic, used by the code generator and diagnostics.
	Names []string
	// Space is the iteration space J^n = {j : A·j ≤ b}, a bounded convex
	// polyhedron.
	Space *poly.System
	// Deps is the n×q dependence matrix D; column l is dependence vector
	// d_l, meaning iteration j reads the value written by iteration j−d_l.
	Deps *ilin.Mat
}

// New constructs and validates a nest. Errors cover: arity mismatches,
// unbounded or empty iteration spaces, and dependence vectors that are not
// lexicographically positive (the program would not be sequentially
// computable).
func New(names []string, space *poly.System, deps *ilin.Mat) (*Nest, error) {
	n := space.NVars
	if len(names) == 0 {
		names = defaultNames(n)
	}
	if len(names) != n {
		return nil, fmt.Errorf("loopnest: %d names for %d loop variables", len(names), n)
	}
	if deps == nil {
		deps = ilin.NewMat(n, 0)
	}
	if deps.Rows != n {
		return nil, fmt.Errorf("loopnest: dependence matrix has %d rows, nest depth is %d", deps.Rows, n)
	}
	nest := &Nest{N: n, Names: append([]string(nil), names...), Space: space.Clone(), Deps: deps.Clone()}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	return nest, nil
}

// MustNew is New that panics on error; for literals in tests and app
// definitions.
func MustNew(names []string, space *poly.System, deps *ilin.Mat) *Nest {
	n, err := New(names, space, deps)
	if err != nil {
		panic(err)
	}
	return n
}

func defaultNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("j%d", i+1)
	}
	return names
}

// Validate re-checks the structural invariants.
func (nest *Nest) Validate() error {
	if nest.Space.NVars != nest.N {
		return fmt.Errorf("loopnest: space arity %d != depth %d", nest.Space.NVars, nest.N)
	}
	if _, err := poly.LoopBounds(nest.Space); err != nil {
		return fmt.Errorf("loopnest: iteration space: %w", err)
	}
	for l := 0; l < nest.Deps.Cols; l++ {
		d := nest.Deps.Col(l)
		if !d.LexPositive() {
			return fmt.Errorf("loopnest: dependence d%d = %v is not lexicographically positive", l+1, d)
		}
	}
	return nil
}

// Q returns the number of dependence vectors.
func (nest *Nest) Q() int { return nest.Deps.Cols }

// Dep returns dependence vector l (0-based column of D).
func (nest *Nest) Dep(l int) ilin.Vec { return nest.Deps.Col(l) }

// Bounds computes the nested loop bounds of the iteration space.
func (nest *Nest) Bounds() (*poly.NestBounds, error) {
	return poly.LoopBounds(nest.Space)
}

// Size returns the number of iterations |J^n|.
func (nest *Nest) Size() (int64, error) {
	nb, err := nest.Bounds()
	if err != nil {
		return 0, err
	}
	return nb.Count(), nil
}

// BoundingBox returns the integer bounding box of the iteration space.
func (nest *Nest) BoundingBox() (lo, hi ilin.Vec, err error) {
	return poly.BoundingBox(nest.Space)
}

// Skew applies a unimodular transformation T to the nest: the new iteration
// space is {T·j : j ∈ J^n} and the new dependence matrix is T·D. SOR and
// Jacobi both require skewing before they admit a rectangular tiling (§4.1,
// §4.2). Returns an error if T is not unimodular (integer points would not
// map bijectively) or if any transformed dependence loses lexicographic
// positivity.
func (nest *Nest) Skew(t *ilin.Mat) (*Nest, error) {
	if t.Rows != nest.N || t.Cols != nest.N {
		return nil, fmt.Errorf("loopnest: skew matrix is %dx%d, need %dx%d", t.Rows, t.Cols, nest.N, nest.N)
	}
	if !t.IsUnimodular() {
		return nil, fmt.Errorf("loopnest: skew matrix must be unimodular, det = %d", t.Det())
	}
	tInv := t.Inverse()
	// A·j ≤ b with j = T⁻¹·j' becomes (A·T⁻¹)·j' ≤ b.
	newSpace := poly.NewSystem(nest.N)
	for _, c := range nest.Space.Cons {
		row := make(ilin.RatVec, nest.N)
		for j := 0; j < nest.N; j++ {
			row[j] = c.Coef.Dot(tInv.Col(j))
		}
		newSpace.Add(poly.Constraint{Coef: row, Rhs: c.Rhs})
	}
	newDeps := t.Mul(nest.Deps)
	names := make([]string, nest.N)
	for i, nm := range nest.Names {
		names[i] = nm + "'"
	}
	return New(names, newSpace, newDeps)
}

// String renders a summary of the nest.
func (nest *Nest) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nest depth %d, vars %s, %d dependencies\n", nest.N, strings.Join(nest.Names, ","), nest.Q())
	fmt.Fprintf(&b, "space:\n%s\n", nest.Space)
	fmt.Fprintf(&b, "D =\n%s", nest.Deps)
	return b.String()
}

// Box is a convenience constructor for the common rectangular iteration
// space lo_k ≤ j_k ≤ hi_k.
func Box(names []string, lo, hi []int64, deps *ilin.Mat) (*Nest, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("loopnest: Box bounds length mismatch")
	}
	s := poly.NewSystem(len(lo))
	for k := range lo {
		if lo[k] > hi[k] {
			return nil, fmt.Errorf("loopnest: Box dimension %d empty: [%d, %d]", k, lo[k], hi[k])
		}
		s.AddRange(k, lo[k], hi[k])
	}
	return New(names, s, deps)
}

// MustBox is Box that panics on error.
func MustBox(names []string, lo, hi []int64, deps *ilin.Mat) *Nest {
	n, err := Box(names, lo, hi, deps)
	if err != nil {
		panic(err)
	}
	return n
}
