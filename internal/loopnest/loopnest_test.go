package loopnest

import (
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/poly"
)

func simpleDeps() *ilin.Mat {
	// d1 = (1,0), d2 = (0,1)
	return ilin.MatFromRows([]int64{1, 0}, []int64{0, 1})
}

func TestBox(t *testing.T) {
	n := MustBox([]string{"i", "j"}, []int64{1, 1}, []int64{4, 5}, simpleDeps())
	size, err := n.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 20 {
		t.Errorf("Size = %d, want 20", size)
	}
	lo, hi, err := n.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Equal(ilin.NewVec(1, 1)) || !hi.Equal(ilin.NewVec(4, 5)) {
		t.Errorf("BoundingBox = %v, %v", lo, hi)
	}
	if n.Q() != 2 || !n.Dep(0).Equal(ilin.NewVec(1, 0)) {
		t.Error("dependence accessors")
	}
}

func TestBoxErrors(t *testing.T) {
	if _, err := Box([]string{"i"}, []int64{1}, []int64{4, 5}, nil); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Box([]string{"i"}, []int64{4}, []int64{1}, nil); err == nil {
		t.Error("empty box not rejected")
	}
}

func TestDefaultNames(t *testing.T) {
	s := poly.NewSystem(2)
	s.AddRange(0, 0, 1)
	s.AddRange(1, 0, 1)
	n, err := New(nil, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Names[0] != "j1" || n.Names[1] != "j2" {
		t.Errorf("Names = %v", n.Names)
	}
	if n.Q() != 0 {
		t.Errorf("Q = %d, want 0", n.Q())
	}
}

func TestRejectsNonLexPositiveDep(t *testing.T) {
	deps := ilin.MatFromRows([]int64{0, -1}, []int64{1, 0}) // d2 = (-1, 0)
	if _, err := Box([]string{"i", "j"}, []int64{0, 0}, []int64{3, 3}, deps); err == nil {
		t.Error("non-lex-positive dependence not rejected")
	}
}

func TestRejectsUnboundedSpace(t *testing.T) {
	s := poly.NewSystem(1)
	// only j ≥ 0
	s.Add(poly.GE(ilin.RatVec{ilin.NewVec(1).Rat()[0]}, ilin.NewVec(0).Rat()[0]))
	if _, err := New([]string{"j"}, s, nil); err == nil {
		t.Error("unbounded space not rejected")
	}
}

func TestRejectsArityMismatch(t *testing.T) {
	s := poly.NewSystem(2)
	s.AddRange(0, 0, 1)
	s.AddRange(1, 0, 1)
	if _, err := New([]string{"i"}, s, nil); err == nil {
		t.Error("name arity mismatch not rejected")
	}
	deps := ilin.NewMat(3, 1)
	if _, err := New([]string{"i", "j"}, s, deps); err == nil {
		t.Error("dep arity mismatch not rejected")
	}
}

// TestSkewSOR mirrors §4.1: skewing the SOR nest with T = [[1,0,0],[1,1,0],
// [2,0,1]] makes all dependence components non-negative.
func TestSkewSOR(t *testing.T) {
	// Original SOR dependencies (t,i,j) from the loop body:
	// (0,1,0), (0,0,1), (1,-1,0), (1,0,-1), (1,0,0).
	d := ilin.MatFromRows(
		[]int64{0, 0, 1, 1, 1},
		[]int64{1, 0, -1, 0, 0},
		[]int64{0, 1, 0, -1, 0},
	)
	nest := MustBox([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{3, 4, 4}, d)
	skew := ilin.MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{2, 0, 1})
	sk, err := nest.Skew(skew)
	if err != nil {
		t.Fatal(err)
	}
	// Skewed dependence matrix must match the paper's §4.1 D (columns in
	// our order): T·D.
	want := skew.Mul(d)
	if !sk.Deps.Equal(want) {
		t.Errorf("skewed D =\n%v, want\n%v", sk.Deps, want)
	}
	for l := 0; l < sk.Q(); l++ {
		for k := 0; k < 3; k++ {
			if sk.Dep(l)[k] < 0 {
				t.Errorf("skewed dependence %v has a negative component", sk.Dep(l))
			}
		}
	}
	// Point counts must be preserved by the unimodular skew.
	n0, _ := nest.Size()
	n1, _ := sk.Size()
	if n0 != n1 {
		t.Errorf("skew changed size: %d -> %d", n0, n1)
	}
}

// TestSkewPreservesMembership: j ∈ J^n ⇔ T·j ∈ skewed space.
func TestSkewPreservesMembership(t *testing.T) {
	nest := MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{5, 5}, simpleDeps())
	skew := ilin.MatFromRows([]int64{1, 0}, []int64{1, 1})
	sk, err := nest.Skew(skew)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(-1); x <= 6; x++ {
		for y := int64(-1); y <= 6; y++ {
			p := ilin.NewVec(x, y)
			if nest.Space.Contains(p) != sk.Space.Contains(skew.MulVec(p)) {
				t.Fatalf("membership mismatch at %v", p)
			}
		}
	}
}

func TestSkewRejectsNonUnimodular(t *testing.T) {
	nest := MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{3, 3}, simpleDeps())
	if _, err := nest.Skew(ilin.Diag(2, 1)); err == nil {
		t.Error("non-unimodular skew not rejected")
	}
	if _, err := nest.Skew(ilin.NewMat(3, 3)); err == nil {
		t.Error("wrong-shape skew not rejected")
	}
}

func TestString(t *testing.T) {
	nest := MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{3, 3}, simpleDeps())
	if nest.String() == "" {
		t.Error("empty String")
	}
}
