// Package cone computes the tiling cone of a dependence matrix and checks
// tiling transformations against it.
//
// For a dependence matrix D, the tiling cone is {h ∈ Qⁿ : h·d ≥ 0 for all
// columns d of D}: the set of hyperplane normals that "respect" every
// dependence. A tiling transformation H is legal iff every row of H lies in
// the cone (equivalently H·D ≥ 0, so all tile dependencies are
// non-negative). Ramanujam–Sadayappan, Xue and Boulet et al. showed the
// communication-minimal tiling comes from the cone; Hodzic–Shang [10]
// showed the scheduling-optimal tile shape does too — a transformation with
// a row strictly inside the cone is provably suboptimal, which is exactly
// the effect the paper's experiments measure.
package cone

import (
	"fmt"
	"sort"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// Cone is the tiling cone of a dependence matrix.
type Cone struct {
	N    int
	Deps *ilin.Mat // n×q, columns are dependence vectors
}

// New builds the tiling cone for an n×q dependence matrix.
func New(deps *ilin.Mat) *Cone {
	return &Cone{N: deps.Rows, Deps: deps.Clone()}
}

// Contains reports whether h·d ≥ 0 for every dependence d.
func (c *Cone) Contains(h ilin.RatVec) bool {
	for l := 0; l < c.Deps.Cols; l++ {
		if h.Dot(c.Deps.Col(l).Rat()).Sign() < 0 {
			return false
		}
	}
	return true
}

// InInterior reports whether h·d > 0 for every dependence d. Hodzic–Shang:
// a tiling with a row in the interior of the cone is not time-optimal.
func (c *Cone) InInterior(h ilin.RatVec) bool {
	if c.Deps.Cols == 0 {
		return false
	}
	for l := 0; l < c.Deps.Cols; l++ {
		if h.Dot(c.Deps.Col(l).Rat()).Sign() <= 0 {
			return false
		}
	}
	return true
}

// OnSurface reports whether h lies in the cone with h·d = 0 for at least
// one dependence (i.e. on a facet).
func (c *Cone) OnSurface(h ilin.RatVec) bool {
	return c.Contains(h) && !c.InInterior(h)
}

// LegalTiling reports whether every row of the tiling matrix H lies in the
// cone, i.e. H·D ≥ 0 elementwise, the classical tiling legality condition.
func (c *Cone) LegalTiling(h *ilin.RatMat) bool {
	if h.Rows != c.N {
		return false
	}
	for i := 0; i < h.Rows; i++ {
		if !c.Contains(h.Row(i)) {
			return false
		}
	}
	return true
}

// InteriorRows returns the (0-based) indices of rows of H that lie strictly
// inside the cone — the rows Hodzic–Shang identify as suboptimal choices.
func (c *Cone) InteriorRows(h *ilin.RatMat) []int {
	var rows []int
	for i := 0; i < h.Rows; i++ {
		if c.InInterior(h.Row(i)) {
			rows = append(rows, i)
		}
	}
	return rows
}

// ExtremeRays enumerates the extreme rays of the cone as primitive integer
// vectors, sorted lexicographically. It uses the classical facet-
// intersection method: an extreme ray of a pointed n-dimensional cone
// {x : Dᵀx ≥ 0} spans the null space of some (n−1)-subset of active
// constraints. An error is returned when the cone is not pointed (fewer
// than n−1 independent dependencies — every direction pairs with a line,
// and tile shapes cannot be derived automatically).
func (c *Cone) ExtremeRays() ([]ilin.Vec, error) {
	n := c.N
	q := c.Deps.Cols
	if n == 1 {
		// One-dimensional cone: either the half line +1, -1, or all of Q.
		h := ilin.RatVec{rat.One}
		switch {
		case c.Contains(h) && !c.Contains(h.Scale(rat.FromInt(-1))):
			return []ilin.Vec{ilin.NewVec(1)}, nil
		case !c.Contains(h) && c.Contains(h.Scale(rat.FromInt(-1))):
			return []ilin.Vec{ilin.NewVec(-1)}, nil
		default:
			return nil, fmt.Errorf("cone: 1-dimensional cone is not pointed")
		}
	}
	if q < n-1 {
		return nil, fmt.Errorf("cone: %d dependencies cannot pin down extreme rays in %d dimensions (cone not pointed)", q, n)
	}
	// Constraint rows are the dependence vectors (as rows of Dᵀ).
	dt := c.Deps.Transpose()

	seen := map[string]bool{}
	var rays []ilin.Vec
	subset := make([]int, n-1)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n-1 {
			sub := ilin.NewRatMat(n-1, n)
			for r, idx := range subset {
				for col := 0; col < n; col++ {
					sub.Set(r, col, rat.FromInt(dt.At(idx, col)))
				}
			}
			null := sub.NullSpace()
			if len(null) != 1 {
				return // constraints not independent: no unique ray here
			}
			ray := ilin.Primitive(null[0])
			for _, cand := range []ilin.Vec{ray, ray.Scale(-1)} {
				if cand.IsZero() {
					continue
				}
				if !c.Contains(cand.Rat()) {
					continue
				}
				if !c.isExtreme(cand) {
					continue
				}
				key := cand.String()
				if !seen[key] {
					seen[key] = true
					rays = append(rays, cand)
				}
			}
			return
		}
		for i := start; i <= q-(n-1-k); i++ {
			subset[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	if len(rays) == 0 {
		return nil, fmt.Errorf("cone: no extreme rays found (cone may not be pointed)")
	}
	// Pointedness sanity check: if both r and -r are rays the cone holds a
	// line and the "rays" are meaningless as tile normals.
	for _, r := range rays {
		if c.Contains(r.Scale(-1).Rat()) {
			return nil, fmt.Errorf("cone: contains the line spanned by %v; not pointed", r)
		}
	}
	sort.Slice(rays, func(i, j int) bool { return rays[i].LexLess(rays[j]) })
	return rays, nil
}

// isExtreme checks that the active constraint set of the candidate ray has
// rank n−1 (the ray is a true edge of the cone, not a point inside a face).
func (c *Cone) isExtreme(ray ilin.Vec) bool {
	var active [][]int64
	for l := 0; l < c.Deps.Cols; l++ {
		if ray.Dot(c.Deps.Col(l)) == 0 {
			row := make([]int64, c.N)
			copy(row, c.Deps.Col(l))
			active = append(active, row)
		}
	}
	if len(active) < c.N-1 {
		return false
	}
	m := ilin.MatFromRows(active...)
	return m.Rat().Rank() == c.N-1
}

// SuggestTiling returns an n×n rational tiling matrix whose rows are cone
// extreme rays (when at least n independent rays exist), each scaled by
// 1/scale_k so that |det P| matches the requested per-dimension tile
// extents — the automated version of the paper's hand-picked H_nr. The
// row selection greedily keeps rays that increase rank.
func (c *Cone) SuggestTiling(scale []int64) (*ilin.RatMat, error) {
	if len(scale) != c.N {
		return nil, fmt.Errorf("cone: need %d scales, got %d", c.N, len(scale))
	}
	rays, err := c.ExtremeRays()
	if err != nil {
		return nil, err
	}
	chosen := ilin.NewRatMat(0, 0)
	var rows []ilin.Vec
	for _, r := range rays {
		cand := append(append([]ilin.Vec{}, rows...), r)
		m := ilin.NewRatMat(len(cand), c.N)
		for i, v := range cand {
			for j, x := range v {
				m.Set(i, j, rat.FromInt(x))
			}
		}
		if m.Rank() == len(cand) {
			rows = cand
			chosen = m
		}
		if len(rows) == c.N {
			break
		}
	}
	if len(rows) < c.N {
		return nil, fmt.Errorf("cone: only %d independent extreme rays, need %d", len(rows), c.N)
	}
	h := ilin.NewRatMat(c.N, c.N)
	for i := 0; i < c.N; i++ {
		if scale[i] <= 0 {
			return nil, fmt.Errorf("cone: scale %d must be positive", i)
		}
		for j := 0; j < c.N; j++ {
			h.Set(i, j, chosen.At(i, j).Mul(rat.New(1, scale[i])))
		}
	}
	return h, nil
}
