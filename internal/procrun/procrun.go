// Package procrun is the multi-process deployment kit shared by
// cmd/tilerankd and its driver tests: the rendezvous file that tells
// every rank process where its peers listen, the spec-to-program
// compile path, the per-rank result fragment a process emits, and the
// merge that reassembles fragments into the one Global and the one
// mpi.Stats a single-process run of the same spec would produce.
//
// The merge is exact, not approximate: each iteration point is owned by
// exactly one rank (the computer-owns rule, Distribution.Loc), so each
// process emits its owned values in global scan order and the driver
// interleaves them back; traffic counters are recorded on the rank that
// performs the send or the receive, so the per-rank rows merge by
// selection and the totals by summation. Differential tests assert the
// result bit-identical to the in-process run.
package procrun

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tilespace/internal/exec"
	"tilespace/internal/frontend"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/tiling"
)

// Rendezvous is the shared bootstrap file: world size and every rank's
// listen address. The driver pre-allocates the ports, writes this once,
// and passes the path to every tilerankd.
type Rendezvous struct {
	Size  int            `json:"size"`
	Addrs map[int]string `json:"addrs"`
}

// WriteRendezvous atomically persists r (write-temp-then-rename, so a
// booting rank never reads a torn file).
func WriteRendezvous(path string, r *Rendezvous) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(path, data)
}

// ReadRendezvous loads and validates a rendezvous file.
func ReadRendezvous(path string) (*Rendezvous, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Rendezvous
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("procrun: rendezvous %s: %w", path, err)
	}
	if r.Size <= 0 {
		return nil, fmt.Errorf("procrun: rendezvous %s: size %d", path, r.Size)
	}
	for rank := 0; rank < r.Size; rank++ {
		if r.Addrs[rank] == "" {
			return nil, fmt.Errorf("procrun: rendezvous %s: rank %d has no address", path, rank)
		}
	}
	return &r, nil
}

// Compile turns one DSL spec source into an executable program — the
// same parse → analyze → compile pipeline the serve layer runs, without
// the caching. Every rank process compiles the identical spec, which is
// what guarantees identical distributions and tile plans across the
// mesh.
func Compile(source string) (*exec.Program, error) {
	p, err := frontend.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if p.Tiling == nil {
		return nil, fmt.Errorf("spec needs a `tile` directive (e.g. `tile 1/8 0 / 0 1/8`)")
	}
	ts, err := tiling.Analyze(p.Nest, p.Tiling)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	prog, err := exec.NewProgram(ts, p.MapDim, p.Width, p.Kernel, nil)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	return prog, nil
}

// RankResult is the fragment one rank process contributes: its owned
// values in global scan order, its row of the traffic matrix, and the
// transport counters (reported for observability; never merged into
// Stats).
type RankResult struct {
	Rank    int             `json:"rank"`
	Values  []float64       `json:"values"`
	Traffic mpi.RankTraffic `json:"traffic"`
	Wire    mpi.WireStats   `json:"wire"`
}

// WriteResult atomically persists one rank's fragment.
func WriteResult(path string, r *RankResult) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return atomicWrite(path, data)
}

// ReadResult loads one rank's fragment.
func ReadResult(path string) (*RankResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RankResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("procrun: result %s: %w", path, err)
	}
	return &r, nil
}

// OwnedValues extracts rank's contribution from a run's global array:
// the value vectors of every iteration point the computer-owns rule
// assigns to rank, concatenated in global scan order.
func OwnedValues(p *exec.Program, g *exec.Global, rank int) ([]float64, error) {
	var out []float64
	var werr error
	p.ScanSpace(func(j ilin.Vec) bool {
		r, _, err := p.Dist.Loc(j)
		if err != nil {
			werr = fmt.Errorf("procrun: loc(%v): %w", j, err)
			return false
		}
		if r == rank {
			out = append(out, g.At(j)...)
		}
		return true
	})
	return out, werr
}

// Merge reassembles per-rank fragments into the full global array and
// the world-level traffic statistics. Every rank of the distribution
// must be present exactly once; each fragment must carry exactly its
// owned value count.
func Merge(p *exec.Program, results []*RankResult) (*exec.Global, mpi.Stats, error) {
	procs := p.Dist.NumProcs()
	byRank := make([]*RankResult, procs)
	for _, r := range results {
		if r.Rank < 0 || r.Rank >= procs {
			return nil, mpi.Stats{}, fmt.Errorf("procrun: merge: rank %d outside world of %d", r.Rank, procs)
		}
		if byRank[r.Rank] != nil {
			return nil, mpi.Stats{}, fmt.Errorf("procrun: merge: rank %d appears twice", r.Rank)
		}
		byRank[r.Rank] = r
	}
	for rank, r := range byRank {
		if r == nil {
			return nil, mpi.Stats{}, fmt.Errorf("procrun: merge: rank %d missing", rank)
		}
	}

	lo, hi, err := p.TS.Nest.BoundingBox()
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	g := exec.NewGlobal(lo, hi, p.Width)
	cursor := make([]int, procs)
	var werr error
	p.ScanSpace(func(j ilin.Vec) bool {
		rank, _, err := p.Dist.Loc(j)
		if err != nil {
			werr = fmt.Errorf("procrun: loc(%v): %w", j, err)
			return false
		}
		vals := byRank[rank].Values
		c := cursor[rank]
		if c+p.Width > len(vals) {
			werr = fmt.Errorf("procrun: merge: rank %d fragment exhausted at %v", rank, j)
			return false
		}
		g.Set(j, vals[c:c+p.Width])
		cursor[rank] = c + p.Width
		return true
	})
	if werr != nil {
		return nil, mpi.Stats{}, werr
	}
	for rank, r := range byRank {
		if cursor[rank] != len(r.Values) {
			return nil, mpi.Stats{}, fmt.Errorf("procrun: merge: rank %d fragment has %d values, consumed %d",
				rank, len(r.Values), cursor[rank])
		}
	}

	st := mpi.Stats{PerRank: make([]mpi.RankTraffic, procs)}
	for rank, r := range byRank {
		rt := r.Traffic
		st.PerRank[rank] = rt
		st.Messages += rt.BlockingSends + rt.OverlappedSends
		st.Values += rt.Values
		st.BlockingSends += rt.BlockingSends
		st.OverlappedSends += rt.OverlappedSends
		st.Recvs += rt.Recvs
		st.ValuesRecvd += rt.ValuesRecvd
		st.SendRetries += rt.SendRetries
	}
	return g, st, nil
}

// SaveSnapshot atomically persists a rank checkpoint (gob: snapshots
// carry float64 slices, where JSON would lose NaN and bit-exactness).
func SaveSnapshot(path string, s *exec.RankSnapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot loads a rank checkpoint; a missing file returns
// (nil, nil) — the fresh-start case of a relaunch loop.
func LoadSnapshot(path string) (*exec.RankSnapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s exec.RankSnapshot
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("procrun: snapshot %s: %w", path, err)
	}
	return &s, nil
}

func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
