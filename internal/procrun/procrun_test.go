package procrun

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"tilespace/internal/exec"
	"tilespace/internal/ilin"
)

const testSpec = "let M = 6\nlet N = 12\n" +
	"for t = 1 .. M\nfor i = 1 .. N\n" +
	"A[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + 3\n" +
	"tile 1/3 0 / 0 1/4\n"

func TestRendezvousRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	rv := &Rendezvous{Size: 3, Addrs: map[int]string{
		0: "127.0.0.1:7000", 1: "127.0.0.1:7001", 2: "127.0.0.1:7002",
	}}
	if err := WriteRendezvous(path, rv); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRendezvous(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rv, got) {
		t.Fatalf("roundtrip drift: wrote %+v read %+v", rv, got)
	}
}

func TestRendezvousRejectsGaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	rv := &Rendezvous{Size: 3, Addrs: map[int]string{0: "a", 2: "c"}}
	if err := WriteRendezvous(path, rv); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRendezvous(path); err == nil {
		t.Fatal("rendezvous with a missing rank accepted")
	}
}

// TestSplitMergeRoundTrip: splitting a finished run into per-rank owned
// fragments and merging them back must reproduce the Global bit for bit
// and the Stats exactly (totals resummed from the per-rank rows).
func TestSplitMergeRoundTrip(t *testing.T) {
	prog, err := Compile(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	g, stats, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	procs := prog.Dist.NumProcs()
	if procs < 2 {
		t.Fatalf("test spec distributes over %d ranks; need at least 2", procs)
	}
	var frags []*RankResult
	total := 0
	for r := 0; r < procs; r++ {
		vals, err := OwnedValues(prog, g, r)
		if err != nil {
			t.Fatal(err)
		}
		total += len(vals)
		frags = append(frags, &RankResult{Rank: r, Values: vals, Traffic: stats.PerRank[r]})
	}
	var points int
	prog.ScanSpace(func(ilin.Vec) bool { points++; return true })
	if total != points*prog.Width {
		t.Fatalf("fragments carry %d values, space has %d", total, points*prog.Width)
	}

	merged, mergedStats, err := Merge(prog, frags)
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := g.MaxAbsDiff(merged, prog.ScanSpace); diff != 0 {
		t.Fatalf("merged differs by %g at %v", diff, at)
	}
	if !reflect.DeepEqual(stats, mergedStats) {
		t.Fatalf("merged stats drift\nwant %+v\n got %+v", stats, mergedStats)
	}
}

func TestMergeRejectsMissingAndDuplicate(t *testing.T) {
	prog, err := Compile(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	v0, err := OwnedValues(prog, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(prog, []*RankResult{{Rank: 0, Values: v0}}); err == nil {
		t.Error("merge with missing ranks accepted")
	}
	dup := []*RankResult{{Rank: 0, Values: v0}, {Rank: 0, Values: v0}}
	if _, _, err := Merge(prog, dup); err == nil {
		t.Error("merge with a duplicate rank accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rank.ckpt")
	if s, err := LoadSnapshot(path); err != nil || s != nil {
		t.Fatalf("missing snapshot: got %v, %v; want nil, nil", s, err)
	}
	// NaN must survive: LDS cells a resumed chain has not reached yet
	// hold NaN by construction, and JSON would reject it.
	snap := &exec.RankSnapshot{
		Rank:     2,
		NextTile: 4,
		LDS:      []float64{1.5, math.NaN(), -0.25},
	}
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != snap.Rank || got.NextTile != snap.NextTile || len(got.LDS) != 3 {
		t.Fatalf("snapshot drift: %+v", got)
	}
	if got.LDS[0] != 1.5 || !math.IsNaN(got.LDS[1]) || got.LDS[2] != -0.25 {
		t.Fatalf("LDS drift: %v", got.LDS)
	}
}
