// Package lint is a self-contained go/analysis-style framework plus the
// repo-specific analyzers enforced by cmd/tilevet. It exists because the
// runtime invariants the executor relies on — buffer ownership after
// SendOwned/IsendOwned, request completion for Isend/Irecv, nil-guarded
// tracer access — are documented in comments but invisible to go vet.
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) using only the standard library, so it runs in hermetic
// builds with no module downloads; cmd/tilevet adapts it to the `go vet
// -vettool` unitchecker protocol.
//
// Suppression: a comment `//lint:ignore name1,name2 reason` suppresses
// matching diagnostics on its own line and on the line directly below
// (the staticcheck convention, so existing `//lint:ignore SA…` directives
// keep working and can name these analyzers too).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one package's parsed and type-checked representation
// through an analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.analyzer, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns every analyzer tilevet enforces.
func All() []*Analyzer {
	return []*Analyzer{OwnedBuf, WaitCheck, TraceGuard, LockOrder, GoroLeak, SendStats}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run executes the analyzers over one type-checked package and returns
// the surviving diagnostics sorted by position, with //lint:ignore
// directives applied.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignored := ignoreDirectives(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset: fset, Files: files, Pkg: pkg, Info: info,
			analyzer: a.Name,
			report: func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if names, ok := ignored[ignoreKey{pos.Filename, pos.Line}]; ok && names[d.Analyzer] {
					return
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

type ignoreKey struct {
	file string
	line int
}

// ignoreDirectives collects //lint:ignore comments: the named analyzers
// are suppressed on the directive's line and the following line.
func ignoreDirectives(fset *token.FileSet, files []*ast.File) map[ignoreKey]map[string]bool {
	out := map[ignoreKey]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
				if len(fields) == 0 {
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{pos.Filename, line}
					if out[key] == nil {
						out[key] = map[string]bool{}
					}
					for n := range names {
						out[key][n] = true
					}
				}
			}
		}
	}
	return out
}

// funcBodies yields every function body in the files — declarations and
// literals — with the enclosing receiver name ("" for non-methods and
// literals inside non-methods).
func funcBodies(files []*ast.File, fn func(body *ast.BlockStmt, recv string)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := ""
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv = fd.Recv.List[0].Names[0].Name
			}
			fn(fd.Body, recv)
		}
	}
}

// methodName returns the selector name of a call ("" when the call is not
// a selector call), plus the receiver expression.
func methodName(call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}
