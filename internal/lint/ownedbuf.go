package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OwnedBuf flags any read, write or append of a slice variable after it
// was passed to SendOwned/IsendOwned in the same block. Those calls
// transfer ownership of the backing array to the runtime (the receiver
// unpacks it without a copy), so every later use races with the
// receiver. The check is block-scoped — a use in a sibling branch is not
// sequentially after the send — and a whole-variable reassignment
// (`buf = pool.get()`) ends the taint, because the variable then names a
// fresh array.
var OwnedBuf = &Analyzer{
	Name: "ownedbuf",
	Doc:  "flags uses of a slice after its ownership was transferred via SendOwned/IsendOwned",
	Run:  runOwnedBuf,
}

func runOwnedBuf(pass *Pass) error {
	scanSeq := func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			for _, sent := range ownedSends(pass, stmt) {
				pos, name := scanAfterSend(pass, stmts[i+1:], sent)
				if pos != token.NoPos {
					pass.Reportf(pos, "%s is used after being passed to %s: the runtime owns its backing array", sent.arg, name)
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Statement sequences come in three flavors; switch/select
			// bodies are NOT one — their elements are mutually exclusive
			// clauses, so taint must not flow clause-to-clause.
			switch seq := n.(type) {
			case *ast.BlockStmt:
				if len(seq.List) > 0 {
					switch seq.List[0].(type) {
					case *ast.CaseClause, *ast.CommClause:
						return true
					}
				}
				scanSeq(seq.List)
			case *ast.CaseClause:
				scanSeq(seq.Body)
			case *ast.CommClause:
				scanSeq(seq.Body)
			}
			return true
		})
	}
	return nil
}

type ownedSend struct {
	arg    string
	obj    types.Object
	method string
}

// ownedSends finds SendOwned/IsendOwned calls anywhere in stmt whose
// buffer argument is a plain identifier.
func ownedSends(pass *Pass, stmt ast.Stmt) []ownedSend {
	var out []ownedSend
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _ := methodName(call)
		if (name != "SendOwned" && name != "IsendOwned") || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Args[len(call.Args)-1].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			out = append(out, ownedSend{arg: id.Name, obj: obj, method: name})
		}
		return true
	})
	return out
}

// scanAfterSend walks the statements after the send in the same block and
// returns the first use of the sent variable (token.NoPos when the taint
// is killed by reassignment or the block ends first).
func scanAfterSend(pass *Pass, rest []ast.Stmt, sent ownedSend) (token.Pos, string) {
	for _, stmt := range rest {
		if pos := firstUse(pass, stmt, sent.obj); pos != token.NoPos {
			return pos, sent.method
		}
		if reassignsWhole(pass, stmt, sent.obj) {
			return token.NoPos, ""
		}
	}
	return token.NoPos, ""
}

// firstUse returns the position of the first read of obj inside stmt.
// A bare identifier on the left of `=` is a whole-variable store, not a
// read, and `len(buf)`/`cap(buf)` read only the (copied) slice header —
// neither touches the transferred backing array. Everything else —
// including `buf[i] = x` and `buf = append(buf, …)` — counts.
func firstUse(pass *Pass, stmt ast.Stmt, obj types.Object) token.Pos {
	storeOnly := map[*ast.Ident]bool{}
	if as, ok := stmt.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				storeOnly[id] = true
			}
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if fun, ok := call.Fun.(*ast.Ident); ok && (fun.Name == "len" || fun.Name == "cap") {
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
				if id, ok := call.Args[0].(*ast.Ident); ok {
					storeOnly[id] = true
				}
			}
		}
		return true
	})
	found := token.NoPos
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || storeOnly[id] {
			return true
		}
		if pass.Info.Uses[id] == obj {
			found = id.Pos()
			return false
		}
		return true
	})
	return found
}

// reassignsWhole reports whether stmt assigns a fresh value to the whole
// variable (`buf = …` with a bare identifier LHS), which ends the taint.
func reassignsWhole(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			return true
		}
	}
	return false
}
