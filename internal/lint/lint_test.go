package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// typecheckDir parses and type-checks one self-contained fixture package
// (fixtures import nothing, so no importer is needed).
func typecheckDir(t *testing.T, dir string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	pkg, err := conf.Check(dir, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	return fset, files, pkg, info
}

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// collectWants gathers `// want "regex"` expectations keyed by file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	out := map[string][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

// runFixture runs one analyzer over its testdata package and checks the
// diagnostics against the want comments: every finding must be expected
// (zero false positives) and every expectation met (zero false
// negatives).
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	runFixtureDir(t, filepath.Join("testdata", a.Name), []*Analyzer{a})
}

// runFixtureDir runs a set of analyzers over one fixture directory and
// checks diagnostics against the want comments.
func runFixtureDir(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	fset, files, pkg, info := typecheckDir(t, dir)
	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s matching %q", key, re)
		}
	}
}

func TestOwnedBufFixture(t *testing.T)   { runFixture(t, OwnedBuf) }
func TestWaitCheckFixture(t *testing.T)  { runFixture(t, WaitCheck) }
func TestTraceGuardFixture(t *testing.T) { runFixture(t, TraceGuard) }
func TestLockOrderFixture(t *testing.T)  { runFixture(t, LockOrder) }
func TestGoroLeakFixture(t *testing.T)   { runFixture(t, GoroLeak) }
func TestSendStatsFixture(t *testing.T)  { runFixture(t, SendStats) }

// TestIgnoreDirectives runs every analyzer over the ignore fixture: the
// want comments there encode which findings survive multi-analyzer
// directives, wrapped statements, and out-of-reach directives.
func TestIgnoreDirectives(t *testing.T) {
	runFixtureDir(t, filepath.Join("testdata", "ignore"), All())
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := ByName("ownedbuf, traceguard")
	if err != nil || len(two) != 2 || two[0] != OwnedBuf || two[1] != TraceGuard {
		t.Fatalf("ByName(ownedbuf, traceguard) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
