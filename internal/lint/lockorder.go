package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the package's mutex acquisition-order graph and flags
// cycles — the static form of an ABBA deadlock. A mutex class is
// "Type.field" (every instance of TCPMesh.mu is one class); an edge
// A→B is recorded whenever B is locked while A is held, either directly
// in one body or transitively through a same-package call made under A.
// A cycle means two code paths disagree about which class comes first,
// so some interleaving of two goroutines can deadlock.
//
// Scope and precision: only struct-field mutexes participate (function
// locals are scoped to one frame and cannot form cross-goroutine
// cycles); held-set tracking is a source-order walk, with `defer
// Unlock` correctly keeping the class held to function end; function
// literals are walked with an empty held set (goroutine bodies start
// fresh). Same-class self-edges are reported only when the two lock
// sites name the syntactically identical receiver — `l.mu` locked twice
// is a certain self-deadlock, while locking two different instances of
// one class is an instance-ordering question this analyzer stays silent
// on.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags cyclic mutex acquisition orders (static ABBA deadlocks)",
	Run:  runLockOrder,
}

var lockNames = map[string]bool{"Lock": true, "RLock": true}
var unlockNames = map[string]bool{"Unlock": true, "RUnlock": true}

// loEdge is one "to acquired while from held" observation.
type loEdge struct {
	from, to         string
	fromExpr, toExpr string // receiver spelling, for self-edge precision
	pos              token.Pos
}

// loCall is a same-package call made while holding locks.
type loCall struct {
	callee string
	held   []string
	pos    token.Pos
}

// loFunc is one function's lock summary.
type loFunc struct {
	direct map[string]bool
	edges  []loEdge
	calls  []loCall
}

func runLockOrder(pass *Pass) error {
	funcs := map[string]*loFunc{}
	var lits []*loFunc // function literals: edges only, not in call graph

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &loFunc{direct: map[string]bool{}}
			walkLockBody(pass, fd.Body, fn, &lits)
			funcs[funcKey(fd)] = fn
		}
	}

	// Transitive closure: every class a function may acquire, through
	// any chain of same-package calls.
	acquires := map[string]map[string]bool{}
	for key, fn := range funcs {
		acquires[key] = map[string]bool{}
		for c := range fn.direct {
			acquires[key][c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for key, fn := range funcs {
			for _, call := range fn.calls {
				for c := range acquires[call.callee] {
					if !acquires[key][c] {
						acquires[key][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Assemble the class graph: direct edges plus call-induced edges
	// (held → anything the callee may acquire).
	var edges []loEdge
	collect := func(fn *loFunc) {
		edges = append(edges, fn.edges...)
		for _, call := range fn.calls {
			targets := make([]string, 0, len(acquires[call.callee]))
			for c := range acquires[call.callee] {
				targets = append(targets, c)
			}
			sort.Strings(targets)
			for _, c := range targets {
				for _, h := range call.held {
					if h == c {
						continue // instance ambiguity: stay silent
					}
					edges = append(edges, loEdge{from: h, to: c, pos: call.pos})
				}
			}
		}
	}
	for _, key := range sortedKeys(funcs) {
		collect(funcs[key])
	}
	for _, fn := range lits {
		collect(fn)
	}

	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}

	// Report each edge that closes a cycle (a path back from its target
	// to its source exists), once per ordered class pair; and every
	// identical-receiver re-lock.
	reported := map[[2]string]bool{}
	for _, e := range edges {
		if e.from == e.to {
			if e.fromExpr != "" && e.fromExpr == e.toExpr {
				pass.Reportf(e.pos, "lock order: %s (%s) reacquired while already held — self-deadlock", e.to, e.toExpr)
			}
			continue
		}
		if !reachable(adj, e.to, e.from) {
			continue
		}
		pair := [2]string{e.from, e.to}
		if reported[pair] {
			continue
		}
		reported[pair] = true
		pass.Reportf(e.pos, "lock order cycle: %s acquired while holding %s, but the reverse order also occurs", e.to, e.from)
	}
	return nil
}

// walkLockBody walks one body in source order, maintaining the held set.
// Nested function literals are queued for their own empty-held walk.
func walkLockBody(pass *Pass, body *ast.BlockStmt, fn *loFunc, lits *[]*loFunc) {
	held := map[string]string{} // class → receiver spelling
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				lf := &loFunc{direct: map[string]bool{}}
				walkLockBody(pass, x.Body, lf, lits)
				*lits = append(*lits, lf)
				// Literal acquisitions still count toward the enclosing
				// function's transitive summary: a helper that spawns a
				// locking goroutine inline may still run it via callers.
				for c := range lf.direct {
					fn.direct[c] = true
				}
				fn.calls = append(fn.calls, lf.calls...)
				return false
			case *ast.DeferStmt:
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				name, recv := methodName(x)
				if (lockNames[name] || unlockNames[name]) && recv != nil {
					if class, expr, ok := mutexClass(pass, recv); ok {
						if lockNames[name] {
							if prev, dup := held[class]; dup {
								fn.edges = append(fn.edges, loEdge{from: class, to: class, fromExpr: prev, toExpr: expr, pos: x.Pos()})
							}
							for h, hexpr := range held {
								if h != class {
									fn.edges = append(fn.edges, loEdge{from: h, to: class, fromExpr: hexpr, toExpr: expr, pos: x.Pos()})
								}
							}
							held[class] = expr
							fn.direct[class] = true
						} else if !deferred {
							delete(held, class)
						}
						return true
					}
				}
				if callee, ok := calleeKey(pass, x); ok && len(held) > 0 {
					hs := make([]string, 0, len(held))
					for h := range held {
						hs = append(hs, h)
					}
					sort.Strings(hs)
					fn.calls = append(fn.calls, loCall{callee: callee, held: hs, pos: x.Pos()})
				} else if ok {
					fn.calls = append(fn.calls, loCall{callee: callee, pos: x.Pos()})
				}
			}
			return true
		})
	}
	walk(body, false)
}

// mutexClass resolves a Lock/Unlock receiver expression to its class
// "Type.field". Only named-struct fields whose type is (a pointer to) a
// type named Mutex or RWMutex qualify; the mutex's own spelling (e.g.
// "l.mu") comes back for self-edge precision.
func mutexClass(pass *Pass, recv ast.Expr) (class, expr string, ok bool) {
	t := pass.Info.Types[recv].Type
	if t == nil {
		return "", "", false
	}
	name := namedTypeName(t)
	if name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	sel, ok2 := recv.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false // function-local mutex: out of scope
	}
	baseT := pass.Info.Types[sel.X].Type
	base := namedTypeName(baseT)
	if base == "" {
		return "", "", false
	}
	return base + "." + sel.Sel.Name, exprString(recv), true
}

// namedTypeName unwraps pointers and reports the named type's name.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// funcKey names a declaration for the call graph: "f" for functions,
// "Type.m" for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// calleeKey resolves a call to a same-package function or method key;
// cross-package calls, func values and builtins are out of graph.
func calleeKey(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			return fn.Name(), true
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if base := namedTypeName(sig.Recv().Type()); base != "" {
					return base + "." + fn.Name(), true
				}
			}
			return fn.Name(), true
		}
	}
	return "", false
}

// exprString renders a selector chain ("l.m.mu"); non-chain shapes get
// a stable placeholder so they never equal each other.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "<expr>"
}

// reachable reports whether dst is reachable from src in the class graph.
func reachable(adj map[string]map[string]bool, src, dst string) bool {
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		next := make([]string, 0, len(adj[n]))
		for m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				next = append(next, m)
			}
		}
		sort.Strings(next)
		stack = append(stack, next...)
	}
	return false
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
