package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TraceGuard flags method calls on a possibly-nil tracer pointer. The
// runtime's tracers (*trace.Tracer, the per-rank tracer structs) are
// optional: a nil pointer means tracing is off, and every access must
// either sit under an explicit nil check or go through a method that
// guards its own receiver. A bare `st.tr.noteSend(...)` works in traced
// tests and panics in production the first time someone runs without
// -trace.
//
// A call is exempt when the receiver is the enclosing method's own
// receiver, a local variable, a callee whose body begins with
// `if recv == nil { return }` (nil-safe helper), or an expression proven
// non-nil by a dominating `x != nil` guard (including `x == nil` guards
// whose then-branch terminates).
var TraceGuard = &Analyzer{
	Name: "traceguard",
	Doc:  "flags tracer method calls on a possibly-nil pointer receiver outside nil guards",
	Run:  runTraceGuard,
}

func runTraceGuard(pass *Pass) error {
	nilSafe := nilSafeMethods(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := ""
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv = fd.Recv.List[0].Names[0].Name
			}
			tg := &traceGuard{pass: pass, recv: recv, nilSafe: nilSafe, locals: localObjects(pass, fd.Body)}
			tg.walkStmts(fd.Body.List, map[string]bool{})
			// Function literals get a fresh environment: the guard that
			// dominated their creation site may not hold when they run.
			for len(tg.lits) > 0 {
				lit := tg.lits[0]
				tg.lits = tg.lits[1:]
				tg.walkStmts(lit.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

type traceGuard struct {
	pass    *Pass
	recv    string
	nilSafe map[string]bool
	locals  map[types.Object]bool
	lits    []*ast.FuncLit
}

// nilSafeMethods collects methods whose body begins with a
// `if recv == nil { return }` self-guard; calling them on a nil receiver
// is safe by construction.
func nilSafeMethods(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil ||
				len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			recv := fd.Recv.List[0].Names[0].Name
			if len(fd.Body.List) == 0 {
				continue
			}
			ifs, ok := fd.Body.List[0].(*ast.IfStmt)
			if !ok || ifs.Else != nil || !terminates(ifs.Body) {
				continue
			}
			if x := nilComparand(ifs.Cond, true); x != nil {
				if id, ok := x.(*ast.Ident); ok && id.Name == recv {
					out[fd.Name.Name] = true
				}
			}
		}
	}
	return out
}

// localObjects collects every object declared inside the body (:=, var,
// range and type-switch bindings). A tracer held in a local is exempt:
// locals are overwhelmingly just-constructed or just-guarded values, and
// flagging them would punish the idiomatic `tr := newTracer()`.
func localObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// walkStmts flows the set of known-non-nil expressions (keyed by their
// printed form) through a statement list, checking every tracer call
// against the environment in force at its statement.
func (tg *traceGuard) walkStmts(stmts []ast.Stmt, env map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				tg.walkStmts([]ast.Stmt{s.Init}, env)
			}
			tg.checkCalls(s.Cond, env)
			thenEnv := copyEnv(env)
			elseEnv := copyEnv(env)
			for _, x := range nonNilConjuncts(s.Cond) {
				thenEnv[types.ExprString(x)] = true
			}
			if x := nilComparand(s.Cond, true); x != nil {
				elseEnv[types.ExprString(x)] = true
				// `if x == nil { return }` proves x for the tail.
				if terminates(s.Body) {
					env[types.ExprString(x)] = true
				}
			}
			tg.walkStmts(s.Body.List, thenEnv)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				tg.walkStmts(e.List, elseEnv)
			case *ast.IfStmt:
				tg.walkStmts([]ast.Stmt{e}, elseEnv)
			}
		case *ast.AssignStmt:
			tg.checkCalls(s, env)
			for _, lhs := range s.Lhs {
				invalidate(env, types.ExprString(lhs))
			}
		case *ast.IncDecStmt:
			tg.checkCalls(s, env)
			invalidate(env, types.ExprString(s.X))
		case *ast.BlockStmt:
			tg.walkStmts(s.List, copyEnv(env))
		case *ast.ForStmt:
			if s.Init != nil {
				tg.walkStmts([]ast.Stmt{s.Init}, env)
			}
			if s.Cond != nil {
				tg.checkCalls(s.Cond, env)
			}
			tg.walkStmts(s.Body.List, copyEnv(env))
		case *ast.RangeStmt:
			tg.checkCalls(s.X, env)
			tg.walkStmts(s.Body.List, copyEnv(env))
		case *ast.SwitchStmt:
			if s.Init != nil {
				tg.walkStmts([]ast.Stmt{s.Init}, env)
			}
			if s.Tag != nil {
				tg.checkCalls(s.Tag, env)
			}
			tg.walkClauses(s.Body, env)
		case *ast.TypeSwitchStmt:
			tg.walkClauses(s.Body, env)
		case *ast.SelectStmt:
			tg.walkClauses(s.Body, env)
		case *ast.LabeledStmt:
			tg.walkStmts([]ast.Stmt{s.Stmt}, env)
		default:
			tg.checkCalls(stmt, env)
		}
	}
}

func (tg *traceGuard) walkClauses(body *ast.BlockStmt, env map[string]bool) {
	for _, cl := range body.List {
		switch c := cl.(type) {
		case *ast.CaseClause:
			tg.walkStmts(c.Body, copyEnv(env))
		case *ast.CommClause:
			tg.walkStmts(c.Body, copyEnv(env))
		}
	}
}

// checkCalls inspects one statement or expression for tracer method calls
// whose receiver is not proven non-nil. Nested function literals are
// queued for a fresh-environment walk instead of inheriting env.
func (tg *traceGuard) checkCalls(n ast.Node, env map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			tg.lits = append(tg.lits, lit)
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recvExpr := methodName(call)
		if recvExpr == nil || !tg.isTracerPtr(recvExpr) {
			return true
		}
		if tg.nilSafe[name] {
			return true
		}
		if id, ok := recvExpr.(*ast.Ident); ok {
			if id.Name == tg.recv {
				return true
			}
			if obj := tg.pass.Info.Uses[id]; obj != nil && tg.locals[obj] {
				return true
			}
		}
		if env[types.ExprString(recvExpr)] {
			return true
		}
		tg.pass.Reportf(call.Pos(), "call to %s on possibly-nil tracer %s: guard with a nil check or make the method nil-safe", name, types.ExprString(recvExpr))
		return true
	})
}

// isTracerPtr reports whether the expression's static type is a pointer
// to a named type whose name ends in "tracer" (Tracer, rankTracer, …).
func (tg *traceGuard) isTracerPtr(expr ast.Expr) bool {
	t := tg.pass.Info.TypeOf(expr)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return strings.HasSuffix(strings.ToLower(named.Obj().Name()), "tracer")
}

// nonNilConjuncts returns the expressions proven non-nil when cond is
// true: `x != nil` comparands, joined across `&&`.
func nonNilConjuncts(cond ast.Expr) []ast.Expr {
	var out []ast.Expr
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op.String() == "&&" {
		out = append(out, nonNilConjuncts(be.X)...)
		out = append(out, nonNilConjuncts(be.Y)...)
		return out
	}
	if x := nilComparand(cond, false); x != nil {
		out = append(out, x)
	}
	return out
}

// nilComparand extracts x from `x == nil` (eq=true) or `x != nil`
// (eq=false), either operand order; nil when cond has another shape.
func nilComparand(cond ast.Expr, eq bool) ast.Expr {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	want := "!="
	if eq {
		want = "=="
	}
	if be.Op.String() != want {
		return nil
	}
	if isNilIdent(be.Y) {
		return be.X
	}
	if isNilIdent(be.X) {
		return be.Y
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block always leaves the enclosing
// function (return or panic as its last statement).
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isPanic(last.X)
	}
	return false
}

func copyEnv(env map[string]bool) map[string]bool {
	out := make(map[string]bool, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func invalidate(env map[string]bool, lhs string) {
	for k := range env {
		if k == lhs || strings.HasPrefix(k, lhs+".") || strings.HasPrefix(k, lhs+"[") {
			delete(env, k)
		}
	}
}
