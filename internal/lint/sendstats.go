package lint

import (
	"go/ast"
	"strings"
)

// SendStats enforces counter ownership. A struct field annotated
//
//	//sendstats:owned Owner1,Owner2
//
// (on the field, or on the struct type to cover every field) may be
// mutated only inside methods whose receiver type is one of the named
// owners. Mutation means an atomic Add/Store/Swap/CompareAndSwap on the
// field, or a plain assignment/IncDec to it. Reads (Load, plain use)
// are free for everyone.
//
// This is the static form of the transport's accounting contract: the
// Stats counters in TCPMesh and the traffic counters in World are
// written only on the side that owns the event (sender-side frames by
// the sender's link goroutines, receive-side by the inbound link), so a
// counter can never double-count because some helper far from the wire
// "helpfully" bumped it too. Function literals inherit the enclosing
// method's receiver — a writer goroutine spawned by an owner is still
// the owner.
var SendStats = &Analyzer{
	Name: "sendstats",
	Doc:  "flags mutations of //sendstats:owned counters outside their owning types",
	Run:  runSendStats,
}

var atomicMutators = map[string]bool{"Add": true, "Store": true, "Swap": true, "CompareAndSwap": true}

func runSendStats(pass *Pass) error {
	owned := collectOwned(pass)
	if len(owned) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner := ""
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				t := fd.Recv.List[0].Type
				if star, ok := t.(*ast.StarExpr); ok {
					t = star.X
				}
				if id, ok := t.(*ast.Ident); ok {
					owner = id.Name
				}
			}
			checkMutations(pass, fd.Body, owner, fd.Name.Name, owned)
		}
	}
	return nil
}

// collectOwned maps "Type.field" to its owner set from the annotations.
func collectOwned(pass *Pass) map[string]map[string]bool {
	owned := map[string]map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				structOwners := ownersFrom(ts.Doc)
				if structOwners == nil && len(gd.Specs) == 1 {
					structOwners = ownersFrom(gd.Doc)
				}
				for _, field := range st.Fields.List {
					fieldOwners := ownersFrom(field.Doc)
					if fieldOwners == nil {
						fieldOwners = ownersFrom(field.Comment)
					}
					if fieldOwners == nil {
						fieldOwners = structOwners
					}
					if fieldOwners == nil {
						continue
					}
					for _, name := range field.Names {
						owned[ts.Name.Name+"."+name.Name] = fieldOwners
					}
				}
			}
		}
	}
	return owned
}

// ownersFrom parses a //sendstats:owned directive out of a comment group.
func ownersFrom(cg *ast.CommentGroup) map[string]bool {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, "sendstats:owned ") {
			continue
		}
		out := map[string]bool{}
		for _, n := range strings.Split(strings.TrimSpace(strings.TrimPrefix(text, "sendstats:owned ")), ",") {
			if n = strings.TrimSpace(n); n != "" {
				out[n] = true
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return nil
}

// checkMutations walks one function body; FuncLits inherit owner.
func checkMutations(pass *Pass, body *ast.BlockStmt, owner, funcName string, owned map[string]map[string]bool) {
	report := func(pos ast.Node, class string, owners map[string]bool) {
		where := "function " + funcName
		if owner != "" {
			where = "method of " + owner
		}
		pass.Reportf(pos.Pos(), "counter %s is owned by %s (sendstats:owned) but mutated in %s", class, strings.Join(sortedKeys(owners), ","), where)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !atomicMutators[sel.Sel.Name] {
				return true
			}
			if class, owners, ok := ownedField(pass, sel.X, owned); ok && !owners[owner] {
				report(x, class, owners)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if class, owners, ok := ownedField(pass, lhs, owned); ok && !owners[owner] {
					report(lhs, class, owners)
				}
			}
		case *ast.IncDecStmt:
			if class, owners, ok := ownedField(pass, x.X, owned); ok && !owners[owner] {
				report(x, class, owners)
			}
		}
		return true
	})
}

// ownedField resolves expr as a selector onto an annotated field.
func ownedField(pass *Pass, expr ast.Expr, owned map[string]map[string]bool) (string, map[string]bool, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	base := namedTypeName(pass.Info.Types[sel.X].Type)
	if base == "" {
		return "", nil, false
	}
	class := base + "." + sel.Sel.Name
	owners, ok := owned[class]
	return class, owners, ok
}
