package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags `go` statements that spawn provably join-free
// goroutines: no WaitGroup.Done, no channel operation (send, receive,
// close, range, select), reachable anywhere in the spawned body or in
// any same-package function it calls, transitively. Such a goroutine
// has no way to signal completion or be torn down, so nothing can ever
// wait for it — the classic leak that shows up as a lingering worker
// after Close.
//
// The check is deliberately one-sided: any call it cannot fully resolve
// (cross-package, func value, method value) is assumed to join, so a
// report means every path of the goroutine was inspected and none
// touches a synchronization point. Zero false positives, at the cost of
// missing leaks hidden behind external calls.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flags go statements spawning goroutines with no reachable join or teardown path",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	// Named-function bodies, keyed like lockorder's call graph.
	bodies := map[string]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies[funcKey(fd)] = fd.Body
			}
		}
	}

	// mayJoin[key]: the function contains a join marker, or calls
	// something that might. Monotone fixpoint from "no".
	mayJoin := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for key, body := range bodies {
			if mayJoin[key] {
				continue
			}
			if bodyMayJoin(pass, body, bodies, mayJoin) {
				mayJoin[key] = true
				changed = true
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !spawnMayJoin(pass, g.Call, bodies, mayJoin) {
				pass.Reportf(g.Pos(), "goroutine has no reachable join or teardown path (no Done, channel op, close or select anywhere it can run) — it can leak")
			}
			return true
		})
	}
	return nil
}

// spawnMayJoin decides one go statement's target.
func spawnMayJoin(pass *Pass, call *ast.CallExpr, bodies map[string]*ast.BlockStmt, mayJoin map[string]bool) bool {
	// Arguments are evaluated in the spawning goroutine, but a channel
	// passed as an argument is almost always the join path — treat the
	// whole call expression as the unit.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyMayJoin(pass, lit.Body, bodies, mayJoin)
	}
	if key, ok := calleeKey(pass, call); ok {
		if _, have := bodies[key]; have {
			return mayJoin[key]
		}
	}
	return true // unresolvable: assume it joins
}

// bodyMayJoin scans one body for a direct marker or a call that might
// join. Nested function literals count: a goroutine that defines and
// runs a joining closure is joined.
func bodyMayJoin(pass *Pass, body *ast.BlockStmt, bodies map[string]*ast.BlockStmt, mayJoin map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if name, _ := methodName(x); name == "Done" || name == "Wait" {
				found = true
				return false
			}
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			if key, ok := calleeKey(pass, x); ok {
				if _, have := bodies[key]; have {
					if mayJoin[key] {
						found = true
					}
					return true // resolved same-package call: its verdict is the map's
				}
				found = true // declared without a body here: assume it joins
				return false
			}
			if resolvedPure(pass, x) {
				return true // builtin or conversion: cannot join
			}
			found = true // unresolvable call: assume it joins
			return false
		}
		return !found
	})
	return found
}

// resolvedPure reports calls that definitely cannot synchronize:
// builtins other than close (close is handled above) and type
// conversions.
func resolvedPure(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch pass.Info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := pass.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StarExpr, *ast.FuncType:
		return true
	}
	return false
}
