package lint

import (
	"go/ast"
	"go/token"
)

// WaitCheck flags Isend/Irecv/IsendOwned requests that can reach function
// exit without Wait, Test or Waitall on some path. The runtime's NIC
// completes requests asynchronously; dropping one means the chain can be
// declared done while a transfer is still in flight (or a buffer still
// owned), which is exactly the failure mode Waitall at chain end exists
// to prevent.
//
// The analysis is a statement-level all-paths walk with deliberately
// conservative acceptance: a request that escapes the function — stored,
// appended, passed to a call (Waitall included), sent on a channel,
// captured by a closure or returned — is assumed resolved elsewhere, and
// functions using labels, goto, break or continue are skipped entirely.
// That keeps it free of false positives on code it cannot model while
// still proving the common straight-line and branchy cases.
var WaitCheck = &Analyzer{
	Name: "waitcheck",
	Doc:  "flags Isend/Irecv requests whose Wait/Test/Waitall is unreachable on some path",
	Run:  runWaitCheck,
}

var requestMakers = map[string]bool{"Isend": true, "Irecv": true, "IsendOwned": true}
var resolverNames = map[string]bool{"Wait": true, "Test": true}

func runWaitCheck(pass *Pass) error {
	var bodies []*ast.BlockStmt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
	}
	for _, body := range bodies {
		checkFuncRequests(pass, body)
	}
	return nil
}

// hasJumps reports whether the body uses control flow the walker does not
// model (labels, goto, break, continue, fallthrough). Nested function
// literals are excluded — they are analyzed on their own.
func hasJumps(body *ast.BlockStmt) bool {
	jumps := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt, *ast.LabeledStmt:
			jumps = true
		}
		return jumps == false
	})
	return jumps
}

// checkFuncRequests finds request-creating statements in every block of
// one function body (not descending into nested function literals) and
// verifies each request resolves on all paths to exit.
func checkFuncRequests(pass *Pass, body *ast.BlockStmt) {
	if hasJumps(body) {
		return
	}
	var walkBlocks func(n ast.Node)
	walkBlocks = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			block, ok := m.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				checkRequestStmt(pass, stmt, block.List[i+1:])
			}
			return true
		})
	}
	walkBlocks(body)
}

// checkRequestStmt handles one potentially request-creating statement.
func checkRequestStmt(pass *Pass, stmt ast.Stmt, rest []ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, _ := methodName(call); requestMakers[name] {
				pass.Reportf(call.Pos(), "result of %s is discarded: the request is never waited", name)
			}
		}
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, _ := methodName(call)
		if !requestMakers[name] {
			return
		}
		// Only track fresh declarations (`req := …`): their scope ends at
		// the enclosing block, so an unresolved fall-through is a leak.
		// Plain `=` to a named outer variable is an escape the block-local
		// walk cannot follow; `_ =` is a discard and reported above.
		if len(s.Lhs) != 1 {
			return
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s is discarded: the request is never waited", name)
			return
		}
		if s.Tok != token.DEFINE {
			return
		}
		if scanForResolution(pass, rest, id.Name, name) == fellThrough {
			pass.Reportf(id.Pos(), "request %s from %s may reach the end of its scope without Wait/Test/Waitall", id.Name, name)
		}
	}
}

type pathStatus int

const (
	fellThrough pathStatus = iota // reached the end of the list unresolved
	resolved                      // resolved (or escaped) on every continuing path
)

// scanForResolution walks the statements after the request definition.
// It reports (via pass) any return that exits with the request pending,
// and returns whether straight-line fall-through leaves it pending.
func scanForResolution(pass *Pass, stmts []ast.Stmt, req, maker string) pathStatus {
	for _, stmt := range stmts {
		// An escape anywhere inside the statement — even on one branch —
		// conservatively ends tracking: once the value is stored or passed
		// on, responsibility for waiting moved with it.
		if stmtEscapes(stmt, req) {
			return resolved
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if nodeResolves(s, req) {
				return resolved
			}
			pass.Reportf(s.Pos(), "return leaves request %s from %s without Wait/Test/Waitall", req, maker)
			return resolved // reported once; stop tracking
		case *ast.ExprStmt:
			if nodeResolves(s, req) {
				return resolved
			}
			if isPanic(s.X) {
				return resolved // the path ends by unwinding, not by leaking
			}
		case *ast.IfStmt:
			// A resolving call in the condition (`if r.Test() {`) runs on
			// every path; one inside a branch body only covers that branch,
			// so the recursion — not a blanket inspect — decides those.
			if s.Init != nil && nodeResolves(s.Init, req) {
				return resolved
			}
			if nodeResolves(s.Cond, req) {
				return resolved
			}
			thenSt := scanForResolution(pass, s.Body.List, req, maker)
			elseSt := fellThrough
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt = scanForResolution(pass, e.List, req, maker)
			case *ast.IfStmt:
				elseSt = scanForResolution(pass, []ast.Stmt{e}, req, maker)
			}
			if thenSt == resolved && elseSt == resolved {
				return resolved
			}
		case *ast.BlockStmt:
			if scanForResolution(pass, s.List, req, maker) == resolved {
				return resolved
			}
		case *ast.ForStmt:
			// A resolving condition (`for !r.Test() {}`) runs even when the
			// body does not; the body itself may run zero times, so
			// resolution there does not prove the fall-through path — but
			// returns inside are still exits and get reported.
			if s.Cond != nil && nodeResolves(s.Cond, req) {
				return resolved
			}
			scanForResolution(pass, s.Body.List, req, maker)
		case *ast.RangeStmt:
			scanForResolution(pass, s.Body.List, req, maker)
		case *ast.SwitchStmt:
			if scanCases(pass, s.Body, req, maker) {
				return resolved
			}
		case *ast.TypeSwitchStmt:
			if scanCases(pass, s.Body, req, maker) {
				return resolved
			}
		case *ast.SelectStmt:
			allResolve := len(s.Body.List) > 0
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					if scanForResolution(pass, cc.Body, req, maker) != resolved {
						allResolve = false
					}
				}
			}
			if allResolve {
				return resolved
			}
		case *ast.DeferStmt:
			// defer runs on every exit of the function.
			if callResolves(s.Call, req) || deferredClosureResolves(s.Call, req) {
				return resolved
			}
		default:
			// Leaf statements (assignments, declarations, go, send…) hold
			// no nested statement lists, so a blanket inspect is safe.
			if nodeResolves(stmt, req) {
				return resolved
			}
		}
	}
	return fellThrough
}

// scanCases handles switch bodies: resolved only when every case resolves
// and a default exists (otherwise control can fall past the switch).
func scanCases(pass *Pass, body *ast.BlockStmt, req, maker string) bool {
	hasDefault := false
	allResolve := len(body.List) > 0
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		if scanForResolution(pass, cc.Body, req, maker) != resolved {
			allResolve = false
		}
	}
	return hasDefault && allResolve
}

// nodeResolves reports whether the node contains a direct resolution of
// the request: req.Wait() or req.Test().
func nodeResolves(node ast.Node, req string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && callResolves(call, req) {
			found = true
		}
		return !found
	})
	return found
}

func callResolves(call *ast.CallExpr, req string) bool {
	name, recv := methodName(call)
	if !resolverNames[name] {
		return false
	}
	id, ok := recv.(*ast.Ident)
	return ok && id.Name == req
}

// stmtEscapes reports whether the request value leaves the walker's view:
// used as a call argument (append and Waitall included), assigned or sent
// anywhere, returned, composite-literal'd, or captured by a closure.
func stmtEscapes(stmt ast.Stmt, req string) bool {
	escaped := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			for _, arg := range e.Args {
				if exprMentions(arg, req) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range e.Rhs {
				if exprMentions(rhs, req) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if exprMentions(e.Value, req) {
				escaped = true
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if exprMentions(r, req) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if exprMentions(el, req) {
					escaped = true
				}
			}
		case *ast.FuncLit:
			if exprMentions(e, req) {
				escaped = true
			}
			return false
		}
		return !escaped
	})
	return escaped
}

// exprMentions reports whether the identifier appears anywhere in expr,
// except as the receiver of a Wait/Test call (that is resolution, not
// escape).
func exprMentions(expr ast.Node, req string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && resolverNames[sel.Sel.Name] {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == req {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == req {
			found = true
		}
		return !found
	})
	return found
}

// deferredClosureResolves handles `defer func() { req.Wait() }()`.
func deferredClosureResolves(call *ast.CallExpr, req string) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	for _, stmt := range lit.Body.List {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && callResolves(c, req) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isPanic(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
