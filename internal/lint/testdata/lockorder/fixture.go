// Package fixture exercises the lockorder analyzer. It imports nothing:
// the analyzer matches mutexes by type name (Mutex/RWMutex), so these
// stand-ins behave exactly like sync's.
package fixture

type Mutex struct{ _ int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ _ int }

func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}

type A struct{ mu Mutex }

type B struct{ mu Mutex }

// abOrder and baOrder disagree: classic ABBA. Both closing edges are
// reported.
func abOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order cycle: B.mu acquired while holding A.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

func baOrder(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock order cycle: A.mu acquired while holding B.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// consistent nests in one order only — and releasing before the second
// acquisition breaks the edge entirely.
type C struct{ mu Mutex }

type D struct{ mu RWMutex }

func cdOne(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.RLock()
	d.mu.RUnlock()
}

func cdTwo(c *C, d *D) {
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Lock() // no edge: C.mu already released
	d.mu.Unlock()
}

// relock is a certain self-deadlock: same class, same receiver, still
// held.
func relock(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "lock order: A.mu .a.mu. reacquired while already held"
	a.mu.Unlock()
	a.mu.Unlock()
}

// twoInstances locks two values of one class: instance ordering, which
// the analyzer deliberately stays silent on.
func twoInstances(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// Transitive cycle: lockF acquires F.mu; eThenF calls it under E.mu,
// while fThenE takes the opposite direct order.
type E struct{ mu Mutex }

type F struct{ mu Mutex }

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func eThenF(e *E, f *F) {
	e.mu.Lock()
	lockF(f) // want "lock order cycle: F.mu acquired while holding E.mu"
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want "lock order cycle: E.mu acquired while holding F.mu"
	e.mu.Unlock()
	f.mu.Unlock()
}

// Methods participate under their Type.method key, and deep chains
// (two hops) still close the cycle.
type G struct {
	mu Mutex
	h  *H
}

type H struct{ mu Mutex }

func (h *H) poke() {
	h.mu.Lock()
	h.mu.Unlock()
}

func (h *H) pokeViaHelper() {
	h.poke()
}

func (g *G) lockThenCall() {
	g.mu.Lock()
	g.h.pokeViaHelper() // want "lock order cycle: H.mu acquired while holding G.mu"
	g.mu.Unlock()
}

func (h *H) reverse(g *G) {
	h.mu.Lock()
	g.mu.Lock() // want "lock order cycle: G.mu acquired while holding H.mu"
	g.mu.Unlock()
	h.mu.Unlock()
}

// A goroutine body starts with an empty held set: the literal's A-then-B
// order plus baOrder's B-then-A already forms the reported cycle above,
// but the spawn itself under no lock adds nothing new.
func spawned(a *A, b *B) {
	go func() {
		a.mu.Lock()
		a.mu.Unlock()
	}()
	_ = b
}

// localOnly uses a function-local mutex: out of scope, never reported.
func localOnly(a *A) {
	var mu Mutex
	mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	mu.Unlock()
}
