// Package fixture exercises the goroleak analyzer. Import-free: the
// WaitGroup stand-in matches by method name, channels are real.
package fixture

type WaitGroup struct{ _ int }

func (w *WaitGroup) Add(n int) {}
func (w *WaitGroup) Done()     {}
func (w *WaitGroup) Wait()     {}

// leaky spawns pure computation: no join path at all.
func leaky() {
	x := 0
	go func() { // want "no reachable join or teardown path"
		x++
	}()
	_ = x
}

// Every channel operation counts as a join path.
func viaChan(ch chan int) {
	go func() { ch <- 1 }()
	go func() { <-ch }()
	go func() { close(ch) }()
	go func() {
		for range ch {
		}
	}()
	go func() {
		select {
		case <-ch:
		default:
		}
	}()
}

func viaDone(wg *WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Named spawn targets resolve through the package call graph.
func pureHelper() int { return 41 + 1 }

func namedLeakTarget() { _ = pureHelper() }

func spawnNamedLeak() {
	go namedLeakTarget() // want "no reachable join or teardown path"
}

func joinHelper(ch chan int) { ch <- 1 }

func deepJoinTarget(ch chan int) { joinHelper(ch) }

func spawnNamedJoin(ch chan int) {
	go deepJoinTarget(ch) // joins two calls deep
}

// Methods resolve the same way.
type Worker struct{ ch chan int }

func (w *Worker) run()  { <-w.ch }
func (w *Worker) spin() { _ = pureHelper() }

func (w *Worker) start() {
	go w.run()
}

func (w *Worker) startLeak() {
	go w.spin() // want "no reachable join or teardown path"
}

// A goroutine defining and running a joining closure is joined; an
// unresolvable call (func value) is conservatively assumed to join.
func closureInside(ch chan int) {
	go func() {
		f := func() { ch <- 1 }
		f()
	}()
}

func funcValue(f func()) {
	go func() { f() }() // f could join: assumed fine
}

// Mutual recursion with no marker anywhere still converges to "leaks".
func pingPongA() { pingPongB() }
func pingPongB() { pingPongA() }

func spawnRecursive() {
	go pingPongA() // want "no reachable join or teardown path"
}
