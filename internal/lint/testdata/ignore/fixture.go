// Package fixture exercises //lint:ignore edge cases against the
// concurrency-contract analyzers: multi-analyzer directives, directives
// over statements that wrap across lines, and the one-line reach limit.
package fixture

type Mutex struct{ _ int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type A struct{ mu Mutex }

type B struct{ mu Mutex }

// A directive naming two analyzers suppresses either one's finding on
// the next line: here it silences lockorder (the lock below closes the
// A/B cycle), in wrappedSuppressed the identical directive silences
// goroleak.
func suppressedBoth(a *A, b *B) {
	a.mu.Lock()
	//lint:ignore lockorder,goroleak order is protected by the rank barrier
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// The reverse order is NOT suppressed — proving the directive above is
// line-scoped, not package-scoped.
func reverseStillFlagged(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock order cycle: A.mu acquired while holding B.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// A directive immediately above a statement that wraps across several
// lines suppresses the diagnostic, because the diagnostic anchors to
// the statement's FIRST line (where the `go` keyword sits).
func wrappedSuppressed() {
	x := 0
	//lint:ignore lockorder,goroleak fire-and-forget telemetry flush by design
	go func(
		delta int,
	) {
		x += delta
	}(1)
	_ = x
}

// The same wrapped statement two lines below its directive is out of
// reach: directives cover their own line and the next one only.
func wrappedTooFar() {
	x := 0
	//lint:ignore goroleak directive is one line too high
	_ = x
	go func() { // want "no reachable join or teardown path"
		x++
	}()
}

// A directive naming an unrelated analyzer does not suppress.
func wrongName(a *A, b *B) {
	b.mu.Lock()
	a.mu.Unlock()
	//lint:ignore waitcheck names a different analyzer
	b.mu.Lock() // want "reacquired while already held"
	b.mu.Unlock()
	_ = a
}
