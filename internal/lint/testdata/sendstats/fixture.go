// Package fixture exercises the sendstats analyzer. Int64 stands in for
// sync/atomic's: the analyzer matches mutator method names, not the
// atomic package.
package fixture

type Int64 struct{ v int64 }

func (i *Int64) Add(d int64)                    {}
func (i *Int64) Store(d int64)                  {}
func (i *Int64) Swap(d int64) int64             { return 0 }
func (i *Int64) CompareAndSwap(o, n int64) bool { return false }
func (i *Int64) Load() int64                    { return i.v }

type Stats struct {
	//sendstats:owned Stats,Sender
	sent Int64
	recv int64 //sendstats:owned Stats
	free int64
}

// Owners mutate freely.
func (s *Stats) bump() {
	s.sent.Add(1)
	s.recv++
}

type Sender struct{ st *Stats }

func (x *Sender) push() {
	x.st.sent.Add(1) // Sender is in sent's owner list
}

func (x *Sender) bad() {
	x.st.recv++ // want "counter Stats.recv is owned by Stats .sendstats:owned. but mutated in method of Sender"
}

// Free functions own nothing.
func rogue(s *Stats) {
	s.sent.Add(1) // want "counter Stats.sent is owned by Sender,Stats .sendstats:owned. but mutated in function rogue"
}

// Unannotated fields and reads are unrestricted.
func anyone(s *Stats) {
	s.free = 9
	_ = s.sent.Load()
	_ = s.recv
}

type Reader struct{ st *Stats }

func (r *Reader) peek() int64 { return r.st.sent.Load() }

func (r *Reader) clobber() {
	r.st.sent.Store(0) // want "counter Stats.sent is owned by Sender,Stats"
}

func (r *Reader) assign() {
	r.st.recv = 7 // want "counter Stats.recv is owned by Stats"
}

// A struct-level directive covers every field.

//sendstats:owned Hub
type Counters struct {
	hits  Int64
	drops int64
}

type Hub struct{ c Counters }

func (h *Hub) note() {
	h.c.hits.Add(1)
	h.c.drops++
}

// FuncLits inherit the enclosing method's receiver: a goroutine spawned
// by the owner is still the owner.
func (h *Hub) noteAsync(done chan struct{}) {
	go func() {
		h.c.hits.Add(1)
		close(done)
	}()
}

func elsewhere(h *Hub) {
	h.c.drops++ // want "counter Counters.drops is owned by Hub .sendstats:owned. but mutated in function elsewhere"
}
