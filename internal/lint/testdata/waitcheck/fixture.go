// Package fixture exercises the waitcheck analyzer. It is self-contained
// (no imports) so the test harness can type-check it without an importer.
package fixture

type request struct{ done bool }

func (r *request) Wait()      {}
func (r *request) Test() bool { return r.done }

type world struct{ rank int }

func (w *world) Isend(dst, tag int, buf []int64) *request      { return &request{} }
func (w *world) Irecv(src, tag int, buf []int64) *request      { return &request{} }
func (w *world) IsendOwned(dst, tag int, buf []int64) *request { return &request{} }
func (w *world) Waitall(rs []*request)                         {}

func discarded(w *world, buf []int64) {
	w.Isend(0, 1, buf) // want "result of Isend is discarded"
}

func blankDiscard(w *world, buf []int64) {
	var r *request
	r = w.Irecv(0, 1, buf)
	_ = r
	_ = w.Isend(0, 1, buf) // want "result of Isend is discarded"
}

func leakedInLoop(w *world, buf []int64, n int) {
	r := w.Irecv(0, 1, buf) // want "request r from Irecv may reach the end of its scope"
	for i := 0; i < n; i++ {
		if buf[i] < 0 {
			r.Wait()
		}
	}
}

func maybeLeaked(w *world, buf []int64, flag bool) {
	r := w.IsendOwned(0, 1, buf) // want "request r from IsendOwned may reach the end of its scope"
	if flag {
		r.Wait()
	}
}

func returnLeak(w *world, buf []int64, flag bool) {
	r := w.Isend(0, 1, buf)
	if flag {
		return // want "return leaves request r from Isend"
	}
	r.Wait()
}

func straightWait(w *world, buf []int64) {
	r := w.Irecv(0, 1, buf)
	r.Wait()
}

func bothBranchesResolve(w *world, buf []int64, flag bool) {
	r := w.Irecv(0, 1, buf)
	if flag {
		r.Wait()
	} else {
		for !r.Test() {
		}
	}
}

func deferredWait(w *world, buf []int64) int64 {
	r := w.Irecv(0, 1, buf)
	defer r.Wait()
	return buf[0]
}

func deferredClosureWait(w *world, buf []int64) int64 {
	r := w.Irecv(0, 1, buf)
	defer func() { r.Wait() }()
	return buf[0]
}

// Appending to a pending list hands the request to whoever drains it.
func escapesToPending(w *world, buf []int64) []*request {
	var pending []*request
	r := w.IsendOwned(0, 1, buf)
	pending = append(pending, r)
	w.Waitall(pending)
	return pending
}

// Panic unwinds the stack; the path does not leak the request.
func panicPath(w *world, buf []int64, flag bool) {
	r := w.Irecv(0, 1, buf)
	if !flag {
		panic("bad rank")
	}
	r.Wait()
}

// Returning the request transfers responsibility to the caller.
func returned(w *world, buf []int64) *request {
	r := w.Irecv(0, 1, buf)
	return r
}
