// Package fixture exercises the ownedbuf analyzer. It is self-contained
// (no imports) so the test harness can type-check it without an importer.
package fixture

type request struct{ done bool }

func (r *request) Wait() {}

type world struct{ rank int }

func (w *world) SendOwned(dst, tag int, buf []int64)             {}
func (w *world) IsendOwned(dst, tag int, buf []int64) *request   { return &request{} }
func (w *world) Send(dst, tag int, buf []int64)                  {}

func useAfterSend(w *world, buf []int64) {
	w.SendOwned(0, 1, buf)
	buf[0] = 3 // want "buf is used after being passed to SendOwned"
}

func readAfterIsend(w *world, buf []int64) int64 {
	r := w.IsendOwned(0, 1, buf)
	r.Wait()
	return buf[0] // want "buf is used after being passed to IsendOwned"
}

func appendAfterSend(w *world, buf []int64) []int64 {
	w.SendOwned(0, 1, buf)
	buf = append(buf, 4) // want "buf is used after being passed to SendOwned"
	return buf
}

func resendAfterSend(w *world, buf []int64) {
	w.SendOwned(0, 1, buf)
	w.SendOwned(0, 2, buf) // want "buf is used after being passed to SendOwned"
}

// len and cap read only the copied slice header, never the transferred
// backing array.
func headerReadsAreFine(w *world, buf []int64) int {
	r := w.IsendOwned(0, 1, buf)
	n := len(buf) + cap(buf)
	r.Wait()
	return n
}

// Reassigning the whole variable points it at a fresh array, ending the
// taint.
func reassignKillsTaint(w *world, buf []int64) int64 {
	w.SendOwned(0, 1, buf)
	buf = make([]int64, 4)
	return buf[0]
}

// A plain Send copies the buffer; the caller keeps ownership.
func plainSendKeepsOwnership(w *world, buf []int64) int64 {
	w.Send(0, 1, buf)
	return buf[0]
}

// A use in a sibling branch is not sequentially after the send.
func siblingBranchIsFine(w *world, buf []int64, flag bool) int64 {
	if flag {
		w.SendOwned(0, 1, buf)
	} else {
		return buf[0]
	}
	return 0
}

// Switch cases are mutually exclusive: a send in one case does not taint
// a sibling case — but a use inside the same case body still counts.
func switchCases(w *world, buf []int64, rank int) int64 {
	switch rank {
	case 0:
		w.SendOwned(1, 1, buf)
		return buf[0] // want "buf is used after being passed to SendOwned"
	case 1:
		return buf[1]
	}
	return 0
}

// The suppression directive silences the finding on the next line.
func suppressed(w *world, buf []int64) {
	w.SendOwned(0, 1, buf)
	//lint:ignore ownedbuf fixture proves the directive is honored
	buf[0] = 3
}
