// Package fixture exercises the traceguard analyzer. It is self-contained
// (no imports) so the test harness can type-check it without an importer.
package fixture

type tracer struct{ n int }

func (t *tracer) note(k int) { t.n += k }

// chain calls methods on its own receiver: exempt, a method is entitled
// to assume it was invoked on the value it hangs off.
func (t *tracer) chain(k int) {
	t.note(k)
}

// safeNote guards its own receiver, so callers may invoke it on nil.
func (t *tracer) safeNote(k int) {
	if t == nil {
		return
	}
	t.n += k
}

type rankTracer struct{ depth int }

func (rt *rankTracer) push() { rt.depth++ }

type state struct {
	tr   *tracer
	rank int
}

type options struct {
	Trace *rankTracer
}

func unguarded(st *state) {
	st.tr.note(1) // want "call to note on possibly-nil tracer st.tr"
}

func unguardedParam(t *tracer) {
	t.note(1) // want "call to note on possibly-nil tracer t"
}

func unguardedRankTracer(opt *options) {
	opt.Trace.push() // want "call to push on possibly-nil tracer opt.Trace"
}

func guarded(st *state) {
	if st.tr != nil {
		st.tr.note(1)
	}
}

func guardedConjunct(st *state, flag bool) {
	if flag && st.tr != nil {
		st.tr.note(1)
	}
}

func earlyReturn(st *state) {
	if st.tr == nil {
		return
	}
	st.tr.note(1)
}

func elseOfNilCheck(st *state) {
	if st.tr == nil {
		st.rank = -1
	} else {
		st.tr.note(1)
	}
}

func nilSafeCallee(st *state) {
	st.tr.safeNote(1)
}

func localIsExempt() int {
	t := &tracer{}
	t.note(2)
	return t.n
}

// Reassigning the receiver inside the guarded region discards the proof.
func guardThenClobber(st *state, other *tracer) {
	if st.tr != nil {
		st.tr = other
		st.tr.note(1) // want "call to note on possibly-nil tracer st.tr"
	}
}

// A closure may run long after the guard that dominated its creation.
func closureEscapesGuard(st *state, run func(func())) {
	if st.tr != nil {
		run(func() {
			st.tr.note(1) // want "call to note on possibly-nil tracer st.tr"
		})
	}
}

// The guard proves the deeper field too once spelled the same way.
func deepGuard(st *state, opt *options) {
	if opt.Trace != nil && st.tr != nil {
		opt.Trace.push()
		st.tr.note(1)
	}
}
