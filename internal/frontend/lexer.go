// Package frontend parses textual loop nests in the paper's §2.1 notation
// into analyzable programs: it extracts the iteration space (affine
// bounds, including max/min forms through multiple constraints), derives
// the uniform dependence vectors from the array references of the
// statement, builds an executable kernel for the Go runtime by compiling
// the right-hand side to a small expression tree, and renders the same
// statement as C for the code generator.
//
// Grammar (line oriented; '#' starts a comment):
//
//	let NAME = INT                        -- bind a size parameter
//	for VAR = EXPR .. EXPR                -- one loop level, outer first
//	ARRAY[VAR, VAR, ...] = EXPR           -- the single assignment statement
//	skew  INT ... / INT ... / ...         -- optional unimodular skew (rows)
//	tile  RAT ... / RAT ... / ...         -- optional tiling matrix H (rows)
//	map   INT                             -- optional 1-based mapping dim
//
// EXPR supports + - * / ( ), integer and decimal literals, parameters,
// loop variables (in bounds), and ARRAY[idx, …] references (in the
// statement). Statement references must use constant offsets from the
// loop variables (uniform dependencies), e.g. A[t-1, i+1, j].
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // integer or decimal literal
	tokPunct  // single-rune punctuation/operator
	tokDots   // ".."
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lexLine tokenizes one logical line.
func lexLine(line string, lineNo int) ([]token, error) {
	lx := &lexer{src: line, line: lineNo}
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '#':
			lx.pos = len(lx.src)
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '.':
			lx.emit(tokDots, "..")
			lx.pos += 2
		case isDigit(rune(c)):
			start := lx.pos
			for lx.pos < len(lx.src) && (isDigit(rune(lx.src[lx.pos])) || lx.src[lx.pos] == '.') {
				// Stop before a ".." range operator.
				if lx.src[lx.pos] == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '.' {
					break
				}
				lx.pos++
			}
			lx.emit(tokNumber, lx.src[start:lx.pos])
		case isIdentStart(rune(c)):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
				lx.pos++
			}
			lx.emit(tokIdent, lx.src[start:lx.pos])
		case strings.ContainsRune("+-*/()[],=", rune(c)):
			lx.emit(tokPunct, string(c))
			lx.pos++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", lineNo, c)
		}
	}
	lx.emit(tokEOF, "")
	return lx.toks, nil
}

func (lx *lexer) emit(kind tokenKind, text string) {
	lx.toks = append(lx.toks, token{kind: kind, text: text, pos: lx.pos})
}

func isDigit(r rune) bool      { return r >= '0' && r <= '9' }
func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return isIdentStart(r) || isDigit(r) }

// tokens is a cursor over one line's tokens.
type tokens struct {
	toks []token
	i    int
	line int
}

func (t *tokens) peek() token { return t.toks[t.i] }

func (t *tokens) next() token {
	tk := t.toks[t.i]
	if tk.kind != tokEOF {
		t.i++
	}
	return tk
}

func (t *tokens) accept(text string) bool {
	if t.peek().kind == tokPunct && t.peek().text == text {
		t.i++
		return true
	}
	return false
}

func (t *tokens) expect(text string) error {
	if !t.accept(text) {
		return fmt.Errorf("line %d: expected %q, found %q", t.line, text, t.peek().text)
	}
	return nil
}

func (t *tokens) atEOF() bool { return t.peek().kind == tokEOF }
