package frontend

import (
	"fmt"
	"strconv"
	"strings"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// expr is the AST of a parsed arithmetic expression.
type expr interface{ String() string }

type numExpr struct {
	text string // original literal, preserved for C output
	val  float64
}

func (e *numExpr) String() string { return e.text }

// varExpr is a loop variable or parameter occurrence (bounds only).
type varExpr struct{ name string }

func (e *varExpr) String() string { return e.name }

// refExpr is an array read in the statement, resolved to a dependence
// index and an array slot (multi-array statements carry one value per
// array at each iteration point).
type refExpr struct {
	dep     int      // index into the program's dependence list
	slot    int      // index of the referenced array in the value vector
	offsets ilin.Vec // index offsets (var_k + offsets[k])
}

func (e *refExpr) String() string { return fmt.Sprintf("ref#%d.%d", e.dep, e.slot) }

type binExpr struct {
	op   byte // + - * /
	l, r expr
}

func (e *binExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", e.l, e.op, e.r)
}

type negExpr struct{ x expr }

func (e *negExpr) String() string { return fmt.Sprintf("(-%s)", e.x) }

// parseExpr parses with standard precedence: (+,-) < (*,/) < unary.
// refs, when non-nil, enables ARRAY[...] references (statement context)
// and resolves them through the resolver callback.
type refResolver func(array string, indices []expr) (expr, error)

func parseExpr(t *tokens, refs refResolver) (expr, error) {
	return parseAdd(t, refs)
}

func parseAdd(t *tokens, refs refResolver) (expr, error) {
	l, err := parseMul(t, refs)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case t.accept("+"):
			r, err := parseMul(t, refs)
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: '+', l: l, r: r}
		case t.accept("-"):
			r, err := parseMul(t, refs)
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: '-', l: l, r: r}
		default:
			return l, nil
		}
	}
}

func parseMul(t *tokens, refs refResolver) (expr, error) {
	l, err := parseUnary(t, refs)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case t.accept("*"):
			r, err := parseUnary(t, refs)
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: '*', l: l, r: r}
		case t.accept("/"):
			r, err := parseUnary(t, refs)
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: '/', l: l, r: r}
		default:
			return l, nil
		}
	}
}

func parseUnary(t *tokens, refs refResolver) (expr, error) {
	if t.accept("-") {
		x, err := parseUnary(t, refs)
		if err != nil {
			return nil, err
		}
		return &negExpr{x: x}, nil
	}
	return parseAtom(t, refs)
}

func parseAtom(t *tokens, refs refResolver) (expr, error) {
	tk := t.peek()
	switch tk.kind {
	case tokNumber:
		t.next()
		v, err := strconv.ParseFloat(tk.text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", t.line, tk.text)
		}
		return &numExpr{text: tk.text, val: v}, nil
	case tokIdent:
		t.next()
		if t.peek().kind == tokPunct && t.peek().text == "[" {
			if refs == nil {
				return nil, fmt.Errorf("line %d: array reference %q not allowed here", t.line, tk.text)
			}
			t.next() // consume '['
			var indices []expr
			for {
				idx, err := parseExpr(t, nil)
				if err != nil {
					return nil, err
				}
				indices = append(indices, idx)
				if t.accept(",") {
					continue
				}
				if err := t.expect("]"); err != nil {
					return nil, err
				}
				break
			}
			return refs(tk.text, indices)
		}
		return &varExpr{name: tk.text}, nil
	case tokPunct:
		if tk.text == "(" {
			t.next()
			inner, err := parseExpr(t, refs)
			if err != nil {
				return nil, err
			}
			if err := t.expect(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	if tk.kind == tokEOF {
		return nil, fmt.Errorf("line %d: unexpected end of line (expression expected)", t.line)
	}
	return nil, fmt.Errorf("line %d: unexpected token %q", t.line, tk.text)
}

// affineOf reduces a bounds expression to Σ coef_k·var_k + const with
// exact rational arithmetic. vars maps loop-variable names to indices;
// params supplies bound integer parameters.
func affineOf(e expr, vars map[string]int, params map[string]int64, n int) (ilin.RatVec, rat.Rat, error) {
	zero := make(ilin.RatVec, n)
	for i := range zero {
		zero[i] = rat.Zero
	}
	switch x := e.(type) {
	case *numExpr:
		// Bounds must be integer-valued expressions.
		iv, err := strconv.ParseInt(x.text, 10, 64)
		if err != nil {
			return nil, rat.Zero, fmt.Errorf("bound literal %q must be an integer", x.text)
		}
		return zero, rat.FromInt(iv), nil
	case *varExpr:
		if p, ok := params[x.name]; ok {
			return zero, rat.FromInt(p), nil
		}
		if k, ok := vars[x.name]; ok {
			coef := zero.Clone()
			coef[k] = rat.One
			return coef, rat.Zero, nil
		}
		return nil, rat.Zero, fmt.Errorf("unknown name %q in bound", x.name)
	case *negExpr:
		c, k, err := affineOf(x.x, vars, params, n)
		if err != nil {
			return nil, rat.Zero, err
		}
		return c.Scale(rat.FromInt(-1)), k.Neg(), nil
	case *binExpr:
		lc, lk, err := affineOf(x.l, vars, params, n)
		if err != nil {
			return nil, rat.Zero, err
		}
		rc, rk, err := affineOf(x.r, vars, params, n)
		if err != nil {
			return nil, rat.Zero, err
		}
		switch x.op {
		case '+':
			return lc.Add(rc), lk.Add(rk), nil
		case '-':
			return lc.Sub(rc), lk.Sub(rk), nil
		case '*':
			if lc.IsZero() {
				return rc.Scale(lk), rk.Mul(lk), nil
			}
			if rc.IsZero() {
				return lc.Scale(rk), lk.Mul(rk), nil
			}
			return nil, rat.Zero, fmt.Errorf("non-affine bound: product of two variable expressions")
		case '/':
			if !rc.IsZero() || rk.IsZero() {
				return nil, rat.Zero, fmt.Errorf("non-affine bound: division by a variable expression")
			}
			return lc.Scale(rk.Inv()), lk.Div(rk), nil
		}
	}
	return nil, rat.Zero, fmt.Errorf("unsupported bound expression %v", e)
}

// evalExpr evaluates a statement expression given the dependence reads.
func evalExpr(e expr, reads [][]float64) float64 {
	switch x := e.(type) {
	case *numExpr:
		return x.val
	case *refExpr:
		return reads[x.dep][x.slot]
	case *negExpr:
		return -evalExpr(x.x, reads)
	case *binExpr:
		l, r := evalExpr(x.l, reads), evalExpr(x.r, reads)
		switch x.op {
		case '+':
			return l + r
		case '-':
			return l - r
		case '*':
			return l * r
		case '/':
			return l / r
		}
	}
	panic(fmt.Sprintf("frontend: unevaluable expression %v", e))
}

// cExpr renders a statement expression as C, with dependence reads mapped
// to the generator's $Rl placeholders.
func cExpr(e expr) string {
	switch x := e.(type) {
	case *numExpr:
		if strings.ContainsAny(x.text, ".eE") {
			return x.text
		}
		return x.text + ".0"
	case *refExpr:
		return fmt.Sprintf("$R%d[%d]", x.dep, x.slot)
	case *negExpr:
		return "(-" + cExpr(x.x) + ")"
	case *binExpr:
		return "(" + cExpr(x.l) + " " + string(x.op) + " " + cExpr(x.r) + ")"
	}
	panic(fmt.Sprintf("frontend: unrenderable expression %v", e))
}
