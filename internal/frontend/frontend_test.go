package frontend

import (
	"strings"
	"testing"

	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

const sorSource = `
# SOR, §4.1 of the paper
let M = 6
let N = 10
for t = 1 .. M
for i = 1 .. N
for j = 1 .. N
A[t,i,j] = 0.3*(A[t,i-1,j] + A[t,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1]) - 0.2*A[t-1,i,j]
skew 1 0 0 / 1 1 0 / 2 0 1
tile 1/3 0 0 / 0 1/7 0 / -1/4 0 1/4
map 3
`

func TestParseSOR(t *testing.T) {
	prog, err := Parse(sorSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Arrays) != 1 || prog.Arrays[0] != "A" || prog.Width != 1 || prog.Nest.N != 3 || prog.Nest.Q() != 5 {
		t.Fatalf("arrays=%v n=%d q=%d", prog.Arrays, prog.Nest.N, prog.Nest.Q())
	}
	// Skewed size must equal the original M×N×N.
	size, err := prog.Nest.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 6*10*10 {
		t.Errorf("size = %d, want 600", size)
	}
	// Skewed dependencies: T·D with the paper's skew.
	want := map[string]bool{}
	for _, d := range [][]int64{{0, 1, 0}, {0, 0, 1}, {1, 0, 2}, {1, 1, 1}, {1, 1, 2}} {
		want[ilin.NewVec(d...).String()] = true
	}
	for l := 0; l < prog.Nest.Q(); l++ {
		if !want[prog.Nest.Dep(l).String()] {
			t.Errorf("unexpected skewed dep %v", prog.Nest.Dep(l))
		}
	}
	if prog.MapDim != 2 {
		t.Errorf("MapDim = %d, want 2", prog.MapDim)
	}
	if prog.Tiling == nil || prog.Tiling.Rows != 3 {
		t.Fatal("missing tile directive")
	}
	if !strings.Contains(prog.KernelC, "$R0[0]") || !strings.HasPrefix(prog.KernelC, "$W[0] = ") {
		t.Errorf("KernelC = %q", prog.KernelC)
	}
	if prog.Params["M"] != 6 || prog.Params["N"] != 10 {
		t.Errorf("params = %v", prog.Params)
	}
}

// TestParsedProgramExecutes: the parsed SOR runs through the whole
// pipeline — analyze with its own tile directive, run parallel vs
// sequential — using the kernel compiled from the source text.
func TestParsedProgramExecutes(t *testing.T) {
	prog, err := Parse(sorSource)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(prog.Nest, prog.Tiling)
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.NewProgram(ts, prog.MapDim, 1, prog.Kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := p.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(par, p.ScanSpace); diff != 0 {
		t.Fatalf("parsed program: parallel differs by %g at %v", diff, at)
	}
}

func TestParseTriangularBounds(t *testing.T) {
	src := `
let N = 8
for i = 0 .. N
for j = i .. N
A[i,j] = A[i-1,j] + A[i,j-1] + 1
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := prog.Nest.Size()
	if size != 9*10/2 {
		t.Errorf("triangle size = %d, want 45", size)
	}
	if prog.Nest.Q() != 2 {
		t.Errorf("q = %d", prog.Nest.Q())
	}
}

func TestParseAffineBoundExpressions(t *testing.T) {
	src := `
let T = 5
for t = 1 .. T
for i = t+1 .. t+6
for j = 2*t+1 .. 2*t+4
A[t,i,j] = A[t-1,i,j] + 0.5
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := prog.Nest.Size()
	if size != 5*6*4 {
		t.Errorf("size = %d, want 120", size)
	}
}

func TestDependenceDeduplication(t *testing.T) {
	src := `
for i = 1 .. 8
for j = 1 .. 8
A[i,j] = A[i-1,j] + 2*A[i-1,j] - A[i,j-1]
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Nest.Q() != 2 {
		t.Errorf("q = %d, want 2 (duplicate reads deduplicated)", prog.Nest.Q())
	}
}

func TestKernelEvaluation(t *testing.T) {
	src := `
for i = 1 .. 4
A[i] = (A[i-1] + 3) * 2 - 1/2
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	prog.Kernel(ilin.NewVec(1), [][]float64{{5}}, out)
	if out[0] != (5+3)*2-0.5 {
		t.Errorf("kernel = %v", out[0])
	}
	if !strings.Contains(prog.KernelC, "3.0") {
		t.Errorf("integer literals should render as C doubles: %q", prog.KernelC)
	}
}

func TestUnaryMinus(t *testing.T) {
	src := `
for i = 1 .. 4
A[i] = -A[i-1] + -2.5
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	prog.Kernel(ilin.NewVec(1), [][]float64{{4}}, out)
	if out[0] != -6.5 {
		t.Errorf("kernel = %v", out[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no loops":             `A[i] = 1`,
		"no statement":         "for i = 1 .. 4",
		"array assigned twice": "for i = 1 .. 4\nA[i] = 1\nA[i] = 2",
		"loop after stmt":      "for i = 1 .. 4\nA[i] = 1\nfor j = 1 .. 4",
		"dup var":              "for i = 1 .. 4\nfor i = 1 .. 4\nA[i,i] = 1",
		"bad write ref":        "for i = 1 .. 4\nfor j = 1 .. 4\nA[j,i] = 1",
		"read never assigned":  "for i = 1 .. 4\nA[i] = B[i-1]",
		"non-uniform dep":      "for i = 1 .. 8\nA[i] = A[2*i]",
		"fractional offset":    "for i = 1 .. 8\nA[i] = A[i-1/2]",
		"inner-var bound":      "for i = j .. 4\nfor j = 1 .. 4\nA[i,j] = 1",
		"unknown bound name":   "for i = 1 .. Q\nA[i] = 1",
		"nonaffine bound":      "for i = 1 .. 4\nfor j = i*i .. 9\nA[i,j] = 1",
		"bad let":              "let = 4",
		"bad map":              "for i = 1 .. 4\nA[i] = 1\nmap x",
		"map zero":             "for i = 1 .. 4\nA[i] = 1\nmap 0",
		"bad skew":             "for i = 1 .. 4\nA[i] = 1\nskew x",
		"ragged skew":          "for i = 1 .. 4\nfor j = 1 .. 4\nA[i,j] = 1\nskew 1 0 / 1",
		"bad tile rational":    "for i = 1 .. 4\nA[i] = 1\ntile q",
		"empty tile":           "for i = 1 .. 4\nA[i] = 1\ntile",
		"trailing junk":        "for i = 1 .. 4 extra\nA[i] = 1",
		"negative dep":         "for i = 1 .. 8\nA[i] = A[i+1]",
		"bad range":            "for i = 1 4\nA[i] = 1",
		"unbalanced paren":     "for i = 1 .. 4\nA[i] = (A[i-1] + 1",
		"bad char":             "for i = 1 .. 4\nA[i] = A[i-1] ^ 2",
		"wrong index count":    "for i = 1 .. 4\nfor j = 1 .. 4\nA[i,j] = A[i-1]",
		"array ref in bounds":  "for i = A[0] .. 4\nA[i] = 1",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected a parse error", name)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "\n# header\n\nfor i = 1 .. 4   # inline comment\n\nA[i] = A[i-1] + 1\n#trailer\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Nest.N != 1 {
		t.Errorf("n = %d", prog.Nest.N)
	}
}

func TestSplitRows(t *testing.T) {
	rows := splitRows("1/3 0 0 / 0 1/7 0 ; -1/4 0 1/4")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2] != "-1/4 0 1/4" {
		t.Errorf("row 3 = %q", rows[2])
	}
}

// adiSource expresses the paper's Table 3 two-array ADI statement in the
// DSL (constant coefficient stands in for the A[i,j] input array).
const adiSource = `
let T = 5
let N = 9
for t = 1 .. T
for i = 1 .. N
for j = 1 .. N
X[t,i,j] = X[t-1,i,j] + X[t-1,i,j-1]*0.05/B[t-1,i,j-1] - X[t-1,i-1,j]*0.05/B[t-1,i-1,j]
B[t,i,j] = B[t-1,i,j] - 0.05*0.05/B[t-1,i,j-1] - 0.05*0.05/B[t-1,i-1,j]
tile 1/2 0 0 / 0 1/3 0 / 0 0 1/3
map 1
`

// TestMultiArrayADI: the paper's "multiple statements on multiple arrays"
// form parses, infers width 2, and executes correctly end to end.
func TestMultiArrayADI(t *testing.T) {
	prog, err := Parse(adiSource)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Width != 2 || len(prog.Arrays) != 2 || prog.Arrays[0] != "X" || prog.Arrays[1] != "B" {
		t.Fatalf("arrays = %v, width = %d", prog.Arrays, prog.Width)
	}
	// Dependence set: (1,0,0), (1,0,1), (1,1,0) shared across both arrays.
	if prog.Nest.Q() != 3 {
		t.Fatalf("q = %d, want 3 (deps deduplicated across arrays)", prog.Nest.Q())
	}
	if !strings.Contains(prog.KernelC, "$W[0] = ") || !strings.Contains(prog.KernelC, "$W[1] = ") {
		t.Errorf("KernelC = %q", prog.KernelC)
	}
	ts, err := tiling.Analyze(prog.Nest, prog.Tiling)
	if err != nil {
		t.Fatal(err)
	}
	initial := func(j ilin.Vec, out []float64) { out[0], out[1] = 1, 2 }
	p, err := exec.NewProgram(ts, prog.MapDim, prog.Width, prog.Kernel, initial)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := p.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(par, p.ScanSpace); diff != 0 {
		t.Fatalf("multi-array parallel differs by %g at %v", diff, at)
	}
}

// TestMultiArrayCrossReads: a statement may read the other array at
// earlier iterations; a same-iteration read (d = 0) is rejected as a
// non-lex-positive dependence.
func TestMultiArrayCrossReads(t *testing.T) {
	if _, err := Parse("for i = 1 .. 4\nX[i] = B[i]\nB[i] = X[i-1]"); err == nil {
		t.Error("same-iteration cross read (d = 0) should be rejected")
	}
	prog, err := Parse("for i = 1 .. 6\nX[i] = B[i-1] + 1\nB[i] = X[i-1] * 2")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	prog.Kernel(ilin.NewVec(1), [][]float64{{10, 20}}, out)
	if out[0] != 21 || out[1] != 20 {
		t.Errorf("kernel = %v", out)
	}
}
