package frontend

import (
	"fmt"
	"strconv"
	"strings"

	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/poly"
	"tilespace/internal/rat"
)

// Program is a fully parsed loop-nest program.
type Program struct {
	// Nest is the iteration space and dependence matrix (after the
	// optional skew directive has been applied).
	Nest *loopnest.Nest
	// Arrays lists the assigned arrays in statement order; Width ==
	// len(Arrays) (the paper's multiple-statements-on-multiple-arrays
	// form maps each array to one slot of the iteration value vector).
	Arrays []string
	// Width is the number of values per iteration point.
	Width int
	// Kernel evaluates all statements for the Go executor.
	Kernel exec.Kernel
	// KernelC is the statement block rendered with the code generator's
	// $W/$Rl placeholders.
	KernelC string
	// Tiling, when the source carried a `tile` directive, holds the rows
	// of H as parsed rationals (nil otherwise).
	Tiling *ilin.RatMat
	// MapDim is the 0-based mapping dimension from the `map` directive,
	// or -1 when absent.
	MapDim int
	// Params echoes the bound `let` parameters.
	Params map[string]int64
}

type loopLevel struct {
	name   string
	lo, hi expr
}

type stmt struct {
	array string
	slot  int
	rhs   expr
}

type parser struct {
	params   map[string]int64
	loops    []loopLevel
	varIdx   map[string]int
	arrays   []string
	arrayIdx map[string]int
	assigned map[string]bool
	lhsLine  int
	stmts    []stmt
	deps     []ilin.Vec
	skew     *ilin.Mat
	tiling   *ilin.RatMat
	mapDim   int
}

// Parse reads a loop-nest program from source text.
func Parse(src string) (*Program, error) {
	p := &parser{params: map[string]int64{}, varIdx: map[string]int{}, arrayIdx: map[string]int{}, assigned: map[string]bool{}, mapDim: -1}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := lexLine(line, lineNo+1)
		if err != nil {
			return nil, err
		}
		t := &tokens{toks: toks, line: lineNo + 1}
		if t.atEOF() {
			continue
		}
		head := t.peek()
		switch {
		case head.kind == tokIdent && head.text == "let":
			err = p.parseLet(t)
		case head.kind == tokIdent && head.text == "for":
			err = p.parseFor(t)
		case head.kind == tokIdent && head.text == "skew":
			err = p.parseSkew(t, line)
		case head.kind == tokIdent && head.text == "tile":
			err = p.parseTile(line, lineNo+1)
		case head.kind == tokIdent && head.text == "map":
			err = p.parseMap(t)
		default:
			err = p.parseStatement(t)
		}
		if err != nil {
			return nil, err
		}
	}
	return p.finish()
}

func (p *parser) parseLet(t *tokens) error {
	t.next() // 'let'
	name := t.next()
	if name.kind != tokIdent {
		return fmt.Errorf("line %d: let needs a name", t.line)
	}
	if err := t.expect("="); err != nil {
		return err
	}
	neg := t.accept("-")
	num := t.next()
	if num.kind != tokNumber {
		return fmt.Errorf("line %d: let %s needs an integer", t.line, name.text)
	}
	v, err := strconv.ParseInt(num.text, 10, 64)
	if err != nil {
		return fmt.Errorf("line %d: bad integer %q", t.line, num.text)
	}
	if neg {
		v = -v
	}
	p.params[name.text] = v
	return nil
}

func (p *parser) parseFor(t *tokens) error {
	if len(p.stmts) > 0 {
		return fmt.Errorf("line %d: loop after a statement (the nest must be perfect)", t.line)
	}
	t.next() // 'for'
	name := t.next()
	if name.kind != tokIdent {
		return fmt.Errorf("line %d: for needs a variable", t.line)
	}
	if _, dup := p.varIdx[name.text]; dup {
		return fmt.Errorf("line %d: duplicate loop variable %q", t.line, name.text)
	}
	if _, isParam := p.params[name.text]; isParam {
		return fmt.Errorf("line %d: %q is already a parameter", t.line, name.text)
	}
	if err := t.expect("="); err != nil {
		return err
	}
	lo, err := parseExpr(t, nil)
	if err != nil {
		return err
	}
	if t.peek().kind != tokDots {
		return fmt.Errorf("line %d: expected '..' in loop range", t.line)
	}
	t.next()
	hi, err := parseExpr(t, nil)
	if err != nil {
		return err
	}
	if !t.atEOF() {
		return fmt.Errorf("line %d: trailing tokens after loop range", t.line)
	}
	p.varIdx[name.text] = len(p.loops)
	p.loops = append(p.loops, loopLevel{name: name.text, lo: lo, hi: hi})
	return nil
}

// parseStatement handles "ARRAY[vars] = EXPR". Multiple statements on
// distinct arrays are allowed (the paper's multi-array form); each array
// becomes one slot of the iteration value vector, single assignment per
// array.
func (p *parser) parseStatement(t *tokens) error {
	if len(p.loops) == 0 {
		return fmt.Errorf("line %d: statement before any loop", t.line)
	}
	arr := t.next()
	if arr.kind != tokIdent {
		return fmt.Errorf("line %d: expected array assignment", t.line)
	}
	if p.assigned[arr.text] {
		return fmt.Errorf("line %d: array %q assigned twice (single assignment per array)", t.line, arr.text)
	}
	p.assigned[arr.text] = true
	if _, known := p.arrayIdx[arr.text]; !known {
		p.arrayIdx[arr.text] = len(p.arrays)
		p.arrays = append(p.arrays, arr.text)
	}
	p.lhsLine = t.line
	if err := t.expect("["); err != nil {
		return err
	}
	for k := 0; k < len(p.loops); k++ {
		v := t.next()
		if v.kind != tokIdent || v.text != p.loops[k].name {
			return fmt.Errorf("line %d: write reference must be %s[%s] (the identity f_w)", t.line, arr.text, p.loopVarList())
		}
		if k < len(p.loops)-1 {
			if err := t.expect(","); err != nil {
				return err
			}
		}
	}
	if err := t.expect("]"); err != nil {
		return err
	}
	if err := t.expect("="); err != nil {
		return err
	}
	rhs, err := parseExpr(t, p.resolveRef)
	if err != nil {
		return err
	}
	if !t.atEOF() {
		return fmt.Errorf("line %d: trailing tokens after statement", t.line)
	}
	p.stmts = append(p.stmts, stmt{array: arr.text, slot: p.arrayIdx[arr.text], rhs: rhs})
	return nil
}

func (p *parser) loopVarList() string {
	names := make([]string, len(p.loops))
	for i, l := range p.loops {
		names[i] = l.name
	}
	return strings.Join(names, ",")
}

// resolveRef turns A[t-1, i+1, j] into a refExpr with dependence vector
// (1, -1, 0) and the array's value slot, deduplicating identical
// dependence vectors across arrays (all arrays of a point travel
// together).
func (p *parser) resolveRef(array string, indices []expr) (expr, error) {
	slot, known := p.arrayIdx[array]
	if !known {
		// Reading an array before (or without) its assignment: reserve a
		// slot — its statement must follow, checked in finish().
		slot = len(p.arrays)
		p.arrayIdx[array] = slot
		p.arrays = append(p.arrays, array)
	}
	n := len(p.loops)
	if len(indices) != n {
		return nil, fmt.Errorf("line %d: %s reference has %d indices, nest depth is %d", p.lhsLine, array, len(indices), n)
	}
	d := make(ilin.Vec, n)
	offs := make(ilin.Vec, n)
	for k, idx := range indices {
		coef, c, err := affineOf(idx, p.varIdx, p.params, n)
		if err != nil {
			return nil, fmt.Errorf("line %d: index %d of %s: %v", p.lhsLine, k+1, array, err)
		}
		// Must be var_k + const (uniform dependence).
		for l := 0; l < n; l++ {
			want := rat.Zero
			if l == k {
				want = rat.One
			}
			if !coef[l].Equal(want) {
				return nil, fmt.Errorf("line %d: index %d of %s must be %s+const (uniform dependencies)", p.lhsLine, k+1, array, p.loops[k].name)
			}
		}
		if !c.IsInt() {
			return nil, fmt.Errorf("line %d: index offset %v is not an integer", p.lhsLine, c)
		}
		offs[k] = c.Int()
		d[k] = -c.Int() // reads A[j - d]
	}
	for i, have := range p.deps {
		if have.Equal(d) {
			return &refExpr{dep: i, slot: slot, offsets: offs}, nil
		}
	}
	p.deps = append(p.deps, d)
	return &refExpr{dep: len(p.deps) - 1, slot: slot, offsets: offs}, nil
}

func (p *parser) parseSkew(t *tokens, line string) error {
	rows, err := parseIntRows(strings.TrimSpace(strings.TrimPrefix(line, "skew")), t.line)
	if err != nil {
		return err
	}
	p.skew = ilin.MatFromRows(rows...)
	return nil
}

func (p *parser) parseTile(line string, lineNo int) error {
	body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "tile"))
	var rows [][]string
	for _, rowText := range splitRows(body) {
		fields := strings.Fields(rowText)
		if len(fields) == 0 {
			continue
		}
		rows = append(rows, fields)
	}
	if len(rows) == 0 {
		return fmt.Errorf("line %d: empty tile directive", lineNo)
	}
	h := ilin.NewRatMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != h.Cols {
			return fmt.Errorf("line %d: ragged tile matrix", lineNo)
		}
		for j, s := range r {
			v, err := rat.Parse(s)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			h.Set(i, j, v)
		}
	}
	p.tiling = h
	return nil
}

// splitRows splits "a b c ; d e f" or "a b c / d e f" into row strings.
// Rationals like 1/8 contain '/' with no surrounding spaces, so rows are
// separated by '/' only when it stands alone (surrounded by spaces) — or
// by ';'.
func splitRows(s string) []string {
	s = strings.ReplaceAll(s, ";", " ; ")
	fields := strings.Fields(s)
	var rows []string
	var cur []string
	for _, f := range fields {
		if f == ";" || f == "/" {
			if len(cur) > 0 {
				rows = append(rows, strings.Join(cur, " "))
				cur = nil
			}
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) > 0 {
		rows = append(rows, strings.Join(cur, " "))
	}
	return rows
}

func parseIntRows(body string, lineNo int) ([][]int64, error) {
	var rows [][]int64
	for _, rowText := range splitRows(body) {
		var row []int64
		for _, f := range strings.Fields(rowText) {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad integer %q", lineNo, f)
			}
			row = append(row, v)
		}
		if len(row) > 0 {
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("line %d: empty matrix directive", lineNo)
	}
	width := len(rows[0])
	for _, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("line %d: ragged matrix directive", lineNo)
		}
	}
	return rows, nil
}

func (p *parser) parseMap(t *tokens) error {
	t.next() // 'map'
	num := t.next()
	if num.kind != tokNumber {
		return fmt.Errorf("line %d: map needs a dimension number", t.line)
	}
	v, err := strconv.ParseInt(num.text, 10, 64)
	if err != nil || v < 1 {
		return fmt.Errorf("line %d: map needs a 1-based dimension", t.line)
	}
	p.mapDim = int(v) - 1
	return nil
}

// finish assembles and validates the Program.
func (p *parser) finish() (*Program, error) {
	n := len(p.loops)
	if n == 0 {
		return nil, fmt.Errorf("frontend: no loops found")
	}
	if len(p.stmts) == 0 {
		return nil, fmt.Errorf("frontend: no assignment statement found")
	}
	for _, a := range p.arrays {
		if !p.assigned[a] {
			return nil, fmt.Errorf("frontend: array %q is read but never assigned", a)
		}
	}
	sys := poly.NewSystem(n)
	for k, l := range p.loops {
		loCoef, loConst, err := affineOf(l.lo, p.varIdx, p.params, n)
		if err != nil {
			return nil, fmt.Errorf("frontend: lower bound of %s: %v", l.name, err)
		}
		hiCoef, hiConst, err := affineOf(l.hi, p.varIdx, p.params, n)
		if err != nil {
			return nil, fmt.Errorf("frontend: upper bound of %s: %v", l.name, err)
		}
		for i := k; i < n; i++ {
			if !loCoef[i].IsZero() || !hiCoef[i].IsZero() {
				return nil, fmt.Errorf("frontend: bounds of %s may only use outer variables", l.name)
			}
		}
		// var_k ≥ loCoef·j + loConst  →  loCoef·j − var_k ≤ −loConst
		lo := loCoef.Clone()
		lo[k] = lo[k].Sub(rat.One)
		sys.Add(poly.Constraint{Coef: lo, Rhs: loConst.Neg()})
		// var_k ≤ hiCoef·j + hiConst
		hi := hiCoef.Scale(rat.FromInt(-1))
		hi[k] = hi[k].Add(rat.One)
		sys.Add(poly.Constraint{Coef: hi, Rhs: hiConst})
	}
	names := make([]string, n)
	for i, l := range p.loops {
		names[i] = l.name
	}
	var depMat *ilin.Mat
	if len(p.deps) > 0 {
		depMat = ilin.NewMat(n, len(p.deps))
		for i, d := range p.deps {
			depMat.SetCol(i, d)
		}
	}
	nest, err := loopnest.New(names, sys, depMat)
	if err != nil {
		return nil, fmt.Errorf("frontend: %v", err)
	}
	if p.skew != nil {
		if nest, err = nest.Skew(p.skew); err != nil {
			return nil, fmt.Errorf("frontend: skew: %v", err)
		}
	}
	stmts := append([]stmt(nil), p.stmts...)
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		for _, st := range stmts {
			out[st.slot] = evalExpr(st.rhs, reads)
		}
	}
	var cParts []string
	for _, st := range stmts {
		cParts = append(cParts, fmt.Sprintf("$W[%d] = %s;", st.slot, cExpr(st.rhs)))
	}
	return &Program{
		Nest:    nest,
		Arrays:  append([]string(nil), p.arrays...),
		Width:   len(p.arrays),
		Kernel:  kernel,
		KernelC: strings.Join(cParts, " "),
		Tiling:  p.tiling,
		MapDim:  p.mapDim,
		Params:  p.params,
	}, nil
}
