package bench

import (
	"fmt"
	"strings"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// PhaseComparison validates the simulator's cost model against the real
// runtime for one workload: the same tile schedule runs through
// simnet.SimulateTraced and through exec.RunParallelOpts with a Tracer
// attached, and the machine-wide compute and wait/idle fractions of the
// two timelines are compared. Fractions are scale-free, so they compare
// directly even though the measured run executes the model's costs
// costScale× slower (to land them in OS-timer range).
type PhaseComparison struct {
	App   string
	Procs int
	Tiles int64

	MeasuredCompute float64 // fraction of processor-time in the kernel sweep
	MeasuredWait    float64 // fraction blocked on receives + idle fill/drain
	SimCompute      float64
	SimWait         float64

	MeasuredMakespan time.Duration // wall time at the injected cost scale
	SimMakespan      time.Duration // model makespan × costScale

	// Trace and Metrics expose the measured run for export and reporting.
	Trace   *simnet.Trace
	Metrics []exec.RankMetrics
}

// ComputeErr and WaitErr are the absolute fraction deviations.
func (pc *PhaseComparison) ComputeErr() float64 { return abs(pc.MeasuredCompute - pc.SimCompute) }
func (pc *PhaseComparison) WaitErr() float64    { return abs(pc.MeasuredWait - pc.SimWait) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RunTraceComparison runs one workload both ways under the same cost
// model and returns the phase-fraction comparison.
func RunTraceComparison(name string, app *apps.App, h *ilin.RatMat, par simnet.Params, costScale float64, overlap bool) (*PhaseComparison, error) {
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		return nil, err
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		return nil, err
	}
	par.Width = p.Width
	par.Overlap = overlap
	sim, err := simnet.SimulateTraced(p.Dist, par)
	if err != nil {
		return nil, err
	}

	tr := exec.NewTracer()
	start := time.Now()
	_, _, err = p.RunParallelOpts(exec.RunOptions{
		Overlap:    overlap,
		Net:        par.NetOptions(costScale),
		PointDelay: time.Duration(par.IterTime * costScale * float64(time.Second)),
		Trace:      tr,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	pc := &PhaseComparison{
		App:         name,
		Procs:       p.Dist.NumProcs(),
		Tiles:       ts.NumTiles(),
		SimMakespan: time.Duration(sim.Result.Makespan * costScale * float64(time.Second)),
		Trace:       tr.Trace(),
		Metrics:     tr.PerRank(),
	}
	pc.MeasuredMakespan = elapsed
	pc.SimCompute, pc.SimWait = sim.ComputeWaitFractions()
	pc.MeasuredCompute, pc.MeasuredWait = pc.Trace.ComputeWaitFractions()
	return pc, nil
}

// PhaseTolerance is the documented agreement bound between measured and
// simulated compute/wait fractions (absolute, fraction of makespan). Two
// known model/runtime gaps dominate it: the simulator charges
// RecvOverhead+PackTime on the receiver's critical path while the
// runtime's unpack is a few bulk copies too fast to bill, and the
// runtime's injected costs ride OS timers (time.Sleep granularity) that
// stretch under scheduler noise.
const PhaseTolerance = 0.15

// TraceExperiment is the measured-vs-simulated phase-fraction table over
// the paper's three applications.
type TraceExperiment struct {
	Rows []*PhaseComparison
}

// RunTraceExperiment runs the comparison for SOR (16 ranks, the
// acceptance configuration), Jacobi and ADI under their non-rectangular
// tilings. Overlap mode is off so the wait fractions include the full
// receive stalls the paper's blocking schedule exhibits.
func RunTraceExperiment(par simnet.Params, costScale float64) (*TraceExperiment, error) {
	e := &TraceExperiment{}
	for _, w := range []struct {
		name    string
		app     func() (*apps.App, error)
		x, y, z int64
	}{
		// SOR 6×16×16 under nr(2,5,5) distributes onto exactly 16 ranks.
		{"SOR", func() (*apps.App, error) { return apps.SOR(6, 16) }, 2, 5, 5},
		{"Jacobi", func() (*apps.App, error) { return apps.Jacobi(6, 16) }, 2, 4, 4},
		{"ADI", func() (*apps.App, error) { return apps.ADI(6, 12) }, 2, 4, 4},
	} {
		app, err := w.app()
		if err != nil {
			return nil, err
		}
		pc, err := RunTraceComparison(w.name, app, app.NonRect[0].H(w.x, w.y, w.z), par, costScale, false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		e.Rows = append(e.Rows, pc)
	}
	return e, nil
}

// Agree reports whether every row is within PhaseTolerance.
func (e *TraceExperiment) Agree() bool {
	for _, pc := range e.Rows {
		if pc.ComputeErr() > PhaseTolerance || pc.WaitErr() > PhaseTolerance {
			return false
		}
	}
	return true
}

// Render formats the comparison as a report section.
func (e *TraceExperiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== measured vs simulated phase fractions (tolerance ±%.2f) ==\n", PhaseTolerance)
	fmt.Fprintf(&b, "%-8s %6s %6s %12s %12s %12s %12s %9s\n",
		"app", "procs", "tiles", "comp meas", "comp sim", "wait meas", "wait sim", "verdict")
	for _, pc := range e.Rows {
		verdict := "ok"
		if pc.ComputeErr() > PhaseTolerance || pc.WaitErr() > PhaseTolerance {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(&b, "%-8s %6d %6d %11.1f%% %11.1f%% %11.1f%% %11.1f%% %9s\n",
			pc.App, pc.Procs, pc.Tiles,
			pc.MeasuredCompute*100, pc.SimCompute*100,
			pc.MeasuredWait*100, pc.SimWait*100, verdict)
	}
	return b.String()
}
