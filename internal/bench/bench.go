// Package bench reproduces the paper's evaluation (§4): for each of the
// six figures it builds the workload, sweeps tile-size factors, runs every
// tiling family through the cluster simulator, and renders the same series
// the paper plots — maximum speedups per iteration space (Figs. 5, 7, 9)
// and speedup versus tile size (Figs. 6, 8, 10).
package bench

import (
	"fmt"
	"sort"
	"strings"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/rat"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// tilesCount is the number of tiles covering [lo, hi] with extent x.
func tilesCount(lo, hi, x int64) int64 {
	return rat.FloorDiv(hi, x) - rat.FloorDiv(lo, x) + 1
}

// factorFor finds a tile extent close to (hi-lo+1)/target whose floor-grid
// covers [lo, hi] with exactly target tiles (falling back to the nearest
// achievable count). When even is set only even extents are considered
// (the Jacobi H_nr needs an even factor for an integral P).
func factorFor(lo, hi, target int64, even bool) int64 {
	if target < 1 {
		target = 1
	}
	span := hi - lo + 1
	best, bestDiff := int64(0), int64(1<<62)
	for x := rat.CeilDiv(span, target) - 1; x <= rat.CeilDiv(span, target)+target+2; x++ {
		if x < 1 || (even && x%2 != 0) {
			continue
		}
		diff := tilesCount(lo, hi, x) - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff || (diff == bestDiff && best == 0) {
			best, bestDiff = x, diff
			if diff == 0 {
				break
			}
		}
	}
	if best == 0 {
		best = 1
	}
	return best
}

// Sweep is one experiment series: a workload, its tiling families, and the
// sweep of the varying factor.
type Sweep struct {
	Fig   string // "fig5" … "fig10"
	Space string // e.g. "M=100,N=200"
	App   *apps.App
	// Factors maps the sweep value to the (x, y, z) tile factors.
	Factors func(v int64) (x, y, z int64)
	Values  []int64
}

// Point is one measurement: a sweep value with one simulator result per
// tiling family.
type Point struct {
	Value    int64
	X, Y, Z  int64
	TileSize int64
	Results  map[string]*simnet.Result
}

// Series is a completed sweep.
type Series struct {
	Sweep    *Sweep
	Families []string
	Points   []Point
}

// Run executes the sweep under the given cluster model.
func (s *Sweep) Run(par simnet.Params) (*Series, error) {
	par.Width = s.App.Width
	families := append([]apps.TilingFamily{s.App.Rect}, s.App.NonRect...)
	out := &Series{Sweep: s}
	for _, f := range families {
		out.Families = append(out.Families, f.Name)
	}
	for _, v := range s.Values {
		x, y, z := s.Factors(v)
		pt := Point{Value: v, X: x, Y: y, Z: z, Results: map[string]*simnet.Result{}}
		for _, f := range families {
			ts, err := tiling.Analyze(s.App.Nest, f.H(x, y, z))
			if err != nil {
				return nil, fmt.Errorf("%s %s %s (x=%d,y=%d,z=%d): %w", s.Fig, s.Space, f.Name, x, y, z, err)
			}
			if pt.TileSize == 0 {
				pt.TileSize = ts.T.TileSize
			} else if pt.TileSize != ts.T.TileSize {
				return nil, fmt.Errorf("%s: tile sizes differ between families (%d vs %d)", s.Fig, pt.TileSize, ts.T.TileSize)
			}
			d, err := distrib.New(ts, s.App.MapDim)
			if err != nil {
				return nil, err
			}
			res, err := simnet.Simulate(d, par)
			if err != nil {
				return nil, err
			}
			pt.Results[f.Name] = res
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// MaxSpeedups returns each family's best speedup over the sweep (the
// quantity Figures 5, 7 and 9 plot per iteration space).
func (s *Series) MaxSpeedups() map[string]float64 {
	best := map[string]float64{}
	for _, pt := range s.Points {
		for fam, res := range pt.Results {
			if res.Speedup > best[fam] {
				best[fam] = res.Speedup
			}
		}
	}
	return best
}

// ImprovementPercent returns the mean percentage speedup improvement of
// the named family over the rectangular baseline across the sweep — the
// paper's §4.4 headline statistic (SOR 17.3%, Jacobi 9.1%, ADI 10.1%).
func (s *Series) ImprovementPercent(family string) float64 {
	var sum float64
	var n int
	for _, pt := range s.Points {
		r, okR := pt.Results["rect"]
		f, okF := pt.Results[family]
		if !okR || !okF || r.Speedup == 0 {
			continue
		}
		sum += (f.Speedup - r.Speedup) / r.Speedup * 100
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table renders the series as an aligned text table (one row per sweep
// value, one speedup column per family).
func (s *Series) Table() string {
	var b strings.Builder
	fams := append([]string(nil), s.Families...)
	fmt.Fprintf(&b, "%s  %s (%s)\n", s.Sweep.Fig, s.Sweep.App.Name, s.Sweep.Space)
	fmt.Fprintf(&b, "%8s %8s %14s %6s %6s", "sweep", "tile", "factors", "procs", "steps")
	for _, f := range fams {
		fmt.Fprintf(&b, " %10s", "S("+f+")")
	}
	b.WriteByte('\n')
	for _, pt := range s.Points {
		any := pt.Results[fams[0]]
		fmt.Fprintf(&b, "%8d %8d %14s %6d %6d", pt.Value, pt.TileSize,
			fmt.Sprintf("%d/%d/%d", pt.X, pt.Y, pt.Z), any.Procs, any.Steps)
		for _, f := range fams {
			fmt.Fprintf(&b, " %10.2f", pt.Results[f].Speedup)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortedFamilies is a helper for deterministic map iteration in reports.
func sortedFamilies(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
