package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"tilespace/internal/serve"
)

// ServeExperiment measures the tiling service under concurrent mixed
// load, cold against warm: the same client fleet replays the same
// request schedule against a cache-disabled server (every request runs
// the full compile pipeline) and against a cache-enabled one. The
// speedup is the plan cache's end-to-end value: how much throughput the
// single-flight LRU buys once the working set is resident. Checksums of
// every executed run are tracked per spec across both phases — the
// experiment is void if caching ever changes a computed value.
type ServeExperiment struct {
	Specs    int `json:"specs"`
	Clients  int `json:"clients"`
	Requests int `json:"requests_per_client"`

	Cold ServePhase `json:"cold"`
	Warm ServePhase `json:"warm"`

	// Speedup is warm throughput over cold throughput on the identical
	// schedule.
	Speedup float64 `json:"speedup"`
	// ChecksumsStable is true iff every run of one spec — cold, warm,
	// cache hit or recompile — produced the identical result digest.
	ChecksumsStable bool `json:"checksums_stable"`
}

// ServePhase is one load phase's measurement.
type ServePhase struct {
	Requests     int     `json:"requests"`
	Runs         int     `json:"runs"`
	Errors       int     `json:"errors"`
	Seconds      float64 `json:"seconds"`
	Throughput   float64 `json:"requests_per_sec"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Compiles     int64   `json:"compiles"`
}

// serveSpecs builds n distinct 2D heat specs: structure identical, cache
// keys distinct (sizes, tile factors and the constant term vary).
func serveSpecs(n int) []string {
	tiles := []string{"1/3 0 / 0 1/4", "1/3 0 / 0 1/6", "1/2 0 / 0 1/4"}
	specs := make([]string, n)
	for i := range specs {
		specs[i] = fmt.Sprintf(`
let M = 8
let N = %d
for t = 1 .. M
for i = 1 .. N
A[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + %d
tile %s
`, 24+8*(i%5), 1+i, tiles[i%len(tiles)])
	}
	return specs
}

// RunServeExperiment drives clients concurrent clients, each issuing
// perClient requests over a mixed schedule (certify-heavy with a run
// every eighth request), against a cold and a warm server.
func RunServeExperiment(clients, perClient int) (*ServeExperiment, error) {
	specs := serveSpecs(8)
	exp := &ServeExperiment{Specs: len(specs), Clients: clients, Requests: perClient}

	sums := map[string]map[string]bool{} // spec -> set of observed checksums
	var sumsMu sync.Mutex
	note := func(spec, sum string) {
		sumsMu.Lock()
		defer sumsMu.Unlock()
		if sums[spec] == nil {
			sums[spec] = map[string]bool{}
		}
		sums[spec][sum] = true
	}

	run := func(cfg serve.Config) (ServePhase, error) {
		srv := serve.New(cfg)
		ts := httptest.NewServer(srv)
		defer ts.Close()
		client := ts.Client()
		client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients

		// Warm phase only: prime the cache so the measurement sees the
		// steady state, not the first-touch misses.
		if cfg.CacheCapacity > 0 {
			for _, spec := range specs {
				if err := postCertify(client, ts.URL, spec); err != nil {
					return ServePhase{}, fmt.Errorf("prime: %w", err)
				}
			}
		}

		var (
			mu        sync.Mutex
			latencies []time.Duration
			phase     ServePhase
			firstErr  error
		)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					spec := specs[(c*perClient+i)%len(specs)]
					t0 := time.Now()
					var sum string
					var err error
					isRun := i%8 == 7
					switch {
					case isRun:
						sum, err = postRun(client, ts.URL, spec)
					case i%3 == 0:
						err = postAnalyze(client, ts.URL, spec)
					default:
						err = postCertify(client, ts.URL, spec)
					}
					d := time.Since(t0)
					mu.Lock()
					latencies = append(latencies, d)
					phase.Requests++
					if isRun {
						phase.Runs++
					}
					if err != nil {
						phase.Errors++
						if firstErr == nil {
							firstErr = err
						}
					}
					mu.Unlock()
					if err == nil && sum != "" {
						note(spec, sum)
					}
				}
			}(c)
		}
		wg.Wait()
		phase.Seconds = time.Since(start).Seconds()
		if firstErr != nil {
			return phase, firstErr
		}
		phase.Throughput = float64(phase.Requests) / phase.Seconds
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		phase.P50MS = latencies[len(latencies)/2].Seconds() * 1e3
		phase.P99MS = latencies[len(latencies)*99/100].Seconds() * 1e3

		var m serve.MetricsSnapshot
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			return phase, err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return phase, err
		}
		phase.CacheHitRate = m.Cache.HitRate
		phase.Compiles = m.Cache.Compiles
		return phase, nil
	}

	var err error
	if exp.Cold, err = run(serve.Config{}.Uncached()); err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}
	if exp.Warm, err = run(serve.Config{CacheCapacity: 256}); err != nil {
		return nil, fmt.Errorf("warm phase: %w", err)
	}
	exp.Speedup = exp.Warm.Throughput / exp.Cold.Throughput

	exp.ChecksumsStable = true
	for _, set := range sums {
		if len(set) != 1 {
			exp.ChecksumsStable = false
		}
	}
	return exp, nil
}

type serveResultBody struct {
	Checksum string `json:"checksum"`
	Error    string `json:"error"`
}

func postServe(client *http.Client, url, path string, body any) (serveResultBody, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return serveResultBody{}, err
	}
	resp, err := client.Post(url+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return serveResultBody{}, err
	}
	defer resp.Body.Close()
	var out serveResultBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return serveResultBody{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, out.Error)
	}
	return out, nil
}

func postAnalyze(client *http.Client, url, spec string) error {
	_, err := postServe(client, url, "/v1/analyze", map[string]string{"source": spec})
	return err
}

func postCertify(client *http.Client, url, spec string) error {
	_, err := postServe(client, url, "/v1/certify", map[string]string{"source": spec})
	return err
}

func postRun(client *http.Client, url, spec string) (string, error) {
	out, err := postServe(client, url, "/v1/run", map[string]any{"source": spec})
	return out.Checksum, err
}

// Render writes the experiment as text.
func (e *ServeExperiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== serve: cold compile vs shared plan cache (%d specs, %d clients x %d reqs) ==\n",
		e.Specs, e.Clients, e.Requests)
	row := func(name string, p ServePhase) {
		fmt.Fprintf(&b, "%6s  %6.1f req/s  p50 %6.2fms  p99 %7.2fms  hit %4.0f%%  compiles %4d  errors %d\n",
			name, p.Throughput, p.P50MS, p.P99MS, p.CacheHitRate*100, p.Compiles, p.Errors)
	}
	row("cold", e.Cold)
	row("warm", e.Warm)
	fmt.Fprintf(&b, "warm/cold speedup: %.1fx   checksums stable: %v\n", e.Speedup, e.ChecksumsStable)
	return b.String()
}

// JSON renders the committed snapshot (BENCH_serve.json).
func (e *ServeExperiment) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}
