package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
	"tilespace/internal/verify"
)

// The static-vs-dynamic fault ablation: the hybrid static/dynamic
// scheduler (exec.RunOptions.Dynamic) claims to recover slack exactly
// where the PR 5 fault classes create it — stragglers, jittery links,
// transient send failures, crash-restart — while staying bit-identical to
// the static path everywhere. This experiment measures all three modes
// (static blocking, the paper's default executor; static overlap; dynamic)
// under each fault class, certifies every dynamic firing order via
// verify.CheckDynamicOrder, and pins the result in BENCH_dyn.json behind
// clusterbench -dynbench.

// DynAblationRow is one fault scenario's three-way makespan comparison.
type DynAblationRow struct {
	Scenario string `json:"scenario"`
	Procs    int    `json:"procs"`

	StaticBlocking time.Duration `json:"static_blocking_ns"`
	StaticOverlap  time.Duration `json:"static_overlap_ns"`
	Dynamic        time.Duration `json:"dynamic_ns"`

	// GainVsBlocking is StaticBlocking / Dynamic — the headline ratio: how
	// much makespan the dynamic scheduler recovers from the paper's
	// default (blocking) executor under this fault. GainVsOverlap isolates
	// the part not explained by asynchronous sends alone.
	GainVsBlocking float64 `json:"gain_vs_blocking"`
	GainVsOverlap  float64 `json:"gain_vs_overlap"`
	// PredictedGain is simnet's blocking-vs-dynamic makespan ratio under
	// the same fault plan (the Params.Dynamic cost-model arm).
	PredictedGain float64 `json:"predicted_gain"`

	StaticChecksum  string `json:"static_checksum"`
	DynamicChecksum string `json:"dynamic_checksum"`
	// BitIdentical: all four runs of the scenario — fault-free static,
	// faulty blocking, faulty overlap, faulty dynamic — hash identically.
	BitIdentical bool `json:"bit_identical"`
	// CertEdges is the number of dependence edges CheckDynamicOrder proved
	// ordered in the faulty dynamic run's firing log.
	CertEdges int64 `json:"cert_edges"`
}

// DynCertRow is one workload × tiling family certification entry: a
// fault-free dynamic run whose firing order certified and whose checksum
// matches the static run.
type DynCertRow struct {
	Workload     string `json:"workload"`
	Procs        int    `json:"procs"`
	Tiles        int64  `json:"tiles"`
	CertEdges    int64  `json:"cert_edges"`
	BitIdentical bool   `json:"bit_identical"`
}

// DynExperiment is the committed BENCH_dyn.json shape.
type DynExperiment struct {
	Workload string `json:"workload"`
	// MaxFaultGain is the best GainVsBlocking over the straggler and
	// jittery-link scenarios — the acceptance gate's ≥ 1.1× subject.
	MaxFaultGain float64           `json:"max_fault_gain"`
	Rows         []*DynAblationRow `json:"rows"`
	Certs        []*DynCertRow     `json:"certs"`
	Ok           bool              `json:"ok"`
}

// AblationScenarios returns the four PR 5 fault classes the ablation
// sweeps. Straggler, jittery-link and crash-restart reuse the degradation
// report's plans (DefaultFaultScenarios); transient-send injects seeded
// send failures whose retry backoff stalls a blocking sender's CPU but a
// dynamic sender's NIC.
func AblationScenarios() []FaultScenario {
	def := DefaultFaultScenarios()
	return []FaultScenario{
		def[0], // straggler
		{Name: "jittery-link", Plan: def[1].Plan},
		{
			Name: "transient-send",
			Plan: func(d *distrib.Distribution, par simnet.Params, costScale float64) *mpi.FaultPlan {
				return &mpi.FaultPlan{Seed: 1, Sends: &mpi.SendFaults{
					Rate:       0.3,
					MaxRetries: 3,
					Backoff:    time.Duration(2 * par.Latency * costScale * float64(time.Second)),
				}}
			},
		},
		def[2], // crash-restart
	}
}

// globalChecksum hashes a run's global array bit for bit (the serve
// layer's Artifact.Checksum scheme), so "bit-identical" is one string
// compare in the committed report.
func globalChecksum(p *exec.Program, g *exec.Global) string {
	h := ilin.HashSeed()
	p.ScanSpace(func(j ilin.Vec) bool {
		for _, v := range g.At(j) {
			h = ilin.HashInt64(h, int64(math.Float64bits(v)))
		}
		return true
	})
	return fmt.Sprintf("%016x", h)
}

// runDynAblation measures one scenario in all three modes.
func runDynAblation(p *exec.Program, par simnet.Params, costScale float64, sc FaultScenario) (*DynAblationRow, error) {
	plan := sc.Plan(p.Dist, par, costScale)

	measure := func(fp *mpi.FaultPlan, overlap, dynamic bool, log *exec.FiringLog) (float64, string, error) {
		tr := exec.NewTracer()
		opt := exec.RunOptions{
			Overlap:    overlap,
			Dynamic:    dynamic,
			Firing:     log,
			Net:        par.NetOptions(costScale),
			PointDelay: time.Duration(par.IterTime * costScale * float64(time.Second)),
			Trace:      tr,
			Faults:     fp,
		}
		if fp != nil && sc.CheckpointEvery > 0 {
			opt.Checkpoint = &exec.CheckpointOptions{Every: sc.CheckpointEvery}
		}
		g, _, err := p.RunParallelOpts(opt)
		if err != nil {
			return 0, "", err
		}
		return tr.Trace().Result.Makespan, globalChecksum(p, g), nil
	}

	_, baseSum, err := measure(nil, false, false, nil)
	if err != nil {
		return nil, fmt.Errorf("%s fault-free: %w", sc.Name, err)
	}
	blockMk, blockSum, err := measure(plan, false, false, nil)
	if err != nil {
		return nil, fmt.Errorf("%s static blocking: %w", sc.Name, err)
	}
	overMk, overSum, err := measure(plan, true, false, nil)
	if err != nil {
		return nil, fmt.Errorf("%s static overlap: %w", sc.Name, err)
	}
	log := &exec.FiringLog{}
	dynMk, dynSum, err := measure(plan, false, true, log)
	if err != nil {
		return nil, fmt.Errorf("%s dynamic: %w", sc.Name, err)
	}
	if dynMk <= 0 {
		return nil, fmt.Errorf("%s: degenerate dynamic makespan", sc.Name)
	}
	edges, err := verify.CheckDynamicOrder(p.TS, p.Dist, log.Records())
	if err != nil {
		return nil, fmt.Errorf("%s: dynamic firing order not certified: %w", sc.Name, err)
	}

	// Model prediction: the same fault plan through simnet's blocking and
	// dynamic cost-model arms.
	parBlock := par
	parBlock.Overlap, parBlock.Dynamic = false, false
	parDyn := par
	parDyn.Overlap, parDyn.Dynamic = false, true
	fm := simnet.FaultModel{Plan: plan, CheckpointEvery: sc.CheckpointEvery, DurScale: costScale}
	simBlock, err := simnet.SimulateFaults(p.Dist, parBlock, fm)
	if err != nil {
		return nil, err
	}
	simDyn, err := simnet.SimulateFaults(p.Dist, parDyn, fm)
	if err != nil {
		return nil, err
	}
	predicted := 0.0
	if simDyn.Makespan > 0 {
		predicted = simBlock.Makespan / simDyn.Makespan
	}

	return &DynAblationRow{
		Scenario:        sc.Name,
		Procs:           p.Dist.NumProcs(),
		StaticBlocking:  time.Duration(blockMk * float64(time.Second)),
		StaticOverlap:   time.Duration(overMk * float64(time.Second)),
		Dynamic:         time.Duration(dynMk * float64(time.Second)),
		GainVsBlocking:  blockMk / dynMk,
		GainVsOverlap:   overMk / dynMk,
		PredictedGain:   predicted,
		StaticChecksum:  blockSum,
		DynamicChecksum: dynSum,
		BitIdentical:    baseSum == blockSum && blockSum == overSum && overSum == dynSum,
		CertEdges:       edges,
	}, nil
}

// runDynCertMatrix runs every shipped workload × tiling family (the
// differential suite's geometry) in dynamic mode, certifying each firing
// order and checking bit-identity against the static run.
func runDynCertMatrix() ([]*DynCertRow, error) {
	var rows []*DynCertRow
	add := func(name string, app *apps.App, err error, fam apps.TilingFamily, x, y, z int64) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ts, err := tiling.Analyze(app.Nest, fam.H(x, y, z))
		if err != nil {
			return nil // family rejects these factors; the suite skips it too
		}
		p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
		if err != nil {
			return nil
		}
		gS, _, err := p.RunParallelOpts(exec.RunOptions{Overlap: true})
		if err != nil {
			return fmt.Errorf("%s static: %w", name, err)
		}
		log := &exec.FiringLog{}
		gD, _, err := p.RunParallelOpts(exec.RunOptions{Dynamic: true, Firing: log})
		if err != nil {
			return fmt.Errorf("%s dynamic: %w", name, err)
		}
		edges, err := verify.CheckDynamicOrder(p.TS, p.Dist, log.Records())
		if err != nil {
			return fmt.Errorf("%s: firing order not certified: %w", name, err)
		}
		var tiles int64
		for _, n := range p.Dist.ChainLen {
			tiles += n
		}
		rows = append(rows, &DynCertRow{
			Workload:     name,
			Procs:        p.Dist.NumProcs(),
			Tiles:        tiles,
			CertEdges:    edges,
			BitIdentical: globalChecksum(p, gS) == globalChecksum(p, gD),
		})
		return nil
	}
	sor, err := apps.SOR(4, 10)
	if err := add("sor/rect", sor, err, sor.Rect, 2, 4, 4); err != nil {
		return nil, err
	}
	if err := add("sor/nonrect", sor, err, sor.NonRect[0], 2, 4, 4); err != nil {
		return nil, err
	}
	jac, err := apps.Jacobi(8, 12)
	if err := add("jacobi/rect", jac, err, jac.Rect, 2, 3, 3); err != nil {
		return nil, err
	}
	if err := add("jacobi/nonrect", jac, err, jac.NonRect[0], 2, 4, 4); err != nil {
		return nil, err
	}
	adi, err := apps.ADI(8, 10)
	if err := add("adi/rect", adi, err, adi.Rect, 2, 3, 3); err != nil {
		return nil, err
	}
	for i, fam := range adi.NonRect {
		if err := add(fmt.Sprintf("adi/nonrect%d", i), adi, nil, fam, 2, 3, 3); err != nil {
			return nil, err
		}
	}
	heat, err := apps.Heat3D(6, 8)
	if err := add("heat3d/rect", heat, err, heat.Rect, 2, 2, 2); err != nil {
		return nil, err
	}
	if len(rows) < 6 {
		return nil, fmt.Errorf("only %d certification rows built — factor choices too restrictive", len(rows))
	}
	return rows, nil
}

// RunDynExperiment runs the full ablation on a chain-deep SOR
// configuration plus the certification matrix over every shipped
// workload. Unlike the degradation report's 16-rank/4-tile-chain
// acceptance configuration — whose makespan is dominated by pipeline
// fill, identical under every schedule — this one (15 ranks, 21-tile
// chains) spends most of its makespan in pipeline steady state, where
// the blocking executor's rate is compute + send and the dynamic
// scheduler's is max(compute, wire): the regime the scheduling ablation
// is about.
func RunDynExperiment(par simnet.Params, costScale float64) (*DynExperiment, error) {
	app, err := apps.SOR(4, 40)
	if err != nil {
		return nil, err
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 10, 2))
	if err != nil {
		return nil, err
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		return nil, err
	}
	par.Width = p.Width
	e := &DynExperiment{Workload: "sor 4x40x40 nr(2,10,2)"}
	for _, sc := range AblationScenarios() {
		row, err := runDynAblation(p, par, costScale, sc)
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, row)
		if (sc.Name == "straggler" || sc.Name == "jittery-link") && row.GainVsBlocking > e.MaxFaultGain {
			e.MaxFaultGain = row.GainVsBlocking
		}
	}
	if e.Certs, err = runDynCertMatrix(); err != nil {
		return nil, err
	}
	e.Ok = e.Gate() == nil
	return e, nil
}

// dynNoiseFloor is the "dynamic ≥ static" allowance: a degradation ratio
// divides two measured makespans, so timer noise can push a genuinely
// equal pair a few percent either way.
const dynNoiseFloor = 0.95

// Gate enforces the acceptance criteria: bit-identical results and a
// certified firing order everywhere, dynamic no slower than static under
// any fault, and ≥ 1.1× recovered from at least one of the straggler /
// jittery-link scenarios.
func (e *DynExperiment) Gate() error {
	for _, r := range e.Rows {
		if !r.BitIdentical {
			return fmt.Errorf("%s: dynamic result not bit-identical (static %s, dynamic %s)", r.Scenario, r.StaticChecksum, r.DynamicChecksum)
		}
		if r.CertEdges <= 0 {
			return fmt.Errorf("%s: firing-order certificate proved zero dependence edges", r.Scenario)
		}
		if r.GainVsBlocking < dynNoiseFloor {
			return fmt.Errorf("%s: dynamic slower than static blocking (%.2fx, floor %.2f)", r.Scenario, r.GainVsBlocking, dynNoiseFloor)
		}
	}
	if e.MaxFaultGain < 1.1 {
		return fmt.Errorf("best straggler/jittery-link gain %.2fx, want >= 1.1x", e.MaxFaultGain)
	}
	for _, c := range e.Certs {
		if !c.BitIdentical {
			return fmt.Errorf("cert %s: dynamic result not bit-identical to static", c.Workload)
		}
		if c.Procs > 1 && c.CertEdges <= 0 {
			return fmt.Errorf("cert %s: zero dependence edges certified on a %d-rank program", c.Workload, c.Procs)
		}
	}
	return nil
}

// JSON renders the committed benchmark snapshot.
func (e *DynExperiment) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// Render formats the ablation and certification tables.
func (e *DynExperiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== static vs dynamic scheduling under faults (%s) ==\n", e.Workload)
	fmt.Fprintf(&b, "%-15s %6s %12s %12s %12s %9s %9s %8s %6s %9s\n",
		"scenario", "procs", "static-blk", "static-ovl", "dynamic", "gain/blk", "gain/ovl", "pred", "edges", "identical")
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "%-15s %6d %12s %12s %12s %8.2fx %8.2fx %7.2fx %6d %9v\n",
			r.Scenario, r.Procs,
			r.StaticBlocking.Round(100*time.Microsecond),
			r.StaticOverlap.Round(100*time.Microsecond),
			r.Dynamic.Round(100*time.Microsecond),
			r.GainVsBlocking, r.GainVsOverlap, r.PredictedGain, r.CertEdges, r.BitIdentical)
	}
	fmt.Fprintf(&b, "best straggler/jittery-link gain: %.2fx (gate >= 1.10x)\n\n", e.MaxFaultGain)
	fmt.Fprintf(&b, "== dynamic firing-order certification (workload x tiling family) ==\n")
	fmt.Fprintf(&b, "%-16s %6s %6s %6s %9s\n", "workload", "procs", "tiles", "edges", "identical")
	for _, c := range e.Certs {
		fmt.Fprintf(&b, "%-16s %6d %6d %6d %9v\n", c.Workload, c.Procs, c.Tiles, c.CertEdges, c.BitIdentical)
	}
	return b.String()
}
