package bench

import (
	"encoding/json"
	"math"
	"testing"
)

// fitAlphaBeta must recover an exactly linear cost model.
func TestFitAlphaBetaExact(t *testing.T) {
	const alpha, beta = 3e-5, 7e-7
	var pts []WirePoint
	for _, n := range WireSizes {
		pts = append(pts, WirePoint{Values: n, Seconds: alpha + beta*float64(n)})
	}
	a, b := fitAlphaBeta(pts)
	if math.Abs(a-alpha) > 1e-12 || math.Abs(b-beta) > 1e-15 {
		t.Fatalf("fit (%g, %g), want (%g, %g)", a, b, alpha, beta)
	}
}

func TestRunWirePerf(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 8
	}
	perf, err := RunWirePerf(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Rows) != 2 || perf.Rows[0].Transport != "channel" || perf.Rows[1].Transport != "tcp" {
		t.Fatalf("rows %+v, want channel then tcp", perf.Rows)
	}
	if perf.ModelAlpha <= 0 || perf.ModelBeta <= 0 {
		t.Fatalf("model costs (%g, %g) not positive", perf.ModelAlpha, perf.ModelBeta)
	}
	for _, r := range perf.Rows {
		if len(r.Points) != len(WireSizes) {
			t.Fatalf("%s swept %d sizes, want %d", r.Transport, len(r.Points), len(WireSizes))
		}
		for _, pt := range r.Points {
			if pt.Seconds <= 0 {
				t.Errorf("%s n=%d measured %g s", r.Transport, pt.Values, pt.Seconds)
			}
		}
	}
	tcp := perf.Rows[1]
	// Every payload crossed a real socket: 2 ranks x (rounds+1) round
	// trips x len(WireSizes), two data frames per round trip.
	minFrames := int64(2 * (rounds + 1) * len(WireSizes))
	if tcp.Wire.FramesSent < minFrames {
		t.Errorf("tcp sweep sent %d frames, want >= %d", tcp.Wire.FramesSent, minFrames)
	}
	if tcp.Wire.Batches <= 0 || tcp.Wire.Batches > tcp.Wire.FramesSent {
		t.Errorf("tcp batches %d outside (0, %d]", tcp.Wire.Batches, tcp.Wire.FramesSent)
	}

	js, err := perf.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back WirePerf
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.Rows[1].Wire.FramesSent != tcp.Wire.FramesSent {
		t.Fatalf("wire counters lost in JSON round trip")
	}
	if perf.Render() == "" {
		t.Fatal("empty render")
	}
}
