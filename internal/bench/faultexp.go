package bench

import (
	"fmt"
	"strings"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// FaultComparison validates the simulator's fault model against the real
// runtime for one failure scenario: the same mpi.FaultPlan drives
// simnet.SimulateFaults and exec.RunParallelOpts, and the degradation
// ratios (faulty makespan over fault-free makespan) of the two are
// compared. Ratios are scale-free, so the comparison survives the
// costScale× slowdown the measured run needs to land model costs in
// OS-timer range — exactly the trick RunTraceComparison uses for phase
// fractions.
type FaultComparison struct {
	Scenario string
	Procs    int

	MeasuredBaseline time.Duration // fault-free measured makespan
	MeasuredFaulty   time.Duration

	MeasuredDegradation  float64 // MeasuredFaulty / MeasuredBaseline
	PredictedDegradation float64 // simulated faulty / fault-free makespan

	// Trace and Metrics expose the measured faulty run — including its
	// crash/restart markers — for export and reporting.
	Trace   *simnet.Trace
	Metrics []exec.RankMetrics
}

// DegradationErr is the relative deviation of the measured degradation
// ratio from the predicted one.
func (fc *FaultComparison) DegradationErr() float64 {
	return abs(fc.MeasuredDegradation-fc.PredictedDegradation) / fc.PredictedDegradation
}

// FaultTolerance is the documented agreement bound on DegradationErr.
// It is looser than PhaseTolerance because a degradation ratio divides
// two measured makespans, compounding the timer noise of both, and
// because the model books recovery re-execution at nominal cost while
// the runtime's replayed tiles skip real wire waits.
const FaultTolerance = 0.30

// FaultScenario is one injected failure mode of the chaos matrix. Plan
// builds the fault schedule once the distribution's geometry (ranks,
// chain lengths, neighbor links) is known; the same plan object then
// drives both the simulator and the runtime.
type FaultScenario struct {
	Name string
	// CheckpointEvery enables tile-chain checkpointing in the measured run
	// (and bounds the simulated crash rewind); 0 leaves it off.
	CheckpointEvery int64
	Plan            func(d *distrib.Distribution, par simnet.Params, costScale float64) *mpi.FaultPlan
}

// DefaultFaultScenarios returns the degradation scenarios of the report:
// a slow rank, a slow link and a crash with checkpointed restart. The
// injected magnitudes are tied to the cost model (latency multiples,
// makespan-scale restart delay) so the degradation is well above timer
// noise at any costScale.
func DefaultFaultScenarios() []FaultScenario {
	return []FaultScenario{
		{
			Name: "straggler",
			Plan: func(d *distrib.Distribution, par simnet.Params, costScale float64) *mpi.FaultPlan {
				return &mpi.FaultPlan{Slowdown: map[int]float64{d.NumProcs() / 2: 3}}
			},
		},
		{
			Name: "slow-link",
			Plan: func(d *distrib.Distribution, par simnet.Params, costScale float64) *mpi.FaultPlan {
				// Every outgoing link of a mid-grid rank pays a few extra
				// latencies per message; the victim's sends sit on the
				// blocking critical path, so the stall is visible machine-wide.
				victim := d.NumProcs() / 2
				delay := time.Duration(3 * par.Latency * costScale * float64(time.Second))
				links := map[mpi.Link]mpi.LinkFault{}
				for _, dm := range d.DM {
					if dst, ok := d.Rank(d.Pids[victim].Add(dm)); ok {
						links[mpi.Link{Src: victim, Dst: dst}] = mpi.LinkFault{Delay: delay, Jitter: delay / 2}
					}
				}
				return &mpi.FaultPlan{Seed: 1, Links: links}
			},
		},
		{
			Name:            "crash-restart",
			CheckpointEvery: 2,
			Plan: func(d *distrib.Distribution, par simnet.Params, costScale float64) *mpi.FaultPlan {
				victim := d.NumProcs() / 2
				return &mpi.FaultPlan{
					Crash: map[int]int64{victim: d.ChainLen[victim] / 2},
					// A restart outage on the order of the fault-free makespan:
					// large against timer noise, small enough to finish fast.
					RestartDelay: time.Duration(2e-3 * costScale * float64(time.Second)),
				}
			},
		},
	}
}

// RunFaultComparison runs one workload fault-free and under the scenario,
// both simulated and measured, and returns the degradation comparison.
func RunFaultComparison(app *apps.App, h *ilin.RatMat, par simnet.Params, costScale float64, sc FaultScenario) (*FaultComparison, error) {
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		return nil, err
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		return nil, err
	}
	par.Width = p.Width
	// Blocking mode: injected link delays and retry backoffs stall the
	// sender's CPU in both layers, and a crash can drop no in-flight
	// messages — the regime where the model is tightest.
	par.Overlap = false
	plan := sc.Plan(p.Dist, par, costScale)

	simBase, err := simnet.Simulate(p.Dist, par)
	if err != nil {
		return nil, err
	}
	simFault, err := simnet.SimulateFaults(p.Dist, par, simnet.FaultModel{
		Plan: plan, CheckpointEvery: sc.CheckpointEvery, DurScale: costScale,
	})
	if err != nil {
		return nil, err
	}

	measure := func(fp *mpi.FaultPlan) (float64, *exec.Tracer, error) {
		tr := exec.NewTracer()
		opt := exec.RunOptions{
			Net:        par.NetOptions(costScale),
			PointDelay: time.Duration(par.IterTime * costScale * float64(time.Second)),
			Trace:      tr,
			Faults:     fp,
		}
		if fp != nil && sc.CheckpointEvery > 0 {
			opt.Checkpoint = &exec.CheckpointOptions{Every: sc.CheckpointEvery}
		}
		if _, _, err := p.RunParallelOpts(opt); err != nil {
			return 0, nil, err
		}
		return tr.Trace().Result.Makespan, tr, nil
	}
	baseMk, _, err := measure(nil)
	if err != nil {
		return nil, fmt.Errorf("%s fault-free: %w", sc.Name, err)
	}
	faultMk, ftr, err := measure(plan)
	if err != nil {
		return nil, fmt.Errorf("%s faulty: %w", sc.Name, err)
	}
	if baseMk <= 0 || simBase.Makespan <= 0 {
		return nil, fmt.Errorf("%s: degenerate baseline makespan", sc.Name)
	}

	return &FaultComparison{
		Scenario:             sc.Name,
		Procs:                p.Dist.NumProcs(),
		MeasuredBaseline:     time.Duration(baseMk * float64(time.Second)),
		MeasuredFaulty:       time.Duration(faultMk * float64(time.Second)),
		MeasuredDegradation:  faultMk / baseMk,
		PredictedDegradation: simFault.Makespan / simBase.Makespan,
		Trace:                ftr.Trace(),
		Metrics:              ftr.PerRank(),
	}, nil
}

// FaultExperiment is the measured-vs-predicted degradation table over the
// default scenarios on the 16-rank SOR acceptance configuration.
type FaultExperiment struct {
	Rows []*FaultComparison
}

// RunFaultExperiment runs every default scenario on SOR 6×16×16 under the
// nr(2,5,5) tiling (16 ranks, the acceptance configuration shared with
// RunTraceExperiment).
func RunFaultExperiment(par simnet.Params, costScale float64) (*FaultExperiment, error) {
	app, err := apps.SOR(6, 16)
	if err != nil {
		return nil, err
	}
	e := &FaultExperiment{}
	for _, sc := range DefaultFaultScenarios() {
		fc, err := RunFaultComparison(app, app.NonRect[0].H(2, 5, 5), par, costScale, sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		e.Rows = append(e.Rows, fc)
	}
	return e, nil
}

// Agree reports whether every scenario's degradation is within FaultTolerance.
func (e *FaultExperiment) Agree() bool {
	for _, fc := range e.Rows {
		if fc.DegradationErr() > FaultTolerance {
			return false
		}
	}
	return true
}

// Render formats the degradation comparison as a report section.
func (e *FaultExperiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fault degradation: measured vs simnet-predicted (tolerance ±%.0f%% rel) ==\n", FaultTolerance*100)
	fmt.Fprintf(&b, "%-14s %6s %12s %12s %10s %10s %9s\n",
		"scenario", "procs", "base meas", "fault meas", "deg meas", "deg sim", "verdict")
	for _, fc := range e.Rows {
		verdict := "ok"
		if fc.DegradationErr() > FaultTolerance {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(&b, "%-14s %6d %12s %12s %9.2fx %9.2fx %9s\n",
			fc.Scenario, fc.Procs,
			fc.MeasuredBaseline.Round(100*time.Microsecond),
			fc.MeasuredFaulty.Round(100*time.Microsecond),
			fc.MeasuredDegradation, fc.PredictedDegradation, verdict)
	}
	return b.String()
}
