package bench

import (
	"fmt"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/schedule"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

func TestProbeFactorFor(t *testing.T) {
	// SOR paper scale: x targets 2 tiles over [1,m], y targets 8 over [2,m+n]
	for _, mn := range [][2]int64{{100, 200}, {200, 200}, {100, 400}, {200, 400}} {
		m, n := mn[0], mn[1]
		x := factorFor(1, m, 2, false)
		y := factorFor(2, m+n, 8, false)
		fmt.Printf("SOR m=%d n=%d: x=%d (tiles %d), y=%d (tiles %d)\n",
			m, n, x, tilesCount(1, m, x), y, tilesCount(2, m+n, y))
	}
}

func TestProbeOverlap(t *testing.T) {
	app, err := apps.SOR(40, 60)
	if err != nil { t.Fatal(err) }
	par := simnet.FastEthernetPIII()
	par.Width = app.Width
	fams := append([]apps.TilingFamily{app.Rect}, app.NonRect...)
	for _, f := range fams {
		for _, z := range []int64{5, 10, 20} {
			ts, err := tiling.Analyze(app.Nest, f.H(factorFor(1, 40, 2, false), factorFor(2, 100, 8, false), z))
			if err != nil { t.Fatal(err) }
			d, err := distrib.New(ts, app.MapDim)
			if err != nil { t.Fatal(err) }
			r1, err := simnet.Simulate(d, par)
			if err != nil { t.Fatal(err) }
			p2 := par
			p2.Overlap = true
			r2, err := simnet.Simulate(d, p2)
			if err != nil { t.Fatal(err) }
			flag := ""
			if r2.Makespan > r1.Makespan+1e-12 { flag = "  <-- OVERLAP SLOWER" }
			fmt.Printf("%s z=%d: noovl=%.6f ovl=%.6f%s\n", f.Name, z, r1.Makespan, r2.Makespan, flag)
		}
	}
}

func TestProbeStepsVsPipelined(t *testing.T) {
	app, _ := apps.ADI(20, 32)
	fams := append([]apps.TilingFamily{app.Rect}, app.NonRect...)
	for _, f := range fams {
		ts, err := tiling.Analyze(app.Nest, f.H(4, 8, 8))
		if err != nil { t.Fatal(err) }
		d, err := distrib.New(ts, app.MapDim)
		if err != nil { t.Fatal(err) }
		pl := schedule.PipelinedLength(d)
		pi := schedule.Uniform(ts.T.N)
		ln := pi.Length(ts)
		par := simnet.FastEthernetPIII()
		par.Width = app.Width
		res, err := simnet.Simulate(d, par)
		if err != nil { t.Fatal(err) }
		fmt.Printf("%s: PipelinedLength=%d Length=%d simSteps=%d procs=%d\n", f.Name, pl, ln, res.Steps, res.Procs)
	}
}
