package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/tiling"
)

// IntraPoint is one worker count of the intra-tile sweep.
type IntraPoint struct {
	Workers int `json:"workers"`
	// Seconds is the best-of-rounds wall time of one compute-phase sweep
	// over the whole tile chain (exec.ComputeSweep).
	Seconds      float64 `json:"seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
	// Speedup is relative to the workers=1 row of the same sweep.
	Speedup float64 `json:"speedup"`
	// MaxDiff is the worst deviation of a full run at this worker count
	// from the workers=1 run — the linear-extension theorem says the
	// schedule is a legal reordering, so anything but 0 is a bug, not a
	// rounding artifact.
	MaxDiff float64 `json:"max_diff"`
}

// IntraPerf is the committed BENCH_intra.json snapshot: per-rank
// compute-phase throughput of the second-level (intra-tile) wavefront
// parallelization across worker-pool sizes. The workload is a single-rank
// Jacobi chain — tile factors on the non-mapping dimensions cover the
// skewed extents, so the tiles chain along time and each tile is one large
// all-parallel (i, j) front, the best case the local work grid is built
// for.
type IntraPerf struct {
	Workload string `json:"workload"`
	// Cores is runtime.GOMAXPROCS(0) on the measuring host. The CI
	// acceptance gate (speedup ≥ 2 at workers=4) only binds when the host
	// actually has ≥ 4 cores; a laptop snapshot stays honest instead of
	// recording fake parallel speedups.
	Cores  int   `json:"cores"`
	Procs  int   `json:"procs"`
	Tiles  int64 `json:"tiles"`
	Points int64 `json:"points"`
	Rounds int   `json:"rounds"`

	Sweep []IntraPoint `json:"sweep"`
}

// JSON renders the snapshot in the committed BENCH_intra.json format.
func (p *IntraPerf) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render formats the sweep as a report section.
func (p *IntraPerf) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== intra-tile perf: per-rank worker pool over wavefront-parallel fronts ==\n")
	fmt.Fprintf(&b, "%s — %d rank, %d tiles, %d points/sweep, %d cores, best of %d rounds\n",
		p.Workload, p.Procs, p.Tiles, p.Points, p.Cores, p.Rounds)
	fmt.Fprintf(&b, "%8s %12s %16s %9s %9s\n", "workers", "wall", "points/s", "speedup", "max_diff")
	for _, pt := range p.Sweep {
		fmt.Fprintf(&b, "%8d %11.3fms %16.0f %8.2fx %9g\n",
			pt.Workers, pt.Seconds*1e3, pt.PointsPerSec, pt.Speedup, pt.MaxDiff)
	}
	return b.String()
}

// At returns the sweep row for a worker count, or nil.
func (p *IntraPerf) At(workers int) *IntraPoint {
	for i := range p.Sweep {
		if p.Sweep[i].Workers == workers {
			return &p.Sweep[i]
		}
	}
	return nil
}

// RunIntraPerf builds the single-rank Jacobi workload (T time steps on an
// n×n grid, rectangular tiles of one time step each covering the full
// skewed plane) and sweeps the worker pool over {1, 2, 4, GOMAXPROCS}.
// Throughput comes from compute-phase-only sweeps (exec.ComputeSweep);
// MaxDiff comes from complete runs, so the bit-identity claim covers the
// whole pipeline, pool teardown included.
func RunIntraPerf(tSteps, n int64, rounds int) (*IntraPerf, error) {
	app, err := apps.Jacobi(tSteps, n)
	if err != nil {
		return nil, err
	}
	// Skewed extents: dims 1 and 2 span [2, tSteps+n]. One tile factor
	// beyond that keeps every tile lattice cell on the non-mapping
	// dimensions at index 0 — exactly one processor.
	side := tSteps + n + 1
	ts, err := tiling.Analyze(app.Nest, app.Rect.H(1, side, side))
	if err != nil {
		return nil, err
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		return nil, err
	}
	if procs := p.Dist.NumProcs(); procs != 1 {
		return nil, fmt.Errorf("bench: intrabench fixture has %d ranks, want 1", procs)
	}
	if rounds < 1 {
		rounds = 1
	}
	perf := &IntraPerf{
		Workload: fmt.Sprintf("Jacobi T=%d N=%d, rect x=1 y=z=%d", tSteps, n, side),
		Cores:    runtime.GOMAXPROCS(0),
		Procs:    1,
		Tiles:    ts.NumTiles(),
		Rounds:   rounds,
	}

	counts := []int{1, 2, 4}
	if c := perf.Cores; c != 1 && c != 2 && c != 4 {
		counts = append(counts, c)
	}
	sort.Ints(counts)

	base, _, err := p.RunParallelOpts(exec.RunOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	var serial float64
	for _, w := range counts {
		pts, secs, err := p.ComputeSweep(0, w, rounds)
		if err != nil {
			return nil, err
		}
		perf.Points = pts
		pt := IntraPoint{Workers: w, Seconds: secs, PointsPerSec: float64(pts) / secs}
		if w == 1 {
			serial = secs
		} else {
			g, _, err := p.RunParallelOpts(exec.RunOptions{Workers: w})
			if err != nil {
				return nil, err
			}
			pt.MaxDiff, _ = base.MaxAbsDiff(g, p.ScanSpace)
		}
		pt.Speedup = serial / secs
		perf.Sweep = append(perf.Sweep, pt)
	}
	return perf, nil
}
