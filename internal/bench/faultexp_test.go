package bench

import (
	"testing"

	"tilespace/internal/simnet"
)

// TestFaultModelValidatesSimnet is the acceptance check of the fault
// layer: for every default failure scenario on the measured 16-rank SOR
// run, the degradation ratio (faulty over fault-free makespan) must agree
// with simnet.SimulateFaults' prediction within FaultTolerance, and the
// measured faulty trace must carry the crash/restart markers.
// Wall-clock heavy (injected costs), so skipped under -short.
func TestFaultModelValidatesSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("measured degradation comparison needs injected real-time costs")
	}
	par := simnet.FastEthernetPIII()
	par.Bandwidth = 3e5
	par.IterTime = 5e-6
	e, err := RunFaultExperiment(par, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Rows) != 3 {
		t.Fatalf("rows = %d, want the 3 default scenarios", len(e.Rows))
	}
	for _, fc := range e.Rows {
		t.Logf("%s: measured %.2fx predicted %.2fx (err %.1f%%)",
			fc.Scenario, fc.MeasuredDegradation, fc.PredictedDegradation, fc.DegradationErr()*100)
		if fc.Procs != 16 {
			t.Fatalf("%s: procs = %d, want the 16-rank acceptance configuration", fc.Scenario, fc.Procs)
		}
		if fc.PredictedDegradation <= 1 {
			t.Errorf("%s: predicted degradation %.3fx not above 1 — scenario injects nothing", fc.Scenario, fc.PredictedDegradation)
		}
		if fc.DegradationErr() > FaultTolerance {
			t.Errorf("%s: degradation diverged: measured %.2fx vs predicted %.2fx",
				fc.Scenario, fc.MeasuredDegradation, fc.PredictedDegradation)
		}
		if fc.Scenario == "crash-restart" {
			var crash, restart int
			for _, ev := range fc.Trace.Events {
				switch ev.Kind {
				case "crash":
					crash++
				case "restart":
					restart++
				}
			}
			if crash != 1 || restart != 1 {
				t.Errorf("crash-restart trace has %d crash / %d restart markers, want 1 / 1", crash, restart)
			}
			var crashes int
			for _, m := range fc.Metrics {
				crashes += m.Crashes
			}
			if crashes != 1 {
				t.Errorf("RankMetrics count %d crashes, want 1", crashes)
			}
		}
	}
}
