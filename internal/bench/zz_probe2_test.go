package bench

import (
	"fmt"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

func TestProbeAccounting(t *testing.T) {
	type cfg struct {
		name string
		app  *apps.App
		x, y, z int64
	}
	sor, _ := apps.SOR(30, 40)
	adi, _ := apps.ADI(12, 20)
	jac, _ := apps.Jacobi(12, 20)
	cfgs := []cfg{{"sor", sor, 7, 11, 9}, {"adi", adi, 3, 5, 7}, {"jac", jac, 3, 4, 6}}
	for _, c := range cfgs {
		fams := append([]apps.TilingFamily{c.app.Rect}, c.app.NonRect...)
		for _, f := range fams {
			ts, err := tiling.Analyze(c.app.Nest, f.H(c.x, c.y, c.z))
			if err != nil { fmt.Printf("%s %s: analyze err %v\n", c.name, f.Name, err); continue }
			d, err := distrib.New(ts, c.app.MapDim)
			if err != nil { fmt.Printf("%s %s: distrib err %v\n", c.name, f.Name, err); continue }
			par := simnet.FastEthernetPIII()
			par.Width = c.app.Width
			res, err := simnet.Simulate(d, par)
			if err != nil { t.Fatal(err) }
			// brute force points and messages
			var pts, msgs, vals int64
			ts.ScanTiles(func(jS ilin.Vec) bool {
				pts += ts.CountTilePoints(jS.Clone(), nil)
				for _, dm := range d.DM {
					if !d.HasSuccessor(jS, dm) { continue }
					n := d.CommRegionCount(jS, dm)
					if n == 0 { continue }
					msgs++
					vals += n
				}
				return true
			})
			bytes := vals * int64(par.Width) * int64(par.ValueBytes)
			flag := ""
			if pts != res.Points || msgs != res.Messages || bytes != res.BytesSent {
				flag = "  <-- MISMATCH"
			}
			fmt.Printf("%s %s: pts %d/%d msgs %d/%d bytes %d/%d%s\n",
				c.name, f.Name, res.Points, pts, res.Messages, msgs, res.BytesSent, bytes, flag)
		}
	}
}

func TestProbeOverlapADI(t *testing.T) {
	adi, _ := apps.ADI(16, 24)
	fams := append([]apps.TilingFamily{adi.Rect}, adi.NonRect...)
	for _, f := range fams {
		ts, err := tiling.Analyze(adi.Nest, f.H(4, 6, 6))
		if err != nil { continue }
		d, err := distrib.New(ts, adi.MapDim)
		if err != nil { continue }
		par := simnet.FastEthernetPIII()
		par.Width = adi.Width
		r1, _ := simnet.Simulate(d, par)
		par.Overlap = true
		r2, _ := simnet.Simulate(d, par)
		flag := ""
		if r2.Makespan > r1.Makespan+1e-12 { flag = " <-- OVERLAP SLOWER" }
		fmt.Printf("adi %s: noovl=%.6f ovl=%.6f%s\n", f.Name, r1.Makespan, r2.Makespan, flag)
	}
}
