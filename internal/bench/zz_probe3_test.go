package bench

import (
	"fmt"
	"testing"
)

func TestProbeFactorForWindow(t *testing.T) {
	for _, even := range []bool{false, true} {
		bad := 0
		for lo := int64(1); lo <= 2; lo++ {
			for span := int64(2); span <= 1000; span++ {
				hi := lo + span - 1
				for _, target := range []int64{2, 4, 8} {
					got := factorFor(lo, hi, target, even)
					gotDiff := tilesCount(lo, hi, got) - target
					if gotDiff < 0 { gotDiff = -gotDiff }
					bestDiff := gotDiff
					var bestX int64
					for x := int64(1); x <= span+target+100; x++ {
						if even && x%2 != 0 { continue }
						d := tilesCount(lo, hi, x) - target
						if d < 0 { d = -d }
						if d < bestDiff { bestDiff, bestX = d, x }
					}
					if bestDiff < gotDiff {
						bad++
						if bad <= 8 {
							fmt.Printf("even=%v factorFor(%d,%d,%d)=%d -> %d tiles; x=%d -> diff %d\n",
								even, lo, hi, target, got, tilesCount(lo, hi, got), bestX, bestDiff)
						}
					}
				}
			}
		}
		fmt.Printf("even=%v suboptimal (lo 1-2, targets 2/4/8): %d\n", even, bad)
	}
}
