package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tilespace/internal/mpi"
	"tilespace/internal/simnet"
)

// WirePoint is one payload size of the ping-pong sweep: the measured
// one-way time per message at that payload.
type WirePoint struct {
	Values  int     `json:"values"`
	Seconds float64 `json:"seconds"`
}

// WireRow is one transport's sweep plus the fitted linear cost model
// t(n) = Alpha + Beta*n over the measured points.
type WireRow struct {
	Transport string      `json:"transport"`
	Points    []WirePoint `json:"points"`
	// Alpha is the fitted per-message cost in seconds, Beta the fitted
	// per-value cost in seconds/value — the same (α, β) decomposition the
	// simnet cluster model uses, so the two are directly comparable.
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	// Wire carries the TCP mesh counters after the sweep (zero value for
	// the channel fabric): committed evidence of how many socket writes
	// the coalescer actually spent per frame.
	Wire mpi.WireStats `json:"wire"`
}

// WirePerf is the committed BENCH_wire.json snapshot: per-transport
// point-to-point cost measured by a 2-rank ping-pong, next to the simnet
// FastEthernet model the simulator predicts speedups with. The two wire
// transports run on one host, so their α and β say nothing about a real
// cluster — the point of the table is (a) the relative overhead of the
// framed TCP path over the in-process fabric and (b) that both are far
// below the modelled FastEthernet costs, i.e. measured-mode experiments
// need the injected cost model, not the host's own wire.
type WirePerf struct {
	// Rounds is the number of timed round trips per payload size.
	Rounds int `json:"rounds"`
	// ModelAlpha/ModelBeta are the simnet FastEthernet model's
	// per-message (Latency + SendOverhead) and per-value
	// (ValueBytes/Bandwidth + PackTime) costs in seconds.
	ModelAlpha float64 `json:"model_alpha"`
	ModelBeta  float64 `json:"model_beta"`

	Rows []WireRow `json:"rows"`
}

// JSON renders the snapshot in the committed BENCH_wire.json format.
func (p *WirePerf) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render formats the sweep as a report section.
func (p *WirePerf) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== wire perf: 2-rank ping-pong, one-way time per message (%d rounds/size) ==\n", p.Rounds)
	fmt.Fprintf(&b, "%-10s", "transport")
	if len(p.Rows) > 0 {
		for _, pt := range p.Rows[0].Points {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("n=%d", pt.Values))
		}
	}
	fmt.Fprintf(&b, " %12s %12s\n", "alpha", "beta/value")
	row := func(name string, pts []WirePoint, alpha, beta float64) {
		fmt.Fprintf(&b, "%-10s", name)
		for _, pt := range pts {
			fmt.Fprintf(&b, " %7.2fus", pt.Seconds*1e6)
		}
		fmt.Fprintf(&b, " %10.2fus %10.2fns\n", alpha*1e6, beta*1e9)
	}
	for _, r := range p.Rows {
		row(r.Transport, r.Points, r.Alpha, r.Beta)
	}
	var model []WirePoint
	if len(p.Rows) > 0 {
		for _, pt := range p.Rows[0].Points {
			model = append(model, WirePoint{
				Values:  pt.Values,
				Seconds: p.ModelAlpha + float64(pt.Values)*p.ModelBeta,
			})
		}
	}
	row("simnet", model, p.ModelAlpha, p.ModelBeta)
	for _, r := range p.Rows {
		if r.Wire.FramesSent > 0 {
			fmt.Fprintf(&b, "%s coalescing: %d frames in %d socket writes (%.2f frames/write), %d bytes\n",
				r.Transport, r.Wire.FramesSent, r.Wire.Batches,
				float64(r.Wire.FramesSent)/float64(max64(r.Wire.Batches, 1)), r.Wire.BytesSent)
		}
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// fitAlphaBeta least-squares fits t(n) = alpha + beta*n over the sweep.
func fitAlphaBeta(pts []WirePoint) (alpha, beta float64) {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := float64(p.Values), p.Seconds
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	beta = (n*sxy - sx*sy) / den
	alpha = (sy - beta*sx) / n
	return alpha, beta
}

// pingpong bounces a payload of the given size between ranks 0 and 1 for
// the timed rounds (after one untimed warm-up trip that absorbs link
// dial and first-touch costs) and returns the one-way seconds/message.
func pingpong(w *mpi.World, values, rounds int) (float64, error) {
	const tag = 4242
	buf := make([]float64, values)
	for i := range buf {
		buf[i] = float64(i)
	}
	var oneWay float64
	err := w.RunE(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag, buf)
			c.Recv(1, tag)
			start := time.Now()
			for i := 0; i < rounds; i++ {
				c.Send(1, tag, buf)
				c.Recv(1, tag)
			}
			oneWay = time.Since(start).Seconds() / float64(2*rounds)
		case 1:
			for i := 0; i < rounds+1; i++ {
				c.Send(0, tag, c.Recv(0, tag))
			}
		}
	})
	return oneWay, err
}

// WireSizes are the swept payload sizes in float64 values per message.
var WireSizes = []int{8, 64, 512, 4096}

// RunWirePerf ping-pongs every payload size over both wire transports —
// the in-process channel fabric and a loopback TCP mesh — and fits
// (α, β) per transport. There is deliberately no timing gate: loopback
// numbers vary wildly across hosts, and the snapshot's job is to record
// them honestly next to the model, not to pass a bar.
func RunWirePerf(rounds int) (*WirePerf, error) {
	if rounds < 1 {
		rounds = 1
	}
	par := simnet.FastEthernetPIII()
	perf := &WirePerf{
		Rounds:     rounds,
		ModelAlpha: par.Latency + par.SendOverhead,
		ModelBeta:  float64(par.ValueBytes)/par.Bandwidth + par.PackTime,
	}
	for _, transport := range []string{"channel", "tcp"} {
		var w *mpi.World
		if transport == "tcp" {
			tw, err := mpi.NewTCPWorld(2, mpi.Options{})
			if err != nil {
				return nil, fmt.Errorf("bench: wire %s: %w", transport, err)
			}
			w = tw
		} else {
			w = mpi.NewWorld(2)
		}
		row := WireRow{Transport: transport}
		for _, n := range WireSizes {
			sec, err := pingpong(w, n, rounds)
			if err != nil {
				w.Close()
				return nil, fmt.Errorf("bench: wire %s n=%d: %w", transport, n, err)
			}
			row.Points = append(row.Points, WirePoint{Values: n, Seconds: sec})
		}
		row.Alpha, row.Beta = fitAlphaBeta(row.Points)
		if ws, ok := w.WireStats(); ok {
			row.Wire = ws
		}
		w.Close()
		perf.Rows = append(perf.Rows, row)
	}
	return perf, nil
}
