package bench

import (
	"fmt"
	"strings"

	"tilespace/internal/apps"
	"tilespace/internal/simnet"
)

// Scale shrinks the paper-size experiments for quick runs: 1 is full paper
// scale, 2 halves every space dimension, etc. The speedup *shapes* are
// stable across scales; absolute speedups shrink with the spaces.
type Scale int64

func (s Scale) div(v int64) int64 {
	out := v / int64(s)
	if out < 4 {
		out = 4
	}
	return out
}

// SORSweep builds one SOR series: x and y fixed to give a ≈2×8 processor
// mesh (the paper used 16 MPI processes), z swept to vary tile size. The
// mapping dimension is the third (skewed j: extent 2M+N, the longest).
func SORSweep(fig string, m, n int64, zs []int64) (*Sweep, error) {
	app, err := apps.SOR(m, n)
	if err != nil {
		return nil, err
	}
	x := factorFor(1, m, 2, false)
	y := factorFor(2, m+n, 8, false)
	return &Sweep{
		Fig:   fig,
		Space: fmt.Sprintf("M=%d,N=%d", m, n),
		App:   app,
		Factors: func(z int64) (int64, int64, int64) {
			return x, y, z
		},
		Values: zs,
	}, nil
}

// JacobiSweep: y, z fixed for a ≈4×4 mesh, x (the time/mapping dimension
// factor) swept. y is forced even so the non-rectangular P is integral.
func JacobiSweep(fig string, tSteps, n int64, xs []int64) (*Sweep, error) {
	app, err := apps.Jacobi(tSteps, n)
	if err != nil {
		return nil, err
	}
	y := factorFor(2, tSteps+n, 4, true)
	z := factorFor(2, tSteps+n, 4, false)
	return &Sweep{
		Fig:   fig,
		Space: fmt.Sprintf("T=%d,I=J=%d", tSteps, n),
		App:   app,
		Factors: func(x int64) (int64, int64, int64) {
			return x, y, z
		},
		Values: xs,
	}, nil
}

// ADISweep: y, z fixed for a ≈4×4 mesh, x swept.
func ADISweep(fig string, tSteps, n int64, xs []int64) (*Sweep, error) {
	app, err := apps.ADI(tSteps, n)
	if err != nil {
		return nil, err
	}
	y := factorFor(1, n, 4, false)
	z := factorFor(1, n, 4, false)
	return &Sweep{
		Fig:   fig,
		Space: fmt.Sprintf("T=%d,N=%d", tSteps, n),
		App:   app,
		Factors: func(x int64) (int64, int64, int64) {
			return x, y, z
		},
		Values: xs,
	}, nil
}

// Figure is one of the paper's evaluation figures: a set of sweeps plus
// how to summarize them.
type Figure struct {
	ID      string
	Title   string
	Sweeps  []*Sweep
	MaxOnly bool // Figs. 5/7/9 plot only the per-space maximum speedups
}

// Figures builds all six evaluation figures at the given scale.
func Figures(sc Scale) ([]*Figure, error) {
	if sc < 1 {
		sc = 1
	}
	d := sc.div
	sorZ := []int64{5, 10, 20, 40, 80}
	jacX := []int64{2, 3, 5, 8}
	adiX := []int64{2, 3, 5, 8, 12}
	if sc > 1 {
		sorZ = []int64{4, 8, 16, 32}
		jacX = []int64{2, 3, 4}
		adiX = []int64{2, 3, 4, 6}
	}

	scaleNote := ""
	if sc > 1 {
		scaleNote = fmt.Sprintf(" [spaces scaled 1/%d]", sc)
	}
	var figs []*Figure
	f5 := &Figure{ID: "fig5", Title: "SOR: maximum speedups for different iteration spaces" + scaleNote, MaxOnly: true}
	for _, sp := range [][2]int64{{100, 200}, {200, 200}, {100, 400}, {200, 400}} {
		s, err := SORSweep("fig5", d(sp[0]), d(sp[1]), sorZ)
		if err != nil {
			return nil, err
		}
		f5.Sweeps = append(f5.Sweeps, s)
	}
	figs = append(figs, f5)

	f6sweep, err := SORSweep("fig6", d(100), d(200), sorZ)
	if err != nil {
		return nil, err
	}
	figs = append(figs, &Figure{ID: "fig6", Title: "SOR: speedups for various tile sizes (M=100, N=200)" + scaleNote, Sweeps: []*Sweep{f6sweep}})

	f7 := &Figure{ID: "fig7", Title: "Jacobi: maximum speedups for different iteration spaces" + scaleNote, MaxOnly: true}
	for _, sp := range [][2]int64{{50, 100}, {100, 100}, {50, 200}, {100, 200}} {
		s, err := JacobiSweep("fig7", d(sp[0]), d(sp[1]), jacX)
		if err != nil {
			return nil, err
		}
		f7.Sweeps = append(f7.Sweeps, s)
	}
	figs = append(figs, f7)

	f8sweep, err := JacobiSweep("fig8", d(50), d(100), jacX)
	if err != nil {
		return nil, err
	}
	figs = append(figs, &Figure{ID: "fig8", Title: "Jacobi: speedups for various tile sizes (T=50, I=J=100)" + scaleNote, Sweeps: []*Sweep{f8sweep}})

	f9 := &Figure{ID: "fig9", Title: "ADI: maximum speedups for different iteration spaces" + scaleNote, MaxOnly: true}
	for _, sp := range [][2]int64{{100, 256}, {200, 256}, {100, 512}, {200, 512}} {
		s, err := ADISweep("fig9", d(sp[0]), d(sp[1]), adiX)
		if err != nil {
			return nil, err
		}
		f9.Sweeps = append(f9.Sweeps, s)
	}
	figs = append(figs, f9)

	f10sweep, err := ADISweep("fig10", d(100), d(256), adiX)
	if err != nil {
		return nil, err
	}
	figs = append(figs, &Figure{ID: "fig10", Title: "ADI: speedups for various tile sizes (T=100, N=256)" + scaleNote, Sweeps: []*Sweep{f10sweep}})
	return figs, nil
}

// FigureResult is a completed figure.
type FigureResult struct {
	Figure *Figure
	Series []*Series
}

// Run executes every sweep of the figure.
func (f *Figure) Run(par simnet.Params) (*FigureResult, error) {
	out := &FigureResult{Figure: f}
	for _, s := range f.Sweeps {
		series, err := s.Run(par)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// Render prints the figure the way the paper reports it: per-space maximum
// speedups for the max-only figures, the full sweep table otherwise.
func (fr *FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", fr.Figure.ID, fr.Figure.Title)
	if fr.Figure.MaxOnly {
		fams := fr.Series[0].Families
		fmt.Fprintf(&b, "%-18s", "space")
		for _, f := range fams {
			fmt.Fprintf(&b, " %10s", "max S("+f+")")
		}
		fmt.Fprintf(&b, " %8s\n", "improv%")
		for _, s := range fr.Series {
			best := s.MaxSpeedups()
			fmt.Fprintf(&b, "%-18s", s.Sweep.Space)
			for _, f := range fams {
				fmt.Fprintf(&b, " %10.2f", best[f])
			}
			bestNR := 0.0
			for f, v := range best {
				if f != "rect" && v > bestNR {
					bestNR = v
				}
			}
			if best["rect"] > 0 {
				fmt.Fprintf(&b, " %8.1f", (bestNR-best["rect"])/best["rect"]*100)
			}
			b.WriteByte('\n')
		}
	} else {
		for _, s := range fr.Series {
			b.WriteString(s.Table())
		}
	}
	return b.String()
}

// AverageImprovement returns the mean improvement of the best
// non-rectangular family over rect across all sweeps of the figure.
func (fr *FigureResult) AverageImprovement() float64 {
	var sum float64
	var n int
	for _, s := range fr.Series {
		best := ""
		bestVal := -1.0
		for _, fam := range s.Families {
			if fam == "rect" {
				continue
			}
			if v := s.ImprovementPercent(fam); v > bestVal {
				best, bestVal = fam, v
			}
		}
		if best != "" {
			sum += bestVal
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
