package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/tiling"
)

// ExecPerf measures the compiled-plan executor against the legacy
// per-point reference on a full program run (all phases: receive, init,
// compute, pack, send, write-back) with no injected costs, so the numbers
// are pure executor overhead. It is the source of the committed
// BENCH_exec.json snapshot and the EXPERIMENTS.md before/after table.
type ExecPerf struct {
	Workload string `json:"workload"`
	Procs    int    `json:"procs"`
	// Cores is runtime.GOMAXPROCS(0) on the measuring host — snapshots
	// from hosts with different parallel budgets are not comparable, so
	// the budget travels with the numbers.
	Cores  int   `json:"cores"`
	Tiles  int64 `json:"tiles"`
	Points int64 `json:"points"`
	Rounds int   `json:"rounds"`

	// Best-of-rounds wall time of one full parallel run, in seconds.
	LegacySeconds  float64 `json:"legacy_seconds"`
	PlannedSeconds float64 `json:"planned_seconds"`

	// Points per second through the whole pipeline.
	LegacyPointsPerSec  float64 `json:"legacy_points_per_sec"`
	PlannedPointsPerSec float64 `json:"planned_points_per_sec"`
	Speedup             float64 `json:"speedup"`

	// MaxDiff is the worst deviation between the two executors' global
	// arrays; anything but 0 is a correctness bug.
	MaxDiff float64 `json:"max_diff"`
}

// JSON renders the snapshot in the committed BENCH_exec.json format.
func (p *ExecPerf) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render formats the comparison as a report section.
func (p *ExecPerf) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== executor perf: compiled tile plans vs legacy per-point addressing ==\n")
	fmt.Fprintf(&b, "%s — %d procs, %d tiles, %d points, best of %d rounds\n",
		p.Workload, p.Procs, p.Tiles, p.Points, p.Rounds)
	fmt.Fprintf(&b, "%-10s %12s %16s\n", "", "wall", "points/s")
	fmt.Fprintf(&b, "%-10s %11.3fms %16.0f\n", "legacy", p.LegacySeconds*1e3, p.LegacyPointsPerSec)
	fmt.Fprintf(&b, "%-10s %11.3fms %16.0f\n", "planned", p.PlannedSeconds*1e3, p.PlannedPointsPerSec)
	fmt.Fprintf(&b, "speedup %.2fx, diff %g\n", p.Speedup, p.MaxDiff)
	return b.String()
}

// RunExecPerf builds the SOR workload on an M×N×N space under the paper's
// non-rectangular tiling (the same schedule RunExecAblation uses), runs
// both executors rounds times each, and reports the best wall time per
// mode — best-of, not mean, because the comparison is about executor cost
// and the OS scheduler only ever adds noise.
func RunExecPerf(m, n int64, rounds int) (*ExecPerf, error) {
	app, err := apps.SOR(m, n)
	if err != nil {
		return nil, err
	}
	h := app.NonRect[0].H(2, 4, 4)
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		return nil, err
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}
	perf := &ExecPerf{
		Workload: fmt.Sprintf("SOR M=%d N=%d, %s x=2 y=4 z=4", m, n, app.NonRect[0].Name),
		Procs:    p.Dist.NumProcs(),
		Cores:    runtime.GOMAXPROCS(0),
		Tiles:    ts.NumTiles(),
		Points:   ts.TotalPoints(),
		Rounds:   rounds,
	}

	measure := func(opt exec.RunOptions) (*exec.Global, float64, error) {
		var g *exec.Global
		best := 0.0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			out, _, err := p.RunParallelOpts(opt)
			if err != nil {
				return nil, 0, err
			}
			if el := time.Since(start).Seconds(); best == 0 || el < best {
				best = el
			}
			g = out
		}
		return g, best, nil
	}

	gL, tL, err := measure(exec.RunOptions{Legacy: true})
	if err != nil {
		return nil, err
	}
	gP, tP, err := measure(exec.RunOptions{})
	if err != nil {
		return nil, err
	}
	perf.LegacySeconds = tL
	perf.PlannedSeconds = tP
	perf.LegacyPointsPerSec = float64(perf.Points) / tL
	perf.PlannedPointsPerSec = float64(perf.Points) / tP
	perf.Speedup = tL / tP
	perf.MaxDiff, _ = gL.MaxAbsDiff(gP, p.ScanSpace)
	return perf, nil
}
