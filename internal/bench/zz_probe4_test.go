package bench

import (
	"fmt"
	"testing"

	"tilespace/internal/simnet"
)

func TestProbeTableColumns(t *testing.T) {
	s, err := ADISweep("figX", 24, 32, []int64{2, 3})
	if err != nil { t.Fatal(err) }
	ser, err := s.Run(simnet.FastEthernetPIII())
	if err != nil { t.Fatal(err) }
	for _, pt := range ser.Points {
		for _, f := range ser.Families {
			r := pt.Results[f]
			fmt.Printf("v=%d fam=%s procs=%d steps=%d speedup=%.2f\n", pt.Value, f, r.Procs, r.Steps, r.Speedup)
		}
	}
	fmt.Println(ser.Table())
}
