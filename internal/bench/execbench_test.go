package bench

import (
	"strings"
	"testing"

	"tilespace/internal/simnet"
)

// TestExecAblationValidatesCostModel closes the loop the ISSUE asks for:
// the same SOR schedule runs with Overlap on/off both in the simulator and
// in the real runtime (under the simulator's own injected cost model —
// wire costs via NetOptions, compute cost via PointDelay), and the
// predicted winner must match the measured one. The parameters put
// compute and transfer in the same order of magnitude, which is where the
// overlap gain (blocking ≈ c+τ vs overlapped ≈ max(c,τ)) is largest.
func TestExecAblationValidatesCostModel(t *testing.T) {
	par := simnet.FastEthernetPIII()
	par.Bandwidth = 3e5 // values/s — slow enough that transfers rival compute
	par.IterTime = 5e-6 // s/point — gives the NIC work to hide behind
	// Scale the model costs up to OS-timer range so wall-clock differences
	// dwarf goroutine scheduling noise (~10ms absolute gap at this scale).
	const costScale = 10
	var a *ExecAblation
	var err error
	// One retry absorbs a pathological scheduler hiccup on loaded CI.
	for attempt := 0; attempt < 2; attempt++ {
		a, err = RunExecAblation(6, 16, par, costScale)
		if err != nil {
			t.Fatal(err)
		}
		if a.Agree() {
			break
		}
	}
	if a.MaxDiff != 0 {
		t.Fatalf("parallel results deviate from serial by %g", a.MaxDiff)
	}
	if a.PredictedOverlapped >= a.PredictedBlocking {
		t.Fatalf("simulator predicts no overlap gain (%.6f vs %.6f) — FastEthernet SOR should be communication-bound",
			a.PredictedOverlapped, a.PredictedBlocking)
	}
	if a.Stats.OverlappedSends == 0 || a.Stats.OverlappedSends != a.Stats.Messages {
		t.Fatalf("overlapped run traffic %+v: not all messages took the Isend path", a.Stats)
	}
	if !a.Agree() {
		t.Fatalf("predicted winner %q but measured %q (sim %.3fms/%.3fms, wall %v/%v)",
			a.PredictedWinner(), a.MeasuredWinner(),
			a.PredictedBlocking*1e3, a.PredictedOverlapped*1e3,
			a.MeasuredBlocking, a.MeasuredOverlapped)
	}
	r := a.Render()
	for _, want := range []string{"executor ablation", "simnet makespan", "measured wall time", "MATCH"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q:\n%s", want, r)
		}
	}
}
