package bench

import (
	"strings"
	"testing"

	"tilespace/internal/simnet"
)

func TestFactorFor(t *testing.T) {
	// [1, 256] with 4 tiles: 64 gives 5 (ragged), 65 gives exactly 4.
	if got := factorFor(1, 256, 4, false); tilesCount(1, 256, got) != 4 {
		t.Errorf("factorFor(1,256,4) = %d (tiles %d)", got, tilesCount(1, 256, got))
	}
	if got := factorFor(2, 300, 8, false); tilesCount(2, 300, got) != 8 {
		t.Errorf("factorFor(2,300,8) = %d (tiles %d)", got, tilesCount(2, 300, got))
	}
	if got := factorFor(2, 150, 4, true); got%2 != 0 {
		t.Errorf("even factor requested, got %d", got)
	}
	if got := factorFor(1, 3, 10, false); got < 1 {
		t.Errorf("degenerate factor %d", got)
	}
}

func fastParams() simnet.Params {
	return simnet.FastEthernetPIII()
}

// TestSORSweepShapes checks the paper's §4.1 claims on a reduced space:
// non-rect ≥ rect at every point, equal tile sizes, equal processor
// counts, and shorter schedules.
func TestSORSweepShapes(t *testing.T) {
	s, err := SORSweep("fig6", 24, 48, []int64{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	series, err := s.Run(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 {
		t.Fatalf("points = %d", len(series.Points))
	}
	for _, pt := range series.Points {
		r, nr := pt.Results["rect"], pt.Results["nr"]
		if r.Procs != nr.Procs {
			t.Errorf("z=%d: procs differ %d vs %d", pt.Value, r.Procs, nr.Procs)
		}
		if nr.Steps >= r.Steps {
			t.Errorf("z=%d: nr steps %d !< rect steps %d", pt.Value, nr.Steps, r.Steps)
		}
		if nr.Speedup < r.Speedup {
			t.Errorf("z=%d: nr speedup %.3f < rect %.3f", pt.Value, nr.Speedup, r.Speedup)
		}
	}
	if imp := series.ImprovementPercent("nr"); imp <= 0 {
		t.Errorf("improvement %.1f%% should be positive", imp)
	}
	if !strings.Contains(series.Table(), "S(nr)") {
		t.Error("table missing family column")
	}
}

func TestJacobiSweepShapes(t *testing.T) {
	s, err := JacobiSweep("fig8", 12, 24, []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	series, err := s.Run(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range series.Points {
		r, nr := pt.Results["rect"], pt.Results["nr"]
		if nr.Speedup < r.Speedup {
			t.Errorf("x=%d: nr %.3f < rect %.3f", pt.Value, nr.Speedup, r.Speedup)
		}
	}
}

// TestADISweepOrdering: §4.3's family ordering nr3 ≥ nr1, nr2 ≥ rect.
func TestADISweepOrdering(t *testing.T) {
	s, err := ADISweep("fig10", 16, 32, []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	series, err := s.Run(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range series.Points {
		r := pt.Results
		if r["nr3"].Speedup < r["nr1"].Speedup || r["nr3"].Speedup < r["nr2"].Speedup {
			t.Errorf("x=%d: nr3 not best: %v %v %v", pt.Value, r["nr3"].Speedup, r["nr1"].Speedup, r["nr2"].Speedup)
		}
		if r["nr1"].Speedup < r["rect"].Speedup || r["nr2"].Speedup < r["rect"].Speedup {
			t.Errorf("x=%d: nr1/nr2 below rect", pt.Value)
		}
	}
}

func TestFiguresBuildAtScale(t *testing.T) {
	figs, err := Figures(8) // tiny spaces for a build smoke test
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("figures = %d, want 6", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
	}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if !ids[id] {
			t.Errorf("missing %s", id)
		}
	}
}

// TestFigureRunAndRender runs one max-only figure end to end at a tiny
// scale and checks the rendering.
func TestFigureRunAndRender(t *testing.T) {
	figs, err := Figures(8)
	if err != nil {
		t.Fatal(err)
	}
	var f9 *Figure
	for _, f := range figs {
		if f.ID == "fig9" {
			f9 = f
		}
	}
	fr, err := f9.Run(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	out := fr.Render()
	for _, want := range []string{"fig9", "max S(rect)", "max S(nr3)", "improv%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if imp := fr.AverageImprovement(); imp <= 0 {
		t.Errorf("average improvement %.2f%% should be positive", imp)
	}
}

func TestSortedFamilies(t *testing.T) {
	got := sortedFamilies(map[string]float64{"b": 1, "a": 2})
	if len(got) != 2 || got[0] != "a" {
		t.Errorf("sortedFamilies = %v", got)
	}
}
