package bench

import (
	"encoding/json"
	"testing"

	"tilespace/internal/simnet"
)

// TestTraceExperimentValidatesCostModel is the acceptance check of the
// tracing layer: the measured 16-rank SOR run (plus Jacobi and ADI) must
// agree with simnet.SimulateTraced's phase fractions within
// PhaseTolerance, and the measured trace must export valid Chrome
// trace_event JSON. Wall-clock heavy (injected costs), so skipped under
// -short.
func TestTraceExperimentValidatesCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("measured phase comparison needs injected real-time costs")
	}
	par := simnet.FastEthernetPIII()
	par.Bandwidth = 3e5
	par.IterTime = 5e-6
	e, err := RunTraceExperiment(par, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Rows) != 3 {
		t.Fatalf("rows = %d", len(e.Rows))
	}
	sor := e.Rows[0]
	if sor.Procs != 16 {
		t.Fatalf("SOR procs = %d, want the 16-rank acceptance configuration", sor.Procs)
	}
	for _, pc := range e.Rows {
		t.Logf("%s: compute meas %.3f sim %.3f, wait meas %.3f sim %.3f",
			pc.App, pc.MeasuredCompute, pc.SimCompute, pc.MeasuredWait, pc.SimWait)
		if pc.ComputeErr() > PhaseTolerance {
			t.Errorf("%s compute fraction diverged: measured %.3f vs sim %.3f", pc.App, pc.MeasuredCompute, pc.SimCompute)
		}
		if pc.WaitErr() > PhaseTolerance {
			t.Errorf("%s wait fraction diverged: measured %.3f vs sim %.3f", pc.App, pc.MeasuredWait, pc.SimWait)
		}
		if int64(len(pc.Trace.Events)) != pc.Tiles {
			t.Errorf("%s: %d measured events for %d tiles", pc.App, len(pc.Trace.Events), pc.Tiles)
		}
	}

	js, err := sor.Trace.TraceEventJSON()
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Tid   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &f); err != nil {
		t.Fatalf("invalid trace_event JSON: %v", err)
	}
	ranks := map[int]bool{}
	for _, ev := range f.TraceEvents {
		ranks[ev.Tid] = true
	}
	if len(ranks) != 16 {
		t.Errorf("trace JSON covers %d ranks, want 16", len(ranks))
	}
}
