package bench

import (
	"fmt"
	"strings"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/mpi"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// ExecAblation compares blocking and overlapped communication in the real
// runtime, next to the simulator's prediction for the same schedule: the
// same workload runs through exec.RunParallelOpts twice under an injected
// wire-cost model (simnet.Params.NetOptions), and through simnet.Simulate
// twice with Overlap off/on. Agreement of the predicted and measured
// winner is the end-to-end validation of the cost model's Overlap branch.
type ExecAblation struct {
	Workload string
	Procs    int
	Tiles    int64

	// Simulator makespans (seconds, at model scale).
	PredictedBlocking   float64
	PredictedOverlapped float64

	// Measured wall time of the real runtime (at the injected cost scale).
	MeasuredBlocking   time.Duration
	MeasuredOverlapped time.Duration

	// Traffic of the overlapped run; OverlappedSends > 0 proves the Isend
	// path actually carried the halos.
	Stats mpi.Stats

	// MaxDiff is the worst deviation of either parallel run from the
	// serial reference (must be 0: overlap may not change results).
	MaxDiff float64
}

// PredictedWinner returns "overlap" or "blocking" per the simulator.
func (a *ExecAblation) PredictedWinner() string {
	if a.PredictedOverlapped < a.PredictedBlocking {
		return "overlap"
	}
	return "blocking"
}

// MeasuredWinner returns "overlap" or "blocking" per the real runtime.
func (a *ExecAblation) MeasuredWinner() string {
	if a.MeasuredOverlapped < a.MeasuredBlocking {
		return "overlap"
	}
	return "blocking"
}

// Agree reports whether prediction and measurement rank the two modes the
// same way.
func (a *ExecAblation) Agree() bool { return a.PredictedWinner() == a.MeasuredWinner() }

// Render formats the ablation as a report section.
func (a *ExecAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== executor ablation: blocking vs overlapped communication (%s, %d procs, %d tiles) ==\n",
		a.Workload, a.Procs, a.Tiles)
	fmt.Fprintf(&b, "%-22s %14s %14s %10s\n", "", "blocking", "overlap", "winner")
	fmt.Fprintf(&b, "%-22s %13.3fms %13.3fms %10s\n", "simnet makespan",
		a.PredictedBlocking*1e3, a.PredictedOverlapped*1e3, a.PredictedWinner())
	fmt.Fprintf(&b, "%-22s %13.3fms %13.3fms %10s\n", "measured wall time",
		float64(a.MeasuredBlocking.Microseconds())/1e3,
		float64(a.MeasuredOverlapped.Microseconds())/1e3, a.MeasuredWinner())
	verdict := "MATCH — cost model validated"
	if !a.Agree() {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(&b, "overlapped sends %d / %d messages, diff vs serial %g, prediction %s\n",
		a.Stats.OverlappedSends, a.Stats.Messages, a.MaxDiff, verdict)
	return b.String()
}

// RunExecAblation builds the SOR workload on an M×N×N space under the
// paper's non-rectangular tiling, verifies both communication modes
// against the serial reference, and measures them under the injected
// wire-cost model par.NetOptions(costScale).
func RunExecAblation(m, n int64, par simnet.Params, costScale float64) (*ExecAblation, error) {
	app, err := apps.SOR(m, n)
	if err != nil {
		return nil, err
	}
	h := app.NonRect[0].H(2, 4, 4)
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		return nil, err
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		return nil, err
	}
	a := &ExecAblation{
		Workload: fmt.Sprintf("SOR M=%d N=%d, %s", m, n, app.NonRect[0].Name),
		Procs:    p.Dist.NumProcs(),
		Tiles:    ts.NumTiles(),
	}

	par.Width = p.Width
	par.Overlap = false
	simB, err := simnet.Simulate(p.Dist, par)
	if err != nil {
		return nil, err
	}
	par.Overlap = true
	simO, err := simnet.Simulate(p.Dist, par)
	if err != nil {
		return nil, err
	}
	a.PredictedBlocking = simB.Makespan
	a.PredictedOverlapped = simO.Makespan

	ref, err := p.RunSequential()
	if err != nil {
		return nil, err
	}
	// Inject the full cost model at costScale: wire costs through the mpi
	// world, compute cost (IterTime) through the executor — without the
	// latter, in-process kernels take nanoseconds and every schedule
	// degenerates to communication-bound.
	net := par.NetOptions(costScale)
	pointDelay := time.Duration(par.IterTime * costScale * float64(time.Second))
	start := time.Now()
	gB, _, err := p.RunParallelOpts(exec.RunOptions{Net: net, PointDelay: pointDelay})
	if err != nil {
		return nil, err
	}
	a.MeasuredBlocking = time.Since(start)
	start = time.Now()
	gO, stats, err := p.RunParallelOpts(exec.RunOptions{Overlap: true, Net: net, PointDelay: pointDelay})
	if err != nil {
		return nil, err
	}
	a.MeasuredOverlapped = time.Since(start)
	a.Stats = stats

	if d, _ := ref.MaxAbsDiff(gB, p.ScanSpace); d > a.MaxDiff {
		a.MaxDiff = d
	}
	if d, _ := ref.MaxAbsDiff(gO, p.ScanSpace); d > a.MaxDiff {
		a.MaxDiff = d
	}
	return a, nil
}
