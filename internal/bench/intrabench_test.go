package bench

import (
	"encoding/json"
	"testing"
)

// TestRunIntraPerf checks the snapshot's structural invariants on a small
// fixture: single rank, one sweep row per worker count, bit-identical
// results at every pool size, and a round-trippable JSON shape. Speed
// itself is not asserted — the 2× bar lives in the clusterbench gate and
// only binds on hosts with ≥ 4 cores.
func TestRunIntraPerf(t *testing.T) {
	perf, err := RunIntraPerf(3, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Procs != 1 {
		t.Fatalf("intrabench fixture has %d ranks, want 1", perf.Procs)
	}
	if perf.Tiles < 2 {
		t.Fatalf("chain has %d tiles — no intra-tile sweep to speak of", perf.Tiles)
	}
	if perf.Points <= 0 {
		t.Fatalf("sweep computes %d points", perf.Points)
	}
	if perf.Cores < 1 {
		t.Fatalf("cores = %d", perf.Cores)
	}
	seen := map[int]bool{}
	for _, pt := range perf.Sweep {
		if seen[pt.Workers] {
			t.Fatalf("worker count %d measured twice", pt.Workers)
		}
		seen[pt.Workers] = true
		if pt.Seconds <= 0 || pt.PointsPerSec <= 0 || pt.Speedup <= 0 {
			t.Fatalf("workers=%d: non-positive measurement %+v", pt.Workers, pt)
		}
		if pt.MaxDiff != 0 {
			t.Fatalf("workers=%d drifted from the serial result by %g — the wavefront schedule must be bit-identical", pt.Workers, pt.MaxDiff)
		}
	}
	for _, w := range []int{1, 2, 4} {
		if !seen[w] {
			t.Fatalf("sweep is missing workers=%d: %+v", w, perf.Sweep)
		}
	}
	if one := perf.At(1); one == nil || one.Speedup != 1 {
		t.Fatalf("workers=1 row must anchor speedup at exactly 1, got %+v", one)
	}
	if perf.At(3) != nil {
		t.Fatal("At(3) found a row that was never measured")
	}

	js, err := perf.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back IntraPerf
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Sweep) != len(perf.Sweep) || back.Points != perf.Points {
		t.Fatalf("round-trip changed the snapshot: %+v vs %+v", back, perf)
	}
	if perf.Render() == "" {
		t.Fatal("empty report section")
	}
}
