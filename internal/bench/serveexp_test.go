package bench

import "testing"

// TestServeExperiment runs a scaled-down load battery and checks the
// properties the committed BENCH_serve.json claims at full scale: the
// warm cache buys a real throughput multiple, hits dominate the warm
// phase, compiles collapse to one per spec, and caching never changes a
// computed value. The asserted speedup floor is deliberately below the
// snapshot's (the race detector and CI noise compress the ratio);
// regenerating the snapshot via `clusterbench -serve` enforces the
// headline number.
func TestServeExperiment(t *testing.T) {
	e, err := RunServeExperiment(4, 24)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", e.Render())

	if e.Cold.Errors != 0 || e.Warm.Errors != 0 {
		t.Fatalf("errors: cold %d warm %d", e.Cold.Errors, e.Warm.Errors)
	}
	if !e.ChecksumsStable {
		t.Fatal("caching changed a computed result")
	}
	if e.Warm.Compiles != int64(e.Specs) {
		t.Fatalf("warm phase compiled %d times, want once per spec (%d)", e.Warm.Compiles, e.Specs)
	}
	if e.Cold.CacheHitRate != 0 {
		t.Fatalf("cold phase hit rate %v, want 0 (cache disabled)", e.Cold.CacheHitRate)
	}
	if e.Warm.CacheHitRate < 0.9 {
		t.Fatalf("warm hit rate %.2f, want >= 0.9", e.Warm.CacheHitRate)
	}
	if e.Speedup < 2 {
		t.Fatalf("warm/cold speedup %.2f, want >= 2 even under the race detector", e.Speedup)
	}
}
