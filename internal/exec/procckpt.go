package exec

import (
	"fmt"

	"tilespace/internal/mpi"
)

// RankSnapshot is one rank process's checkpoint: everything a
// relaunched process needs to resume its chain mid-conversation.
//
// NextTile and LDS restore the compute state (the LDS holds every value
// the chain has produced or received so far, so re-execution starts at
// the snapshot's tile boundary, not from zero). Recv and Sent are the
// wire coordinates: the per-(peer, tag) consumed counts seed the fresh
// world's mailbox matchers (mpi.World.RestoreStreams) and the mesh's
// accepted watermarks (TCPMesh.RestoreRecvStreams) — so reconnecting
// peers resend exactly what this rank never consumed — while the sent
// counts seed the mesh's outbound sequences (TCPMesh.RestoreSentStreams)
// so regenerated sends are numbered as their lost originals and the
// suppression/dedup protocol removes every duplicate.
type RankSnapshot struct {
	Rank     int
	NextTile int64
	LDS      []float64
	Recv     []mpi.StreamPos
	Sent     []mpi.StreamPos
}

// ProcCheckpoint configures rank-process checkpointing (multi-process
// deployments; see RunOptions.ProcCheckpoint). Unlike Checkpoint — the
// in-process tile-chain recovery, which replays dropped sends from a
// live world — this snapshots to stable storage through Save, and
// recovery means a *new OS process* restoring the snapshot and rejoining
// the mesh. The caller (cmd/tilerankd) owns persistence and the restore
// sequence: seed the mesh and world stream state from Resume before
// accepting connections, then run with Resume set so the rank starts at
// its snapshot instead of tile zero.
type ProcCheckpoint struct {
	// Every is the snapshot cadence in committed tiles (min 1).
	Every int64
	// Save persists one snapshot; a non-nil error aborts the run.
	Save func(*RankSnapshot) error
	// Resume, when non-nil, restores this rank from a prior snapshot.
	Resume *RankSnapshot
}

func (pc *ProcCheckpoint) every() int64 {
	if pc.Every < 1 {
		return 1
	}
	return pc.Every
}

// sentCounter is the transport capability the outbound half of a rank
// snapshot needs; the TCP mesh implements it.
type sentCounter interface {
	SentStreamCounts(src int) []mpi.StreamPos
}

// saveProcSnapshot quiesces this rank's outbound traffic (pending
// Isends delivered, wire flushed — so the stream counts are exact at
// the tile boundary) and hands a snapshot to the persistence hook.
func (st *rankState) saveProcSnapshot(pc *ProcCheckpoint, next int64) error {
	mpi.Waitall(st.pending)
	st.reapPending()
	st.c.FlushWire()
	w := st.c.World()
	snap := &RankSnapshot{
		Rank:     st.rank,
		NextTile: next,
		LDS:      append([]float64(nil), st.la...),
		Recv:     w.StreamCounts(st.rank),
	}
	if sc, ok := w.Wire().(sentCounter); ok {
		snap.Sent = sc.SentStreamCounts(st.rank)
	}
	if err := pc.Save(snap); err != nil {
		return fmt.Errorf("exec: rank %d checkpoint at tile %d: %w", st.rank, next, err)
	}
	return nil
}

// restoreProcSnapshot loads the compute half of a snapshot and returns
// the chain position to resume from. The wire half (stream counters)
// must already have been seeded by the caller before the mesh accepted
// any connection.
func (st *rankState) restoreProcSnapshot(snap *RankSnapshot) (int64, error) {
	if snap.Rank != st.rank {
		return 0, fmt.Errorf("exec: rank %d handed rank %d's snapshot", st.rank, snap.Rank)
	}
	if len(snap.LDS) != len(st.la) {
		return 0, fmt.Errorf("exec: rank %d snapshot LDS has %d values, want %d", st.rank, len(snap.LDS), len(st.la))
	}
	if snap.NextTile < 0 || snap.NextTile > st.p.Dist.ChainLen[st.rank] {
		return 0, fmt.Errorf("exec: rank %d snapshot resumes at tile %d of %d", st.rank, snap.NextTile, st.p.Dist.ChainLen[st.rank])
	}
	copy(st.la, snap.LDS)
	return snap.NextTile, nil
}
