package exec

import (
	"testing"

	"tilespace/internal/ilin"
)

// seedLDS fills both states' LDS arrays with the same distinct values so
// the parallel-vs-serial comparison exercises real addressing: every read
// resolves a different value, and any misrouted write or read shows up as
// a bit difference.
func seedLDS(states ...*rankState) {
	for _, st := range states {
		for i := range st.la {
			st.la[i] = float64(i%101)*0.5 - 12.25
		}
	}
}

// TestComputePhaseParallelMatchesSerial: the pooled wavefront sweep must
// produce a bit-identical LDS to the serial compiled sweep over whole
// chains — interior and boundary shapes, several pool sizes, including
// pools larger than any wavefront (everything inline) and odd sizes that
// split runs unevenly.
func TestComputePhaseParallelMatchesSerial(t *testing.T) {
	p := planProgram(t)
	for _, workers := range []int{2, 3, 8} {
		for r := 0; r < p.Dist.NumProcs(); r++ {
			stS := newRankState(p, nil, r, RunOptions{})
			stP := newRankState(p, nil, r, RunOptions{Workers: workers})
			if stP.workers != workers {
				t.Fatalf("effective workers = %d, want %d", stP.workers, workers)
			}
			stP.wpool = newWorkerPool(stP, workers)
			seedLDS(stS, stP)
			for ti := int64(0); ti < p.Dist.ChainLen[r]; ti++ {
				tile := p.Dist.TileAt(r, ti)
				plS := stS.planFor(tile)
				mulVecInto(stS.pBase, p.TS.T.P, tile)
				stS.computePhasePlanned(plS, ti)
				plP := stP.planFor(tile)
				mulVecInto(stP.pBase, p.TS.T.P, tile)
				stP.computePhaseParallel(plP, ti)
			}
			for i, v := range stS.la {
				if stP.la[i] != v {
					t.Fatalf("workers=%d rank %d: LDS cell %d differs: serial %v, parallel %v",
						workers, r, i, v, stP.la[i])
				}
			}
			stP.wpool.close()
		}
	}
}

// TestLocalPlanInvariants: the compiled local plan must fire every point
// of the shape exactly once, decompose each front into runs covering its
// points exactly, keep every run's claimed write offset consistent with
// the tile plan, and partition each front's runs across the workers.
func TestLocalPlanInvariants(t *testing.T) {
	p := planProgram(t)
	const workers = 3
	for r := 0; r < p.Dist.NumProcs(); r++ {
		st := newRankState(p, nil, r, RunOptions{Workers: workers})
		for ti := int64(0); ti < p.Dist.ChainLen[r]; ti++ {
			pl := st.planFor(p.Dist.TileAt(r, ti))
			lp := st.localFor(pl)
			if lp.workers != workers {
				t.Fatalf("local plan compiled for %d workers, want %d", lp.workers, workers)
			}
			if len(lp.order) != pl.npts {
				t.Fatalf("order has %d entries, shape has %d points", len(lp.order), pl.npts)
			}
			seen := make([]bool, pl.npts)
			for _, idx := range lp.order {
				if seen[idx] {
					t.Fatalf("point %d fires twice", idx)
				}
				seen[idx] = true
			}
			for fi := range lp.fronts {
				f := &lp.fronts[fi]
				var runPts int32
				for ri, run := range f.runs {
					if run.start < f.lo || run.start+run.n > f.hi {
						t.Fatalf("front %d run %d [%d,%d) escapes front [%d,%d)",
							fi, ri, run.start, run.start+run.n, f.lo, f.hi)
					}
					for i := int32(0); i < run.n; i++ {
						if got := pl.writeOff[lp.order[run.start+i]]; got != run.wo+int64(i) {
							t.Fatalf("front %d run %d point %d: write offset %d, run claims %d",
								fi, ri, i, got, run.wo+int64(i))
						}
					}
					runPts += run.n
				}
				if int(runPts) != f.npts || int(f.hi-f.lo) != f.npts {
					t.Fatalf("front %d: %d points, runs cover %d, order range %d",
						fi, f.npts, runPts, f.hi-f.lo)
				}
				if len(f.segs) != workers {
					t.Fatalf("front %d has %d worker segments, want %d", fi, len(f.segs), workers)
				}
				if f.segs[0][0] != 0 || int(f.segs[workers-1][1]) != len(f.runs) {
					t.Fatalf("front %d segments do not span the run list", fi)
				}
				for w := 1; w < workers; w++ {
					if f.segs[w][0] != f.segs[w-1][1] {
						t.Fatalf("front %d: segment %d starts at %d, previous ends at %d",
							fi, w, f.segs[w][0], f.segs[w-1][1])
					}
				}
			}
		}
	}
}

// TestComputePhaseParallelZeroAlloc: the pooled steady state — pool warm,
// local plan cached — must not allocate, matching the serial sweep's bar.
func TestComputePhaseParallelZeroAlloc(t *testing.T) {
	p := planProgram(t)
	st := newRankState(p, nil, 0, RunOptions{Workers: 3})
	st.wpool = newWorkerPool(st, 3)
	defer st.wpool.close()
	tile := p.Dist.TileAt(0, 0)
	pl := st.planFor(tile)
	mulVecInto(st.pBase, p.TS.T.P, tile)
	st.computePhaseParallel(pl, 0) // compile local plan, warm the pool
	if allocs := testing.AllocsPerRun(20, func() {
		st.computePhaseParallel(pl, 0)
	}); allocs != 0 {
		t.Fatalf("pooled compute sweep allocates %.1f times per tile, want 0", allocs)
	}
}

// TestWorkerPanicPropagates: a kernel panic inside a worker must abort
// the rank like the serial path would, with the pool still closeable and
// no deadlocked barrier.
func TestWorkerPanicPropagates(t *testing.T) {
	p := planProgram(t)
	st := newRankState(p, nil, 0, RunOptions{Workers: 3})
	st.wpool = newWorkerPool(st, 3)
	defer st.wpool.close()
	tile := p.Dist.TileAt(0, 0)
	pl := st.planFor(tile)
	mulVecInto(st.pBase, p.TS.T.P, tile)

	kernel := p.Kernel
	defer func() { p.Kernel = kernel }()
	p.Kernel = func(j ilin.Vec, reads [][]float64, out []float64) { panic("kernel boom") }

	defer func() {
		if r := recover(); r != "kernel boom" {
			t.Fatalf("recovered %v, want the worker's panic value", r)
		}
		// The pool must still dispatch after a captured panic.
		p.Kernel = kernel
		st.computePhaseParallel(pl, 0)
	}()
	st.computePhaseParallel(pl, 0)
}
