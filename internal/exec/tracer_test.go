package exec

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
)

// runTraced runs the planProgram fixture with a tracer attached and
// returns the tracer plus the run's Stats.
func runTraced(t *testing.T, opt RunOptions) (*Tracer, mpi.Stats) {
	t.Helper()
	p := planProgram(t)
	tr := NewTracer()
	opt.Trace = tr
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	g, st, err := p.RunParallelOpts(opt)
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(g, p.ScanSpace); diff != 0 {
		t.Fatalf("traced run differs from sequential by %g at %v", diff, at)
	}
	return tr, st
}

// TestTracerRecordsTimeline: every executor variant must produce one
// event per tile, per-rank metrics consistent with mpi.Stats, and a
// timeline the shared simnet analytics can digest.
func TestTracerRecordsTimeline(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  RunOptions
	}{
		{"planned-blocking", RunOptions{}},
		{"planned-overlap", RunOptions{Overlap: true}},
		{"legacy-blocking", RunOptions{Legacy: true}},
		{"legacy-overlap", RunOptions{Legacy: true, Overlap: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, st := runTraced(t, tc.opt)
			trace := tr.Trace()
			if trace.Result.Tiles == 0 || int64(len(trace.Events)) != trace.Result.Tiles {
				t.Fatalf("%d events for %d tiles", len(trace.Events), trace.Result.Tiles)
			}
			if trace.Result.Makespan <= 0 {
				t.Fatalf("makespan %v", trace.Result.Makespan)
			}
			var tiles, msgsIn, valsIn, msgsOut, valsOut int
			for _, m := range tr.PerRank() {
				tiles += m.Tiles
				msgsIn += m.MsgsRecvd
				valsIn += m.ValuesRecvd
				msgsOut += m.MsgsSent
				valsOut += m.ValuesSent
				if m.Tiles > 0 && m.Span <= 0 {
					t.Errorf("rank %d: %d tiles but span %v", m.Rank, m.Tiles, m.Span)
				}
				if m.Compute < 0 || m.Wait < 0 || m.Unpack < 0 || m.Send < 0 || m.Drain < 0 {
					t.Errorf("rank %d: negative phase in %+v", m.Rank, m)
				}
			}
			if int64(tiles) != trace.Result.Tiles {
				t.Errorf("metric tiles %d != %d", tiles, trace.Result.Tiles)
			}
			// Every message sent is received exactly once, and the mpi
			// layer's deterministic counters must agree with the tracer's.
			if int64(msgsIn) != st.Messages || int64(valsIn) != st.Values {
				t.Errorf("tracer received %d msgs / %d values, mpi counted %d / %d", msgsIn, valsIn, st.Messages, st.Values)
			}
			if msgsOut != msgsIn || valsOut != valsIn {
				t.Errorf("tracer sent %d/%d but received %d/%d", msgsOut, valsOut, msgsIn, valsIn)
			}
			if int64(msgsIn) != st.Recvs || int64(valsIn) != st.ValuesRecvd {
				t.Errorf("mpi recv counters (%d, %d) disagree with tracer (%d, %d)", st.Recvs, st.ValuesRecvd, msgsIn, valsIn)
			}
			if sum := tr.Summary(); !strings.Contains(sum, "critical rank") {
				t.Errorf("summary missing straggler line:\n%s", sum)
			}
			if tc.opt.Overlap {
				peak := 0
				for _, m := range tr.PerRank() {
					if m.PendingPeak > peak {
						peak = m.PendingPeak
					}
				}
				if peak == 0 {
					t.Error("overlap run recorded no pending-send high-water mark")
				}
			}
			if !tc.opt.Legacy {
				hits := 0
				for _, m := range tr.PerRank() {
					hits += m.PoolHits
				}
				if hits == 0 {
					t.Error("planned run recorded no buffer-pool hits")
				}
			}
			if _, err := trace.TraceEventJSON(); err != nil {
				t.Errorf("trace export: %v", err)
			}
		})
	}
}

// TestTracerReuse: attaching the same tracer to a second run must reset
// it, not accumulate the first run's events.
func TestTracerReuse(t *testing.T) {
	p := planProgram(t)
	tr := NewTracer()
	for i := 0; i < 2; i++ {
		if _, _, err := p.RunParallelOpts(RunOptions{Trace: tr}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := int64(len(tr.Trace().Events)), p.TS.NumTiles(); got != want {
		t.Fatalf("after reuse: %d events, want %d", got, want)
	}
}

// TestStatsDuringRunRaceFree drives the executor exactly as
// RunParallelOpts does while a second goroutine hammers World.Stats()
// mid-flight, with tracing on: run under -race, any unsynchronized access
// between the per-rank tracers, the mpi counters and the Stats reader
// fails the suite.
func TestStatsDuringRunRaceFree(t *testing.T) {
	p := planProgram(t)
	lo, hi, err := p.TS.Nest.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	g := NewGlobal(lo, hi, p.Width)
	tr := NewTracer()
	opt := RunOptions{Overlap: true, Trace: tr}
	tr.reset(p.Dist.NumProcs())

	world := mpi.NewWorldOpts(p.Dist.NumProcs(), opt.Net)
	var stop atomic.Bool
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for !stop.Load() {
			st := world.Stats()
			_ = st.Messages + st.Recvs + st.ValuesRecvd
		}
	}()
	err = world.RunE(func(c *mpi.Comm) {
		if err := p.runRank(c, g, opt); err != nil {
			t.Error(err)
		}
	})
	stop.Store(true)
	<-pollDone
	if err != nil {
		t.Fatal(err)
	}
	tr.drain()
	if int64(len(tr.Trace().Events)) != p.TS.NumTiles() {
		t.Fatalf("traced %d events, want %d", len(tr.Trace().Events), p.TS.NumTiles())
	}
}

// TestAbortedRunLeavesPoolConsistent: a rank dying mid-chain (kernel
// panic) aborts the world with in-flight owned buffers outstanding. The
// abort must surface as an error — not as the pool's double-recycle
// panic, which would mean an error path recycled a buffer it no longer
// owned.
func TestAbortedRunLeavesPoolConsistent(t *testing.T) {
	p := planProgram(t)
	var calls atomic.Int64
	kernel := p.Kernel
	p.Kernel = func(j ilin.Vec, reads [][]float64, out []float64) {
		// Trip partway through the schedule (the fixture has 256 points),
		// late enough that halo messages and pooled buffers are already
		// circulating between ranks.
		if calls.Add(1) == 120 {
			panic("kernel abort (test)")
		}
		kernel(j, reads, out)
	}
	for _, overlap := range []bool{false, true} {
		calls.Store(0)
		_, _, err := p.RunParallelOpts(RunOptions{Overlap: overlap, Trace: NewTracer()})
		if err == nil {
			t.Fatalf("overlap=%v: aborted run returned no error", overlap)
		}
		if !strings.Contains(err.Error(), "kernel abort (test)") {
			t.Fatalf("overlap=%v: error %q is not the kernel abort — a cleanup path misbehaved", overlap, err)
		}
	}
}

// TestExecSlowComputeSurvivesShortWatchdog is the executor-level
// regression for the watchdog false positive: with injected per-point
// compute far longer than the watchdog period, downstream ranks park in
// Recv for many periods while upstream ranks compute — healthy pipeline
// fill that must not be aborted.
func TestExecSlowComputeSurvivesShortWatchdog(t *testing.T) {
	p := planProgram(t)
	_, _, err := p.RunParallelOpts(RunOptions{
		Overlap:    true,
		PointDelay: 2 * time.Millisecond, // tiles take tens of ms
		Net:        mpi.Options{Watchdog: 25 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("healthy slow-compute run tripped the watchdog: %v", err)
	}
}
