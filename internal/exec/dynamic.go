package exec

import (
	"fmt"
	"sync"
	"time"

	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/verify"
)

// This file is the dynamic half of the hybrid static/dynamic scheduler.
//
// The static executor (runRank) is the paper's generated code: each tile
// performs RECEIVE → compute → SEND at its lex-time slot, and the RECEIVE
// blocks on each inbound message in the compiled stream order even when
// messages for later tiles are already sitting in the mailbox. The dynamic
// mode keeps the static order as the priority tie-break — within a rank,
// tiles still fire in chain order, which the wire forces anyway: messages
// carry no tile identity beyond their (source, tag) FIFO stream position,
// so a rank that reordered its sends (or its receives within a stream)
// would unpair every message on the stream. What becomes dynamic is the
// timing:
//
//   - Every inbound message of the whole chain is posted as an Irecv up
//     front, in the static claim order per stream (so ticket order equals
//     wire order), and claimed+unpacked eagerly the moment it arrives —
//     tiles effectively decrement their dependence counters as messages
//     land, not when the schedule reaches them.
//   - The rank blocks only for the lex-lowest unfired tile's missing
//     messages — exactly the task the static tie-break says to run next —
//     then fires it onto the intra-tile worker pool (RunOptions.Workers).
//   - Sends are always asynchronous (Isend): the transfer runs on the NIC
//     goroutine while the rank advances, so a slow or jittery link charges
//     the link, not the sender's critical path.
//
// Because each halo cell has exactly one writer (verify's comm-exactness
// theorem) and unpacking is idempotent per message, eager unpacking
// commutes across streams and the computed values are bit-identical to
// the static path; Stats equal the static overlap mode's because the wire
// sees the identical message sequence. The chaos and differential suites
// assert both.
//
// Crash recovery composes with a twist: the static path re-receives
// claimed messages from the checkpoint's receive log, but eager claiming
// means a message for a post-crash tile may have been consumed before the
// snapshot that survives it. Dynamic mode therefore bypasses the receive
// log entirely: each claimed message keeps its payload until a snapshot
// has captured its unpacked cells (markSnapped), and a crash re-applies
// the retained payloads on top of the restored LDS (reapply) — the wire
// never replays a claimed message, and Stats still count it exactly once.

// FiringLog records the observed firing order of a dynamic run for
// post-hoc certification by verify.CheckDynamicOrder. One lock serializes
// all ranks' appends, so a record's Seq is its index in the single
// observed linearization: any happens-before edge between two firings —
// program order within a rank, or a message send happening-before its
// claim — implies Seq order.
//
// Under crash-restart a rewound rank re-executes tiles it already fired;
// only the first firing of each tile is recorded (keep-first). The first
// incarnation is the one whose outputs the rest of the cluster may have
// already consumed, so its sequence is the linearization that must extend
// the dependence order — a re-fire's position would not be (a successor
// fed by a delivered pre-crash message can legitimately fire before the
// re-fire).
type FiringLog struct {
	mu   sync.Mutex
	recs []verify.FiringRecord
}

// note appends the next firing record; called once per tile, at its first
// firing, before the tile's sends are issued.
func (fl *FiringLog) note(rank int, slot int64, tile ilin.Vec) {
	fl.mu.Lock()
	fl.recs = append(fl.recs, verify.FiringRecord{
		Seq:  int64(len(fl.recs)),
		Rank: rank,
		Slot: slot,
		Tile: append(ilin.Vec(nil), tile...),
	})
	fl.mu.Unlock()
}

// reset clears the log for a fresh run (RunParallelOpts does this so a
// log can be reused across runs).
func (fl *FiringLog) reset() {
	fl.mu.Lock()
	fl.recs = fl.recs[:0]
	fl.mu.Unlock()
}

// Records returns a copy of the recorded firing order.
func (fl *FiringLog) Records() []verify.FiringRecord {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return append([]verify.FiringRecord(nil), fl.recs...)
}

// dynMsg is one expected inbound message of the dynamic schedule: the
// (predecessor tile, processor direction) pair the static RECEIVE would
// claim for chain slot t, with its posted Irecv and its claim state.
type dynMsg struct {
	t    int64    // destination chain slot (the tile this message unblocks)
	pred ilin.Vec // predecessor tile: plan lookup + unpack base
	di   int      // processor-direction index = message tag
	src  int      // source rank
	req  *mpi.Request

	unpacked bool
	// Checkpointing only: the claimed payload is retained until a snapshot
	// has captured its unpacked cells, so a crash can re-apply it (the
	// mailbox cannot replay a claimed message).
	data    []float64
	snapped bool
}

// dynStream is the per-(source, tag) claim queue: msgs in wire FIFO order,
// head the first not-yet-claimed entry. Claims must advance head in order
// — tickets complete in posting order — so eager draining is one Test per
// stream head, not a scan.
type dynStream struct {
	msgs []*dynMsg
	head int
}

// dynState is a rank's dynamic-mode bookkeeping.
type dynState struct {
	byTile  [][]*dynMsg // per chain slot, in static claim order
	streams []*dynStream
	all     []*dynMsg
}

// buildDynamic enumerates every inbound message of the rank's whole chain
// — the exact (pred, direction) pairs receivePhasePlanned would claim, in
// the exact order — and posts one Irecv per message up front. Per stream,
// posting order is the static claim order, which is the sender's emission
// order, so ticket k pairs with the k-th wire message of the stream.
func (st *rankState) buildDynamic() (*dynState, error) {
	d := st.p.Dist
	dy := &dynState{byTile: make([][]*dynMsg, d.ChainLen[st.rank])}
	byKey := map[[2]int]*dynStream{}
	for t := int64(0); t < d.ChainLen[st.rank]; t++ {
		tile := d.TileAt(st.rank, t)
		for _, si := range st.dsOrder {
			di := st.dsDmIdx[si]
			if di < 0 {
				continue // same-processor dependence: data is already in the LDS
			}
			dS := st.p.TS.DS[si]
			dm := d.DM[di]
			pred := tile.Sub(dS)
			if !st.p.TS.ValidTile(pred) {
				continue
			}
			if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(tile) {
				continue
			}
			if st.planFor(pred).dirs[di].total == 0 {
				continue
			}
			src := st.recvRank[di]
			if src < 0 {
				return nil, fmt.Errorf("exec: predecessor tile %v has no rank", pred)
			}
			m := &dynMsg{t: t, pred: pred, di: di, src: src}
			dy.byTile[t] = append(dy.byTile[t], m)
			dy.all = append(dy.all, m)
			key := [2]int{src, di}
			s := byKey[key]
			if s == nil {
				s = &dynStream{}
				byKey[key] = s
				dy.streams = append(dy.streams, s)
			}
			s.msgs = append(s.msgs, m)
		}
	}
	for _, m := range dy.all {
		m.req = st.c.Irecv(m.src, m.di)
	}
	return dy, nil
}

// drain claims and unpacks every message that has already arrived, on any
// stream — the dynamic intake. Claims advance each stream's head in FIFO
// order; one failed Test parks the stream until the next drain.
func (dy *dynState) drain(st *rankState) error {
	for _, s := range dy.streams {
		for s.head < len(s.msgs) {
			m := s.msgs[s.head]
			if m.unpacked {
				s.head++
				continue
			}
			data, ok := m.req.Test()
			if !ok {
				break
			}
			if err := st.unpackDynamic(m, data, 0); err != nil {
				return err
			}
			s.head++
		}
	}
	return nil
}

// await blocks for one specific missing message of the current tile — the
// static tie-break says this tile is next, so its messages are the only
// ones worth blocking on. The blocking Wait is the watchdog-aware ticket
// claim, exactly like the static receive.
func (dy *dynState) await(st *rankState, m *dynMsg) error {
	var t0 time.Time
	if st.tr != nil {
		t0 = time.Now()
	}
	data := m.req.Wait()
	var waited time.Duration
	if st.tr != nil {
		waited = time.Since(t0)
	}
	return st.unpackDynamic(m, data, waited)
}

// unpackDynamic applies one claimed message to the LDS: the predecessor
// plan's run list shifted by the constant pack→unpack offset, identical to
// receivePhasePlanned. With checkpointing on, the payload is retained
// (copied) until a snapshot covers the unpacked cells.
func (st *rankState) unpackDynamic(m *dynMsg, data []float64, waited time.Duration) error {
	d := st.p.Dist
	w := st.p.Width
	dir := &st.planFor(m.pred).dirs[m.di]
	if int64(len(data)) != dir.total*int64(w) {
		return fmt.Errorf("exec: rank %d chain slot %d: message from rank %d tag %d has %d values, expected %d", st.rank, m.t, m.src, m.di, len(data), dir.total*int64(w))
	}
	if st.tr != nil {
		st.tr.noteRecv(waited, 0, len(data))
	}
	if st.ckpt != nil {
		m.data = append([]float64(nil), data...)
	}
	base := (m.pred[d.M]-d.ChainStart[st.rank])*st.chainStep + st.dirShift[m.di]
	pos := 0
	for _, run := range dir.runs {
		cell := (run.Off + base) * int64(w)
		nn := int(run.N) * w
		copy(st.la[cell:cell+int64(nn)], data[pos:pos+nn])
		st.markDirty(cell + int64(nn))
		pos += nn
	}
	m.unpacked = true
	st.pool.put(data)
	return nil
}

// reapply re-writes a retained payload into the (just restored) LDS after
// a crash. No wire activity, no Stats, no tracer counts: the claim was
// already counted at its one successful receive.
func (st *rankState) reapply(m *dynMsg) {
	d := st.p.Dist
	w := st.p.Width
	dir := &st.planFor(m.pred).dirs[m.di]
	base := (m.pred[d.M]-d.ChainStart[st.rank])*st.chainStep + st.dirShift[m.di]
	pos := 0
	for _, run := range dir.runs {
		cell := (run.Off + base) * int64(w)
		nn := int(run.N) * w
		copy(st.la[cell:cell+int64(nn)], m.data[pos:pos+nn])
		st.markDirty(cell + int64(nn))
		pos += nn
	}
}

// markSnapped runs right after a snapshot: every unpack the snapshot
// captured (markDirty raised the high-water mark over its cells before the
// copy) no longer needs its retained payload.
func (dy *dynState) markSnapped() {
	for _, m := range dy.all {
		if m.unpacked && !m.snapped {
			m.snapped = true
			m.data = nil
		}
	}
}

// crashDynamic is the dynamic-mode crash: the shared recovery protocol
// (drop pending sends, restore the LDS snapshot, build the resend cursor)
// plus re-application of claimed-but-unsnapshotted messages, which the
// restore wiped from the LDS and the wire cannot redeliver. Unclaimed
// messages keep their live Irecv tickets — a crash drops outbound queues
// only — so the resumed chain claims them as if nothing happened.
func (st *rankState) crashDynamic(dy *dynState, t int64) int64 {
	resume := st.crash(t)
	for _, m := range dy.all {
		if m.unpacked && !m.snapped {
			st.reapply(m)
		}
	}
	return resume
}

// runRankDynamic is the dynamic-mode rank body; see the file comment for
// the schedule it implements and runRank for the static counterpart.
func (p *Program) runRankDynamic(c *mpi.Comm, g *Global, opt RunOptions) error {
	r := c.Rank()
	d := p.Dist
	st := newRankState(p, c, r, opt)
	if st.workers > 1 {
		st.wpool = newWorkerPool(st, st.workers)
		defer st.wpool.close()
	}
	dy, err := st.buildDynamic()
	if err != nil {
		return err
	}
	crashAt := st.faults.CrashTile(r)
	fired := make([]bool, d.ChainLen[r])
	for t := int64(0); t < d.ChainLen[r]; t++ {
		if t == crashAt && (st.ckpt == nil || !st.ckpt.crashed) {
			t = st.crashDynamic(dy, t)
		}
		tile := d.TileAt(r, t)
		if st.tr != nil {
			st.tr.beginTile()
		}
		pl := st.planFor(tile)
		st.tilePlans[t] = pl
		// Dynamic intake first: whatever the wire has already delivered —
		// for this tile or any later one — is claimed and unpacked now.
		if err := dy.drain(st); err != nil {
			return err
		}
		// Then block only for this tile's still-missing messages: the
		// static tie-break makes it the unique next task on this rank.
		for _, m := range dy.byTile[t] {
			if m.unpacked {
				continue
			}
			if err := dy.await(st, m); err != nil {
				return err
			}
		}
		mulVecInto(st.pBase, p.TS.T.P, tile)
		st.initPhasePlanned(pl, tile, t)
		if st.tr != nil {
			st.tr.noteRecvDone()
		}
		// The tile fires: all dependence counters hit zero. Keep-first
		// across crash rewinds — see FiringLog.
		if !fired[t] {
			fired[t] = true
			if opt.Firing != nil {
				opt.Firing.note(r, t, tile)
			}
		}
		if st.wpool != nil {
			st.computePhaseParallel(pl, t)
		} else {
			st.computePhasePlanned(pl, t)
		}
		if st.tr != nil {
			st.tr.noteCompDone()
		}
		if err := st.sendPhasePlanned(tile, pl, t); err != nil {
			return err
		}
		if st.tr != nil {
			st.tr.endTile(tile)
		}
		c.NoteProgress()
		st.commitTile(t)
		if ck := st.ckpt; ck != nil && (t+1)%ck.every == 0 {
			dy.markSnapped()
		}
	}
	if err := st.checkReplayDrained(); err != nil {
		return err
	}
	mpi.Waitall(st.pending)
	if st.tr != nil {
		st.tr.finish(&st.pool, st.wpool)
	}
	st.writeBack(g)
	return nil
}
