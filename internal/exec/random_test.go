package exec

import (
	"testing"
	"testing/quick"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/tiling"
)

// TestQuickRandomTilings2D is the end-to-end property test: for random
// integer tile-edge matrices P (hence arbitrary parallelepiped tilings)
// and dependence vectors drawn from P's own columns (legal by
// construction: H·(P·c) = c ≥ 0), the parallel execution must equal the
// sequential one exactly on a random box.
func TestQuickRandomTilings2D(t *testing.T) {
	f := func(p11, p12, p21, p22 uint8, hi1, hi2 uint8, mapDim bool) bool {
		// Tile edges with entries in [1,4] on the diagonal and [-2,2] off
		// it; skip singular or overly skewed matrices.
		p := ilin.MatFromRows(
			[]int64{int64(p11%4) + 1, int64(p12%5) - 2},
			[]int64{int64(p21%5) - 2, int64(p22%4) + 1},
		)
		if d := p.Det(); d == 0 || d < 0 {
			return true
		}
		tr, err := tiling.FromP(p)
		if err != nil {
			return true
		}
		// Dependence candidates: columns of P and their sum (all satisfy
		// H·d ≥ 0); keep the lexicographically positive ones.
		var depCols []ilin.Vec
		for _, cand := range []ilin.Vec{p.Col(0), p.Col(1), p.Col(0).Add(p.Col(1))} {
			if cand.LexPositive() {
				depCols = append(depCols, cand)
			}
		}
		if len(depCols) == 0 {
			return true
		}
		deps := ilin.NewMat(2, len(depCols))
		for i, d := range depCols {
			deps.SetCol(i, d)
		}
		nest, err := loopnest.Box([]string{"i", "j"},
			[]int64{0, 0}, []int64{int64(hi1%12) + 6, int64(hi2%12) + 6}, deps)
		if err != nil {
			return true
		}
		ts, err := tiling.Analyze(nest, tr.H)
		if err != nil {
			// Legal-but-unsupported cases (dependence longer than tile,
			// non-{0,1} tile deps) are rejected with a clear error; that
			// is correct behaviour, not a failure.
			return true
		}
		m := 0
		if mapDim {
			m = 1
		}
		prog, err := NewProgram(ts, m, 1, sumKernel, nil)
		if err != nil {
			// stride/extent divisibility violations are legitimate
			// rejections
			return true
		}
		seq, err := prog.RunSequential()
		if err != nil {
			return false
		}
		par, _, err := prog.RunParallel()
		if err != nil {
			return false
		}
		diff, _ := seq.MaxAbsDiff(par, prog.ScanSpace)
		if diff != 0 {
			return false
		}
		// And the §2.3 tiled reordering must agree too.
		tiled, err := prog.RunTiledSequential()
		if err != nil {
			return false
		}
		diff, _ = seq.MaxAbsDiff(tiled, prog.ScanSpace)
		return diff == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFourDimensionalNest exercises n = 4 (nothing in the framework is
// specialized to 3-D): a 4-deep nest with unit and diagonal dependencies
// under a rectangular tiling, fully verified.
func TestFourDimensionalNest(t *testing.T) {
	deps := ilin.MatFromRows(
		[]int64{1, 0, 0, 0, 1},
		[]int64{0, 1, 0, 0, 1},
		[]int64{0, 0, 1, 0, 0},
		[]int64{0, 0, 0, 1, 1},
	)
	nest := loopnest.MustBox([]string{"a", "b", "c", "d"},
		[]int64{0, 0, 0, 0}, []int64{5, 7, 5, 6}, deps)
	tr, err := tiling.Rectangular(2, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := nest.Size()
	if got := ts.TotalPoints(); got != want {
		t.Fatalf("TotalPoints = %d, want %d", got, want)
	}
	p, err := NewProgram(ts, -1, 1, sumKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	comparePrograms(t, p)
}

// TestNonRect4D: a skewed tile shape in four dimensions.
func TestNonRect4D(t *testing.T) {
	p := ilin.MatFromRows(
		[]int64{2, 0, 0, 0},
		[]int64{0, 2, 0, 0},
		[]int64{0, 0, 3, 0},
		[]int64{2, 0, 0, 3},
	)
	tr, err := tiling.FromP(p)
	if err != nil {
		t.Fatal(err)
	}
	deps := ilin.MatFromRows(
		[]int64{1, 0},
		[]int64{0, 1},
		[]int64{0, 0},
		[]int64{1, 0},
	)
	if !tr.Legal(deps) {
		t.Fatal("expected legal 4-D tiling")
	}
	nest := loopnest.MustBox([]string{"a", "b", "c", "d"},
		[]int64{0, 0, 0, 0}, []int64{7, 5, 5, 8}, deps)
	ts, err := tiling.Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(ts, 3, 1, sumKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	comparePrograms(t, prog)
}
