package exec_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
)

// This file is the transport differential matrix: every workload ×
// tiling family of the differential suite must produce a bit-identical
// Global AND bit-identical mpi.Stats whether its messages move over the
// in-process channel fabric or over real loopback TCP sockets with
// framed, coalesced sends. WireStats (frames, batches, bytes) are the
// only permitted difference — they do not exist on the channel fabric.

func TestTransportMatrixDifferential(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && slowDiffCases[c.name] {
				t.Skipf("%s is one of the two slowest differential cases; run without -short", c.name)
			}
			for _, overlap := range []bool{false, true} {
				gC, sC, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
				if err != nil {
					t.Fatalf("channel overlap=%v: %v", overlap, err)
				}
				before := runtime.NumGoroutine()
				gT, sT, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap, Wire: mpi.WireTCP})
				if err != nil {
					t.Fatalf("tcp overlap=%v: %v", overlap, err)
				}
				if diff, at := gC.MaxAbsDiff(gT, c.p.ScanSpace); diff != 0 {
					t.Fatalf("overlap=%v: tcp differs from channel by %g at %v", overlap, diff, at)
				}
				if !reflect.DeepEqual(sC, sT) {
					t.Fatalf("overlap=%v: traffic stats differ across transports\nchannel: %+v\ntcp:     %+v", overlap, sC, sT)
				}
				checkGoroutines(t, before)
			}
		})
	}
}

// TestChaosMatrixOverTCP runs the chaos fault classes — slow rank,
// delayed jittery links, transient send failures, crash with
// checkpointed restart — over the TCP transport and requires the
// fault-free channel-fabric Global and Stats, bit for bit. This is the
// crash-restart machinery recovering over real sockets.
func TestChaosMatrixOverTCP(t *testing.T) {
	seed := chaosSeed(t)
	for _, c := range chaosCases(t) {
		c := c
		procs := c.p.Dist.NumProcs()
		for _, overlap := range []bool{false, true} {
			want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
			if err != nil {
				t.Fatalf("%s fault-free overlap=%v: %v", c.name, overlap, err)
			}
			for _, f := range chaosFaults(seed, procs, c.p.Dist.ChainLen) {
				f := f
				t.Run(fmt.Sprintf("%s/overlap=%v/%s", c.name, overlap, f.name), func(t *testing.T) {
					before := runtime.NumGoroutine()
					got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
						Overlap:    overlap,
						Faults:     f.plan,
						Checkpoint: f.ck,
						Wire:       mpi.WireTCP,
					})
					if err != nil {
						t.Fatalf("faulty tcp run: %v", err)
					}
					if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
						t.Fatalf("faulty tcp run differs from fault-free channel run by %g at %v", diff, at)
					}
					if f.name == "transient-send-failure" {
						if gotStats.SendRetries == 0 {
							t.Error("no retries injected — the fault class is inert at this seed")
						}
						gotStats = dropRetries(gotStats)
					}
					if !reflect.DeepEqual(wantStats, gotStats) {
						t.Fatalf("traffic stats drifted across transport under faults\nchannel fault-free: %+v\ntcp faulty:         %+v", wantStats, gotStats)
					}
					checkGoroutines(t, before)
				})
			}
		}
	}
}

// TestPooledTCPWorldReuse is the serve pool's TCP contract: one TCP
// world, Reset between runs, must stay bit-identical to fresh channel
// runs across repeated executions and mode changes.
func TestPooledTCPWorldReuse(t *testing.T) {
	var c *diffCase
	for _, dc := range diffCases(t) {
		if dc.name == "sor/rect" {
			dc := dc
			c = &dc
			break
		}
	}
	if c == nil {
		t.Fatal("sor/rect case missing")
	}
	refs := map[bool]struct {
		g *exec.Global
		s mpi.Stats
	}{}
	for _, overlap := range []bool{false, true} {
		g, s, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
		if err != nil {
			t.Fatal(err)
		}
		refs[overlap] = struct {
			g *exec.Global
			s mpi.Stats
		}{g, s}
	}

	w, err := mpi.NewTCPWorld(c.p.Dist.NumProcs(), mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 4; i++ {
		overlap := i%2 == 1
		got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap, World: w})
		if err != nil {
			t.Fatalf("reused tcp run %d: %v", i, err)
		}
		ref := refs[overlap]
		if diff, at := ref.g.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
			t.Fatalf("reused tcp run %d differs by %g at %v", i, diff, at)
		}
		if !reflect.DeepEqual(ref.s, gotStats) {
			t.Fatalf("reused tcp run %d stats drifted\nwant %+v\n got %+v", i, ref.s, gotStats)
		}
	}
}

// TestProcCheckpointSnapshots pins the process-checkpoint save path:
// snapshots appear at the configured cadence with coherent chain
// positions and stream counts, and taking them does not perturb the
// result or the traffic stats.
func TestProcCheckpointSnapshots(t *testing.T) {
	var c *diffCase
	for _, dc := range diffCases(t) {
		if dc.name == "jacobi/rect" {
			dc := dc
			c = &dc
			break
		}
	}
	if c == nil {
		t.Fatal("jacobi/rect case missing")
	}
	want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	snaps := map[int][]*exec.RankSnapshot{}
	got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
		Wire: mpi.WireTCP,
		Net:  mpi.Options{Watchdog: 10 * time.Second},
		ProcCheckpoint: &exec.ProcCheckpoint{
			Every: 2,
			Save: func(s *exec.RankSnapshot) error {
				mu.Lock()
				snaps[s.Rank] = append(snaps[s.Rank], s)
				mu.Unlock()
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
		t.Fatalf("checkpointed run differs by %g at %v", diff, at)
	}
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("checkpointed run stats drifted\nwant %+v\n got %+v", wantStats, gotStats)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
	for r, list := range snaps {
		for i, s := range list {
			if s.NextTile%2 != 0 || s.NextTile <= 0 {
				t.Fatalf("rank %d snapshot %d at unexpected tile %d", r, i, s.NextTile)
			}
			if len(s.LDS) == 0 {
				t.Fatalf("rank %d snapshot %d has empty LDS", r, i)
			}
			if i > 0 && s.NextTile <= list[i-1].NextTile {
				t.Fatalf("rank %d snapshots out of order: %d then %d", r, list[i-1].NextTile, s.NextTile)
			}
		}
	}
}

// TestProcCheckpointExclusive pins the misuse guard.
func TestProcCheckpointExclusive(t *testing.T) {
	for _, dc := range diffCases(t) {
		if dc.name != "sor/rect" {
			continue
		}
		_, _, err := dc.p.RunParallelOpts(exec.RunOptions{
			Checkpoint:     &exec.CheckpointOptions{Every: 1},
			ProcCheckpoint: &exec.ProcCheckpoint{Every: 1, Save: func(*exec.RankSnapshot) error { return nil }},
		})
		if err == nil {
			t.Fatal("Checkpoint+ProcCheckpoint accepted")
		}
		return
	}
	t.Fatal("sor/rect case missing")
}
