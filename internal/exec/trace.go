package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tilespace/internal/ilin"
	"tilespace/internal/simnet"
)

// This file is the measured counterpart of internal/simnet's event
// timeline: a per-rank tracer that records wall-clock spans for each
// tile's receive/unpack, compute and pack/send phases in the real
// runtime. Measured events use the simnet.Event schema (seconds since the
// run's epoch), so the simulator's Gantt, critical-rank and phase-fraction
// analytics apply unchanged to real traces — which is exactly what lets
// the cost model be validated against measurement.

// RankMetrics aggregates one rank's measured runtime behaviour over its
// whole tile chain. Durations partition the rank's span: Wait (blocked in
// Recv), Unpack (receive-phase work outside the blocking wait, i.e. LDS
// unpack plus boundary Initial injection), Compute (kernel sweep incl.
// injected PointDelay), Send (pack + send issue), Drain (end-of-chain
// Waitall on in-flight Isends).
type RankMetrics struct {
	Rank  int
	Tiles int

	Wait    time.Duration
	Unpack  time.Duration
	Compute time.Duration
	Send    time.Duration
	Drain   time.Duration
	// Span is first tile start → drain end (excludes the final global
	// write-back, which is outside the §3.2 protocol).
	Span time.Duration

	MsgsRecvd   int
	ValuesRecvd int
	MsgsSent    int
	ValuesSent  int
	// Queued totals the time received messages sat delivered-but-unclaimed
	// in the mailbox: high values mean this rank, not the network, is the
	// bottleneck on its inbound edges.
	Queued time.Duration

	// Buffer-pool effectiveness and the overlap depth actually reached.
	PoolHits    int
	PoolMisses  int
	PendingPeak int

	// Fault-recovery activity: Crashes counts injected crashes this rank
	// survived (restarting from a checkpoint), Resent the messages the
	// recovery layer re-issued because the crash dropped them. These are
	// measurements (they depend on real delivery timing), which is why
	// they live here and not in the deterministic mpi.Stats.
	Crashes int
	Resent  int

	// Intra-tile pool attribution: Workers is the rank's pool size (1 =
	// serial compute), WorkerBusy[w] the wall time worker w spent inside
	// wavefront segments. The gap between max and min WorkerBusy is the
	// pool's load imbalance; Compute minus max(WorkerBusy) is the
	// dispatch/barrier overhead plus the inline small-front share.
	Workers    int
	WorkerBusy []time.Duration
}

// Tracer collects per-rank measured timelines from one RunParallelOpts
// run; attach it via RunOptions.Trace. Each rank records into private
// state during the run and publishes once at chain end, so tracing adds
// two time.Now calls per phase and no cross-rank synchronization to the
// steady state. A Tracer may be reused across runs; each run resets it.
type Tracer struct {
	// Live, when non-nil, receives every tile's measured event the moment
	// its rank records it — the streaming feed the serve layer forwards to
	// clients as per-rank progress. Delivery is best-effort: a full channel
	// drops the event rather than stalling the executing rank, and the
	// tracer never closes the channel (the owner does, after the run
	// returns). Aggregate metrics and the collected timeline are complete
	// regardless of drops. Set it before attaching the tracer to a run.
	Live chan<- simnet.Event

	epoch  time.Time
	events chan []simnet.Event
	ranks  []RankMetrics

	collected []simnet.Event
	drained   bool
}

// NewTracer returns an empty tracer ready to attach to RunOptions.Trace.
func NewTracer() *Tracer { return &Tracer{} }

// reset prepares the tracer for a run over the given number of ranks.
func (tr *Tracer) reset(ranks int) {
	tr.epoch = time.Now()
	tr.events = make(chan []simnet.Event, ranks)
	tr.ranks = make([]RankMetrics, ranks)
	tr.collected = nil
	tr.drained = false
}

// drain gathers the per-rank event batches published at chain end. Called
// after World.RunE returns, so every rank has either flushed or died.
func (tr *Tracer) drain() {
	if tr.drained {
		return
	}
	tr.drained = true
	for {
		select {
		case evs := <-tr.events:
			tr.collected = append(tr.collected, evs...)
		default:
			sort.Slice(tr.collected, func(i, j int) bool {
				if tr.collected[i].Rank != tr.collected[j].Rank {
					return tr.collected[i].Rank < tr.collected[j].Rank
				}
				return tr.collected[i].Start < tr.collected[j].Start
			})
			return
		}
	}
}

// PerRank returns the per-rank aggregate metrics of the last run.
func (tr *Tracer) PerRank() []RankMetrics { return tr.ranks }

// Trace assembles the measured timeline as a simnet.Trace, making every
// simulator analytic (Gantt, CriticalRank, PhaseFractions, Summary,
// TraceEventJSON) available over real measurements. Result fields that
// only the simulator knows (SeqTime, Speedup, Points, Steps) are zero.
func (tr *Tracer) Trace() *simnet.Trace {
	tr.drain()
	res := &simnet.Result{Procs: len(tr.ranks)}
	var compute float64
	for _, m := range tr.ranks {
		res.Tiles += int64(m.Tiles)
		res.Messages += int64(m.MsgsRecvd)
		res.BytesSent += int64(m.ValuesRecvd) * 8
		compute += m.Compute.Seconds()
	}
	for _, e := range tr.collected {
		if e.End > res.Makespan {
			res.Makespan = e.End
		}
	}
	if res.Makespan > 0 && res.Procs > 0 {
		res.Utilization = compute / (float64(res.Procs) * res.Makespan)
	}
	return &simnet.Trace{Result: res, Events: tr.collected}
}

// Summary renders the per-rank phase table plus the straggler line: which
// rank bounds the makespan and which tile chain tail it spent waiting on.
func (tr *Tracer) Summary() string {
	t := tr.Trace()
	var b strings.Builder
	fmt.Fprintf(&b, "measured run: %d ranks, %d tiles, %d msgs, %d bytes, makespan %.4fs\n",
		t.Result.Procs, t.Result.Tiles, t.Result.Messages, t.Result.BytesSent, t.Result.Makespan)
	fmt.Fprintf(&b, "%5s %6s %10s %10s %10s %10s %10s %6s %6s %8s\n",
		"rank", "tiles", "wait", "unpack", "compute", "send", "drain", "msgs", "pend", "pool")
	for _, m := range tr.ranks {
		hitRate := 0.0
		if n := m.PoolHits + m.PoolMisses; n > 0 {
			hitRate = float64(m.PoolHits) / float64(n)
		}
		fmt.Fprintf(&b, "%5d %6d %10s %10s %10s %10s %10s %6d %6d %7.0f%%\n",
			m.Rank, m.Tiles, round(m.Wait), round(m.Unpack), round(m.Compute),
			round(m.Send), round(m.Drain), m.MsgsRecvd, m.PendingPeak, hitRate*100)
	}
	if len(t.Events) > 0 {
		crit, idle := t.CriticalRank()
		last := ""
		var lastEnd float64
		for _, e := range t.Events {
			if e.Rank == crit && e.End >= lastEnd {
				lastEnd, last = e.End, e.Tile
			}
		}
		fmt.Fprintf(&b, "critical rank %d (%.0f%% idle), last tile %s at %.4fs\n",
			crit, idle*100, last, lastEnd)
	}
	return b.String()
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// rankTracer is one rank's private recording state; it touches no shared
// memory until the single flush at chain end.
type rankTracer struct {
	tr   *Tracer
	rank int

	events []simnet.Event
	m      RankMetrics

	first     time.Time
	tileStart time.Time
	recvDone  time.Time
	compDone  time.Time
	lastEnd   time.Time
	wait      time.Duration // blocking receive wait within the current tile
}

func newRankTracer(tr *Tracer, rank int) *rankTracer {
	return &rankTracer{tr: tr, rank: rank, m: RankMetrics{Rank: rank}}
}

func (rt *rankTracer) sec(t time.Time) float64 { return t.Sub(rt.tr.epoch).Seconds() }

func (rt *rankTracer) beginTile() {
	rt.tileStart = time.Now()
	if rt.first.IsZero() {
		rt.first = rt.tileStart
	}
	rt.wait = 0
}

// noteRecv records one received message: how long the rank blocked for it
// and how long it had been sitting delivered before the rank asked.
func (rt *rankTracer) noteRecv(wait, queued time.Duration, values int) {
	rt.wait += wait
	if queued > 0 {
		rt.m.Queued += queued
	}
	rt.m.MsgsRecvd++
	rt.m.ValuesRecvd += values
}

func (rt *rankTracer) noteSend(values, pending int) {
	rt.m.MsgsSent++
	rt.m.ValuesSent += values
	if pending > rt.m.PendingPeak {
		rt.m.PendingPeak = pending
	}
}

func (rt *rankTracer) noteRecvDone() { rt.recvDone = time.Now() }
func (rt *rankTracer) noteCompDone() { rt.compDone = time.Now() }

// noteFault records a fault marker (kind "crash" or "restart") at the
// given chain slot: an instant event (all timestamps equal) that the
// Gantt paints as '!' and the Chrome export emits as an instant, without
// disturbing the phase-fraction analytics.
func (rt *rankTracer) noteFault(kind string, slot int64) {
	s := rt.sec(time.Now())
	ev := simnet.Event{
		Rank: rt.rank, Tile: fmt.Sprintf("slot=%d", slot), Kind: kind,
		Start: s, RecvDone: s, CompDone: s, End: s,
	}
	rt.events = append(rt.events, ev)
	if rt.tr.Live != nil {
		select {
		case rt.tr.Live <- ev:
		default:
		}
	}
	if kind == "crash" {
		rt.m.Crashes++
	}
}

// noteResend counts one message the recovery layer re-issued.
func (rt *rankTracer) noteResend() { rt.m.Resent++ }

func (rt *rankTracer) endTile(tile ilin.Vec) {
	now := time.Now()
	unpack := rt.recvDone.Sub(rt.tileStart) - rt.wait
	if unpack < 0 {
		unpack = 0
	}
	rt.m.Wait += rt.wait
	rt.m.Unpack += unpack
	rt.m.Compute += rt.compDone.Sub(rt.recvDone)
	rt.m.Send += now.Sub(rt.compDone)
	rt.m.Tiles++
	ev := simnet.Event{
		Rank:     rt.rank,
		Tile:     tile.String(),
		Start:    rt.sec(rt.tileStart),
		RecvDone: rt.sec(rt.recvDone),
		CompDone: rt.sec(rt.compDone),
		End:      rt.sec(now),
		Waited:   rt.wait.Seconds(),
	}
	rt.events = append(rt.events, ev)
	if rt.tr.Live != nil {
		select {
		case rt.tr.Live <- ev:
		default:
		}
	}
	rt.lastEnd = now
}

// finish closes the rank's timeline after the end-of-chain Waitall and
// publishes events and metrics to the shared tracer. wp is the rank's
// intra-tile worker pool (nil in serial runs).
func (rt *rankTracer) finish(pool *bufPool, wp *workerPool) {
	now := time.Now()
	if !rt.lastEnd.IsZero() {
		rt.m.Drain = now.Sub(rt.lastEnd)
	}
	if !rt.first.IsZero() {
		rt.m.Span = now.Sub(rt.first)
	}
	rt.m.PoolHits = pool.hits
	rt.m.PoolMisses = pool.misses
	rt.m.Workers = 1
	if wp != nil {
		rt.m.Workers = wp.n
		rt.m.WorkerBusy = append([]time.Duration(nil), wp.busy...)
	}
	if rt.rank < len(rt.tr.ranks) {
		rt.tr.ranks[rt.rank] = rt.m
	}
	rt.tr.events <- rt.events
}
