package exec_test

import (
	"fmt"
	"reflect"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/tiling"
)

// This file is the planned-vs-legacy differential harness: every app of
// the paper's experiment suite (SOR, Jacobi, ADI, Heat3D), under both its
// rectangular and cone-derived tilings and in both communication modes,
// must produce a bit-identical global array AND bit-identical runtime
// traffic (message counts, value counts, per-rank split) whether it runs
// through the compiled tile plans or the reference per-point executor.
// Identical Stats pin down more than correctness: they prove the planned
// path sends the same messages with the same sizes in the same order.

type diffCase struct {
	name string
	p    *exec.Program
}

// diffCases builds the app × tiling matrix, skipping (with a log) factor
// choices an app's family rejects, and failing if too few survive.
func diffCases(t *testing.T) []diffCase {
	t.Helper()
	var out []diffCase
	add := func(name string, app *apps.App, err error, fam apps.TilingFamily, x, y, z int64) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ts, err := tiling.Analyze(app.Nest, fam.H(x, y, z))
		if err != nil {
			t.Logf("skip %s (%s x=%d y=%d z=%d): %v", name, fam.Name, x, y, z, err)
			return
		}
		p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
		if err != nil {
			t.Logf("skip %s (%s x=%d y=%d z=%d): %v", name, fam.Name, x, y, z, err)
			return
		}
		out = append(out, diffCase{name, p})
	}
	sor, err := apps.SOR(4, 10)
	add("sor/rect", sor, err, sor.Rect, 2, 4, 4)
	add("sor/rect-ragged", sor, err, sor.Rect, 2, 3, 5)
	add("sor/nonrect", sor, err, sor.NonRect[0], 2, 4, 4)
	jac, err := apps.Jacobi(8, 12)
	add("jacobi/rect", jac, err, jac.Rect, 2, 3, 3)
	add("jacobi/nonrect", jac, err, jac.NonRect[0], 2, 4, 4)
	adi, err := apps.ADI(8, 10)
	add("adi/rect", adi, err, adi.Rect, 2, 3, 3)
	for i, fam := range adi.NonRect {
		add(fmt.Sprintf("adi/nonrect%d", i), adi, nil, fam, 2, 3, 3)
	}
	heat, err := apps.Heat3D(6, 8)
	add("heat3d/rect", heat, err, heat.Rect, 2, 2, 2)
	if len(out) < 6 {
		t.Fatalf("only %d differential cases built — factor choices too restrictive", len(out))
	}
	return out
}

// slowDiffCases are the two slowest matrix entries (heat3d is 4-D, the
// nonrect Jacobi grid is the widest); CI's -short run drops them and the
// static certifier matrix in internal/verify still covers both shapes.
var slowDiffCases = map[string]bool{"heat3d/rect": true, "jacobi/nonrect": true}

func TestPlannedMatchesLegacyDifferential(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && slowDiffCases[c.name] {
				t.Skipf("%s is one of the two slowest differential cases; run without -short", c.name)
			}
			seq, err := c.p.RunSequential()
			if err != nil {
				t.Fatal(err)
			}
			for _, overlap := range []bool{false, true} {
				gL, sL, err := c.p.RunParallelOpts(exec.RunOptions{Legacy: true, Overlap: overlap})
				if err != nil {
					t.Fatalf("legacy overlap=%v: %v", overlap, err)
				}
				gP, sP, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
				if err != nil {
					t.Fatalf("planned overlap=%v: %v", overlap, err)
				}
				if diff, at := gL.MaxAbsDiff(gP, c.p.ScanSpace); diff != 0 {
					t.Fatalf("overlap=%v: planned differs from legacy by %g at %v", overlap, diff, at)
				}
				// Legacy itself is pinned against the sequential oracle, so a
				// shared bug in both parallel paths cannot hide.
				if diff, at := seq.MaxAbsDiff(gP, c.p.ScanSpace); diff != 0 {
					t.Fatalf("overlap=%v: planned differs from sequential by %g at %v", overlap, diff, at)
				}
				if !reflect.DeepEqual(sL, sP) {
					t.Fatalf("overlap=%v: traffic stats differ\nlegacy:  %+v\nplanned: %+v", overlap, sL, sP)
				}
			}
		})
	}
}
