package exec

import (
	"strings"
	"testing"
	"time"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/mpi"
	"tilespace/internal/rat"
	"tilespace/internal/tiling"
)

// TestOverlapPerRankTraffic: in overlap mode every rank's outbound halo
// traffic must show up in its per-rank overlapped counter, and the per-
// rank counters must sum to the world totals.
func TestOverlapPerRankTraffic(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{19, 23},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(4, 4)
	p := buildProgram(t, nest, tr.H, 0, 1, sumKernel, zeroInit)
	_, st, err := p.RunParallelOpts(RunOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.OverlappedSends == 0 {
		t.Fatal("no overlapped sends recorded")
	}
	if len(st.PerRank) != p.Dist.NumProcs() {
		t.Fatalf("PerRank len %d, want %d", len(st.PerRank), p.Dist.NumProcs())
	}
	var sends, values int64
	sending := 0
	for _, rt := range st.PerRank {
		if rt.BlockingSends != 0 {
			t.Errorf("rank traffic %+v has blocking sends in overlap mode", rt)
		}
		sends += rt.OverlappedSends
		values += rt.Values
		if rt.OverlappedSends > 0 {
			sending++
		}
	}
	if sends != st.OverlappedSends || values != st.Values {
		t.Fatalf("per-rank sums (%d, %d) != totals (%d, %d)", sends, values, st.OverlappedSends, st.Values)
	}
	if sending < 2 {
		t.Fatalf("only %d ranks sent — expected a multi-rank halo pattern", sending)
	}
}

// TestOverlapWithWatchdogCompletes: a correct schedule must run clean
// under an armed watchdog in both modes (the watchdog only fires on real
// deadlocks, not on ordinary waiting).
func TestOverlapWithWatchdogCompletes(t *testing.T) {
	nest := sorNest(t, 4, 8)
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 2))
	h.Set(1, 1, rat.New(1, 5))
	h.Set(2, 0, rat.New(-1, 4))
	h.Set(2, 2, rat.New(1, 4))
	p := buildProgram(t, nest, h, 2, 1, sumKernel, zeroInit)
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	for _, overlap := range []bool{false, true} {
		g, _, err := p.RunParallelOpts(RunOptions{
			Overlap: overlap,
			Net:     mpi.Options{Watchdog: 30 * time.Second},
		})
		if err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
		if diff, at := seq.MaxAbsDiff(g, p.ScanSpace); diff != 0 {
			t.Fatalf("overlap=%v differs by %g at %v", overlap, diff, at)
		}
	}
}

// TestWatchdogSurfacesAsError: a runtime deadlock (provoked through an
// addresser that makes a rank receive a message nobody sends — simplest:
// run a program whose world has a watchdog and break the schedule by
// executing a raw mis-matched receive) reaches the RunParallelOpts caller
// as an error, not a panic or a hang.
func TestWatchdogSurfacesAsError(t *testing.T) {
	w := mpi.NewWorldOpts(2, mpi.Options{Watchdog: 100 * time.Millisecond})
	err := w.RunE(func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			c.Recv(1, 5) // never sent
		} else {
			c.Recv(0, 0)
		}
	})
	if err == nil {
		t.Fatal("expected watchdog error")
	}
	for _, want := range []string{"watchdog", "rank 0", "tag=5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestOverlapInjectedCostFasterThanBlocking: with wire cost injected, the
// overlapped executor must beat the blocking one on a communication-heavy
// schedule — the in-process analogue of the paper's ref. [8] claim, and
// the live check that Isend really overlaps transfer with compute.
func TestOverlapInjectedCostFasterThanBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; long mode only")
	}
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{29, 31},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(5, 4)
	p := buildProgram(t, nest, tr.H, 0, 1, sumKernel, zeroInit)
	// Inject both wire cost and per-point compute cost: overlap's win is
	// transfer hidden behind the next tile's compute, so with zero compute
	// the two modes tie (modulo scheduler noise) and the comparison is
	// meaningless. Each tile has 20 points → 2ms compute per tile, the same
	// scale as the 2ms transfer it must hide.
	net := mpi.Options{LinkLatency: 2 * time.Millisecond}
	run := func(overlap bool) time.Duration {
		start := time.Now()
		opts := RunOptions{Overlap: overlap, Net: net, PointDelay: 100 * time.Microsecond}
		if _, _, err := p.RunParallelOpts(opts); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Average over a few rounds to shrug off scheduler noise.
	var blocking, overlapped time.Duration
	const rounds = 3
	for i := 0; i < rounds; i++ {
		blocking += run(false)
		overlapped += run(true)
	}
	if overlapped >= blocking {
		t.Fatalf("overlap (%v) not faster than blocking (%v) with %v per message injected",
			overlapped/rounds, blocking/rounds, net.LinkLatency)
	}
}
