package exec

import (
	"fmt"
	"time"
)

// ComputeSweep times `rounds` compute-phase sweeps over rank `rank`'s whole
// tile chain with the given worker count and returns the number of points
// one sweep computes plus the best-of-rounds wall time. workers <= 1 runs
// the serial planned executor; larger counts run the wavefront worker pool
// exactly as RunParallelOpts would.
//
// The sweep isolates the compute phase — no communication, init or
// write-back — so the ratio between two worker counts is the intra-tile
// parallel efficiency itself, not an Amdahl blend with the serial phases.
// The LDS is seeded deterministically and every worker count computes
// bit-identical values (the linear-extension theorem verify.Certify
// proves), so repeated rounds and different pool sizes read identical
// inputs. Exported for internal/bench's intrabench; not part of the
// execution API proper.
func (p *Program) ComputeSweep(rank, workers, rounds int) (points int64, seconds float64, err error) {
	if rank < 0 || rank >= p.Dist.NumProcs() {
		return 0, 0, fmt.Errorf("exec: ComputeSweep rank %d out of range [0, %d)", rank, p.Dist.NumProcs())
	}
	if workers < 1 {
		workers = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	st := newRankState(p, nil, rank, RunOptions{Workers: workers})
	if st.workers > 1 {
		st.wpool = newWorkerPool(st, st.workers)
		defer st.wpool.close()
	}
	for i := range st.la {
		st.la[i] = float64(i%101)*0.5 - 12.25
	}
	chain := p.Dist.ChainLen[rank]
	sweep := func() {
		for t := int64(0); t < chain; t++ {
			pl := st.planFor(p.Dist.TileAt(rank, t))
			mulVecInto(st.pBase, p.TS.T.P, p.Dist.TileAt(rank, t))
			if st.wpool != nil {
				st.computePhaseParallel(pl, t)
			} else {
				st.computePhasePlanned(pl, t)
			}
		}
	}
	for t := int64(0); t < chain; t++ {
		points += int64(st.planFor(p.Dist.TileAt(rank, t)).npts)
	}
	sweep() // warm up: compile tile and local plans, spin up the pool
	for r := 0; r < rounds; r++ {
		start := time.Now()
		sweep()
		if el := time.Since(start).Seconds(); seconds == 0 || el < seconds {
			seconds = el
		}
	}
	return points, seconds, nil
}
