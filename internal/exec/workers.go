package exec

import (
	"runtime"
	"sync"
	"time"

	"tilespace/internal/ilin"
)

// workerPool is one rank's fixed intra-tile worker pool. Workers are
// spawned once per run and live until the rank's chain ends (or aborts —
// teardown is deferred in runRank, so crash panics unwind through it).
// A dispatch hands every worker its precompiled run segment of one
// wavefront and waits for all of them: the pool is always idle between
// fronts, between tiles, and therefore across checkpoint commits and
// crash rewinds — the recovery layer never observes a worker mid-flight.
//
// Steady state allocates nothing: dispatch state travels through fields
// written before the per-worker channel sends (the send/receive pair and
// the WaitGroup give the happens-before edges both ways), and each worker
// owns preallocated scratch. Determinism is structural, not scheduled:
// workers write disjoint LDS cells and read only earlier wavefronts, so
// output is bit-identical to the serial sweep for any pool size.
type workerPool struct {
	n    int
	sigs []chan struct{}
	wg   sync.WaitGroup

	// Dispatch arguments for the current front (rank-written, worker-read).
	st *rankState
	pl *tilePlan
	lp *localPlan
	fi int
	t  int64

	// panics[w] captures worker w's panic; the rank re-raises it after the
	// barrier so abort semantics match the serial path exactly.
	panics []any

	// busy[w] accumulates worker w's in-segment wall time (traced runs
	// only) for per-worker phase attribution in RankMetrics.
	busy   []time.Duration
	traced bool
}

// effectiveWorkers resolves RunOptions.Workers: an explicit count wins; 0
// divides GOMAXPROCS across the ranks sharing this process (at least 1),
// so the default never oversubscribes the host. The choice only affects
// speed — results are bit-identical for every value.
func effectiveWorkers(req, ranks int) int {
	if req > 0 {
		return req
	}
	if ranks < 1 {
		ranks = 1
	}
	w := runtime.GOMAXPROCS(0) / ranks
	if w < 1 {
		w = 1
	}
	return w
}

func newWorkerPool(st *rankState, n int) *workerPool {
	wp := &workerPool{
		n:      n,
		sigs:   make([]chan struct{}, n),
		panics: make([]any, n),
		busy:   make([]time.Duration, n),
		traced: st.tr != nil,
	}
	dims := st.p.TS.T.N
	q := len(st.dps)
	for i := 0; i < n; i++ {
		wp.sigs[i] = make(chan struct{}, 1)
		ws := &workerScratch{
			j:     make(ilin.Vec, dims),
			reads: make([][]float64, q),
			ro:    make([]int64, q),
		}
		go wp.work(i, ws)
	}
	return wp
}

// workerScratch is one worker's private kernel buffers, so concurrent
// segments never share mutable state.
type workerScratch struct {
	j     ilin.Vec
	reads [][]float64
	ro    []int64
}

func (wp *workerPool) work(id int, ws *workerScratch) {
	for range wp.sigs[id] {
		wp.runSeg(id, ws)
	}
}

// runSeg executes this worker's precompiled segment of the dispatched
// front. The deferred finishSeg (a plain method call — no closure, no
// allocation) captures a panic and always reaches the barrier, so a
// panicking kernel cannot deadlock the rank.
func (wp *workerPool) runSeg(id int, ws *workerScratch) {
	defer wp.finishSeg(id)
	var t0 time.Time
	if wp.traced {
		t0 = time.Now()
	}
	seg := wp.lp.fronts[wp.fi].segs[id]
	wp.st.execLocalRuns(wp.pl, wp.lp, wp.fi, int(seg[0]), int(seg[1]), wp.t, ws.j, ws.reads, ws.ro)
	if wp.traced {
		wp.busy[id] += time.Since(t0)
	}
}

func (wp *workerPool) finishSeg(id int) {
	if r := recover(); r != nil {
		wp.panics[id] = r
	}
	wp.wg.Done()
}

// dispatch runs one wavefront on the pool and blocks until every worker
// finished its segment; a worker panic is re-raised on the rank goroutine
// after the barrier (all workers idle again), preserving the serial
// path's abort behaviour.
func (wp *workerPool) dispatch(st *rankState, pl *tilePlan, lp *localPlan, fi int, t int64) {
	wp.st, wp.pl, wp.lp, wp.fi, wp.t = st, pl, lp, fi, t
	wp.wg.Add(wp.n)
	for _, sig := range wp.sigs {
		sig <- struct{}{}
	}
	wp.wg.Wait()
	for id, p := range wp.panics {
		if p != nil {
			wp.panics[id] = nil
			panic(p)
		}
	}
}

// close terminates the workers; safe on a nil pool and after a panic
// unwound the rank goroutine (workers are idle outside dispatch).
func (wp *workerPool) close() {
	if wp == nil {
		return
	}
	for _, sig := range wp.sigs {
		close(sig)
	}
}
