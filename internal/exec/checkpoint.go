package exec

import (
	"fmt"
	"math"

	"tilespace/internal/mpi"
)

// This file is the executor's crash-recovery layer. The compiled tile
// protocol makes a rank's state between tiles fully explicit — chain
// position, LDS contents, in-flight sends — which is exactly what makes
// restartability cheap: after each committed tile the rank can snapshot
// that state, and a crash (FaultPlan.Crash) becomes a rewind instead of a
// lost run.
//
// The protocol, end to end:
//
//   - Snapshot (every CheckpointOptions.Every committed tiles): copy the
//     dirty LDS prefix (a high-water mark maintained by every write site),
//     record the resume slot, prune the send ledger of delivered entries
//     and start a fresh receive log.
//   - Ledger: every send since the last snapshot is recorded (destination,
//     tag, payload copy, completion request). Blocking sends deliver
//     synchronously; Isends carry their Request so delivery is queryable.
//   - Receive log: every message claimed since the last snapshot is
//     recorded as a copy — the mailbox cannot replay a claimed message,
//     so the rank must.
//   - Crash: mpi.Comm.DropPending discards the NIC's untransmitted queue
//     and makes every request's delivered/dropped status final; the NIC
//     transmits in issue order, so the delivered set is a prefix of issue
//     order and the dropped set a suffix. The LDS is poisoned with NaN
//     before restoring, so state the snapshot fails to cover corrupts the
//     differential result instead of silently surviving.
//   - Restore: copy the snapshot back, resend dropped pre-snapshot sends
//     (ledger order = issue order, so per-stream FIFO is preserved), turn
//     the post-snapshot ledger into a resend cursor and the receive log
//     into a replay queue, and rewind the chain to the resume slot.
//   - Re-execution: receives pop the replay queue (claimed messages are
//     not re-received from the wire, so mpi.Stats count them once);
//     sends consult the cursor — delivered entries are skipped, dropped
//     entries are sent fresh (re-execution from the restored LDS
//     reproduces the payload bit for bit). Past the crash point both
//     queues are empty and the rank runs normally.
//
// Counting every message exactly once — at its one successful delivery —
// keeps mpi.Stats bit-identical to a fault-free run, which the chaos
// suite asserts.

// CheckpointOptions enables tile-chain checkpointing (RunOptions).
type CheckpointOptions struct {
	// Every is the snapshot period in committed tiles; 1 snapshots after
	// every tile (smallest rewind, highest overhead). Values < 1 mean 1.
	Every int64
}

// sendRec is one ledger entry: a send issued since the last snapshot.
type sendRec struct {
	dst, tag int
	tile     int64 // chain slot that issued it
	data     []float64
	// req is nil for blocking sends (delivered synchronously); for Isends
	// it answers delivered-vs-dropped once the crash finalizes it.
	req *mpi.Request
}

// delivered reports whether the entry's message reached its mailbox.
// Definitive only after DropPending has finalized in-flight requests.
func (r *sendRec) delivered() bool { return r.req == nil || !r.req.Dropped() }

// recvRec is one receive-log entry: a message claimed since the last
// snapshot, copied because the runtime cannot replay a claimed message.
type recvRec struct {
	src, tag int
	data     []float64
}

// ckptState is a rank's checkpoint/recovery state; nil when RunOptions
// left checkpointing off, and every hook is guarded on that.
type ckptState struct {
	every int64

	// ldsHi is the dirty high-water mark of the LDS backing array, in
	// floats: every write site raises it, so la[:ldsHi] is the only region
	// a snapshot must copy.
	ldsHi int64

	// The last snapshot: resume slot (tiles < snapT are committed), the
	// dirty LDS prefix at that moment, the send ledger and receive log
	// accumulated since.
	snapT   int64
	snapLa  []float64
	ledger  []sendRec
	recvLog []recvRec

	// Replay state, populated by a crash and drained by re-execution.
	replaySend []sendRec
	replayRecv []recvRec

	crashed bool // this rank already used its one crash
	resent  int  // messages resent after the crash
}

// commitTile runs after tile t is fully committed (sent phase done,
// progress noted): time for a snapshot if the period says so.
func (st *rankState) commitTile(t int64) {
	ck := st.ckpt
	if ck == nil {
		return
	}
	if (t+1)%ck.every == 0 {
		st.snapshot(t + 1)
	}
}

// snapshot records the rank's restartable state as of "resumeT tiles
// committed": the dirty LDS prefix, plus the still-undelivered suffix of
// the ledger (delivered entries can never need resending; in-flight
// Isends might, if a later crash drops them).
func (st *rankState) snapshot(resumeT int64) {
	ck := st.ckpt
	kept := ck.ledger[:0]
	for _, rec := range ck.ledger {
		if rec.req != nil {
			if _, done := rec.req.Test(); !done {
				kept = append(kept, rec)
			}
		}
	}
	ck.ledger = kept
	ck.recvLog = ck.recvLog[:0]
	ck.snapT = resumeT
	if int64(cap(ck.snapLa)) < ck.ldsHi {
		ck.snapLa = make([]float64, ck.ldsHi)
	}
	ck.snapLa = ck.snapLa[:ck.ldsHi]
	copy(ck.snapLa, st.la[:ck.ldsHi])
}

// crash simulates losing this rank at the boundary of tile t and returns
// the chain slot to resume from. Without checkpointing a dead rank is a
// dead run: panic, which aborts the world with a diagnostic.
func (st *rankState) crash(t int64) int64 {
	if st.ckpt == nil {
		panic(fmt.Sprintf("exec: rank %d crashed at tile %d (FaultPlan.Crash) with no checkpointing enabled — run lost", st.rank, t))
	}
	ck := st.ckpt
	ck.crashed = true
	if st.tr != nil {
		st.tr.noteFault("crash", t)
	}
	// The node is gone: outbound messages not yet on the wire are lost.
	// DropPending finalizes every request, so the ledger's delivered-vs-
	// dropped answers below are definitive.
	st.c.DropPending()
	mpi.Waitall(st.pending)
	st.pending = st.pending[:0]
	st.reaped = 0
	st.sendsDone.Store(0)
	// Reboot/rejoin time; counted as fault activity so the watchdog never
	// mistakes the outage for a deadlock.
	st.c.FaultSleep(st.faults.RestartDelay)

	// The replacement process starts blank: poison the LDS so any state
	// the snapshot fails to cover shows up as NaN in the result, then
	// restore the snapshot prefix.
	for i := range st.la {
		st.la[i] = math.NaN()
	}
	copy(st.la, ck.snapLa)
	ck.ldsHi = int64(len(ck.snapLa))

	// Split the ledger at the snapshot: pre-snapshot entries are not
	// re-executed, so their dropped ones are resent here from the recorded
	// payload (ledger order = issue order — and the dropped set is a
	// suffix of issue order, so these precede every post-snapshot resend
	// on their stream); post-snapshot entries become the re-execution
	// cursor. Delivered pre-snapshot entries leave the ledger for good.
	ck.replaySend = ck.replaySend[:0]
	kept := ck.ledger[:0]
	for _, rec := range ck.ledger {
		if rec.tile >= ck.snapT {
			ck.replaySend = append(ck.replaySend, rec)
			continue
		}
		if rec.delivered() {
			continue
		}
		// Isend copies the payload, so the fresh ledger entry keeps ours.
		req := st.c.Isend(rec.dst, rec.tag, rec.data)
		req.OnComplete(st.noteFn)
		st.pending = append(st.pending, req)
		kept = append(kept, sendRec{dst: rec.dst, tag: rec.tag, tile: rec.tile, data: rec.data, req: req})
		ck.resent++
		if st.tr != nil {
			st.tr.noteResend()
		}
	}
	ck.ledger = kept
	// Claimed messages cannot be re-received; replay them from the log.
	ck.replayRecv = append(ck.replayRecv[:0], ck.recvLog...)
	ck.recvLog = ck.recvLog[:0]
	if st.tr != nil {
		st.tr.noteFault("restart", ck.snapT)
	}
	return ck.snapT
}

// checkReplayDrained asserts the crash recovery actually converged: once
// the chain completes, both replay queues must be empty, or re-execution
// diverged from the first incarnation.
func (st *rankState) checkReplayDrained() error {
	ck := st.ckpt
	if ck == nil {
		return nil
	}
	if len(ck.replaySend) > 0 || len(ck.replayRecv) > 0 {
		return fmt.Errorf("exec: rank %d finished its chain with %d unconsumed ledger sends and %d unreplayed receives — re-execution diverged from the crashed incarnation", st.rank, len(ck.replaySend), len(ck.replayRecv))
	}
	return nil
}

// markDirty raises the LDS dirty high-water mark to end (in floats).
// Write sites call it so snapshots copy only the touched prefix.
func (st *rankState) markDirty(end int64) {
	if st.ckpt != nil && end > st.ckpt.ldsHi {
		st.ckpt.ldsHi = end
	}
}

// dispatchSend routes one outbound message through the recovery layer.
// During post-crash re-execution it consults the resend cursor: messages
// the first incarnation delivered are skipped (the receiver has them;
// resending would corrupt the stream and double-count Stats), dropped
// ones fall through and are sent fresh. Outside replay — or once the
// cursor is drained — it issues via the mode's primitive and, when
// checkpointing is on, records a ledger entry with a payload copy.
//
// owned says buf's ownership may transfer to the runtime (the planned
// path's pooled buffers); the return value reports whether the caller
// still owns buf and should recycle it.
func (st *rankState) dispatchSend(dst, tag int, buf []float64, owned bool, t int64) bool {
	ck := st.ckpt
	if ck != nil && len(ck.replaySend) > 0 {
		rec := ck.replaySend[0]
		ck.replaySend = ck.replaySend[1:]
		if rec.dst != dst || rec.tag != tag {
			panic(fmt.Sprintf("exec: rank %d resend cursor mismatch at tile %d: re-execution sends (dst=%d, tag=%d), ledger recorded (dst=%d, tag=%d) — nondeterministic re-execution", st.rank, t, dst, tag, rec.dst, rec.tag))
		}
		if rec.delivered() {
			return true // receiver already has it
		}
		ck.resent++
		if st.tr != nil {
			st.tr.noteResend()
		}
	}
	var rec sendRec
	if ck != nil {
		rec = sendRec{dst: dst, tag: tag, tile: t, data: append([]float64(nil), buf...)}
	}
	if st.overlap {
		var req *mpi.Request
		if owned {
			req = st.c.IsendOwned(dst, tag, buf)
		} else {
			req = st.c.Isend(dst, tag, buf)
		}
		req.OnComplete(st.noteFn)
		st.pending = append(st.pending, req)
		rec.req = req
	} else {
		if owned {
			st.c.SendOwned(dst, tag, buf)
		} else {
			st.c.Send(dst, tag, buf)
		}
	}
	if ck != nil {
		ck.ledger = append(ck.ledger, rec)
	}
	if st.tr != nil {
		st.tr.noteSend(len(buf), len(st.pending))
	}
	return !owned
}

// recvCk is the receive used by both executor phases: during post-crash
// re-execution it pops the replay queue (the wire never sees these again,
// so Stats count each message exactly once, at its original claim);
// otherwise it receives normally and, when checkpointing is on, logs a
// copy for a future replay. Replayed entries are re-logged as fresh
// copies because the popped buffer's ownership passes to the caller's
// pool.
func (st *rankState) recvCk(src, tag int) []float64 {
	ck := st.ckpt
	if ck != nil && len(ck.replayRecv) > 0 {
		rec := ck.replayRecv[0]
		ck.replayRecv = ck.replayRecv[1:]
		if rec.src != src || rec.tag != tag {
			panic(fmt.Sprintf("exec: rank %d receive replay mismatch: re-execution claims (src=%d, tag=%d), log recorded (src=%d, tag=%d) — nondeterministic re-execution", st.rank, src, tag, rec.src, rec.tag))
		}
		ck.recvLog = append(ck.recvLog, recvRec{src: src, tag: tag, data: append([]float64(nil), rec.data...)})
		return rec.data
	}
	buf := st.recv(src, tag)
	if ck != nil {
		ck.recvLog = append(ck.recvLog, recvRec{src: src, tag: tag, data: append([]float64(nil), buf...)})
	}
	return buf
}
