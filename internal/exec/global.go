// Package exec executes tiled programs: sequentially over the original
// iteration space (the reference), and in parallel as the paper's generated
// data-parallel program — per-processor Local Data Spaces, the §3.2
// receive→compute→send protocol over the mpi runtime, and a final
// write-back to the global data space via loc⁻¹.
package exec

import (
	"fmt"
	"math"

	"tilespace/internal/ilin"
)

// Global is the dense global data space: one Width-wide value vector per
// iteration point, over the integer bounding box of the iteration space.
// (The paper's DS under the identity write reference f_w(j) = j, the case
// of all three experiment kernels; value width > 1 models multi-array
// statements such as ADI's X and B.)
type Global struct {
	Lo, Hi ilin.Vec
	Width  int
	stride []int64
	data   []float64
}

// NewGlobal allocates a global array over the box [lo, hi], filled with
// NaN so that reads of never-written cells are detectable in tests.
func NewGlobal(lo, hi ilin.Vec, width int) *Global {
	if len(lo) != len(hi) || width <= 0 {
		panic("exec: bad Global shape")
	}
	n := len(lo)
	stride := make([]int64, n)
	size := int64(1)
	for k := n - 1; k >= 0; k-- {
		if hi[k] < lo[k] {
			panic(fmt.Sprintf("exec: empty Global box dim %d", k))
		}
		stride[k] = size
		size *= hi[k] - lo[k] + 1
	}
	g := &Global{Lo: lo.Clone(), Hi: hi.Clone(), Width: width, stride: stride, data: make([]float64, size*int64(width))}
	for i := range g.data {
		g.data[i] = math.NaN()
	}
	return g
}

// Contains reports whether j lies in the box.
func (g *Global) Contains(j ilin.Vec) bool {
	for k := range j {
		if j[k] < g.Lo[k] || j[k] > g.Hi[k] {
			return false
		}
	}
	return true
}

func (g *Global) index(j ilin.Vec) int64 {
	var idx int64
	for k := range j {
		if j[k] < g.Lo[k] || j[k] > g.Hi[k] {
			panic(fmt.Sprintf("exec: point %v outside global box [%v, %v]", j, g.Lo, g.Hi))
		}
		idx += (j[k] - g.Lo[k]) * g.stride[k]
	}
	return idx * int64(g.Width)
}

// At returns the value vector stored at j (aliasing the backing array).
func (g *Global) At(j ilin.Vec) []float64 {
	i := g.index(j)
	return g.data[i : i+int64(g.Width)]
}

// Set stores a value vector at j.
func (g *Global) Set(j ilin.Vec, v []float64) {
	copy(g.At(j), v)
}

// MaxAbsDiff returns the maximum absolute elementwise difference between
// two globals over the points where fn returns true (typically the
// iteration space), along with the first point achieving it. NaN in either
// operand yields +Inf.
func (g *Global) MaxAbsDiff(o *Global, points func(fn func(j ilin.Vec) bool)) (float64, ilin.Vec) {
	if g.Width != o.Width {
		panic("exec: width mismatch in MaxAbsDiff")
	}
	worst := 0.0
	var at ilin.Vec
	points(func(j ilin.Vec) bool {
		a, b := g.At(j), o.At(j)
		for w := 0; w < g.Width; w++ {
			d := math.Abs(a[w] - b[w])
			if math.IsNaN(a[w]) || math.IsNaN(b[w]) {
				d = math.Inf(1)
			}
			if d > worst {
				worst = d
				at = j.Clone()
			}
		}
		return true
	})
	return worst, at
}
