package exec

import (
	"fmt"
	"sync"
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/rat"
	"tilespace/internal/tiling"
)

// sumKernel: out = 1 + Σ reads — integer-valued, any placement error
// changes the result.
func sumKernel(j ilin.Vec, reads [][]float64, out []float64) {
	s := 1.0
	for _, r := range reads {
		s += r[0]
	}
	out[0] = s
}

func zeroInit(j ilin.Vec, out []float64) {
	for i := range out {
		out[i] = 0
	}
}

func buildProgram(t testing.TB, nest *loopnest.Nest, h *ilin.RatMat, m int, width int, k Kernel, init Initial) *Program {
	t.Helper()
	ts, err := tiling.Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(ts, m, width, k, init)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func comparePrograms(t *testing.T, p *Program) {
	t.Helper()
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := p.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	diff, at := seq.MaxAbsDiff(par, p.ScanSpace)
	if diff != 0 {
		t.Fatalf("parallel differs from sequential by %g at %v (procs=%d, msgs=%d)", diff, at, p.Dist.NumProcs(), stats.Messages)
	}
	// The overlapped mode must agree bit-for-bit too, and must route every
	// data message through the Isend path.
	ov, ovStats, err := p.RunParallelOpts(RunOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(ov, p.ScanSpace); diff != 0 {
		t.Fatalf("overlapped parallel differs from sequential by %g at %v", diff, at)
	}
	if ovStats.Messages != stats.Messages {
		t.Fatalf("overlapped run sent %d messages, blocking sent %d", ovStats.Messages, stats.Messages)
	}
	if ovStats.BlockingSends != 0 {
		t.Fatalf("overlapped run still used %d blocking sends", ovStats.BlockingSends)
	}
	if ovStats.OverlappedSends != stats.Messages {
		t.Fatalf("OverlappedSends = %d, want %d", ovStats.OverlappedSends, stats.Messages)
	}
}

func TestParallelRect2D(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{19, 23},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(4, 4)
	p := buildProgram(t, nest, tr.H, 0, 1, sumKernel, zeroInit)
	if p.Dist.NumProcs() != 6 {
		t.Fatalf("procs = %d, want 6", p.Dist.NumProcs())
	}
	comparePrograms(t, p)
}

func TestParallelRect2DRaggedBoundary(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{1, 1}, []int64{17, 20},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(4, 3)
	p := buildProgram(t, nest, tr.H, 1, 1, sumKernel, zeroInit)
	comparePrograms(t, p)
}

func TestParallelNonRect2D(t *testing.T) {
	h := ilin.RatMatFromRows(
		[]string{"1/2", "0"},
		[]string{"1/4", "1/4"},
	)
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{15, 15},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	p := buildProgram(t, nest, h, 0, 1, sumKernel, zeroInit)
	comparePrograms(t, p)
}

func TestParallelNonZeroInitial(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{10, 10},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(3, 3)
	init := func(j ilin.Vec, out []float64) { out[0] = float64(j[0]*3 + j[1]) }
	p := buildProgram(t, nest, tr.H, 0, 1, sumKernel, init)
	comparePrograms(t, p)
}

// sorNest builds the skewed SOR nest of §4.1 on a small space by skewing
// the rectangular original with T = [[1,0,0],[1,1,0],[2,0,1]].
func sorNest(t testing.TB, m, n int64) *loopnest.Nest {
	t.Helper()
	orig := loopnest.MustBox([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{m, n, n},
		ilin.MatFromRows(
			[]int64{0, 0, 1, 1, 1},
			[]int64{1, 0, -1, 0, 0},
			[]int64{0, 1, 0, -1, 0},
		))
	skew := ilin.MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{2, 0, 1})
	sk, err := orig.Skew(skew)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestParallelSkewedSOR(t *testing.T) {
	nest := sorNest(t, 4, 8)
	// Non-rectangular H_nr from §4.1 with x=2, y=5, z=4.
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 2))
	h.Set(1, 1, rat.New(1, 5))
	h.Set(2, 0, rat.New(-1, 4))
	h.Set(2, 2, rat.New(1, 4))
	p := buildProgram(t, nest, h, 2, 1, sumKernel, zeroInit)
	comparePrograms(t, p)
}

func TestParallelSkewedSORRect(t *testing.T) {
	nest := sorNest(t, 4, 8)
	tr, _ := tiling.Rectangular(2, 5, 4)
	p := buildProgram(t, nest, tr.H, 2, 1, sumKernel, zeroInit)
	comparePrograms(t, p)
}

// TestParallelJacobiStride2 exercises the non-unimodular H' path (TTIS
// lattice with stride 2 and incremental offsets).
func TestParallelJacobiStride2(t *testing.T) {
	deps := ilin.MatFromRows(
		[]int64{1, 1, 1, 1, 1},
		[]int64{1, 2, 0, 1, 1},
		[]int64{1, 1, 1, 2, 0},
	)
	nest := loopnest.MustBox([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{7, 9, 9}, deps)
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 2))
	h.Set(0, 1, rat.New(-1, 4))
	h.Set(1, 1, rat.New(1, 4))
	h.Set(2, 2, rat.New(1, 5))
	p := buildProgram(t, nest, h, 0, 1, sumKernel, zeroInit)
	comparePrograms(t, p)
}

// TestParallelWidth2 models ADI's two-array statement.
func TestParallelWidth2(t *testing.T) {
	deps := ilin.MatFromRows([]int64{1, 1, 1}, []int64{0, 1, 0}, []int64{0, 0, 1})
	nest := loopnest.MustBox([]string{"t", "i", "j"}, []int64{1, 1, 1}, []int64{6, 8, 8}, deps)
	tr, _ := tiling.Rectangular(2, 3, 3)
	k := func(j ilin.Vec, reads [][]float64, out []float64) {
		out[0] = reads[0][0] + reads[1][1] + 1
		out[1] = reads[2][0] - reads[0][1] + 0.5
	}
	init := func(j ilin.Vec, out []float64) { out[0], out[1] = 1, 2 }
	p := buildProgram(t, nest, tr.H, 0, 2, k, init)
	comparePrograms(t, p)
}

// TestSelfCheckingKernel directly validates communication placement: the
// kernel writes enc(j) and asserts every dependence read equals enc(j−d)
// (or the Initial marker when j−d is outside the space).
func TestSelfCheckingKernel(t *testing.T) {
	deps := ilin.MatFromRows(
		[]int64{1, 0, 1, 1, 0},
		[]int64{1, 1, 0, 1, 0},
		[]int64{2, 0, 2, 1, 1},
	)
	nest := loopnest.MustBox([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{7, 9, 11}, deps)
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 3))
	h.Set(1, 1, rat.New(1, 4))
	h.Set(2, 0, rat.New(-1, 4))
	h.Set(2, 2, rat.New(1, 4))
	ts, err := tiling.Analyze(nest, h)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(j ilin.Vec) float64 { return float64(j[0]*10000 + j[1]*100 + j[2]) }
	var (
		mu       sync.Mutex
		firstErr string
	)
	depCols := make([]ilin.Vec, deps.Cols)
	for l := range depCols {
		depCols[l] = deps.Col(l)
	}
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		for l, r := range reads {
			src := j.Sub(depCols[l])
			want := -1.0
			if nest.Space.Contains(src) {
				want = enc(src)
			}
			if r[0] != want {
				mu.Lock()
				if firstErr == "" {
					firstErr = fmt.Sprintf("at %v dep %d (src %v): read %v, want %v", j, l, src, r[0], want)
				}
				mu.Unlock()
			}
		}
		out[0] = enc(j)
	}
	init := func(j ilin.Vec, out []float64) { out[0] = -1 }
	p, err := NewProgram(ts, 2, 1, kernel, init)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.RunParallel(); err != nil {
		t.Fatal(err)
	}
	if firstErr != "" {
		t.Fatalf("communication placement error: %s", firstErr)
	}
}

func TestNewProgramErrors(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{5, 5},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(2, 2)
	ts, err := tiling.Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProgram(ts, 0, 0, sumKernel, nil); err == nil {
		t.Error("width 0 not rejected")
	}
	if _, err := NewProgram(ts, 0, 1, nil, nil); err == nil {
		t.Error("nil kernel not rejected")
	}
	if _, err := NewProgram(ts, 5, 1, sumKernel, nil); err == nil {
		t.Error("bad mapping dim not rejected")
	}
}

func TestAutoMappingDim(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{5, 29},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(2, 2)
	ts, _ := tiling.Analyze(nest, tr.H)
	p, err := NewProgram(ts, -1, 1, sumKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist.M != 1 {
		t.Errorf("auto mapping dim = %d, want 1", p.Dist.M)
	}
	comparePrograms(t, p)
}

func TestGlobalBasics(t *testing.T) {
	g := NewGlobal(ilin.NewVec(-1, 0), ilin.NewVec(1, 2), 2)
	g.Set(ilin.NewVec(0, 1), []float64{3, 4})
	if v := g.At(ilin.NewVec(0, 1)); v[0] != 3 || v[1] != 4 {
		t.Errorf("At = %v", v)
	}
	if !g.Contains(ilin.NewVec(-1, 2)) || g.Contains(ilin.NewVec(2, 0)) {
		t.Error("Contains mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("At outside box did not panic")
		}
	}()
	g.At(ilin.NewVec(9, 9))
}

func TestGlobalMaxAbsDiffNaN(t *testing.T) {
	g1 := NewGlobal(ilin.NewVec(0), ilin.NewVec(1), 1)
	g2 := NewGlobal(ilin.NewVec(0), ilin.NewVec(1), 1)
	g1.Set(ilin.NewVec(0), []float64{1})
	// g2 left NaN at 0.
	pts := func(fn func(j ilin.Vec) bool) { fn(ilin.NewVec(0)) }
	if d, _ := g1.MaxAbsDiff(g2, pts); d == 0 {
		t.Error("NaN should yield nonzero diff")
	}
}

// TestTiledSequentialMatchesOriginal: the §2.3 reordered (tiled) sequential
// execution equals the original-order execution — the executable legality
// proof — on rectangular, non-rectangular and stride-2 tilings.
func TestTiledSequentialMatchesOriginal(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T) *Program
	}{
		{"rect2d", func(t *testing.T) *Program {
			nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{17, 13},
				ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
			tr, _ := tiling.Rectangular(4, 3)
			return buildProgram(t, nest, tr.H, 0, 1, sumKernel, zeroInit)
		}},
		{"sorNR", func(t *testing.T) *Program {
			nest := sorNest(t, 4, 8)
			h := ilin.NewRatMat(3, 3)
			h.Set(0, 0, rat.New(1, 2))
			h.Set(1, 1, rat.New(1, 5))
			h.Set(2, 0, rat.New(-1, 4))
			h.Set(2, 2, rat.New(1, 4))
			return buildProgram(t, nest, h, 2, 1, sumKernel, zeroInit)
		}},
		{"jacobiStride2", func(t *testing.T) *Program {
			deps := ilin.MatFromRows(
				[]int64{1, 1, 1, 1, 1},
				[]int64{1, 2, 0, 1, 1},
				[]int64{1, 1, 1, 2, 0},
			)
			nest := loopnest.MustBox([]string{"t", "i", "j"}, []int64{0, 0, 0}, []int64{7, 9, 9}, deps)
			h := ilin.NewRatMat(3, 3)
			h.Set(0, 0, rat.New(1, 2))
			h.Set(0, 1, rat.New(-1, 4))
			h.Set(1, 1, rat.New(1, 4))
			h.Set(2, 2, rat.New(1, 5))
			return buildProgram(t, nest, h, 0, 1, sumKernel, zeroInit)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := c.run(t)
			orig, err := p.RunSequential()
			if err != nil {
				t.Fatal(err)
			}
			tiled, err := p.RunTiledSequential()
			if err != nil {
				t.Fatal(err)
			}
			if diff, at := orig.MaxAbsDiff(tiled, p.ScanSpace); diff != 0 {
				t.Fatalf("tiled reordering differs by %g at %v", diff, at)
			}
		})
	}
}
