package exec_test

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
)

// The chaos matrix: each of the paper's applications, in both
// communication modes, runs under every injected fault class — a slowed
// rank, a delayed jittery link, transient send failures with retry, and a
// hard crash with checkpointed restart — and must still produce the
// fault-free Global bit for bit, with deterministic traffic stats and
// zero leaked goroutines once the run returns. CHAOS_SEED reseeds the
// randomized fault decisions (default 1) so CI can sweep seeds without a
// code change.

// chaosSeed reads CHAOS_SEED; the chosen seed is logged so a failure is
// reproducible by exporting the same value.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (override with CHAOS_SEED)", seed)
	return seed
}

// checkGoroutines polls until the goroutine count returns to the
// pre-run level: every rank, NIC and watchdog goroutine must be gone,
// whether the run completed, restarted or aborted.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("leaked %d goroutines (%d -> %d):\n%s",
				now-before, before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// dropRetries clears the one counter injected faults legitimately change:
// survived retries add SendRetries but must alter no traffic counter.
func dropRetries(s mpi.Stats) mpi.Stats {
	s.SendRetries = 0
	pr := make([]mpi.RankTraffic, len(s.PerRank))
	copy(pr, s.PerRank)
	for i := range pr {
		pr[i].SendRetries = 0
	}
	s.PerRank = pr
	return s
}

// chaosFaults builds the fault classes for a program with the given
// geometry. Magnitudes are small (hundreds of microseconds) — the point
// is exercising every recovery path, not realistic outage lengths.
func chaosFaults(seed int64, procs int, chain []int64) []struct {
	name string
	plan *mpi.FaultPlan
	ck   *exec.CheckpointOptions
} {
	mid := procs / 2
	return []struct {
		name string
		plan *mpi.FaultPlan
		ck   *exec.CheckpointOptions
	}{
		{"slow-rank", &mpi.FaultPlan{Seed: seed, Slowdown: map[int]float64{mid: 4}}, nil},
		{"delayed-link", &mpi.FaultPlan{Seed: seed, Links: map[mpi.Link]mpi.LinkFault{
			{Src: 0, Dst: 1}:         {Delay: 300 * time.Microsecond, Jitter: 300 * time.Microsecond},
			{Src: mid, Dst: mid - 1}: {Delay: 200 * time.Microsecond},
		}}, nil},
		{"transient-send-failure", &mpi.FaultPlan{Seed: seed, Sends: &mpi.SendFaults{
			Rate: 0.3, MaxRetries: 3, Backoff: 100 * time.Microsecond,
		}}, nil},
		{"crash-restart", &mpi.FaultPlan{
			Seed:         seed,
			Crash:        map[int]int64{mid: chain[mid] / 2},
			RestartDelay: 500 * time.Microsecond,
		}, &exec.CheckpointOptions{Every: 2}},
	}
}

// chaosCases picks one representative per application (SOR, Jacobi, ADI)
// from the differential matrix — non-rectangular SOR so the chaos sweep
// covers a cone-derived tiling too.
func chaosCases(t *testing.T) []diffCase {
	want := map[string]bool{"sor/nonrect": true, "jacobi/rect": true, "adi/rect": true}
	var out []diffCase
	for _, c := range diffCases(t) {
		if want[c.name] {
			out = append(out, c)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("chaos matrix found %d of %d representative cases", len(out), len(want))
	}
	return out
}

func TestChaosMatrix(t *testing.T) {
	seed := chaosSeed(t)
	for _, c := range chaosCases(t) {
		c := c
		procs := c.p.Dist.NumProcs()
		for _, overlap := range []bool{false, true} {
			want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
			if err != nil {
				t.Fatalf("%s fault-free overlap=%v: %v", c.name, overlap, err)
			}
			for _, f := range chaosFaults(seed, procs, c.p.Dist.ChainLen) {
				f := f
				t.Run(fmt.Sprintf("%s/overlap=%v/%s", c.name, overlap, f.name), func(t *testing.T) {
					before := runtime.NumGoroutine()
					got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
						Overlap:    overlap,
						Faults:     f.plan,
						Checkpoint: f.ck,
					})
					if err != nil {
						t.Fatalf("faulty run: %v", err)
					}
					if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
						t.Fatalf("faulty run differs from fault-free by %g at %v", diff, at)
					}
					if f.name == "transient-send-failure" {
						if gotStats.SendRetries == 0 {
							t.Error("no retries injected — the fault class is inert at this seed")
						}
						gotStats = dropRetries(gotStats)
					}
					if !reflect.DeepEqual(wantStats, gotStats) {
						t.Fatalf("traffic stats drifted under faults\nfault-free: %+v\nfaulty:     %+v", wantStats, gotStats)
					}
					checkGoroutines(t, before)
				})
			}
		}
	}
}

// An aborted run (crash with no checkpointing) must also wind down every
// goroutine: abort is a first-class exit path, not a leak.
func TestChaosAbortLeaksNothing(t *testing.T) {
	cs := chaosCases(t)
	before := runtime.NumGoroutine()
	_, _, err := cs[0].p.RunParallelOpts(exec.RunOptions{
		Overlap: true,
		Net:     mpi.Options{Watchdog: 2 * time.Second},
		Faults:  &mpi.FaultPlan{Crash: map[int]int64{1: 0}},
	})
	if err == nil {
		t.Fatal("crash without checkpointing returned no error")
	}
	checkGoroutines(t, before)
}

// Regression for the watchdog/fault interplay at the executor level: with
// every fault class active and every injected sleep (link delay, retry
// backoff, restart outage) longer than the watchdog period, the run must
// complete — fault sleeps count as progress, so a tight watchdog cannot
// misread injected slowness as deadlock.
func TestWatchdogToleratesInjectedFaults(t *testing.T) {
	c := chaosCases(t)[0]
	mid := c.p.Dist.NumProcs() / 2
	plan := &mpi.FaultPlan{
		Seed: 3,
		Links: map[mpi.Link]mpi.LinkFault{
			{Src: 0, Dst: 1}: {Delay: 15 * time.Millisecond, Jitter: 5 * time.Millisecond},
		},
		Sends:        &mpi.SendFaults{Rate: 0.9, MaxRetries: 2, Backoff: 8 * time.Millisecond},
		Crash:        map[int]int64{mid: c.p.Dist.ChainLen[mid] / 2},
		RestartDelay: 20 * time.Millisecond,
	}
	for _, overlap := range []bool{false, true} {
		want, _, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.p.RunParallelOpts(exec.RunOptions{
			Overlap:    overlap,
			Net:        mpi.Options{Watchdog: 5 * time.Millisecond},
			Faults:     plan,
			Checkpoint: &exec.CheckpointOptions{Every: 2},
		})
		if err != nil {
			t.Fatalf("overlap=%v: watchdog misfired under injected faults: %v", overlap, err)
		}
		if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
			t.Fatalf("overlap=%v: faulty run differs by %g at %v", overlap, diff, at)
		}
	}
}
