package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/verify"
)

// RunOptions selects the communication strategy for RunParallel.
type RunOptions struct {
	// Overlap switches the SEND phase to non-blocking Isends: after
	// computing a tile the rank issues one Isend per processor direction
	// and advances to the next tile immediately, draining the pending
	// requests at the end of its chain — the computation–communication
	// overlapping scheme of the paper's §6 (its ref. [8]), the same mode
	// simnet.Params.Overlap models. Results are bit-identical to the
	// blocking mode.
	Overlap bool
	// Net configures the runtime world: the deadlock watchdog and the
	// injected wire-cost model (see mpi.Options). The zero value means no
	// watchdog and no injected cost.
	Net mpi.Options
	// PointDelay injects CPU cost per iteration point into the compute
	// phase, the runtime counterpart of simnet.Params.IterTime (scaled the
	// same way as Net via simnet.Params.NetOptions). Real stencil kernels
	// take nanoseconds in-process, so without it every schedule looks
	// communication-bound; with it, compute–communication overlap is
	// measurable at the modelled ratio. Zero injects nothing.
	PointDelay time.Duration
	// Verify runs the static certifier (internal/verify) over the
	// compiled program before any rank starts: comm-set exactness,
	// deadlock-freedom and LDS bounds safety are proved by pure
	// arithmetic, and a disproof aborts the run with a counterexample
	// point instead of computing wrong values or hanging. The proof
	// covers both the blocking and the overlap mode.
	Verify bool
	// Legacy disables the compiled tile plans and runs the reference
	// executor: per-point Addresser evaluation (FloorDiv per dimension per
	// read) and per-point region walks for pack and unpack. Results are
	// bit-identical to the planned executor — the differential tests under
	// exec assert this for every app — so the flag exists for those tests
	// and for before/after benchmarking, not for production use.
	Legacy bool
	// Trace, when non-nil, records a measured per-tile timeline (the
	// simnet.Event schema) plus per-rank phase metrics into the tracer;
	// see Tracer. Nil disables tracing entirely: the executor takes no
	// timestamps and allocates nothing for observability.
	Trace *Tracer
	// Faults injects a deterministic fault schedule into the run (see
	// mpi.FaultPlan): link delay/jitter and transient send failures perturb
	// the runtime's send paths, Slowdown multiplies this rank's PointDelay,
	// and Crash kills a rank at a chosen tile index — recoverable only
	// with Checkpoint, otherwise the run aborts. Results stay bit-identical
	// to a fault-free run under every fault class. Setting this also sets
	// Net.Faults; a plan already present in Net is used when this is nil.
	Faults *mpi.FaultPlan
	// Checkpoint enables tile-chain checkpointing: after every
	// CheckpointOptions.Every committed tiles a rank snapshots its chain
	// position, dirty LDS prefix and pending-send ledger, and a crashed
	// rank restarts from its last snapshot with unacknowledged sends
	// replayed. Nil disables checkpointing (no per-tile overhead).
	Checkpoint *CheckpointOptions
	// Workers sets the per-rank intra-tile worker pool size: each tile's
	// wavefronts of independent points (see distrib.NewLocalSchedule)
	// execute on Workers goroutines walking precompiled stride-1 runs,
	// with the dependence-carrying dimensions still walked in order.
	// 0 picks a GOMAXPROCS-aware default (GOMAXPROCS / ranks, at least
	// 1); 1 is the serial sweep. Results are bit-identical to the serial
	// path for every value — the setting only trades wall-clock.
	Workers int
	// World, when non-nil, supplies a pooled runtime world instead of
	// constructing a fresh one per run — the reuse seam the serve layer's
	// world pool relies on. It must have exactly Dist.NumProcs() ranks and
	// no run in flight; it is Reset under this run's Net options before
	// any rank starts, so a reused world behaves bit-identically to a
	// fresh one (internal/exec reuse tests assert Global and Stats). The
	// world is not torn down on return: the caller owns it and may hand it
	// to the next run.
	World *mpi.World
	// Wire selects the transport family when this run constructs its own
	// world: mpi.WireChannel (default, in-process) or mpi.WireTCP (a
	// loopback TCP mesh — every message crosses a real socket with framed,
	// coalesced sends). Results and Stats are bit-identical across wire
	// kinds; only WireStats differ. Ignored when World is non-nil, which
	// brings its own transport. A WireTCP world constructed here is closed
	// before returning.
	Wire mpi.WireKind
	// ProcCheckpoint enables rank-process checkpointing for multi-process
	// deployments (cmd/tilerankd): a periodic snapshot of the rank's chain
	// position, LDS and wire stream counts that a relaunched process
	// restores to resume mid-conversation over the TCP mesh's resume
	// protocol. Mutually exclusive with Checkpoint (the in-process
	// tile-chain recovery). See ProcCheckpoint.
	ProcCheckpoint *ProcCheckpoint
	// Dynamic switches each rank to the hybrid static/dynamic scheduler
	// (see dynamic.go): every inbound message of the chain is posted up
	// front and claimed the moment it arrives, tiles fire as soon as their
	// dependences are satisfied with the static lex-time schedule as the
	// priority tie-break, and all sends are asynchronous (Overlap is forced
	// on). Results and mpi.Stats are bit-identical to the static overlap
	// mode; only timing changes. Requires the compiled plans (not Legacy)
	// and is mutually exclusive with ProcCheckpoint.
	Dynamic bool
	// Firing, when non-nil and Dynamic is set, records the observed firing
	// order for post-hoc certification by verify.CheckDynamicOrder. The
	// log is reset at run start, so one log can be reused across runs.
	Firing *FiringLog
}

// RunParallel executes the program as the paper's generated data-parallel
// code: one mpi rank per processor, each running its tile chain with the
// §3.2 protocol — RECEIVE (one message per (predecessor tile, processor
// direction), delivered at the minsucc tile), compute over the clamped
// TTIS lattice reading/writing the LDS through map(), SEND (one message
// per processor direction packing the union region j'_k ≥ cc_k). Results
// are written back to the global data space via the computer-owns rule.
//
// It returns the global array and the runtime's traffic statistics.
// RunParallel uses blocking sends; see RunParallelOpts for the overlapped
// mode and watchdog/cost injection.
func (p *Program) RunParallel() (*Global, mpi.Stats, error) {
	return p.RunParallelOpts(RunOptions{})
}

// RunParallelOpts is RunParallel with an explicit execution strategy.
func (p *Program) RunParallelOpts(opt RunOptions) (*Global, mpi.Stats, error) {
	// One fault plan drives both layers: the runtime injects the wire
	// perturbations, the executor consumes slowdown and crash points.
	if opt.Faults != nil {
		opt.Net.Faults = opt.Faults
	} else {
		opt.Faults = opt.Net.Faults
	}
	if opt.Verify {
		if _, err := verify.Certify(p.TS, p.Dist); err != nil {
			return nil, mpi.Stats{}, err
		}
	}
	lo, hi, err := p.TS.Nest.BoundingBox()
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	g := NewGlobal(lo, hi, p.Width)

	if opt.ProcCheckpoint != nil && opt.Checkpoint != nil {
		return nil, mpi.Stats{}, fmt.Errorf("exec: ProcCheckpoint and Checkpoint are mutually exclusive")
	}
	if opt.Dynamic {
		if opt.Legacy {
			return nil, mpi.Stats{}, fmt.Errorf("exec: Dynamic requires the compiled tile plans; Legacy is the static reference executor")
		}
		if opt.ProcCheckpoint != nil {
			return nil, mpi.Stats{}, fmt.Errorf("exec: Dynamic and ProcCheckpoint are mutually exclusive (process resume replays the static receive order)")
		}
		// Dynamic sends are always asynchronous: forcing the overlap
		// primitive here keeps dispatchSend on the Isend path and makes
		// Stats bit-identical to a static Overlap run.
		opt.Overlap = true
	}
	if opt.Firing != nil {
		opt.Firing.reset()
	}
	world := opt.World
	if world != nil {
		if world.Size() != p.Dist.NumProcs() {
			return nil, mpi.Stats{}, fmt.Errorf("exec: pooled world has %d ranks, program needs %d", world.Size(), p.Dist.NumProcs())
		}
		// A remote world is per-process and single-use: it was just
		// constructed — possibly with restored checkpoint stream state a
		// Reset would destroy — and resetting one process of a live mesh
		// cannot be coordinated from here.
		if !world.Remote() {
			world.Reset(opt.Net)
		}
	} else if opt.Wire == mpi.WireTCP {
		tw, err := mpi.NewTCPWorld(p.Dist.NumProcs(), opt.Net)
		if err != nil {
			return nil, mpi.Stats{}, fmt.Errorf("exec: tcp world: %w", err)
		}
		defer tw.Close()
		world = tw
	} else {
		world = mpi.NewWorldOpts(p.Dist.NumProcs(), opt.Net)
	}
	if opt.Trace != nil {
		opt.Trace.reset(p.Dist.NumProcs())
	}
	var (
		mu     sync.Mutex
		runErr error
	)
	rankBody := p.runRank
	if opt.Dynamic {
		rankBody = p.runRankDynamic
	}
	werr := world.RunE(func(c *mpi.Comm) {
		if err := rankBody(c, g, opt); err != nil {
			mu.Lock()
			if runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}
	})
	if opt.Trace != nil {
		opt.Trace.drain()
	}
	if runErr != nil {
		return nil, mpi.Stats{}, runErr
	}
	if werr != nil {
		return nil, mpi.Stats{}, werr
	}
	return g, world.Stats(), nil
}

// rankState caches per-rank compiled pieces.
type rankState struct {
	p    *Program
	c    *mpi.Comm
	rank int

	la   []float64 // the LDS backing array, Width values per cell
	addr *distrib.Addresser

	deps []ilin.Vec // original dependence vectors d_l
	dps  []ilin.Vec // transformed d'_l

	// Communication tables, constant over the whole chain (hoisted out of
	// the per-tile phases): for each processor-direction index i into
	// Dist.DM, sendRank[i]/recvRank[i] is the rank of pid ± DM[i] (−1 when
	// unmapped), dmFulls[i] is the direction with the mapping dimension
	// re-inserted, and dirShift[i] is the constant pack→unpack flat-address
	// shift (Addresser.DirShift). dsOrder lists tile-dependence indices in
	// receive-processing order; dsDmIdx maps each to its DM index (−1 for
	// the intra-processor direction). The DM index doubles as the message
	// tag, exactly as in the reference executor.
	sendRank []int
	recvRank []int
	dmFulls  []ilin.Vec
	dirShift []int64
	dsOrder  []int
	dsDmIdx  []int

	// Compiled-plan state (nil/unused when legacy).
	plans     *planCache
	tilePlans []*tilePlan // plan of each chain slot, for writeBack
	chainStep int64       // flat-address step per chain slot
	pBase     ilin.Vec    // P·j^S of the current tile
	jBuf      ilin.Vec    // reused global iteration point
	srcBuf    ilin.Vec    // reused dependence source point
	initBuf   []float64   // reused Initial value buffer
	reads     [][]float64 // reused kernel read views
	predBuf   ilin.Vec    // reused predecessor tile coordinate
	roBuf     []int64     // reused read-offset cursors (inline local runs)

	// Intra-tile parallelism (workers > 1 only): the sequential dimension
	// set of the dependence cone and the rank's worker pool.
	workers int
	seqDims []int
	wpool   *workerPool

	pool bufPool // recycled message buffers

	tileCounts map[int64]int64 // interior-tile detection cache
	tileIdx    ilin.BoxIndexer // perfect tile-coordinate key for it

	legacy     bool
	overlap    bool
	pointDelay time.Duration

	// tr is this rank's measured-timeline recorder; nil when tracing is
	// off, and every instrumentation site is guarded on that.
	tr *rankTracer

	// faults is the run's fault schedule (never nil to callers: all
	// FaultPlan methods are nil-safe); ckpt is the crash-recovery state,
	// nil when checkpointing is off.
	faults *mpi.FaultPlan
	ckpt   *ckptState

	// In-flight Isends in issue order. The NIC delivers them FIFO and
	// noteSendDone counts completions from its goroutine, so reapPending
	// can drop the completed prefix without blocking; Waitall at chain end
	// drains the rest.
	pending   []*mpi.Request
	sendsDone atomic.Int64
	reaped    int
	noteFn    func()
}

// newRankState builds a rank's executor state: LDS, dependence tables,
// communication tables and (unless legacy) the plan cache. c may be nil
// for tests and benchmarks that drive individual phases directly.
func newRankState(p *Program, c *mpi.Comm, r int, opt RunOptions) *rankState {
	d := p.Dist
	n := p.TS.T.N
	st := &rankState{
		p: p, c: c, rank: r,
		addr:       d.Addresser(r),
		tileCounts: map[int64]int64{},
		tileIdx:    ilin.NewBoxIndexer(p.TS.TileLo, p.TS.TileHi),
		legacy:     opt.Legacy,
		overlap:    opt.Overlap,
		pointDelay: opt.PointDelay,
		faults:     opt.Faults,
	}
	// A straggler's injected compute cost is its PointDelay, scaled.
	if s := opt.Faults.SlowdownOf(r); s > 1 {
		st.pointDelay = time.Duration(float64(st.pointDelay) * s)
	}
	if opt.Checkpoint != nil {
		every := opt.Checkpoint.Every
		if every < 1 {
			every = 1
		}
		st.ckpt = &ckptState{every: every}
	}
	st.noteFn = st.noteSendDone
	if opt.Trace != nil {
		st.tr = newRankTracer(opt.Trace, r)
	}
	st.la = make([]float64, st.addr.Size()*int64(p.Width))
	q := p.TS.Nest.Q()
	for l := 0; l < q; l++ {
		st.deps = append(st.deps, p.TS.Nest.Dep(l))
		st.dps = append(st.dps, p.TS.DP.Col(l))
	}
	st.reads = make([][]float64, q)
	st.initBuf = make([]float64, p.Width)
	st.jBuf = make(ilin.Vec, n)
	st.srcBuf = make(ilin.Vec, n)
	st.pBase = make(ilin.Vec, n)
	st.predBuf = make(ilin.Vec, n)
	st.roBuf = make([]int64, q)
	st.buildCommTables()
	if !st.legacy {
		st.plans = newPlanCache()
		st.tilePlans = make([]*tilePlan, d.ChainLen[r])
		st.chainStep = st.addr.ChainStep()
		st.workers = effectiveWorkers(opt.Workers, d.NumProcs())
		if st.workers > 1 {
			st.seqDims = distrib.SeqDims(p.TS.DP)
		}
	}
	return st
}

func (p *Program) runRank(c *mpi.Comm, g *Global, opt RunOptions) error {
	r := c.Rank()
	d := p.Dist
	st := newRankState(p, c, r, opt)
	if st.workers > 1 {
		st.wpool = newWorkerPool(st, st.workers)
		// Deferred so every exit path — normal completion, error return,
		// abort panic — winds the pool down without leaking goroutines.
		defer st.wpool.close()
	}
	crashAt := st.faults.CrashTile(r)

	start := int64(0)
	if pc := opt.ProcCheckpoint; pc != nil && pc.Resume != nil && pc.Resume.Rank == r {
		var err error
		if start, err = st.restoreProcSnapshot(pc.Resume); err != nil {
			return err
		}
	}
	for t := start; t < d.ChainLen[r]; t++ {
		// A planned crash fires at the tile boundary, before tile t's
		// receive — the first incarnation only. With checkpointing the
		// rank rewinds to its last snapshot and re-executes; without,
		// crash() panics and the world aborts.
		if t == crashAt && (st.ckpt == nil || !st.ckpt.crashed) {
			t = st.crash(t)
		}
		tile := d.TileAt(r, t)
		if st.tr != nil {
			st.tr.beginTile()
		}
		if st.legacy {
			if err := st.receivePhase(tile, t); err != nil {
				return err
			}
			st.initPhase(tile, t)
			if st.tr != nil {
				st.tr.noteRecvDone()
			}
			st.computePhase(tile, t)
			if st.tr != nil {
				st.tr.noteCompDone()
			}
			if err := st.sendPhase(tile); err != nil {
				return err
			}
		} else {
			pl := st.planFor(tile)
			st.tilePlans[t] = pl
			if err := st.receivePhasePlanned(tile, t); err != nil {
				return err
			}
			mulVecInto(st.pBase, p.TS.T.P, tile)
			st.initPhasePlanned(pl, tile, t)
			if st.tr != nil {
				st.tr.noteRecvDone()
			}
			if st.wpool != nil {
				st.computePhaseParallel(pl, t)
			} else {
				st.computePhasePlanned(pl, t)
			}
			if st.tr != nil {
				st.tr.noteCompDone()
			}
			if err := st.sendPhasePlanned(tile, pl, t); err != nil {
				return err
			}
		}
		if st.tr != nil {
			st.tr.endTile(tile)
		}
		// A completed tile is forward progress even if every other rank is
		// parked waiting for its output — keep the watchdog quiet.
		c.NoteProgress()
		st.commitTile(t)
		if pc := opt.ProcCheckpoint; pc != nil && pc.Save != nil && (t+1)%pc.every() == 0 && t+1 < d.ChainLen[r] {
			if err := st.saveProcSnapshot(pc, t+1); err != nil {
				return err
			}
		}
	}
	if err := st.checkReplayDrained(); err != nil {
		return err
	}
	// Overlap mode: every send so far was an Isend whose transfer runs on
	// the rank's NIC; make sure all of them completed before declaring the
	// chain done (receivers need the data, and Stats must be final).
	mpi.Waitall(st.pending)
	if st.tr != nil {
		st.tr.finish(&st.pool, st.wpool)
	}
	st.writeBack(g)
	return nil
}

// buildCommTables precomputes the per-rank communication tables; the
// reference executor recomputed all of them (PidOf, Rank, dm.String map
// lookups, the DS sort) once per tile per direction.
func (st *rankState) buildCommTables() {
	d := st.p.Dist
	pid := d.Pids[st.rank]
	nd := len(d.DM)
	st.sendRank = make([]int, nd)
	st.recvRank = make([]int, nd)
	st.dmFulls = make([]ilin.Vec, nd)
	st.dirShift = make([]int64, nd)
	for i, dm := range d.DM {
		st.sendRank[i] = -1
		if r, ok := d.Rank(pid.Add(dm)); ok {
			st.sendRank[i] = r
		}
		st.recvRank[i] = -1
		if r, ok := d.Rank(pid.Sub(dm)); ok {
			st.recvRank[i] = r
		}
		st.dmFulls[i] = st.dmFull(dm)
		st.dirShift[i] = st.addr.DirShift(st.dmFulls[i])
	}
	// Two tile dependencies with the same d^m but different m-components
	// deliver on one FIFO stream and can target the same receiving tile;
	// the sender emits the lower-m predecessor's message first, so process
	// receives in descending d^S_m (= ascending predecessor m) order.
	st.dsOrder = make([]int, len(st.p.TS.DS))
	for i := range st.dsOrder {
		st.dsOrder[i] = i
	}
	sort.SliceStable(st.dsOrder, func(a, b int) bool {
		return st.p.TS.DS[st.dsOrder[a]][d.M] > st.p.TS.DS[st.dsOrder[b]][d.M]
	})
	st.dsDmIdx = make([]int, len(st.p.TS.DS))
	for i, dS := range st.p.TS.DS {
		st.dsDmIdx[i] = -1
		dm := d.DmOf(dS)
		if dm.IsZero() {
			continue
		}
		for k, v := range d.DM {
			if v.Equal(dm) {
				st.dsDmIdx[i] = k
				break
			}
		}
	}
}

// commRegion delegates to the shared distrib.CommRegion (§3.2 pack/unpack
// region); sender and receiver evaluate it identically, so message
// contents pair up without extra headers.
func (st *rankState) commRegion(s ilin.Vec, dm ilin.Vec, fn func(z, jp ilin.Vec) bool) int64 {
	return st.p.Dist.CommRegion(s, dm, fn)
}

// dmFull re-inserts the mapping dimension (as 0) into a processor
// direction.
func (st *rankState) dmFull(dm ilin.Vec) ilin.Vec {
	m := st.p.Dist.M
	out := make(ilin.Vec, 0, len(dm)+1)
	out = append(out, dm[:m]...)
	out = append(out, 0)
	return append(out, dm[m:]...)
}

// subInto computes dst = a − b without allocating.
func subInto(dst, a, b ilin.Vec) {
	for k := range dst {
		dst[k] = a[k] - b[k]
	}
}

// chargePointDelay injects the modelled per-point CPU cost.
func (st *rankState) chargePointDelay(pts int64) {
	if st.pointDelay > 0 {
		time.Sleep(time.Duration(pts) * st.pointDelay)
	}
}

// noteSendDone runs on the NIC goroutine, in issue order, once per
// completed Isend (registered via Request.OnComplete).
func (st *rankState) noteSendDone() { st.sendsDone.Add(1) }

// recv is the receive used by both executor paths: plain Recv when
// tracing is off, and the timestamped RecvMsg — splitting blocked wait
// from mailbox queueing via Message.Delivered — when it is on.
func (st *rankState) recv(src, tag int) []float64 {
	if st.tr == nil {
		return st.c.Recv(src, tag)
	}
	t0 := time.Now()
	m := st.c.RecvMsg(src, tag)
	now := time.Now()
	st.tr.noteRecv(now.Sub(t0), now.Sub(m.Delivered), len(m.Data))
	return m.Data
}

// reapPending drops the completed prefix of the in-flight Isend list. The
// NIC completes requests in issue order, so the completion count alone
// identifies how many leading entries are done — no per-request Test.
func (st *rankState) reapPending() {
	done := int(st.sendsDone.Load()) - st.reaped
	if done <= 0 {
		return
	}
	if done > len(st.pending) {
		done = len(st.pending)
	}
	st.pending = st.pending[:copy(st.pending, st.pending[done:])]
	st.reaped += done
}

// receivePhase implements the paper's RECEIVE: for every tile dependence
// d^S whose predecessor is valid and for which this tile is the
// lexicographically minimum successor along d^m(d^S), receive one message
// from processor pid − d^m and unpack it into the LDS. This is the legacy
// per-point path; the message sizing uses the closed-form
// CommRegionCount, so only the unpack itself walks the region.
func (st *rankState) receivePhase(tile ilin.Vec, t int64) error {
	d := st.p.Dist
	w := st.p.Width
	for _, si := range st.dsOrder {
		di := st.dsDmIdx[si]
		if di < 0 {
			continue // same-processor dependence: data is already in the LDS
		}
		dS := st.p.TS.DS[si]
		dm := d.DM[di]
		pred := tile.Sub(dS)
		if !st.p.TS.ValidTile(pred) {
			continue
		}
		if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(tile) {
			continue
		}
		n := d.CommRegionCount(pred, dm)
		if n == 0 {
			continue
		}
		srcRank := st.recvRank[di]
		if srcRank < 0 {
			return fmt.Errorf("exec: predecessor tile %v has no rank", pred)
		}
		buf := st.recvCk(srcRank, di)
		if int64(len(buf)) != n*int64(w) {
			return fmt.Errorf("exec: rank %d tile %v: message from rank %d tag %d has %d values, expected %d", st.rank, tile, srcRank, di, len(buf), n*int64(w))
		}
		tau := pred[d.M] - d.ChainStart[st.rank]
		dmF := st.dmFulls[di]
		i := 0
		st.commRegion(pred, dm, func(z, pp ilin.Vec) bool {
			cell := st.addr.FlatUnpack(pp, dmF, tau) * int64(w)
			copy(st.la[cell:cell+int64(w)], buf[i:i+w])
			st.markDirty(cell + int64(w))
			i += w
			return true
		})
		st.pool.put(buf)
	}
	return nil
}

// interiorTile reports whether every read of every point of the tile
// resolves inside the iteration space, so the Initial injection can be
// skipped: the tile and all its D^S predecessors must be full.
func (st *rankState) interiorTile(tile ilin.Vec) bool {
	if !st.tileFull(tile) {
		return false
	}
	for _, dS := range st.p.TS.DS {
		subInto(st.predBuf, tile, dS)
		if !st.p.TS.ValidTile(st.predBuf) || !st.tileFull(st.predBuf) {
			return false
		}
	}
	return true
}

// tileFull reports whether tile s contains all TileSize lattice points,
// caching counts under the perfect BoxIndexer key (the reference executor
// keyed this cache by Vec.String, allocating per probe).
func (st *rankState) tileFull(s ilin.Vec) bool {
	key, ok := st.tileIdx.Index(s)
	if !ok {
		return false
	}
	cnt, ok := st.tileCounts[key]
	if !ok {
		cnt = st.p.TS.CountTilePoints(s, nil)
		st.tileCounts[key] = cnt
	}
	return cnt == st.p.TS.T.TileSize
}

// initPhase injects Initial values for reads that fall outside the
// iteration space (boundary tiles only). Legacy per-point path.
func (st *rankState) initPhase(tile ilin.Vec, t int64) {
	if st.interiorTile(tile) {
		return
	}
	w := st.p.Width
	n := st.p.TS.T.N
	src := make(ilin.Vec, n)
	buf := make([]float64, w)
	st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
		j := st.p.TS.GlobalOf(tile, z)
		for l := range st.deps {
			for k := 0; k < n; k++ {
				src[k] = j[k] - st.deps[l][k]
			}
			if st.p.TS.Nest.Space.Contains(src) {
				continue
			}
			st.p.Initial(src, buf)
			cell := st.addr.FlatRead(jp, st.dps[l], t) * int64(w)
			copy(st.la[cell:cell+int64(w)], buf)
			st.markDirty(cell + int64(w))
		}
		return true
	})
}

// computePhase sweeps the tile's lattice points, reading each dependence
// through map(j'−d', t) and writing the result at map(j', t). Legacy
// per-point path: every address goes through the Addresser's FloorDiv
// condensation.
func (st *rankState) computePhase(tile ilin.Vec, t int64) {
	w := st.p.Width
	q := len(st.deps)
	reads := st.reads
	var pts int64
	st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
		for l := 0; l < q; l++ {
			cell := st.addr.FlatRead(jp, st.dps[l], t) * int64(w)
			reads[l] = st.la[cell : cell+int64(w)]
		}
		j := st.p.TS.GlobalOf(tile, z)
		out := st.addr.Flat(jp, t) * int64(w)
		st.p.Kernel(j, reads, st.la[out:out+int64(w)])
		st.markDirty(out + int64(w))
		pts++
		return true
	})
	st.chargePointDelay(pts)
}

// sendPhase implements the paper's SEND: one message per processor
// direction d^m with at least one valid successor tile, packing this
// tile's communication region. Legacy path: the message is sized with the
// closed-form CommRegionCount and packed point by point into a pooled
// buffer; Send/Isend snapshot it, so the buffer returns to the pool
// immediately. In overlap mode the rank advances without waiting.
func (st *rankState) sendPhase(tile ilin.Vec) error {
	d := st.p.Dist
	w := st.p.Width
	t := tile[d.M] - d.ChainStart[st.rank]
	st.reapPending()
	for i, dm := range d.DM {
		if !d.HasSuccessor(tile, dm) {
			continue
		}
		n := d.CommRegionCount(tile, dm)
		if n == 0 {
			continue
		}
		if st.sendRank[i] < 0 {
			return fmt.Errorf("exec: successor pid of tile %v along %v has no rank", tile, dm)
		}
		buf := st.pool.get(int(n) * w)
		pos := 0
		st.commRegion(tile, dm, func(z, jp ilin.Vec) bool {
			cell := st.addr.Flat(jp, t) * int64(w)
			copy(buf[pos:pos+w], st.la[cell:cell+int64(w)])
			pos += w
			return true
		})
		// Send/Isend snapshot the buffer, so it returns to the pool either
		// way — even when the recovery layer skipped an already-delivered
		// replay.
		st.dispatchSend(st.sendRank[i], i, buf, false, t)
		st.pool.put(buf)
	}
	return nil
}

// writeBack copies this rank's computed values to the global data space
// via the computer-owns rule. Ranks own disjoint iteration points, so the
// concurrent writes touch disjoint memory. The planned path replays each
// chain slot's stored offset table; the legacy path re-derives every
// address.
func (st *rankState) writeBack(g *Global) {
	w := st.p.Width
	if st.tilePlans != nil {
		n := st.p.TS.T.N
		for t, pl := range st.tilePlans {
			tile := st.p.Dist.TileAt(st.rank, int64(t))
			if pl == nil {
				// A chain resumed from a process snapshot skipped the tiles
				// before its restore point; their LDS values are restored, and
				// the (cached, shape-keyed) plan recovers their offset tables.
				pl = st.planFor(tile)
			}
			mulVecInto(st.pBase, st.p.TS.T.P, tile)
			tOff := int64(t) * st.chainStep
			for i := 0; i < pl.npts; i++ {
				uz := pl.uz[i*n : i*n+n]
				for k := 0; k < n; k++ {
					st.jBuf[k] = st.pBase[k] + uz[k]
				}
				cell := (pl.writeOff[i] + tOff) * int64(w)
				g.Set(st.jBuf, st.la[cell:cell+int64(w)])
			}
		}
		return
	}
	for t := int64(0); t < st.p.Dist.ChainLen[st.rank]; t++ {
		tile := st.p.Dist.TileAt(st.rank, t)
		st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
			j := st.p.TS.GlobalOf(tile, z)
			cell := st.addr.Flat(jp, t) * int64(w)
			g.Set(j, st.la[cell:cell+int64(w)])
			return true
		})
	}
}
