package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
)

// RunOptions selects the communication strategy for RunParallel.
type RunOptions struct {
	// Overlap switches the SEND phase to non-blocking Isends: after
	// computing a tile the rank issues one Isend per processor direction
	// and advances to the next tile immediately, draining the pending
	// requests at the end of its chain — the computation–communication
	// overlapping scheme of the paper's §6 (its ref. [8]), the same mode
	// simnet.Params.Overlap models. Results are bit-identical to the
	// blocking mode because Isend snapshots the packed buffer.
	Overlap bool
	// Net configures the runtime world: the deadlock watchdog and the
	// injected wire-cost model (see mpi.Options). The zero value means no
	// watchdog and no injected cost.
	Net mpi.Options
	// PointDelay injects CPU cost per iteration point into the compute
	// phase, the runtime counterpart of simnet.Params.IterTime (scaled the
	// same way as Net via simnet.Params.NetOptions). Real stencil kernels
	// take nanoseconds in-process, so without it every schedule looks
	// communication-bound; with it, compute–communication overlap is
	// measurable at the modelled ratio. Zero injects nothing.
	PointDelay time.Duration
}

// RunParallel executes the program as the paper's generated data-parallel
// code: one mpi rank per processor, each running its tile chain with the
// §3.2 protocol — RECEIVE (one message per (predecessor tile, processor
// direction), delivered at the minsucc tile), compute over the clamped
// TTIS lattice reading/writing the LDS through map(), SEND (one message
// per processor direction packing the union region j'_k ≥ cc_k). Results
// are written back to the global data space via the computer-owns rule.
//
// It returns the global array and the runtime's traffic statistics.
// RunParallel uses blocking sends; see RunParallelOpts for the overlapped
// mode and watchdog/cost injection.
func (p *Program) RunParallel() (*Global, mpi.Stats, error) {
	return p.RunParallelOpts(RunOptions{})
}

// RunParallelOpts is RunParallel with an explicit execution strategy.
func (p *Program) RunParallelOpts(opt RunOptions) (*Global, mpi.Stats, error) {
	lo, hi, err := p.TS.Nest.BoundingBox()
	if err != nil {
		return nil, mpi.Stats{}, err
	}
	g := NewGlobal(lo, hi, p.Width)

	world := mpi.NewWorldOpts(p.Dist.NumProcs(), opt.Net)
	var (
		mu     sync.Mutex
		runErr error
	)
	werr := world.RunE(func(c *mpi.Comm) {
		if err := p.runRank(c, g, opt); err != nil {
			mu.Lock()
			if runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}
	})
	if runErr != nil {
		return nil, mpi.Stats{}, runErr
	}
	if werr != nil {
		return nil, mpi.Stats{}, werr
	}
	return g, world.Stats(), nil
}

// rankState caches per-rank compiled pieces.
type rankState struct {
	p    *Program
	c    *mpi.Comm
	rank int

	la   []float64 // the LDS backing array, Width values per cell
	addr addrIface

	deps   []ilin.Vec // original dependence vectors d_l
	dps    []ilin.Vec // transformed d'_l
	dmTags map[string]int

	tileCounts map[string]int64 // cache for interior-tile detection

	overlap    bool
	pointDelay time.Duration
	pending    []*mpi.Request // in-flight Isends, drained at chain end
}

// addrIface narrows the distrib.Addresser surface used here (helps tests
// substitute instrumented addressers).
type addrIface interface {
	Flat(jp ilin.Vec, t int64) int64
	FlatRead(jp, dp ilin.Vec, t int64) int64
	FlatUnpack(pp ilin.Vec, dmFull ilin.Vec, tau int64) int64
	Size() int64
}

func (p *Program) runRank(c *mpi.Comm, g *Global, opt RunOptions) error {
	r := c.Rank()
	st := &rankState{
		p: p, c: c, rank: r,
		addr:       p.Dist.Addresser(r),
		dmTags:     map[string]int{},
		tileCounts: map[string]int64{},
		overlap:    opt.Overlap,
		pointDelay: opt.PointDelay,
	}
	st.la = make([]float64, st.addr.Size()*int64(p.Width))
	q := p.TS.Nest.Q()
	for l := 0; l < q; l++ {
		st.deps = append(st.deps, p.TS.Nest.Dep(l))
		st.dps = append(st.dps, p.TS.DP.Col(l))
	}
	for i, dm := range p.Dist.DM {
		st.dmTags[dm.String()] = i
	}

	for t := int64(0); t < p.Dist.ChainLen[r]; t++ {
		tile := p.Dist.TileAt(r, t)
		if err := st.receivePhase(tile, t); err != nil {
			return err
		}
		st.initPhase(tile, t)
		st.computePhase(tile, t)
		if err := st.sendPhase(tile); err != nil {
			return err
		}
	}
	// Overlap mode: every send so far was an Isend whose transfer runs on
	// the rank's NIC; make sure all of them completed before declaring the
	// chain done (receivers need the data, and Stats must be final).
	mpi.Waitall(st.pending)
	st.writeBack(g)
	return nil
}

// commRegion delegates to the shared distrib.CommRegion (§3.2 pack/unpack
// region); sender and receiver evaluate it identically, so message
// contents pair up without extra headers.
func (st *rankState) commRegion(s ilin.Vec, dm ilin.Vec, fn func(z, jp ilin.Vec) bool) int64 {
	return st.p.Dist.CommRegion(s, dm, fn)
}

// dmFull re-inserts the mapping dimension (as 0) into a processor
// direction.
func (st *rankState) dmFull(dm ilin.Vec) ilin.Vec {
	m := st.p.Dist.M
	out := make(ilin.Vec, 0, len(dm)+1)
	out = append(out, dm[:m]...)
	out = append(out, 0)
	return append(out, dm[m:]...)
}

// receivePhase implements the paper's RECEIVE: for every tile dependence
// d^S whose predecessor is valid and for which this tile is the
// lexicographically minimum successor along d^m(d^S), receive one message
// from processor pid − d^m and unpack it into the LDS.
func (st *rankState) receivePhase(tile ilin.Vec, t int64) error {
	d := st.p.Dist
	w := st.p.Width
	// Two tile dependencies with the same d^m but different m-components
	// deliver on one FIFO stream and can target the same receiving tile;
	// the sender emits the lower-m predecessor's message first, so process
	// receives in descending d^S_m (= ascending predecessor m) order.
	order := make([]ilin.Vec, len(st.p.TS.DS))
	copy(order, st.p.TS.DS)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i][d.M] > order[j][d.M]
	})
	for _, dS := range order {
		dm := d.DmOf(dS)
		if dm.IsZero() {
			continue // same-processor dependence: data is already in the LDS
		}
		pred := tile.Sub(dS)
		if !st.p.TS.ValidTile(pred) {
			continue
		}
		if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(tile) {
			continue
		}
		n := st.commRegion(pred, dm, nil)
		if n == 0 {
			continue
		}
		srcRank, ok := d.Rank(d.PidOf(pred))
		if !ok {
			return fmt.Errorf("exec: predecessor tile %v has no rank", pred)
		}
		tag := st.dmTags[dm.String()]
		buf := st.c.Recv(srcRank, tag)
		if int64(len(buf)) != n*int64(w) {
			return fmt.Errorf("exec: rank %d tile %v: message from rank %d tag %d has %d values, expected %d", st.rank, tile, srcRank, tag, len(buf), n*int64(w))
		}
		tau := pred[d.M] - d.ChainStart[st.rank]
		dmF := st.dmFull(dm)
		i := 0
		st.commRegion(pred, dm, func(z, pp ilin.Vec) bool {
			cell := st.addr.FlatUnpack(pp, dmF, tau) * int64(w)
			copy(st.la[cell:cell+int64(w)], buf[i:i+w])
			i += w
			return true
		})
	}
	return nil
}

// interiorTile reports whether every read of every point of the tile
// resolves inside the iteration space, so the Initial injection can be
// skipped: the tile and all its D^S predecessors must be full.
func (st *rankState) interiorTile(tile ilin.Vec) bool {
	full := func(s ilin.Vec) bool {
		key := s.String()
		cnt, ok := st.tileCounts[key]
		if !ok {
			cnt = st.p.TS.TilePointCount(s)
			st.tileCounts[key] = cnt
		}
		return cnt == st.p.TS.T.TileSize
	}
	if !full(tile) {
		return false
	}
	for _, dS := range st.p.TS.DS {
		pred := tile.Sub(dS)
		if !st.p.TS.ValidTile(pred) || !full(pred) {
			return false
		}
	}
	return true
}

// initPhase injects Initial values for reads that fall outside the
// iteration space (boundary tiles only).
func (st *rankState) initPhase(tile ilin.Vec, t int64) {
	if st.interiorTile(tile) {
		return
	}
	w := st.p.Width
	n := st.p.TS.T.N
	src := make(ilin.Vec, n)
	buf := make([]float64, w)
	st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
		j := st.p.TS.GlobalOf(tile, z)
		for l := range st.deps {
			for k := 0; k < n; k++ {
				src[k] = j[k] - st.deps[l][k]
			}
			if st.p.TS.Nest.Space.Contains(src) {
				continue
			}
			st.p.Initial(src, buf)
			cell := st.addr.FlatRead(jp, st.dps[l], t) * int64(w)
			copy(st.la[cell:cell+int64(w)], buf)
		}
		return true
	})
}

// computePhase sweeps the tile's lattice points, reading each dependence
// through map(j'−d', t) and writing the result at map(j', t).
func (st *rankState) computePhase(tile ilin.Vec, t int64) {
	w := st.p.Width
	q := len(st.deps)
	reads := make([][]float64, q)
	var pts int64
	st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
		for l := 0; l < q; l++ {
			cell := st.addr.FlatRead(jp, st.dps[l], t) * int64(w)
			reads[l] = st.la[cell : cell+int64(w)]
		}
		j := st.p.TS.GlobalOf(tile, z)
		out := st.addr.Flat(jp, t) * int64(w)
		st.p.Kernel(j, reads, st.la[out:out+int64(w)])
		pts++
		return true
	})
	if st.pointDelay > 0 {
		time.Sleep(time.Duration(pts) * st.pointDelay)
	}
}

// sendPhase implements the paper's SEND: one message per processor
// direction d^m with at least one valid successor tile, packing this
// tile's communication region. In overlap mode the packed buffer goes out
// as an Isend (the pack itself must still happen now — the LDS cells are
// reused by later tiles) and the rank advances without waiting.
func (st *rankState) sendPhase(tile ilin.Vec) error {
	d := st.p.Dist
	w := st.p.Width
	t := tile[d.M] - d.ChainStart[st.rank]
	for i, dm := range d.DM {
		if !d.HasSuccessor(tile, dm) {
			continue
		}
		n := st.commRegion(tile, dm, nil)
		if n == 0 {
			continue
		}
		dstPid := d.PidOf(tile).Add(dm)
		dstRank, ok := d.Rank(dstPid)
		if !ok {
			return fmt.Errorf("exec: successor pid %v of tile %v has no rank", dstPid, tile)
		}
		buf := make([]float64, 0, n*int64(w))
		st.commRegion(tile, dm, func(z, jp ilin.Vec) bool {
			cell := st.addr.Flat(jp, t) * int64(w)
			buf = append(buf, st.la[cell:cell+int64(w)]...)
			return true
		})
		if st.overlap {
			st.pending = append(st.pending, st.c.Isend(dstRank, i, buf))
		} else {
			st.c.Send(dstRank, i, buf)
		}
	}
	return nil
}

// writeBack copies this rank's computed values to the global data space
// via the computer-owns rule. Ranks own disjoint iteration points, so the
// concurrent writes touch disjoint memory.
func (st *rankState) writeBack(g *Global) {
	w := st.p.Width
	for t := int64(0); t < st.p.Dist.ChainLen[st.rank]; t++ {
		tile := st.p.Dist.TileAt(st.rank, t)
		st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
			j := st.p.TS.GlobalOf(tile, z)
			cell := st.addr.Flat(jp, t) * int64(w)
			g.Set(j, st.la[cell:cell+int64(w)])
			return true
		})
	}
}
