package exec_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/mpi"
	"tilespace/internal/tiling"
	"tilespace/internal/verify"
)

// Property-based differential testing: instead of the curated app matrix,
// generate random uniform-dependence workloads (space bounds, dependence
// set, rectangular tile sizes), push each through the static certifier and
// every executor — sequential oracle, legacy, planned, planned with a
// crash-restart — and require bit-identical results. A failing spec is
// greedily shrunk (smaller space, fewer dependencies, smaller tiles)
// before reporting, so the log carries a minimal reproducer, not a random
// haystack. PROP_SEED reseeds the generator (default 1).

// propSpec is one generated workload: lo = 0, hi per dimension, dependence
// rows, and the diagonal tile sizes.
type propSpec struct {
	hi    []int64
	deps  [][]int64
	sizes []int64
}

func (s propSpec) String() string {
	return fmt.Sprintf("hi=%v deps=%v sizes=%v", s.hi, s.deps, s.sizes)
}

// randSpec draws a depth-2 or depth-3 workload. Dependence entries are
// non-negative with a positive leading component, so every spec is
// lexicographically positive and legal under rectangular tiling — the
// generator explores geometry, not legality rejections.
func randSpec(rng *rand.Rand) propSpec {
	n := 2 + rng.Intn(2)
	s := propSpec{hi: make([]int64, n), sizes: make([]int64, n)}
	for k := 0; k < n; k++ {
		s.hi[k] = 4 + rng.Int63n(6)    // 5..10 points per dim
		s.sizes[k] = 2 + rng.Int63n(4) // tiles 2..5 wide
	}
	ndeps := 1 + rng.Intn(3)
	seen := map[string]bool{}
	for len(s.deps) < ndeps {
		d := make([]int64, n)
		lead := rng.Intn(n)
		d[lead] = 1 + rng.Int63n(2)
		for k := lead + 1; k < n; k++ {
			d[k] = rng.Int63n(3)
		}
		key := fmt.Sprint(d)
		if !seen[key] {
			seen[key] = true
			s.deps = append(s.deps, d)
		}
	}
	return s
}

// checkSpec runs the whole pipeline on one spec. It returns a non-empty
// failure description when a property is violated, "" when the spec
// passes, and skip=true when the spec is rejected upstream (analysis or
// program construction) — rejection is not a differential failure.
func checkSpec(s propSpec) (failure string, skip bool) {
	names := make([]string, len(s.hi))
	lo := make([]int64, len(s.hi))
	for k := range names {
		names[k] = fmt.Sprintf("j%d", k)
	}
	nest, err := loopnest.Box(names, lo, s.hi, ilin.MatFromRows(s.deps...).Transpose())
	if err != nil {
		return "", true
	}
	rect, err := tiling.Rectangular(s.sizes...)
	if err != nil {
		return "", true
	}
	ts, err := tiling.Analyze(nest, rect.H)
	if err != nil {
		return "", true
	}
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		v := 1.0
		for _, r := range reads {
			v += 0.5 * r[0]
		}
		out[0] = v
	}
	p, err := exec.NewProgram(ts, -1, 1, kernel, nil)
	if err != nil {
		return "", true
	}
	if _, err := verify.Certify(ts, p.Dist); err != nil {
		return fmt.Sprintf("certifier rejected a legal spec: %v", err), false
	}
	seq, err := p.RunSequential()
	if err != nil {
		return fmt.Sprintf("sequential: %v", err), false
	}
	for _, overlap := range []bool{false, true} {
		legacy, _, err := p.RunParallelOpts(exec.RunOptions{Legacy: true, Overlap: overlap})
		if err != nil {
			return fmt.Sprintf("legacy overlap=%v: %v", overlap, err), false
		}
		planned, _, err := p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
		if err != nil {
			return fmt.Sprintf("planned overlap=%v: %v", overlap, err), false
		}
		if d, at := seq.MaxAbsDiff(legacy, p.ScanSpace); d != 0 {
			return fmt.Sprintf("legacy overlap=%v differs from sequential by %g at %v", overlap, d, at), false
		}
		if d, at := seq.MaxAbsDiff(planned, p.ScanSpace); d != 0 {
			return fmt.Sprintf("planned overlap=%v differs from sequential by %g at %v", overlap, d, at), false
		}
	}
	// The hybrid static/dynamic scheduler on generated geometry: results
	// must match the oracle bit for bit and the observed firing order must
	// certify as a linear extension of the dependence order. A static-vs-
	// dynamic divergence shrinks to a minimal reproducer like any other
	// property failure.
	log := &exec.FiringLog{}
	dyn, _, err := p.RunParallelOpts(exec.RunOptions{Dynamic: true, Firing: log})
	if err != nil {
		return fmt.Sprintf("dynamic: %v", err), false
	}
	if d, at := seq.MaxAbsDiff(dyn, p.ScanSpace); d != 0 {
		return fmt.Sprintf("dynamic differs from sequential by %g at %v", d, at), false
	}
	if _, err := verify.CheckDynamicOrder(ts, p.Dist, log.Records()); err != nil {
		return fmt.Sprintf("dynamic firing order not certified: %v", err), false
	}
	// Crash-restart on generated geometry: recovery must be bit-exact on
	// workloads nobody hand-tuned, not just the curated apps — in both
	// scheduling modes (dynamic recovery re-applies eagerly claimed
	// messages instead of replaying a receive log).
	if procs := p.Dist.NumProcs(); procs > 1 {
		mid := procs / 2
		crash := &mpi.FaultPlan{Crash: map[int]int64{mid: p.Dist.ChainLen[mid] / 2}}
		restarted, _, err := p.RunParallelOpts(exec.RunOptions{
			Overlap:    true,
			Faults:     crash,
			Checkpoint: &exec.CheckpointOptions{Every: 2},
		})
		if err != nil {
			return fmt.Sprintf("crash-restart: %v", err), false
		}
		if d, at := seq.MaxAbsDiff(restarted, p.ScanSpace); d != 0 {
			return fmt.Sprintf("crash-restart differs from sequential by %g at %v", d, at), false
		}
		dynRestarted, _, err := p.RunParallelOpts(exec.RunOptions{
			Dynamic:    true,
			Firing:     log,
			Faults:     crash,
			Checkpoint: &exec.CheckpointOptions{Every: 2},
		})
		if err != nil {
			return fmt.Sprintf("dynamic crash-restart: %v", err), false
		}
		if d, at := seq.MaxAbsDiff(dynRestarted, p.ScanSpace); d != 0 {
			return fmt.Sprintf("dynamic crash-restart differs from sequential by %g at %v", d, at), false
		}
		if _, err := verify.CheckDynamicOrder(ts, p.Dist, log.Records()); err != nil {
			return fmt.Sprintf("dynamic crash-restart firing order not certified: %v", err), false
		}
	}
	return "", false
}

// shrinkSpec greedily minimizes a failing spec: each step tries every
// single-element reduction (one dim shorter, one dependence dropped, one
// tile size smaller) and recurses on the first that still fails, stopping
// at a local minimum. fails must treat upstream-rejected specs as passing,
// which keeps shrinking inside the valid-spec region.
func shrinkSpec(s propSpec, fails func(propSpec) bool) propSpec {
	for {
		shrunk := false
		for _, cand := range shrinkSteps(s) {
			if fails(cand) {
				s, shrunk = cand, true
				break
			}
		}
		if !shrunk {
			return s
		}
	}
}

func shrinkSteps(s propSpec) []propSpec {
	var out []propSpec
	clone := func() propSpec {
		c := propSpec{
			hi:    append([]int64(nil), s.hi...),
			sizes: append([]int64(nil), s.sizes...),
		}
		for _, d := range s.deps {
			c.deps = append(c.deps, append([]int64(nil), d...))
		}
		return c
	}
	if len(s.deps) > 1 {
		for i := range s.deps {
			c := clone()
			c.deps = append(c.deps[:i], c.deps[i+1:]...)
			out = append(out, c)
		}
	}
	for k := range s.hi {
		if s.hi[k] > 2 {
			c := clone()
			c.hi[k]--
			out = append(out, c)
		}
	}
	for k := range s.sizes {
		if s.sizes[k] > 2 {
			c := clone()
			c.sizes[k]--
			out = append(out, c)
		}
	}
	return out
}

func TestRandomSpecsDifferential(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("PROP_SEED"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("PROP_SEED=%q: %v", v, err)
		}
		seed = p
	}
	rng := rand.New(rand.NewSource(seed))
	specs := 40
	if testing.Short() {
		specs = 12
	}
	ran := 0
	for i := 0; i < specs; i++ {
		s := randSpec(rng)
		failure, skip := checkSpec(s)
		if skip {
			continue
		}
		ran++
		if failure != "" {
			min := shrinkSpec(s, func(c propSpec) bool {
				f, sk := checkSpec(c)
				return !sk && f != ""
			})
			minFailure, _ := checkSpec(min)
			t.Fatalf("seed %d spec %d failed: %s\noriginal: %v\nminimal reproducer: %v\nminimal failure: %s",
				seed, i, failure, s, min, minFailure)
		}
	}
	// The generator must mostly produce runnable specs, or the property
	// coverage silently collapses to nothing.
	if ran < specs/2 {
		t.Fatalf("only %d of %d generated specs were runnable — generator drifted out of the valid region", ran, specs)
	}
	t.Logf("seed %d: %d/%d specs ran clean", seed, ran, specs)
}

// The shrinker itself is verified against a synthetic failure predicate
// with a known minimum: it must descend to that minimum, not stop early
// and not escape the failing region.
func TestSpecShrinkerMinimizes(t *testing.T) {
	s := propSpec{
		hi:    []int64{9, 8, 7},
		deps:  [][]int64{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}},
		sizes: []int64{5, 4, 3},
	}
	// "Fails" iff dimension 0 spans at least 6 points and some dependence
	// touches dimension 2: minimal form pins hi[0]=5 (hi is inclusive),
	// one dependence, and everything else floored.
	fails := func(c propSpec) bool {
		if c.hi[0] < 5 {
			return false
		}
		for _, d := range c.deps {
			if d[2] != 0 {
				return true
			}
		}
		return false
	}
	if !fails(s) {
		t.Fatal("synthetic predicate does not fail the seed spec")
	}
	min := shrinkSpec(s, fails)
	want := propSpec{hi: []int64{5, 2, 2}, deps: [][]int64{{1, 1, 1}}, sizes: []int64{2, 2, 2}}
	if min.String() != want.String() {
		t.Fatalf("shrinker stopped at %v, want %v", min, want)
	}
}
