package exec

import (
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
)

// This file implements the tile plan compiler: the static half of the
// executor's static/dynamic split. The paper's central claim is that the
// TTIS transformation makes everything rectangular and cheap — its
// generated code walks the LDS with incremental (strength-reduced)
// addresses, never dividing per point. The legacy executor re-derived
// every address through rat.FloorDiv, n·(q+1) divisions per iteration
// point. A tilePlan evaluates the Addresser once per *distinct clamped
// tile shape* and replays the result as pure slice arithmetic:
//
//   - addresses are affine in the chain slot t (Addresser.ChainStep), so
//     offsets recorded at t = 0 serve every tile of the shape;
//   - the communication region along each processor direction collapses
//     to maximal contiguous LDS runs (distrib.CommRuns), so pack and
//     unpack become a handful of bulk copies;
//   - the global iteration point j = P·j^S + U·z splits into a per-tile
//     base P·j^S plus the per-point U·z recorded in the plan.
//
// Interior tiles — the vast majority at paper scale — share one plan;
// boundary tiles get per-shape plans keyed by the hash of their clamped
// lattice point list (verified exactly on hit, so hash collisions cannot
// alias shapes).

// tilePlan is the compiled address program of one clamped tile shape on
// one rank. All offsets are flat LDS cell indices at chain slot 0; add
// t·chainStep to place them at slot t.
type tilePlan struct {
	npts int
	// zs is the clamped lattice point list (npts×n, ScanTilePoints order)
	// — the plan's identity, compared exactly on cache probes.
	zs []int64
	// uz[i·n+k] = (U·z_i)_k: the tile-relative part of the global
	// iteration point, j = P·j^S + U·z.
	uz []int64
	// writeOff[i] = Flat(j'_i, 0): the compute/pack cell of point i.
	writeOff []int64
	// readOff[i·q+l] = FlatRead(j'_i, d'_l, 0): the cell dependence l of
	// point i reads.
	readOff []int64
	// dirs[d] holds the communication region along Dist.DM[d] as
	// contiguous runs (pack order), with the fused point count.
	dirs []dirPlan
	// maxWrite/maxRead are the shape's highest write and read cell offsets
	// (slot 0), so the checkpoint layer's LDS dirty bound updates in O(1)
	// per tile instead of per point.
	maxWrite int64
	maxRead  int64
	// local is the shape's compiled intra-tile parallel schedule
	// (wavefronts → stride-1 runs → worker segments), compiled lazily on
	// first parallel execution; nil until then and in serial runs.
	local *localPlan
}

// dirPlan is one processor direction's compiled communication region.
type dirPlan struct {
	runs  []distrib.Run
	total int64
}

// planCache holds one rank's compiled plans. The full-TTIS plan (every
// lattice point unclamped, recognized by point count) is shared by all
// interior tiles; boundary shapes chain under their z-list hash.
type planCache struct {
	full     *tilePlan
	boundary map[uint64][]*tilePlan
	zScratch []int64 // reusable z-list collection buffer
}

func newPlanCache() *planCache {
	return &planCache{boundary: map[uint64][]*tilePlan{}}
}

// planFor returns the compiled plan of tile's clamped shape, compiling it
// on first encounter. Steady state (shape already cached) performs one
// lattice scan into a reused buffer plus a hash probe — no allocation.
func (st *rankState) planFor(tile ilin.Vec) *tilePlan {
	pc := st.plans
	n := st.p.TS.T.N
	pc.zScratch = pc.zScratch[:0]
	st.p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
		pc.zScratch = append(pc.zScratch, z...)
		return true
	})
	npts := len(pc.zScratch) / n
	if int64(npts) == st.p.TS.T.TileSize {
		// The clamped set is a subset of the full TTIS lattice; equal
		// cardinality means the tile is full, so the shared plan applies.
		if pc.full == nil {
			pc.full = st.compilePlan(tile, pc.zScratch)
		}
		return pc.full
	}
	key := ilin.HashInt64s(ilin.HashSeed(), pc.zScratch)
	for _, pl := range pc.boundary[key] {
		if int64sEqual(pl.zs, pc.zScratch) {
			return pl
		}
	}
	pl := st.compilePlan(tile, pc.zScratch)
	pc.boundary[key] = append(pc.boundary[key], pl)
	return pl
}

// compilePlan runs the Addresser over the clamped point list once and
// records everything the dynamic phases replay. tile is a representative
// tile of the shape (the communication region depends only on TTIS
// coordinates, so any same-shape tile yields identical runs).
func (st *rankState) compilePlan(tile ilin.Vec, zs []int64) *tilePlan {
	ts := st.p.TS
	d := st.p.Dist
	n := ts.T.N
	q := len(st.dps)
	npts := len(zs) / n
	pl := &tilePlan{
		npts:     npts,
		zs:       append([]int64(nil), zs...),
		uz:       make([]int64, npts*n),
		writeOff: make([]int64, npts),
		readOff:  make([]int64, npts*q),
		dirs:     make([]dirPlan, len(d.DM)),
	}
	jp := make(ilin.Vec, n)
	for i := 0; i < npts; i++ {
		z := zs[i*n : i*n+n]
		for k := 0; k < n; k++ {
			var s, u int64
			for l := 0; l < n; l++ {
				s += ts.T.HT.At(k, l) * z[l] // H̃' is lower-triangular
				u += ts.T.U.At(k, l) * z[l]
			}
			jp[k] = s
			pl.uz[i*n+k] = u
		}
		pl.writeOff[i] = st.addr.Flat(jp, 0)
		if pl.writeOff[i] > pl.maxWrite {
			pl.maxWrite = pl.writeOff[i]
		}
		for l := 0; l < q; l++ {
			pl.readOff[i*q+l] = st.addr.FlatRead(jp, st.dps[l], 0)
			if pl.readOff[i*q+l] > pl.maxRead {
				pl.maxRead = pl.readOff[i*q+l]
			}
		}
	}
	for di, dm := range d.DM {
		runs, total := d.CommRuns(tile, dm, st.addr)
		pl.dirs[di] = dirPlan{runs: runs, total: total}
	}
	return pl
}

// computePhasePlanned sweeps the tile through the compiled address
// program: zero divisions, zero map lookups, zero allocations per point.
func (st *rankState) computePhasePlanned(pl *tilePlan, t int64) {
	w := int64(st.p.Width)
	n := st.p.TS.T.N
	q := len(st.dps)
	tOff := t * st.chainStep
	la := st.la
	j := st.jBuf
	reads := st.reads
	pBase := st.pBase
	for i := 0; i < pl.npts; i++ {
		uz := pl.uz[i*n : i*n+n]
		for k := 0; k < n; k++ {
			j[k] = pBase[k] + uz[k]
		}
		ro := pl.readOff[i*q : i*q+q]
		for l := 0; l < q; l++ {
			cell := (ro[l] + tOff) * w
			reads[l] = la[cell : cell+w]
		}
		out := (pl.writeOff[i] + tOff) * w
		st.p.Kernel(j, reads, la[out:out+w])
	}
	st.markDirty((pl.maxWrite + tOff + 1) * w)
	st.chargePointDelay(int64(pl.npts))
}

// initPhasePlanned injects Initial values for boundary tiles through the
// plan's read-offset table instead of re-deriving addresses.
func (st *rankState) initPhasePlanned(pl *tilePlan, tile ilin.Vec, t int64) {
	if int64(pl.npts) == st.p.TS.T.TileSize && st.interiorTile(tile) {
		return
	}
	w := int64(st.p.Width)
	n := st.p.TS.T.N
	q := len(st.deps)
	tOff := t * st.chainStep
	for i := 0; i < pl.npts; i++ {
		uz := pl.uz[i*n : i*n+n]
		for k := 0; k < n; k++ {
			st.jBuf[k] = st.pBase[k] + uz[k]
		}
		for l := 0; l < q; l++ {
			for k := 0; k < n; k++ {
				st.srcBuf[k] = st.jBuf[k] - st.deps[l][k]
			}
			if st.p.TS.Nest.Space.Contains(st.srcBuf) {
				continue
			}
			st.p.Initial(st.srcBuf, st.initBuf)
			cell := (pl.readOff[i*q+l] + tOff) * w
			copy(st.la[cell:cell+w], st.initBuf)
		}
	}
	st.markDirty((pl.maxRead + tOff + 1) * w)
}

// mulVecInto computes dst = m·v without allocating.
func mulVecInto(dst ilin.Vec, m *ilin.Mat, v ilin.Vec) {
	for i := 0; i < m.Rows; i++ {
		var s int64
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		dst[i] = s
	}
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
