package exec

import (
	"fmt"
	"testing"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// planProgram builds the skewed SOR program with the §4.1 non-rectangular
// tiling — off-diagonal H̃', ragged boundaries, multi-direction
// communication — the hardest shape the plan compiler has to get right.
func planProgram(tb testing.TB) *Program {
	nest := sorNest(tb, 4, 8)
	h := ilin.NewRatMat(3, 3)
	h.Set(0, 0, rat.New(1, 2))
	h.Set(1, 1, rat.New(1, 5))
	h.Set(2, 0, rat.New(-1, 4))
	h.Set(2, 2, rat.New(1, 4))
	return buildProgram(tb, nest, h, 2, 1, sumKernel, zeroInit)
}

// TestPlanOffsetsMatchAddresser: for every tile of every rank (interior
// and boundary), the compiled write/read offsets shifted by t·chainStep
// must equal the per-point Addresser evaluation, and pBase + uz must
// reconstruct the global iteration point.
func TestPlanOffsetsMatchAddresser(t *testing.T) {
	p := planProgram(t)
	n := p.TS.T.N
	for r := 0; r < p.Dist.NumProcs(); r++ {
		st := newRankState(p, nil, r, RunOptions{})
		q := len(st.dps)
		for ti := int64(0); ti < p.Dist.ChainLen[r]; ti++ {
			tile := p.Dist.TileAt(r, ti)
			pl := st.planFor(tile)
			mulVecInto(st.pBase, p.TS.T.P, tile)
			tOff := ti * st.chainStep
			i := 0
			p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
				if got, want := pl.writeOff[i]+tOff, st.addr.Flat(jp, ti); got != want {
					t.Fatalf("rank %d tile %v point %d: writeOff %d, Flat %d", r, tile, i, got, want)
				}
				for l := 0; l < q; l++ {
					if got, want := pl.readOff[i*q+l]+tOff, st.addr.FlatRead(jp, st.dps[l], ti); got != want {
						t.Fatalf("rank %d tile %v point %d dep %d: readOff %d, FlatRead %d", r, tile, i, l, got, want)
					}
				}
				j := p.TS.GlobalOf(tile, z)
				for k := 0; k < n; k++ {
					if st.pBase[k]+pl.uz[i*n+k] != j[k] {
						t.Fatalf("rank %d tile %v point %d: pBase+uz reconstructs %v[%d] wrong (want %v)", r, tile, i, st.pBase, k, j)
					}
				}
				i++
				return true
			})
			if i != pl.npts {
				t.Fatalf("rank %d tile %v: plan has %d points, scan found %d", r, tile, pl.npts, i)
			}
		}
	}
}

// TestPlanDirsMatchCommRegion: every plan's per-direction run lists must
// cover exactly the tile's communication region, boundary tiles included,
// and the fused totals must agree with the closed-form count the legacy
// path uses for message sizing.
func TestPlanDirsMatchCommRegion(t *testing.T) {
	p := planProgram(t)
	d := p.Dist
	boundary := 0
	for r := 0; r < p.Dist.NumProcs(); r++ {
		st := newRankState(p, nil, r, RunOptions{})
		for ti := int64(0); ti < d.ChainLen[r]; ti++ {
			tile := d.TileAt(r, ti)
			pl := st.planFor(tile)
			if int64(pl.npts) != p.TS.T.TileSize {
				boundary++
			}
			for di, dm := range d.DM {
				dir := pl.dirs[di]
				if got := d.CommRegionCount(tile, dm); dir.total != got {
					t.Fatalf("rank %d tile %v dm %v: plan total %d, CommRegionCount %d", r, tile, dm, dir.total, got)
				}
				var want []int64
				d.CommRegion(tile, dm, func(z, jp ilin.Vec) bool {
					want = append(want, st.addr.Flat(jp, 0))
					return true
				})
				var got []int64
				for _, run := range dir.runs {
					for k := int64(0); k < run.N; k++ {
						got = append(got, run.Off+k)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("rank %d tile %v dm %v: runs cover %d cells, region has %d", r, tile, dm, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("rank %d tile %v dm %v cell %d: run %d, region %d", r, tile, dm, i, got[i], want[i])
					}
				}
			}
		}
	}
	if boundary == 0 {
		t.Fatal("no boundary tiles exercised — fixture too regular")
	}
}

// TestPlanCacheSharing: all interior tiles must share the single full
// plan, and re-probing a boundary tile must return its cached plan, not a
// recompilation.
func TestPlanCacheSharing(t *testing.T) {
	p := planProgram(t)
	var fullPlans, boundaryTiles int
	for r := 0; r < p.Dist.NumProcs(); r++ {
		st := newRankState(p, nil, r, RunOptions{})
		for ti := int64(0); ti < p.Dist.ChainLen[r]; ti++ {
			tile := p.Dist.TileAt(r, ti)
			pl := st.planFor(tile)
			if again := st.planFor(tile); again != pl {
				t.Fatalf("tile %v recompiled on second probe", tile)
			}
			if int64(pl.npts) == p.TS.T.TileSize {
				fullPlans++
				if pl != st.plans.full {
					t.Fatalf("full tile %v did not use the shared plan", tile)
				}
			} else {
				boundaryTiles++
			}
		}
	}
	if fullPlans == 0 {
		t.Fatal("no full tiles anywhere — fixture too small")
	}
	if boundaryTiles == 0 {
		t.Fatal("no boundary tiles anywhere — fixture too regular")
	}
}

// TestComputePhasePlannedZeroAlloc: the compiled compute sweep must not
// allocate — the acceptance bar for the strength-reduced path.
func TestComputePhasePlannedZeroAlloc(t *testing.T) {
	p := planProgram(t)
	st := newRankState(p, nil, 0, RunOptions{})
	tile := p.Dist.TileAt(0, 0)
	pl := st.planFor(tile)
	mulVecInto(st.pBase, p.TS.T.P, tile)
	st.computePhasePlanned(pl, 0) // warm up
	if allocs := testing.AllocsPerRun(20, func() {
		st.computePhasePlanned(pl, 0)
	}); allocs != 0 {
		t.Fatalf("planned compute sweep allocates %.1f times per tile, want 0", allocs)
	}
}

// fullTileSlot returns a (rank, chain slot) holding a full tile, falling
// back to (0, 0) when none exists.
func fullTileSlot(p *Program) (int, int64) {
	probe := newRankState(p, nil, 0, RunOptions{})
	for r := 0; r < p.Dist.NumProcs(); r++ {
		for ti := int64(0); ti < p.Dist.ChainLen[r]; ti++ {
			if probe.tileFull(p.Dist.TileAt(r, ti)) {
				return r, ti
			}
		}
	}
	return 0, 0
}

// BenchmarkComputePhase compares the compiled compute sweep against the
// legacy per-point Addresser path on one interior tile, reporting
// points/sec for EXPERIMENTS.md (the acceptance bar is ≥2× and zero
// allocations for the planned sub-benchmark).
func BenchmarkComputePhase(b *testing.B) {
	p := planProgram(b)
	r, ti := fullTileSlot(p)
	stP := newRankState(p, nil, r, RunOptions{})
	stL := newRankState(p, nil, r, RunOptions{Legacy: true})
	tile := p.Dist.TileAt(r, ti)
	pl := stP.planFor(tile)
	mulVecInto(stP.pBase, p.TS.T.P, tile)
	pts := float64(pl.npts)
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stP.computePhasePlanned(pl, ti)
		}
		b.ReportMetric(pts*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stL.computePhase(tile, ti)
		}
		b.ReportMetric(pts*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	// Pooled steady state is held to the same zero-allocation bar as the
	// serial planned sweep (the CI grep covers every /planned* variant).
	for _, wk := range []int{2, 4} {
		b.Run(fmt.Sprintf("planned-workers%d", wk), func(b *testing.B) {
			stW := newRankState(p, nil, r, RunOptions{Workers: wk})
			stW.wpool = newWorkerPool(stW, wk)
			defer stW.wpool.close()
			plW := stW.planFor(tile)
			mulVecInto(stW.pBase, p.TS.T.P, tile)
			stW.computePhaseParallel(plW, ti) // compile local plan, warm pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stW.computePhaseParallel(plW, ti)
			}
			b.ReportMetric(pts*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkPackUnpack compares run-based bulk-copy packing/unpacking
// against the legacy per-point region walks, over every processor
// direction of one interior tile.
func BenchmarkPackUnpack(b *testing.B) {
	p := planProgram(b)
	d := p.Dist
	w := p.Width
	r, ti := fullTileSlot(p)
	stP := newRankState(p, nil, r, RunOptions{})
	stL := newRankState(p, nil, r, RunOptions{Legacy: true})
	tile := p.Dist.TileAt(r, ti)
	pl := stP.planFor(tile)
	var maxVals, totalPts int64
	for _, dir := range pl.dirs {
		if dir.total > maxVals {
			maxVals = dir.total
		}
		totalPts += dir.total
	}
	if totalPts == 0 {
		b.Fatal("benchmark tile has empty communication regions")
	}
	buf := make([]float64, maxVals*int64(w))
	pts := float64(totalPts)
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		tOff := ti * stP.chainStep
		for i := 0; i < b.N; i++ {
			for di := range d.DM {
				dir := &pl.dirs[di]
				pos := 0
				for _, run := range dir.runs { // pack
					cell := (run.Off + tOff) * int64(w)
					nn := int(run.N) * w
					copy(buf[pos:pos+nn], stP.la[cell:cell+int64(nn)])
					pos += nn
				}
				base := tOff + stP.dirShift[di]
				pos = 0
				for _, run := range dir.runs { // unpack
					cell := (run.Off + base) * int64(w)
					nn := int(run.N) * w
					copy(stP.la[cell:cell+int64(nn)], buf[pos:pos+nn])
					pos += nn
				}
			}
		}
		b.ReportMetric(2*pts*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for di, dm := range d.DM {
				pos := 0
				stL.commRegion(tile, dm, func(z, jp ilin.Vec) bool { // pack
					cell := stL.addr.Flat(jp, ti) * int64(w)
					copy(buf[pos:pos+w], stL.la[cell:cell+int64(w)])
					pos += w
					return true
				})
				dmF := stL.dmFulls[di]
				pos = 0
				stL.commRegion(tile, dm, func(z, pp ilin.Vec) bool { // unpack
					cell := stL.addr.FlatUnpack(pp, dmF, ti) * int64(w)
					copy(stL.la[cell:cell+int64(w)], buf[pos:pos+w])
					pos += w
					return true
				})
			}
		}
		b.ReportMetric(2*pts*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
}
