package exec

import (
	"sort"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
)

// This file compiles and executes the intra-tile parallel plan: the
// second tiling level. distrib.NewLocalSchedule splits a tile shape into
// wavefronts of mutually independent points (see distrib/local.go for the
// safety argument); here each wavefront is decomposed into maximal
// stride-1 footprint runs (write cell and every read cell contiguous, the
// same strength reduction pack runs use) and the runs are statically
// pre-partitioned across the rank's worker pool by point count. The local
// plan is cached on its tilePlan, so steady state allocates nothing: the
// pool walks precompiled segments, one barrier per wavefront, and the
// output is bit-identical to the serial sweep for any worker count.

// localRun is one compiled stride-1 stretch: n points starting at
// order[start], write cell wo at chain slot 0 (read cells in frontPlan.ro).
type localRun struct {
	start int32
	n     int32
	wo    int64
}

// frontPlan is one compiled wavefront: its points (localPlan.order[lo:hi],
// sorted by write cell), the stride-1 run decomposition, and the static
// per-worker run segments balanced by point count.
type frontPlan struct {
	lo, hi int32
	npts   int
	runs   []localRun
	// ro[ri·q+l] is the first-point read cell of dependence l in run ri.
	ro []int64
	// segs[w] is worker w's [runLo, runHi) slice of runs.
	segs [][2]int32
}

// localPlan is the compiled intra-tile schedule of one tile shape for a
// fixed worker count.
type localPlan struct {
	workers int
	order   []int32
	fronts  []frontPlan
}

// localFor returns the tile shape's compiled local plan, compiling it on
// first use. Worker count is fixed for the whole run, so a cached plan is
// always valid for this rank.
func (st *rankState) localFor(pl *tilePlan) *localPlan {
	if pl.local == nil {
		pl.local = st.compileLocal(pl)
	}
	return pl.local
}

// compileLocal derives the shape's wavefronts, extracts footprint runs
// per front, and pre-partitions each front's runs across the pool.
func (st *rankState) compileLocal(pl *tilePlan) *localPlan {
	q := len(st.dps)
	workers := st.workers
	sched := distrib.NewLocalSchedule(st.p.TS, pl.zs, st.seqDims)
	lp := &localPlan{workers: workers, order: make([]int32, 0, pl.npts)}
	lp.fronts = make([]frontPlan, 0, len(sched.Fronts))
	for _, front := range sched.Fronts {
		f := frontPlan{lo: int32(len(lp.order)), npts: len(front)}
		idxs := append([]int32(nil), front...)
		sort.Slice(idxs, func(a, b int) bool { return pl.writeOff[idxs[a]] < pl.writeOff[idxs[b]] })
		runs := distrib.FootprintRuns(idxs, pl.writeOff, pl.readOff, q)
		f.runs = make([]localRun, len(runs))
		f.ro = make([]int64, len(runs)*q)
		weights := make([]int64, len(runs))
		for ri, r := range runs {
			f.runs[ri] = localRun{start: f.lo + r.Start, n: r.N, wo: r.WO}
			copy(f.ro[ri*q:ri*q+q], r.RO)
			weights[ri] = int64(r.N)
		}
		segs := ilin.SplitByWeight(weights, workers)
		f.segs = make([][2]int32, len(segs))
		for si, s := range segs {
			f.segs[si] = [2]int32{int32(s[0]), int32(s[1])}
		}
		lp.order = append(lp.order, idxs...)
		f.hi = int32(len(lp.order))
		lp.fronts = append(lp.fronts, f)
	}
	return lp
}

// execLocalRuns executes runs [rlo, rhi) of front fi through the compiled
// footprint: within a run every address is an increment, so the inner
// loop is a contiguous slice walk. j, reads and ro are caller-owned
// scratch (the rank's own buffers on the inline path, per-worker scratch
// on the pool path), which is what keeps concurrent segments disjoint.
func (st *rankState) execLocalRuns(pl *tilePlan, lp *localPlan, fi, rlo, rhi int, t int64, j ilin.Vec, reads [][]float64, ro []int64) {
	w := int64(st.p.Width)
	n := st.p.TS.T.N
	q := len(st.dps)
	tOff := t * st.chainStep
	la := st.la
	pBase := st.pBase
	f := &lp.fronts[fi]
	for ri := rlo; ri < rhi; ri++ {
		run := f.runs[ri]
		wo := (run.wo + tOff) * w
		base := f.ro[ri*q : ri*q+q]
		for l := 0; l < q; l++ {
			ro[l] = (base[l] + tOff) * w
		}
		for i := int32(0); i < run.n; i++ {
			idx := int(lp.order[run.start+i])
			uz := pl.uz[idx*n : idx*n+n]
			for k := 0; k < n; k++ {
				j[k] = pBase[k] + uz[k]
			}
			for l := 0; l < q; l++ {
				reads[l] = la[ro[l] : ro[l]+w]
				ro[l] += w
			}
			st.p.Kernel(j, reads, la[wo:wo+w])
			wo += w
		}
	}
}

// computePhaseParallel is the pooled counterpart of computePhasePlanned:
// wavefront by wavefront, each front's run segments execute on the worker
// pool with a barrier before the next front starts. Fronts too small to
// feed every worker run inline on the rank goroutine — dispatch overhead
// would exceed the work, and the output is identical either way.
func (st *rankState) computePhaseParallel(pl *tilePlan, t int64) {
	lp := st.localFor(pl)
	for fi := range lp.fronts {
		f := &lp.fronts[fi]
		if f.npts < st.wpool.n || len(f.runs) == 0 {
			st.execLocalRuns(pl, lp, fi, 0, len(f.runs), t, st.jBuf, st.reads, st.roBuf)
			continue
		}
		st.wpool.dispatch(st, pl, lp, fi, t)
	}
	st.markDirty((pl.maxWrite + t*st.chainStep + 1) * int64(st.p.Width))
	// The injected per-point CPU cost models a kernel the pool would
	// genuinely parallelize, so charge the critical path, not the sum.
	st.chargePointDelay((int64(pl.npts) + int64(st.wpool.n) - 1) / int64(st.wpool.n))
}
