package exec_test

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
	"tilespace/internal/verify"
)

// The hybrid static/dynamic battery. Three claims pin the dynamic mode to
// the static one: (1) the Global is bit-identical to the sequential oracle
// and the static executor for every app × tiling × transport, (2) the
// traffic Stats equal the static overlap mode's exactly — the wire sees
// the identical message sequence, only timing moves, and (3) every
// observed firing order is certified by verify.CheckDynamicOrder as a
// linear extension of the dependence order, including under every chaos
// fault class (where keep-first recording across crash rewinds is what
// makes the certificate hold).

// TestDynamicMatchesStaticDifferential is the full differential matrix:
// every workload × tiling family × {channel, TCP} must produce
// bit-identical results and equal Stats in dynamic mode, and the recorded
// firing order must certify.
func TestDynamicMatchesStaticDifferential(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && slowDiffCases[c.name] {
				t.Skipf("%s is one of the two slowest differential cases; run without -short", c.name)
			}
			seq, err := c.p.RunSequential()
			if err != nil {
				t.Fatal(err)
			}
			gS, sS, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: true})
			if err != nil {
				t.Fatalf("static overlap: %v", err)
			}
			wires := []mpi.WireKind{mpi.WireChannel, mpi.WireTCP}
			if testing.Short() {
				wires = wires[:1] // the TCP transport matrix has its own CI job
			}
			for _, wire := range wires {
				log := &exec.FiringLog{}
				gD, sD, err := c.p.RunParallelOpts(exec.RunOptions{
					Dynamic: true, Wire: wire, Firing: log,
				})
				if err != nil {
					t.Fatalf("dynamic wire=%v: %v", wire, err)
				}
				if diff, at := seq.MaxAbsDiff(gD, c.p.ScanSpace); diff != 0 {
					t.Fatalf("wire=%v: dynamic differs from sequential by %g at %v", wire, diff, at)
				}
				if diff, at := gS.MaxAbsDiff(gD, c.p.ScanSpace); diff != 0 {
					t.Fatalf("wire=%v: dynamic differs from static by %g at %v", wire, diff, at)
				}
				if !reflect.DeepEqual(sS, sD) {
					t.Fatalf("wire=%v: traffic stats differ\nstatic:  %+v\ndynamic: %+v", wire, sS, sD)
				}
				edges, err := verify.CheckDynamicOrder(c.p.TS, c.p.Dist, log.Records())
				if err != nil {
					t.Fatalf("wire=%v: firing order not certified: %v", wire, err)
				}
				if c.p.Dist.NumProcs() > 1 && edges == 0 {
					t.Fatalf("wire=%v: certificate proved zero dependence edges on a %d-rank program", wire, c.p.Dist.NumProcs())
				}
			}
		})
	}
}

// TestChaosMatrixDynamic runs the dynamic scheduler under every fault
// class × worker count: results and Stats must match the fault-free
// static overlap run, the firing order must still certify (crash-restart
// exercises keep-first recording with a live worker pool), and teardown
// must leak no goroutines.
func TestChaosMatrixDynamic(t *testing.T) {
	seed := chaosSeed(t)
	for _, c := range chaosCases(t) {
		c := c
		procs := c.p.Dist.NumProcs()
		for _, w := range workerCounts() {
			if testing.Short() && w > 1 {
				continue
			}
			want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Workers: w, Overlap: true})
			if err != nil {
				t.Fatalf("%s workers=%d fault-free static: %v", c.name, w, err)
			}
			for _, f := range chaosFaults(seed, procs, c.p.Dist.ChainLen) {
				f := f
				t.Run(fmt.Sprintf("%s/workers=%d/%s", c.name, w, f.name), func(t *testing.T) {
					before := runtime.NumGoroutine()
					log := &exec.FiringLog{}
					got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
						Dynamic:    true,
						Workers:    w,
						Firing:     log,
						Faults:     f.plan,
						Checkpoint: f.ck,
					})
					if err != nil {
						t.Fatalf("faulty dynamic run: %v", err)
					}
					if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
						t.Fatalf("faulty dynamic run differs from fault-free static by %g at %v", diff, at)
					}
					if f.name == "transient-send-failure" {
						if gotStats.SendRetries == 0 {
							t.Error("no retries injected — the fault class is inert at this seed")
						}
						gotStats = dropRetries(gotStats)
					}
					if !reflect.DeepEqual(wantStats, gotStats) {
						t.Fatalf("traffic stats drifted under faults\nstatic:  %+v\ndynamic: %+v", wantStats, gotStats)
					}
					if _, err := verify.CheckDynamicOrder(c.p.TS, c.p.Dist, log.Records()); err != nil {
						t.Fatalf("firing order under %s not certified: %v", f.name, err)
					}
					checkGoroutines(t, before)
				})
			}
		}
	}
}

// A dynamic run that crashes without checkpointing must abort cleanly,
// like the static path.
func TestDynamicAbortLeaksNothing(t *testing.T) {
	c := chaosCases(t)[0]
	before := runtime.NumGoroutine()
	_, _, err := c.p.RunParallelOpts(exec.RunOptions{
		Dynamic: true,
		Faults:  &mpi.FaultPlan{Crash: map[int]int64{1: 0}},
	})
	if err == nil {
		t.Fatal("crash without checkpointing returned no error")
	}
	checkGoroutines(t, before)
}

// Option validation: the dynamic scheduler requires compiled plans and
// the in-process recovery layer.
func TestDynamicOptionValidation(t *testing.T) {
	c := diffCases(t)[0]
	if _, _, err := c.p.RunParallelOpts(exec.RunOptions{Dynamic: true, Legacy: true}); err == nil {
		t.Error("Dynamic+Legacy was accepted")
	}
	if _, _, err := c.p.RunParallelOpts(exec.RunOptions{Dynamic: true, ProcCheckpoint: &exec.ProcCheckpoint{}}); err == nil {
		t.Error("Dynamic+ProcCheckpoint was accepted")
	}
}

// certifiedFiring produces a certified firing log for mutation tests: a
// real dynamic run of a multi-rank program, so mutations are injected
// into a log the certifier provably accepts.
func certifiedFiring(t *testing.T) (diffCase, []verify.FiringRecord) {
	t.Helper()
	c := chaosCases(t)[0]
	log := &exec.FiringLog{}
	if _, _, err := c.p.RunParallelOpts(exec.RunOptions{Dynamic: true, Firing: log}); err != nil {
		t.Fatal(err)
	}
	recs := log.Records()
	if _, err := verify.CheckDynamicOrder(c.p.TS, c.p.Dist, recs); err != nil {
		t.Fatalf("baseline log not certified: %v", err)
	}
	return c, recs
}

// violationOf asserts err is a *verify.Violation of the wanted rule with a
// concrete counterexample tile, and returns it.
func violationOf(t *testing.T, err error, rule string) *verify.Violation {
	t.Helper()
	if err == nil {
		t.Fatalf("mutated log certified — %s mutation not rejected", rule)
	}
	var v *verify.Violation
	if !errors.As(err, &v) {
		t.Fatalf("%s mutation rejected without a Violation: %v", rule, err)
	}
	if v.Rule != rule {
		t.Fatalf("%s mutation rejected under rule %q: %v", rule, v.Rule, err)
	}
	if v.Tile == nil {
		t.Fatalf("%s violation carries no counterexample tile: %v", rule, err)
	}
	return v
}

// Seeded mutations of a certified firing log: each of the three dynamic
// scheduler bug classes must be rejected with a concrete tile
// counterexample.
func TestCheckDynamicOrderRejectsMutations(t *testing.T) {
	c, recs := certifiedFiring(t)

	t.Run("fire-before-dependence", func(t *testing.T) {
		// Pick a chain-head tile (slot 0: no intra-rank predecessor, so the
		// static tie-break stays intact) with a cross-rank dependence, and
		// collapse its Seq onto its latest-firing predecessor's — the tile
		// now fires no later than a dependence source.
		mut := append([]verify.FiringRecord(nil), recs...)
		seqOf := map[string]int64{}
		for _, r := range recs {
			seqOf[r.Tile.String()] = r.Seq
		}
		victim := -1
		var predSeq int64
		for i, r := range mut {
			if r.Slot != 0 {
				continue
			}
			best := int64(-1)
			for _, dS := range c.p.TS.DS {
				pred := r.Tile.Sub(dS)
				if !c.p.TS.ValidTile(pred) {
					continue
				}
				if ps, ok := seqOf[pred.String()]; ok && ps > best {
					best = ps
				}
			}
			if best >= 0 {
				victim, predSeq = i, best
				break
			}
		}
		if victim < 0 {
			t.Fatal("no chain-head tile with a cross-rank dependence found")
		}
		mut[victim].Seq = predSeq
		v := violationOf(t, func() error {
			_, err := verify.CheckDynamicOrder(c.p.TS, c.p.Dist, mut)
			return err
		}(), "dynamic-order")
		if !v.Tile.Equal(mut[victim].Tile) {
			t.Fatalf("counterexample names tile %v, mutation was at %v", v.Tile, mut[victim].Tile)
		}
	})

	t.Run("dropped-decrement", func(t *testing.T) {
		// Drop one tile's firing record: its dependence counter was never
		// released, so the task never ran.
		drop := len(recs) / 2
		mut := append(append([]verify.FiringRecord(nil), recs[:drop]...), recs[drop+1:]...)
		v := violationOf(t, func() error {
			_, err := verify.CheckDynamicOrder(c.p.TS, c.p.Dist, mut)
			return err
		}(), "dynamic-coverage")
		if !v.Tile.Equal(recs[drop].Tile) {
			t.Fatalf("counterexample names tile %v, dropped record was %v", v.Tile, recs[drop].Tile)
		}
	})

	t.Run("stale-epoch-fire", func(t *testing.T) {
		// Re-fire an already-committed tile at the end of the run — a
		// rewound or duplicated task re-entering the pool.
		stale := recs[len(recs)/3]
		stale.Seq = int64(len(recs))
		mut := append(append([]verify.FiringRecord(nil), recs...), stale)
		v := violationOf(t, func() error {
			_, err := verify.CheckDynamicOrder(c.p.TS, c.p.Dist, mut)
			return err
		}(), "dynamic-duplicate")
		if !v.Tile.Equal(stale.Tile) {
			t.Fatalf("counterexample names tile %v, stale fire was %v", v.Tile, stale.Tile)
		}
	})
}
