package exec

import (
	"fmt"

	"tilespace/internal/ilin"
)

// This file holds the dynamic half of the compiled communication path:
// run-based pack/unpack (bulk copies over the plan's contiguous LDS runs)
// and the message-buffer pool. The pool plus ownership-transfer sends
// (mpi.SendOwned/IsendOwned) close the allocation loop: a sender packs
// into a pooled buffer, ownership rides the message to the receiver, and
// the receiver recycles the unpacked buffer into its own pool for its next
// send. Buffers circulate around the processor ring, so steady-state
// execution allocates nothing per tile.

// maxPoolBufs bounds the freelist; a rank rarely holds more live buffers
// than it has processor directions, but unbalanced chains can briefly
// accumulate extras.
const maxPoolBufs = 32

// bufPool is a per-rank freelist of message buffers. Not safe for
// concurrent use: each rank owns exactly one.
type bufPool struct {
	free [][]float64
	// hits/misses feed the tracer's pool-effectiveness metric; plain int
	// increments, so they cost nothing measurable with tracing off.
	hits   int
	misses int
}

// get returns a length-n buffer, reusing the freelist when a large enough
// buffer is available.
func (p *bufPool) get(n int) []float64 {
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			b := p.free[i][:n]
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.hits++
			return b
		}
	}
	p.misses++
	return make([]float64, n)
}

// put recycles a buffer the rank owns (a packed buffer after a copying
// Send, or a received message after unpacking). Recycling the same buffer
// twice would hand one backing array to two future messages — silent data
// corruption — so aliasing an entry already in the freelist panics. The
// scan is at most maxPoolBufs pointer compares, off the hot path.
func (p *bufPool) put(b []float64) {
	if cap(b) == 0 {
		return
	}
	for _, f := range p.free {
		if len(f) > 0 && len(b) > 0 && &f[0] == &b[0] {
			panic("exec: bufPool.put: buffer is already in the pool (double recycle)")
		}
	}
	if len(p.free) >= maxPoolBufs {
		return
	}
	p.free = append(p.free, b)
}

// sendPhasePlanned is the compiled SEND: for each processor direction the
// plan's run list turns packing into a few bulk copies, and the packed
// buffer leaves via an ownership-transfer send, to be recycled by the
// receiver. Message order, tags and sizes are identical to the legacy
// sendPhase, so mpi.Stats match bit for bit.
func (st *rankState) sendPhasePlanned(tile ilin.Vec, pl *tilePlan, t int64) error {
	d := st.p.Dist
	w := st.p.Width
	st.reapPending()
	tOff := t * st.chainStep
	for i, dm := range d.DM {
		if !d.HasSuccessor(tile, dm) {
			continue
		}
		dir := &pl.dirs[i]
		if dir.total == 0 {
			continue
		}
		if st.sendRank[i] < 0 {
			return fmt.Errorf("exec: successor pid of tile %v along %v has no rank", tile, dm)
		}
		buf := st.pool.get(int(dir.total) * w)
		pos := 0
		for _, run := range dir.runs {
			cell := (run.Off + tOff) * int64(w)
			nn := int(run.N) * w
			copy(buf[pos:pos+nn], st.la[cell:cell+int64(nn)])
			pos += nn
		}
		// Ownership transfers with the send; when the recovery layer skips
		// an already-delivered replay instead, the buffer stays ours and
		// goes straight back to the pool.
		if st.dispatchSend(st.sendRank[i], i, buf, true, t) {
			st.pool.put(buf)
		}
	}
	return nil
}

// receivePhasePlanned is the compiled RECEIVE: the predecessor tile's
// shape is compiled (or fetched) with this rank's addresser, and its run
// list is replayed shifted by the constant pack→unpack offset
// (Addresser.DirShift) plus the predecessor's chain slot — contiguity in
// pack space is contiguity in unpack space, so unpacking is the same few
// bulk copies. The unpacked buffer joins this rank's pool.
func (st *rankState) receivePhasePlanned(tile ilin.Vec, t int64) error {
	d := st.p.Dist
	w := st.p.Width
	for _, si := range st.dsOrder {
		di := st.dsDmIdx[si]
		if di < 0 {
			continue // same-processor dependence: data is already in the LDS
		}
		dS := st.p.TS.DS[si]
		dm := d.DM[di]
		pred := tile.Sub(dS)
		if !st.p.TS.ValidTile(pred) {
			continue
		}
		if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(tile) {
			continue
		}
		predPlan := st.planFor(pred)
		dir := &predPlan.dirs[di]
		if dir.total == 0 {
			continue
		}
		srcRank := st.recvRank[di]
		if srcRank < 0 {
			return fmt.Errorf("exec: predecessor tile %v has no rank", pred)
		}
		buf := st.recvCk(srcRank, di)
		if int64(len(buf)) != dir.total*int64(w) {
			return fmt.Errorf("exec: rank %d tile %v: message from rank %d tag %d has %d values, expected %d", st.rank, tile, srcRank, di, len(buf), dir.total*int64(w))
		}
		base := (pred[d.M]-d.ChainStart[st.rank])*st.chainStep + st.dirShift[di]
		pos := 0
		for _, run := range dir.runs {
			cell := (run.Off + base) * int64(w)
			nn := int(run.N) * w
			copy(st.la[cell:cell+int64(nn)], buf[pos:pos+nn])
			st.markDirty(cell + int64(nn))
			pos += nn
		}
		st.pool.put(buf)
	}
	return nil
}
