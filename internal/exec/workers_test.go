package exec_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
)

// The intra-tile worker matrix: every differential case must produce a
// bit-identical Global and identical traffic stats for every pool size,
// and the chaos/checkpoint machinery must hold under a live pool — a
// crash-restart recovers bit for bit, and an abort tears the pool down
// without leaking a goroutine.

// workerCounts is the pool-size axis: serial baseline, an odd size that
// splits runs unevenly, and whatever parallelism the host actually has.
func workerCounts() []int {
	out := []int{1, 3}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 3 {
		out = append(out, g)
	}
	return out
}

func TestWorkerMatrixDifferential(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && slowDiffCases[c.name] {
				t.Skipf("%s is one of the two slowest differential cases; run without -short", c.name)
			}
			for _, overlap := range []bool{false, true} {
				want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Workers: 1, Overlap: overlap})
				if err != nil {
					t.Fatalf("workers=1 overlap=%v: %v", overlap, err)
				}
				for _, w := range workerCounts()[1:] {
					got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{Workers: w, Overlap: overlap})
					if err != nil {
						t.Fatalf("workers=%d overlap=%v: %v", w, overlap, err)
					}
					if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
						t.Fatalf("workers=%d overlap=%v: differs from serial by %g at %v", w, overlap, diff, at)
					}
					if !reflect.DeepEqual(wantStats, gotStats) {
						t.Fatalf("workers=%d overlap=%v: traffic stats drifted\nserial: %+v\npooled: %+v",
							w, overlap, wantStats, gotStats)
					}
				}
			}
		})
	}
}

// TestChaosWorkerPool runs the full injected-fault matrix with a live
// worker pool on every rank: recovery — including a checkpointed
// crash-restart that rebuilds the rank state (and with it a fresh pool)
// mid-chain — must reproduce the fault-free Global and stats bit for bit,
// and wind down every pool goroutine.
func TestChaosWorkerPool(t *testing.T) {
	seed := chaosSeed(t)
	for _, c := range chaosCases(t) {
		c := c
		procs := c.p.Dist.NumProcs()
		for _, w := range workerCounts()[1:] {
			want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Workers: w, Overlap: true})
			if err != nil {
				t.Fatalf("%s workers=%d fault-free: %v", c.name, w, err)
			}
			for _, f := range chaosFaults(seed, procs, c.p.Dist.ChainLen) {
				f := f
				t.Run(fmt.Sprintf("%s/workers=%d/%s", c.name, w, f.name), func(t *testing.T) {
					before := runtime.NumGoroutine()
					got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
						Workers:    w,
						Overlap:    true,
						Faults:     f.plan,
						Checkpoint: f.ck,
					})
					if err != nil {
						t.Fatalf("faulty run: %v", err)
					}
					if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
						t.Fatalf("faulty run differs from fault-free by %g at %v", diff, at)
					}
					if f.name == "transient-send-failure" {
						gotStats = dropRetries(gotStats)
					}
					if !reflect.DeepEqual(wantStats, gotStats) {
						t.Fatalf("traffic stats drifted under faults\nfault-free: %+v\nfaulty:     %+v", wantStats, gotStats)
					}
					checkGoroutines(t, before)
				})
			}
		}
	}
}

// An abort with a live pool — crash, no checkpoint — must tear down the
// per-rank worker goroutines along with the ranks, NICs and watchdog.
func TestAbortWithWorkerPoolLeaksNothing(t *testing.T) {
	cs := chaosCases(t)
	before := runtime.NumGoroutine()
	_, _, err := cs[0].p.RunParallelOpts(exec.RunOptions{
		Workers: 3,
		Overlap: true,
		Net:     mpi.Options{Watchdog: 2 * time.Second},
		Faults:  &mpi.FaultPlan{Crash: map[int]int64{1: 0}},
	})
	if err == nil {
		t.Fatal("crash without checkpointing returned no error")
	}
	checkGoroutines(t, before)
}
