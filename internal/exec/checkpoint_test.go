package exec_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
)

// Crash-at-tile-k restart, proven differentially: for every workload ×
// tiling family of the differential matrix, killing a mid-chain rank
// halfway through its chain and restarting it from its last checkpoint
// must reproduce the fault-free Global bit for bit — and the fault-free
// mpi.Stats too, because recovery resends dropped messages exactly once
// and replays claimed receives from the local log instead of the wire.
// The restore path poisons the LDS with NaN before copying the snapshot
// back, so any state the snapshot fails to cover corrupts the comparison
// instead of passing silently.
func TestCrashRestartEveryWorkload(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && slowDiffCases[c.name] {
				t.Skipf("%s is one of the two slowest differential cases; run without -short", c.name)
			}
			crashRank := c.p.Dist.NumProcs() / 2
			crashTile := c.p.Dist.ChainLen[crashRank] / 2
			for _, overlap := range []bool{false, true} {
				want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
				if err != nil {
					t.Fatalf("fault-free overlap=%v: %v", overlap, err)
				}
				// Every=2 makes the snapshot generally precede the crash
				// tile, so recovery exercises receive replay and the resend
				// cursor, not just a trivial rewind.
				got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
					Overlap:    overlap,
					Faults:     &mpi.FaultPlan{Crash: map[int]int64{crashRank: crashTile}},
					Checkpoint: &exec.CheckpointOptions{Every: 2},
				})
				if err != nil {
					t.Fatalf("crash-restart overlap=%v (rank %d, tile %d): %v", overlap, crashRank, crashTile, err)
				}
				if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
					t.Fatalf("overlap=%v: restarted run differs from fault-free by %g at %v", overlap, diff, at)
				}
				if !reflect.DeepEqual(wantStats, gotStats) {
					t.Fatalf("overlap=%v: traffic stats differ after crash-restart\nfault-free: %+v\nrestarted:  %+v", overlap, wantStats, gotStats)
				}
			}
		})
	}
}

// A crash at tile 0 restores from the implicit empty snapshot: the whole
// LDS is NaN-poisoned and rebuilt from scratch, proving tile 0 state
// depends on nothing but the protocol itself.
func TestCrashRestartAtTileZero(t *testing.T) {
	cs := diffCases(t)
	c := cs[0]
	want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
		Overlap:    true,
		Faults:     &mpi.FaultPlan{Crash: map[int]int64{0: 0}},
		Checkpoint: &exec.CheckpointOptions{Every: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
		t.Fatalf("restarted run differs by %g at %v", diff, at)
	}
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("stats differ\nwant: %+v\ngot:  %+v", wantStats, gotStats)
	}
}

// Coarse checkpoints (Every larger than the chain) mean the crash rewinds
// to tile 0 with a populated receive log and ledger — the deepest replay
// the recovery layer supports.
func TestCrashRestartCoarseCheckpoint(t *testing.T) {
	cs := diffCases(t)
	c := cs[0]
	crashRank := c.p.Dist.NumProcs() / 2
	crashTile := c.p.Dist.ChainLen[crashRank] - 1
	if crashTile < 1 {
		t.Fatalf("chain of rank %d too short for a meaningful crash", crashRank)
	}
	for _, overlap := range []bool{false, true} {
		want, wantStats, err := c.p.RunParallelOpts(exec.RunOptions{Overlap: overlap})
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := c.p.RunParallelOpts(exec.RunOptions{
			Overlap:    overlap,
			Faults:     &mpi.FaultPlan{Crash: map[int]int64{crashRank: crashTile}, RestartDelay: time.Millisecond},
			Checkpoint: &exec.CheckpointOptions{Every: 1 << 30},
		})
		if err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
		if diff, at := want.MaxAbsDiff(got, c.p.ScanSpace); diff != 0 {
			t.Fatalf("overlap=%v: differs by %g at %v", overlap, diff, at)
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("overlap=%v: stats differ\nwant: %+v\ngot:  %+v", overlap, wantStats, gotStats)
		}
	}
}

// Without checkpointing a crash is unrecoverable: the run must abort with
// a diagnostic naming the dead rank, not hang or return wrong data.
func TestCrashWithoutCheckpointAborts(t *testing.T) {
	cs := diffCases(t)
	c := cs[0]
	_, _, err := c.p.RunParallelOpts(exec.RunOptions{
		Overlap: true,
		Net:     mpi.Options{Watchdog: 2 * time.Second},
		Faults:  &mpi.FaultPlan{Crash: map[int]int64{1: 1}},
	})
	if err == nil {
		t.Fatal("crash without checkpointing returned no error")
	}
	if !strings.Contains(err.Error(), "crashed") || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("abort diagnostic does not name the crash: %v", err)
	}
}

// The crashed rank's tracer must survive the restart: events from the
// dead incarnation stay in the timeline (re-executed tiles legitimately
// appear twice), and the crash/restart instants are marked.
func TestCrashRestartTraced(t *testing.T) {
	cs := diffCases(t)
	c := cs[0]
	tr := exec.NewTracer()
	crashRank := c.p.Dist.NumProcs() / 2
	_, _, err := c.p.RunParallelOpts(exec.RunOptions{
		Overlap:    true,
		Trace:      tr,
		Faults:     &mpi.FaultPlan{Crash: map[int]int64{crashRank: c.p.Dist.ChainLen[crashRank] / 2}},
		Checkpoint: &exec.CheckpointOptions{Every: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var crash, restart int
	for _, e := range tr.Trace().Events {
		switch e.Kind {
		case "crash":
			crash++
			if e.Rank != crashRank {
				t.Errorf("crash event on rank %d, want %d", e.Rank, crashRank)
			}
		case "restart":
			restart++
		}
	}
	if crash != 1 || restart != 1 {
		t.Fatalf("trace has %d crash and %d restart events, want 1 and 1", crash, restart)
	}
	m := tr.PerRank()[crashRank]
	if m.Crashes != 1 {
		t.Errorf("RankMetrics.Crashes = %d, want 1", m.Crashes)
	}
	// The Gantt and Chrome export must digest fault markers.
	g := tr.Trace().Gantt(60)
	if !strings.Contains(g, "!") {
		t.Errorf("gantt does not mark the fault:\n%s", g)
	}
	if _, err := tr.Trace().TraceEventJSON(); err != nil {
		t.Errorf("chrome export failed: %v", err)
	}
}
