package exec_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/tiling"
)

// reuseProgram compiles the small SOR workload used by the pooled-world
// tests.
func reuseProgram(t *testing.T) *exec.Program {
	t.Helper()
	app, err := apps.SOR(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPooledWorldReuseBitIdentical is the exec side of the World.Reset
// contract: runs on a pooled, repeatedly reused world must produce the
// same Global bit for bit and the same mpi.Stats as a cold run that
// constructs its own world — in both communication modes.
func TestPooledWorldReuseBitIdentical(t *testing.T) {
	p := reuseProgram(t)
	world := mpi.NewWorld(p.Dist.NumProcs())
	for _, overlap := range []bool{false, true} {
		opt := exec.RunOptions{Overlap: overlap, Net: mpi.Options{Watchdog: 5 * time.Second}}
		gCold, sCold, err := p.RunParallelOpts(opt)
		if err != nil {
			t.Fatal(err)
		}
		// Three consecutive runs on the same world: the first resets a
		// fresh world, the later ones a dirty one.
		for round := 0; round < 3; round++ {
			opt.World = world
			g, s, err := p.RunParallelOpts(opt)
			if err != nil {
				t.Fatalf("overlap=%v round %d: %v", overlap, round, err)
			}
			if d, at := gCold.MaxAbsDiff(g, p.ScanSpace); d != 0 {
				t.Fatalf("overlap=%v round %d: pooled-world result differs by %g at %v", overlap, round, d, at)
			}
			if !reflect.DeepEqual(s, sCold) {
				t.Fatalf("overlap=%v round %d: pooled-world stats differ:\n got %+v\nwant %+v", overlap, round, s, sCold)
			}
		}
	}
}

// TestPooledWorldSizeMismatch pins the seam's misuse diagnostic.
func TestPooledWorldSizeMismatch(t *testing.T) {
	p := reuseProgram(t)
	wrong := mpi.NewWorld(p.Dist.NumProcs() + 1)
	_, _, err := p.RunParallelOpts(exec.RunOptions{World: wrong})
	if err == nil || !strings.Contains(err.Error(), "pooled world") {
		t.Fatalf("expected a pooled-world size error, got %v", err)
	}
}

// TestPooledWorldSurvivesFailedRun proves a world whose previous run
// aborted (kernel panic mid-chain) is reusable: the next run on the same
// world matches a cold run exactly.
func TestPooledWorldSurvivesFailedRun(t *testing.T) {
	p := reuseProgram(t)
	world := mpi.NewWorld(p.Dist.NumProcs())

	boom, err := exec.NewProgram(p.TS, -1, p.Width, func(j ilin.Vec, reads [][]float64, out []float64) {
		panic("injected kernel failure")
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := boom.RunParallelOpts(exec.RunOptions{World: world}); err == nil {
		t.Fatal("expected the injected kernel panic to fail the run")
	}

	gCold, sCold, err := p.RunParallelOpts(exec.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, s, err := p.RunParallelOpts(exec.RunOptions{World: world})
	if err != nil {
		t.Fatalf("reuse after aborted run: %v", err)
	}
	if d, at := gCold.MaxAbsDiff(g, p.ScanSpace); d != 0 {
		t.Fatalf("post-abort pooled result differs by %g at %v", d, at)
	}
	if !reflect.DeepEqual(s, sCold) {
		t.Fatalf("post-abort pooled stats differ:\n got %+v\nwant %+v", s, sCold)
	}
}
