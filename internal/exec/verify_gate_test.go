package exec_test

import (
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/exec"
	"tilespace/internal/tiling"
)

// TestRunParallelVerifyGate exercises the opt-in pre-run certification:
// a sound program runs (and matches the sequential oracle) with the gate
// on, proving the gate does not reject correct plans.
func TestRunParallelVerifyGate(t *testing.T) {
	app, err := apps.SOR(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.Rect.H(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := p.RunParallelOpts(exec.RunOptions{Verify: true})
	if err != nil {
		t.Fatalf("verified run: %v", err)
	}
	if diff, at := seq.MaxAbsDiff(g, p.ScanSpace); diff != 0 {
		t.Fatalf("verified run differs from sequential by %g at %v", diff, at)
	}
}
