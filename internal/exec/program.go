package exec

import (
	"fmt"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// Kernel is the loop body F: given the iteration point j and the value
// vectors read through each dependence (reads[l] is the value at j − d_l),
// it writes the point's value vector into out. Implementations must not
// retain the read slices.
type Kernel func(j ilin.Vec, reads [][]float64, out []float64)

// Initial supplies the value vector of points outside the iteration space
// (boundary and initial conditions); the paper's experiments read such
// points through every dependence that crosses the space boundary.
type Initial func(j ilin.Vec, out []float64)

// Program is a compiled tiled program ready for sequential or parallel
// execution.
type Program struct {
	TS      *tiling.TiledSpace
	Dist    *distrib.Distribution
	Width   int
	Kernel  Kernel
	Initial Initial
}

// NewProgram validates and assembles a program. The mapping dimension is
// chosen automatically (the longest tile dimension, §3.1) when m < 0.
func NewProgram(ts *tiling.TiledSpace, m int, width int, kernel Kernel, initial Initial) (*Program, error) {
	if width <= 0 {
		return nil, fmt.Errorf("exec: width must be positive")
	}
	if kernel == nil {
		return nil, fmt.Errorf("exec: kernel is required")
	}
	if initial == nil {
		initial = func(j ilin.Vec, out []float64) {
			for i := range out {
				out[i] = 0
			}
		}
	}
	if m < 0 {
		m = distrib.ChooseMappingDim(ts)
	}
	d, err := distrib.New(ts, m)
	if err != nil {
		return nil, err
	}
	return &Program{TS: ts, Dist: d, Width: width, Kernel: kernel, Initial: initial}, nil
}

// RunSequential executes the program in the original lexicographic order
// (valid because all dependencies are lexicographically positive) and
// returns the filled global data space.
func (p *Program) RunSequential() (*Global, error) {
	lo, hi, err := p.TS.Nest.BoundingBox()
	if err != nil {
		return nil, err
	}
	g := NewGlobal(lo, hi, p.Width)
	nb, err := p.TS.Nest.Bounds()
	if err != nil {
		return nil, err
	}
	q := p.TS.Nest.Q()
	reads := make([][]float64, q)
	readBuf := make([]float64, q*p.Width)
	deps := make([]ilin.Vec, q)
	for l := 0; l < q; l++ {
		deps[l] = p.TS.Nest.Dep(l)
	}
	src := make(ilin.Vec, p.TS.T.N)
	nb.Scan(func(j ilin.Vec) bool {
		for l := 0; l < q; l++ {
			copy(src, j)
			for k := range src {
				src[k] -= deps[l][k]
			}
			if p.TS.Nest.Space.Contains(src) {
				reads[l] = g.At(src)
			} else {
				buf := readBuf[l*p.Width : (l+1)*p.Width]
				p.Initial(src, buf)
				reads[l] = buf
			}
		}
		p.Kernel(j, reads, g.At(j))
		return true
	})
	return g, nil
}

// ScanSpace enumerates the iteration space (convenience for comparisons).
func (p *Program) ScanSpace(fn func(j ilin.Vec) bool) {
	nb, err := p.TS.Nest.Bounds()
	if err != nil {
		panic(err)
	}
	nb.Scan(fn)
}

// RunTiledSequential executes the paper's §2.3 sequential tiled code: the
// 2n-deep loop nest that visits tiles in lexicographic order and sweeps
// each tile's points atomically, reading and writing the global data space
// directly. Tiling legality (H·D ≥ 0) guarantees this reordering computes
// the same values as the original order; comparing against RunSequential
// is an executable proof for a given space.
func (p *Program) RunTiledSequential() (*Global, error) {
	lo, hi, err := p.TS.Nest.BoundingBox()
	if err != nil {
		return nil, err
	}
	g := NewGlobal(lo, hi, p.Width)
	q := p.TS.Nest.Q()
	reads := make([][]float64, q)
	readBuf := make([]float64, q*p.Width)
	deps := make([]ilin.Vec, q)
	for l := 0; l < q; l++ {
		deps[l] = p.TS.Nest.Dep(l)
	}
	src := make(ilin.Vec, p.TS.T.N)
	p.TS.ScanTiles(func(jS ilin.Vec) bool {
		tile := jS.Clone()
		p.TS.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
			j := p.TS.GlobalOf(tile, z)
			for l := 0; l < q; l++ {
				copy(src, j)
				for k := range src {
					src[k] -= deps[l][k]
				}
				if p.TS.Nest.Space.Contains(src) {
					reads[l] = g.At(src)
				} else {
					buf := readBuf[l*p.Width : (l+1)*p.Width]
					p.Initial(src, buf)
					reads[l] = buf
				}
			}
			p.Kernel(j, reads, g.At(j))
			return true
		})
		return true
	})
	return g, nil
}
