package main

import (
	"fmt"
	"time"

	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/poly"
	"tilespace/internal/rat"
	"tilespace/internal/tiling"
)

func main() {
	p := ilin.MatFromRows([]int64{0, -2, 2}, []int64{-1, -1, -2}, []int64{2, -1, -1})
	tr, err := tiling.FromP(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr)
	s := poly.NewSystem(3)
	for k := 0; k < 3; k++ {
		s.AddRange(k, 0, 7)
	}
	s.Add(poly.Constraint{Coef: ilin.RatVec{rat.One, rat.One, rat.One}, Rhs: rat.FromInt(11)})
	nest, _ := loopnest.New(nil, s, nil)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Second):
				fmt.Println("still analyzing after", time.Since(start))
			}
		}
	}()
	ts, err := tiling.Analyze(nest, tr.H)
	close(done)
	fmt.Println("analyze took", time.Since(start), "err", err)
	if ts != nil {
		fmt.Println("numtiles", ts.NumTiles())
	}
}
