package verify

import (
	"fmt"
	"sort"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// pointCoder maps global iteration points to nonzero int64 codes and
// back. The box is the nest's bounding box padded by the maximum absolute
// dependence component per dimension, so every read source — including
// out-of-space points resolved by the Initial injection — has a code.
// Code 0 is reserved for "cell never written".
type pointCoder struct {
	lo   ilin.Vec
	dim  ilin.Vec
	size int64
}

func newPointCoder(ts *tiling.TiledSpace) (*pointCoder, error) {
	lo, hi, err := ts.Nest.BoundingBox()
	if err != nil {
		return nil, err
	}
	n := len(lo)
	pad := make(ilin.Vec, n)
	for l := 0; l < ts.Nest.Q(); l++ {
		dep := ts.Nest.Dep(l)
		for k := 0; k < n; k++ {
			a := dep[k]
			if a < 0 {
				a = -a
			}
			if a > pad[k] {
				pad[k] = a
			}
		}
	}
	c := &pointCoder{lo: make(ilin.Vec, n), dim: make(ilin.Vec, n), size: 1}
	for k := 0; k < n; k++ {
		c.lo[k] = lo[k] - pad[k]
		c.dim[k] = hi[k] + pad[k] - c.lo[k] + 1
		c.size *= c.dim[k]
	}
	return c, nil
}

// enc returns the (nonzero) code of point v, or 0 if v escapes the box
// (cannot happen for points reachable through one dependence hop).
func (c *pointCoder) enc(v ilin.Vec) int64 {
	var idx int64
	for k := range v {
		x := v[k] - c.lo[k]
		if x < 0 || x >= c.dim[k] {
			return 0
		}
		idx = idx*c.dim[k] + x
	}
	return idx + 1
}

// dec inverts enc for display in counterexamples.
func (c *pointCoder) dec(code int64) ilin.Vec {
	idx := code - 1
	v := make(ilin.Vec, len(c.dim))
	for k := len(c.dim) - 1; k >= 0; k-- {
		v[k] = idx%c.dim[k] + c.lo[k]
		idx /= c.dim[k]
	}
	return v
}

func (c *pointCoder) describe(code int64) string {
	if code == 0 {
		return "no value (cell never written)"
	}
	return fmt.Sprintf("the value of iteration %v", c.dec(code))
}

// message is one in-flight payload on a (src, dst, tag) stream: the
// sender tile and, per region point in scan order, the code of the
// iteration whose value the sender packed.
type message struct {
	from    ilin.Vec
	payload []int64
}

type stream struct {
	src, dst, tag int
}

// replay executes the whole schedule symbolically, in lexicographic tile
// order, with per-(src, dst, tag) FIFO message queues — the exact
// semantics of the mpi package (per-pair-per-tag ordering, eager sends) —
// and per-rank LDS content arrays holding iteration codes instead of
// floats. Each tile runs the executor's receive → init → compute → send
// phases; the compute step asserts that every dependence read resolves to
// exactly the code of its source iteration. A pass proves comm-set
// exactness constructively: no missing value (a miss surfaces as a wrong
// or absent code at the reading point — the counterexample), no stale
// reuse, FIFO consistency, and every send consumed. It is pure
// arithmetic: no goroutines, no mpi.World.
func replay(ts *tiling.TiledSpace, d *distrib.Distribution, rep *Report) error {
	coder, err := newPointCoder(ts)
	if err != nil {
		return fmt.Errorf("verify: bounding box: %w", err)
	}
	n := ts.T.N
	q := ts.Nest.Q()
	deps := make([]ilin.Vec, q)
	dps := make([]ilin.Vec, q)
	for l := 0; l < q; l++ {
		deps[l] = ts.Nest.Dep(l)
		dps[l] = ts.DP.Col(l)
	}
	dmFulls := make([]ilin.Vec, len(d.DM))
	for i, dm := range d.DM {
		dmFulls[i] = dmFull(dm, d.M)
	}
	procs := d.NumProcs()
	addrs := make([]*distrib.Addresser, procs)
	sizes := make([]int64, procs)
	content := make([][]int64, procs)
	sendRank := make([][]int, procs)
	recvRank := make([][]int, procs)
	for r := 0; r < procs; r++ {
		addrs[r] = d.Addresser(r)
		sizes[r] = addrs[r].Size()
		content[r] = make([]int64, sizes[r])
		sendRank[r] = make([]int, len(d.DM))
		recvRank[r] = make([]int, len(d.DM))
		for i, dm := range d.DM {
			sendRank[r][i] = -1
			if rr, ok := d.Rank(d.Pids[r].Add(dm)); ok {
				sendRank[r][i] = rr
			}
			recvRank[r][i] = -1
			if rr, ok := d.Rank(d.Pids[r].Sub(dm)); ok {
				recvRank[r][i] = rr
			}
		}
	}
	dsOrder := dsRecvOrder(ts, d.M)
	dsDmIdx := dmIndexOf(d)
	queues := map[stream][]message{}
	owners := map[int64]int{}
	src := make(ilin.Vec, n)

	var vio *Violation
	ts.ScanTiles(func(s ilin.Vec) bool {
		r, ok := d.RankOfTile(s)
		if !ok {
			vio = &Violation{Rule: "coverage", Rank: -1, Tile: s.Clone(), Detail: "valid tile assigned to no processor"}
			return false
		}
		t := s[d.M] - d.ChainStart[r]
		addr := addrs[r]
		rep.Tiles++

		// RECEIVE — in the executor's dsOrder, asserting FIFO heads match.
		for _, si := range dsOrder {
			di := dsDmIdx[si]
			if di < 0 {
				continue
			}
			dS := ts.DS[si]
			dm := d.DM[di]
			pred := s.Sub(dS)
			if !ts.ValidTile(pred) {
				continue
			}
			if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(s) {
				continue
			}
			cnt := d.CommRegionCount(pred, dm)
			if cnt == 0 {
				continue
			}
			from := recvRank[r][di]
			if from < 0 {
				vio = &Violation{
					Rule: "schedule-edge", Rank: r, Tile: s.Clone(), Point: pred,
					Detail: fmt.Sprintf("predecessor tile %v has no mapped rank at pid − %v", pred, dm),
				}
				return false
			}
			key := stream{from, r, di}
			qu := queues[key]
			if len(qu) == 0 {
				vio = &Violation{
					Rule: "deadlock", Rank: r, Tile: s.Clone(), Point: pred,
					Detail: fmt.Sprintf("receive from rank %d (tag %d) blocks forever: the message of predecessor tile %v is never sent", from, di, pred),
				}
				return false
			}
			msg := qu[0]
			queues[key] = qu[1:]
			if !msg.from.Equal(pred) {
				vio = &Violation{
					Rule: "fifo-order", Rank: r, Tile: s.Clone(), Point: pred,
					Detail: fmt.Sprintf("stream %d→%d tag %d delivers the message of tile %v where tile %v's predecessor message is expected", from, r, di, msg.from, pred),
				}
				return false
			}
			if int64(len(msg.payload)) != cnt {
				vio = &Violation{
					Rule: "comm-soundness", Rank: r, Tile: s.Clone(), Point: pred,
					Detail: fmt.Sprintf("message from tile %v carries %d values, region holds %d", pred, len(msg.payload), cnt),
				}
				return false
			}
			tau := pred[d.M] - d.ChainStart[r]
			i := 0
			d.CommRegion(pred, dm, func(z, pp ilin.Vec) bool {
				cell := addr.FlatUnpack(pp, dmFulls[di], tau)
				g := ts.GlobalOf(pred, z)
				if cell < 0 || cell >= sizes[r] {
					vio = &Violation{
						Rule: "lds-bounds", Rank: r, Tile: s.Clone(), Point: g,
						Detail: fmt.Sprintf("unpack cell %d outside LDS [0, %d)", cell, sizes[r]),
					}
					return false
				}
				if want := coder.enc(g); msg.payload[i] != want {
					vio = &Violation{
						Rule: "comm-soundness", Rank: r, Tile: s.Clone(), Point: g,
						Detail: fmt.Sprintf("received value #%d is %s, expected the value of iteration %v", i, coder.describe(msg.payload[i]), g),
					}
					return false
				}
				content[r][cell] = msg.payload[i]
				i++
				return true
			})
			if vio != nil {
				return false
			}
		}

		// INIT — inject codes for read sources outside the iteration
		// space, exactly where the executor writes Initial values.
		ts.ScanTilePoints(s, func(z, jp ilin.Vec) bool {
			g := ts.GlobalOf(s, z)
			for l := 0; l < q; l++ {
				subInto(src, g, deps[l])
				if ts.Nest.Space.Contains(src) {
					continue
				}
				cell := addr.FlatRead(jp, dps[l], t)
				if cell < 0 || cell >= sizes[r] {
					vio = &Violation{
						Rule: "lds-bounds", Rank: r, Tile: s.Clone(), Point: g,
						Detail: fmt.Sprintf("initial-value cell %d (dependence d_%d) outside LDS [0, %d)", cell, l+1, sizes[r]),
					}
					return false
				}
				content[r][cell] = coder.enc(src)
			}
			return true
		})
		if vio != nil {
			return false
		}

		// COMPUTE — every dependence read must resolve to the code of its
		// source iteration; the write claims ownership of the point.
		ts.ScanTilePoints(s, func(z, jp ilin.Vec) bool {
			g := ts.GlobalOf(s, z)
			for l := 0; l < q; l++ {
				cell := addr.FlatRead(jp, dps[l], t)
				subInto(src, g, deps[l])
				if want := coder.enc(src); content[r][cell] != want {
					vio = &Violation{
						Rule: "comm-soundness", Rank: r, Tile: s.Clone(), Point: g.Clone(),
						Detail: fmt.Sprintf("read through dependence d_%d resolves to LDS cell %d holding %s; expected the value of iteration %v", l+1, cell, coder.describe(content[r][cell]), src),
					}
					return false
				}
			}
			wcell := addr.Flat(jp, t)
			code := coder.enc(g)
			if prev, dup := owners[code]; dup {
				vio = &Violation{
					Rule: "coverage", Rank: r, Tile: s.Clone(), Point: g.Clone(),
					Detail: fmt.Sprintf("iteration computed twice (ranks %d and %d)", prev, r),
				}
				return false
			}
			owners[code] = r
			content[r][wcell] = code
			rep.Points++
			rep.Checks += int64(q + 1)
			return true
		})
		if vio != nil {
			return false
		}

		// SEND — pack must carry exactly the region's freshly computed
		// values, each LDS cell at most once per message.
		for i, dm := range d.DM {
			if !d.HasSuccessor(s, dm) {
				continue
			}
			cnt := d.CommRegionCount(s, dm)
			if cnt == 0 {
				continue
			}
			dst := sendRank[r][i]
			if dst < 0 {
				vio = &Violation{
					Rule: "schedule-edge", Rank: r, Tile: s.Clone(),
					Detail: fmt.Sprintf("send along %v has no mapped destination rank", dm),
				}
				return false
			}
			payload := make([]int64, 0, cnt)
			packed := make(map[int64]struct{}, cnt)
			d.CommRegion(s, dm, func(z, jp ilin.Vec) bool {
				cell := addr.Flat(jp, t)
				g := ts.GlobalOf(s, z)
				if _, dup := packed[cell]; dup {
					vio = &Violation{
						Rule: "comm-redundancy", Rank: r, Tile: s.Clone(), Point: g,
						Detail: fmt.Sprintf("LDS cell %d packed twice into the %v message", cell, dm),
					}
					return false
				}
				packed[cell] = struct{}{}
				if want := coder.enc(g); content[r][cell] != want {
					vio = &Violation{
						Rule: "comm-soundness", Rank: r, Tile: s.Clone(), Point: g,
						Detail: fmt.Sprintf("packed value for iteration %v is %s", g, coder.describe(content[r][cell])),
					}
					return false
				}
				payload = append(payload, content[r][cell])
				return true
			})
			if vio != nil {
				return false
			}
			queues[stream{r, dst, i}] = append(queues[stream{r, dst, i}], message{from: s.Clone(), payload: payload})
			rep.Values += cnt
		}
		return true
	})
	if vio != nil {
		return vio
	}

	// Exactness epilogue: every sent message was consumed…
	var leftover []stream
	for key, qu := range queues {
		if len(qu) > 0 {
			leftover = append(leftover, key)
		}
	}
	if len(leftover) > 0 {
		sort.Slice(leftover, func(i, j int) bool {
			a, b := leftover[i], leftover[j]
			if a.src != b.src {
				return a.src < b.src
			}
			if a.dst != b.dst {
				return a.dst < b.dst
			}
			return a.tag < b.tag
		})
		key := leftover[0]
		msg := queues[key][0]
		return &Violation{
			Rule: "comm-redundancy", Rank: key.src, Tile: msg.from,
			Detail: fmt.Sprintf("message from tile %v to rank %d (tag %d) is sent but never received", msg.from, key.dst, key.tag),
		}
	}
	// …and every iteration of the space was computed exactly once.
	if total, err := ts.Nest.Size(); err == nil && total != int64(len(owners)) {
		return &Violation{
			Rule: "coverage", Rank: -1,
			Detail: fmt.Sprintf("%d of %d iterations computed", len(owners), total),
		}
	}
	return nil
}

// subInto computes dst = a − b without allocating.
func subInto(dst, a, b ilin.Vec) {
	for k := range dst {
		dst[k] = a[k] - b[k]
	}
}
