package verify

import (
	"fmt"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
)

// Edge is one point-to-point message of the compiled §3.2 schedule: tile
// From sends its communication region along processor direction d.DM[Dir]
// and tile To = minsucc(From, d^m) performs the single receive. Values is
// the region point count (the message payload in cells).
type Edge struct {
	From, To ilin.Vec
	SrcRank  int
	DstRank  int
	Dir      int
	Values   int64
}

// ScheduleEdges enumerates every message of the schedule in sender issue
// order: lexicographic tile order and, within a tile, ascending direction
// index — exactly the executor's send loop. Mutation tests corrupt this
// list and hand it to CheckSchedule.
func ScheduleEdges(d *distrib.Distribution) []Edge {
	var edges []Edge
	d.TS.ScanTiles(func(s ilin.Vec) bool {
		for i, dm := range d.DM {
			if !d.HasSuccessor(s, dm) {
				continue
			}
			n := d.CommRegionCount(s, dm)
			if n == 0 {
				continue
			}
			ms, ok := d.MinSucc(s, dm)
			if !ok {
				continue
			}
			src, _ := d.RankOfTile(s)
			dst, _ := d.RankOfTile(ms)
			edges = append(edges, Edge{
				From: s.Clone(), To: ms.Clone(),
				SrcRank: src, DstRank: dst, Dir: i, Values: n,
			})
		}
		return true
	})
	return edges
}

// CheckSchedule proves the deadlock-freedom theorem for an edge list:
// every message flows from a lexicographically earlier tile to a later
// one, terminates at the minsucc receiver on the rank the executor's
// sendRank table targets, and each rank's chain is lex-ascending. Together
// these embed the send/receive pattern into lexicographic tile time, so
// the pattern is a DAG and global lex order is a deadlock-free execution
// order for both the blocking and the overlap mode (sends are eager in
// both; only receives block).
func CheckSchedule(d *distrib.Distribution, edges []Edge) error {
	for r := 0; r < d.NumProcs(); r++ {
		for t := int64(1); t < d.ChainLen[r]; t++ {
			prev, cur := d.TileAt(r, t-1), d.TileAt(r, t)
			if !prev.LexLess(cur) {
				return &Violation{
					Rule: "deadlock", Rank: r, Tile: cur,
					Detail: fmt.Sprintf("chain slot %d tile %v does not lex-follow slot %d tile %v", t, cur, t-1, prev),
				}
			}
		}
	}
	for _, e := range edges {
		if e.Dir < 0 || e.Dir >= len(d.DM) {
			return &Violation{
				Rule: "schedule-edge", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: fmt.Sprintf("direction index %d outside D^m (%d directions)", e.Dir, len(d.DM)),
			}
		}
		dm := d.DM[e.Dir]
		if !d.TS.ValidTile(e.From) || !d.TS.ValidTile(e.To) {
			return &Violation{
				Rule: "schedule-edge", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: "edge endpoint is not a valid tile",
			}
		}
		if !e.From.LexLess(e.To) {
			return &Violation{
				Rule: "deadlock", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: fmt.Sprintf("message from tile %v to tile %v flows against lexicographic tile time", e.From, e.To),
			}
		}
		ms, ok := d.MinSucc(e.From, dm)
		if !ok || !ms.Equal(e.To) {
			return &Violation{
				Rule: "schedule-edge", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: fmt.Sprintf("receiver is not minsucc(%v, %v) = %v", e.From, dm, ms),
			}
		}
		src, okS := d.RankOfTile(e.From)
		dst, okD := d.RankOfTile(e.To)
		if !okS || !okD || src != e.SrcRank || dst != e.DstRank {
			return &Violation{
				Rule: "schedule-edge", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: fmt.Sprintf("edge ranks %d→%d disagree with tile owners %d→%d", e.SrcRank, e.DstRank, src, dst),
			}
		}
		if want, okR := d.Rank(d.PidOf(e.From).Add(dm)); !okR || want != e.DstRank {
			return &Violation{
				Rule: "schedule-edge", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: fmt.Sprintf("destination rank %d is not the pid+%v neighbour", e.DstRank, dm),
			}
		}
		if e.SrcRank == e.DstRank {
			return &Violation{
				Rule: "deadlock", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: "self-message: a rank would block receiving from itself",
			}
		}
		if want := d.CommRegionCount(e.From, dm); want != e.Values {
			return &Violation{
				Rule: "schedule-edge", Rank: e.SrcRank, Tile: e.From, Point: e.To,
				Detail: fmt.Sprintf("edge carries %d values, communication region holds %d", e.Values, want),
			}
		}
	}
	return nil
}
