package verify

import (
	"fmt"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// CheckRuns proves a run list is the exact pack decomposition of one
// (tile, direction) communication region: concatenating the runs yields
// precisely the per-point flat cell sequence `want` in region scan order
// (soundness — no value missing, none reordered), and no LDS cell appears
// twice across the runs (non-redundancy — no value sent twice). pts[i],
// when non-nil, is the global iteration behind want[i] and is used as the
// counterexample point. Rank/Tile of a returned Violation are left for
// the caller to fill.
func CheckRuns(pts []ilin.Vec, want []int64, runs []distrib.Run, total int64) *Violation {
	if total != int64(len(want)) {
		return &Violation{
			Rule: "comm-soundness", Rank: -1,
			Detail: fmt.Sprintf("run total %d disagrees with the %d-point communication region", total, len(want)),
		}
	}
	point := func(idx int) ilin.Vec {
		if idx >= 0 && idx < len(pts) && pts[idx] != nil {
			return pts[idx]
		}
		return nil
	}
	idx := 0
	seen := make(map[int64]int, len(want)) // cell → region-point index of first pack
	for ri, run := range runs {
		if run.N <= 0 {
			return &Violation{
				Rule: "comm-soundness", Rank: -1, Point: point(idx),
				Detail: fmt.Sprintf("run %d has non-positive length %d", ri, run.N),
			}
		}
		for o := int64(0); o < run.N; o++ {
			cell := run.Off + o
			if first, dup := seen[cell]; dup {
				return &Violation{
					Rule: "comm-redundancy", Rank: -1, Point: point(first),
					Detail: fmt.Sprintf("LDS cell %d is packed twice", cell),
				}
			}
			if idx >= len(want) {
				return &Violation{
					Rule: "comm-redundancy", Rank: -1, Point: point(len(want) - 1),
					Detail: fmt.Sprintf("runs cover more cells than the region: extra cell %d in run %d", cell, ri),
				}
			}
			seen[cell] = idx
			if want[idx] != cell {
				return &Violation{
					Rule: "comm-soundness", Rank: -1, Point: point(idx),
					Detail: fmt.Sprintf("region point %d packs cell %d, runs pack cell %d", idx, want[idx], cell),
				}
			}
			idx++
		}
	}
	if idx != len(want) {
		return &Violation{
			Rule: "comm-soundness", Rank: -1, Point: point(idx),
			Detail: fmt.Sprintf("region point %d (cell %d) is missing from the run list", idx, want[idx]),
		}
	}
	return nil
}

// checkPlans certifies the strength-reduced address programs the plan
// compiler relies on, for every rank, every chain slot, and every clamped
// tile shape that occurs there:
//
//   - write/read addresses: Flat(j',t) = Flat(j',0) + t·ChainStep and
//     FlatRead(j',d',t) = FlatRead(j',d',0) + t·ChainStep, both inside
//     [0, Size) — LDS bounds safety for the compute sweep;
//   - pack runs: CommRuns equals the per-point Flat sequence (CheckRuns),
//     and every run cell placed at slot t stays inside the LDS;
//   - unpack addresses: FlatUnpack(p',d^m,τ) = Flat(p',0) + τ·ChainStep +
//     DirShift(d^m), inside [0, Size) — the receiver's replayed runs land
//     in the allocated box.
func checkPlans(ts *tiling.TiledSpace, d *distrib.Distribution, rep *Report) error {
	q := ts.Nest.Q()
	dps := make([]ilin.Vec, q)
	for l := 0; l < q; l++ {
		dps[l] = ts.DP.Col(l)
	}
	dmFulls := make([]ilin.Vec, len(d.DM))
	for i, dm := range d.DM {
		dmFulls[i] = dmFull(dm, d.M)
	}
	shapes := map[uint64]struct{}{}

	for r := 0; r < d.NumProcs(); r++ {
		addr := d.Addresser(r)
		size := addr.Size()
		step := addr.ChainStep()
		var vio *Violation
		for t := int64(0); t < d.ChainLen[r]; t++ {
			tile := d.TileAt(r, t)
			var zkey []int64
			ts.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
				zkey = append(zkey, z...)
				w0 := addr.Flat(jp, 0)
				wt := addr.Flat(jp, t)
				g := func() ilin.Vec { return ts.GlobalOf(tile, z) }
				if wt != w0+t*step {
					vio = &Violation{
						Rule: "address-program", Rank: r, Tile: tile.Clone(), Point: g(),
						Detail: fmt.Sprintf("Flat(j',%d) = %d but Flat(j',0) + t·ChainStep = %d", t, wt, w0+t*step),
					}
					return false
				}
				if wt < 0 || wt >= size {
					vio = &Violation{
						Rule: "lds-bounds", Rank: r, Tile: tile.Clone(), Point: g(),
						Detail: fmt.Sprintf("write cell %d outside LDS [0, %d)", wt, size),
					}
					return false
				}
				for l := 0; l < q; l++ {
					r0 := addr.FlatRead(jp, dps[l], 0)
					rt := addr.FlatRead(jp, dps[l], t)
					if rt != r0+t*step {
						vio = &Violation{
							Rule: "address-program", Rank: r, Tile: tile.Clone(), Point: g(),
							Detail: fmt.Sprintf("FlatRead(d'_%d, %d) = %d but FlatRead(d'_%d, 0) + t·ChainStep = %d", l+1, t, rt, l+1, r0+t*step),
						}
						return false
					}
					if rt < 0 || rt >= size {
						vio = &Violation{
							Rule: "lds-bounds", Rank: r, Tile: tile.Clone(), Point: g(),
							Detail: fmt.Sprintf("read cell %d (dependence d'_%d) outside LDS [0, %d)", rt, l+1, size),
						}
						return false
					}
				}
				rep.Checks += int64(2 + 2*q)
				return true
			})
			if vio != nil {
				return vio
			}
			shapes[ilin.HashInt64s(ilin.HashSeed(), zkey)] = struct{}{}

			// Pack side: run decomposition exactness + slot-t bounds.
			for _, dm := range d.DM {
				if !d.HasSuccessor(tile, dm) {
					continue
				}
				var (
					want []int64
					pts  []ilin.Vec
				)
				d.CommRegion(tile, dm, func(z, jp ilin.Vec) bool {
					want = append(want, addr.Flat(jp, 0))
					pts = append(pts, ts.GlobalOf(tile, z))
					return true
				})
				if len(want) == 0 {
					continue
				}
				runs, total := d.CommRuns(tile, dm, addr)
				if v := CheckRuns(pts, want, runs, total); v != nil {
					v.Rank, v.Tile = r, tile.Clone()
					return v
				}
				for _, run := range runs {
					lo := run.Off + t*step
					hi := lo + run.N - 1
					if lo < 0 || hi >= size {
						return &Violation{
							Rule: "lds-bounds", Rank: r, Tile: tile.Clone(), Point: pts[0],
							Detail: fmt.Sprintf("pack run [%d, %d] at chain slot %d outside LDS [0, %d)", lo, hi, t, size),
						}
					}
				}
				rep.Checks += total + int64(len(runs))
			}

			// Unpack side: DirShift identity + bounds for every message
			// this tile receives, mirroring the executor's receive loop.
			for _, dS := range ts.DS {
				dm := d.DmOf(dS)
				if dm.IsZero() {
					continue
				}
				di := -1
				for k, v := range d.DM {
					if v.Equal(dm) {
						di = k
						break
					}
				}
				pred := tile.Sub(dS)
				if di < 0 || !ts.ValidTile(pred) {
					continue
				}
				if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(tile) {
					continue
				}
				tau := pred[d.M] - d.ChainStart[r]
				shift := addr.DirShift(dmFulls[di])
				d.CommRegion(pred, dm, func(z, pp ilin.Vec) bool {
					u := addr.FlatUnpack(pp, dmFulls[di], tau)
					if u != addr.Flat(pp, 0)+tau*step+shift {
						vio = &Violation{
							Rule: "address-program", Rank: r, Tile: tile.Clone(), Point: ts.GlobalOf(pred, z),
							Detail: fmt.Sprintf("FlatUnpack = %d but Flat(p',0) + τ·ChainStep + DirShift = %d", u, addr.Flat(pp, 0)+tau*step+shift),
						}
						return false
					}
					if u < 0 || u >= size {
						vio = &Violation{
							Rule: "lds-bounds", Rank: r, Tile: tile.Clone(), Point: ts.GlobalOf(pred, z),
							Detail: fmt.Sprintf("unpack cell %d outside LDS [0, %d)", u, size),
						}
						return false
					}
					rep.Checks += 2
					return true
				})
				if vio != nil {
					return vio
				}
			}
		}
	}
	rep.Shapes = len(shapes)
	return nil
}
