// Package verify is the static certification layer: it proves, by pure
// ilin/distrib arithmetic over the compiled artifacts — no goroutines, no
// mpi.World, no kernel execution — that a compiled tiled program is
// correct before a single rank runs.
//
// Certify establishes four theorems per spec × tiling × rank-grid:
//
//  1. Comm-set exactness. The union of pack runs (distrib.CommRuns) of
//     every (tile, processor-direction) message equals the dependence
//     footprint crossing that tile face: every value a remote iteration
//     reads is packed (soundness) and no LDS cell is packed twice
//     (non-redundancy). Proved constructively by a symbolic replay of the
//     whole schedule (see replay.go) plus the per-shape run checks in
//     runs.go.
//
//  2. Deadlock-freedom. The send/receive pattern implied by the tile
//     schedule embeds into lexicographic tile time: every message flows
//     from a lex-earlier to a lex-later tile and each rank's chain is lex-
//     ascending, so global lex order is a topological execution order.
//     Because sends are eager (buffered) in both the blocking and the
//     overlap mode — Send enqueues, Isend hands off to the NIC — only
//     receives block, and the embedding rules out any receive-wait cycle.
//     The replay additionally proves every posted receive has a matching
//     in-order send (no rank blocks forever on a message never sent).
//
//  3. LDS bounds safety. Every strength-reduced address program the plan
//     compiler emits (Addresser.ChainStep / DirShift chains) both agrees
//     exactly with the reference map()/map⁻¹ addressing and stays inside
//     the allocated LDS box, for the interior shape and every boundary
//     shape, at every chain slot where the shape occurs.
//
//  4. Intra-tile linear extension. The wavefront schedule the executor's
//     worker pool fires (distrib.NewLocalSchedule) covers every point of
//     every clamped tile shape exactly once, and every intra-tile
//     dependence flows from a strictly earlier front — so any execution
//     order within a front, including concurrent workers, is a linear
//     extension of the dependence order and bit-identical to the serial
//     sweep (see local.go).
//
// A failed proof is reported as a *Violation carrying the offending rank,
// tile and a concrete counterexample point, so the diagnostic names the
// exact iteration (or LDS cell) that would have been computed wrongly.
// Certify also re-proves the analysis-time facts (legality H·D ≥ 0,
// dependence reach, tile-dependence range) with the exact diagnostics
// tiling.Analyze uses, so the two layers share one vocabulary.
package verify

import (
	"fmt"
	"strings"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// Violation is one disproved certification claim. Rule names the theorem
// ("comm-soundness", "comm-redundancy", "fifo-order", "deadlock",
// "schedule-edge", "lds-bounds", "address-program", "coverage",
// "local-coverage", "local-order"), and
// Point is the concrete counterexample — a global iteration point, or the
// predecessor tile / LDS cell named in Detail when no single iteration
// identifies the failure.
type Violation struct {
	Rule   string
	Rank   int      // offending rank, -1 when not rank-specific
	Tile   ilin.Vec // offending tile, nil when not tile-specific
	Point  ilin.Vec // counterexample point
	Detail string
}

// Error renders the violation with its counterexample.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s violated", v.Rule)
	if v.Rank >= 0 {
		fmt.Fprintf(&b, " on rank %d", v.Rank)
	}
	if v.Tile != nil {
		fmt.Fprintf(&b, " at tile %v", v.Tile)
	}
	if v.Point != nil {
		fmt.Fprintf(&b, ", counterexample point %v", v.Point)
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	return b.String()
}

// Report summarizes what a successful certification covered.
type Report struct {
	Procs    int
	Tiles    int64
	Points   int64 // iteration points replayed
	Messages int64 // schedule messages proved exact
	Values   int64 // values carried by those messages
	Checks   int64 // individual address/bounds/identity facts proved
	Shapes   int   // distinct clamped tile shapes certified
}

// String renders the coverage summary.
func (r *Report) String() string {
	return fmt.Sprintf("verified: %d procs, %d tiles / %d points, %d messages / %d values exact, %d shapes, %d address facts",
		r.Procs, r.Tiles, r.Points, r.Messages, r.Values, r.Shapes, r.Checks)
}

// Certify proves the three certification theorems for the compiled
// program (ts, d). It returns a coverage report on success and the first
// *Violation (with a counterexample point) on failure.
func Certify(ts *tiling.TiledSpace, d *distrib.Distribution) (*Report, error) {
	rep := &Report{Procs: d.NumProcs()}
	if err := checkAnalysisFacts(ts); err != nil {
		return nil, err
	}
	edges := ScheduleEdges(d)
	if err := CheckSchedule(d, edges); err != nil {
		return nil, err
	}
	rep.Messages = int64(len(edges))
	if err := checkPlans(ts, d, rep); err != nil {
		return nil, err
	}
	if err := checkLocalSchedules(ts, d, rep); err != nil {
		return nil, err
	}
	if err := replay(ts, d, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// checkAnalysisFacts re-proves the facts tiling.Analyze established, with
// the same diagnostics (shared via tiling's error constructors), guarding
// against a TiledSpace mutated after analysis.
func checkAnalysisFacts(ts *tiling.TiledSpace) error {
	if !ts.T.Legal(ts.Nest.Deps) {
		return tiling.ErrIllegalTransform()
	}
	for k := 0; k < ts.T.N; k++ {
		if ts.MaxDP[k] > ts.T.V[k] {
			return tiling.ErrDependenceReach(ts.MaxDP[k], int64(k), ts.T.V[k])
		}
	}
	for _, dS := range ts.DS {
		for k := 0; k < ts.T.N; k++ {
			if dS[k] < 0 || dS[k] > 1 {
				return tiling.ErrTileDepRange(dS, k)
			}
		}
		if !dS.LexPositive() {
			return tiling.ErrTileDepNotLexPositive(dS)
		}
	}
	return nil
}

// dmFull re-inserts the mapping dimension (as 0) into a processor
// direction, mirroring the executor's table construction.
func dmFull(dm ilin.Vec, m int) ilin.Vec {
	out := make(ilin.Vec, 0, len(dm)+1)
	out = append(out, dm[:m]...)
	out = append(out, 0)
	return append(out, dm[m:]...)
}

// dsRecvOrder returns tile-dependence indices in the executor's receive
// processing order: descending d^S_m, i.e. ascending predecessor m, which
// matches per-stream FIFO emission order on the sending rank.
func dsRecvOrder(ts *tiling.TiledSpace, m int) []int {
	order := make([]int, len(ts.DS))
	for i := range order {
		order[i] = i
	}
	// Stable insertion sort (matches sort.SliceStable semantics without
	// allocating closures in a hot loop; the list is tiny).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && ts.DS[order[j]][m] > ts.DS[order[j-1]][m]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// dmIndexOf maps each tile dependence to its processor-direction index in
// d.DM (-1 for the intra-processor direction).
func dmIndexOf(d *distrib.Distribution) []int {
	idx := make([]int, len(d.TS.DS))
	for i, dS := range d.TS.DS {
		idx[i] = -1
		dm := d.DmOf(dS)
		if dm.IsZero() {
			continue
		}
		for k, v := range d.DM {
			if v.Equal(dm) {
				idx[i] = k
				break
			}
		}
	}
	return idx
}
