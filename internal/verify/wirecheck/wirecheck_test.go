package wirecheck

import (
	"strings"
	"testing"
	"time"

	"tilespace/internal/mpi"
)

// TestMatrixCertifies is the standing certificate: every matrix entry
// must exhaust its state space with zero violations, and the whole
// matrix must finish fast enough for CI (the acceptance bound is 60s;
// we assert well under it).
func TestMatrixCertifies(t *testing.T) {
	start := time.Now()
	for _, mc := range DefaultMatrix() {
		mc := mc
		t.Run(mc.Name, func(t *testing.T) {
			res := Check(mc.Cfg)
			if res.Violation != nil {
				t.Fatalf("protocol violation:\n%s", res.Violation)
			}
			if res.Truncated {
				t.Fatalf("state space truncated at %d states — shrink the config or raise MaxStates", res.States)
			}
			if res.States < 100 {
				t.Fatalf("only %d states explored — config too trivial to certify anything", res.States)
			}
			t.Logf("certified: %d states, %d transitions", res.States, res.Transitions)
		})
	}
	if el := time.Since(start); el > 45*time.Second {
		t.Fatalf("matrix took %v, budget is 45s (acceptance bound 60s)", el)
	}
}

// TestMutationsRejected proves every decision point is load-bearing:
// each seeded protocol bug must produce a concrete counterexample.
func TestMutationsRejected(t *testing.T) {
	wantInvariant := map[string]string{
		"dedup-removed":        "no-dup",
		"resend-off-by-one":    "no-loss",
		"over-suppress":        "no-loss",
		"epoch-filter-dropped": "reset-safety",
	}
	for _, m := range Mutations() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			res := Check(m.Cfg)
			if res.Violation == nil {
				t.Fatalf("mutation certified cleanly over %d states — the protocol core no longer depends on this decision", res.States)
			}
			if want := wantInvariant[m.Name]; res.Violation.Invariant != want {
				t.Fatalf("violated %q, want %q:\n%s", res.Violation.Invariant, want, res.Violation)
			}
			if len(res.Violation.Steps) == 0 {
				t.Fatalf("counterexample has no steps")
			}
			t.Logf("rejected with %d-step counterexample:\n%s", len(res.Violation.Steps), res.Violation)
		})
	}
}

// TestCounterexampleIsMinimalAndConcrete pins the shape of the trace
// for the simplest mutation: BFS must find a shortest path, and every
// step must be a readable event naming ranks, tags and sequences.
func TestCounterexampleIsMinimalAndConcrete(t *testing.T) {
	res := Check(Config{
		Ranks:   2,
		Links:   []Link{{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 1}},
		MaxDups: 1,
		Rules:   mpi.ProtocolRules{NoDedup: true},
	})
	if res.Violation == nil {
		t.Fatalf("NoDedup certified cleanly")
	}
	// Shortest possible: connect, send, duplicate-deliver, deliver (or
	// deliver then duplicate) — 4 events.
	if got := len(res.Violation.Steps); got != 4 {
		t.Fatalf("counterexample has %d steps, want the minimal 4:\n%s", got, res.Violation)
	}
	text := res.Violation.String()
	for _, frag := range []string{"no-dup", "consumed twice", "reconnects", "sends msg"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("trace missing %q:\n%s", frag, text)
		}
	}
}

// TestGapIsLossNotReorder: with no faults at all, a correct run
// certifies trivially.
func TestFaultFreeRunCertifies(t *testing.T) {
	res := Check(Config{
		Ranks: 2,
		Links: []Link{{Src: 0, Dst: 1, Tags: []int{0, 1}, Msgs: 2}},
	})
	if !res.Ok() {
		t.Fatalf("fault-free run failed: %+v", res.Violation)
	}
}

// TestTruncationReported: a too-small MaxStates yields a truncated,
// non-Ok result rather than a false certificate.
func TestTruncationReported(t *testing.T) {
	res := Check(Config{
		Ranks:    2,
		Links:    []Link{{Src: 0, Dst: 1, Tags: []int{0, 1}, Msgs: 3}},
		MaxDrops: 2,
		MaxDups:  2,
		// Force truncation.
		MaxStates: 50,
	})
	if !res.Truncated {
		t.Fatalf("expected truncation at MaxStates=50, explored %d states", res.States)
	}
	if res.Ok() {
		t.Fatalf("truncated result must not read as a certificate")
	}
}

// TestCrashWithoutCheckpointReplays: scratch relaunch means the whole
// conversation replays; dedup and suppression must absorb it. This is
// the "SIGKILLed tilerankd relaunches bit-identically" scenario from
// PR 8, now proved instead of sampled.
func TestCrashWithoutCheckpointReplays(t *testing.T) {
	res := Check(Config{
		Ranks:      2,
		Links:      []Link{{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 2}},
		CrashRanks: []int{0},
	})
	if !res.Ok() {
		t.Fatalf("scratch-relaunch run failed:\n%v", res.Violation)
	}
	if res.States < 50 {
		t.Fatalf("suspiciously small space (%d states) — crash events likely not explored", res.States)
	}
}
