// Package wirecheck is the resume protocol's model checker: it drives
// the *same* pure SendCore/RecvCore transition cores the TCP transport
// runs (internal/mpi/protocol.go) through an exhaustive breadth-first
// exploration of every interleaving of a small configuration's events —
// sends, in-order deliveries, duplicated deliveries, connection drops,
// reconnect handshakes, rank crash-relaunches from a checkpoint
// (RestoreStreams), and epoch resets — and proves four invariants on
// every reachable state:
//
//	no-loss      every stream is fully consumed once the faults stop
//	             (checked at quiescent states), and no link ever fails
//	             with a stream gap
//	no-dup       no frame is consumed twice (an accepted frame whose
//	             sequence is below the consumer cursor is a protocol
//	             failure, not a benign drop)
//	fifo         frames of one (src, dst, tag) stream are consumed in
//	             exactly send order (the consumer cursor only ever
//	             advances to the sequence it expected)
//	reset-safety after an epoch reset, no frame stamped by the dead
//	             epoch is ever consumed
//
// The fault model mirrors the transport's actual guarantees:
//
//   - A connection *drop* is network loss: every in-flight frame dies,
//     and the live sender's retained archive recovers them on the next
//     reconnect handshake.
//   - A rank *crash* is process death: in-flight frames the process
//     already wrote are still delivered by the kernel, the process's
//     queued-but-unwritten frames and its retained archive die with
//     it, and the relaunch reseeds fresh protocol cores through the
//     exact SeedSent/SeedAccepted path RestoreStreams uses, then
//     re-executes from the checkpoint — regenerating sends with their
//     original sequence numbers.
//   - A *checkpoint* is only enabled at flushed states (every produced
//     frame written), because saveProcSnapshot flushes the wire before
//     snapshotting stream counts.
//
// Combining network loss with a sender crash before its reconnect
// exceeds the single-fault recovery guarantee by design: the only copy
// of a dropped frame was the retained archive that died with the
// process. The shipped protocol detects this as a stream gap and fails
// the run loudly. Configs with AllowDetectedLoss certify exactly that
// weaker-but-honest property for double faults: loss may occur but is
// always *detected* (fail-stop), never silent corruption.
//
// Because states are explored breadth-first and memoized, a violated
// invariant is reported with a *shortest* event trace reaching it — the
// certifier's concrete-counterexample idiom, applied to protocol state
// space instead of iteration space. Check(cfg) with the zero
// mpi.ProtocolRules certifies the shipped protocol; flipping any
// mutation knob (NoDedup, ResendOffByOne, OverSuppress, NoEpochFilter)
// must — and does — produce a counterexample, which is how the suite
// proves every decision point in the protocol core is load-bearing.
package wirecheck

import (
	"fmt"
	"sort"
	"strings"

	"tilespace/internal/mpi"
)

// Link declares one directed link of the model: Src sends Msgs frames
// on each tag in Tags to Dst.
type Link struct {
	Src, Dst int
	Tags     []int
	Msgs     int
}

// Config is one model-checking run: a rank topology, per-link traffic,
// and bounded fault budgets. Budgets bound the *adversary*, not the
// protocol — every interleaving that spends at most the budget is
// explored.
type Config struct {
	// Ranks is the world size (ranks are 0..Ranks-1).
	Ranks int
	// Links are the directed links carrying traffic.
	Links []Link
	// MaxDrops bounds connection drops per link. A drop is network
	// loss: every in-flight frame of the link dies and a reconnect
	// handshake is needed for further delivery.
	MaxDrops int
	// MaxDups bounds duplicated deliveries per link (the oldest
	// in-flight frame is processed without being consumed from the
	// wire — a resend race).
	MaxDups int
	// CrashRanks lists ranks that may crash and relaunch (at most once
	// each, at any point). See the package comment for the crash fault
	// model.
	CrashRanks []int
	// Checkpoint enables a checkpoint event for each crash rank (at
	// most one, at any flushed point before its crash). Without it,
	// crashes restart from scratch and re-execute the whole run.
	Checkpoint bool
	// Reset enables one epoch-reset event (World.Reset): all stream
	// state restarts, every stream's traffic total becomes ResetMsgs,
	// and old-epoch frames still in flight must never be consumed.
	Reset bool
	// ResetMsgs is the per-stream message count after a reset.
	ResetMsgs int
	// AllowDetectedLoss switches the certificate from the single-fault
	// recovery guarantee to the double-fault fail-stop guarantee: a
	// stream gap becomes a terminal (failed, loud) state instead of a
	// violation, and quiescent completeness is not required — but
	// no-dup, fifo and reset-safety still hold on every path.
	AllowDetectedLoss bool
	// Rules selects the protocol variant; the zero value is the
	// shipped protocol.
	Rules mpi.ProtocolRules
	// MaxStates aborts exploration beyond this many states (a
	// configuration-too-big guard, not a soundness bound). 0 means 4M.
	MaxStates int
}

// Step is one event of a counterexample trace.
type Step struct {
	// Event is the human-readable event description.
	Event string
}

// Trace is a shortest event sequence from the initial state to an
// invariant violation.
type Trace struct {
	// Invariant names what broke: "no-dup", "fifo", "no-loss",
	// "reset-safety".
	Invariant string
	// Detail pins the violation to a concrete stream and sequence.
	Detail string
	// Steps is the event sequence, in order.
	Steps []Step
}

func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violated %s: %s\n", t.Invariant, t.Detail)
	for i, s := range t.Steps {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, s.Event)
	}
	return b.String()
}

// Result is one Check run's outcome.
type Result struct {
	// States is the number of distinct protocol states explored.
	States int
	// Transitions is the number of state transitions taken.
	Transitions int
	// DetectedFailures counts fail-stop (gap-detected) terminal states
	// reached under AllowDetectedLoss.
	DetectedFailures int
	// Violation is nil when every reachable state satisfies every
	// invariant; otherwise a shortest counterexample.
	Violation *Trace
	// Truncated reports that exploration hit MaxStates before
	// exhausting the space (the certificate is then only partial).
	Truncated bool
}

// Ok reports a complete, violation-free certificate.
func (r Result) Ok() bool { return r.Violation == nil && !r.Truncated }

// ---------------------------------------------------------------------
// Model state.

// flight is one frame: which tag stream, which sequence, and the epoch
// it was stamped under.
type flight struct {
	tagIdx int
	seq    uint64
	epoch  uint32
}

// linkState is the model's view of one directed link: the two protocol
// cores (the exact code under test), the connection, the wire, and the
// model-only oracle state used to judge the cores.
type linkState struct {
	send *mpi.SendCore
	recv *mpi.RecvCore
	up   bool // connection established (handshake done)
	// wire holds frames written to the connection, oldest first. They
	// survive a sender crash (the kernel delivers written bytes) but
	// not a drop (network loss) or a receiver crash.
	wire []flight
	// pend holds frames produced while the connection was down:
	// stamped but unwritten, exactly the transport's queued frames a
	// blocked writer holds. They flush through the suppression filter
	// on reconnect and die with a sender crash.
	pend []flight

	// cursor is how many frames the sender's re-execution has produced
	// per tag — rewound to the checkpoint on a crash, so the model
	// regenerates sends exactly like a deterministically re-executed
	// rank would.
	cursor []uint64
	// consumed is the oracle: how many frames of each tag stream the
	// destination application has consumed. The protocol cores never
	// see it; the invariants are judged against it.
	consumed []uint64
	// total is the frames each tag stream must eventually deliver.
	total uint64

	drops, dups int // fault budget spent
}

// rankState is per-rank crash bookkeeping.
type rankState struct {
	crashed bool // crash budget spent
	ckpt    bool // checkpoint taken
	// ckptConsumed/ckptCursor snapshot, per adjacent link and tag, the
	// consumed and produced counts at checkpoint time.
	ckptConsumed map[int][]uint64 // link index → per-tag consumed
	ckptCursor   map[int][]uint64 // link index → per-tag cursor
}

// state is one node of the explored graph.
type state struct {
	links  []linkState
	ranks  []rankState
	epoch  uint32
	reset  bool // reset budget spent
	failed bool // fail-stop terminal (gap detected, AllowDetectedLoss)
}

func (c *Config) initial() *state {
	st := &state{
		links: make([]linkState, len(c.Links)),
		ranks: make([]rankState, c.Ranks),
	}
	for i, ln := range c.Links {
		st.links[i] = linkState{
			send:     mpi.NewSendCore(c.Rules),
			recv:     mpi.NewRecvCore(c.Rules),
			cursor:   make([]uint64, len(ln.Tags)),
			consumed: make([]uint64, len(ln.Tags)),
			total:    uint64(ln.Msgs),
		}
	}
	return st
}

func (s *state) clone() *state {
	c := &state{
		links:  make([]linkState, len(s.links)),
		ranks:  make([]rankState, len(s.ranks)),
		epoch:  s.epoch,
		reset:  s.reset,
		failed: s.failed,
	}
	for i := range s.links {
		l := &s.links[i]
		c.links[i] = linkState{
			send:     l.send.Clone(),
			recv:     l.recv.Clone(),
			up:       l.up,
			wire:     append([]flight(nil), l.wire...),
			pend:     append([]flight(nil), l.pend...),
			cursor:   append([]uint64(nil), l.cursor...),
			consumed: append([]uint64(nil), l.consumed...),
			total:    l.total,
			drops:    l.drops,
			dups:     l.dups,
		}
	}
	for i := range s.ranks {
		r := &s.ranks[i]
		nr := rankState{crashed: r.crashed, ckpt: r.ckpt}
		if r.ckptConsumed != nil {
			nr.ckptConsumed = map[int][]uint64{}
			for k, v := range r.ckptConsumed {
				nr.ckptConsumed[k] = append([]uint64(nil), v...)
			}
		}
		if r.ckptCursor != nil {
			nr.ckptCursor = map[int][]uint64{}
			for k, v := range r.ckptCursor {
				nr.ckptCursor[k] = append([]uint64(nil), v...)
			}
		}
		c.ranks[i] = nr
	}
	return c
}

// key canonically encodes the state for memoization. Everything that
// distinguishes future behavior must appear; trace history must not.
func (s *state) key(cfg *Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%d r%t f%t|", s.epoch, s.reset, s.failed)
	for i := range s.links {
		l := &s.links[i]
		fmt.Fprintf(&b, "L%d u%t d%d p%d t%d[", i, l.up, l.drops, l.dups, l.total)
		for ti, tag := range cfg.Links[i].Tags {
			next := l.send.NextSeq(tag)
			peer, ok := l.send.PeerCount(tag)
			if !ok {
				fmt.Fprintf(&b, "%d:%d,-,%d,%d,%d;", tag, next, l.recv.Accepted(tag), l.cursor[ti], l.consumed[ti])
			} else {
				fmt.Fprintf(&b, "%d:%d,%d,%d,%d,%d;", tag, next, peer, l.recv.Accepted(tag), l.cursor[ti], l.consumed[ti])
			}
		}
		b.WriteString("]{")
		for _, fl := range l.wire {
			fmt.Fprintf(&b, "%d.%d.%d ", fl.tagIdx, fl.seq, fl.epoch)
		}
		b.WriteString("}<")
		for _, fl := range l.pend {
			fmt.Fprintf(&b, "%d.%d.%d ", fl.tagIdx, fl.seq, fl.epoch)
		}
		// Retained archive shape (including stamp epochs) matters for
		// resend behavior.
		b.WriteString(">(")
		for _, rt := range l.send.RetainedFrames() {
			fmt.Fprintf(&b, "%d.%d.%v ", rt.Tag, rt.Seq, rt.Payload)
		}
		b.WriteString(")|")
	}
	for i := range s.ranks {
		r := &s.ranks[i]
		fmt.Fprintf(&b, "R%d c%t k%t", i, r.crashed, r.ckpt)
		if r.ckptConsumed != nil {
			keys := make([]int, 0, len(r.ckptConsumed))
			for k := range r.ckptConsumed {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " i%d%v", k, r.ckptConsumed[k])
			}
		}
		if r.ckptCursor != nil {
			keys := make([]int, 0, len(r.ckptCursor))
			for k := range r.ckptCursor {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " o%d%v", k, r.ckptCursor[k])
			}
		}
		b.WriteString("|")
	}
	return b.String()
}
