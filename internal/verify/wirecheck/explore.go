package wirecheck

import (
	"fmt"

	"tilespace/internal/mpi"
)

// Check exhaustively explores cfg's protocol state space breadth-first
// and returns the certificate (or a shortest counterexample trace).
//
// The model is the adversary's view of the transport: at every state it
// may produce an application send on any stream, deliver the oldest
// written frame of any link, deliver it *again* without consuming it (a
// duplicated delivery), kill a connection (losing every written frame
// to the network), complete a reconnect handshake (welcome → resend
// plan → pending-queue flush — the exact SendCore/RecvCore
// negotiation), checkpoint a rank at a flushed point, crash-relaunch a
// rank (fresh cores seeded via the SeedSent/SeedAccepted path
// RestoreStreams uses; written frames survive in the kernel, queued
// frames and the retained archive die), or reset the epoch with frames
// still in flight. Fault budgets bound the adversary; every
// interleaving within budget is visited exactly once (states are
// memoized under a canonical encoding).
func Check(cfg Config) Result {
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 4_000_000
	}
	e := &explorer{cfg: &cfg, seen: map[string]int{}}
	root := cfg.initial()
	e.add(root, -1, "")
	var res Result
	for head := 0; head < len(e.states); head++ {
		st := e.states[head]
		if st.failed {
			res.DetectedFailures++
			continue // fail-stop terminal: the run aborted loudly
		}
		if v := e.quiescent(st); v != nil {
			res.Violation = e.trace(head, "", v)
			break
		}
		if stop, v := e.expand(head, st); stop {
			res.Violation = v
			break
		}
		if len(e.states) > maxStates {
			res.Truncated = true
			break
		}
	}
	res.States = len(e.states)
	res.Transitions = e.transitions
	return res
}

type violation struct {
	invariant string
	detail    string
}

type explorer struct {
	cfg         *Config
	seen        map[string]int
	states      []*state
	parents     []int
	events      []string
	transitions int
}

func (e *explorer) add(st *state, parent int, event string) {
	key := st.key(e.cfg)
	if _, ok := e.seen[key]; ok {
		return
	}
	e.seen[key] = len(e.states)
	e.states = append(e.states, st)
	e.parents = append(e.parents, parent)
	e.events = append(e.events, event)
}

// trace reconstructs the shortest event path to state id, appending the
// violating event (if the violation occurred on a transition out of id).
func (e *explorer) trace(id int, lastEvent string, v *violation) *Trace {
	var steps []Step
	for at := id; at > 0; at = e.parents[at] {
		steps = append(steps, Step{Event: e.events[at]})
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	if lastEvent != "" {
		steps = append(steps, Step{Event: lastEvent})
	}
	return &Trace{Invariant: v.invariant, Detail: v.detail, Steps: steps}
}

// expand generates every enabled event of st. It returns a shortest
// counterexample the moment a transition violates an invariant.
func (e *explorer) expand(id int, st *state) (bool, *Trace) {
	cfg := e.cfg
	for li := range st.links {
		l := &st.links[li]
		ln := cfg.Links[li]
		// send: the application on the source rank produces the next
		// message of one stream. On a live connection the frame is
		// written immediately (through the suppression filter); on a
		// dead one it joins the pending queue a blocked writer holds.
		for ti, tag := range ln.Tags {
			if l.cursor[ti] >= l.total {
				continue
			}
			ev := fmt.Sprintf("rank %d sends msg %d on link %d→%d tag %d", ln.Src, l.cursor[ti], ln.Src, ln.Dst, tag)
			ns := st.clone()
			nl := &ns.links[li]
			seq := nl.send.Stamp(tag)
			nl.cursor[ti]++
			if nl.up {
				// Payload is the stamp epoch — the model's stand-in for
				// the transport's encoded frame bytes, which carry the
				// epoch they were stamped under and resend verbatim.
				nl.send.Retain(tag, seq, ns.epoch)
				if nl.send.ShouldTransmit(tag, seq) {
					nl.wire = append(nl.wire, flight{tagIdx: ti, seq: seq, epoch: ns.epoch})
				}
			} else {
				nl.pend = append(nl.pend, flight{tagIdx: ti, seq: seq, epoch: ns.epoch})
			}
			e.transitions++
			e.add(ns, id, ev)
		}
		// deliver / duplicated delivery of the oldest written frame.
		// Written bytes are the kernel's to deliver — a dead sender
		// process does not stop them, which is why this event does not
		// require the connection to be up.
		if len(l.wire) > 0 {
			ev := fmt.Sprintf("link %d→%d delivers frame (tag %d, seq %d)", ln.Src, ln.Dst, ln.Tags[l.wire[0].tagIdx], l.wire[0].seq)
			ns := st.clone()
			nl := &ns.links[li]
			fl := nl.wire[0]
			nl.wire = nl.wire[1:]
			if stop, tr := e.judge(id, ns, li, fl, ev); stop {
				return true, tr
			}
			if l.dups < cfg.MaxDups {
				ev := fmt.Sprintf("link %d→%d re-delivers frame (tag %d, seq %d) without consuming it", ln.Src, ln.Dst, ln.Tags[l.wire[0].tagIdx], l.wire[0].seq)
				ns := st.clone()
				nl := &ns.links[li]
				nl.dups++
				if stop, tr := e.judge(id, ns, li, nl.wire[0], ev); stop {
					return true, tr
				}
			}
		}
		// drop: network loss. Every written frame dies; the live
		// sender's retained archive is what recovers them.
		if l.up && l.drops < cfg.MaxDrops {
			ev := fmt.Sprintf("connection %d→%d drops (%d written frames lost)", ln.Src, ln.Dst, len(l.wire))
			ns := st.clone()
			nl := &ns.links[li]
			nl.up = false
			nl.wire = nil
			nl.drops++
			e.transitions++
			e.add(ns, id, ev)
		}
		// reconnect: hello → welcome handshake, the resend plan, then
		// the pending queue flushes through the suppression filter (the
		// blocked writer resumes).
		if !l.up {
			ev := fmt.Sprintf("link %d→%d reconnects (welcome %v, resends plan, flushes queue)", ln.Src, ln.Dst, l.recv.WelcomeCounts())
			ns := st.clone()
			nl := &ns.links[li]
			nl.up = true
			nl.send.ObserveWelcome(nl.recv.WelcomeCounts())
			for _, rt := range nl.send.ResendPlan() {
				// Resent frames are the original bytes: they keep the
				// epoch they were stamped under (the payload), so a
				// pre-reset frame resent post-reset is stale on arrival.
				ti := tagIndex(ln.Tags, rt.Tag)
				nl.wire = append(nl.wire, flight{tagIdx: ti, seq: rt.Seq, epoch: rt.Payload.(uint32)})
			}
			for _, fl := range nl.pend {
				tag := ln.Tags[fl.tagIdx]
				nl.send.Retain(tag, fl.seq, fl.epoch)
				if nl.send.ShouldTransmit(tag, fl.seq) {
					nl.wire = append(nl.wire, fl)
				}
			}
			nl.pend = nil
			e.transitions++
			e.add(ns, id, ev)
		}
	}
	for _, r := range cfg.CrashRanks {
		rs := &st.ranks[r]
		// checkpoint: only at flushed states — saveProcSnapshot flushes
		// the wire before snapshotting, so a checkpoint never records a
		// produced-but-unwritten frame as sent.
		if cfg.Checkpoint && !rs.ckpt && !rs.crashed && e.flushed(st, r) {
			ev := fmt.Sprintf("rank %d checkpoints (wire flushed)", r)
			ns := st.clone()
			nr := &ns.ranks[r]
			nr.ckpt = true
			nr.ckptConsumed = map[int][]uint64{}
			nr.ckptCursor = map[int][]uint64{}
			for li, ln := range cfg.Links {
				if ln.Dst == r {
					nr.ckptConsumed[li] = append([]uint64(nil), ns.links[li].consumed...)
				}
				if ln.Src == r {
					nr.ckptCursor[li] = append([]uint64(nil), ns.links[li].cursor...)
				}
			}
			e.transitions++
			e.add(ns, id, ev)
		}
		if !rs.crashed {
			ev := fmt.Sprintf("rank %d crashes and relaunches from %s", r, ckptName(rs.ckpt))
			ns := st.clone()
			e.crash(ns, r)
			e.transitions++
			e.add(ns, id, ev)
		}
	}
	if cfg.Reset && !st.reset {
		ev := fmt.Sprintf("epoch reset (%d → %d) with frames in flight", st.epoch, st.epoch+1)
		ns := st.clone()
		ns.reset = true
		ns.epoch++
		for li := range ns.links {
			nl := &ns.links[li]
			nl.send.ResetEpoch()
			nl.recv.ResetEpoch()
			for ti := range nl.cursor {
				nl.cursor[ti] = 0
				nl.consumed[ti] = 0
			}
			nl.total = uint64(cfg.ResetMsgs)
			// The wire is deliberately NOT cleared: frames stamped by the
			// dead epoch stay in flight and the receiver's epoch filter is
			// all that keeps them out of the new run's mailboxes.
		}
		e.transitions++
		e.add(ns, id, ev)
	}
	return false, nil
}

// flushed reports whether every frame rank r has produced is written
// (FlushWire's postcondition: all outbound links up, pending queues
// empty).
func (e *explorer) flushed(st *state, r int) bool {
	for li, ln := range e.cfg.Links {
		if ln.Src != r {
			continue
		}
		l := &st.links[li]
		if !l.up || len(l.pend) > 0 {
			return false
		}
	}
	return true
}

func ckptName(taken bool) string {
	if taken {
		return "its checkpoint"
	}
	return "scratch (no checkpoint)"
}

// judge runs one frame through the receiver core, checks the verdict
// against the oracle, and either records the successor state, a
// fail-stop terminal (AllowDetectedLoss gap), or a violation.
func (e *explorer) judge(id int, ns *state, li int, fl flight, ev string) (bool, *Trace) {
	v, failStop := e.consume(ns, li, fl)
	if v != nil {
		return true, e.trace(id, ev, v)
	}
	if failStop {
		ns.failed = true
		ev += " — stream gap detected, run fails loudly"
	}
	e.transitions++
	e.add(ns, id, ev)
	return false, nil
}

// consume runs one frame through the receiver core and judges the
// verdict against the model's oracle cursor.
func (e *explorer) consume(ns *state, li int, fl flight) (*violation, bool) {
	nl := &ns.links[li]
	ln := e.cfg.Links[li]
	tag := ln.Tags[fl.tagIdx]
	verdict := nl.recv.Accept(fl.epoch, ns.epoch, tag, fl.seq)
	switch verdict {
	case mpi.VerdictStale, mpi.VerdictDuplicate:
		return nil, false
	case mpi.VerdictGap:
		if e.cfg.AllowDetectedLoss {
			return nil, true // fail-stop: loud, by design
		}
		return &violation{
			invariant: "no-loss",
			detail: fmt.Sprintf("link %d→%d tag %d: stream gap — frame %d arrived but %d was never delivered",
				ln.Src, ln.Dst, tag, fl.seq, nl.recv.Accepted(tag)),
		}, false
	}
	// VerdictAccept: the application consumes the frame here.
	if fl.epoch != ns.epoch {
		return &violation{
			invariant: "reset-safety",
			detail: fmt.Sprintf("link %d→%d tag %d: frame (seq %d) stamped by dead epoch %d consumed in epoch %d",
				ln.Src, ln.Dst, tag, fl.seq, fl.epoch, ns.epoch),
		}, false
	}
	want := nl.consumed[fl.tagIdx]
	switch {
	case fl.seq < want:
		return &violation{
			invariant: "no-dup",
			detail: fmt.Sprintf("link %d→%d tag %d: frame %d consumed twice (consumer already at %d)",
				ln.Src, ln.Dst, tag, fl.seq, want),
		}, false
	case fl.seq > want:
		return &violation{
			invariant: "fifo",
			detail: fmt.Sprintf("link %d→%d tag %d: frame %d consumed before frame %d",
				ln.Src, ln.Dst, tag, fl.seq, want),
		}, false
	}
	nl.consumed[fl.tagIdx] = want + 1
	return nil, false
}

// crash relaunches rank r from its checkpoint (or scratch): every
// adjacent link endpoint gets a fresh protocol core seeded exactly the
// way RestoreRecvStreams/RestoreSentStreams seed a relaunched tilerankd
// process, and the application re-executes from the checkpoint —
// regenerating its sends with their original sequence numbers.
//
// Fault semantics: frames rank r already wrote stay deliverable (the
// kernel owns them), its pending queues and retained archives die with
// the process, and frames in flight *to* r die (the receiving process's
// buffers are gone); the live peers' retained archives recover those on
// reconnect.
func (e *explorer) crash(ns *state, r int) {
	nr := &ns.ranks[r]
	nr.crashed = true
	for li, ln := range e.cfg.Links {
		nl := &ns.links[li]
		if ln.Dst == r {
			nl.recv = mpi.NewRecvCore(e.cfg.Rules)
			for ti, tag := range ln.Tags {
				var c uint64
				if nr.ckpt {
					c = nr.ckptConsumed[li][ti]
				}
				if c > 0 {
					nl.recv.SeedAccepted(tag, c)
				}
				nl.consumed[ti] = c
			}
			nl.up = false
			nl.wire = nil
		}
		if ln.Src == r {
			nl.send = mpi.NewSendCore(e.cfg.Rules)
			for ti, tag := range ln.Tags {
				var c uint64
				if nr.ckpt {
					c = nr.ckptCursor[li][ti]
				}
				if c > 0 {
					nl.send.SeedSent(tag, c)
				}
				nl.cursor[ti] = c
			}
			nl.up = false
			nl.pend = nil
			// nl.wire survives: written bytes belong to the kernel.
		}
	}
}

// quiescent checks the completeness half of no-loss: at a state where
// no progress event is enabled — every connection up, every wire and
// queue drained, every stream fully produced — every stream must also
// be fully consumed. Fault events don't count: the adversary may always
// stop faulting, so recovery must never *require* another fault. Under
// AllowDetectedLoss the completeness claim is waived (a double fault
// may strand a stream; liveness is then the watchdog's job) and only
// the safety invariants stand.
func (e *explorer) quiescent(st *state) *violation {
	if e.cfg.AllowDetectedLoss {
		return nil
	}
	for li := range st.links {
		l := &st.links[li]
		if !l.up || len(l.wire) > 0 {
			return nil // reconnect or deliver still enabled
		}
		for ti := range l.cursor {
			if l.cursor[ti] < l.total {
				return nil // send still enabled
			}
		}
	}
	for li := range st.links {
		l := &st.links[li]
		ln := e.cfg.Links[li]
		for ti, tag := range ln.Tags {
			if l.consumed[ti] != l.total {
				return &violation{
					invariant: "no-loss",
					detail: fmt.Sprintf("quiescent with undelivered frames: link %d→%d tag %d consumed %d of %d",
						ln.Src, ln.Dst, tag, l.consumed[ti], l.total),
				}
			}
		}
	}
	return nil
}

func tagIndex(tags []int, tag int) int {
	for i, t := range tags {
		if t == tag {
			return i
		}
	}
	return 0
}
