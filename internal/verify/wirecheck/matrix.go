package wirecheck

import "tilespace/internal/mpi"

// NamedConfig is one certification matrix entry.
type NamedConfig struct {
	Name string
	Cfg  Config
}

// DefaultMatrix is the standing certificate: the configurations CI
// model-checks on every run with the shipped (zero) ProtocolRules. The
// entries are chosen to cover every protocol mechanism — deep
// single-link fault sequences, concurrent bidirectional traffic, epoch
// reset racing in-flight frames, checkpointed crash-relaunch, and a
// three-rank relay whose middle rank crashes — while keeping each state
// space small enough to exhaust in seconds.
func DefaultMatrix() []NamedConfig {
	return []NamedConfig{
		{
			// Every pairwise fault interleaving on one deep link: two
			// tags share the connection, so resend plans and welcomes
			// carry multi-stream state.
			Name: "single-link-deep",
			Cfg: Config{
				Ranks:    2,
				Links:    []Link{{Src: 0, Dst: 1, Tags: []int{0, 1}, Msgs: 3}},
				MaxDrops: 2,
				MaxDups:  2,
			},
		},
		{
			// Both directions live at once, and one epoch reset may fire
			// at any point with frames of the old run still in flight.
			Name: "bidirectional-reset",
			Cfg: Config{
				Ranks: 2,
				Links: []Link{
					{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 2},
					{Src: 1, Dst: 0, Tags: []int{0}, Msgs: 2},
				},
				MaxDrops:  1,
				MaxDups:   1,
				Reset:     true,
				ResetMsgs: 1,
			},
		},
		{
			// A rank that talks in both directions checkpoints at any
			// flushed point and crash-relaunches at any later point,
			// seeding fresh cores through the RestoreStreams path. No
			// network drops: crash recovery is the single-fault
			// guarantee under certification here (see the fail-stop
			// entry for the drop+crash double fault).
			Name: "crash-recovery",
			Cfg: Config{
				Ranks: 2,
				Links: []Link{
					// Two tags share the inbound link, so the crashed
					// rank's checkpoint and welcome carry multi-stream
					// state.
					{Src: 0, Dst: 1, Tags: []int{0, 1}, Msgs: 1},
					{Src: 1, Dst: 0, Tags: []int{0}, Msgs: 2},
				},
				MaxDups:    1,
				CrashRanks: []int{1},
				Checkpoint: true,
			},
		},
		{
			// Three ranks, relay topology: the middle rank both receives
			// and sends, and is the one that crashes.
			Name: "three-rank-relay",
			Cfg: Config{
				Ranks: 3,
				Links: []Link{
					{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 2},
					{Src: 1, Dst: 2, Tags: []int{0}, Msgs: 2},
				},
				MaxDups:    1,
				CrashRanks: []int{1},
				Checkpoint: true,
			},
		},
		{
			// Crash with NO checkpoint: the relaunched rank restarts from
			// scratch and re-executes the whole run; dedup and
			// suppression must absorb the full replay.
			Name: "crash-from-scratch",
			Cfg: Config{
				Ranks: 2,
				Links: []Link{
					{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 2},
					{Src: 1, Dst: 0, Tags: []int{0}, Msgs: 2},
				},
				CrashRanks: []int{1},
			},
		},
		{
			// Network loss combined with a sender crash before its
			// reconnect exceeds the single-fault recovery guarantee by
			// design: the only copy of a dropped frame was the retained
			// archive that died with the process. The certificate here
			// is fail-stop: loss may happen but is always detected (gap
			// → run fails loudly), and no path ever consumes a frame
			// twice, out of order, or across an epoch.
			Name: "drop-plus-crash-failstop",
			Cfg: Config{
				Ranks: 2,
				Links: []Link{
					{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 2},
					{Src: 1, Dst: 0, Tags: []int{0}, Msgs: 2},
				},
				MaxDrops:          1,
				CrashRanks:        []int{1},
				Checkpoint:        true,
				AllowDetectedLoss: true,
			},
		},
	}
}

// NamedMutation is one seeded protocol bug the matrix must reject.
type NamedMutation struct {
	Name  string
	Rules mpi.ProtocolRules
	// Cfg is a small configuration on which the mutation is provably
	// fatal (kept tiny so the counterexample trace is short).
	Cfg Config
}

// Mutations are the seeded bugs: each re-creates a plausible
// implementation error in the resume protocol, and Check must reject
// each with a concrete counterexample trace. A mutation that
// certifies cleanly means the corresponding decision point in the
// protocol core is no longer load-bearing — itself a finding.
func Mutations() []NamedMutation {
	twoWithFaults := func(rules mpi.ProtocolRules) Config {
		return Config{
			Ranks:    2,
			Links:    []Link{{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 2}},
			MaxDrops: 1,
			MaxDups:  1,
			Rules:    rules,
		}
	}
	return []NamedMutation{
		{
			// Receiver dedup removed: a duplicated delivery is consumed
			// twice.
			Name:  "dedup-removed",
			Rules: mpi.ProtocolRules{NoDedup: true},
			Cfg:   twoWithFaults(mpi.ProtocolRules{NoDedup: true}),
		},
		{
			// Reconnect resend plan off by one (seq > accepted instead
			// of seq >= accepted): the first unacknowledged frame is
			// never redelivered.
			Name:  "resend-off-by-one",
			Rules: mpi.ProtocolRules{ResendOffByOne: true},
			Cfg:   twoWithFaults(mpi.ProtocolRules{ResendOffByOne: true}),
		},
		{
			// Sender suppression off by one (seq <= accepted instead of
			// seq < accepted): a frame the peer never saw is suppressed.
			// No faults needed — the initial handshake's welcome (zero
			// accepted) already arms the buggy filter against seq 0.
			Name:  "over-suppress",
			Rules: mpi.ProtocolRules{OverSuppress: true},
			Cfg: Config{
				Ranks: 2,
				Links: []Link{{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 1}},
				Rules: mpi.ProtocolRules{OverSuppress: true},
			},
		},
		{
			// Epoch filter dropped: a frame stamped before a reset is
			// consumed by the next run.
			Name:  "epoch-filter-dropped",
			Rules: mpi.ProtocolRules{NoEpochFilter: true},
			Cfg: Config{
				Ranks:     2,
				Links:     []Link{{Src: 0, Dst: 1, Tags: []int{0}, Msgs: 1}},
				Reset:     true,
				ResetMsgs: 1,
				Rules:     mpi.ProtocolRules{NoEpochFilter: true},
			},
		},
	}
}
