package verify

import (
	"fmt"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// This file certifies dynamic executions after the fact. The static layer
// (Certify) proves the schedule's dependence order is acyclic and exact;
// the dynamic executor (exec.RunOptions.Dynamic) fires tiles as their
// inbound messages arrive rather than at fixed lex time, so its safety
// claim is different: every *observed* firing order must be a linear
// extension of that certified dependence order. CheckDynamicOrder proves
// exactly that for one recorded run, with the same counterexample
// discipline as the static theorems — a disproof names the concrete tile
// (and its offending predecessor) rather than just failing.

// FiringRecord is one observed tile firing of a dynamic run. Seq is the
// tile's position in the run's single observed linearization (assigned
// under one lock by exec.FiringLog, so any happens-before edge between two
// firings implies Seq order); Rank and Slot locate the firing on its
// rank's chain; Tile is the fired tile coordinate.
type FiringRecord struct {
	Seq  int64
	Rank int
	Slot int64
	Tile ilin.Vec
}

// CheckDynamicOrder certifies an observed dynamic firing order against the
// compiled program (ts, d). It proves four claims:
//
//   - dynamic-coverage: every valid tile fired exactly once — a tile that
//     never fired is a dropped dependence-counter decrement (the task was
//     never released), and a record naming an invalid tile fired outside
//     the iteration space.
//   - dynamic-duplicate: no tile fired twice — a second firing of a
//     committed tile is a stale-epoch fire (a rewound or duplicated task
//     re-entering the pool).
//   - dynamic-order: for every tile dependence d^S with a valid
//     predecessor, Seq(tile − d^S) < Seq(tile) — firing before a
//     dependence source is the classic premature release.
//   - dynamic-priority: within each rank the firing sequence ascends the
//     chain — the static lex-time schedule is the promised tie-break, so
//     a rank observed firing slot t before slot t−1 broke the hybrid
//     contract (and with it the bit-identity argument).
//
// On failure it returns the first *Violation with the offending tile as
// the counterexample; on success it returns the number of dependence
// edges proved ordered.
func CheckDynamicOrder(ts *tiling.TiledSpace, d *distrib.Distribution, recs []FiringRecord) (int64, error) {
	idx := ilin.NewBoxIndexer(ts.TileLo, ts.TileHi)
	seq := make(map[int64]int64, len(recs))
	seen := make(map[int64]bool, len(recs))
	for _, rec := range recs {
		key, ok := idx.Index(rec.Tile)
		if !ok || !ts.ValidTile(rec.Tile) {
			return 0, &Violation{Rule: "dynamic-coverage", Rank: rec.Rank, Tile: rec.Tile,
				Detail: fmt.Sprintf("firing seq %d names a tile outside the tile space", rec.Seq)}
		}
		if seen[key] {
			return 0, &Violation{Rule: "dynamic-duplicate", Rank: rec.Rank, Tile: rec.Tile,
				Detail: fmt.Sprintf("tile fired again at seq %d after an earlier firing — stale-epoch fire", rec.Seq)}
		}
		seen[key] = true
		if r, okr := d.RankOfTile(rec.Tile); !okr || r != rec.Rank {
			return 0, &Violation{Rule: "dynamic-rank", Rank: rec.Rank, Tile: rec.Tile,
				Detail: fmt.Sprintf("tile is owned by rank %d but fired on rank %d", r, rec.Rank)}
		}
		if ti, okt := d.TIndex(rec.Tile); !okt || ti != rec.Slot {
			return 0, &Violation{Rule: "dynamic-rank", Rank: rec.Rank, Tile: rec.Tile,
				Detail: fmt.Sprintf("tile lives at chain slot %d but the record claims slot %d", ti, rec.Slot)}
		}
		seq[key] = rec.Seq
	}

	var edges int64
	for r := 0; r < d.NumProcs(); r++ {
		prev := int64(-1)
		for t := int64(0); t < d.ChainLen[r]; t++ {
			tile := d.TileAt(r, t)
			key, _ := idx.Index(tile)
			s, fired := seq[key]
			if !fired {
				return 0, &Violation{Rule: "dynamic-coverage", Rank: r, Tile: tile,
					Detail: fmt.Sprintf("tile (chain slot %d) never fired — its dependence counter was never released", t)}
			}
			if t > 0 && s <= prev {
				return 0, &Violation{Rule: "dynamic-priority", Rank: r, Tile: tile,
					Detail: fmt.Sprintf("chain slot %d fired at seq %d, not after slot %d (seq %d) — static tie-break order broken", t, s, t-1, prev)}
			}
			prev = s
			for _, dS := range ts.DS {
				pred := tile.Sub(dS)
				if !ts.ValidTile(pred) {
					continue
				}
				pkey, _ := idx.Index(pred)
				ps, pok := seq[pkey]
				if !pok {
					// The predecessor's own coverage violation is reported on
					// its rank's chain walk; the edge cannot be ordered here.
					continue
				}
				if ps >= s {
					return 0, &Violation{Rule: "dynamic-order", Rank: r, Tile: tile,
						Detail: fmt.Sprintf("fired at seq %d before its dependence source %v (seq %d) along d^S=%v", s, pred, ps, dS)}
				}
				edges++
			}
		}
	}
	return edges, nil
}
