package verify_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
	"tilespace/internal/verify"
)

type matrixCase struct {
	name string
	ts   *tiling.TiledSpace
	d    *distrib.Distribution
}

// matrixCases builds the full app × tiling matrix of the differential
// suite (SOR, Jacobi, ADI, Heat3D × rect and every cone-derived family).
// The certifier's schedule and comm proofs cover blocking and overlap
// modes at once: the two modes share the identical send/recv pattern and
// differ only in Send vs Isend, both eager.
func matrixCases(t *testing.T) []matrixCase {
	t.Helper()
	var out []matrixCase
	add := func(name string, app *apps.App, err error, fam apps.TilingFamily, x, y, z int64) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ts, err := tiling.Analyze(app.Nest, fam.H(x, y, z))
		if err != nil {
			t.Logf("skip %s (%s x=%d y=%d z=%d): %v", name, fam.Name, x, y, z, err)
			return
		}
		m := app.MapDim
		if m < 0 {
			m = distrib.ChooseMappingDim(ts)
		}
		d, err := distrib.New(ts, m)
		if err != nil {
			t.Logf("skip %s (%s x=%d y=%d z=%d): %v", name, fam.Name, x, y, z, err)
			return
		}
		out = append(out, matrixCase{name, ts, d})
	}
	sor, err := apps.SOR(4, 10)
	add("sor/rect", sor, err, sor.Rect, 2, 4, 4)
	add("sor/rect-ragged", sor, err, sor.Rect, 2, 3, 5)
	add("sor/nonrect", sor, err, sor.NonRect[0], 2, 4, 4)
	jac, err := apps.Jacobi(8, 12)
	add("jacobi/rect", jac, err, jac.Rect, 2, 3, 3)
	add("jacobi/nonrect", jac, err, jac.NonRect[0], 2, 4, 4)
	adi, err := apps.ADI(8, 10)
	add("adi/rect", adi, err, adi.Rect, 2, 3, 3)
	for i, fam := range adi.NonRect {
		add(fmt.Sprintf("adi/nonrect%d", i), adi, nil, fam, 2, 3, 3)
	}
	heat, err := apps.Heat3D(6, 8)
	add("heat3d/rect", heat, err, heat.Rect, 2, 2, 2)
	if len(out) < 6 {
		t.Fatalf("only %d matrix cases built — factor choices too restrictive", len(out))
	}
	return out
}

// TestCertifyMatrix runs the static certifier over the full matrix and
// pins its coverage: every tile and every iteration point replayed, at
// least one message proved exact wherever more than one rank exists, and
// the whole sweep finishing far inside the 10 s acceptance budget.
func TestCertifyMatrix(t *testing.T) {
	start := time.Now()
	for _, c := range matrixCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rep, err := verify.Certify(c.ts, c.d)
			if err != nil {
				t.Fatalf("certify: %v", err)
			}
			if rep.Tiles != c.ts.NumTiles() {
				t.Errorf("replayed %d tiles, space has %d", rep.Tiles, c.ts.NumTiles())
			}
			if rep.Points != c.ts.TotalPoints() {
				t.Errorf("replayed %d points, space has %d", rep.Points, c.ts.TotalPoints())
			}
			if rep.Procs > 1 && rep.Messages == 0 {
				t.Errorf("%d procs but no messages certified", rep.Procs)
			}
			if rep.Checks == 0 || rep.Shapes == 0 {
				t.Errorf("empty certification: %+v", rep)
			}
			t.Logf("%s: %s", c.name, rep)
		})
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("matrix certification took %v, over the 10s budget", el)
	}
}

// firstMessageTile finds a tile that sends at least one message, with its
// direction index — the mutation target.
func firstMessageTile(t *testing.T, d *distrib.Distribution) (tile ilin.Vec, dir int) {
	t.Helper()
	dir = -1
	d.TS.ScanTiles(func(s ilin.Vec) bool {
		for i, dm := range d.DM {
			if d.HasSuccessor(s, dm) && d.CommRegionCount(s, dm) > 0 {
				tile, dir = s.Clone(), i
				return false
			}
		}
		return true
	})
	if dir < 0 {
		t.Fatal("no communicating tile in the space")
	}
	return tile, dir
}

// TestMutationCorruptedRunRejected corrupts one CommRuns run and asserts
// the verifier rejects the plan naming a counterexample point.
func TestMutationCorruptedRunRejected(t *testing.T) {
	c := matrixCases(t)[0]
	tile, dir := firstMessageTile(t, c.d)
	r, _ := c.d.RankOfTile(tile)
	addr := c.d.Addresser(r)
	var (
		want []int64
		pts  []ilin.Vec
	)
	c.d.CommRegion(tile, c.d.DM[dir], func(z, jp ilin.Vec) bool {
		want = append(want, addr.Flat(jp, 0))
		pts = append(pts, c.ts.GlobalOf(tile, z))
		return true
	})
	runs, total := c.d.CommRuns(tile, c.d.DM[dir], addr)
	if v := verify.CheckRuns(pts, want, runs, total); v != nil {
		t.Fatalf("pristine runs rejected: %v", v)
	}

	for name, mutate := range map[string]func([]distrib.Run) []distrib.Run{
		"shifted-offset": func(rs []distrib.Run) []distrib.Run {
			rs[0].Off++ // pack starts one cell late: first value missing
			return rs
		},
		"dropped-tail": func(rs []distrib.Run) []distrib.Run {
			rs[len(rs)-1].N-- // last value never sent
			return rs
		},
		"doubled-run": func(rs []distrib.Run) []distrib.Run {
			return append(rs, rs[0]) // first run's cells sent twice
		},
	} {
		t.Run(name, func(t *testing.T) {
			mutated := mutate(append([]distrib.Run(nil), runs...))
			v := verify.CheckRuns(pts, want, mutated, total)
			if v == nil {
				t.Fatal("corrupted run list accepted")
			}
			if !strings.Contains(v.Error(), "counterexample point") {
				t.Errorf("rejection carries no counterexample point: %v", v)
			}
			t.Logf("rejected: %v", v)
		})
	}
}

// TestMutationCorruptedScheduleRejected corrupts one schedule edge and
// asserts CheckSchedule rejects the pattern, reversed edges specifically
// as a deadlock with a counterexample.
func TestMutationCorruptedScheduleRejected(t *testing.T) {
	c := matrixCases(t)[0]
	edges := verify.ScheduleEdges(c.d)
	if len(edges) == 0 {
		t.Fatal("no schedule edges in the matrix case")
	}
	if err := verify.CheckSchedule(c.d, edges); err != nil {
		t.Fatalf("pristine schedule rejected: %v", err)
	}

	mutations := map[string]func([]verify.Edge) []verify.Edge{
		"reversed-edge": func(es []verify.Edge) []verify.Edge {
			es[0].From, es[0].To = es[0].To, es[0].From
			es[0].SrcRank, es[0].DstRank = es[0].DstRank, es[0].SrcRank
			return es
		},
		"wrong-receiver": func(es []verify.Edge) []verify.Edge {
			es[0].To = es[0].To.Clone()
			es[0].To[len(es[0].To)-1]++ // no longer minsucc
			return es
		},
		"inflated-payload": func(es []verify.Edge) []verify.Edge {
			es[0].Values++
			return es
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			mutated := mutate(append([]verify.Edge(nil), edges...))
			err := verify.CheckSchedule(c.d, mutated)
			if err == nil {
				t.Fatal("corrupted schedule accepted")
			}
			if !strings.Contains(err.Error(), "counterexample point") {
				t.Errorf("rejection carries no counterexample point: %v", err)
			}
			if name == "reversed-edge" && !strings.Contains(err.Error(), "deadlock") {
				t.Errorf("reversed edge not reported as a deadlock: %v", err)
			}
			t.Logf("rejected: %v", err)
		})
	}
}

// TestCertifyRejectsMutatedSpace mutates the analyzed space itself — the
// kind of corruption Certify sees end-to-end — and asserts rejection with
// the shared tiling diagnostics.
func TestCertifyRejectsMutatedSpace(t *testing.T) {
	c := matrixCases(t)[0]
	saved := c.ts.DS[0].Clone()
	c.ts.DS[0][0] = 2 // outside {0,1}: §3.2 cannot express it
	_, err := verify.Certify(c.ts, c.d)
	c.ts.DS[0] = saved
	if err == nil {
		t.Fatal("mutated tile-dependence matrix accepted")
	}
	if !strings.Contains(err.Error(), "component outside {0,1}") {
		t.Errorf("expected the shared tiling diagnostic, got: %v", err)
	}
}

// TestMutationCorruptedLocalScheduleRejected corrupts the intra-tile
// wavefront schedule in each of the ways a buggy derivation could — a
// skipped point, a doubly-fired point, and fronts merged so a dependence
// no longer crosses them — and asserts CheckLocalSchedule rejects each
// with a concrete counterexample.
func TestMutationCorruptedLocalScheduleRejected(t *testing.T) {
	c := matrixCases(t)[0]
	seq := distrib.SeqDims(c.ts.DP)
	var (
		tile ilin.Vec
		zs   []int64
		ls   *distrib.LocalSchedule
	)
	c.ts.ScanTiles(func(s ilin.Vec) bool {
		var cand []int64
		c.ts.ScanTilePoints(s, func(z, jp ilin.Vec) bool {
			cand = append(cand, z...)
			return true
		})
		sched := distrib.NewLocalSchedule(c.ts, cand, seq)
		if len(sched.Fronts) >= 2 {
			tile, zs, ls = s.Clone(), cand, sched
			return false
		}
		return true
	})
	if ls == nil {
		t.Fatal("no tile with a multi-front schedule in the space")
	}
	if v := verify.CheckLocalSchedule(c.ts, tile, zs, ls); v != nil {
		t.Fatalf("pristine schedule rejected: %v", v)
	}

	clone := func() *distrib.LocalSchedule {
		cp := &distrib.LocalSchedule{Seq: ls.Seq, Sigma: ls.Sigma}
		for _, f := range ls.Fronts {
			cp.Fronts = append(cp.Fronts, append([]int32(nil), f...))
		}
		return cp
	}
	mutations := map[string]struct {
		mutate func(*distrib.LocalSchedule)
		rule   string
	}{
		"dropped-point": {func(s *distrib.LocalSchedule) {
			last := s.Fronts[len(s.Fronts)-1]
			s.Fronts[len(s.Fronts)-1] = last[:len(last)-1]
		}, "local-coverage"},
		"doubled-point": {func(s *distrib.LocalSchedule) {
			s.Fronts[0] = append(s.Fronts[0], s.Fronts[0][0])
		}, "local-coverage"},
		"merged-fronts": {func(s *distrib.LocalSchedule) {
			var all []int32
			for _, f := range s.Fronts {
				all = append(all, f...)
			}
			s.Fronts = [][]int32{all}
		}, "local-order"},
	}
	for name, m := range mutations {
		t.Run(name, func(t *testing.T) {
			s := clone()
			m.mutate(s)
			v := verify.CheckLocalSchedule(c.ts, tile, zs, s)
			if v == nil {
				t.Fatal("corrupted schedule accepted")
			}
			if v.Rule != m.rule {
				t.Errorf("rejected under rule %q, want %q", v.Rule, m.rule)
			}
			if v.Point == nil {
				t.Errorf("rejection carries no counterexample point: %v", v)
			}
			t.Logf("rejected: %v", v)
		})
	}
}
