package verify

import (
	"fmt"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

// This file certifies the intra-tile parallel schedule (theorem 4): for
// every clamped tile shape, firing distrib.LocalSchedule's wavefronts in
// order — with any execution order inside a front — is a linear extension
// of the shape's intra-tile dependence order. Two claims are proved per
// shape:
//
//   - local-coverage: every lattice point of the shape is scheduled in
//     exactly one front (nothing skipped, nothing fired twice);
//   - local-order: for every point A and transformed dependence d', if
//     the source B = j'(A) − d' is a point of the same shape, B's front
//     strictly precedes A's. Strictness also proves front independence:
//     a dependence between same-front points would violate it.
//
// Together with disjointness of write cells (each point writes only its
// own LDS cell — theorem 3 proves the address program is the injective
// Flat map), this is exactly the fact the executor's worker pool relies
// on for bit-identical results at any pool size.

// CheckLocalSchedule proves the two intra-tile claims for one clamped
// shape: zs is the flat npts×n lattice point list (ScanTilePoints order)
// of tile, ls its derived schedule. Rank of a returned Violation is left
// for the caller; Tile and the counterexample Point are filled.
func CheckLocalSchedule(ts *tiling.TiledSpace, tile ilin.Vec, zs []int64, ls *distrib.LocalSchedule) *Violation {
	n := ts.T.N
	q := ts.DP.Cols
	npts := len(zs) / n

	// j' of every point, plus an exact (hash + compare) j' → index map.
	jps := make([]int64, npts*n)
	buckets := make(map[uint64][]int32, npts)
	for i := 0; i < npts; i++ {
		z := zs[i*n : i*n+n]
		jp := jps[i*n : i*n+n]
		for k := 0; k < n; k++ {
			var s int64
			for l := 0; l <= k; l++ { // H̃' is lower-triangular
				s += ts.T.HT.At(k, l) * z[l]
			}
			jp[k] = s
		}
		key := ilin.HashInt64s(ilin.HashSeed(), jp)
		buckets[key] = append(buckets[key], int32(i))
	}
	lookup := func(jp []int64) int {
		for _, i := range buckets[ilin.HashInt64s(ilin.HashSeed(), jp)] {
			cand := jps[int(i)*n : int(i)*n+n]
			match := true
			for k := 0; k < n; k++ {
				if cand[k] != jp[k] {
					match = false
					break
				}
			}
			if match {
				return int(i)
			}
		}
		return -1
	}

	// Coverage: exactly-once firing.
	frontOf := make([]int32, npts)
	for i := range frontOf {
		frontOf[i] = -1
	}
	for fi, front := range ls.Fronts {
		for _, idx := range front {
			if int(idx) < 0 || int(idx) >= npts {
				return &Violation{
					Rule: "local-coverage", Rank: -1, Tile: tile.Clone(),
					Detail: fmt.Sprintf("front %d names point %d outside the %d-point shape", fi, idx, npts),
				}
			}
			if frontOf[idx] != -1 {
				return &Violation{
					Rule: "local-coverage", Rank: -1, Tile: tile.Clone(),
					Point:  ts.GlobalOf(tile, ilin.Vec(zs[int(idx)*n:int(idx)*n+n])),
					Detail: fmt.Sprintf("point fires in front %d and again in front %d", frontOf[idx], fi),
				}
			}
			frontOf[idx] = int32(fi)
		}
	}
	for i, f := range frontOf {
		if f == -1 {
			return &Violation{
				Rule: "local-coverage", Rank: -1, Tile: tile.Clone(),
				Point:  ts.GlobalOf(tile, ilin.Vec(zs[i*n:i*n+n])),
				Detail: "point is never fired by the schedule",
			}
		}
	}

	// Order: every intra-tile dependence crosses fronts strictly forward.
	src := make([]int64, n)
	for i := 0; i < npts; i++ {
		jp := jps[i*n : i*n+n]
		for l := 0; l < q; l++ {
			for k := 0; k < n; k++ {
				src[k] = jp[k] - ts.DP.At(k, l)
			}
			s := lookup(src)
			if s < 0 {
				continue // source lives in another tile: the chain order covers it
			}
			if frontOf[s] >= frontOf[i] {
				return &Violation{
					Rule: "local-order", Rank: -1, Tile: tile.Clone(),
					Point: ts.GlobalOf(tile, ilin.Vec(zs[i*n:i*n+n])),
					Detail: fmt.Sprintf("reads dependence d'_%d from front %d but fires in front %d — not a linear extension",
						l+1, frontOf[s], frontOf[i]),
				}
			}
		}
	}
	return nil
}

// checkLocalSchedules certifies theorem 4 for every distinct clamped tile
// shape of the distribution, deriving each shape's schedule exactly the
// way the executor does (SeqDims of the cone, NewLocalSchedule of the
// shape's z-list).
func checkLocalSchedules(ts *tiling.TiledSpace, d *distrib.Distribution, rep *Report) error {
	seq := distrib.SeqDims(ts.DP)
	shapes := map[uint64][][]int64{}
	for r := 0; r < d.NumProcs(); r++ {
		for t := int64(0); t < d.ChainLen[r]; t++ {
			tile := d.TileAt(r, t)
			var zs []int64
			ts.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
				zs = append(zs, z...)
				return true
			})
			key := ilin.HashInt64s(ilin.HashSeed(), zs)
			done := false
			for _, prev := range shapes[key] {
				if int64sEqual(prev, zs) {
					done = true
					break
				}
			}
			if done {
				continue
			}
			shapes[key] = append(shapes[key], zs)
			ls := distrib.NewLocalSchedule(ts, zs, seq)
			if v := CheckLocalSchedule(ts, tile, zs, ls); v != nil {
				v.Rank = r
				return v
			}
			npts := int64(len(zs) / ts.T.N)
			rep.Checks += npts * int64(1+ts.DP.Cols)
		}
	}
	return nil
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
