// Package schedule implements the paper's analytic scheduling model: the
// linear time schedule Π = [1, …, 1] over the tile space, the schedule
// length Π·(⌊H·j_max⌋ − ⌊H·j_min⌋) + 1 that §4 uses to predict the
// advantage of cone-derived tile shapes (t_nr = t_r − M/z for SOR, etc.),
// and the Hodzic–Shang-style per-step completion-time estimate
//
//	T ≈ steps × (t_tile + t_comm)
//
// that the discrete-event simulator refines. Having the closed-form model
// in code lets tests confirm the paper's §4.1–4.3 algebra against the
// actual tile spaces, and quantifies how close the simple model tracks the
// simulation.
package schedule

import (
	"fmt"
	"sort"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

// Linear is the linear schedule Π over the tile space: tile j^S executes
// at step Π·j^S (shifted so the first step is 0).
type Linear struct {
	Pi ilin.Vec
}

// Uniform returns the paper's Π = [1, 1, …, 1].
func Uniform(n int) Linear {
	pi := make(ilin.Vec, n)
	for i := range pi {
		pi[i] = 1
	}
	return Linear{Pi: pi}
}

// Valid reports whether the schedule respects every tile dependence:
// Π·d^S > 0 for all d^S (strict, so dependent tiles land on later steps).
func (l Linear) Valid(ts *tiling.TiledSpace) bool {
	for _, dS := range ts.DS {
		if l.Pi.Dot(dS) <= 0 {
			return false
		}
	}
	return true
}

// Step returns the (unshifted) schedule step of a tile.
func (l Linear) Step(jS ilin.Vec) int64 { return l.Pi.Dot(jS) }

// Length returns the number of schedule steps over all valid tiles:
// max Π·j^S − min Π·j^S + 1. This is the quantity the paper computes as
// Π·⌊H·j_max⌋ − Π·⌊H·j_min⌋ + 1.
func (l Linear) Length(ts *tiling.TiledSpace) int64 {
	first := true
	var lo, hi int64
	ts.ScanTiles(func(jS ilin.Vec) bool {
		s := l.Step(jS)
		if first {
			lo, hi = s, s
			first = false
		} else {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return true
	})
	if first {
		return 0
	}
	return hi - lo + 1
}

// LengthFromExtremes evaluates the paper's closed form using only the last
// and first iteration points: Π·⌊H·j_max⌋ − Π·⌊H·j_min⌋ + 1 — the §4
// quantity behind t_r and t_nr. For skewed tilings this is *not* the
// global wavefront range (some tiles have larger Π·j^S than j_max's tile);
// it is the completion step of the pipelined execution, which
// PipelinedLength computes exactly from the tile graph.
func LengthFromExtremes(t *tiling.Transform, jMin, jMax ilin.Vec, pi Linear) int64 {
	return pi.Step(t.TileOf(jMax)) - pi.Step(t.TileOf(jMin)) + 1
}

// PipelinedLength is the unit-execution-time makespan of the §3.1
// execution model (the UET-UCT abstraction of [3]): every tile costs one
// step, a tile starts after all its D^S predecessors, and each processor
// executes its chain sequentially. This is the step count the paper's
// t_r/t_nr algebra predicts: skewing H moves mesh-serializing tile
// dependencies outside the valid tile space, so downstream processors
// start earlier and the pipeline fill shrinks — the entire §4 effect.
func PipelinedLength(d *distrib.Distribution) int64 {
	ts := d.TS
	type ref struct {
		rank int
		t    int64
		wave int64
	}
	var tiles []ref
	for r := 0; r < d.NumProcs(); r++ {
		for t := int64(0); t < d.ChainLen[r]; t++ {
			jS := d.TileAt(r, t)
			var w int64
			for _, x := range jS {
				w += x
			}
			tiles = append(tiles, ref{r, t, w})
		}
	}
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i].wave != tiles[j].wave {
			return tiles[i].wave < tiles[j].wave
		}
		if tiles[i].rank != tiles[j].rank {
			return tiles[i].rank < tiles[j].rank
		}
		return tiles[i].t < tiles[j].t
	})
	finish := map[string]int64{} // tile -> completion step (1-based)
	procFree := make([]int64, d.NumProcs())
	var makespan int64
	for _, tr := range tiles {
		tile := d.TileAt(tr.rank, tr.t)
		start := procFree[tr.rank]
		for _, dS := range ts.DS {
			pred := tile.Sub(dS)
			if !ts.ValidTile(pred) {
				continue
			}
			if f := finish[pred.String()]; f > start {
				start = f
			}
		}
		end := start + 1
		finish[tile.String()] = end
		procFree[tr.rank] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// CostModel is the per-step analytic estimate of Hodzic–Shang [9]: every
// schedule step costs one full tile of computation plus the tile's
// communication, and the pipeline executes Length steps.
type CostModel struct {
	// Params is the same cluster cost model the simulator uses.
	Params simnet.Params
}

// Estimate is the closed-form completion-time prediction.
type Estimate struct {
	Steps    int64
	TileComp float64 // seconds of computation per full tile
	TileComm float64 // seconds of communication per tile (all directions)
	StepTime float64 // TileComp + TileComm
	Total    float64 // Steps × StepTime
	SeqTime  float64
	Speedup  float64
}

// Predict evaluates the model for a distribution. It uses full-tile
// communication volumes (interior steady state); boundary effects are what
// the simulator adds on top.
func (cm CostModel) Predict(d *distrib.Distribution) (*Estimate, error) {
	if err := cm.Params.Validate(); err != nil {
		return nil, err
	}
	ts := d.TS
	pi := Uniform(ts.T.N)
	if !pi.Valid(ts) {
		return nil, fmt.Errorf("schedule: Π = [1…1] violates a tile dependence")
	}
	est := &Estimate{Steps: PipelinedLength(d)}
	est.TileComp = float64(ts.T.TileSize) * cm.Params.IterTime
	for _, dm := range d.DM {
		n := d.FullTileCommCount(dm)
		if n == 0 {
			continue
		}
		values := float64(n * int64(cm.Params.Width))
		bytes := values * float64(cm.Params.ValueBytes)
		est.TileComm += cm.Params.SendOverhead + cm.Params.RecvOverhead +
			2*values*cm.Params.PackTime + bytes/cm.Params.Bandwidth
	}
	est.StepTime = est.TileComp + est.TileComm
	est.Total = float64(est.Steps) * est.StepTime
	var points int64
	ts.ScanTiles(func(jS ilin.Vec) bool {
		points += ts.CountTilePoints(jS, nil)
		return true
	})
	est.SeqTime = float64(points) * cm.Params.IterTime
	if est.Total > 0 {
		est.Speedup = est.SeqTime / est.Total
	}
	return est, nil
}

// Compare runs both the closed-form model and the simulator and returns
// the ratio of predicted to simulated makespan (1.0 = perfect agreement).
func (cm CostModel) Compare(d *distrib.Distribution) (est *Estimate, sim *simnet.Result, ratio float64, err error) {
	est, err = cm.Predict(d)
	if err != nil {
		return nil, nil, 0, err
	}
	sim, err = simnet.Simulate(d, cm.Params)
	if err != nil {
		return nil, nil, 0, err
	}
	if sim.Makespan > 0 {
		ratio = est.Total / sim.Makespan
	}
	return est, sim, ratio, nil
}
