package schedule

import (
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

func analyzed(t *testing.T, app *apps.App, h *ilin.RatMat) *tiling.TiledSpace {
	t.Helper()
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestUniformValid(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts := analyzed(t, app, app.Rect.H(2, 6, 6))
	pi := Uniform(3)
	if !pi.Valid(ts) {
		t.Error("Π = [1,1,1] should satisfy all SOR tile deps")
	}
	bad := Linear{Pi: ilin.NewVec(0, 0, 1)}
	if bad.Valid(ts) {
		t.Error("Π = [0,0,1] cannot satisfy dep (1,0,0)")
	}
}

// TestSORScheduleAlgebra verifies §4.1's closed form: with common factors,
// t_nr = t_r − M/z (up to floor rounding at the boundaries ±1).
func TestSORScheduleAlgebra(t *testing.T) {
	const M, N = 24, 48
	const x, y, z = 6, 9, 8
	app, err := apps.SOR(M, N)
	if err != nil {
		t.Fatal(err)
	}
	pi := Uniform(3)
	lenR := pi.Length(analyzed(t, app, app.Rect.H(x, y, z)))
	lenNR := pi.Length(analyzed(t, app, app.NonRect[0].H(x, y, z)))
	want := int64(M / z) // the paper's t_r − t_nr = M/z
	got := lenR - lenNR
	if got < want-1 || got > want+1 {
		t.Errorf("schedule shortening = %d, paper predicts ≈ %d (t_r=%d, t_nr=%d)", got, want, lenR, lenNR)
	}
}

// TestADIScheduleAlgebra verifies the paper's §4.3 algebra exactly as
// stated: with j_max = (T, N, N), the schedule step of j_max's tile obeys
// t_nr1 = t_r − N/x, t_nr2 = t_r − N/x, t_nr3 = t_r − 2N/x (the paper
// writes the subtrahends as N/y, N/z, N/y + N/z under its equal-factor
// setup; the skewed row is scaled by 1/x).
func TestADIScheduleAlgebra(t *testing.T) {
	const T, N = 16, 32
	const x, y, z = 4, 8, 8
	app, err := apps.ADI(T, N)
	if err != nil {
		t.Fatal(err)
	}
	pi := Uniform(3)
	jMax := ilin.NewVec(T, N, N)
	step := func(h *ilin.RatMat) int64 {
		tr, err := tiling.New(h)
		if err != nil {
			t.Fatal(err)
		}
		return pi.Step(tr.TileOf(jMax))
	}
	tR := step(app.Rect.H(x, y, z))
	if got := tR - step(app.NonRect[0].H(x, y, z)); got != N/x {
		t.Errorf("nr1: t_r - t_nr1 = %d, want N/x = %d", got, N/x)
	}
	if got := tR - step(app.NonRect[1].H(x, y, z)); got != N/x {
		t.Errorf("nr2: t_r - t_nr2 = %d, want N/x = %d", got, N/x)
	}
	if got := tR - step(app.NonRect[2].H(x, y, z)); got != 2*N/x {
		t.Errorf("nr3: t_r - t_nr3 = %d, want 2N/x = %d", got, 2*N/x)
	}
}

// TestADIPipelinedOrdering: under the §3.1 execution model (chains with
// blocking receives, the UET abstraction) the family ordering of the
// paper's Figure 9/10 holds: rect slowest, nr3 fastest.
func TestADIPipelinedOrdering(t *testing.T) {
	const T, N = 16, 32
	const x, y, z = 4, 8, 8
	app, err := apps.ADI(T, N)
	if err != nil {
		t.Fatal(err)
	}
	lens := map[string]int64{}
	for _, f := range append([]apps.TilingFamily{app.Rect}, app.NonRect...) {
		ts := analyzed(t, app, f.H(x, y, z))
		d, err := distrib.New(ts, app.MapDim)
		if err != nil {
			t.Fatal(err)
		}
		lens[f.Name] = PipelinedLength(d)
	}
	if !(lens["nr3"] < lens["nr1"] && lens["nr3"] < lens["nr2"]) {
		t.Errorf("nr3 should have the shortest pipeline: %v", lens)
	}
	if !(lens["nr1"] < lens["rect"] && lens["nr2"] < lens["rect"]) {
		t.Errorf("nr1/nr2 should beat rect: %v", lens)
	}
	if lens["nr1"] != lens["nr2"] {
		t.Errorf("nr1 and nr2 should tie with y=z: %v", lens)
	}
}

// TestJacobiScheduleAlgebra verifies §4.2's closed form exactly as
// stated: with j_max = (T, T+I, T+J) in skewed coordinates,
// t_nr = t_r − (T+I)/(2x).
func TestJacobiScheduleAlgebra(t *testing.T) {
	const T, N = 12, 24
	const x, y, z = 3, 12, 9
	app, err := apps.Jacobi(T, N)
	if err != nil {
		t.Fatal(err)
	}
	pi := Uniform(3)
	jMax := ilin.NewVec(T, T+N, T+N)
	step := func(h *ilin.RatMat) int64 {
		tr, err := tiling.New(h)
		if err != nil {
			t.Fatal(err)
		}
		return pi.Step(tr.TileOf(jMax))
	}
	got := step(app.Rect.H(x, y, z)) - step(app.NonRect[0].H(x, y, z))
	if want := int64((T + N) / (2 * x)); got != want {
		t.Errorf("t_r - t_nr = %d, want (T+I)/2x = %d", got, want)
	}
	// And the execution-model direction: nr pipelines strictly shorter.
	tsR := analyzed(t, app, app.Rect.H(x, y, z))
	tsN := analyzed(t, app, app.NonRect[0].H(x, y, z))
	dR, err := distrib.New(tsR, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	dN, err := distrib.New(tsN, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	if PipelinedLength(dN) >= PipelinedLength(dR) {
		t.Error("non-rect Jacobi pipeline should be shorter")
	}
}

// TestLengthMatchesSimulatorSteps: the simulator's Steps field is computed
// independently (wavefront min/max during event processing) and must agree
// with the schedule length.
func TestLengthMatchesSimulatorSteps(t *testing.T) {
	app, err := apps.SOR(12, 24)
	if err != nil {
		t.Fatal(err)
	}
	ts := analyzed(t, app, app.NonRect[0].H(3, 9, 6))
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simnet.Simulate(d, simnet.FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if got := Uniform(3).Length(ts); got != res.Steps {
		t.Errorf("schedule Length %d != simulator Steps %d", got, res.Steps)
	}
}

// TestLengthFromExtremes reproduces the paper's j_max analysis for SOR:
// the closed form over (M, M+N, 2M+N) agrees with the exhaustive scan.
func TestLengthFromExtremes(t *testing.T) {
	const M, N = 24, 48
	app, err := apps.SOR(M, N)
	if err != nil {
		t.Fatal(err)
	}
	ts := analyzed(t, app, app.NonRect[0].H(6, 9, 8))
	pi := Uniform(3)
	jMin := ilin.NewVec(1, 2, 3)       // first skewed iteration
	jMax := ilin.NewVec(M, M+N, 2*M+N) // the paper's j_max
	closed := LengthFromExtremes(ts.T, jMin, jMax, pi)
	if scan := pi.Length(ts); closed != scan {
		t.Errorf("closed form %d != scanned %d", closed, scan)
	}
}

// TestPredictTracksSimulation: the analytic per-step model should land
// within 2× of the simulated makespan for a compute-dominated config, and
// the predicted rect/nr ratio should preserve who wins.
func TestPredictTracksSimulation(t *testing.T) {
	app, err := apps.SOR(24, 48)
	if err != nil {
		t.Fatal(err)
	}
	cm := CostModel{Params: simnet.FastEthernetPIII()}
	makespans := map[string]struct{ est, sim float64 }{}
	for _, f := range []apps.TilingFamily{app.Rect, app.NonRect[0]} {
		ts := analyzed(t, app, f.H(6, 9, 8))
		d, err := distrib.New(ts, app.MapDim)
		if err != nil {
			t.Fatal(err)
		}
		est, sim, ratio, err := cm.Compare(d)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: model/sim ratio %.2f out of band (est %.4f, sim %.4f)", f.Name, ratio, est.Total, sim.Makespan)
		}
		makespans[f.Name] = struct{ est, sim float64 }{est.Total, sim.Makespan}
	}
	if makespans["nr"].est >= makespans["rect"].est {
		t.Error("model should predict nr < rect")
	}
	if makespans["nr"].sim >= makespans["rect"].sim {
		t.Error("simulation should have nr < rect")
	}
}

func TestPredictErrors(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts := analyzed(t, app, app.Rect.H(2, 6, 6))
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	bad := CostModel{Params: simnet.Params{}}
	if _, err := bad.Predict(d); err == nil {
		t.Error("invalid params not rejected")
	}
}

func TestLengthEmpty(t *testing.T) {
	if got := (Linear{Pi: ilin.NewVec(1)}).Step(ilin.NewVec(5)); got != 5 {
		t.Errorf("Step = %d", got)
	}
}
