package simnet_test

import (
	"strings"
	"testing"
	"time"

	"tilespace/internal/apps"
	"tilespace/internal/mpi"
	"tilespace/internal/simnet"
)

// A fault-free FaultModel must change nothing: the fault path is a strict
// superset of the engine and the zero model must collapse to Simulate.
func TestSimulateFaultsNilPlanMatchesSimulate(t *testing.T) {
	app, err := apps.SOR(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(3, 6, 7))
	par := simnet.FastEthernetPIII()
	want, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	got, err := simnet.SimulateFaults(d, par, simnet.FaultModel{})
	if err != nil {
		t.Fatal(err)
	}
	if *want != *got {
		t.Errorf("empty fault model perturbed the simulation:\nwant %+v\ngot  %+v", want, got)
	}
}

// Each fault class must strictly lengthen the makespan and leave the
// logical work (points, messages, bytes) untouched — faults cost time,
// never results.
func TestSimulateFaultsDegradeMakespan(t *testing.T) {
	app, err := apps.SOR(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(3, 6, 7))
	for _, overlap := range []bool{false, true} {
		par := simnet.FastEthernetPIII()
		par.Overlap = overlap
		base, err := simnet.Simulate(d, par)
		if err != nil {
			t.Fatal(err)
		}
		crashRank := d.NumProcs() / 2
		for _, tc := range []struct {
			name string
			plan *mpi.FaultPlan
		}{
			{"slow-rank", &mpi.FaultPlan{Slowdown: map[int]float64{crashRank: 4}}},
			{"delayed-link", &mpi.FaultPlan{Links: map[mpi.Link]mpi.LinkFault{
				{Src: 0, Dst: 1}: {Delay: time.Second, Jitter: time.Second},
			}}},
			{"retry-storm", &mpi.FaultPlan{Seed: 7, Sends: &mpi.SendFaults{
				Rate: 0.5, MaxRetries: 4, Backoff: 500 * time.Millisecond,
			}}},
			{"crash-restart", &mpi.FaultPlan{
				Crash:        map[int]int64{crashRank: d.ChainLen[crashRank] - 1},
				RestartDelay: time.Second,
			}},
		} {
			t.Run(tc.name, func(t *testing.T) {
				got, err := simnet.SimulateFaults(d, par, simnet.FaultModel{
					Plan: tc.plan, CheckpointEvery: 2, DurScale: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Makespan <= base.Makespan {
					t.Errorf("overlap=%v: makespan %v not degraded from %v", overlap, got.Makespan, base.Makespan)
				}
				if got.Points != base.Points || got.Messages != base.Messages || got.BytesSent != base.BytesSent {
					t.Errorf("overlap=%v: faults changed the logical work: %+v vs %+v", overlap, got, base)
				}
			})
		}
	}
}

// DurScale divides the plan's wall-clock durations into model seconds: the
// same plan at 10× scale must inject one tenth of the model-time penalty.
func TestSimulateFaultsDurScale(t *testing.T) {
	app, err := apps.SOR(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(3, 6, 7))
	par := simnet.FastEthernetPIII()
	base, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	plan := &mpi.FaultPlan{Links: map[mpi.Link]mpi.LinkFault{{Src: 0, Dst: 1}: {Delay: time.Second}}}
	at1, err := simnet.SimulateFaults(d, par, simnet.FaultModel{Plan: plan, DurScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	at10, err := simnet.SimulateFaults(d, par, simnet.FaultModel{Plan: plan, DurScale: 10})
	if err != nil {
		t.Fatal(err)
	}
	d1, d10 := at1.Makespan-base.Makespan, at10.Makespan-base.Makespan
	if d1 <= 0 || d10 <= 0 {
		t.Fatalf("expected degradation at both scales, got %v and %v", d1, d10)
	}
	// The delayed link sits on the critical path here, so the penalties
	// compose additively and the ratio is exact.
	if ratio := d1 / d10; ratio < 9.99 || ratio > 10.01 {
		t.Errorf("degradation ratio %v, want 10 (DurScale must divide plan durations)", ratio)
	}
}

// Deeper checkpoints mean longer re-execution after a crash: Every=chain
// must predict a makespan no shorter than Every=1, and a late crash with
// coarse snapshots must charge roughly the whole chain again.
func TestSimulateFaultsCheckpointDepth(t *testing.T) {
	app, err := apps.SOR(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(3, 6, 7))
	par := simnet.FastEthernetPIII()
	// Compute-bound costs: the crashed rank has no idle slack to hide the
	// re-execution charge in, so it must show up in the makespan.
	par.IterTime = 1e-3
	crashRank := d.NumProcs() / 2
	plan := &mpi.FaultPlan{Crash: map[int]int64{crashRank: d.ChainLen[crashRank] - 1}}
	fine, err := simnet.SimulateFaults(d, par, simnet.FaultModel{Plan: plan, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := simnet.SimulateFaults(d, par, simnet.FaultModel{Plan: plan, CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Makespan <= fine.Makespan {
		t.Errorf("coarse checkpoint makespan %v not above fine %v", coarse.Makespan, fine.Makespan)
	}
}

// The traced variant must mark the crash and restart instants so the
// predicted Gantt lines up with the measured one.
func TestSimulateFaultsTraced(t *testing.T) {
	app, err := apps.SOR(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(3, 6, 7))
	par := simnet.FastEthernetPIII()
	crashRank := d.NumProcs() / 2
	tr, err := simnet.SimulateFaultsTraced(d, par, simnet.FaultModel{
		Plan: &mpi.FaultPlan{
			Crash:        map[int]int64{crashRank: d.ChainLen[crashRank] / 2},
			RestartDelay: 100 * time.Millisecond,
		},
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var crash, restart int
	for _, e := range tr.Events {
		switch e.Kind {
		case "crash":
			crash++
			if e.Rank != crashRank {
				t.Errorf("crash on rank %d, want %d", e.Rank, crashRank)
			}
		case "restart":
			restart++
		}
	}
	if crash != 1 || restart != 1 {
		t.Fatalf("trace has %d crash / %d restart events, want 1 / 1", crash, restart)
	}
	if g := tr.Gantt(60); !strings.Contains(g, "!") {
		t.Errorf("gantt does not mark the fault:\n%s", g)
	}
	if _, err := tr.TraceEventJSON(); err != nil {
		t.Errorf("chrome export failed: %v", err)
	}
}
