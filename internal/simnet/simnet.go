// Package simnet is a discrete-event simulator for executing a compiled
// tile schedule on a model cluster: per-node compute rates and an
// α + size/β network cost, calibrated by default to the paper's testbed
// (16 Pentium-III/500 nodes on switched FastEthernet, MPI over TCP).
//
// The simulator runs the exact §3.2 protocol the real executor runs — one
// message per (predecessor tile, processor direction) delivered at the
// minsucc tile, pack regions j'_k ≥ cc_k — but advances virtual clocks
// instead of touching data. Because every figure in the paper's evaluation
// is a speedup measurement whose shape is governed by the schedule length
// Π·⌊H·j_max⌋ and the per-step compute/communication costs, the simulator
// reproduces the rectangular-vs-non-rectangular comparisons without the
// authors' hardware.
package simnet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
)

// Params is the cluster cost model.
type Params struct {
	// IterTime is the seconds of CPU per iteration point (per lattice
	// point of the nest, independent of Width — kernels stream all their
	// arrays in one pass).
	IterTime float64
	// ValueBytes is the wire size of one value (8 for float64).
	ValueBytes int
	// Width is the number of values per iteration point (ADI carries 2).
	Width int
	// Latency is the one-way network latency per message (α).
	Latency float64
	// Bandwidth is the sustained network bandwidth in bytes/second (β).
	Bandwidth float64
	// SendOverhead/RecvOverhead are per-message CPU costs (MPI stack,
	// system calls).
	SendOverhead float64
	RecvOverhead float64
	// PackTime is the CPU cost per value for packing or unpacking.
	PackTime float64
	// Overlap enables the computation–communication overlapping scheme of
	// the paper's future-work reference [8]: the sender's CPU only pays
	// SendOverhead and the transfer itself proceeds on the NIC in the
	// background.
	Overlap bool
	// Dynamic models the executor's hybrid static/dynamic scheduler
	// (exec.RunOptions.Dynamic): sends are always asynchronous, so the
	// model charges them exactly like Overlap — pack + SendOverhead on
	// the sender's CPU, transfer and fault perturbations on its NIC.
	// Eager message intake shifts unpack CPU earlier but leaves per-tile
	// totals unchanged, so in this cost model the dynamic arm's makespan
	// equals the overlap arm's; the flag exists so ablation code can ask
	// for a prediction per schedule mode by name.
	Dynamic bool
}

// FastEthernetPIII returns the cost model of the paper's testbed: 500 MHz
// Pentium III nodes (≈100 ns per stencil iteration at -O2) on switched
// FastEthernet with TCP MPI (≈70 µs one-way latency, ≈11 MB/s sustained).
func FastEthernetPIII() Params {
	return Params{
		IterTime:     100e-9,
		ValueBytes:   8,
		Width:        1,
		Latency:      70e-6,
		Bandwidth:    11e6,
		SendOverhead: 30e-6,
		RecvOverhead: 30e-6,
		PackTime:     20e-9,
	}
}

// NetOptions translates the cost model into the runtime's injected
// wire-cost options, so the same parameters drive both the simulator and
// the real executor (mpi.NewWorldOpts / exec.RunOptions.Net): each message
// costs Latency + SendOverhead plus (ValueBytes/Bandwidth + PackTime) per
// value. scale multiplies the modelled durations — the paper's µs-scale
// costs sit below OS timer resolution, so measurements scale them up.
// Whether the cost lands on the sending CPU (blocking) or the background
// NIC (Isend) is the runtime's overlap decision, mirroring the Overlap
// branch of Simulate.
func (p Params) NetOptions(scale float64) mpi.Options {
	perMsg := (p.Latency + p.SendOverhead) * scale
	perVal := (float64(p.ValueBytes)/p.Bandwidth + p.PackTime) * scale
	return mpi.Options{
		LinkLatency: time.Duration(perMsg * float64(time.Second)),
		PerValue:    time.Duration(perVal * float64(time.Second)),
	}
}

// Validate checks the parameters for usability.
func (p Params) Validate() error {
	if p.IterTime <= 0 || p.Bandwidth <= 0 || p.ValueBytes <= 0 || p.Width <= 0 {
		return fmt.Errorf("simnet: IterTime, Bandwidth, ValueBytes and Width must be positive")
	}
	if p.Latency < 0 || p.SendOverhead < 0 || p.RecvOverhead < 0 || p.PackTime < 0 {
		return fmt.Errorf("simnet: negative cost parameter")
	}
	return nil
}

// Result reports one simulated execution.
type Result struct {
	Makespan float64 // parallel completion time (seconds)
	SeqTime  float64 // Points × IterTime: the single-node baseline
	Speedup  float64 // SeqTime / Makespan

	Procs     int
	Tiles     int64
	Points    int64
	Messages  int64
	BytesSent int64

	// Steps is the linear-schedule length Π·(j^S_max − j^S_min) + 1 — the
	// quantity the paper's t_r/t_nr analysis predicts; non-rectangular
	// cone tilings shorten it.
	Steps int64
	// Utilization is total busy CPU time over Procs × Makespan.
	Utilization float64
}

type msgKey struct {
	tile string
	dm   string
}

// Simulate runs the tile schedule of a distribution under the cost model
// and returns the timing result.
func Simulate(d *distrib.Distribution, par Params) (*Result, error) {
	return simulate(d, par, nil)
}

// simulate is the engine; onEvent, when non-nil, receives one Event per
// tile (used by SimulateTraced).
func simulate(d *distrib.Distribution, par Params, onEvent func(Event)) (*Result, error) {
	return simulateFaults(d, par, nil, onEvent)
}

// simulateFaults is simulate under a fault model (nil fm = fault-free);
// see fault.go for what each fault class does to the clocks.
func simulateFaults(d *distrib.Distribution, par Params, fm *FaultModel, onEvent func(Event)) (*Result, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	var fs *faultState
	if fm != nil {
		if err := fm.Plan.Validate(); err != nil {
			return nil, err
		}
		fs = newFaultState(fm, d.NumProcs())
	}
	type tileRef struct {
		rank int
		t    int64
		wave int64
	}
	var tiles []tileRef
	for r := 0; r < d.NumProcs(); r++ {
		for t := int64(0); t < d.ChainLen[r]; t++ {
			jS := d.TileAt(r, t)
			var wave int64
			for _, x := range jS {
				wave += x
			}
			tiles = append(tiles, tileRef{rank: r, t: t, wave: wave})
		}
	}
	// Π = [1…1] wavefront order is topological for D^S ≥ 0, and it keeps
	// each chain in order (chain tiles differ in j^S_m only).
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i].wave != tiles[j].wave {
			return tiles[i].wave < tiles[j].wave
		}
		if tiles[i].rank != tiles[j].rank {
			return tiles[i].rank < tiles[j].rank
		}
		return tiles[i].t < tiles[j].t
	})

	res := &Result{Procs: d.NumProcs(), Tiles: int64(len(tiles))}
	procClock := make([]float64, d.NumProcs())
	nicFree := make([]float64, d.NumProcs())
	busy := make([]float64, d.NumProcs())
	arrivals := map[msgKey]float64{}

	counts := newCountCache(d)
	minWave, maxWave := int64(math.MaxInt64), int64(math.MinInt64)

	for _, tr := range tiles {
		if tr.wave < minWave {
			minWave = tr.wave
		}
		if tr.wave > maxWave {
			maxWave = tr.wave
		}
		tile := d.TileAt(tr.rank, tr.t)
		now := procClock[tr.rank]

		// CRASH: the runtime kills the rank at the top of tile k's loop
		// iteration, so the penalty lands before this tile's receive. The
		// downtime (restart delay) is idle; the re-execution of the tiles
		// since the last snapshot is busy CPU.
		if fs != nil && !fs.crashed[tr.rank] && fm.Plan.CrashTile(tr.rank) == tr.t {
			fs.crashed[tr.rank] = true
			if onEvent != nil {
				onEvent(Event{Rank: tr.rank, Tile: fmt.Sprintf("slot=%d", tr.t), Kind: "crash",
					Start: now, RecvDone: now, CompDone: now, End: now})
			}
			now += fm.Plan.RestartDelay.Seconds() / fm.DurScale
			if onEvent != nil {
				onEvent(Event{Rank: tr.rank, Tile: fmt.Sprintf("slot=%d", tr.t), Kind: "restart",
					Start: now, RecvDone: now, CompDone: now, End: now})
			}
			now += fs.reExec[tr.rank]
			busy[tr.rank] += fs.reExec[tr.rank]
		}

		// redo accumulates what re-executing this tile after a later crash
		// would cost: unpack and pack repeat, the wire and the MPI stack
		// overheads do not (receives replay locally, delivered sends skip).
		var redo float64
		ev := Event{Rank: tr.rank, Tile: tile.String(), Start: now}

		// RECEIVE: wait for each due message, then pay unpack CPU.
		for _, dS := range d.TS.DS {
			dm := d.DmOf(dS)
			if dm.IsZero() {
				continue
			}
			pred := tile.Sub(dS)
			if !d.TS.ValidTile(pred) {
				continue
			}
			if ms, ok := d.MinSucc(pred, dm); !ok || !ms.Equal(tile) {
				continue
			}
			n := counts.region(pred, dm)
			if n == 0 {
				continue
			}
			key := msgKey{pred.String(), dm.String()}
			arr, ok := arrivals[key]
			if !ok {
				return nil, fmt.Errorf("simnet: message for tile %v from %v not yet sent — schedule order broken", tile, pred)
			}
			delete(arrivals, key)
			if arr > now {
				ev.Waited += arr - now
				now = arr // idle wait: not busy time
			}
			unpack := float64(n*int64(par.Width)) * par.PackTime
			cpu := par.RecvOverhead + unpack
			now += cpu
			busy[tr.rank] += cpu
			redo += unpack
		}

		ev.RecvDone = now

		// COMPUTE.
		pts := counts.points(tile)
		res.Points += pts
		comp := float64(pts) * par.IterTime
		if fs != nil {
			comp *= fm.Plan.SlowdownOf(tr.rank)
		}
		now += comp
		busy[tr.rank] += comp
		redo += comp
		ev.CompDone = now

		// SEND: one message per processor direction with a valid successor.
		for _, dm := range d.DM {
			if !d.HasSuccessor(tile, dm) {
				continue
			}
			n := counts.region(tile, dm)
			if n == 0 {
				continue
			}
			bytes := float64(n*int64(par.Width)) * float64(par.ValueBytes)
			pack := float64(n*int64(par.Width)) * par.PackTime
			// Injected link delay, jitter and retry backoffs hit this
			// message before transmission, paid where the runtime pays them:
			// the sender's CPU in blocking mode, its NIC in overlap mode.
			var pert float64
			if fs != nil {
				if dst, ok := d.Rank(d.Pids[tr.rank].Add(dm)); ok {
					pert = fs.sendPerturbation(tr.rank, dst)
				}
			}
			var arrive float64
			if par.Overlap || par.Dynamic {
				cpu := pack + par.SendOverhead
				now += cpu
				busy[tr.rank] += cpu
				start := math.Max(nicFree[tr.rank], now)
				nicFree[tr.rank] = start + pert + bytes/par.Bandwidth
				arrive = nicFree[tr.rank] + par.Latency
			} else {
				cpu := pack + par.SendOverhead + pert + bytes/par.Bandwidth
				now += cpu
				busy[tr.rank] += cpu
				arrive = now + par.Latency
			}
			arrivals[msgKey{tile.String(), dm.String()}] = arrive
			res.Messages++
			res.BytesSent += int64(bytes)
			redo += pack
		}

		procClock[tr.rank] = now
		ev.End = now
		if onEvent != nil {
			onEvent(ev)
		}
		if fs != nil {
			// Snapshot boundary: after committing tile t with (t+1) a
			// multiple of Every, a crash no longer re-executes anything up
			// to and including t.
			if (tr.t+1)%fm.CheckpointEvery == 0 {
				fs.reExec[tr.rank] = 0
			} else {
				fs.reExec[tr.rank] += redo
			}
		}
	}

	for _, c := range procClock {
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	var totalBusy float64
	for _, b := range busy {
		totalBusy += b
	}
	res.SeqTime = float64(res.Points) * par.IterTime
	if res.Makespan > 0 {
		res.Speedup = res.SeqTime / res.Makespan
		res.Utilization = totalBusy / (float64(res.Procs) * res.Makespan)
	}
	if len(tiles) > 0 {
		res.Steps = maxWave - minWave + 1
	}
	return res, nil
}

// countCache memoizes per-tile point counts and communication-region
// sizes, with constant-time answers for tiles fully inside the space.
type countCache struct {
	d          *distrib.Distribution
	full       map[string]bool
	fullRegion map[string]int64
	pts        map[string]int64
	regions    map[msgKey]int64
}

func newCountCache(d *distrib.Distribution) *countCache {
	return &countCache{
		d: d, full: map[string]bool{},
		fullRegion: map[string]int64{}, pts: map[string]int64{}, regions: map[msgKey]int64{},
	}
}

func (c *countCache) fullInside(jS ilin.Vec) bool {
	key := jS.String()
	if v, ok := c.full[key]; ok {
		return v
	}
	v := c.d.TS.TileFullyInside(jS)
	c.full[key] = v
	return v
}

func (c *countCache) points(jS ilin.Vec) int64 {
	if c.fullInside(jS) {
		return c.d.TS.T.TileSize
	}
	key := jS.String()
	if v, ok := c.pts[key]; ok {
		return v
	}
	v := c.d.TS.CountTilePoints(jS, nil)
	c.pts[key] = v
	return v
}

func (c *countCache) region(jS ilin.Vec, dm ilin.Vec) int64 {
	if c.fullInside(jS) {
		key := dm.String()
		if v, ok := c.fullRegion[key]; ok {
			return v
		}
		v := c.d.FullTileCommCount(dm)
		c.fullRegion[key] = v
		return v
	}
	k := msgKey{jS.String(), dm.String()}
	if v, ok := c.regions[k]; ok {
		return v
	}
	v := c.d.CommRegionCount(jS, dm)
	c.regions[k] = v
	return v
}
