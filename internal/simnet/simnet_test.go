package simnet_test

import (
	"strings"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

func distFor(t *testing.T, app *apps.App, h *ilin.RatMat) *distrib.Distribution {
	t.Helper()
	ts, err := tiling.Analyze(app.Nest, h)
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimulateBasics(t *testing.T) {
	app, err := apps.SOR(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(3, 6, 7))
	par := simnet.FastEthernetPIII()
	res, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	wantPts, _ := app.Nest.Size()
	if res.Points != wantPts {
		t.Errorf("Points = %d, want %d", res.Points, wantPts)
	}
	if res.Procs != d.NumProcs() {
		t.Errorf("Procs = %d", res.Procs)
	}
	if res.Speedup <= 0 || res.Speedup > float64(res.Procs) {
		t.Errorf("Speedup = %v with %d procs", res.Speedup, res.Procs)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("Utilization = %v", res.Utilization)
	}
	if res.Messages == 0 || res.BytesSent == 0 {
		t.Error("expected some traffic")
	}
	if res.Steps <= 0 {
		t.Errorf("Steps = %d", res.Steps)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	app, err := apps.ADI(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.NonRect[2].H(2, 4, 4))
	par := simnet.FastEthernetPIII()
	par.Width = 2
	r1, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *r2 {
		t.Errorf("non-deterministic simulation: %+v vs %+v", r1, r2)
	}
}

// TestSingleProcessorSpeedupIsOne: with one processor there is no
// communication and makespan equals the sequential time exactly.
func TestSingleProcessorSpeedupIsOne(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{19, 3},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(4, 4) // 5×1 tiles mapped along dim 0
	ts, err := tiling.Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumProcs() != 1 {
		t.Fatalf("procs = %d", d.NumProcs())
	}
	res, err := simnet.Simulate(d, simnet.FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup != 1 || res.Messages != 0 {
		t.Errorf("Speedup = %v, Messages = %d; want 1 and 0", res.Speedup, res.Messages)
	}
}

// TestNonRectBeatsRect is the paper's headline result on a small SOR
// configuration: with equal tile size, communication volume and processor
// count, the cone-derived tiling finishes earlier (t_nr = t_r − M/z).
func TestNonRectBeatsRect(t *testing.T) {
	app, err := apps.SOR(12, 24)
	if err != nil {
		t.Fatal(err)
	}
	const x, y, z = 3, 9, 8
	par := simnet.FastEthernetPIII()
	rect, err := simnet.Simulate(distFor(t, app, app.Rect.H(x, y, z)), par)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := simnet.Simulate(distFor(t, app, app.NonRect[0].H(x, y, z)), par)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Procs != rect.Procs {
		t.Fatalf("processor counts differ: %d vs %d", nr.Procs, rect.Procs)
	}
	if nr.Points != rect.Points {
		t.Fatalf("points differ: %d vs %d", nr.Points, rect.Points)
	}
	if nr.Steps >= rect.Steps {
		t.Errorf("non-rect steps %d should be < rect steps %d", nr.Steps, rect.Steps)
	}
	if nr.Makespan >= rect.Makespan {
		t.Errorf("non-rect makespan %v should beat rect %v", nr.Makespan, rect.Makespan)
	}
}

// TestADIOrdering reproduces §4.3's t_nr3 < t_nr1 = t_nr2 < t_r with equal
// y and z factors.
func TestADIOrdering(t *testing.T) {
	app, err := apps.ADI(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	const x, y, z = 4, 4, 4
	par := simnet.FastEthernetPIII()
	par.Width = 2
	times := map[string]float64{}
	families := append([]apps.TilingFamily{app.Rect}, app.NonRect...)
	for _, f := range families {
		res, err := simnet.Simulate(distFor(t, app, f.H(x, y, z)), par)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		times[f.Name] = res.Makespan
	}
	if !(times["nr3"] < times["nr1"] && times["nr3"] < times["nr2"]) {
		t.Errorf("nr3 should be fastest: %v", times)
	}
	if !(times["nr1"] < times["rect"] && times["nr2"] < times["rect"]) {
		t.Errorf("nr1/nr2 should beat rect: %v", times)
	}
}

// TestOverlapAtLeastAsFast: the overlapping scheme of [8] can only help.
func TestOverlapAtLeastAsFast(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(2, 8, 4))
	par := simnet.FastEthernetPIII()
	blocking, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	par.Overlap = true
	overlapped, err := simnet.Simulate(d, par)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Makespan > blocking.Makespan {
		t.Errorf("overlap %v slower than blocking %v", overlapped.Makespan, blocking.Makespan)
	}
}

// TestStepsMatchTheory: for a rectangular tiling of a box, the schedule
// length is Σ_k (⌈size_k/tile_k⌉ − 1) + 1.
func TestStepsMatchTheory(t *testing.T) {
	nest := loopnest.MustBox([]string{"i", "j"}, []int64{0, 0}, []int64{23, 15},
		ilin.MatFromRows([]int64{1, 0}, []int64{0, 1}))
	tr, _ := tiling.Rectangular(4, 4) // 6×4 tiles
	ts, err := tiling.Analyze(nest, tr.H)
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simnet.Simulate(d, simnet.FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(5 + 3 + 1); res.Steps != want {
		t.Errorf("Steps = %d, want %d", res.Steps, want)
	}
}

func TestParamValidation(t *testing.T) {
	app, err := apps.SOR(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.Rect.H(2, 4, 4))
	bad := simnet.FastEthernetPIII()
	bad.IterTime = 0
	if _, err := simnet.Simulate(d, bad); err == nil {
		t.Error("zero IterTime not rejected")
	}
	bad = simnet.FastEthernetPIII()
	bad.Latency = -1
	if _, err := simnet.Simulate(d, bad); err == nil {
		t.Error("negative latency not rejected")
	}
	bad = simnet.FastEthernetPIII()
	bad.Width = 0
	if _, err := simnet.Simulate(d, bad); err == nil {
		t.Error("zero width not rejected")
	}
}

// TestLargerTilesFewerMessages: communication aggregation sanity.
func TestLargerTilesFewerMessages(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	par := simnet.FastEthernetPIII()
	small, err := simnet.Simulate(distFor(t, app, app.Rect.H(2, 8, 2)), par)
	if err != nil {
		t.Fatal(err)
	}
	large, err := simnet.Simulate(distFor(t, app, app.Rect.H(2, 8, 8)), par)
	if err != nil {
		t.Fatal(err)
	}
	if large.Messages >= small.Messages {
		t.Errorf("larger tiles should send fewer messages: %d vs %d", large.Messages, small.Messages)
	}
}

func TestSimulateTraced(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, app, app.NonRect[0].H(2, 8, 4))
	tr, err := simnet.SimulateTraced(d, simnet.FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(tr.Events)) != tr.Result.Tiles {
		t.Fatalf("events = %d, tiles = %d", len(tr.Events), tr.Result.Tiles)
	}
	var lastEnd float64
	for _, e := range tr.Events {
		if !(e.Start <= e.RecvDone && e.RecvDone <= e.CompDone && e.CompDone <= e.End) {
			t.Fatalf("non-monotone event %+v", e)
		}
		if e.Waited < 0 {
			t.Fatalf("negative wait %+v", e)
		}
		if e.End > lastEnd {
			lastEnd = e.End
		}
	}
	if lastEnd != tr.Result.Makespan {
		t.Errorf("last event end %v != makespan %v", lastEnd, tr.Result.Makespan)
	}
	g := tr.Gantt(60)
	if !strings.Contains(g, "rank") || !strings.Contains(g, "C") {
		t.Errorf("gantt rendering:\n%s", g)
	}
	if _, idle := tr.CriticalRank(); idle < 0 || idle > 1 {
		t.Errorf("idle fraction %v out of range", idle)
	}
	if len(tr.PerRankIdle()) != d.NumProcs() {
		t.Error("PerRankIdle length mismatch")
	}
	// The traced run must not perturb the untraced result.
	plain, err := simnet.Simulate(d, simnet.FastEthernetPIII())
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *tr.Result {
		t.Error("traced and plain results differ")
	}
}

func TestGanttEmptyAndTiny(t *testing.T) {
	tr := &simnet.Trace{Result: &simnet.Result{}}
	if !strings.Contains(tr.Gantt(5), "empty") {
		t.Error("empty trace rendering")
	}
}
