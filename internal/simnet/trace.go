package simnet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
)

// Event is one tile's simulated execution record.
type Event struct {
	Rank     int
	Tile     string
	Start    float64 // when the processor turned to this tile
	RecvDone float64 // after waits + unpack
	CompDone float64 // after the kernel sweep
	End      float64 // after sends
	Waited   float64 // idle time spent blocked on receives
	// Kind distinguishes fault markers from tile records: "" is a normal
	// tile, "crash" and "restart" are instants injected by the fault layer
	// (simulated or measured). Fault events carry the chain slot in Tile
	// and equal Start/End.
	Kind string
}

// Trace is the per-tile timeline of a simulated run.
type Trace struct {
	Result *Result
	Events []Event
}

// SimulateTraced runs Simulate while recording one event per tile.
func SimulateTraced(d *distrib.Distribution, par Params) (*Trace, error) {
	tr := &Trace{}
	res, err := simulate(d, par, func(e Event) {
		tr.Events = append(tr.Events, e)
	})
	if err != nil {
		return nil, err
	}
	tr.Result = res
	return tr, nil
}

// Gantt renders a fixed-width text timeline, one row per processor:
// '.' idle, 'r' receiving/waiting, 'C' computing, 's' sending. Useful for
// seeing the pipeline fill/drain difference between tile shapes.
func (tr *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	if len(tr.Events) == 0 {
		return "(empty trace)\n"
	}
	makespan := tr.Result.Makespan
	if makespan <= 0 {
		return "(zero makespan)\n"
	}
	ranks := map[int][]Event{}
	maxRank := 0
	for _, e := range tr.Events {
		ranks[e.Rank] = append(ranks[e.Rank], e)
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	// Segment starts floor into [0, width-1]; segment ends ceil into
	// [0, width], so an event ending exactly at Makespan paints the last
	// cell instead of stopping one short (paint's bounds check keeps an
	// end column of width in range).
	col := func(t float64) int {
		c := int(t / makespan * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	colEnd := func(t float64) int {
		c := int(math.Ceil(t / makespan * float64(width)))
		if c > width {
			c = width
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt (%d cols = %.4fs, '.' idle  r recv  C compute  s send  ! fault)\n", width, makespan)
	for r := 0; r <= maxRank; r++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		evs := ranks[r]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for _, e := range evs {
			if e.Kind != "" {
				continue // fault markers paint after the phases, below
			}
			paint(row, col(e.Start), colEnd(e.RecvDone), 'r')
			paint(row, col(e.RecvDone), colEnd(e.CompDone), 'C')
			paint(row, col(e.CompDone), colEnd(e.End), 's')
		}
		for _, e := range evs {
			if e.Kind != "" {
				row[col(e.Start)] = '!'
			}
		}
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, row)
	}
	return b.String()
}

func paint(row []byte, from, to int, c byte) {
	if to <= from {
		to = from + 1
	}
	for i := from; i < to && i < len(row); i++ {
		row[i] = c
	}
}

// CriticalRank returns the rank that finishes last and its idle fraction —
// where tuning effort should go.
func (tr *Trace) CriticalRank() (rank int, idleFrac float64) {
	var lastEnd float64
	byRank := map[int]struct{ end, waited float64 }{}
	for _, e := range tr.Events {
		s := byRank[e.Rank]
		if e.End > s.end {
			s.end = e.End
		}
		s.waited += e.Waited
		byRank[e.Rank] = s
		if e.End > lastEnd {
			lastEnd, rank = e.End, e.Rank
		}
	}
	if s, ok := byRank[rank]; ok && s.end > 0 {
		idleFrac = s.waited / s.end
	}
	return rank, idleFrac
}

// PhaseSplit is one rank's share of the makespan by phase, all expressed
// as fractions of Makespan: Wait (blocked on receives), Recv (unpack work
// outside the wait), Compute, Send, and Idle (the remainder — pipeline
// fill before the first tile and drain after the last).
type PhaseSplit struct {
	Rank    int
	Wait    float64
	Recv    float64
	Compute float64
	Send    float64
	Idle    float64
}

// PhaseFractions splits each rank's timeline into phase fractions of the
// makespan. It works identically for simulated and measured traces, which
// is what makes the cost model directly comparable to the real runtime.
func (tr *Trace) PhaseFractions() []PhaseSplit {
	mk := 0.0
	if tr.Result != nil {
		mk = tr.Result.Makespan
	}
	maxRank := 0
	for _, e := range tr.Events {
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
		if e.End > mk {
			mk = e.End
		}
	}
	out := make([]PhaseSplit, maxRank+1)
	for r := range out {
		out[r].Rank = r
	}
	if mk <= 0 {
		return out
	}
	for _, e := range tr.Events {
		s := &out[e.Rank]
		s.Wait += e.Waited / mk
		if un := (e.RecvDone - e.Start - e.Waited) / mk; un > 0 {
			s.Recv += un
		}
		s.Compute += (e.CompDone - e.RecvDone) / mk
		s.Send += (e.End - e.CompDone) / mk
	}
	for r := range out {
		s := &out[r]
		if idle := 1 - s.Wait - s.Recv - s.Compute - s.Send; idle > 0 {
			s.Idle = idle
		}
	}
	return out
}

// ComputeWaitFractions reduces PhaseFractions to the two headline numbers
// of the measured-vs-simulated comparison: the machine-wide fraction of
// processor-time spent computing, and the fraction spent stalled
// (receive-wait plus idle fill/drain).
func (tr *Trace) ComputeWaitFractions() (compute, wait float64) {
	fr := tr.PhaseFractions()
	if len(fr) == 0 {
		return 0, 0
	}
	for _, s := range fr {
		compute += s.Compute
		wait += s.Wait + s.Idle
	}
	n := float64(len(fr))
	return compute / n, wait / n
}

// PerRankIdle sums each rank's receive-wait time.
func (tr *Trace) PerRankIdle() ilin.Vec {
	max := 0
	for _, e := range tr.Events {
		if e.Rank > max {
			max = e.Rank
		}
	}
	// scaled to microseconds so the integer vector is readable
	out := make(ilin.Vec, max+1)
	for _, e := range tr.Events {
		out[e.Rank] += int64(e.Waited * 1e6)
	}
	return out
}
