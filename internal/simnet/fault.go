package simnet

import (
	"tilespace/internal/distrib"
	"tilespace/internal/mpi"
)

// Fault modeling: the simulator advances the same cost model under the
// same mpi.FaultPlan the runtime injects, so bench can compare predicted
// degradation against measured degradation for straggler, slow-link,
// retry-storm and crash-restart scenarios. The two layers share the
// plan's decision methods — LinkExtraDelay and SendBackoffs keyed by the
// same per-link message sequence numbers (both transmit each link's
// messages in issue order) — so prediction and measurement perturb
// exactly the same messages by exactly the same amounts.
//
// What each fault class does to the model:
//
//   - Slowdown[r] multiplies rank r's compute time, as the runtime
//     multiplies its injected PointDelay.
//   - Link delay/jitter and retry backoffs are paid where the runtime
//     pays them: on the sender's CPU in blocking mode, on the sender's
//     NIC in overlap mode, and they push the message's arrival out.
//   - Crash[r] = k charges rank r, at tile k, the restart delay plus the
//     re-execution of the tiles since its last checkpoint. Re-execution
//     repeats unpack and compute and repacks messages, but skips the
//     wire: receives replay from the local log and already-delivered
//     sends are skipped — which is exact for blocking mode, where every
//     issued send was delivered before the crash. In overlap mode
//     in-flight messages can drop and be resent, a timing detail the
//     model absorbs into the same re-execution charge (close, not
//     exact).

// FaultModel configures a faulty simulation.
type FaultModel struct {
	// Plan is the same schedule handed to the runtime.
	Plan *mpi.FaultPlan
	// CheckpointEvery mirrors exec.CheckpointOptions.Every — the snapshot
	// period that bounds how far a crashed rank rewinds. Values < 1 mean 1.
	CheckpointEvery int64
	// DurScale converts the plan's wall-clock durations into model
	// seconds. The runtime scales model costs up by the experiment's cost
	// scale (Params.NetOptions(scale)), so the plan's sleeps divide by the
	// same factor to land back in model units. Values <= 0 mean 1.
	DurScale float64
}

// SimulateFaults runs the tile schedule under the fault model.
func SimulateFaults(d *distrib.Distribution, par Params, fm FaultModel) (*Result, error) {
	return simulateFaults(d, par, fm.normalize(), nil)
}

// SimulateFaultsTraced is SimulateFaults recording one Event per tile
// plus crash/restart instants (Event.Kind).
func SimulateFaultsTraced(d *distrib.Distribution, par Params, fm FaultModel) (*Trace, error) {
	tr := &Trace{}
	res, err := simulateFaults(d, par, fm.normalize(), func(e Event) {
		tr.Events = append(tr.Events, e)
	})
	if err != nil {
		return nil, err
	}
	tr.Result = res
	return tr, nil
}

func (fm FaultModel) normalize() *FaultModel {
	if fm.CheckpointEvery < 1 {
		fm.CheckpointEvery = 1
	}
	if fm.DurScale <= 0 {
		fm.DurScale = 1
	}
	return &fm
}

// faultState is the engine's per-run fault bookkeeping.
type faultState struct {
	fm *FaultModel
	// linkSeq numbers each directed link's transmitted messages, mirroring
	// the runtime's World counters: both sides transmit a link's messages
	// in issue order, so equal seq means the same message.
	linkSeq map[[2]int]int64
	// reExec[r] accumulates the CPU a crash at this point would have to
	// repeat: unpack + compute + pack of the tiles committed since rank
	// r's last snapshot. Reset at each snapshot boundary.
	reExec  []float64
	crashed []bool
}

func newFaultState(fm *FaultModel, procs int) *faultState {
	return &faultState{
		fm:      fm,
		linkSeq: map[[2]int]int64{},
		reExec:  make([]float64, procs),
		crashed: make([]bool, procs),
	}
}

// sendPerturbation returns the injected model-seconds the next message on
// src→dst suffers before transmission: fixed delay, jitter share and the
// sum of its retry backoffs, all decided by the shared seeded hash.
func (fs *faultState) sendPerturbation(src, dst int) float64 {
	seq := fs.linkSeq[[2]int{src, dst}]
	fs.linkSeq[[2]int{src, dst}] = seq + 1
	plan := fs.fm.Plan
	extra := plan.LinkExtraDelay(src, dst, seq)
	for _, b := range plan.SendBackoffs(src, dst, seq) {
		extra += b
	}
	return extra.Seconds() / fs.fm.DurScale
}
