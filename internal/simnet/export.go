package simnet

import (
	"encoding/json"
	"strconv"
)

// Chrome/Perfetto trace_event export: load the emitted JSON in
// chrome://tracing or https://ui.perfetto.dev to inspect a timeline —
// simulated or measured — interactively. The format is the "JSON Object
// Format" of the trace_event spec: one process, one thread per rank,
// complete ("X") events for each tile phase, timestamps in microseconds.

type traceEventFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceEventJSON renders the trace in Chrome trace_event JSON. Each rank
// becomes a named thread; each tile contributes up to three complete
// events (recv, compute, send). Zero-duration phases are skipped — the
// viewers render them as zero-width slivers that only add noise.
func (tr *Trace) TraceEventJSON() ([]byte, error) {
	const usec = 1e6
	f := traceEventFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if !seen[e.Rank] {
			seen[e.Rank] = true
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name:  "thread_name",
				Phase: "M",
				Pid:   0,
				Tid:   e.Rank,
				Args:  map[string]any{"name": "rank " + strconv.Itoa(e.Rank)},
			})
		}
		if e.Kind != "" {
			// Fault markers (crash/restart) become instant events, rendered
			// by the viewers as a flagged point on the rank's track.
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name:  e.Kind + " " + e.Tile,
				Phase: "i",
				Ts:    e.Start * usec,
				Pid:   0,
				Tid:   e.Rank,
				Args:  map[string]any{"tile": e.Tile},
			})
			continue
		}
		args := map[string]any{"tile": e.Tile, "waited_us": e.Waited * usec}
		for _, ph := range []struct {
			name       string
			start, end float64
		}{
			{"recv", e.Start, e.RecvDone},
			{"compute", e.RecvDone, e.CompDone},
			{"send", e.CompDone, e.End},
		} {
			if ph.end <= ph.start {
				continue
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name:  ph.name + " " + e.Tile,
				Phase: "X",
				Ts:    ph.start * usec,
				Dur:   (ph.end - ph.start) * usec,
				Pid:   0,
				Tid:   e.Rank,
				Args:  args,
			})
		}
	}
	return json.MarshalIndent(f, "", " ")
}
