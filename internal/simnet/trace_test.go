package simnet

import (
	"encoding/json"
	"strings"
	"testing"
)

// ganttRow extracts the cells of one rank's row from a Gantt rendering.
func ganttRow(t *testing.T, g string, rank int) string {
	t.Helper()
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "rank") {
			i := strings.IndexByte(line, '|')
			j := strings.LastIndexByte(line, '|')
			if i < 0 || j <= i {
				t.Fatalf("malformed gantt row %q", line)
			}
			if rank == 0 {
				return line[i+1 : j]
			}
			rank--
		}
	}
	t.Fatalf("rank row not found in:\n%s", g)
	return ""
}

// The event that defines the makespan ends exactly at Makespan; its send
// segment must paint through the final cell, not stop one short.
func TestGanttPaintsFinalCell(t *testing.T) {
	tr := &Trace{
		Result: &Result{Makespan: 1.0},
		Events: []Event{{Rank: 0, Tile: "[0]", Start: 0, RecvDone: 0.25, CompDone: 0.5, End: 1.0}},
	}
	row := ganttRow(t, tr.Gantt(20), 0)
	if got := row[len(row)-1]; got != 's' {
		t.Fatalf("final cell = %q, want 's' (row %q)", got, row)
	}
	if strings.ContainsRune(row, '.') {
		t.Errorf("full-span event left idle cells: %q", row)
	}
}

// A zero-duration event (all four timestamps equal) must still render one
// cell rather than disappear or index out of range — including when it
// sits exactly at the makespan boundary.
func TestGanttZeroDurationEvent(t *testing.T) {
	tr := &Trace{
		Result: &Result{Makespan: 1.0},
		Events: []Event{
			{Rank: 0, Tile: "[0]", Start: 0.5, RecvDone: 0.5, CompDone: 0.5, End: 0.5},
			{Rank: 1, Tile: "[1]", Start: 1.0, RecvDone: 1.0, CompDone: 1.0, End: 1.0},
		},
	}
	g := tr.Gantt(10)
	if row := ganttRow(t, g, 0); strings.Count(row, ".") != len(row)-1 {
		t.Errorf("zero-duration event should paint exactly one cell, got %q", row)
	}
	if row := ganttRow(t, g, 1); row[len(row)-1] == '.' {
		t.Errorf("zero-duration event at makespan should paint the last cell, got %q", row)
	}
}

// Defensive: an event that (incorrectly) ends past Makespan must clamp,
// not panic or index out of range.
func TestGanttEventPastMakespan(t *testing.T) {
	tr := &Trace{
		Result: &Result{Makespan: 1.0},
		Events: []Event{{Rank: 0, Tile: "[0]", Start: 0.9, RecvDone: 1.1, CompDone: 1.2, End: 1.3}},
	}
	if g := tr.Gantt(10); !strings.Contains(g, "rank") {
		t.Fatalf("unexpected rendering: %q", g)
	}
}

func TestPhaseFractions(t *testing.T) {
	tr := &Trace{
		Result: &Result{Makespan: 1.0},
		Events: []Event{
			{Rank: 0, Tile: "[0]", Start: 0, RecvDone: 0.3, CompDone: 0.8, End: 0.9, Waited: 0.2},
		},
	}
	fr := tr.PhaseFractions()
	if len(fr) != 1 {
		t.Fatalf("got %d splits", len(fr))
	}
	s := fr[0]
	approx := func(got, want float64) bool { d := got - want; return d < 1e-9 && d > -1e-9 }
	if !approx(s.Wait, 0.2) || !approx(s.Recv, 0.1) || !approx(s.Compute, 0.5) ||
		!approx(s.Send, 0.1) || !approx(s.Idle, 0.1) {
		t.Fatalf("split %+v", s)
	}
	c, w := tr.ComputeWaitFractions()
	if !approx(c, 0.5) || !approx(w, 0.3) {
		t.Fatalf("compute=%v wait=%v", c, w)
	}
}

func TestTraceEventJSONRoundTrip(t *testing.T) {
	tr := &Trace{
		Result: &Result{Makespan: 1.0, Procs: 2},
		Events: []Event{
			{Rank: 0, Tile: "[0]", Start: 0, RecvDone: 0.25, CompDone: 0.75, End: 1.0, Waited: 0.1},
			{Rank: 1, Tile: "[1]", Start: 0.25, RecvDone: 0.25, CompDone: 0.9, End: 1.0},
		},
	}
	js, err := tr.TraceEventJSON()
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Tid   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &f); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, js)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var names, xs int
	for _, e := range f.TraceEvents {
		switch e.Phase {
		case "M":
			names++
		case "X":
			xs++
			if e.Dur <= 0 {
				t.Errorf("complete event %q has dur %v", e.Name, e.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	// Two thread_name records; rank 0 has 3 phases, rank 1 has 2 (its recv
	// is zero-length and skipped).
	if names != 2 || xs != 5 {
		t.Fatalf("names=%d xs=%d, want 2 and 5", names, xs)
	}
}
