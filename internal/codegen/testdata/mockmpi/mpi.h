/*
 * mock MPI — a minimal single-machine MPI implementation used by the
 * tilespace test suite to actually execute generated MPI programs without
 * an MPI installation. MPI_Init forks one process per rank (world size
 * from the MOCK_MPI_SIZE environment variable); point-to-point messages
 * travel over per-(src,dst) pipes with (tag, count) framing and per-rank
 * reorder buffers for tag-selective receives.
 *
 * Supports exactly the calls the tilespace code generator emits:
 * Init/Finalize, Comm_rank/Comm_size, Send/Recv (MPI_DOUBLE only),
 * Reduce(MPI_SUM), Abort, Wtime.
 */
#ifndef MOCK_MPI_H
#define MOCK_MPI_H

typedef int MPI_Comm;
typedef int MPI_Datatype;
typedef int MPI_Op;
typedef struct { int source, tag; } MPI_Status;

#define MPI_COMM_WORLD 0
#define MPI_DOUBLE 1
#define MPI_SUM 2
#define MPI_STATUS_IGNORE ((MPI_Status *)0)

int MPI_Init(int *argc, char ***argv);
int MPI_Comm_rank(MPI_Comm comm, int *rank);
int MPI_Comm_size(MPI_Comm comm, int *size);
int MPI_Send(const void *buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm);
int MPI_Recv(void *buf, int count, MPI_Datatype dt, int src, int tag, MPI_Comm comm, MPI_Status *st);
int MPI_Reduce(const void *send, void *recv, int count, MPI_Datatype dt, MPI_Op op, int root, MPI_Comm comm);
int MPI_Abort(MPI_Comm comm, int code);
int MPI_Finalize(void);
double MPI_Wtime(void);

#endif
