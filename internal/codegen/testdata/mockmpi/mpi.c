/* mock MPI implementation — see mpi.h for scope. */
#define _GNU_SOURCE
#include "mpi.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#define MOCK_MAX_RANKS 64
#define MOCK_REDUCE_TAG 0x7ffffff0

static int mock_size = 1;
static int mock_rank = 0;
/* pipes[src][dst][0] = read end, [1] = write end */
static int pipes[MOCK_MAX_RANKS][MOCK_MAX_RANKS][2];
static pid_t children[MOCK_MAX_RANKS];

/* reorder buffer for tag-selective receives */
struct pending {
    int tag;
    int count;
    double *data;
    struct pending *next;
};
static struct pending *pending_head[MOCK_MAX_RANKS];

static void die(const char *what) {
    fprintf(stderr, "mockmpi rank %d: %s: %s\n", mock_rank, what, strerror(errno));
    exit(70);
}

int MPI_Init(int *argc, char ***argv) {
    (void)argc;
    (void)argv;
    const char *env = getenv("MOCK_MPI_SIZE");
    mock_size = env ? atoi(env) : 1;
    if (mock_size < 1 || mock_size > MOCK_MAX_RANKS) {
        fprintf(stderr, "mockmpi: bad MOCK_MPI_SIZE\n");
        exit(64);
    }
    for (int i = 0; i < mock_size; i++) {
        for (int j = 0; j < mock_size; j++) {
            if (pipe(pipes[i][j]) != 0) die("pipe");
#ifdef F_SETPIPE_SZ
            /* enlarge so eager sends of whole tile faces never block */
            fcntl(pipes[i][j][1], F_SETPIPE_SZ, 1 << 20);
#endif
        }
    }
    mock_rank = 0; /* parent is rank 0 */
    for (int r = 1; r < mock_size; r++) {
        pid_t pid = fork();
        if (pid < 0) die("fork");
        if (pid == 0) {
            mock_rank = r;
            break;
        }
        children[r] = pid;
    }
    return 0;
}

int MPI_Comm_rank(MPI_Comm comm, int *rank) {
    (void)comm;
    *rank = mock_rank;
    return 0;
}

int MPI_Comm_size(MPI_Comm comm, int *size) {
    (void)comm;
    *size = mock_size;
    return 0;
}

static void write_all(int fd, const void *buf, size_t n) {
    const char *p = buf;
    while (n > 0) {
        ssize_t w = write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            die("write");
        }
        p += w;
        n -= (size_t)w;
    }
}

static void read_all(int fd, void *buf, size_t n) {
    char *p = buf;
    while (n > 0) {
        ssize_t r = read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR) continue;
            die("read");
        }
        if (r == 0) {
            fprintf(stderr, "mockmpi rank %d: unexpected EOF\n", mock_rank);
            exit(71);
        }
        p += r;
        n -= (size_t)r;
    }
}

int MPI_Send(const void *buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm) {
    (void)dt;
    (void)comm;
    int fd = pipes[mock_rank][dest][1];
    int hdr[2] = {tag, count};
    write_all(fd, hdr, sizeof hdr);
    if (count > 0) write_all(fd, buf, (size_t)count * sizeof(double));
    return 0;
}

int MPI_Recv(void *buf, int count, MPI_Datatype dt, int src, int tag, MPI_Comm comm, MPI_Status *st) {
    (void)dt;
    (void)comm;
    /* check the reorder buffer first */
    struct pending **pp = &pending_head[src];
    for (; *pp; pp = &(*pp)->next) {
        if ((*pp)->tag == tag) {
            struct pending *m = *pp;
            if (m->count > count) {
                fprintf(stderr, "mockmpi rank %d: message truncation\n", mock_rank);
                exit(72);
            }
            memcpy(buf, m->data, (size_t)m->count * sizeof(double));
            if (st) { st->source = src; st->tag = tag; }
            *pp = m->next;
            free(m->data);
            free(m);
            return 0;
        }
    }
    /* drain the pipe until the wanted tag arrives */
    int fd = pipes[src][mock_rank][0];
    for (;;) {
        int hdr[2];
        read_all(fd, hdr, sizeof hdr);
        if (hdr[0] == tag) {
            if (hdr[1] > count) {
                fprintf(stderr, "mockmpi rank %d: message truncation\n", mock_rank);
                exit(72);
            }
            if (hdr[1] > 0) read_all(fd, buf, (size_t)hdr[1] * sizeof(double));
            if (st) { st->source = src; st->tag = tag; }
            return 0;
        }
        struct pending *m = malloc(sizeof *m);
        if (!m) die("malloc");
        m->tag = hdr[0];
        m->count = hdr[1];
        m->data = malloc((size_t)(hdr[1] > 0 ? hdr[1] : 1) * sizeof(double));
        if (!m->data) die("malloc");
        if (hdr[1] > 0) read_all(fd, m->data, (size_t)hdr[1] * sizeof(double));
        m->next = pending_head[src];
        pending_head[src] = m;
    }
}

int MPI_Reduce(const void *send, void *recv, int count, MPI_Datatype dt, MPI_Op op, int root, MPI_Comm comm) {
    (void)dt;
    if (op != MPI_SUM) {
        fprintf(stderr, "mockmpi: only MPI_SUM is implemented\n");
        exit(73);
    }
    if (mock_rank != root) {
        return MPI_Send(send, count, MPI_DOUBLE, root, MOCK_REDUCE_TAG, comm);
    }
    double *acc = recv;
    memcpy(acc, send, (size_t)count * sizeof(double));
    double *tmp = malloc((size_t)(count > 0 ? count : 1) * sizeof(double));
    if (!tmp) die("malloc");
    for (int r = 0; r < mock_size; r++) {
        if (r == root) continue;
        MPI_Recv(tmp, count, MPI_DOUBLE, r, MOCK_REDUCE_TAG, comm, MPI_STATUS_IGNORE);
        for (int i = 0; i < count; i++) acc[i] += tmp[i];
    }
    free(tmp);
    return 0;
}

int MPI_Abort(MPI_Comm comm, int code) {
    (void)comm;
    exit(code);
}

int MPI_Finalize(void) {
    if (mock_rank != 0) {
        /* child ranks end here; exiting from main would double-free with
         * some libc exit handlers under fork, so flush and leave */
        fflush(NULL);
        _exit(0);
    }
    for (int r = 1; r < mock_size; r++) {
        int status = 0;
        if (waitpid(children[r], &status, 0) < 0) die("waitpid");
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            fprintf(stderr, "mockmpi: rank %d failed (status %d)\n", r, status);
            exit(74);
        }
    }
    return 0;
}

double MPI_Wtime(void) {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (double)tv.tv_sec + (double)tv.tv_usec * 1e-6;
}
