package codegen

import (
	"strings"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

func sorGen(t *testing.T) *Generator {
	t.Helper()
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(d, Options{
		Name:       "sor",
		Width:      1,
		KernelStmt: "out[0] = 0.3*(R0[0] + R1[0] + R2[0] + R3[0]) - 0.2*R4[0];",
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// braceBalance verifies structural integrity of the emitted C: braces and
// parentheses must balance and never go negative.
func braceBalance(t *testing.T, src string) {
	t.Helper()
	braces, parens := 0, 0
	for _, r := range src {
		switch r {
		case '{':
			braces++
		case '}':
			braces--
		case '(':
			parens++
		case ')':
			parens--
		}
		if braces < 0 || parens < 0 {
			t.Fatal("unbalanced braces/parens in generated C")
		}
	}
	if braces != 0 || parens != 0 {
		t.Fatalf("generated C ends with %d open braces, %d open parens", braces, parens)
	}
}

func TestGenerateStructure(t *testing.T) {
	src := sorGen(t).Generate()
	braceBalance(t, src)
	for _, want := range []string{
		"#include <mpi.h>",
		"MPI_Init", "MPI_Finalize", "MPI_Send", "MPI_Recv", "MPI_Reduce",
		"MPI_Comm_rank", "MPI_Abort",
		"static int tile_valid", "static int find_pid", "static int rank_of_pid",
		"static void chain_bounds", "static long map_cell", "static long map_read",
		"static long map_unpack", "static int minsucc_is", "static int has_successor",
		"static long region_count", "static void receive_data", "static void send_data",
		"static void compute_tile", "static void inject_boundary",
		"static int in_space", "static void initial_value",
		"#define NDIM 3", "#define MAPDIM 2", "#define WIDTH 1",
		"ceild", "floord", "ts_max", "ts_min",
		"int main(int argc, char **argv)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	// Kernel placeholders must be substituted.
	if strings.Contains(src, "$W") || strings.Contains(src, "$R0") {
		t.Error("unsubstituted kernel placeholders")
	}
	// The kernel statement itself must appear.
	if !strings.Contains(src, "0.3*(R0[0] + R1[0] + R2[0] + R3[0]) - 0.2*R4[0]") {
		t.Error("kernel statement not emitted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := sorGen(t).Generate()
	b := sorGen(t).Generate()
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateADIWidth2(t *testing.T) {
	app, err := apps.ADI(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[2].H(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(d, Options{
		Name:  "adi",
		Width: 2,
		KernelStmt: "double a = 0.05; out[0] = R0[0] + R2[0]*a/R2[1] - R1[0]*a/R1[1]; " +
			"out[1] = R0[1] - a*a/R2[1] - a*a/R1[1];",
		InitialStmt: "out[0] = 1.0; out[1] = 2.0;",
	})
	if err != nil {
		t.Fatal(err)
	}
	src := g.Generate()
	braceBalance(t, src)
	if !strings.Contains(src, "#define WIDTH 2") {
		t.Error("width 2 not emitted")
	}
	if !strings.Contains(src, "out[1] = R0[1]") {
		t.Error("two-array kernel missing")
	}
}

func TestGenerateJacobiStride2(t *testing.T) {
	app, err := apps.Jacobi(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(d, Options{Name: "jacobi", Width: 1, KernelStmt: "out[0] = 0.2*(R0[0]+R1[0]+R2[0]+R3[0]+R4[0]);"})
	if err != nil {
		t.Fatal(err)
	}
	src := g.Generate()
	braceBalance(t, src)
	// The stride-2 lattice shows up in the strides table.
	if !strings.Contains(src, "CSTR[NDIM] = {1, 2, 1}") {
		t.Errorf("expected strides {1, 2, 1} in generated code")
	}
}

func TestNewErrors(t *testing.T) {
	app, err := apps.SOR(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.Rect.H(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, Options{}); err == nil {
		t.Error("missing kernel statement not rejected")
	}
}

func TestReport(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(d)
	for _, want := range []string{
		"tiling analysis", "extreme rays", "D^S", "communication vector",
		"processors:", "LDS shape", "cone surface",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Rectangular ADI's report must flag the interior time row (for SOR
	// even the rectangular rows lie on cone facets, so ADI is the
	// discriminating case).
	adi, err := apps.ADI(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	tsR, err := tiling.Analyze(adi.Nest, adi.Rect.H(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	dR, err := distrib.New(tsR, adi.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Report(dR), "not time-optimal") {
		t.Error("rect ADI report should carry the Hodzic-Shang warning")
	}
}

func TestCAffineRendering(t *testing.T) {
	g := sorGen(t)
	// Smoke: bounds of the innermost z variable must reference outer names.
	lb := cLowerBound(g.nb.Vars[2*g.n-1], g.vars)
	ub := cUpperBound(g.nb.Vars[2*g.n-1], g.vars)
	if lb == "" || ub == "" {
		t.Fatal("empty bound expressions")
	}
	if !strings.Contains(lb+ub, "jS[") && !strings.Contains(lb+ub, "z") {
		t.Errorf("bounds reference no variables: %s / %s", lb, ub)
	}
}

func TestVecRowsHelper(t *testing.T) {
	rows := vecRows([]ilin.Vec{ilin.NewVec(1, 2)})
	if len(rows) != 1 || rows[0][1] != 2 {
		t.Error("vecRows mismatch")
	}
	tbl := cTable("X", rows)
	if !strings.Contains(tbl[0], "X[1][2]") {
		t.Errorf("cTable header = %s", tbl[0])
	}
}

func TestGenerateSequential(t *testing.T) {
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateSequential(ts, Options{
		Name:       "sor_seq",
		KernelStmt: "$W[0] = 0.3*($R0[0] + $R1[0]) - 0.2*$R4[0];",
	})
	if err != nil {
		t.Fatal(err)
	}
	braceBalance(t, src)
	for _, want := range []string{
		"int main(void)", "static int in_space", "gidx", "sor_seq",
		"for (long jS0", "for (long z0",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("sequential C missing %q", want)
		}
	}
	if strings.Contains(src, "$W") || strings.Contains(src, "$R0") {
		t.Error("unsubstituted placeholders")
	}
	if strings.Contains(src, "mpi.h") {
		t.Error("sequential code must not need MPI")
	}
	if _, err := GenerateSequential(ts, Options{}); err == nil {
		t.Error("missing kernel not rejected")
	}
}

func TestGenerateSequentialDeterministic(t *testing.T) {
	app, err := apps.ADI(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[2].H(2, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Name: "adi_seq", Width: 2, KernelStmt: "$W[0] = $R0[0]; $W[1] = $R0[1];"}
	a, err := GenerateSequential(ts, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSequential(ts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("non-deterministic sequential generation")
	}
}
