package codegen

import (
	"fmt"
	"strings"

	"tilespace/internal/distrib"
	"tilespace/internal/rat"
)

// kernelFns emits in_space, initial_value, the original dependence table,
// and the boundary-injection + compute loops for one tile.
func (g *Generator) kernelFns(w *writer) {
	w.blank()
	w.line("/* original dependence vectors d_l (columns of D) */")
	depRows := make([][]int64, g.ts.Nest.Q())
	for l := range depRows {
		depRows[l] = g.ts.Nest.Dep(l)
	}
	if len(depRows) > 0 {
		for _, line := range cTable("DEPS", depRows) {
			w.line("%s", line)
		}
	} else {
		w.line("static const long DEPS[1][NDIM] = {{0}};")
	}
	w.blank()
	w.line("/* in_space: does j satisfy every iteration-space inequality? */")
	w.open("static int in_space(const long j[NDIM])")
	for _, c := range g.ts.Nest.Space.Cons {
		l := c.Rhs.Den
		for _, x := range c.Coef {
			l = rat.Lcm64(l, x.Den)
		}
		terms := []string{}
		for k, x := range c.Coef {
			v := x.MulInt(l).Int()
			if v == 0 {
				continue
			}
			terms = append(terms, fmt.Sprintf("%d*j[%d]", v, k))
		}
		if len(terms) == 0 {
			continue
		}
		w.line("if (!(%s <= %d)) return 0;", strings.Join(terms, " + "), c.Rhs.MulInt(l).Int())
	}
	w.line("return 1;")
	w.close()
	w.blank()
	w.line("/* initial_value: boundary/initial data for points outside the space. */")
	w.open("static void initial_value(const long j[NDIM], double *out)")
	w.line("(void)j;")
	w.line("%s", g.opts.InitialStmt)
	w.close()
	w.blank()
	w.line("/* inject_boundary: place Initial values for reads that leave the space. */")
	w.open("static void inject_boundary(const long jS[NDIM], long t, double *LA)")
	g.emitZLoops(w, "jS", "", nil, func() {
		w.line("long j[NDIM];")
		w.line("for (int k = 0; k < NDIM; k++) {")
		w.indent++
		w.line("j[k] = 0;")
		w.line("for (int l = 0; l < NDIM; l++) j[k] += P[k][l]*jS[l] + U[k][l]*zv[l];")
		w.indent--
		w.line("}")
		w.line("for (int l = 0; l < NDEPS; l++) {")
		w.indent++
		w.line("long src[NDIM];")
		w.line("for (int k = 0; k < NDIM; k++) src[k] = j[k] - DEPS[l][k];")
		w.line("if (in_space(src)) continue;")
		w.line("double tmp[WIDTH];")
		w.line("initial_value(src, tmp);")
		w.line("double *cell = &LA[map_read(jp, DP[l], t) * WIDTH];")
		w.line("for (int x = 0; x < WIDTH; x++) cell[x] = tmp[x];")
		w.indent--
		w.line("}")
	})
	w.close()
	w.blank()
	w.line("/* compute_tile: sweep the (boundary-clamped) TTIS lattice. */")
	w.open("static void compute_tile(const long jS[NDIM], long t, double *LA)")
	g.emitZLoops(w, "jS", "", g.ompPragmas(), func() {
		w.line("long j[NDIM];")
		w.line("for (int k = 0; k < NDIM; k++) {")
		w.indent++
		w.line("j[k] = 0;")
		w.line("for (int l = 0; l < NDIM; l++) j[k] += P[k][l]*jS[l] + U[k][l]*zv[l];")
		w.indent--
		w.line("}")
		w.line("(void)j;")
		for l := 0; l < g.ts.Nest.Q(); l++ {
			w.line("double *R%d = &LA[map_read(jp, DP[%d], t) * WIDTH];", l, l)
			w.line("(void)R%d;", l)
		}
		w.line("double *out = &LA[map_cell(jp, t) * WIDTH];")
		stmt := g.opts.KernelStmt
		stmt = strings.ReplaceAll(stmt, "$W", "out")
		for l := g.ts.Nest.Q() - 1; l >= 0; l-- {
			stmt = strings.ReplaceAll(stmt, fmt.Sprintf("$R%d", l), fmt.Sprintf("R%d", l))
		}
		w.line("%s", stmt)
	})
	w.close()
}

// ompPragmas derives the compute sweep's OpenMP annotation from the
// dependence cone. Dimensions up to max(SeqDims) carry every dependence
// (each transformed dependence has a positive component there, and the
// sweep walks them in order), so the first dimension after them — and
// everything inside it — iterates over mutually independent points once
// the outer coordinates are fixed: `parallel for` goes on that dimension,
// with zv/jp firstprivate so each thread owns the coordinate scratch the
// outer loops seeded, and the innermost loop gets `simd` when it lies
// deeper still. Returns nil when OpenMP is off or every dimension is
// sequential.
func (g *Generator) ompPragmas() []string {
	if !g.opts.OpenMP {
		return nil
	}
	par := 0
	for _, k := range distrib.SeqDims(g.ts.DP) {
		if k+1 > par {
			par = k + 1
		}
	}
	if par >= g.n {
		return nil
	}
	pr := make([]string, g.n)
	pr[par] = "#pragma omp parallel for schedule(static) firstprivate(zv, jp)"
	if g.n-1 > par {
		pr[g.n-1] = "#pragma omp simd"
	}
	return pr
}

// commFns emits region counting, RECEIVE and SEND exactly as §3.2.
func (g *Generator) commFns(w *writer) {
	w.blank()
	w.line("/* region_count: number of communication points of tile s along DM[di]. */")
	w.open("static long region_count(const long s[NDIM], int di)")
	w.line("long dmf[NDIM];")
	w.line("dm_full(di, dmf);")
	w.line("long count = 0;")
	w.openBlock()
	g.emitZLoops(w, "s", "dmf", nil, func() {
		w.line("count++;")
	})
	w.close()
	w.line("return count;")
	w.close()
	w.blank()
	w.line("/* RECEIVE (§3.2): one message per (predecessor tile, processor direction),")
	w.line(" * accepted at the minsucc tile and unpacked into this LDS. */")
	w.open("static void receive_data(const long jS[NDIM], long chain_start, double *LA, double *buf)")
	w.line("for (int si = 0; si < NTILEDEPS; si++) {")
	w.indent++
	w.line("int i = DSRECV[si];")
	w.line("int di = DSDM[i];")
	w.line("if (di < 0) continue; /* same-processor dependence */")
	w.line("long pred[NDIM];")
	w.line("for (int k = 0; k < NDIM; k++) pred[k] = jS[k] - DS[i][k];")
	w.line("if (!tile_valid(pred)) continue;")
	w.line("if (!minsucc_is(pred, di, jS)) continue;")
	w.line("long count = region_count(pred, di);")
	w.line("if (count == 0) continue;")
	w.line("long srcpid[NDIM];")
	w.line("long dmf[NDIM];")
	w.line("dm_full(di, dmf);")
	w.line("for (int k = 0; k < NDIM; k++) srcpid[k] = pred[k];")
	w.line("MPI_Recv(buf, (int)(count * WIDTH), MPI_DOUBLE, rank_of_pid(srcpid), di, MPI_COMM_WORLD, MPI_STATUS_IGNORE);")
	w.line("long tau = pred[MAPDIM] - chain_start;")
	w.line("long idx = 0;")
	w.openBlock()
	g.emitZLoops(w, "pred", "dmf", nil, func() {
		w.line("double *cell = &LA[map_unpack(jp, dmf, tau) * WIDTH];")
		w.line("for (int x = 0; x < WIDTH; x++) cell[x] = buf[idx++];")
	})
	w.close()
	w.indent--
	w.line("}")
	w.close()
	w.blank()
	w.line("/* SEND (§3.2): one message per processor direction with a valid successor. */")
	w.open("static void send_data(const long jS[NDIM], long t, double *LA, double *buf)")
	w.line("for (int di = 0; di < NPROCDEPS; di++) {")
	w.indent++
	w.line("if (!has_successor(jS, di)) continue;")
	w.line("long count = region_count(jS, di);")
	w.line("if (count == 0) continue;")
	w.line("long dmf[NDIM];")
	w.line("dm_full(di, dmf);")
	w.line("long dstpid[NDIM];")
	w.line("for (int k = 0; k < NDIM; k++) dstpid[k] = jS[k] + dmf[k];")
	w.line("long idx = 0;")
	w.openBlock()
	g.emitZLoops(w, "jS", "dmf", nil, func() {
		w.line("double *cell = &LA[map_cell(jp, t) * WIDTH];")
		w.line("for (int x = 0; x < WIDTH; x++) buf[idx++] = cell[x];")
	})
	w.close()
	w.line("MPI_Send(buf, (int)(count * WIDTH), MPI_DOUBLE, rank_of_pid(dstpid), di, MPI_COMM_WORLD);")
	w.indent--
	w.line("}")
	w.close()
}

func (g *Generator) mainFn(w *writer) {
	w.blank()
	w.open("int main(int argc, char **argv)")
	w.line("MPI_Init(&argc, &argv);")
	w.line("int rank, nprocs;")
	w.line("MPI_Comm_rank(MPI_COMM_WORLD, &rank);")
	w.line("MPI_Comm_size(MPI_COMM_WORLD, &nprocs);")
	w.line("if (nprocs < %d) {", g.d.NumProcs())
	w.indent++
	w.line("if (rank == 0) fprintf(stderr, \"%s needs %d MPI processes\\n\");", g.opts.Name, g.d.NumProcs())
	w.line("MPI_Abort(MPI_COMM_WORLD, 1);")
	w.indent--
	w.line("}")
	w.blank()
	w.line("long jS[NDIM] = {0};")
	w.line("double t0 = MPI_Wtime();")
	w.line("if (find_pid(rank, jS)) {")
	w.indent++
	w.line("long lo, hi;")
	w.line("chain_bounds(jS, &lo, &hi);")
	w.line("long chain_len = hi - lo + 1;")
	w.line("long cells = lds_init(chain_len);")
	w.line("double *LA  = calloc((size_t)(cells * WIDTH), sizeof(double));")
	w.line("double *buf = malloc((size_t)(%d * WIDTH) * sizeof(double));", g.ts.T.TileSize)
	w.line("if (!LA || !buf) MPI_Abort(MPI_COMM_WORLD, 2);")
	w.blank()
	w.line("for (long tS = lo; tS <= hi; tS++) { /* the paper's FOR t^S loop */")
	w.indent++
	w.line("jS[MAPDIM] = tS;")
	w.line("long t = tS - lo;")
	w.line("receive_data(jS, lo, LA, buf);")
	w.line("inject_boundary(jS, t, LA);")
	w.line("compute_tile(jS, t, LA);")
	w.line("send_data(jS, t, LA, buf);")
	w.indent--
	w.line("}")
	w.blank()
	w.line("/* checksum over this rank's own iteration points — exactly the")
	w.line(" * computer-owns write-back set, so it matches a sequential sum. */")
	w.line("(void)cells;")
	w.line("double local = 0.0;")
	w.line("for (long tS = lo; tS <= hi; tS++) {")
	w.indent++
	w.line("jS[MAPDIM] = tS;")
	w.line("long t = tS - lo;")
	w.openBlock()
	g.emitZLoops(w, "jS", "", nil, func() {
		w.line("double *cell = &LA[map_cell(jp, t) * WIDTH];")
		w.line("for (int x = 0; x < WIDTH; x++) local += cell[x];")
	})
	w.close()
	w.indent--
	w.line("}")
	w.line("double total = 0.0;")
	w.line("MPI_Reduce(&local, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);")
	w.line("if (rank == 0)")
	w.line("    printf(\"%s: %%d procs, checksum %%.17g, %%.3f s\\n\", nprocs, total, MPI_Wtime() - t0);", g.opts.Name)
	w.line("free(LA);")
	w.line("free(buf);")
	w.indent--
	w.line("} else {")
	w.indent++
	w.line("/* ranks beyond the mesh idle through the same reduction */")
	w.line("double local = 0.0, total;")
	w.line("MPI_Reduce(&local, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);")
	w.indent--
	w.line("}")
	w.line("MPI_Finalize();")
	w.line("return 0;")
	w.close()
}
