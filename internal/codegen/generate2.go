package codegen

import (
	"fmt"
	"sort"
)

// varsFor returns the 2n permuted C variable names with the tile array
// called arr (the z loops are emitted in several functions whose tile
// coordinate arrays have different names).
func (g *Generator) varsFor(arr string) []string {
	vars := make([]string, 2*g.n)
	for p, dim := range g.perm {
		vars[p] = fmt.Sprintf("%s[%d]", arr, dim)
	}
	for k := 0; k < g.n; k++ {
		vars[g.n+k] = fmt.Sprintf("z%d", k)
	}
	return vars
}

// emitZLoops writes the nested point loops of one tile (array name arr),
// declaring z0…zn-1, zv[] and jp[] (the TTIS coordinate); filter, when
// non-empty, is the name of a full-dimension direction array and restricts
// the body to communication points (jp[k] ≥ CC[k] on its non-mapping
// 1-dimensions). pragmas, when non-nil, holds one pragma line per
// dimension, emitted immediately before that dimension's for statement
// (empty entries emit nothing).
func (g *Generator) emitZLoops(w *writer, arr, filter string, pragmas []string, body func()) {
	vars := g.varsFor(arr)
	w.line("long zv[NDIM], jp[NDIM];")
	w.line("(void)zv;")
	for k := 0; k < g.n; k++ {
		lb := cLowerBound(g.nb.Vars[g.n+k], vars)
		ub := cUpperBound(g.nb.Vars[g.n+k], vars)
		if pragmas != nil && pragmas[k] != "" {
			w.line("%s", pragmas[k])
		}
		w.open("for (long z%d = %s; z%d <= (%s); z%d++)", k, lb, k, ub, k)
		w.line("zv[%d] = z%d;", k, k)
		terms := ""
		for l := 0; l <= k; l++ {
			if g.ts.T.HT.At(k, l) == 0 {
				continue
			}
			if terms != "" {
				terms += " + "
			}
			terms += fmt.Sprintf("%d*z%d", g.ts.T.HT.At(k, l), l)
		}
		if terms == "" {
			terms = "0"
		}
		w.line("jp[%d] = %s;", k, terms)
	}
	if filter != "" {
		w.line("int cpoint = 1;")
		w.line("for (int k = 0; k < NDIM; k++)")
		w.line("    if (k != MAPDIM && %s[k] && jp[k] < CC[k]) cpoint = 0;", filter)
		w.line("if (!cpoint) continue;")
	}
	body()
	for k := 0; k < g.n; k++ {
		w.close()
	}
}

func (g *Generator) addressing(w *writer) {
	w.blank()
	w.line("/* Local Data Space layout (Fig. 3) and the map() of Table 1. */")
	w.line("static long lds_shape[NDIM], lds_stride[NDIM];")
	w.blank()
	w.open("static long lds_init(long chain_len)")
	w.line("for (int k = 0; k < NDIM; k++) {")
	w.indent++
	w.line("long per = V[k] / CSTR[k];")
	w.line("lds_shape[k] = (k == MAPDIM) ? OFF[k] + chain_len * per : OFF[k] + per;")
	w.indent--
	w.line("}")
	w.line("long size = 1;")
	w.line("for (int k = NDIM - 1; k >= 0; k--) { lds_stride[k] = size; size *= lds_shape[k]; }")
	w.line("return size;")
	w.close()
	w.blank()
	w.open("static long map_cell(const long jp[NDIM], long t)")
	w.line("long idx = 0;")
	w.line("for (int k = 0; k < NDIM; k++) {")
	w.indent++
	w.line("long x = (k == MAPDIM) ? t * V[k] + jp[k] : jp[k];")
	w.line("idx += (floord(x, CSTR[k]) + OFF[k]) * lds_stride[k];")
	w.indent--
	w.line("}")
	w.line("return idx;")
	w.close()
	w.blank()
	w.open("static long map_read(const long jp[NDIM], const long dp[NDIM], long t)")
	w.line("long idx = 0;")
	w.line("for (int k = 0; k < NDIM; k++) {")
	w.indent++
	w.line("long x = jp[k] - dp[k];")
	w.line("if (k == MAPDIM) x += t * V[k];")
	w.line("idx += (floord(x, CSTR[k]) + OFF[k]) * lds_stride[k];")
	w.indent--
	w.line("}")
	w.line("return idx;")
	w.close()
	w.blank()
	w.line("/* map_unpack: where a predecessor tile's point lands in this LDS")
	w.line(" * (tau = pred_m - chain_start; dmf = processor direction, 0 at MAPDIM). */")
	w.open("static long map_unpack(const long pp[NDIM], const long dmf[NDIM], long tau)")
	w.line("long idx = 0;")
	w.line("for (int k = 0; k < NDIM; k++) {")
	w.indent++
	w.line("long x = (k == MAPDIM) ? tau * V[k] + pp[k] : pp[k] - V[k] * dmf[k];")
	w.line("idx += (floord(x, CSTR[k]) + OFF[k]) * lds_stride[k];")
	w.indent--
	w.line("}")
	w.line("return idx;")
	w.close()
}

func (g *Generator) protocolHelpers(w *writer) {
	// Precompute: DSDM[i] = index into DM of the projection of DS[i] (-1
	// when intra-processor), and the receive order (descending d^S_m).
	dsdm := make([]int, len(g.ts.DS))
	for i, dS := range g.ts.DS {
		dm := g.d.DmOf(dS)
		dsdm[i] = -1
		for di, cand := range g.d.DM {
			if cand.Equal(dm) {
				dsdm[i] = di
				break
			}
		}
	}
	order := make([]int, len(g.ts.DS))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.ts.DS[order[a]][g.m] > g.ts.DS[order[b]][g.m]
	})

	w.blank()
	w.line("/* DSDM[i]: processor-dep index of tile dep i (-1 = same processor);")
	w.line(" * DSRECV: receive processing order (descending d^S_m, matching the")
	w.line(" * senders' FIFO order when two tile deps share a direction). */")
	w.line("static const int DSDM[%d] = {%s};", max(1, len(dsdm)), joinIntSlice(dsdm))
	w.line("static const int DSRECV[%d] = {%s};", max(1, len(order)), joinIntSlice(order))
	w.blank()
	w.open("static void dm_full(int di, long out[NDIM])")
	w.line("int idx = 0;")
	w.line("for (int k = 0; k < NDIM; k++) out[k] = (k == MAPDIM) ? 0 : DM[di][idx++];")
	w.close()
	w.blank()
	w.line("/* minsucc_is: is `tile` the lexicographically minimum valid successor")
	w.line(" * of pred along processor direction di (§3.2)? */")
	w.open("static int minsucc_is(const long pred[NDIM], int di, const long tile[NDIM])")
	w.line("long best[NDIM];")
	w.line("int have = 0;")
	w.line("for (int i = 0; i < NTILEDEPS; i++) {")
	w.indent++
	w.line("if (DSDM[i] != di) continue;")
	w.line("long succ[NDIM];")
	w.line("for (int k = 0; k < NDIM; k++) succ[k] = pred[k] + DS[i][k];")
	w.line("if (!tile_valid(succ)) continue;")
	w.line("int less = !have;")
	w.line("for (int k = 0; k < NDIM && have; k++) {")
	w.indent++
	w.line("if (succ[k] != best[k]) { less = succ[k] < best[k]; break; }")
	w.indent--
	w.line("}")
	w.line("if (less) { for (int k = 0; k < NDIM; k++) best[k] = succ[k]; have = 1; }")
	w.indent--
	w.line("}")
	w.line("if (!have) return 0;")
	w.line("for (int k = 0; k < NDIM; k++) if (best[k] != tile[k]) return 0;")
	w.line("return 1;")
	w.close()
	w.blank()
	w.open("static int has_successor(const long tile[NDIM], int di)")
	w.line("for (int i = 0; i < NTILEDEPS; i++) {")
	w.indent++
	w.line("if (DSDM[i] != di) continue;")
	w.line("long succ[NDIM];")
	w.line("for (int k = 0; k < NDIM; k++) succ[k] = tile[k] + DS[i][k];")
	w.line("if (tile_valid(succ)) return 1;")
	w.indent--
	w.line("}")
	w.line("return 0;")
	w.close()
}

func joinIntSlice(v []int) string {
	if len(v) == 0 {
		return "0"
	}
	s := ""
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}
