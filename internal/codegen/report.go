package codegen

import (
	"fmt"
	"strings"

	"tilespace/internal/cone"
	"tilespace/internal/distrib"
)

// Report renders the complete compile-time analysis of a distribution in
// human-readable form — what the tilec CLI prints before emitting code.
func Report(d *distrib.Distribution) string {
	ts := d.TS
	var b strings.Builder
	fmt.Fprintf(&b, "=== tiling analysis ===\n")
	fmt.Fprintf(&b, "loop nest: depth %d, variables %s, %d dependencies\n",
		ts.Nest.N, strings.Join(ts.Nest.Names, ", "), ts.Nest.Q())
	fmt.Fprintf(&b, "\nD (dependence columns) =\n%v\n", ts.Nest.Deps)

	c := cone.New(ts.Nest.Deps)
	if rays, err := c.ExtremeRays(); err == nil {
		fmt.Fprintf(&b, "\ntiling cone extreme rays:\n")
		for _, r := range rays {
			fmt.Fprintf(&b, "  %v\n", r)
		}
	}
	fmt.Fprintf(&b, "\n%s\n", ts.T)
	if rows := c.InteriorRows(ts.T.H); len(rows) > 0 {
		fmt.Fprintf(&b, "note: H rows %v lie strictly inside the tiling cone — "+
			"Hodzic-Shang predicts this shape is not time-optimal\n", rows)
	} else {
		fmt.Fprintf(&b, "all H rows lie on the tiling cone surface (scheduling-optimal family)\n")
	}

	fmt.Fprintf(&b, "\nD' = H'·D =\n%v\n", ts.DP)
	fmt.Fprintf(&b, "\nD^S (tile dependencies):\n")
	for _, dS := range ts.DS {
		fmt.Fprintf(&b, "  %v\n", dS)
	}
	fmt.Fprintf(&b, "\ncommunication vector CC = %v\n", ts.CC)
	fmt.Fprintf(&b, "LDS offsets off = %v (mapping dim m = %d)\n", d.Off, d.M+1)

	fmt.Fprintf(&b, "\nD^m (processor dependencies):\n")
	for _, dm := range d.DM {
		fmt.Fprintf(&b, "  %v\n", dm)
	}
	fmt.Fprintf(&b, "\ntile space box: %v .. %v (%d tiles)\n", ts.TileLo, ts.TileHi, ts.NumTiles())
	fmt.Fprintf(&b, "processors: %d\n", d.NumProcs())
	for r := 0; r < d.NumProcs() && r < 8; r++ {
		fmt.Fprintf(&b, "  rank %d: pid %v, chain [%d, %d], LDS shape %v (%d cells)\n",
			r, d.Pids[r], d.ChainStart[r], d.ChainStart[r]+d.ChainLen[r]-1, d.LDSShape(r), d.LDSSize(r))
	}
	if d.NumProcs() > 8 {
		fmt.Fprintf(&b, "  ... (%d more)\n", d.NumProcs()-8)
	}
	return b.String()
}
