package codegen

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	goexec "tilespace/internal/exec"
	"tilespace/internal/frontend"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
)

func requireCC(t *testing.T) string {
	t.Helper()
	cc, err := exec.LookPath("gcc")
	if err != nil {
		if cc, err = exec.LookPath("cc"); err != nil {
			t.Skip("no C compiler available")
		}
	}
	return cc
}

// TestSequentialCMatchesGoExecutor compiles and runs the generated §2.3
// sequential tiled C program and compares its checksum against the Go
// tiled executor running the same kernel — an end-to-end proof that the
// emitted loop bounds, lattice traversal and addressing are correct C.
func TestSequentialCMatchesGoExecutor(t *testing.T) {
	cc := requireCC(t)
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(3, 7, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Bounded, order-robust kernel: values stay O(1); the final checksums
	// are compared with a small relative tolerance because C and Go sum
	// the cells in different orders.
	kernelC := "$W[0] = 0.25*$R0[0] + 0.25*$R1[0] + 0.125*$R2[0] + 0.125*$R3[0] + 0.25*$R4[0] + 1.0;"
	kernelGo := func(j ilin.Vec, reads [][]float64, out []float64) {
		out[0] = 0.25*reads[0][0] + 0.25*reads[1][0] + 0.125*reads[2][0] + 0.125*reads[3][0] + 0.25*reads[4][0] + 1.0
	}
	src, err := GenerateSequential(ts, Options{
		Name:        "sorseq",
		KernelStmt:  kernelC,
		InitialStmt: "out[0] = 0.5;",
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cPath := filepath.Join(dir, "sorseq.c")
	if err := os.WriteFile(cPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "sorseq")
	if out, err := exec.Command(cc, "-O1", "-o", bin, cPath, "-lm").CombinedOutput(); err != nil {
		t.Fatalf("compile failed: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 {
		t.Fatalf("unexpected output %q", out)
	}
	cSum, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("parse checksum from %q: %v", out, err)
	}

	prog, err := goexec.NewProgram(ts, app.MapDim, 1, kernelGo,
		func(j ilin.Vec, out []float64) { out[0] = 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	g, err := prog.RunTiledSequential()
	if err != nil {
		t.Fatal(err)
	}
	var goSum float64
	prog.ScanSpace(func(j ilin.Vec) bool {
		goSum += g.At(j)[0]
		return true
	})
	rel := math.Abs(cSum-goSum) / math.Max(1, math.Abs(goSum))
	if rel > 1e-9 {
		t.Errorf("C checksum %.17g differs from Go %.17g (rel %.2e)", cSum, goSum, rel)
	}
}

// mockMPIHeader is a minimal mpi.h sufficient to syntax-check the
// generated parallel programs without an MPI installation.
const mockMPIHeader = `#ifndef MOCK_MPI_H
#define MOCK_MPI_H
typedef int MPI_Comm;
typedef int MPI_Datatype;
typedef int MPI_Op;
typedef struct { int s; } MPI_Status;
#define MPI_COMM_WORLD 0
#define MPI_DOUBLE 1
#define MPI_SUM 2
#define MPI_STATUS_IGNORE ((MPI_Status *)0)
int MPI_Init(int *argc, char ***argv);
int MPI_Comm_rank(MPI_Comm comm, int *rank);
int MPI_Comm_size(MPI_Comm comm, int *size);
int MPI_Send(const void *buf, int count, MPI_Datatype dt, int dest, int tag, MPI_Comm comm);
int MPI_Recv(void *buf, int count, MPI_Datatype dt, int src, int tag, MPI_Comm comm, MPI_Status *st);
int MPI_Reduce(const void *send, void *recv, int count, MPI_Datatype dt, MPI_Op op, int root, MPI_Comm comm);
int MPI_Abort(MPI_Comm comm, int code);
int MPI_Finalize(void);
double MPI_Wtime(void);
#endif
`

// TestParallelCCompiles syntax-checks the generated MPI programs for all
// three workloads with a strict gcc invocation and a mock mpi.h.
func TestParallelCCompiles(t *testing.T) {
	cc := requireCC(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mpi.h"), []byte(mockMPIHeader), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		gen  func() (string, error)
	}{
		{"sor", func() (string, error) {
			app, err := apps.SOR(8, 16)
			if err != nil {
				return "", err
			}
			ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 8, 4))
			if err != nil {
				return "", err
			}
			d, err := distrib.New(ts, app.MapDim)
			if err != nil {
				return "", err
			}
			g, err := New(d, Options{Name: "sor", KernelStmt: "out[0] = R0[0] + R4[0];"})
			if err != nil {
				return "", err
			}
			return g.Generate(), nil
		}},
		{"jacobi", func() (string, error) {
			app, err := apps.Jacobi(6, 10)
			if err != nil {
				return "", err
			}
			ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(2, 4, 4))
			if err != nil {
				return "", err
			}
			d, err := distrib.New(ts, app.MapDim)
			if err != nil {
				return "", err
			}
			g, err := New(d, Options{Name: "jacobi", KernelStmt: "out[0] = 0.2*(R0[0]+R1[0]+R2[0]+R3[0]+R4[0]);"})
			if err != nil {
				return "", err
			}
			return g.Generate(), nil
		}},
		{"adi", func() (string, error) {
			app, err := apps.ADI(8, 12)
			if err != nil {
				return "", err
			}
			ts, err := tiling.Analyze(app.Nest, app.NonRect[2].H(2, 4, 4))
			if err != nil {
				return "", err
			}
			d, err := distrib.New(ts, app.MapDim)
			if err != nil {
				return "", err
			}
			g, err := New(d, Options{Name: "adi", Width: 2,
				KernelStmt: "out[0] = R0[0]; out[1] = R0[1];"})
			if err != nil {
				return "", err
			}
			return g.Generate(), nil
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src, err := c.gen()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, c.name+".c")
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-fsyntax-only",
				fmt.Sprintf("-I%s", dir), path)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("generated %s.c does not compile: %v\n%s", c.name, err, out)
			}
		})
	}
}

// TestParallelCRunsUnderMockMPI is the deepest codegen test: it compiles
// the generated MPI program against the fork-based mock MPI in
// testdata/mockmpi, executes it with one OS process per rank, and
// compares the reduced checksum against the Go parallel executor running
// the same kernel — the full §3.2 protocol validated twice, in two
// languages, over two runtimes.
func TestParallelCRunsUnderMockMPI(t *testing.T) {
	cc := requireCC(t)
	app, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(3, 7, 5))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	kernelC := "$W[0] = 0.25*$R0[0] + 0.25*$R1[0] + 0.125*$R2[0] + 0.125*$R3[0] + 0.25*$R4[0] + 1.0;"
	kernelGo := func(j ilin.Vec, reads [][]float64, out []float64) {
		out[0] = 0.25*reads[0][0] + 0.25*reads[1][0] + 0.125*reads[2][0] + 0.125*reads[3][0] + 0.25*reads[4][0] + 1.0
	}
	g, err := New(d, Options{
		Name:        "sorpar",
		KernelStmt:  replacePlaceholders(kernelC, ts.Nest.Q()),
		InitialStmt: "out[0] = 0.5;",
	})
	if err != nil {
		t.Fatal(err)
	}
	src := g.Generate()

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sorpar.c"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mockDir, err := filepath.Abs("testdata/mockmpi")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "sorpar")
	cmd := exec.Command(cc, "-O1", "-std=gnu99", "-I", mockDir,
		"-o", bin, filepath.Join(dir, "sorpar.c"), filepath.Join(mockDir, "mpi.c"))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("compile failed: %v\n%s", err, out)
	}
	run := exec.Command(bin)
	run.Env = append(os.Environ(), fmt.Sprintf("MOCK_MPI_SIZE=%d", d.NumProcs()))
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("mock-MPI run failed: %v\n%s", err, out)
	}
	// Output: "sorpar: N procs, checksum X, T s"
	fields := strings.Fields(string(out))
	var cSum float64
	found := false
	for i, f := range fields {
		if f == "checksum" && i+1 < len(fields) {
			cSum, err = strconv.ParseFloat(strings.TrimSuffix(fields[i+1], ","), 64)
			if err != nil {
				t.Fatalf("parse checksum from %q: %v", out, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no checksum in output %q", out)
	}

	prog, err := goexec.NewProgram(ts, app.MapDim, 1, kernelGo,
		func(j ilin.Vec, out []float64) { out[0] = 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	gres, _, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	var goSum float64
	prog.ScanSpace(func(j ilin.Vec) bool {
		goSum += gres.At(j)[0]
		return true
	})
	rel := math.Abs(cSum-goSum) / math.Max(1, math.Abs(goSum))
	if rel > 1e-9 {
		t.Errorf("C parallel checksum %.17g differs from Go %.17g (rel %.2e)", cSum, goSum, rel)
	}
}

// TestDSLToMockMPIPipeline is the complete compiler pipeline in one test:
// parse a two-array ADI program from the paper's loop notation, compile it
// to MPI C, execute the C under the fork-based mock MPI, and compare the
// checksum against the Go runtime executing the *same parsed program*.
func TestDSLToMockMPIPipeline(t *testing.T) {
	cc := requireCC(t)
	src := `
let T = 5
let N = 9
for t = 1 .. T
for i = 1 .. N
for j = 1 .. N
X[t,i,j] = X[t-1,i,j] + X[t-1,i,j-1]*0.05/B[t-1,i,j-1] - X[t-1,i-1,j]*0.05/B[t-1,i-1,j]
B[t,i,j] = B[t-1,i,j] - 0.05*0.05/B[t-1,i,j-1] - 0.05*0.05/B[t-1,i-1,j]
tile 1/2 0 0 / 0 1/3 0 / 0 0 1/3
map 1
`
	parsed, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(parsed.Nest, parsed.Tiling)
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, parsed.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(d, Options{
		Name:        "adidsl",
		Width:       parsed.Width,
		KernelStmt:  replacePlaceholders(parsed.KernelC, ts.Nest.Q()),
		InitialStmt: "out[0] = 1.0; out[1] = 2.0;",
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cPath := filepath.Join(dir, "adidsl.c")
	if err := os.WriteFile(cPath, []byte(g.Generate()), 0o644); err != nil {
		t.Fatal(err)
	}
	mockDir, err := filepath.Abs("testdata/mockmpi")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "adidsl")
	if out, err := exec.Command(cc, "-O1", "-std=gnu99", "-I", mockDir,
		"-o", bin, cPath, filepath.Join(mockDir, "mpi.c")).CombinedOutput(); err != nil {
		t.Fatalf("compile failed: %v\n%s", err, out)
	}
	run := exec.Command(bin)
	run.Env = append(os.Environ(), fmt.Sprintf("MOCK_MPI_SIZE=%d", d.NumProcs()))
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("mock-MPI run failed: %v\n%s", err, out)
	}
	var cSum float64
	found := false
	fields := strings.Fields(string(out))
	for i, f := range fields {
		if f == "checksum" && i+1 < len(fields) {
			cSum, err = strconv.ParseFloat(strings.TrimSuffix(fields[i+1], ","), 64)
			if err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no checksum in %q", out)
	}

	initial := func(j ilin.Vec, o []float64) { o[0], o[1] = 1, 2 }
	prog, err := goexec.NewProgram(ts, parsed.MapDim, parsed.Width, parsed.Kernel, initial)
	if err != nil {
		t.Fatal(err)
	}
	gres, _, err := prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	var goSum float64
	prog.ScanSpace(func(j ilin.Vec) bool {
		v := gres.At(j)
		goSum += v[0] + v[1]
		return true
	})
	rel := math.Abs(cSum-goSum) / math.Max(1, math.Abs(goSum))
	if rel > 1e-9 {
		t.Errorf("DSL pipeline: C %.17g vs Go %.17g (rel %.2e)", cSum, goSum, rel)
	}
}
