package codegen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/distrib"
	"tilespace/internal/tiling"
)

const (
	ompParallelPragma = "#pragma omp parallel for schedule(static) firstprivate(zv, jp)"
	ompSimdPragma     = "#pragma omp simd"
)

// jacobiOmpGen builds the OpenMP golden fixture's generator: rectangular
// Jacobi, whose skewed dependence cone leaves only the time dimension
// sequential (SeqDims = {0}) — `parallel for` lands on dimension 1, simd
// on the innermost.
func jacobiOmpGen(t *testing.T) *Generator {
	t.Helper()
	app, err := apps.Jacobi(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.Rect.H(2, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(d, Options{
		Name:       "jacobi_omp",
		Width:      1,
		KernelStmt: "out[0] = 0.2*(R0[0]+R1[0]+R2[0]+R3[0]+R4[0]);",
		OpenMP:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOpenMPPragmaPlacement: the annotation must appear exactly once,
// inside compute_tile only, on the dimension the cone derivation picks —
// and must vanish entirely when every dimension is sequential or the
// option is off.
func TestOpenMPPragmaPlacement(t *testing.T) {
	src := jacobiOmpGen(t).Generate()
	braceBalance(t, src)
	if n := strings.Count(src, ompParallelPragma); n != 1 {
		t.Fatalf("parallel pragma appears %d times, want 1", n)
	}
	if n := strings.Count(src, ompSimdPragma); n != 1 {
		t.Fatalf("simd pragma appears %d times, want 1", n)
	}
	// Both pragmas live inside compute_tile: after its opening and before
	// the next emitted function (commFns' region_count).
	ct := strings.Index(src, "static void compute_tile")
	next := strings.Index(src, "static long region_count")
	pp := strings.Index(src, ompParallelPragma)
	sp := strings.Index(src, ompSimdPragma)
	if ct < 0 || next < 0 || pp < ct || pp > next || sp < pp || sp > next {
		t.Fatalf("pragmas escaped compute_tile (compute at %d, next fn at %d, pragmas at %d/%d)", ct, next, pp, sp)
	}
	// Jacobi's sequential set is {0}: parallel for precedes the z1 loop,
	// simd the z2 loop.
	after := src[pp:]
	if line := nextCodeLine(after, ompParallelPragma); !strings.HasPrefix(line, "for (long z1") {
		t.Errorf("parallel pragma precedes %q, want the z1 loop", line)
	}
	if line := nextCodeLine(src[sp:], ompSimdPragma); !strings.HasPrefix(line, "for (long z2") {
		t.Errorf("simd pragma precedes %q, want the z2 loop", line)
	}

	// SOR's cone needs all three dimensions (SeqDims = {0,1,2}): nothing
	// to parallelize, so OpenMP mode emits no pragma at all.
	sorApp, err := apps.SOR(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tiling.Analyze(sorApp.Nest, sorApp.NonRect[0].H(2, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := distrib.New(ts, sorApp.MapDim)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(d, Options{Name: "sor", KernelStmt: "out[0] = R0[0];", OpenMP: true})
	if err != nil {
		t.Fatal(err)
	}
	if src := g.Generate(); strings.Contains(src, "#pragma omp") {
		t.Error("fully-sequential cone still emitted an omp pragma")
	}

	// Off by default.
	if src := sorGen(t).Generate(); strings.Contains(src, "#pragma omp") {
		t.Error("OpenMP pragma emitted with the option off")
	}
}

// nextCodeLine returns the first non-empty line after the given marker.
func nextCodeLine(srcFromMarker, marker string) string {
	rest := srcFromMarker[len(marker):]
	for _, line := range strings.Split(rest, "\n") {
		if s := strings.TrimSpace(line); s != "" {
			return s
		}
	}
	return ""
}

// TestOpenMPGolden pins the full OpenMP-annotated program against the
// committed fixture, so any drift in the emitter — pragma text, placement,
// loop bounds — shows up as a reviewable diff. Regenerate with
// UPDATE_GOLDEN=1.
func TestOpenMPGolden(t *testing.T) {
	src := jacobiOmpGen(t).Generate()
	golden := filepath.Join("testdata", "jacobi_openmp.c.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if src != string(want) {
		t.Errorf("generated source drifted from %s — inspect the diff and rerun with UPDATE_GOLDEN=1 if intended", golden)
	}
}

// TestOpenMPCCompiles syntax-checks the annotated program with a real
// `cc -fopenmp` when the toolchain supports it, and skips otherwise (the
// pragma-free output is covered by TestParallelCCompiles regardless).
func TestOpenMPCCompiles(t *testing.T) {
	cc := requireCC(t)
	dir := t.TempDir()
	probe := filepath.Join(dir, "probe.c")
	if err := os.WriteFile(probe, []byte("int main(void){int s=0;\n#pragma omp parallel for\nfor(int i=0;i<4;i++) s+=i;\nreturn s>=0?0:1;}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(cc, "-fopenmp", "-fsyntax-only", probe).CombinedOutput(); err != nil {
		t.Skipf("%s does not support -fopenmp: %v\n%s", cc, err, out)
	}
	if err := os.WriteFile(filepath.Join(dir, "mpi.h"), []byte(mockMPIHeader), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jacobi_omp.c")
	if err := os.WriteFile(path, []byte(jacobiOmpGen(t).Generate()), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-fopenmp", "-fsyntax-only",
		fmt.Sprintf("-I%s", dir), path)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("annotated program does not compile under -fopenmp: %v\n%s", err, out)
	}
}
