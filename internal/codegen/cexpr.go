// Package codegen emits the paper's deliverable: a complete, human-readable
// C program with MPI calls implementing the compiled tiled iteration space
// — tile-space loops with Fourier–Motzkin bounds, the §3.2 RECEIVE/SEND
// routines, map() addressing into the Local Data Space, and the final
// write-back. It also renders the compile-time analysis report the tilec
// CLI prints.
package codegen

import (
	"fmt"
	"strings"

	"tilespace/internal/poly"
	"tilespace/internal/rat"
)

// cAffine renders an affine bound as an integer C expression under ceild
// (lower bounds) or floord (upper bounds): the rational expression
// Σ (p_i/q_i)·x_i + c is scaled by the lcm L of all denominators and
// becomes {ceild,floord}(Σ a_i·x_i + c', L).
func cAffine(a poly.Affine, vars []string, ceil bool) string {
	l := a.Const.Den
	for _, c := range a.Coef {
		l = rat.Lcm64(l, c.Den)
	}
	if l == 0 {
		l = 1
	}
	terms := []string{}
	for i, c := range a.Coef {
		if c.IsZero() {
			continue
		}
		coef := c.MulInt(l).Int()
		switch coef {
		case 1:
			terms = append(terms, vars[i])
		case -1:
			terms = append(terms, "-"+vars[i])
		default:
			terms = append(terms, fmt.Sprintf("%d*%s", coef, vars[i]))
		}
	}
	if cst := a.Const.MulInt(l).Int(); cst != 0 || len(terms) == 0 {
		terms = append(terms, fmt.Sprintf("%d", cst))
	}
	expr := strings.Join(terms, " + ")
	expr = strings.ReplaceAll(expr, "+ -", "- ")
	if l == 1 {
		return expr
	}
	if ceil {
		return fmt.Sprintf("ceild(%s, %d)", expr, l)
	}
	return fmt.Sprintf("floord(%s, %d)", expr, l)
}

// cLowerBound renders max(⌈L_1⌉, …) for a variable's lower bounds.
func cLowerBound(vb poly.VarBounds, vars []string) string {
	parts := make([]string, len(vb.Lower))
	for i, a := range vb.Lower {
		parts[i] = cAffine(a, vars, true)
	}
	return nestCalls("ts_max", parts)
}

// cUpperBound renders min(⌊U_1⌋, …) for a variable's upper bounds.
func cUpperBound(vb poly.VarBounds, vars []string) string {
	parts := make([]string, len(vb.Upper))
	for i, a := range vb.Upper {
		parts[i] = cAffine(a, vars, false)
	}
	return nestCalls("ts_min", parts)
}

// nestCalls folds ["a","b","c"] into "ts_max(a, ts_max(b, c))".
func nestCalls(fn string, parts []string) string {
	switch len(parts) {
	case 0:
		return "0"
	case 1:
		return parts[0]
	default:
		return fmt.Sprintf("%s(%s, %s)", fn, parts[0], nestCalls(fn, parts[1:]))
	}
}
