package poly

import (
	"strings"
	"testing"
	"testing/quick"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

func box2(lo1, hi1, lo2, hi2 int64) *System {
	s := NewSystem(2)
	s.AddRange(0, lo1, hi1)
	s.AddRange(1, lo2, hi2)
	return s
}

func TestContains(t *testing.T) {
	s := box2(0, 3, 1, 2)
	if !s.Contains(ilin.NewVec(0, 1)) || !s.Contains(ilin.NewVec(3, 2)) {
		t.Error("corner points should be contained")
	}
	if s.Contains(ilin.NewVec(4, 1)) || s.Contains(ilin.NewVec(0, 0)) {
		t.Error("outside points should not be contained")
	}
}

func TestGEConstraint(t *testing.T) {
	// x0 ≥ 2 over one variable.
	c := GE(ilin.RatVec{rat.One}, rat.FromInt(2))
	if !c.SatisfiedBy(ilin.NewVec(2)) || !c.SatisfiedBy(ilin.NewVec(5)) {
		t.Error("GE should hold at/above the bound")
	}
	if c.SatisfiedBy(ilin.NewVec(1)) {
		t.Error("GE should fail below the bound")
	}
}

func TestLoopBoundsBox(t *testing.T) {
	nb, err := LoopBounds(box2(0, 3, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.Count(); got != 4*2 {
		t.Errorf("Count = %d, want 8", got)
	}
	lo, _ := nb.Vars[0].EvalLower(nil)
	hi, _ := nb.Vars[0].EvalUpper(nil)
	if lo != 0 || hi != 3 {
		t.Errorf("outer bounds = [%d, %d]", lo, hi)
	}
}

// Triangle {x ≥ 0, y ≥ 0, x + y ≤ 3} has 10 integer points.
func TestLoopBoundsTriangle(t *testing.T) {
	s := NewSystem(2)
	s.Add(GE(ilin.RatVec{rat.One, rat.Zero}, rat.Zero))
	s.Add(GE(ilin.RatVec{rat.Zero, rat.One}, rat.Zero))
	s.Add(NewConstraint(ilin.RatVec{rat.One, rat.One}, rat.FromInt(3)))
	nb, err := LoopBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.Count(); got != 10 {
		t.Errorf("Count = %d, want 10", got)
	}
	// Inner bound must depend on the outer variable: y ≤ 3 - x.
	hi, _ := nb.Vars[1].EvalUpper([]int64{2})
	if hi != 1 {
		t.Errorf("y upper at x=2 is %d, want 1", hi)
	}
}

// Skewed parallelogram {0 ≤ x ≤ 4, x ≤ y ≤ x + 2}: 5 columns of 3.
func TestLoopBoundsSkewed(t *testing.T) {
	s := NewSystem(2)
	s.AddRange(0, 0, 4)
	s.Add(GE(ilin.RatVec{rat.FromInt(-1), rat.One}, rat.Zero)) // y - x ≥ 0
	s.Add(NewConstraint(ilin.RatVec{rat.FromInt(-1), rat.One}, rat.FromInt(2)))
	nb, err := LoopBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.Count(); got != 15 {
		t.Errorf("Count = %d, want 15", got)
	}
	lo, _ := nb.Vars[1].EvalLower([]int64{3})
	hi, _ := nb.Vars[1].EvalUpper([]int64{3})
	if lo != 3 || hi != 5 {
		t.Errorf("inner bounds at x=3 = [%d, %d], want [3, 5]", lo, hi)
	}
}

// Rational-coefficient bounds: {0 ≤ x ≤ 5, x/2 ≤ y ≤ x/2 + 1/2} exercises
// ceilings and floors of non-integer affine bounds.
func TestLoopBoundsRationalCoefficients(t *testing.T) {
	s := NewSystem(2)
	s.AddRange(0, 0, 5)
	half := rat.New(1, 2)
	s.Add(GE(ilin.RatVec{half.Neg(), rat.One}, rat.Zero))        // y ≥ x/2
	s.Add(NewConstraint(ilin.RatVec{half.Neg(), rat.One}, half)) // y ≤ x/2 + 1/2
	nb, err := LoopBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	// x even → single y = x/2; x odd → y ∈ {⌈x/2⌉} = {(x+1)/2} (one point).
	if got := nb.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
}

func TestEmptySystems(t *testing.T) {
	s := NewSystem(1)
	s.AddRange(0, 3, 1) // 3 ≤ x ≤ 1: empty
	if !s.IsEmptyRational() {
		t.Error("3 ≤ x ≤ 1 should be empty")
	}
	if _, err := LoopBounds(s); err == nil {
		t.Error("LoopBounds should fail on empty system")
	}

	s2 := NewSystem(2)
	s2.AddRange(0, 0, 10)
	s2.AddRange(1, 0, 10)
	s2.Add(NewConstraint(ilin.RatVec{rat.One, rat.One}, rat.FromInt(-1))) // x+y ≤ -1
	if !s2.IsEmptyRational() {
		t.Error("x+y ≤ -1 in positive box should be empty")
	}
}

func TestUnboundedDetected(t *testing.T) {
	s := NewSystem(1)
	s.Add(GE(ilin.RatVec{rat.One}, rat.Zero)) // x ≥ 0 only
	if _, err := LoopBounds(s); err == nil {
		t.Error("LoopBounds should fail for unbounded variable")
	}
}

func TestEliminateProjection(t *testing.T) {
	// Project the triangle x+y ≤ 3, x,y ≥ 0 onto x: expect 0 ≤ x ≤ 3.
	s := NewSystem(2)
	s.Add(GE(ilin.RatVec{rat.One, rat.Zero}, rat.Zero))
	s.Add(GE(ilin.RatVec{rat.Zero, rat.One}, rat.Zero))
	s.Add(NewConstraint(ilin.RatVec{rat.One, rat.One}, rat.FromInt(3)))
	proj, ok := s.Eliminate(1)
	if !ok {
		t.Fatal("projection infeasible")
	}
	if !proj.Contains(ilin.NewVec(0, 99)) || !proj.Contains(ilin.NewVec(3, -50)) {
		t.Error("projection should admit 0 ≤ x ≤ 3 regardless of y")
	}
	if proj.Contains(ilin.NewVec(4, 0)) || proj.Contains(ilin.NewVec(-1, 0)) {
		t.Error("projection should reject x outside [0,3]")
	}
}

func TestFromIneqs(t *testing.T) {
	// -x ≤ 0, x ≤ 2 → x ∈ [0,2].
	a := ilin.MatFromRows([]int64{-1}, []int64{1})
	s := FromIneqs(a, ilin.NewVec(0, 2))
	nb, err := LoopBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Count() != 3 {
		t.Errorf("Count = %d, want 3", nb.Count())
	}
}

func TestSimplifyKeepsTightest(t *testing.T) {
	s := NewSystem(1)
	s.Add(NewConstraint(ilin.RatVec{rat.One}, rat.FromInt(10)))
	s.Add(NewConstraint(ilin.RatVec{rat.FromInt(2)}, rat.FromInt(8))) // x ≤ 4, tighter
	s.Add(GE(ilin.RatVec{rat.One}, rat.Zero))
	nb, err := LoopBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := nb.Vars[0].EvalUpper(nil)
	if hi != 4 {
		t.Errorf("upper = %d, want 4", hi)
	}
}

func TestAffineEvalString(t *testing.T) {
	a := Affine{Coef: ilin.RatVec{rat.New(1, 2), rat.Zero}, Const: rat.FromInt(3)}
	if got := a.Eval([]int64{4, 7}); !got.Equal(rat.FromInt(5)) {
		t.Errorf("Eval = %v", got)
	}
	if a.String() == "" || (Affine{Coef: ilin.RatVec{}, Const: rat.Zero}).String() != "0" {
		t.Error("String rendering")
	}
}

// Property: Scan visits exactly the integer points x of the box that
// satisfy a random extra half-space, matching brute force.
func TestQuickScanMatchesBruteForce(t *testing.T) {
	f := func(a1, a2 int8, rhs int8) bool {
		s := box2(-3, 3, -3, 3)
		coef := ilin.RatVec{rat.FromInt(int64(a1 % 4)), rat.FromInt(int64(a2 % 4))}
		s.Add(NewConstraint(coef, rat.FromInt(int64(rhs%8))))

		want := map[[2]int64]bool{}
		for x := int64(-3); x <= 3; x++ {
			for y := int64(-3); y <= 3; y++ {
				if s.Contains(ilin.NewVec(x, y)) {
					want[[2]int64{x, y}] = true
				}
			}
		}
		nb, err := LoopBounds(s)
		if err != nil {
			return len(want) == 0
		}
		got := map[[2]int64]bool{}
		nb.Scan(func(p ilin.Vec) bool {
			got[[2]int64{p[0], p[1]}] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: projection soundness — if (x, y) is in the system, x is in the
// eliminated system.
func TestQuickEliminateSound(t *testing.T) {
	f := func(a1, a2, rhs, px, py int8) bool {
		s := box2(-4, 4, -4, 4)
		coef := ilin.RatVec{rat.FromInt(int64(a1 % 3)), rat.FromInt(int64(a2 % 3))}
		s.Add(NewConstraint(coef, rat.FromInt(int64(rhs%6))))
		p := ilin.NewVec(int64(px%5), int64(py%5))
		if !s.Contains(p) {
			return true
		}
		proj, ok := s.Eliminate(1)
		if !ok {
			return false
		}
		return proj.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	nb, err := LoopBounds(box2(0, 9, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	nb.Scan(func(ilin.Vec) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Errorf("early stop visited %d points", seen)
	}
	if !nb.HasIntPoint() {
		t.Error("box should have integer points")
	}
}

func TestSystemString(t *testing.T) {
	s := box2(0, 1, 0, 1)
	if s.String() == "" {
		t.Error("empty String")
	}
	if (&Constraint{Coef: ilin.RatVec{rat.Zero}, Rhs: rat.Zero}).String() != "0 ≤ 0" {
		t.Error("trivial constraint String")
	}
}

func TestBoundingBox(t *testing.T) {
	// Triangle x,y ≥ 0, x + y ≤ 5: box [0,5]×[0,5].
	s := NewSystem(2)
	s.Add(GE(ilin.RatVec{rat.One, rat.Zero}, rat.Zero))
	s.Add(GE(ilin.RatVec{rat.Zero, rat.One}, rat.Zero))
	s.Add(NewConstraint(ilin.RatVec{rat.One, rat.One}, rat.FromInt(5)))
	lo, hi, err := BoundingBox(s)
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Equal(ilin.NewVec(0, 0)) || !hi.Equal(ilin.NewVec(5, 5)) {
		t.Errorf("box = %v .. %v", lo, hi)
	}
	// Empty system.
	e := NewSystem(1)
	e.AddRange(0, 3, 1)
	if _, _, err := BoundingBox(e); err == nil {
		t.Error("empty system box should fail")
	}
	// Unbounded system.
	u := NewSystem(1)
	u.Add(GE(ilin.RatVec{rat.One}, rat.Zero))
	if _, _, err := BoundingBox(u); err == nil {
		t.Error("unbounded box should fail")
	}
	// Contradiction found only after eliminating the other variable:
	// x ≥ 0, x ≤ 3, y - x ≥ 10, y + x ≤ 2.
	c := NewSystem(2)
	c.AddRange(0, 0, 3)
	c.Add(GE(ilin.RatVec{rat.FromInt(-1), rat.One}, rat.FromInt(10)))
	c.Add(NewConstraint(ilin.RatVec{rat.One, rat.One}, rat.FromInt(2)))
	if _, _, err := BoundingBox(c); err == nil {
		t.Error("inconsistent system box should fail")
	}
}

func TestNestBoundsString(t *testing.T) {
	nb, err := LoopBounds(box2(0, 2, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if s := nb.String(); s == "" || !strings.Contains(s, "x0") {
		t.Errorf("NestBounds String = %q", s)
	}
}

func TestAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	s := NewSystem(2)
	s.Add(NewConstraint(ilin.RatVec{rat.One}, rat.Zero))
}

func TestIsEmptyRationalMore(t *testing.T) {
	// Feasible full-dimensional system.
	s := box2(0, 3, 0, 3)
	if s.IsEmptyRational() {
		t.Error("box should be non-empty")
	}
	// Direct contradiction on identical coefficient vectors: x ≤ 1, x ≥ 3.
	c := NewSystem(1)
	c.Add(NewConstraint(ilin.RatVec{rat.One}, rat.One))
	c.Add(GE(ilin.RatVec{rat.One}, rat.FromInt(3)))
	if !c.IsEmptyRational() {
		t.Error("x ≤ 1 ∧ x ≥ 3 should be empty")
	}
	// Trivial infeasible constant row: 0 ≤ -1.
	z := NewSystem(1)
	z.AddRange(0, 0, 1)
	z.Add(NewConstraint(ilin.RatVec{rat.Zero}, rat.FromInt(-1)))
	if !z.IsEmptyRational() {
		t.Error("0 ≤ -1 should be empty")
	}
	// Rational point but no integer point: 1/3 ≤ x ≤ 2/3 — rationally
	// non-empty (integer emptiness is the scanner's job).
	r := NewSystem(1)
	r.Add(GE(ilin.RatVec{rat.FromInt(3)}, rat.One))
	r.Add(NewConstraint(ilin.RatVec{rat.FromInt(3)}, rat.FromInt(2)))
	if r.IsEmptyRational() {
		t.Error("1/3 ≤ x ≤ 2/3 is rationally non-empty")
	}
	if nb, err := LoopBounds(r); err == nil && nb.HasIntPoint() {
		t.Error("1/3 ≤ x ≤ 2/3 has no integer point")
	}
}
