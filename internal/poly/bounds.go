package poly

import (
	"fmt"
	"math"
	"strings"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// Affine is an affine expression Coef·x + Const over a prefix of the loop
// variables. Bounds for loop level k only reference x_0 … x_{k-1}.
type Affine struct {
	Coef  ilin.RatVec
	Const rat.Rat
}

// Eval returns the rational value of the expression at the integer prefix
// x (only the first len(Coef) entries are read; trailing zero coefficients
// are skipped).
func (a Affine) Eval(x []int64) rat.Rat {
	s := a.Const
	for i, c := range a.Coef {
		if c.IsZero() {
			continue
		}
		s = s.Add(c.MulInt(x[i]))
	}
	return s
}

func (a Affine) String() string {
	var b strings.Builder
	for i, c := range a.Coef {
		if c.IsZero() {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%v·x%d", c, i)
	}
	if b.Len() == 0 || !a.Const.IsZero() {
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(a.Const.String())
	}
	return b.String()
}

// VarBounds holds the affine lower and upper bounds of one loop variable:
//
//	x_k ≥ ⌈L(x)⌉ for every L in Lower   (effective bound: max)
//	x_k ≤ ⌊U(x)⌋ for every U in Upper   (effective bound: min)
type VarBounds struct {
	Lower []Affine
	Upper []Affine
}

// EvalLower returns max_k ⌈L_k(x)⌉; ok is false when there is no lower
// bound (the variable is unbounded below in the polyhedron).
func (vb VarBounds) EvalLower(x []int64) (int64, bool) {
	if len(vb.Lower) == 0 {
		return 0, false
	}
	best := int64(math.MinInt64)
	for _, a := range vb.Lower {
		if v := a.Eval(x).Ceil(); v > best {
			best = v
		}
	}
	return best, true
}

// EvalUpper returns min_k ⌊U_k(x)⌋; ok is false when there is no upper
// bound.
func (vb VarBounds) EvalUpper(x []int64) (int64, bool) {
	if len(vb.Upper) == 0 {
		return 0, false
	}
	best := int64(math.MaxInt64)
	for _, a := range vb.Upper {
		if v := a.Eval(x).Floor(); v < best {
			best = v
		}
	}
	return best, true
}

// NestBounds is the complete loop nest: Vars[k] bounds variable k in terms
// of variables 0 … k-1.
type NestBounds struct {
	N    int
	Vars []VarBounds
}

// LoopBounds runs Fourier–Motzkin elimination innermost-first over the
// system and returns per-level affine bounds. An error is reported when the
// rational polyhedron is detected to be empty or some variable is unbounded
// (iteration spaces must be bounded for tiling).
func LoopBounds(s *System) (*NestBounds, error) {
	cur := s.Clone()
	if !cur.simplify() {
		return nil, fmt.Errorf("poly: empty system")
	}
	nb := &NestBounds{N: s.NVars, Vars: make([]VarBounds, s.NVars)}
	for k := s.NVars - 1; k >= 0; k-- {
		vb := VarBounds{}
		for _, c := range cur.Cons {
			a := c.Coef[k]
			switch a.Sign() {
			case 1:
				// a·x_k ≤ rhs - rest → x_k ≤ (rhs - rest)/a
				coef := c.Coef.Scale(a.Inv().Neg())
				coef[k] = rat.Zero
				vb.Upper = append(vb.Upper, Affine{Coef: coef[:k].Clone(), Const: c.Rhs.Div(a)})
			case -1:
				// -|a|·x_k ≤ rhs - rest → x_k ≥ (rest - rhs)/|a|
				na := a.Neg()
				coef := c.Coef.Scale(na.Inv())
				coef[k] = rat.Zero
				vb.Lower = append(vb.Lower, Affine{Coef: coef[:k].Clone(), Const: c.Rhs.Div(na).Neg()})
			}
		}
		if len(vb.Lower) == 0 || len(vb.Upper) == 0 {
			return nil, fmt.Errorf("poly: variable x%d is unbounded", k)
		}
		nb.Vars[k] = vb
		next, ok := cur.Eliminate(k)
		if !ok {
			return nil, fmt.Errorf("poly: empty system (detected eliminating x%d)", k)
		}
		cur = next
	}
	return nb, nil
}

// Scan enumerates every integer point of the nest in lexicographic order,
// invoking fn with a reusable buffer (fn must copy the point if it retains
// it). fn returning false stops the scan early. Scan returns the number of
// points visited.
//
// Because each level's bounds come from a system that still contains all
// original constraints on that variable, every visited point satisfies the
// original system exactly; no post-filtering is needed.
func (nb *NestBounds) Scan(fn func(x ilin.Vec) bool) int64 {
	x := make(ilin.Vec, nb.N)
	var count int64
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == nb.N {
			count++
			return fn(x)
		}
		lo, okL := nb.Vars[k].EvalLower(x[:k])
		hi, okU := nb.Vars[k].EvalUpper(x[:k])
		if !okL || !okU {
			panic("poly: unbounded variable in Scan")
		}
		for v := lo; v <= hi; v++ {
			x[k] = v
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// Count returns the number of integer points in the nest.
func (nb *NestBounds) Count() int64 {
	return nb.Scan(func(ilin.Vec) bool { return true })
}

// HasIntPoint reports whether the nest contains at least one integer point.
func (nb *NestBounds) HasIntPoint() bool {
	found := false
	nb.Scan(func(ilin.Vec) bool {
		found = true
		return false
	})
	return found
}

func (nb *NestBounds) String() string {
	var b strings.Builder
	for k, vb := range nb.Vars {
		fmt.Fprintf(&b, "x%d:", k)
		for _, l := range vb.Lower {
			fmt.Fprintf(&b, "  ≥ ⌈%v⌉", l)
		}
		for _, u := range vb.Upper {
			fmt.Fprintf(&b, "  ≤ ⌊%v⌋", u)
		}
		if k < nb.N-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// BoundingBox returns per-variable integer bounds [lo_k, hi_k] of the
// rational polyhedron, by eliminating all other variables for each k. The
// box is the tightest rational shadow, rounded inward to integers.
func BoundingBox(s *System) (lo, hi ilin.Vec, err error) {
	lo = make(ilin.Vec, s.NVars)
	hi = make(ilin.Vec, s.NVars)
	for k := 0; k < s.NVars; k++ {
		cur := s.Clone()
		if !cur.simplify() {
			return nil, nil, fmt.Errorf("poly: empty system")
		}
		for j := s.NVars - 1; j >= 0; j-- {
			if j == k {
				continue
			}
			next, ok := cur.Eliminate(j)
			if !ok {
				return nil, nil, fmt.Errorf("poly: empty system (eliminating x%d)", j)
			}
			cur = next
		}
		var vb VarBounds
		for _, c := range cur.Cons {
			a := c.Coef[k]
			switch a.Sign() {
			case 1:
				vb.Upper = append(vb.Upper, Affine{Coef: nil, Const: c.Rhs.Div(a)})
			case -1:
				vb.Lower = append(vb.Lower, Affine{Coef: nil, Const: c.Rhs.Div(a.Neg()).Neg()})
			}
		}
		l, okL := vb.EvalLower(nil)
		h, okU := vb.EvalUpper(nil)
		if !okL || !okU {
			return nil, nil, fmt.Errorf("poly: variable x%d is unbounded", k)
		}
		lo[k], hi[k] = l, h
	}
	return lo, hi, nil
}
