// Package poly represents convex polyhedra {x ∈ Qⁿ : A·x ≤ b} and computes
// nested-loop bounds for their integer points via Fourier–Motzkin
// elimination.
//
// This is the machinery behind both levels of the paper's generated code:
// the n outer loops that enumerate tiles (bounds of the tile space J^S) and
// the n inner loops that sweep a tile's points, including the boundary-tile
// clamping "using inequalities describing the original iteration space"
// (§2.3). Eliminating variables innermost-first yields, for every loop
// level k, a set of affine lower/upper bounds in the outer variables; a
// scan that takes max-of-ceilings and min-of-floors enumerates exactly the
// integer points of the polyhedron.
package poly

import (
	"fmt"
	"sort"
	"strings"

	"tilespace/internal/ilin"
	"tilespace/internal/rat"
)

// Constraint is a single linear inequality Coef·x ≤ Rhs.
type Constraint struct {
	Coef ilin.RatVec
	Rhs  rat.Rat
}

// NewConstraint builds Coef·x ≤ Rhs, copying the coefficient vector.
func NewConstraint(coef ilin.RatVec, rhs rat.Rat) Constraint {
	return Constraint{Coef: coef.Clone(), Rhs: rhs}
}

// GE builds the inequality Coef·x ≥ Rhs in ≤ form.
func GE(coef ilin.RatVec, rhs rat.Rat) Constraint {
	return Constraint{Coef: coef.Scale(rat.FromInt(-1)), Rhs: rhs.Neg()}
}

// normalize scales the constraint by a positive rational so the
// coefficients become integers with gcd 1; direction is preserved. Returns
// the canonical form used for deduplication.
func (c Constraint) normalize() Constraint {
	// lcm of denominators, then gcd of numerators.
	l := int64(1)
	for _, x := range c.Coef {
		l = rat.Lcm64(l, x.Den)
	}
	l = rat.Lcm64(l, c.Rhs.Den)
	if l == 0 {
		l = 1
	}
	g := int64(0)
	scaled := make(ilin.RatVec, len(c.Coef))
	for i, x := range c.Coef {
		scaled[i] = x.MulInt(l)
		g = rat.Gcd64(g, scaled[i].Num)
	}
	rhs := c.Rhs.MulInt(l)
	if g == 0 {
		// Trivial constraint 0 ≤ rhs; keep rhs sign only.
		switch c.Rhs.Sign() {
		case -1:
			return Constraint{Coef: scaled, Rhs: rat.FromInt(-1)}
		default:
			return Constraint{Coef: scaled, Rhs: rat.Zero}
		}
	}
	for i := range scaled {
		scaled[i] = rat.New(scaled[i].Num/g, 1)
	}
	return Constraint{Coef: scaled, Rhs: rat.New(rhs.Num, rhs.Den*g)}
}

// isTrivial reports whether the constraint has all-zero coefficients;
// feasible indicates whether it is then satisfiable.
func (c Constraint) isTrivial() (trivial, feasible bool) {
	if !c.Coef.IsZero() {
		return false, true
	}
	return true, c.Rhs.Sign() >= 0
}

// Eval returns Coef·x - Rhs ≤ 0 residual sign: negative or zero means x
// satisfies the constraint.
func (c Constraint) Eval(x ilin.RatVec) rat.Rat {
	return c.Coef.Dot(x).Sub(c.Rhs)
}

// SatisfiedBy reports whether the integer point x satisfies the constraint.
func (c Constraint) SatisfiedBy(x ilin.Vec) bool {
	return c.Eval(x.Rat()).Sign() <= 0
}

func (c Constraint) String() string {
	var b strings.Builder
	first := true
	for i, x := range c.Coef {
		if x.IsZero() {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%v·x%d", x, i)
		first = false
	}
	if first {
		b.WriteString("0")
	}
	fmt.Fprintf(&b, " ≤ %v", c.Rhs)
	return b.String()
}

// System is a conjunction of linear inequalities over NVars variables.
type System struct {
	NVars int
	Cons  []Constraint
}

// NewSystem returns an empty system over n variables.
func NewSystem(n int) *System { return &System{NVars: n} }

// FromIneqs builds the system A·x ≤ b from an integer matrix and vector.
func FromIneqs(a *ilin.Mat, b ilin.Vec) *System {
	if a.Rows != len(b) {
		panic("poly: FromIneqs shape mismatch")
	}
	s := NewSystem(a.Cols)
	for i := 0; i < a.Rows; i++ {
		s.Add(NewConstraint(a.Row(i).Rat(), rat.FromInt(b[i])))
	}
	return s
}

// Add appends a constraint; the coefficient length must match NVars.
func (s *System) Add(c Constraint) {
	if len(c.Coef) != s.NVars {
		panic(fmt.Sprintf("poly: constraint arity %d != system arity %d", len(c.Coef), s.NVars))
	}
	s.Cons = append(s.Cons, c)
}

// AddRange adds lo ≤ x_k ≤ hi.
func (s *System) AddRange(k int, lo, hi int64) {
	cl := make(ilin.RatVec, s.NVars)
	for i := range cl {
		cl[i] = rat.Zero
	}
	cu := cl.Clone()
	cl[k] = rat.FromInt(-1)
	cu[k] = rat.One
	s.Add(Constraint{Coef: cl, Rhs: rat.FromInt(-lo)})
	s.Add(Constraint{Coef: cu, Rhs: rat.FromInt(hi)})
}

// Clone returns a deep copy.
func (s *System) Clone() *System {
	out := NewSystem(s.NVars)
	out.Cons = make([]Constraint, len(s.Cons))
	for i, c := range s.Cons {
		out.Cons[i] = Constraint{Coef: c.Coef.Clone(), Rhs: c.Rhs}
	}
	return out
}

// Contains reports whether the integer point x satisfies every constraint.
func (s *System) Contains(x ilin.Vec) bool {
	for _, c := range s.Cons {
		if !c.SatisfiedBy(x) {
			return false
		}
	}
	return true
}

// simplify normalizes all constraints, removes duplicates, keeps only the
// tightest rhs per coefficient vector, and detects trivially infeasible
// rows. It returns false if the system is certainly infeasible.
func (s *System) simplify() bool {
	type key string
	best := map[key]Constraint{}
	order := []key{}
	for _, c := range s.Cons {
		n := c.normalize()
		if triv, feas := n.isTrivial(); triv {
			if !feas {
				return false
			}
			continue
		}
		k := key(n.Coef.String())
		if prev, ok := best[k]; ok {
			if n.Rhs.Cmp(prev.Rhs) < 0 {
				best[k] = n
			}
		} else {
			best[k] = n
			order = append(order, k)
		}
	}
	// Detect direct contradictions c·x ≤ r1 and -c·x ≤ r2 with r1+r2 < 0.
	for _, k := range order {
		c := best[k]
		nk := key(c.Coef.Scale(rat.FromInt(-1)).String())
		if opp, ok := best[nk]; ok {
			if c.Rhs.Add(opp.Rhs).Sign() < 0 {
				return false
			}
		}
	}
	s.Cons = s.Cons[:0]
	for _, k := range order {
		s.Cons = append(s.Cons, best[k])
	}
	return true
}

// Eliminate removes variable k by Fourier–Motzkin combination, returning a
// new system over the same variable indexing where x_k no longer appears.
// The projection is exact over the rationals. The boolean result is false
// if the system was detected infeasible during simplification.
func (s *System) Eliminate(k int) (*System, bool) {
	var pos, neg, zero []Constraint
	for _, c := range s.Cons {
		switch c.Coef[k].Sign() {
		case 1:
			pos = append(pos, c)
		case -1:
			neg = append(neg, c)
		default:
			zero = append(zero, c)
		}
	}
	out := NewSystem(s.NVars)
	out.Cons = append(out.Cons, zero...)
	for _, p := range pos {
		for _, n := range neg {
			// p: a·x + α·x_k ≤ r1 (α>0) → x_k ≤ (r1 - a·x)/α
			// n: b·x - β·x_k ≤ r2 (β>0) → x_k ≥ (b·x - r2)/β
			// combine: β·(a·x) + α·(b·x) ≤ β·r1 + α·r2
			alpha := p.Coef[k]
			beta := n.Coef[k].Neg()
			coef := p.Coef.Scale(beta).Add(n.Coef.Scale(alpha))
			coef[k] = rat.Zero
			rhs := p.Rhs.Mul(beta).Add(n.Rhs.Mul(alpha))
			out.Cons = append(out.Cons, Constraint{Coef: coef, Rhs: rhs})
		}
	}
	ok := out.simplify()
	return out, ok
}

// IsEmptyRational reports whether the rational relaxation of the system is
// empty, by eliminating every variable and checking for contradictions.
func (s *System) IsEmptyRational() bool {
	cur := s.Clone()
	if !cur.simplify() {
		return true
	}
	for k := s.NVars - 1; k >= 0; k-- {
		next, ok := cur.Eliminate(k)
		if !ok {
			return true
		}
		cur = next
	}
	for _, c := range cur.Cons {
		if triv, feas := c.isTrivial(); triv && !feas {
			return true
		}
	}
	return false
}

func (s *System) String() string {
	parts := make([]string, len(s.Cons))
	for i, c := range s.Cons {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}
