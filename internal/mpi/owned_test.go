package mpi

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestSendOwnedTransfersOwnership: the receiver must get the sender's
// exact backing array, with no snapshot copy in between.
func TestSendOwnedTransfersOwnership(t *testing.T) {
	w := NewWorld(2)
	var sent, got []float64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			sent = []float64{1, 2, 3}
			c.SendOwned(1, 7, sent)
		case 1:
			got = c.Recv(0, 7)
		}
	})
	//lint:ignore ownedbuf reading sent after transfer is the aliasing assertion itself
	if len(got) != 3 || &got[0] != &sent[0] {
		t.Fatalf("Recv returned a different backing array (copy made)")
	}
	st := w.Stats()
	if st.Messages != 1 || st.Values != 3 || st.BlockingSends != 1 {
		t.Fatalf("stats %+v, want 1 blocking message of 3 values", st)
	}
}

// TestIsendOwnedTransfersOwnership: same for the non-blocking path, and
// the payload must arrive intact and in order with respect to later
// owned Isends on the same stream.
func TestIsendOwnedTransfersOwnership(t *testing.T) {
	w := NewWorld(2)
	var first []float64
	var order []float64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			first = []float64{10}
			r1 := c.IsendOwned(1, 3, first)
			r2 := c.IsendOwned(1, 3, []float64{20})
			r1.Wait()
			r2.Wait()
		case 1:
			a := c.Recv(0, 3)
			b := c.Recv(0, 3)
			order = append(order, a[0], b[0])
			if &a[0] != &first[0] {
				// first may not be assigned yet from rank 1's goroutine;
				// aliasing is checked after Run below via the slice itself.
				_ = a
			}
		}
	})
	if len(order) != 2 || order[0] != 10 || order[1] != 20 {
		t.Fatalf("owned Isends delivered out of order: %v", order)
	}
	st := w.Stats()
	if st.OverlappedSends != 2 || st.BlockingSends != 0 {
		t.Fatalf("stats %+v, want 2 overlapped sends", st)
	}
}

// TestOnCompleteSend: the hook must fire exactly once after delivery, and
// immediately when registered on an already-complete request.
func TestOnCompleteSend(t *testing.T) {
	w := NewWorld(2)
	var fired atomic.Int64
	var late atomic.Int64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			r := c.IsendOwned(1, 1, []float64{42})
			r.OnComplete(func() { fired.Add(1) })
			r.Wait()
			// Registration after completion runs synchronously.
			r.OnComplete(func() { late.Add(1) })
			if late.Load() != 1 {
				panic("late OnComplete did not run immediately")
			}
		case 1:
			c.Recv(0, 1)
		}
	})
	// The hook runs on the NIC goroutine; Wait() returning guarantees
	// delivery happened, and fireComplete runs right after close(done).
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fired.Load() != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", fired.Load())
	}
}

// TestOnCompleteRecv: hooks on receive requests fire when the message is
// claimed via Wait or Test.
func TestOnCompleteRecv(t *testing.T) {
	w := NewWorld(2)
	var fired atomic.Int64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 2, []float64{1})
		case 1:
			r := c.Irecv(0, 2)
			r.OnComplete(func() { fired.Add(1) })
			if got := r.Wait(); len(got) != 1 || got[0] != 1 {
				panic("bad payload")
			}
			r.Wait() // idempotent; must not re-fire
		}
	})
	if fired.Load() != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", fired.Load())
	}
}
