package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire framing for the TCP transport. Every frame is a 4-byte
// little-endian length prefix (byte count of what follows), a one-byte
// kind, and a kind-specific body:
//
//	data      u32 epoch · i32 tag · u64 seq · u32 nvals · nvals × f64
//	hello     i32 src · i32 dst                       (dialer → accepter, once per connect)
//	welcome   u32 n · n × (i32 tag · u64 count)       (accepter → dialer reply: frames accepted per stream)
//	heartbeat u64 progress · u8 busy                  (liveness for the cross-process watchdog)
//	epoch     u32 epoch                               (Reset quiesce marker)
//
// The (src, dst) link identity is established once by hello and implied
// for every later frame on the connection, so steady-state data frames
// carry only the 21-byte envelope. seq numbers the data frames of one
// (src, dst, tag) stream from 0 in send order — the resume protocol's
// coordinate: a welcome tells the dialer how far each stream got, the
// dialer resends retained frames from there and suppresses regenerated
// ones below it, and the reader drops the duplicates that remain.
const (
	frameData      byte = 1
	frameHello     byte = 2
	frameWelcome   byte = 3
	frameHeartbeat byte = 4
	frameEpoch     byte = 5
)

// maxFrameBody bounds a frame body read from the network (64 MiB —
// far above any tile halo, small enough to fail fast on corruption).
const maxFrameBody = 64 << 20

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI32(b []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(int32(v)))
}

// encodeDataFrame builds a complete data frame (length prefix included).
func encodeDataFrame(epoch uint32, tag int, seq uint64, data []float64) []byte {
	body := 1 + 4 + 4 + 8 + 4 + 8*len(data)
	b := make([]byte, 0, 4+body)
	b = appendU32(b, uint32(body))
	b = append(b, frameData)
	b = appendU32(b, epoch)
	b = appendI32(b, tag)
	b = appendU64(b, seq)
	b = appendU32(b, uint32(len(data)))
	for _, v := range data {
		b = appendU64(b, math.Float64bits(v))
	}
	return b
}

func encodeHelloFrame(src, dst int) []byte {
	b := make([]byte, 0, 4+9)
	b = appendU32(b, 9)
	b = append(b, frameHello)
	b = appendI32(b, src)
	b = appendI32(b, dst)
	return b
}

func encodeWelcomeFrame(counts map[int]uint64) []byte {
	body := 1 + 4 + 12*len(counts)
	b := make([]byte, 0, 4+body)
	b = appendU32(b, uint32(body))
	b = append(b, frameWelcome)
	b = appendU32(b, uint32(len(counts)))
	for tag, n := range counts {
		b = appendI32(b, tag)
		b = appendU64(b, n)
	}
	return b
}

func encodeHeartbeatFrame(progress uint64, busy bool) []byte {
	b := make([]byte, 0, 4+10)
	b = appendU32(b, 10)
	b = append(b, frameHeartbeat)
	b = appendU64(b, progress)
	if busy {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func encodeEpochFrame(epoch uint32) []byte {
	b := make([]byte, 0, 4+5)
	b = appendU32(b, 5)
	b = append(b, frameEpoch)
	b = appendU32(b, epoch)
	return b
}

// readFrame reads one complete frame body (kind byte first) from r.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBody {
		return nil, fmt.Errorf("mpi: frame body length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

type dataFrame struct {
	epoch uint32
	tag   int
	seq   uint64
	data  []float64
}

func decodeDataFrame(body []byte) (dataFrame, error) {
	var f dataFrame
	if len(body) < 1+4+4+8+4 {
		return f, fmt.Errorf("mpi: short data frame (%d bytes)", len(body))
	}
	b := body[1:]
	f.epoch = binary.LittleEndian.Uint32(b)
	f.tag = int(int32(binary.LittleEndian.Uint32(b[4:])))
	f.seq = binary.LittleEndian.Uint64(b[8:])
	nvals := binary.LittleEndian.Uint32(b[16:])
	b = b[20:]
	// Compare in 64 bits: 8*nvals wraps uint32 for nvals ≥ 2^29, which
	// would let a corrupt header pass the check and drive a giant
	// allocation below.
	if uint64(len(b)) != 8*uint64(nvals) {
		return f, fmt.Errorf("mpi: data frame payload %d bytes, want %d values", len(b), nvals)
	}
	if nvals > 0 {
		f.data = make([]float64, nvals)
		for i := range f.data {
			f.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	return f, nil
}

func decodeHelloFrame(body []byte) (src, dst int, err error) {
	if len(body) != 9 {
		return 0, 0, fmt.Errorf("mpi: hello frame %d bytes, want 9", len(body))
	}
	src = int(int32(binary.LittleEndian.Uint32(body[1:])))
	dst = int(int32(binary.LittleEndian.Uint32(body[5:])))
	return src, dst, nil
}

func decodeWelcomeFrame(body []byte) (map[int]uint64, error) {
	if len(body) < 5 {
		return nil, fmt.Errorf("mpi: short welcome frame (%d bytes)", len(body))
	}
	n := binary.LittleEndian.Uint32(body[1:])
	b := body[5:]
	// Compare in 64 bits: 12*n wraps uint32 for n ≥ 2^28+…, which would
	// let a corrupt header pass the check and index past the body.
	if uint64(len(b)) != 12*uint64(n) {
		return nil, fmt.Errorf("mpi: welcome frame %d bytes for %d streams", len(body), n)
	}
	counts := make(map[int]uint64, n)
	for i := uint32(0); i < n; i++ {
		tag := int(int32(binary.LittleEndian.Uint32(b[12*i:])))
		counts[tag] = binary.LittleEndian.Uint64(b[12*i+4:])
	}
	return counts, nil
}

func decodeHeartbeatFrame(body []byte) (progress uint64, busy bool, err error) {
	if len(body) != 10 {
		return 0, false, fmt.Errorf("mpi: heartbeat frame %d bytes, want 10", len(body))
	}
	return binary.LittleEndian.Uint64(body[1:]), body[9] != 0, nil
}

func decodeEpochFrame(body []byte) (uint32, error) {
	if len(body) != 5 {
		return 0, fmt.Errorf("mpi: epoch frame %d bytes, want 5", len(body))
	}
	return binary.LittleEndian.Uint32(body[1:]), nil
}
