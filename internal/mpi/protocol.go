package mpi

import "sort"

// This file is the resume protocol's decision core: every choice the TCP
// mesh makes about sequence numbers, retained-frame resends, sender-side
// suppression, receiver-side dedup/gap detection, epoch filtering and
// heartbeat liveness lives here as a pure state transition with no
// sockets, goroutines or locks. tcp.go drives these cores from the real
// transport (each guarded by its link's mutex); verify/wirecheck drives
// the very same cores from an exhaustive model checker that explores
// every interleaving of sends, deliveries, connection drops, duplicated
// frames, crash-relaunches and epoch resets on small configurations —
// so the no-loss / no-duplication / per-stream-FIFO / reset-safety
// guarantees the chaos suites sample are instead *proved*, about the
// exact code the wire runs.
//
// ProtocolRules carries deliberate mutation knobs. The zero value is the
// shipped protocol and the only value the transport ever uses; wirecheck
// flips each knob and proves the mutated protocol loses or duplicates
// frames, with a minimal counterexample trace — certifying that every
// decision point below is load-bearing.

// ProtocolRules parameterizes the resume protocol's decision points.
// The zero value is the correct, shipped protocol. Each knob re-creates
// a plausible implementation bug; verify/wirecheck proves each one
// violates the protocol's guarantees on a concrete interleaving.
type ProtocolRules struct {
	// NoDedup removes receiver-side duplicate detection: a frame whose
	// sequence number was already accepted is delivered again.
	NoDedup bool
	// ResendOffByOne turns the reconnect resend rule from seq >= accepted
	// into seq > accepted, silently dropping the first missing frame of
	// every stream.
	ResendOffByOne bool
	// OverSuppress turns sender-side suppression from seq < accepted into
	// seq <= accepted, suppressing one frame the peer never received.
	OverSuppress bool
	// NoEpochFilter removes the receiver's stale-epoch filter: frames
	// from a previous run's epoch are accepted into the current run.
	NoEpochFilter bool
}

// Retained is one data frame in a sender's retain-until-acknowledged
// archive. Payload is opaque to the core: the transport stores its
// encoded wireFrame, the model checker stores nothing.
type Retained struct {
	Tag     int
	Seq     uint64
	Payload any
}

// SendCore is the sender half of one directed link's resume protocol:
// per-tag sequence stamping, the retained archive, the receiver's
// acknowledged counts from the last handshake, and the resend /
// suppression decisions derived from them. It is pure state — the
// transport serializes access with the link mutex, the model checker
// copies it freely.
type SendCore struct {
	rules    ProtocolRules
	next     map[int]uint64 // next fresh sequence per tag
	peer     map[int]uint64 // receiver's accepted counts at last welcome (nil before any)
	retained []Retained     // transmitted data frames, in stamp order
}

// NewSendCore returns a fresh sender core (every stream at sequence 0,
// no handshake observed, nothing retained).
func NewSendCore(rules ProtocolRules) *SendCore {
	return &SendCore{rules: rules, next: map[int]uint64{}}
}

// Stamp assigns the next sequence number on the tag's stream. Frames on
// one (src, dst, tag) stream are numbered consecutively from 0 in send
// order — the coordinate the whole resume protocol settles on.
func (s *SendCore) Stamp(tag int) uint64 {
	seq := s.next[tag]
	s.next[tag] = seq + 1
	return seq
}

// Retain archives a stamped frame until a handshake acknowledges it;
// reconnects resend from this archive. Call in stamp order per stream.
func (s *SendCore) Retain(tag int, seq uint64, payload any) {
	s.retained = append(s.retained, Retained{Tag: tag, Seq: seq, Payload: payload})
}

// ShouldTransmit decides sender-side suppression: a frame the receiver
// has already acknowledged (seq below the last welcome's accepted count)
// is regenerated traffic — checkpointed re-execution re-stamping old
// sends — and is skipped at the writer instead of burning wire bytes
// only to be deduplicated at the far end. Before any handshake every
// frame transmits.
func (s *SendCore) ShouldTransmit(tag int, seq uint64) bool {
	if s.peer == nil {
		return true
	}
	if s.rules.OverSuppress {
		return seq > s.peer[tag]
	}
	return seq >= s.peer[tag]
}

// ObserveWelcome records the receiver's per-stream accepted counts from
// a hello → welcome handshake; subsequent ShouldTransmit and ResendPlan
// decisions are made against them.
func (s *SendCore) ObserveWelcome(counts map[int]uint64) {
	s.peer = make(map[int]uint64, len(counts))
	for tag, n := range counts {
		s.peer[tag] = n
	}
}

// ResendPlan selects the retained frames the last welcome says the peer
// has not accepted, in stamp order: exactly the frames a reconnect must
// redeliver for no-loss to hold.
func (s *SendCore) ResendPlan() []Retained {
	var out []Retained
	for _, fr := range s.retained {
		lim := s.peer[fr.Tag]
		keep := fr.Seq >= lim
		if s.rules.ResendOffByOne {
			keep = fr.Seq > lim
		}
		if keep {
			out = append(out, fr)
		}
	}
	return out
}

// RetainedFrames returns the archive (shared backing; callers must not
// mutate). The transport uses it to settle custody accounting after a
// resend pass.
func (s *SendCore) RetainedFrames() []Retained { return s.retained }

// SeedSent seeds one outbound stream's sequence counter from a
// checkpoint (RestoreSentStreams): sends regenerated by deterministic
// re-execution are stamped as their originals were, so receiver dedup
// and sender suppression remove every duplicate.
func (s *SendCore) SeedSent(tag int, count uint64) { s.next[tag] = count }

// SentCounts snapshots the per-tag sent counts (streams with traffic
// only), sorted by tag — the outbound half of a rank checkpoint.
func (s *SendCore) SentCounts() []StreamPos {
	out := make([]StreamPos, 0, len(s.next))
	for tag, n := range s.next {
		if n > 0 {
			out = append(out, StreamPos{Tag: tag, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// NextSeq reports the next sequence the tag's stream would stamp.
func (s *SendCore) NextSeq(tag int) uint64 { return s.next[tag] }

// PeerCount reports the accepted count the last welcome advertised for
// tag; ok is false before any handshake.
func (s *SendCore) PeerCount(tag int) (uint64, bool) {
	if s.peer == nil {
		return 0, false
	}
	return s.peer[tag], true
}

// ResetEpoch returns the core to its just-constructed state: stream
// sequences restart at zero, the archive is dropped (an epoch reset
// means the previous run's frames no longer need delivery) and the
// handshake state is forgotten.
func (s *SendCore) ResetEpoch() {
	s.next = map[int]uint64{}
	s.peer = nil
	s.retained = nil
}

// Clone deep-copies the core (model-checker state forking). Payloads
// are shared — they are opaque and immutable to the core.
func (s *SendCore) Clone() *SendCore {
	c := &SendCore{rules: s.rules, next: make(map[int]uint64, len(s.next))}
	for k, v := range s.next {
		c.next[k] = v
	}
	if s.peer != nil {
		c.peer = make(map[int]uint64, len(s.peer))
		for k, v := range s.peer {
			c.peer[k] = v
		}
	}
	c.retained = append([]Retained(nil), s.retained...)
	return c
}

// RecvVerdict is the receiver core's decision about one arriving data
// frame.
type RecvVerdict int

const (
	// VerdictAccept delivers the frame to the mailbox and advances the
	// stream's accepted count.
	VerdictAccept RecvVerdict = iota
	// VerdictDuplicate drops a frame whose sequence was already
	// accepted (a resend or regenerated send the suppression missed).
	VerdictDuplicate
	// VerdictStale drops a frame stamped by a dead epoch (pre-Reset
	// traffic still in flight).
	VerdictStale
	// VerdictGap rejects a frame arriving above the accepted watermark:
	// an earlier frame of the stream was lost without a reconnect to
	// recover it, so the link must fail rather than reorder.
	VerdictGap
)

func (v RecvVerdict) String() string {
	switch v {
	case VerdictAccept:
		return "accept"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictStale:
		return "stale"
	case VerdictGap:
		return "gap"
	default:
		return "unknown"
	}
}

// RecvCore is the receiver half of one directed link's resume protocol:
// the per-tag accepted watermarks that drive dedup, gap detection and
// the welcome handshake's advertised counts.
type RecvCore struct {
	rules    ProtocolRules
	accepted map[int]uint64
}

// NewRecvCore returns a fresh receiver core (nothing accepted).
func NewRecvCore(rules ProtocolRules) *RecvCore {
	return &RecvCore{rules: rules, accepted: map[int]uint64{}}
}

// Accept runs the dedup / ordering / epoch protocol for one arriving
// data frame and, on VerdictAccept, advances the stream watermark.
// frameEpoch is the epoch stamped into the frame; meshEpoch is the
// receiver's current epoch.
func (r *RecvCore) Accept(frameEpoch, meshEpoch uint32, tag int, seq uint64) RecvVerdict {
	if frameEpoch != meshEpoch && !r.rules.NoEpochFilter {
		return VerdictStale
	}
	expect := r.accepted[tag]
	if seq < expect {
		if r.rules.NoDedup {
			return VerdictAccept
		}
		return VerdictDuplicate
	}
	if seq > expect {
		return VerdictGap
	}
	r.accepted[tag] = expect + 1
	return VerdictAccept
}

// WelcomeCounts snapshots the per-stream accepted counts a welcome
// frame advertises to a (re)connecting sender.
func (r *RecvCore) WelcomeCounts() map[int]uint64 {
	out := make(map[int]uint64, len(r.accepted))
	for tag, n := range r.accepted {
		out[tag] = n
	}
	return out
}

// SeedAccepted seeds one stream's accepted watermark from a checkpoint
// (RestoreRecvStreams): the next welcome advertises it, so live peers
// resend exactly what this process consumed nothing of.
func (r *RecvCore) SeedAccepted(tag int, count uint64) { r.accepted[tag] = count }

// Accepted reports the stream's accepted watermark.
func (r *RecvCore) Accepted(tag int) uint64 { return r.accepted[tag] }

// ResetEpoch clears every accepted watermark: the next run's streams
// restart at sequence zero.
func (r *RecvCore) ResetEpoch() { r.accepted = map[int]uint64{} }

// Clone deep-copies the core.
func (r *RecvCore) Clone() *RecvCore {
	c := &RecvCore{rules: r.rules, accepted: make(map[int]uint64, len(r.accepted))}
	for k, v := range r.accepted {
		c.accepted[k] = v
	}
	return c
}

// BeatCore decides heartbeat liveness: a beacon whose progress counter
// moved since the last observation — or that reports live wire or
// compute activity — is evidence the peer process is alive, which the
// transport converts into watchdog progress.
type BeatCore struct {
	seen bool
	last uint64
}

// Observe folds one heartbeat in and reports whether it constitutes
// liveness progress.
func (b *BeatCore) Observe(progress uint64, busy bool) bool {
	changed := !b.seen || progress != b.last
	b.seen = true
	b.last = progress
	return changed || busy
}
