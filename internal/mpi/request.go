package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request is the completion handle of a non-blocking operation, the
// analogue of MPI_Request. A send Request completes when the rank's NIC
// has delivered the message; a receive Request completes when its message
// has been matched and taken. Wait and Test are safe to call repeatedly;
// after the first successful completion they return the cached result.
//
// Ordering: Isends issued by one rank are transmitted by a single
// background NIC goroutine in issue order, so per-(source, tag) FIFO
// delivery holds among Isends, and among blocking Sends — but not between
// a blocking Send and a still-in-flight earlier Isend on the same stream.
// Programs that mix both on one stream must Wait on the Isend first.
type Request struct {
	c    *Comm
	send bool
	peer int // dst for sends, src for receives
	tag  int

	// send completion
	done chan struct{}

	// receive resolution: resolveMu serializes concurrent Wait/Test claims
	// of the ticket; mu guards the published result and completion hooks.
	resolveMu sync.Mutex
	mu        sync.Mutex
	ticket    uint64
	got       bool
	data      []float64

	// dropped marks a send request whose message was discarded before
	// delivery by Comm.DropPending (crash simulation). Set once, before
	// done is closed, so any Wait/Test that observes completion also
	// observes the final Dropped answer.
	dropped atomic.Bool

	// completion hooks (see OnComplete)
	fired bool
	cbs   []func()
}

// Dropped reports whether this send request's message was discarded
// undelivered by Comm.DropPending. It is final once the request has
// completed (done closed): a completed request was either delivered or
// dropped, never both. Always false for receive requests.
func (r *Request) Dropped() bool { return r.dropped.Load() }

// OnComplete registers fn to run exactly once when the request completes:
// for sends, right after the NIC delivers the message (fn runs on the NIC
// goroutine); for receives, when the message is claimed by Wait or a
// successful Test (fn runs on the caller). A request that is already
// complete runs fn immediately. This is the buffer-recycling hook pooled
// executors use to reap in-flight Isends without blocking in Wait.
func (r *Request) OnComplete(fn func()) {
	r.mu.Lock()
	if r.fired {
		r.mu.Unlock()
		fn()
		return
	}
	r.cbs = append(r.cbs, fn)
	r.mu.Unlock()
}

// fireComplete runs and clears the registered completion callbacks;
// subsequent OnComplete calls run immediately.
func (r *Request) fireComplete() {
	r.mu.Lock()
	if r.fired {
		r.mu.Unlock()
		return
	}
	r.fired = true
	cbs := r.cbs
	r.cbs = nil
	r.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// nicItem is one queued outbound transfer.
type nicItem struct {
	dst, tag int
	data     []float64
	req      *Request
}

// nicQueue is a rank's outbound transfer queue, drained in order by one
// background goroutine (the "NIC"): Isend never blocks the caller, and
// any injected wire cost is paid off the compute path. busy is true while
// the NIC goroutine is transmitting a popped item — DropPending waits for
// it so delivered-vs-dropped status is final when DropPending returns.
type nicQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []nicItem
	busy   bool
	closed bool
	done   chan struct{}
}

// startNIC lazily creates the rank's NIC queue and goroutine.
func (c *Comm) startNIC() *nicQueue {
	c.nicMu.Lock()
	defer c.nicMu.Unlock()
	if c.nic == nil {
		q := &nicQueue{done: make(chan struct{})}
		q.cond = sync.NewCond(&q.mu)
		c.nic = q
		go c.nicLoop(q)
	}
	return c.nic
}

func (c *Comm) nicLoop(q *nicQueue) {
	defer close(q.done)
	for {
		q.mu.Lock()
		q.busy = false
		q.cond.Broadcast()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 {
			q.mu.Unlock()
			return
		}
		it := q.items[0]
		q.items = q.items[1:]
		q.busy = true
		q.mu.Unlock()
		// Transfer cost (and any injected fault) runs here, concurrent with
		// the rank's compute; skip it when tearing down after a failure.
		c.world.injectSendFaults(c.rank, it.dst)
		if d := c.world.wireDelay(len(it.data)); d > 0 && !c.world.aborted.Load() {
			time.Sleep(d)
		}
		c.world.deliver(c.rank, it.dst, it.tag, it.data, true)
		c.world.nicBusy.Add(-1)
		close(it.req.done)
		it.req.fireComplete()
	}
}

// DropPending simulates a NIC failure at a crash point: it synchronously
// discards this rank's queued, not-yet-transmitting Isends and returns
// how many were dropped. The transfer in flight (if any) is allowed to
// finish first — the NIC delivers in issue order, so when DropPending
// returns, the rank's issued Isends split cleanly into a delivered prefix
// and a dropped suffix, each request answering Dropped() definitively.
// Replaying exactly the dropped suffix therefore preserves per-stream
// FIFO order. Dropped requests complete (done closed, OnComplete hooks
// fired) so pooled buffers are still recycled and Waitall never hangs.
func (c *Comm) DropPending() int {
	c.nicMu.Lock()
	q := c.nic
	c.nicMu.Unlock()
	if q == nil {
		return 0
	}
	q.mu.Lock()
	items := q.items
	q.items = nil
	for q.busy {
		q.cond.Wait()
	}
	q.mu.Unlock()
	for _, it := range items {
		it.req.dropped.Store(true)
		c.world.nicBusy.Add(-1)
		close(it.req.done)
		it.req.fireComplete()
	}
	return len(items)
}

// flushNIC drains outstanding Isends and stops the NIC goroutine; RunE
// calls it when the rank function returns, so all issued messages are
// counted in Stats even if the program never Waited on them.
func (c *Comm) flushNIC() {
	c.nicMu.Lock()
	q := c.nic
	c.nicMu.Unlock()
	if q == nil {
		return
	}
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
	<-q.done
}

// Isend starts a non-blocking send of a copy of data to dst and returns
// its Request. The caller may reuse data immediately.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	buf := make([]float64, len(data))
	copy(buf, data)
	return c.IsendOwned(dst, tag, buf)
}

// IsendOwned is Isend without the snapshot copy: ownership of data
// transfers to the rank's NIC and, on delivery, to the receiver (whose
// Recv returns the very same slice). The caller must not touch data after
// the call — not even after Wait. Use Request.OnComplete to learn when the
// transfer has left the sender. Ordering and Stats are identical to Isend.
func (c *Comm) IsendOwned(dst, tag int, data []float64) *Request {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.checkRank(dst)
	req := &Request{c: c, send: true, peer: dst, tag: tag, done: make(chan struct{})}
	q := c.startNIC()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("mpi: Isend after rank shutdown")
	}
	// Count the undelivered transfer before it is visible to the NIC, so
	// a watchdog can never observe "all parked" while delivery is pending.
	c.world.nicBusy.Add(1)
	q.items = append(q.items, nicItem{dst: dst, tag: tag, data: data, req: req})
	q.mu.Unlock()
	q.cond.Signal()
	return req
}

// Irecv posts a non-blocking receive for (src, tag) and returns its
// Request; the message is claimed at Wait or a successful Test. Posted
// receives on one stream complete in posting order.
func (c *Comm) Irecv(src, tag int) *Request {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.checkRank(src)
	k := streamKey{src, tag}
	ticket := c.world.boxes[c.rank].reserve(k)
	return &Request{c: c, peer: src, tag: tag, ticket: ticket}
}

// Wait blocks until the operation completes. For receives it returns the
// payload; for sends it returns nil. Under a world watchdog a Wait stuck
// longer than the timeout aborts with a diagnostic instead of hanging.
func (r *Request) Wait() []float64 {
	if r.send {
		w := r.c.world
		to := w.opts.Watchdog
		if to <= 0 {
			<-r.done
			return nil
		}
		w.blocked.Add(1)
		defer w.blocked.Add(-1)
		last := w.progress.Load()
		strikes := 0
		for {
			select {
			case <-r.done:
				return nil
			case <-time.After(to):
			}
			// The timer and completion can race: re-check done before
			// consulting the stall detector so a finished send never trips
			// the watchdog.
			select {
			case <-r.done:
				return nil
			default:
			}
			var stall bool
			last, stall = w.stalled(last)
			if stall {
				strikes++
			} else {
				strikes = 0
			}
			if strikes >= 2 {
				panic(fmt.Sprintf("watchdog: rank %d blocked in Wait(Isend dst=%d, tag=%d) longer than %v with no global progress — deadlock suspected", r.c.rank, r.peer, r.tag, to))
			}
		}
	}
	data, _ := r.resolveRecv(true)
	return data
}

// resolveRecv claims the receive's ticket (blocking or not), publishes the
// payload and fires completion hooks exactly once.
func (r *Request) resolveRecv(blocking bool) ([]float64, bool) {
	r.resolveMu.Lock()
	defer r.resolveMu.Unlock()
	r.mu.Lock()
	if r.got {
		data := r.data
		r.mu.Unlock()
		return data, true
	}
	r.mu.Unlock()
	k := streamKey{r.peer, r.tag}
	var m Message
	if blocking {
		m = r.c.world.boxes[r.c.rank].takeTicket(k, r.ticket, r.c.world, r.c.rank, "Irecv.Wait")
	} else {
		var ok bool
		if m, ok = r.c.world.boxes[r.c.rank].tryTakeTicket(k, r.ticket); !ok {
			return nil, false
		}
	}
	r.c.world.noteRecv(r.c.rank, len(m.Data))
	r.mu.Lock()
	r.data = m.Data
	r.got = true
	r.mu.Unlock()
	r.fireComplete()
	return m.Data, true
}

// Test reports whether the operation has completed without blocking,
// returning the payload for completed receives.
func (r *Request) Test() ([]float64, bool) {
	if r.send {
		select {
		case <-r.done:
			return nil, true
		default:
			return nil, false
		}
	}
	return r.resolveRecv(false)
}

// Waitall completes every request; nil entries are skipped.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
