package mpi

import (
	"reflect"
	"testing"
)

func TestSendCoreStampRetainResend(t *testing.T) {
	s := NewSendCore(ProtocolRules{})
	for i := 0; i < 3; i++ {
		seq := s.Stamp(7)
		if seq != uint64(i) {
			t.Fatalf("Stamp #%d = %d", i, seq)
		}
		s.Retain(7, seq, nil)
	}
	if s.Stamp(9) != 0 {
		t.Fatalf("fresh tag should stamp from 0")
	}

	// Before any handshake everything transmits.
	if !s.ShouldTransmit(7, 0) {
		t.Fatalf("pre-handshake frame suppressed")
	}

	// Welcome says the peer accepted 2 frames on tag 7.
	s.ObserveWelcome(map[int]uint64{7: 2})
	if s.ShouldTransmit(7, 0) || s.ShouldTransmit(7, 1) {
		t.Fatalf("acknowledged frames not suppressed")
	}
	if !s.ShouldTransmit(7, 2) || !s.ShouldTransmit(7, 3) {
		t.Fatalf("unacknowledged frames suppressed")
	}

	plan := s.ResendPlan()
	if len(plan) != 1 || plan[0].Tag != 7 || plan[0].Seq != 2 {
		t.Fatalf("ResendPlan = %+v, want the single unacknowledged frame (7, 2)", plan)
	}
}

func TestSendCoreMutations(t *testing.T) {
	mk := func(rules ProtocolRules) *SendCore {
		s := NewSendCore(rules)
		s.Retain(0, s.Stamp(0), nil)
		s.Retain(0, s.Stamp(0), nil)
		s.ObserveWelcome(map[int]uint64{0: 1})
		return s
	}

	// Correct protocol: resend from seq 1, suppress only seq 0.
	s := mk(ProtocolRules{})
	if got := s.ResendPlan(); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("baseline ResendPlan = %+v", got)
	}
	if !s.ShouldTransmit(0, 1) {
		t.Fatalf("baseline suppressed an unacknowledged frame")
	}

	// ResendOffByOne drops the first missing frame from the plan.
	if got := mk(ProtocolRules{ResendOffByOne: true}).ResendPlan(); len(got) != 0 {
		t.Fatalf("ResendOffByOne plan = %+v, want empty (the bug)", got)
	}

	// OverSuppress suppresses the first unacknowledged frame.
	if mk(ProtocolRules{OverSuppress: true}).ShouldTransmit(0, 1) {
		t.Fatalf("OverSuppress transmitted seq 1 (should exhibit the bug)")
	}
}

func TestSendCoreSeedAndCounts(t *testing.T) {
	s := NewSendCore(ProtocolRules{})
	s.SeedSent(3, 5)
	if s.Stamp(3) != 5 {
		t.Fatalf("seeded stream did not resume at checkpointed count")
	}
	s.Stamp(1)
	got := s.SentCounts()
	want := []StreamPos{{Tag: 1, Count: 1}, {Tag: 3, Count: 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SentCounts = %+v, want %+v", got, want)
	}

	s.ResetEpoch()
	if s.NextSeq(3) != 0 || len(s.SentCounts()) != 0 || len(s.RetainedFrames()) != 0 {
		t.Fatalf("ResetEpoch did not clear sender state")
	}
	if _, ok := s.PeerCount(3); ok {
		t.Fatalf("ResetEpoch kept handshake state")
	}
}

func TestSendCoreClone(t *testing.T) {
	s := NewSendCore(ProtocolRules{})
	s.Retain(0, s.Stamp(0), nil)
	s.ObserveWelcome(map[int]uint64{0: 1})
	c := s.Clone()
	c.Stamp(0)
	c.ObserveWelcome(map[int]uint64{0: 9})
	c.Retain(0, 1, nil)
	if s.NextSeq(0) != 1 || len(s.RetainedFrames()) != 1 {
		t.Fatalf("mutating clone leaked into original")
	}
	if n, _ := s.PeerCount(0); n != 1 {
		t.Fatalf("clone's welcome leaked into original")
	}
}

func TestRecvCoreVerdicts(t *testing.T) {
	r := NewRecvCore(ProtocolRules{})
	if v := r.Accept(0, 0, 4, 0); v != VerdictAccept {
		t.Fatalf("first frame: %v", v)
	}
	if v := r.Accept(0, 0, 4, 0); v != VerdictDuplicate {
		t.Fatalf("replayed frame: %v", v)
	}
	if v := r.Accept(0, 0, 4, 2); v != VerdictGap {
		t.Fatalf("skipped frame: %v", v)
	}
	if v := r.Accept(1, 2, 4, 1); v != VerdictStale {
		t.Fatalf("dead-epoch frame: %v", v)
	}
	if v := r.Accept(0, 0, 4, 1); v != VerdictAccept {
		t.Fatalf("in-order frame: %v", v)
	}
	if r.Accepted(4) != 2 {
		t.Fatalf("accepted watermark = %d", r.Accepted(4))
	}
	if got := r.WelcomeCounts(); got[4] != 2 {
		t.Fatalf("WelcomeCounts = %v", got)
	}
}

func TestRecvCoreMutations(t *testing.T) {
	// NoDedup accepts a replay without advancing the watermark.
	r := NewRecvCore(ProtocolRules{NoDedup: true})
	r.Accept(0, 0, 0, 0)
	if v := r.Accept(0, 0, 0, 0); v != VerdictAccept {
		t.Fatalf("NoDedup replay: %v, want accept (the bug)", v)
	}
	if r.Accepted(0) != 1 {
		t.Fatalf("NoDedup replay advanced the watermark")
	}

	// NoEpochFilter accepts dead-epoch frames.
	r = NewRecvCore(ProtocolRules{NoEpochFilter: true})
	if v := r.Accept(3, 7, 0, 0); v != VerdictAccept {
		t.Fatalf("NoEpochFilter: %v, want accept (the bug)", v)
	}
}

func TestRecvCoreSeedResetClone(t *testing.T) {
	r := NewRecvCore(ProtocolRules{})
	r.SeedAccepted(2, 4)
	if v := r.Accept(0, 0, 2, 3); v != VerdictDuplicate {
		t.Fatalf("pre-checkpoint frame: %v", v)
	}
	if v := r.Accept(0, 0, 2, 4); v != VerdictAccept {
		t.Fatalf("post-checkpoint frame: %v", v)
	}

	c := r.Clone()
	c.Accept(0, 0, 2, 5)
	if r.Accepted(2) != 5 {
		t.Fatalf("clone mutation leaked into original")
	}

	r.ResetEpoch()
	if r.Accepted(2) != 0 {
		t.Fatalf("ResetEpoch kept watermark")
	}
}

func TestRecvVerdictString(t *testing.T) {
	cases := map[RecvVerdict]string{
		VerdictAccept:    "accept",
		VerdictDuplicate: "duplicate",
		VerdictStale:     "stale",
		VerdictGap:       "gap",
		RecvVerdict(99):  "unknown",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("%d.String() = %q", int(v), v.String())
		}
	}
}

func TestBeatCore(t *testing.T) {
	var b BeatCore
	if !b.Observe(0, false) {
		t.Fatalf("first beacon should be progress")
	}
	if b.Observe(0, false) {
		t.Fatalf("unchanged idle beacon should not be progress")
	}
	if !b.Observe(0, true) {
		t.Fatalf("busy beacon should be progress")
	}
	if !b.Observe(1, false) {
		t.Fatalf("moved counter should be progress")
	}
}
