package mpi

import "time"

// Transport is the runtime's wire seam: everything between a sender's
// completed injection (traffic counters bumped, fault perturbations and
// modelled wire cost paid) and the receiver's mailbox. The default
// channel fabric delivers synchronously in-process; the TCP mesh puts
// real bytes on a socket (see tcp.go) and a process-per-rank deployment
// spans machines with the same interface (cmd/tilerankd).
//
// Contract:
//
//   - Deliver moves one message src→dst. Ownership of data transfers
//     through the transport to the receiving mailbox — the pooled
//     zero-copy buffers of SendOwned/IsendOwned flow through unchanged
//     on the channel fabric, and are marshalled once on wire-backed
//     transports.
//   - Per-(src, dst) FIFO: messages delivered on one directed link
//     arrive in Deliver order, which preserves the per-(src, dst, tag)
//     stream ordering every Recv matcher relies on.
//   - Completion: a transport may return from Deliver before the
//     message reaches the mailbox, but must then report Busy() until it
//     does (or until the frame is irrevocably handed to the OS on a
//     cross-process link) — the deadlock watchdog treats wire activity
//     like nicBusy, never as a stall.
//   - Flush(src) blocks until every frame rank src has delivered is out
//     of the transport's own buffers (arrived in-process, written to
//     the socket cross-process). Checkpointing flushes before taking a
//     snapshot so "sent before the snapshot" is well defined.
//   - Reset returns the transport to its just-constructed state between
//     runs (World.Reset): any in-flight frame from the previous run is
//     quiesced and discarded, never delivered into the next run's
//     mailboxes.
//   - Close releases sockets and goroutines; the channel fabric has
//     nothing to release.
type Transport interface {
	// Attach binds the transport to the world it delivers into; called
	// exactly once, by the World constructor, before any Deliver.
	Attach(w *World)
	Deliver(src, dst, tag int, data []float64)
	Flush(src int)
	Busy() bool
	Reset()
	Close() error
}

// chanFabric is the default in-process transport: Deliver puts the
// message straight into the destination mailbox on the calling
// goroutine, exactly the pre-seam behaviour. It is always quiescent
// (delivery is synchronous), so Flush and Busy are trivial.
type chanFabric struct{ w *World }

func (f *chanFabric) Attach(w *World) { f.w = w }

func (f *chanFabric) Deliver(src, dst, tag int, data []float64) {
	f.w.arrive(src, dst, tag, data)
}

func (f *chanFabric) Flush(int) {}

func (f *chanFabric) Busy() bool { return false }

func (f *chanFabric) Reset() {}

func (f *chanFabric) Close() error { return nil }

// arrive is the receive side of every transport: it stamps the
// delivery time, counts global progress (a delivery is the watchdog's
// strongest liveness signal) and enqueues into the destination mailbox.
func (w *World) arrive(src, dst, tag int, data []float64) {
	w.progress.Add(1)
	w.boxes[dst].put(Message{Source: src, Tag: tag, Delivered: time.Now(), Data: data})
}

// WireKind names a transport family for the seams that construct worlds
// on behalf of callers (exec.RunOptions.Wire, the serve world pool).
type WireKind int

const (
	// WireChannel is the default in-process channel fabric.
	WireChannel WireKind = iota
	// WireTCP is the loopback TCP mesh: every message crosses a real
	// socket with length-prefixed framing and coalesced batched writes.
	WireTCP
)

func (k WireKind) String() string {
	switch k {
	case WireChannel:
		return "channel"
	case WireTCP:
		return "tcp"
	default:
		return "unknown"
	}
}
