package mpi

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameRoundTrip checks the frame codec's central identity: every
// frame kind survives encode → readFrame → decode bit-exactly. Floats
// are compared by bit pattern so NaN payloads and signed zeros count.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), int32(0), uint64(0), []byte(nil))
	f.Add(uint32(1), int32(7), uint64(3), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f})
	f.Add(uint32(9), int32(-2), uint64(1<<40), bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, epoch uint32, tag int32, seq uint64, raw []byte) {
		// raw supplies the payload as bit patterns, 8 bytes per value.
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits |= uint64(raw[8*i+j]) << (8 * j)
			}
			vals[i] = math.Float64frombits(bits)
		}

		enc := encodeDataFrame(epoch, int(tag), seq, vals)
		body, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("readFrame(encodeDataFrame): %v", err)
		}
		df, err := decodeDataFrame(body)
		if err != nil {
			t.Fatalf("decodeDataFrame: %v", err)
		}
		if df.epoch != epoch || df.tag != int(tag) || df.seq != seq || len(df.data) != len(vals) {
			t.Fatalf("data frame header mismatch: %+v", df)
		}
		for i := range vals {
			if math.Float64bits(df.data[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: %x != %x", i, math.Float64bits(df.data[i]), math.Float64bits(vals[i]))
			}
		}

		src, dst := int(tag), int(int32(epoch))
		hs, hd, err := decodeHelloFrame(mustReadFrame(t, encodeHelloFrame(src, dst)))
		if err != nil || hs != src || hd != dst {
			t.Fatalf("hello round trip: (%d, %d, %v)", hs, hd, err)
		}

		counts := map[int]uint64{int(tag): seq, int(tag) + 1: uint64(epoch)}
		got, err := decodeWelcomeFrame(mustReadFrame(t, encodeWelcomeFrame(counts)))
		if err != nil || len(got) != len(counts) {
			t.Fatalf("welcome round trip: %v, %v", got, err)
		}
		for k, v := range counts {
			if got[k] != v {
				t.Fatalf("welcome count[%d] = %d, want %d", k, got[k], v)
			}
		}

		busy := seq%2 == 1
		prog, gbusy, err := decodeHeartbeatFrame(mustReadFrame(t, encodeHeartbeatFrame(seq, busy)))
		if err != nil || prog != seq || gbusy != busy {
			t.Fatalf("heartbeat round trip: (%d, %v, %v)", prog, gbusy, err)
		}

		ep, err := decodeEpochFrame(mustReadFrame(t, encodeEpochFrame(epoch)))
		if err != nil || ep != epoch {
			t.Fatalf("epoch round trip: (%d, %v)", ep, err)
		}
	})
}

func mustReadFrame(t *testing.T, enc []byte) []byte {
	t.Helper()
	body, err := readFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return body
}

// FuzzFrameCorruption feeds arbitrary bytes — and single-byte
// corruptions of valid frames — through readFrame and every decoder.
// The contract under attack: corrupt input must produce an error or a
// bounded, well-formed result, never a panic or an allocation larger
// than the frame that carried it. This is the target that catches the
// uint32-wraparound class in the length checks (8*nvals and 12*n
// overflowing to pass validation against a short body).
func FuzzFrameCorruption(f *testing.F) {
	f.Add([]byte{}, 0, byte(0))
	f.Add(encodeDataFrame(1, 2, 3, []float64{4, 5}), 7, byte(0x80))
	f.Add(encodeWelcomeFrame(map[int]uint64{1: 2}), 9, byte(0xff))
	f.Add(encodeHelloFrame(1, 2), 4, byte(1))
	f.Add(encodeHeartbeatFrame(77, true), 5, byte(0x10))
	f.Add(encodeEpochFrame(3), 8, byte(0x20))
	// Seeds reproducing the wraparound bugs directly: n = 715827883
	// makes 12*n ≡ 4 (mod 2^32); nvals = 536870912 makes 8*nvals ≡ 0.
	f.Add([]byte{9, 0, 0, 0, 3, 0xab, 0xaa, 0xaa, 0x2a, 1, 2, 3, 4}, 0, byte(0))                             // welcome, 4-byte body after count
	f.Add([]byte{21, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x20}, 0, byte(0)) // data, nvals = 2^29
	f.Fuzz(func(t *testing.T, raw []byte, pos int, flip byte) {
		// Flip one byte (fuzz-chosen position and mask) to model
		// corruption of an otherwise valid frame; raw may also already be
		// arbitrary garbage.
		buf := append([]byte(nil), raw...)
		if len(buf) > 0 {
			buf[abs(pos)%len(buf)] ^= flip
		}

		body, err := readFrame(bytes.NewReader(buf))
		if err != nil {
			return // rejected at the framing layer: fine
		}
		if len(body) == 0 || len(body) > maxFrameBody {
			t.Fatalf("readFrame returned out-of-range body (%d bytes)", len(body))
		}
		if df, err := decodeDataFrame(body); err == nil {
			if 8*len(df.data) > len(body) {
				t.Fatalf("decodeDataFrame produced %d values from a %d-byte body", len(df.data), len(body))
			}
		}
		if counts, err := decodeWelcomeFrame(body); err == nil {
			if 12*len(counts) > len(body) {
				t.Fatalf("decodeWelcomeFrame produced %d streams from a %d-byte body", len(counts), len(body))
			}
		}
		_, _, _ = decodeHelloFrame(body)
		_, _, _ = decodeHeartbeatFrame(body)
		_, _ = decodeEpochFrame(body)
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
