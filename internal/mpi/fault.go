package mpi

import (
	"fmt"
	"time"
)

// This file is the runtime's deterministic fault-injection layer. A
// FaultPlan describes perturbations of an otherwise reliable world —
// slow ranks, slow or jittery links, transient send failures, a hard
// rank crash — and every decision the plan makes is a pure function of
// (Seed, link, per-link message sequence number, attempt). Per-link
// message order is fixed by the program (each rank issues its sends from
// one goroutine, and the NIC preserves issue order), so two runs with the
// same plan perturb exactly the same messages by exactly the same
// amounts, no matter how the goroutines interleave. That determinism is
// what lets the chaos tests assert bit-identical results and lets
// internal/simnet predict the degradation of a measured run.
//
// Injection sites: link delay, jitter and transient-failure backoff are
// paid on the sending goroutine (blocking Send) or the rank's NIC
// goroutine (Isend), exactly where Options.LinkLatency is paid. Compute
// slowdown and the crash point are consumed by the executor
// (exec.RunOptions.Faults), which owns the compute phase and the tile
// chain; the runtime carries them so one plan describes the whole run.

// Link identifies a directed rank pair.
type Link struct {
	Src, Dst int
}

// LinkFault is one link's injected wire perturbation: every message on
// the link is delayed by Delay plus a seeded pseudo-random extra in
// [0, Jitter).
type LinkFault struct {
	Delay  time.Duration
	Jitter time.Duration
}

// SendFaults injects transient send failures: each transmission attempt
// fails with probability Rate (decided by the seeded hash, so
// deterministically per message), the sender backs off Backoff·2^k after
// the k-th consecutive failure and retries, and after MaxRetries
// consecutive failures the next attempt is forced to succeed — the
// paper-world analogue of a TCP retransmit storm that eventually gets
// through. Failures happen below the traffic counters: a message is
// counted once, when it is finally delivered, so Stats stay deterministic
// under any Rate.
type SendFaults struct {
	Rate       float64
	MaxRetries int
	Backoff    time.Duration
}

// FaultPlan is a deterministic, seedable fault schedule for one run.
// The zero value injects nothing; a nil plan is always legal.
type FaultPlan struct {
	// Seed drives every pseudo-random decision. Equal seeds (and equal
	// traffic) mean equal faults.
	Seed int64
	// Slowdown multiplies rank r's injected per-point compute cost
	// (exec.RunOptions.PointDelay) by Slowdown[r] — the straggler knob.
	// Factors below 1 are ignored.
	Slowdown map[int]float64
	// Links adds per-link delay and jitter on top of the world's
	// LinkLatency/PerValue wire cost.
	Links map[Link]LinkFault
	// Sends, when non-nil, injects transient send failures on every link.
	Sends *SendFaults
	// Crash[r] = k makes rank r crash when it reaches tile index k of its
	// chain (first incarnation only). The executor simulates the crash:
	// undelivered sends are dropped, and the rank either restarts from its
	// last checkpoint (RunOptions.Checkpoint) or aborts the run.
	Crash map[int]int64
	// RestartDelay models the time a crashed rank needs to come back
	// (reboot, rejoin, restore); the executor sleeps it before restoring.
	RestartDelay time.Duration
}

// splitmix64 is the stateless hash behind every fault decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the plan seed and the decision coordinates into one uniform
// 64-bit value.
func (fp *FaultPlan) mix(parts ...int64) uint64 {
	h := splitmix64(uint64(fp.Seed))
	for _, p := range parts {
		h = splitmix64(h ^ uint64(p))
	}
	return h
}

// frac maps the decision coordinates to a uniform float64 in [0, 1).
func (fp *FaultPlan) frac(parts ...int64) float64 {
	return float64(fp.mix(parts...)>>11) / float64(1<<53)
}

// decision-space tags keep the independent fault classes decorrelated.
const (
	faultTagJitter = iota + 1
	faultTagSendFail
)

// LinkExtraDelay returns the injected extra delay of the seq-th message
// on src→dst: the link's fixed Delay plus its seeded jitter share. Both
// the runtime (which sleeps it) and the simulator (which adds it to the
// modelled arrival) call this, so prediction and measurement perturb the
// same messages identically.
func (fp *FaultPlan) LinkExtraDelay(src, dst int, seq int64) time.Duration {
	if fp == nil || fp.Links == nil {
		return 0
	}
	lf, ok := fp.Links[Link{src, dst}]
	if !ok {
		return 0
	}
	d := lf.Delay
	if lf.Jitter > 0 {
		d += time.Duration(fp.frac(faultTagJitter, int64(src), int64(dst), seq) * float64(lf.Jitter))
	}
	return d
}

// SendBackoffs returns the backoff sleeps the seq-th message on src→dst
// suffers before its transmission finally succeeds: one entry per failed
// attempt, exponentially growing, at most MaxRetries long. The runtime
// sleeps each entry; the simulator sums them.
func (fp *FaultPlan) SendBackoffs(src, dst int, seq int64) []time.Duration {
	if fp == nil || fp.Sends == nil || fp.Sends.Rate <= 0 || fp.Sends.MaxRetries <= 0 {
		return nil
	}
	sf := fp.Sends
	var out []time.Duration
	backoff := sf.Backoff
	for attempt := 0; attempt < sf.MaxRetries; attempt++ {
		if fp.frac(faultTagSendFail, int64(src), int64(dst), seq, int64(attempt)) >= sf.Rate {
			break
		}
		out = append(out, backoff)
		backoff *= 2
	}
	return out
}

// SlowdownOf returns rank's compute slowdown factor (≥ 1).
func (fp *FaultPlan) SlowdownOf(rank int) float64 {
	if fp == nil || fp.Slowdown == nil {
		return 1
	}
	if s, ok := fp.Slowdown[rank]; ok && s > 1 {
		return s
	}
	return 1
}

// CrashTile returns the tile index at which rank crashes, or -1.
func (fp *FaultPlan) CrashTile(rank int) int64 {
	if fp == nil || fp.Crash == nil {
		return -1
	}
	if k, ok := fp.Crash[rank]; ok {
		return k
	}
	return -1
}

// Validate checks the plan for usability.
func (fp *FaultPlan) Validate() error {
	if fp == nil {
		return nil
	}
	if fp.Sends != nil {
		sf := fp.Sends
		if sf.Rate < 0 || sf.Rate > 1 {
			return fmt.Errorf("mpi: FaultPlan send-failure rate %g outside [0,1]", sf.Rate)
		}
		if sf.Rate > 0 && (sf.MaxRetries <= 0 || sf.Backoff <= 0) {
			return fmt.Errorf("mpi: FaultPlan send failures need positive MaxRetries and Backoff")
		}
	}
	for r, k := range fp.Crash {
		if r < 0 || k < 0 {
			return fmt.Errorf("mpi: FaultPlan crash entry rank %d tile %d must be non-negative", r, k)
		}
	}
	return nil
}

// linkSeq hands out the next per-link message sequence number. Only the
// owning rank's send path (its goroutine or its NIC) increments a given
// link, so the sequence mirrors issue order; the atomic keeps mixed or
// collective traffic race-free.
func (w *World) linkSeq(src, dst int) int64 {
	return w.linkSeqs[src*w.size+dst].Add(1) - 1
}

// FaultSleep sleeps d as injected fault time: counted in faultBusy so the
// deadlock watchdog treats it as activity, and as progress on wake. The
// executor uses it for modelled outage time (FaultPlan.RestartDelay).
// Skipped when the world is already tearing down.
func (c *Comm) FaultSleep(d time.Duration) {
	if d <= 0 || c.world.aborted.Load() {
		return
	}
	c.world.faultBusy.Add(1)
	time.Sleep(d)
	c.world.faultBusy.Add(-1)
	c.world.progress.Add(1)
}

// injectSendFaults pays the plan's per-message perturbations for one
// transmission on src→dst: the link's extra delay, then each transient
// failure's backoff. It runs on the sending goroutine (blocking path) or
// the NIC (overlapped path) and counts itself in faultBusy, so the
// deadlock watchdog treats an injected stall as activity, never as a
// hang; every survived retry also counts as global progress. Teardown
// after an abort skips the sleeps so a dying world drains promptly.
func (w *World) injectSendFaults(src, dst int) {
	fp := w.opts.Faults
	if fp == nil {
		return
	}
	seq := w.linkSeq(src, dst)
	delay := fp.LinkExtraDelay(src, dst, seq)
	backoffs := fp.SendBackoffs(src, dst, seq)
	if delay <= 0 && len(backoffs) == 0 {
		return
	}
	w.faultBusy.Add(1)
	defer w.faultBusy.Add(-1)
	if delay > 0 && !w.aborted.Load() {
		time.Sleep(delay)
	}
	for _, b := range backoffs {
		if w.aborted.Load() {
			return
		}
		w.perRank[src].sendRetries.Add(1)
		time.Sleep(b)
		// The retry got through (or is about to): forward progress, even
		// though no message was delivered during the backoff window.
		w.progress.Add(1)
	}
}
