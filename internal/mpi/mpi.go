// Package mpi is an in-process message-passing runtime with MPI-like
// semantics: a fixed-size world of ranks (goroutines), blocking typed
// point-to-point Send/Recv with (source, tag) matching and per-stream FIFO
// ordering, non-blocking Isend/Irecv with completion Requests, barriers
// and the collectives the generated programs use.
//
// It substitutes for the paper's MPI-over-FastEthernet transport (Go has no
// mature MPI binding): the compiled tile programs only rely on ordered
// point-to-point delivery plus a barrier, which this package provides with
// the same semantics. Sends are "eager" (buffered, non-blocking) as in
// MPI's small-message path; timing behaviour is modelled by the simnet
// package, and can additionally be *injected* into this runtime through
// Options.LinkLatency/PerValue so overlap effects become measurable
// in-process (see Options).
package mpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Message is a delivered payload with its envelope.
type Message struct {
	Source int
	Tag    int
	// Delivered is when the runtime placed the message into the receiver's
	// mailbox (after any injected wire cost). Receivers can subtract it
	// from their claim time to measure how long a message sat queued —
	// the tracing layer's send→recv timestamp delta.
	Delivered time.Time
	Data      []float64
}

type streamKey struct {
	src, tag int
}

// stream is one (source, tag) FIFO. Arriving messages get consecutive
// sequence numbers; consumers reserve tickets, and ticket t matches
// exactly the t-th arrived message — so posted receives complete in
// posting order no matter which Wait is called first, as in MPI.
type stream struct {
	nextSeq    uint64             // sequence of the next arriving message
	nextTicket uint64             // next consumer reservation to hand out
	arrived    map[uint64]Message // arrived but unconsumed, by sequence
}

// mailbox is one rank's incoming message store: per-(source, tag) FIFO
// queues guarded by a single condition variable.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[streamKey]*stream
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: map[streamKey]*stream{}}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// streamOf returns (creating if needed) the stream for k; callers hold mu.
func (mb *mailbox) streamOf(k streamKey) *stream {
	s := mb.queues[k]
	if s == nil {
		s = &stream{arrived: map[uint64]Message{}}
		mb.queues[k] = s
	}
	return s
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	s := mb.streamOf(streamKey{m.Source, m.Tag})
	s.arrived[s.nextSeq] = m
	s.nextSeq++
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// reserve allocates the next consumer ticket on a stream.
func (mb *mailbox) reserve(k streamKey) uint64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	s := mb.streamOf(k)
	t := s.nextTicket
	s.nextTicket++
	return t
}

// takeTicket blocks until this ticket's message is available and returns
// it. When the world has a watchdog timeout it panics with a deadlock
// diagnostic instead of waiting forever; when a peer rank has failed it
// panics with a secondary abort so the world can drain.
//
// The watchdog observes *global* progress, not a flat per-call timeout: a
// receiver blocked here while another rank is still running (long compute
// phase), a NIC transfer is in flight, or any message has been delivered
// since the deadline was armed is waiting, not deadlocked, and the
// deadline re-arms. It fires only after two consecutive timeout periods in
// which every live rank sat parked in a blocking wait with nothing
// delivered — which is a genuine communication deadlock.
func (mb *mailbox) takeTicket(k streamKey, ticket uint64, w *World, rank int, op string) Message {
	to := w.opts.Watchdog
	var (
		timer    *time.Timer
		deadline time.Time
		last     uint64
		strikes  int
	)
	if to > 0 {
		last = w.progress.Load()
		deadline = time.Now().Add(to)
		// Wake the waiter when the deadline passes. Locking (and
		// releasing) mu before broadcasting guarantees the waiter is
		// either inside cond.Wait (and receives the broadcast) or has not
		// yet checked the deadline (and will see it expired).
		timer = time.AfterFunc(to, func() {
			mb.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast
			mb.mu.Unlock()
			mb.cond.Broadcast()
		})
		defer timer.Stop()
	}
	w.blocked.Add(1)
	defer w.blocked.Add(-1)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	s := mb.streamOf(k)
	for {
		if w.aborted.Load() {
			panic(abortPanic{fmt.Sprintf("rank %d abandoned %s(src=%d, tag=%d): a peer rank failed", rank, op, k.src, k.tag)})
		}
		if m, ok := s.arrived[ticket]; ok {
			delete(s.arrived, ticket)
			return m
		}
		if to > 0 && !time.Now().Before(deadline) {
			var stall bool
			last, stall = w.stalled(last)
			if stall {
				strikes++
			} else {
				strikes = 0
			}
			if strikes >= 2 {
				panic(fmt.Sprintf("watchdog: rank %d blocked in %s(src=%d, tag=%d) longer than %v with no global progress — deadlock suspected (no matching send)", rank, op, k.src, k.tag, to))
			}
			deadline = time.Now().Add(to)
			timer.Reset(to)
		}
		mb.cond.Wait()
	}
}

// tryTakeTicket is the non-blocking takeTicket.
func (mb *mailbox) tryTakeTicket(k streamKey, ticket uint64) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	s := mb.streamOf(k)
	m, ok := s.arrived[ticket]
	if !ok {
		return Message{}, false
	}
	delete(s.arrived, ticket)
	return m, true
}

// tryTake polls the stream: it claims the next unreserved message, if
// arrived (messages matching outstanding Recv/Irecv reservations are off
// limits — posted receives have priority over polling).
func (mb *mailbox) tryTake(k streamKey) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	s := mb.streamOf(k)
	m, ok := s.arrived[s.nextTicket]
	if !ok {
		return Message{}, false
	}
	delete(s.arrived, s.nextTicket)
	s.nextTicket++
	return m, true
}

// abortPanic marks a secondary failure (a rank torn down because a peer
// already panicked); World.RunE reports the primary diagnostic instead.
type abortPanic struct{ msg string }

func (a abortPanic) String() string { return a.msg }

// Options configures a World beyond its rank count.
type Options struct {
	// Watchdog aborts a Recv or Request.Wait with a diagnostic naming the
	// stuck rank, source and tag, instead of hanging the process on a
	// mis-matched schedule. It is progress-based, not a flat per-call
	// timeout: a wait only trips it after ~2× this duration with no global
	// progress — no message delivered, no NIC transfer in flight, no rank
	// running outside a blocking wait, and no NoteProgress call. A
	// receiver stalled behind a peer's long compute phase therefore waits
	// as long as it takes; only a genuine deadlock (every live rank
	// parked, nothing moving) fires. Zero disables it.
	Watchdog time.Duration
	// LinkLatency and PerValue inject synthetic wire cost: each message
	// costs LinkLatency plus PerValue per float64 carried. A blocking Send
	// pays it on the sending goroutine (the transfer occupies the CPU, as
	// with blocking MPI over TCP); an Isend charges it to the rank's
	// background NIC goroutine so the sender computes on — which is what
	// makes computation–communication overlap measurable in-process.
	// Zero (the default) injects nothing.
	LinkLatency time.Duration
	PerValue    time.Duration
	// Faults, when non-nil, injects the plan's deterministic perturbations
	// (per-link delay/jitter, transient send failures with backoff) into
	// every send path; compute slowdown and crash points are carried for
	// the executor. Injected sleeps count as watchdog activity, never as a
	// stall (see World.stalled), and failed transmissions are retried below
	// the traffic counters so Stats stay deterministic.
	Faults *FaultPlan
}

// RankTraffic is one rank's traffic, both directions.
type RankTraffic struct {
	BlockingSends   int64 // messages sent with Send/collectives
	OverlappedSends int64 // messages sent with Isend
	Values          int64 // float64 values across both
	Recvs           int64 // messages claimed by Recv/Irecv/TryRecv
	ValuesRecvd     int64 // float64 values across claimed messages
	SendRetries     int64 // injected transient send failures survived (Options.Faults)
}

// Stats aggregates per-world traffic counters.
type Stats struct {
	Messages        int64 // point-to-point messages sent (all kinds)
	Values          int64 // float64 values carried by those messages
	BlockingSends   int64 // messages sent on the blocking path
	OverlappedSends int64 // messages sent on the non-blocking (Isend) path
	Recvs           int64 // messages claimed by receivers
	ValuesRecvd     int64 // float64 values claimed by receivers
	SendRetries     int64 // injected transient send failures survived
	PerRank         []RankTraffic
}

// rankCounters is the mutable form of RankTraffic. Every field is
// written only by World methods (deliver, noteRecv, the reset loop and
// the fault injector) so per-rank traffic can never double-count;
// sendstats enforces that ownership statically.
//
//sendstats:owned World
type rankCounters struct {
	blocking    atomic.Int64
	overlapped  atomic.Int64
	values      atomic.Int64
	recvs       atomic.Int64
	valuesRecvd atomic.Int64
	sendRetries atomic.Int64
}

// World is a communicator universe of Size ranks.
type World struct {
	size    int
	opts    Options
	boxes   []*mailbox
	barrier *barrier
	aborted atomic.Bool

	// wire moves delivered messages into destination mailboxes; the
	// default chanFabric does it synchronously in-process (see
	// transport.go, tcp.go).
	wire Transport

	// local[r] reports whether rank r runs in this process. A world
	// constructed by NewWorld/NewWorldOpts/NewWorldTransport hosts every
	// rank (remote == false); NewRemoteWorld hosts a subset and relies
	// on the transport to reach the rest.
	local  []bool
	remote bool

	// failMu/failErr record a transport-surfaced failure (connection
	// loss, lost peer) as the run's primary error.
	failMu  sync.Mutex
	failErr error

	// Global traffic counters, bumped exactly once per message on the
	// send side (World.deliver) — transports must never touch them.
	messages atomic.Int64 //sendstats:owned World
	values   atomic.Int64 //sendstats:owned World
	perRank  []rankCounters

	// Watchdog progress observation (see Options.Watchdog): progress is
	// bumped on every delivery, barrier completion and NoteProgress call;
	// active counts ranks inside their RunE function; blocked counts ranks
	// parked in a blocking wait; nicBusy counts undelivered Isends;
	// faultBusy counts goroutines sleeping inside an injected fault (link
	// delay or retry backoff) so degraded-but-healthy runs never trip the
	// watchdog.
	progress  atomic.Uint64
	active    atomic.Int64
	blocked   atomic.Int64
	nicBusy   atomic.Int64
	faultBusy atomic.Int64

	// linkSeqs[src*size+dst] numbers the messages transmitted on each
	// directed link, in issue order — the coordinate every FaultPlan
	// decision keys on.
	linkSeqs []atomic.Int64
}

// NoteProgress records externally observable forward progress (the
// executor calls it after every completed tile): any watchdog about to
// fire re-arms instead. Deliveries and barrier completions count
// automatically.
func (w *World) NoteProgress() { w.progress.Add(1) }

// stalled implements the watchdog's deadlock test. Given the progress
// counter observed when the deadline was armed, it reports whether the
// world is stalled: no progress since, every live rank parked in a
// blocking wait, and no NIC transfer pending. When progress has occurred
// it returns the fresh counter so the caller re-arms against it.
func (w *World) stalled(last uint64) (uint64, bool) {
	if p := w.progress.Load(); p != last {
		return p, false
	}
	// A goroutine sleeping out an injected fault (link delay, retry
	// backoff) is degraded, not deadlocked — it will wake and deliver.
	if w.nicBusy.Load() > 0 || w.faultBusy.Load() > 0 || w.blocked.Load() < w.active.Load() {
		return last, false
	}
	// Frames still inside the transport (queued for a coalesced write,
	// on the socket, or stalled behind a peer mid-reconnect) are wire
	// activity, exactly like nicBusy — never a stall.
	if w.wire.Busy() {
		return last, false
	}
	return last, true
}

// NewWorld creates a world with the given number of ranks and default
// options (no watchdog, no injected wire cost).
func NewWorld(size int) *World { return NewWorldOpts(size, Options{}) }

// NewWorldOpts creates a world with explicit options.
func NewWorldOpts(size int, opts Options) *World {
	return NewWorldTransport(size, opts, nil)
}

// NewWorldTransport creates a world whose messages move over the given
// transport; nil selects the default in-process channel fabric. All
// ranks run in this process.
func NewWorldTransport(size int, opts Options, tr Transport) *World {
	return newWorld(size, nil, opts, tr)
}

// NewRemoteWorld creates a world of the given global size in which only
// the listed ranks run in this process; the transport (required) carries
// traffic to and from the rest. RunE executes fn once per *local* rank,
// and Stats only count traffic initiated or claimed by local ranks —
// merging per-process Stats reconstructs the global picture because each
// rank's counters live where the rank does.
func NewRemoteWorld(size int, local []int, opts Options, tr Transport) *World {
	if tr == nil {
		panic("mpi: NewRemoteWorld requires a transport")
	}
	if len(local) == 0 {
		panic("mpi: NewRemoteWorld requires at least one local rank")
	}
	return newWorld(size, local, opts, tr)
}

func newWorld(size int, local []int, opts Options, tr Transport) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size %d must be positive", size))
	}
	if err := opts.Faults.Validate(); err != nil {
		panic(err.Error())
	}
	w := &World{size: size, opts: opts, barrier: newBarrier(size)}
	w.local = make([]bool, size)
	if local == nil {
		for i := range w.local {
			w.local[i] = true
		}
	} else {
		w.remote = true
		for _, r := range local {
			if r < 0 || r >= size {
				panic(fmt.Sprintf("mpi: local rank %d outside world of size %d", r, size))
			}
			w.local[r] = true
		}
	}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.perRank = make([]rankCounters, size)
	w.linkSeqs = make([]atomic.Int64, size*size)
	if tr == nil {
		tr = &chanFabric{}
	}
	w.wire = tr
	tr.Attach(w)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// IsLocal reports whether rank r runs in this process.
func (w *World) IsLocal(r int) bool { return w.local[r] }

// Remote reports whether this world hosts only a subset of its ranks,
// with the rest living in peer processes of a shared mesh.
func (w *World) Remote() bool { return w.remote }

// Wire returns the world's transport (the channel fabric by default).
func (w *World) Wire() Transport { return w.wire }

// Close releases the transport's resources (sockets, goroutines). The
// channel fabric holds none; TCP-backed worlds must be closed when they
// leave a pool or go out of scope, or their mesh goroutines leak.
func (w *World) Close() error { return w.wire.Close() }

// Fail records err as the world's primary failure and aborts every
// blocked rank. Transports call it when a link is irrecoverably lost
// (peer process gone past its reconnect window) so RunE reports the
// connection loss rather than a secondary watchdog panic; the
// checkpointed-restart machinery treats it like any other injected
// fault surfaced through the run error.
func (w *World) Fail(err error) {
	if err == nil {
		return
	}
	w.failMu.Lock()
	if w.failErr == nil {
		w.failErr = err
	}
	w.failMu.Unlock()
	w.abort()
}

func (w *World) failure() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// Reset returns the world to its just-constructed state under new
// options, so a pooled World can be reused across runs without paying
// construction again: traffic counters, watchdog progress state, fault
// link-sequence counters, the abort flag, the barrier and every mailbox
// are reinitialized exactly as NewWorldOpts would. A reused world is
// indistinguishable from a fresh one — the exec reuse tests assert
// bit-identical Stats against a cold world.
//
// Reset must only be called between runs: RunE has returned (its rank
// and NIC goroutines are gone by then, even after an abort), and no new
// RunE has started. Calling it while ranks are active panics.
func (w *World) Reset(opts Options) {
	if w.active.Load() != 0 {
		panic("mpi: Reset while ranks are active")
	}
	if err := opts.Faults.Validate(); err != nil {
		panic(err.Error())
	}
	// Quiesce the wire first: any frame still in flight from the
	// previous (possibly aborted) run is drained or discarded before the
	// mailboxes are replaced, so it can never leak into the next run.
	w.wire.Reset()
	w.opts = opts
	w.aborted.Store(false)
	w.failMu.Lock()
	w.failErr = nil
	w.failMu.Unlock()
	w.barrier = newBarrier(w.size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.messages.Store(0)
	w.values.Store(0)
	for i := range w.perRank {
		rc := &w.perRank[i]
		rc.blocking.Store(0)
		rc.overlapped.Store(0)
		rc.values.Store(0)
		rc.recvs.Store(0)
		rc.valuesRecvd.Store(0)
		rc.sendRetries.Store(0)
	}
	w.progress.Store(0)
	w.blocked.Store(0)
	w.nicBusy.Store(0)
	w.faultBusy.Store(0)
	for i := range w.linkSeqs {
		w.linkSeqs[i].Store(0)
	}
}

// Stats returns the cumulative traffic counters.
func (w *World) Stats() Stats {
	st := Stats{
		Messages: w.messages.Load(),
		Values:   w.values.Load(),
		PerRank:  make([]RankTraffic, w.size),
	}
	for i := range w.perRank {
		rc := &w.perRank[i]
		rt := RankTraffic{
			BlockingSends:   rc.blocking.Load(),
			OverlappedSends: rc.overlapped.Load(),
			Values:          rc.values.Load(),
			Recvs:           rc.recvs.Load(),
			ValuesRecvd:     rc.valuesRecvd.Load(),
			SendRetries:     rc.sendRetries.Load(),
		}
		st.PerRank[i] = rt
		st.BlockingSends += rt.BlockingSends
		st.OverlappedSends += rt.OverlappedSends
		st.Recvs += rt.Recvs
		st.ValuesRecvd += rt.ValuesRecvd
		st.SendRetries += rt.SendRetries
	}
	return st
}

// wireDelay is the injected transfer cost for a message of n values.
func (w *World) wireDelay(n int) time.Duration {
	return w.opts.LinkLatency + time.Duration(n)*w.opts.PerValue
}

// deliver counts one message against the sending rank and hands it to
// the transport. Counters are sender-side and transport-independent, so
// Stats compare bit-identically across channel and wire-backed worlds;
// the transport owns everything from here to the destination mailbox
// (see World.arrive).
func (w *World) deliver(src, dst, tag int, data []float64, overlapped bool) {
	w.messages.Add(1)
	w.values.Add(int64(len(data)))
	rc := &w.perRank[src]
	if overlapped {
		rc.overlapped.Add(1)
	} else {
		rc.blocking.Add(1)
	}
	rc.values.Add(int64(len(data)))
	w.wire.Deliver(src, dst, tag, data)
}

// deliverRaw moves a runtime-internal message (message-based barrier)
// through the transport without touching the traffic counters, so
// protocol chatter never perturbs Stats.
func (w *World) deliverRaw(src, dst, tag int, data []float64) {
	w.wire.Deliver(src, dst, tag, data)
}

// noteRecv counts one claimed message against the receiving rank.
func (w *World) noteRecv(rank int, values int) {
	rc := &w.perRank[rank]
	rc.recvs.Add(1)
	rc.valuesRecvd.Add(int64(values))
}

// abort tears the world down after a rank failure: the barrier and every
// blocked mailbox waiter panic with a secondary diagnostic instead of
// deadlocking, so RunE can return the primary one.
func (w *World) abort() {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	w.barrier.poison()
	for _, mb := range w.boxes {
		mb.mu.Lock()
		//lint:ignore SA2001 empty critical section orders the broadcast
		mb.mu.Unlock()
		mb.cond.Broadcast()
	}
}

// RunE executes fn once per rank, each on its own goroutine, and blocks
// until all ranks return. A panic in any rank aborts the world (peers
// blocked in receives or barriers are torn down promptly) and is returned
// as an error, preferring the original diagnostic over secondary
// teardown panics. Outstanding Isends are flushed before RunE returns, so
// Stats are complete.
func (w *World) RunE(fn func(c *Comm)) error {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		if !w.local[r] {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			c := &Comm{world: w, rank: rank}
			defer wg.Done()
			defer c.flushNIC()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					w.abort()
				}
			}()
			w.active.Add(1)
			defer w.active.Add(-1)
			fn(c)
		}(r)
	}
	wg.Wait()
	var secondary error
	for r, p := range panics {
		if p == nil {
			continue
		}
		if _, isAbort := p.(abortPanic); isAbort {
			if secondary == nil {
				secondary = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
			}
			continue
		}
		if ferr := w.failure(); ferr != nil {
			return fmt.Errorf("mpi: transport failure: %w (rank %d: %v)", ferr, r, p)
		}
		return fmt.Errorf("mpi: rank %d panicked: %v", r, p)
	}
	if ferr := w.failure(); ferr != nil {
		return fmt.Errorf("mpi: transport failure: %w", ferr)
	}
	return secondary
}

// Run is RunE for callers that treat rank failures as programming errors:
// it re-raises the collected failure as a panic.
func (w *World) Run(fn func(c *Comm)) {
	if err := w.RunE(fn); err != nil {
		panic(err.Error())
	}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int

	nicMu sync.Mutex
	nic   *nicQueue
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// World returns the world this endpoint belongs to.
func (c *Comm) World() *World { return c.world }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// reserved internal tag space for collectives and runtime protocol.
const (
	tagBcast   = -1000
	tagReduce  = -2000
	tagGather  = -3000
	tagBarrier = -6000
)

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", r, c.world.size))
	}
}

// Send delivers a copy of data to dst with the given tag. It is eager:
// the call returns as soon as the message is enqueued (plus any injected
// wire cost, which the blocking path pays on the caller). Tags must be
// non-negative (negative tags are reserved for collectives).
func (c *Comm) Send(dst, tag int, data []float64) {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float64) {
	c.checkRank(dst)
	buf := make([]float64, len(data))
	copy(buf, data)
	c.world.injectSendFaults(c.rank, dst)
	if d := c.world.wireDelay(len(buf)); d > 0 && !c.world.aborted.Load() {
		time.Sleep(d)
	}
	c.world.deliver(c.rank, dst, tag, buf, false)
}

// SendOwned is Send without the snapshot copy: ownership of data
// transfers through the runtime to the receiver, whose Recv returns the
// very same slice. The caller must not touch data after the call. Pooled
// executors use this to make steady-state communication allocation-free:
// the receiver unpacks the buffer and recycles it into its own send pool.
// Envelope semantics, ordering and Stats are identical to Send.
func (c *Comm) SendOwned(dst, tag int, data []float64) {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.checkRank(dst)
	c.world.injectSendFaults(c.rank, dst)
	if d := c.world.wireDelay(len(data)); d > 0 && !c.world.aborted.Load() {
		time.Sleep(d)
	}
	c.world.deliver(c.rank, dst, tag, data, false)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages on one (src, tag) stream arrive in send
// order; interleaved Recv/Irecv on one stream complete in posting order.
func (c *Comm) Recv(src, tag int) []float64 {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) []float64 {
	return c.recvMsg(src, tag).Data
}

// RecvMsg is Recv returning the full message envelope, including the
// Delivered timestamp the tracing layer uses to split blocked time from
// mailbox queue time. Matching and ordering are identical to Recv.
func (c *Comm) RecvMsg(src, tag int) Message {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	return c.recvMsg(src, tag)
}

func (c *Comm) recvMsg(src, tag int) Message {
	c.checkRank(src)
	mb := c.world.boxes[c.rank]
	k := streamKey{src, tag}
	ticket := mb.reserve(k)
	m := mb.takeTicket(k, ticket, c.world, c.rank, "Recv")
	c.world.noteRecv(c.rank, len(m.Data))
	return m
}

// TryRecv is a non-blocking Recv; ok is false when no matching message is
// queued (or when posted receives on the stream are still pending — they
// have priority).
func (c *Comm) TryRecv(src, tag int) ([]float64, bool) {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.checkRank(src)
	m, ok := c.world.boxes[c.rank].tryTake(streamKey{src, tag})
	if ok {
		c.world.noteRecv(c.rank, len(m.Data))
	}
	return m.Data, ok
}

// SendRecv sends to dst and receives from src in one logical step (safe
// because sends are eager).
func (c *Comm) SendRecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Barrier blocks until all ranks have entered it. A single-process
// world uses the shared-memory counting barrier; a multi-process world
// runs a message-based barrier over the wire (gather-at-0 then
// release), whose protocol frames bypass the traffic counters so Stats
// stay comparable across deployments.
func (c *Comm) Barrier() {
	if c.world.remote {
		c.msgBarrier()
		return
	}
	c.world.barrier.await(c.world)
}

// msgBarrier is the wire barrier: every rank reports to rank 0, which
// releases everyone once all reports are in. Successive barriers need
// no generation numbers — the per-(src, tag) FIFO streams order them.
func (c *Comm) msgBarrier() {
	w := c.world
	if c.rank == 0 {
		for r := 1; r < w.size; r++ {
			c.recvRaw(r, tagBarrier)
		}
		for r := 1; r < w.size; r++ {
			w.deliverRaw(0, r, tagBarrier, nil)
		}
		return
	}
	w.deliverRaw(c.rank, 0, tagBarrier, nil)
	c.recvRaw(0, tagBarrier)
}

// recvRaw is recvMsg for runtime-internal protocol messages: same
// matching, ordering and watchdog behaviour, but no traffic counting.
func (c *Comm) recvRaw(src, tag int) []float64 {
	mb := c.world.boxes[c.rank]
	k := streamKey{src, tag}
	ticket := mb.reserve(k)
	return mb.takeTicket(k, ticket, c.world, c.rank, "Barrier").Data
}

// FlushWire blocks until every message this rank has delivered is out
// of the transport's own buffers (arrived in-process; written to the
// socket cross-process). Checkpointing flushes before a snapshot so
// "sent before the snapshot" is well defined on wire-backed worlds.
func (c *Comm) FlushWire() { c.world.wire.Flush(c.rank) }

// NoteProgress is World.NoteProgress from inside a rank: programs call it
// at natural units of forward progress (the executor calls it once per
// completed tile) so the deadlock watchdog never mistakes a long pipeline
// stage for a hang.
func (c *Comm) NoteProgress() { c.world.NoteProgress() }

// Bcast distributes root's data to every rank and returns each rank's
// copy (root returns a copy of its own input).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	c.checkRank(root)
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagBcast, data)
			}
		}
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	return c.recv(root, tagBcast)
}

// ReduceOp combines two values during reductions.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines elementwise contributions from all ranks at root; other
// ranks return nil.
func (c *Comm) Reduce(root int, op ReduceOp, data []float64) []float64 {
	c.checkRank(root)
	if c.rank != root {
		c.send(root, tagReduce, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		contrib := c.recv(r, tagReduce)
		if len(contrib) != len(acc) {
			panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(contrib), len(acc)))
		}
		for i, v := range contrib {
			acc[i] = op(acc[i], v)
		}
	}
	return acc
}

// Allreduce is Reduce at rank 0 followed by Bcast.
func (c *Comm) Allreduce(op ReduceOp, data []float64) []float64 {
	res := c.Reduce(0, op, data)
	if c.rank != 0 {
		res = nil
	}
	return c.Bcast(0, res)
}

// Gather collects each rank's slice at root, indexed by rank; other ranks
// return nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	c.checkRank(root)
	if c.rank != root {
		c.send(root, tagGather, data)
		return nil
	}
	out := make([][]float64, c.world.size)
	out[root] = make([]float64, len(data))
	copy(out[root], data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		out[r] = c.recv(r, tagGather)
	}
	return out
}

// barrier is a reusable counting barrier with generations.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	size     int
	count    int
	gen      int
	poisoned bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await(w *World) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(abortPanic{"barrier poisoned by a peer rank's panic"})
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		// A completed barrier generation is global progress.
		w.progress.Add(1)
		b.cond.Broadcast()
		return
	}
	// Barrier waiters count as blocked so a watchdog elsewhere can tell
	// "everyone is parked" from "someone is still computing".
	w.blocked.Add(1)
	defer w.blocked.Add(-1)
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic(abortPanic{"barrier poisoned by a peer rank's panic"})
	}
}

// poison unblocks barrier waiters after a rank dies, so RunE can finish
// and report the original panic.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// reserved internal tags for the remaining collectives.
const (
	tagScatter   = -4000
	tagAllgather = -5000
)

// Scatter distributes root's per-rank slices: rank r receives chunks[r].
// Non-root ranks pass nil chunks.
func (c *Comm) Scatter(root int, chunks [][]float64) []float64 {
	c.checkRank(root)
	if c.rank == root {
		if len(chunks) != c.world.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d chunks, got %d", c.world.size, len(chunks)))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagScatter, chunks[r])
			}
		}
		out := make([]float64, len(chunks[root]))
		copy(out, chunks[root])
		return out
	}
	return c.recv(root, tagScatter)
}

// Allgather collects every rank's slice at every rank, indexed by rank.
// Implemented as Gather at rank 0 followed by a flattened Bcast, which is
// all the compiled programs need.
func (c *Comm) Allgather(data []float64) [][]float64 {
	parts := c.Gather(0, data)
	var sizes []float64
	var flat []float64
	if c.rank == 0 {
		for _, p := range parts {
			sizes = append(sizes, float64(len(p)))
			flat = append(flat, p...)
		}
	}
	sizes = c.Bcast(0, sizes)
	flat = c.Bcast(0, flat)
	out := make([][]float64, c.world.size)
	off := 0
	for r := range out {
		n := int(sizes[r])
		out[r] = make([]float64, n)
		copy(out[r], flat[off:off+n])
		off += n
	}
	return out
}

// SendRecvReplace sends buf to dst and overwrites it with the message
// received from src (both with the given tag).
func (c *Comm) SendRecvReplace(dst int, buf []float64, src, tag int) {
	got := c.SendRecv(dst, tag, buf, src, tag)
	copy(buf, got)
}

// StreamPos is one (src, tag) inbound or outbound stream position — the
// unit of the wire-level resume protocol. For inbound streams Count is
// messages consumed; for outbound streams it is messages sent.
type StreamPos struct {
	Src   int
	Tag   int
	Count uint64
}

// StreamCounts snapshots rank's consumed position on every inbound
// stream, sorted for determinism. Together with the transport's sent
// counts it fully describes a rank's communication state at a quiesced
// tile boundary; a relaunched rank process restores it with
// RestoreStreams and the mesh resumes mid-conversation.
func (w *World) StreamCounts(rank int) []StreamPos {
	mb := w.boxes[rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	out := make([]StreamPos, 0, len(mb.queues))
	for k, s := range mb.queues {
		if s.nextTicket == 0 {
			continue
		}
		out = append(out, StreamPos{Src: k.src, Tag: k.tag, Count: s.nextTicket})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// RestoreStreams seeds rank's mailbox stream counters from a snapshot:
// the next arriving message on each listed stream is numbered Count and
// the next Recv claims it. Must be called before any traffic reaches
// the mailbox (fresh world, transport not yet connected).
func (w *World) RestoreStreams(rank int, pos []StreamPos) {
	mb := w.boxes[rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, p := range pos {
		s := mb.streamOf(streamKey{p.Src, p.Tag})
		s.nextSeq = p.Count
		s.nextTicket = p.Count
	}
}
