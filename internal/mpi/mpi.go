// Package mpi is an in-process message-passing runtime with MPI-like
// semantics: a fixed-size world of ranks (goroutines), blocking typed
// point-to-point Send/Recv with (source, tag) matching and per-stream FIFO
// ordering, barriers and the collectives the generated programs use.
//
// It substitutes for the paper's MPI-over-FastEthernet transport (Go has no
// mature MPI binding): the compiled tile programs only rely on ordered
// point-to-point delivery plus a barrier, which this package provides with
// the same semantics. Sends are "eager" (buffered, non-blocking) as in
// MPI's small-message path; timing behaviour is modelled separately by the
// simnet package.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is a delivered payload with its envelope.
type Message struct {
	Source int
	Tag    int
	Data   []float64
}

type streamKey struct {
	src, tag int
}

// mailbox is one rank's incoming message store: per-(source, tag) FIFO
// queues guarded by a single condition variable.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[streamKey][]Message
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: map[streamKey][]Message{}}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	k := streamKey{m.Source, m.Tag}
	mb.queues[k] = append(mb.queues[k], m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) take(src, tag int) Message {
	k := streamKey{src, tag}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queues[k]) == 0 {
		mb.cond.Wait()
	}
	q := mb.queues[k]
	m := q[0]
	mb.queues[k] = q[1:]
	return m
}

func (mb *mailbox) tryTake(src, tag int) (Message, bool) {
	k := streamKey{src, tag}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.queues[k]) == 0 {
		return Message{}, false
	}
	q := mb.queues[k]
	m := q[0]
	mb.queues[k] = q[1:]
	return m, true
}

// Stats aggregates per-world traffic counters.
type Stats struct {
	Messages int64 // point-to-point messages sent
	Values   int64 // float64 values carried by those messages
}

// World is a communicator universe of Size ranks.
type World struct {
	size    int
	boxes   []*mailbox
	barrier *barrier

	messages atomic.Int64
	values   atomic.Int64
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size %d must be positive", size))
	}
	w := &World{size: size, barrier: newBarrier(size)}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the cumulative traffic counters.
func (w *World) Stats() Stats {
	return Stats{Messages: w.messages.Load(), Values: w.values.Load()}
}

// Run executes fn once per rank, each on its own goroutine, and blocks
// until all ranks return. A panic in any rank is re-raised in the caller
// after the others finish.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					// Unblock peers stuck in recv/barrier would require
					// cancellation; panics in well-formed programs are
					// programming errors, so let remaining ranks be
					// abandoned if they deadlock — tests run under the
					// go test timeout.
					w.barrier.poison()
				}
			}()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, p))
		}
	}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// reserved internal tag space for collectives.
const (
	tagBcast  = -1000
	tagReduce = -2000
	tagGather = -3000
)

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", r, c.world.size))
	}
}

// Send delivers a copy of data to dst with the given tag. It is eager:
// the call returns as soon as the message is enqueued. Tags must be
// non-negative (negative tags are reserved for collectives).
func (c *Comm) Send(dst, tag int, data []float64) {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float64) {
	c.checkRank(dst)
	buf := make([]float64, len(data))
	copy(buf, data)
	c.world.messages.Add(1)
	c.world.values.Add(int64(len(data)))
	c.world.boxes[dst].put(Message{Source: c.rank, Tag: tag, Data: buf})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages on one (src, tag) stream arrive in send
// order.
func (c *Comm) Recv(src, tag int) []float64 {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) []float64 {
	c.checkRank(src)
	return c.world.boxes[c.rank].take(src, tag).Data
}

// TryRecv is a non-blocking Recv; ok is false when no matching message is
// queued.
func (c *Comm) TryRecv(src, tag int) ([]float64, bool) {
	if tag < 0 {
		panic("mpi: negative tags are reserved")
	}
	c.checkRank(src)
	m, ok := c.world.boxes[c.rank].tryTake(src, tag)
	return m.Data, ok
}

// SendRecv sends to dst and receives from src in one logical step (safe
// because sends are eager).
func (c *Comm) SendRecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() { c.world.barrier.await() }

// Bcast distributes root's data to every rank and returns each rank's
// copy (root returns a copy of its own input).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	c.checkRank(root)
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagBcast, data)
			}
		}
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	return c.recv(root, tagBcast)
}

// ReduceOp combines two values during reductions.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines elementwise contributions from all ranks at root; other
// ranks return nil.
func (c *Comm) Reduce(root int, op ReduceOp, data []float64) []float64 {
	c.checkRank(root)
	if c.rank != root {
		c.send(root, tagReduce, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		contrib := c.recv(r, tagReduce)
		if len(contrib) != len(acc) {
			panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(contrib), len(acc)))
		}
		for i, v := range contrib {
			acc[i] = op(acc[i], v)
		}
	}
	return acc
}

// Allreduce is Reduce at rank 0 followed by Bcast.
func (c *Comm) Allreduce(op ReduceOp, data []float64) []float64 {
	res := c.Reduce(0, op, data)
	if c.rank != 0 {
		res = nil
	}
	return c.Bcast(0, res)
}

// Gather collects each rank's slice at root, indexed by rank; other ranks
// return nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	c.checkRank(root)
	if c.rank != root {
		c.send(root, tagGather, data)
		return nil
	}
	out := make([][]float64, c.world.size)
	out[root] = make([]float64, len(data))
	copy(out[root], data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		out[r] = c.recv(r, tagGather)
	}
	return out
}

// barrier is a reusable counting barrier with generations.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	size     int
	count    int
	gen      int
	poisoned bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("mpi: barrier poisoned by a peer rank's panic")
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("mpi: barrier poisoned by a peer rank's panic")
	}
}

// poison unblocks barrier waiters after a rank dies, so Run can finish and
// re-raise the original panic.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// reserved internal tags for the remaining collectives.
const (
	tagScatter   = -4000
	tagAllgather = -5000
)

// Scatter distributes root's per-rank slices: rank r receives chunks[r].
// Non-root ranks pass nil chunks.
func (c *Comm) Scatter(root int, chunks [][]float64) []float64 {
	c.checkRank(root)
	if c.rank == root {
		if len(chunks) != c.world.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d chunks, got %d", c.world.size, len(chunks)))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagScatter, chunks[r])
			}
		}
		out := make([]float64, len(chunks[root]))
		copy(out, chunks[root])
		return out
	}
	return c.recv(root, tagScatter)
}

// Allgather collects every rank's slice at every rank, indexed by rank.
// Implemented as Gather at rank 0 followed by a flattened Bcast, which is
// all the compiled programs need.
func (c *Comm) Allgather(data []float64) [][]float64 {
	parts := c.Gather(0, data)
	var sizes []float64
	var flat []float64
	if c.rank == 0 {
		for _, p := range parts {
			sizes = append(sizes, float64(len(p)))
			flat = append(flat, p...)
		}
	}
	sizes = c.Bcast(0, sizes)
	flat = c.Bcast(0, flat)
	out := make([][]float64, c.world.size)
	off := 0
	for r := range out {
		n := int(sizes[r])
		out[r] = make([]float64, n)
		copy(out[r], flat[off:off+n])
		off += n
	}
	return out
}

// SendRecvReplace sends buf to dst and overwrites it with the message
// received from src (both with the given tag).
func (c *Comm) SendRecvReplace(dst int, buf []float64, src, tag int) {
	got := c.SendRecv(dst, tag, buf, src, tag)
	copy(buf, got)
}
