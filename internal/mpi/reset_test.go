package mpi

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// ringTraffic is a fixed deterministic traffic pattern: every rank sends
// r+1 messages to its ring successor, receives from its predecessor, and
// the world finishes with an Allreduce — blocking and overlapped paths
// both exercised.
func ringTraffic(c *Comm) {
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() - 1 + c.Size()) % c.Size()
	for i := 0; i <= c.Rank(); i++ {
		c.Send(next, 7, []float64{float64(c.Rank()), float64(i)})
	}
	req := c.Isend(next, 8, make([]float64, 3+c.Rank()))
	for i := 0; i <= prev; i++ {
		c.Recv(prev, 7)
	}
	c.Recv(prev, 8)
	req.Wait()
	c.Barrier()
	c.Allreduce(OpSum, []float64{1})
}

// TestWorldResetBitIdenticalStats is the pooling seam's contract: a
// world that already ran arbitrary other traffic, once Reset, produces
// Stats bit-identical to a freshly constructed world running the same
// pattern.
func TestWorldResetBitIdenticalStats(t *testing.T) {
	const size = 5
	opts := Options{Watchdog: 2 * time.Second}

	fresh := NewWorldOpts(size, opts)
	if err := fresh.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	want := fresh.Stats()

	reused := NewWorldOpts(size, Options{LinkLatency: 50 * time.Microsecond})
	// Dirty the world with unrelated traffic first.
	if err := reused.RunE(func(c *Comm) {
		c.Bcast(0, make([]float64, 100))
		c.Barrier()
		c.Isend((c.Rank()+2)%size, 3, make([]float64, 11)).Wait()
		c.Recv((c.Rank()-2+size)%size, 3)
	}); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(reused.Stats(), want) {
		t.Fatal("dirty-run stats unexpectedly equal the reference pattern")
	}

	reused.Reset(opts)
	if got := reused.Stats(); !reflect.DeepEqual(got, Stats{PerRank: make([]RankTraffic, size)}) {
		t.Fatalf("Reset left non-zero stats: %+v", got)
	}
	if err := reused.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if got := reused.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reused world stats differ from fresh world:\n got %+v\nwant %+v", got, want)
	}
}

// TestWorldResetAfterAbort proves a world whose previous run died (rank
// panic, poisoned barrier, stranded mailbox messages) is fully usable
// again after Reset.
func TestWorldResetAfterAbort(t *testing.T) {
	const size = 4
	w := NewWorld(size)
	err := w.RunE(func(c *Comm) {
		// Rank 2 sends a message nobody claims, then dies; rank 0 parks in
		// the barrier so teardown has someone to poison.
		if c.Rank() == 2 {
			c.Send(0, 9, []float64{1, 2, 3})
			panic("injected failure")
		}
		c.Barrier()
	})
	if err == nil {
		t.Fatal("expected the injected panic to surface")
	}

	w.Reset(Options{})
	fresh := NewWorld(size)
	if err := fresh.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if err := w.RunE(ringTraffic); err != nil {
		t.Fatalf("reused world after abort: %v", err)
	}
	if got, want := w.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-abort reused world stats differ:\n got %+v\nwant %+v", got, want)
	}
}

// TestWorldResetClearsFaultState proves a fault plan attached to one run
// does not leak into the next: the reused world injects nothing after a
// Reset with clean options, and its link sequence counters restart so a
// re-attached plan perturbs the same messages as on a fresh world.
func TestWorldResetClearsFaultState(t *testing.T) {
	const size = 3
	plan := &FaultPlan{
		Seed:  42,
		Links: map[Link]LinkFault{{Src: 0, Dst: 1}: {Delay: time.Millisecond, Jitter: time.Millisecond}},
		Sends: &SendFaults{Rate: 0.9, MaxRetries: 3, Backoff: time.Microsecond},
	}
	w := NewWorldOpts(size, Options{Faults: plan})
	if err := w.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if w.Stats().SendRetries == 0 {
		t.Fatal("fault plan injected no retries; the test needs a busier plan")
	}

	w.Reset(Options{})
	if err := w.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().SendRetries; got != 0 {
		t.Fatalf("faults leaked across Reset: %d retries injected", got)
	}

	// Re-attach the same plan on the reused world and on a fresh one: the
	// deterministic per-link sequence numbering must restart identically.
	w.Reset(Options{Faults: plan})
	if err := w.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	fresh := NewWorldOpts(size, Options{Faults: plan})
	if err := fresh.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replanned reused world stats differ from fresh:\n got %+v\nwant %+v", got, want)
	}
}

// TestWorldResetWhileActivePanics pins the misuse guard.
func TestWorldResetWhileActivePanics(t *testing.T) {
	w := NewWorld(2)
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- w.RunE(func(c *Comm) {
			if c.Rank() == 0 {
				close(entered)
			}
			<-release
		})
	}()
	<-entered
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset during an active run did not panic")
			}
		}()
		w.Reset(Options{})
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWorldResetValidatesFaults pins that Reset rejects an invalid plan
// exactly like NewWorldOpts.
func TestWorldResetValidatesFaults(t *testing.T) {
	w := NewWorld(2)
	bad := &FaultPlan{Sends: &SendFaults{Rate: 2}}
	defer func() {
		if recover() == nil {
			t.Error("Reset accepted an invalid fault plan")
		}
	}()
	w.Reset(Options{Faults: bad})
	_ = fmt.Sprint(bad)
}
