package mpi

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2)
	var got atomic.Value
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []float64{1, 2, 3})
			reply := c.Recv(1, 8)
			got.Store(reply)
		case 1:
			data := c.Recv(0, 7)
			for i := range data {
				data[i] *= 10
			}
			c.Send(0, 8, data)
		}
	})
	reply := got.Load().([]float64)
	if len(reply) != 3 || reply[0] != 10 || reply[2] != 30 {
		t.Errorf("reply = %v", reply)
	}
	st := w.Stats()
	if st.Messages != 2 || st.Values != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the message
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("received %v, want [42]", got)
			}
		}
	})
}

// TestFIFOOrdering: messages on one (src, tag) stream arrive in send order.
func TestFIFOOrdering(t *testing.T) {
	w := NewWorld(2)
	const n = 200
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := c.Recv(0, 5)[0]; got != float64(i) {
					t.Errorf("message %d arrived as %v", i, got)
					return
				}
			}
		}
	})
}

// TestTagSelectivity: a receive for tag B is not satisfied by a tag-A
// message even if it arrived first.
func TestTagSelectivity(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			if got := c.Recv(0, 2)[0]; got != 2 {
				t.Errorf("tag 2 recv = %v", got)
			}
			if got := c.Recv(0, 1)[0]; got != 1 {
				t.Errorf("tag 1 recv = %v", got)
			}
		}
	})
}

func TestTryRecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			if _, ok := c.TryRecv(1, 0); ok {
				t.Error("TryRecv should find nothing before barrier")
			}
			c.Barrier()
			c.Barrier()
			if got, ok := c.TryRecv(1, 0); !ok || got[0] != 5 {
				t.Errorf("TryRecv after send = %v, %v", got, ok)
			}
		} else {
			c.Barrier()
			c.Send(0, 0, []float64{5})
			c.Barrier()
		}
	})
}

func TestRing(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	sums := make([]float64, p)
	w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		token := c.SendRecv(next, 3, []float64{float64(c.Rank())}, prev, 3)
		sums[c.Rank()] = token[0]
	})
	for r := 0; r < p; r++ {
		want := float64((r - 1 + p) % p)
		if sums[r] != want {
			t.Errorf("rank %d got token %v, want %v", r, sums[r], want)
		}
	}
}

func TestBarrierOrdering(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	var phase1 atomic.Int32
	fail := atomic.Bool{}
	w.Run(func(c *Comm) {
		phase1.Add(1)
		c.Barrier()
		if int(phase1.Load()) != p {
			fail.Store(true)
		}
		c.Barrier()
	})
	if fail.Load() {
		t.Error("some rank passed the barrier before all entered")
	}
}

func TestBcast(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	results := make([][]float64, p)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.14, 2.72}
		}
		results[c.Rank()] = c.Bcast(2, data)
	})
	for r := 0; r < p; r++ {
		if len(results[r]) != 2 || results[r][0] != 3.14 {
			t.Errorf("rank %d bcast = %v", r, results[r])
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	var rootSum []float64
	all := make([][]float64, p)
	w.Run(func(c *Comm) {
		data := []float64{float64(c.Rank()), 1}
		if res := c.Reduce(0, OpSum, data); c.Rank() == 0 {
			rootSum = res
		}
		all[c.Rank()] = c.Allreduce(OpMax, []float64{float64(c.Rank())})
	})
	if rootSum[0] != 0+1+2+3 || rootSum[1] != p {
		t.Errorf("Reduce = %v", rootSum)
	}
	for r := 0; r < p; r++ {
		if all[r][0] != p-1 {
			t.Errorf("Allreduce at rank %d = %v", r, all[r])
		}
	}
}

func TestReduceOps(t *testing.T) {
	if OpSum(2, 3) != 5 || OpMax(2, 3) != 3 || OpMax(4, 3) != 4 || OpMin(2, 3) != 2 || OpMin(4, 3) != 3 {
		t.Error("reduce op mismatch")
	}
}

func TestGather(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	var gathered [][]float64
	w.Run(func(c *Comm) {
		res := c.Gather(1, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 1 {
			gathered = res
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), res)
		}
	})
	for r := 0; r < p; r++ {
		if gathered[r][0] != float64(r*10) {
			t.Errorf("gathered[%d] = %v", r, gathered[r])
		}
	}
}

func TestManyToOneStress(t *testing.T) {
	const p = 8
	const msgs = 100
	w := NewWorld(p)
	var total atomic.Int64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			sum := 0.0
			for src := 1; src < p; src++ {
				for i := 0; i < msgs; i++ {
					sum += c.Recv(src, 9)[0]
				}
			}
			total.Store(int64(sum))
		} else {
			for i := 0; i < msgs; i++ {
				c.Send(0, 9, []float64{1})
			}
		}
	})
	if total.Load() != (p-1)*msgs {
		t.Errorf("total = %d", total.Load())
	}
}

func TestRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run should re-raise rank panic")
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		c.Barrier() // must be poisoned, not deadlock
	})
}

func TestInvalidUsePanics(t *testing.T) {
	w := NewWorld(1)
	cases := map[string]func(c *Comm){
		"negative tag send": func(c *Comm) { c.Send(0, -1, nil) },
		"negative tag recv": func(c *Comm) { c.Recv(0, -5) },
		"bad dst":           func(c *Comm) { c.Send(9, 0, nil) },
		"bad try src":       func(c *Comm) { c.TryRecv(-1, 0) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic (re-raised by Run)", name)
				}
			}()
			w.Run(f)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewWorld(0) should panic")
			}
		}()
		NewWorld(0)
	}()
}

func TestMathSanity(t *testing.T) {
	// Guard against accidental NaN propagation conventions in ops.
	if !math.IsNaN(OpSum(math.NaN(), 1)) {
		t.Error("NaN should propagate through OpSum")
	}
}

func TestScatter(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	got := make([][]float64, p)
	w.Run(func(c *Comm) {
		var chunks [][]float64
		if c.Rank() == 1 {
			chunks = [][]float64{{0}, {10, 11}, {20}, {30, 31, 32}}
		}
		got[c.Rank()] = c.Scatter(1, chunks)
	})
	if got[0][0] != 0 || got[1][1] != 11 || got[3][2] != 32 {
		t.Errorf("Scatter = %v", got)
	}
}

func TestScatterBadChunksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong chunk count")
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Scatter(0, [][]float64{{1}})
		} else {
			// rank 1 would block forever on a correct program; the panic
			// on rank 0 poisons the world before any receive is posted,
			// so keep rank 1 passive.
		}
	})
}

func TestAllgather(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	results := make([][][]float64, p)
	w.Run(func(c *Comm) {
		data := make([]float64, c.Rank()+1) // ragged contributions
		for i := range data {
			data[i] = float64(c.Rank()*10 + i)
		}
		results[c.Rank()] = c.Allgather(data)
	})
	for r := 0; r < p; r++ {
		for src := 0; src < p; src++ {
			if len(results[r][src]) != src+1 || results[r][src][0] != float64(src*10) {
				t.Fatalf("rank %d view of %d = %v", r, src, results[r][src])
			}
		}
	}
}

func TestSendRecvReplace(t *testing.T) {
	const p = 3
	w := NewWorld(p)
	finals := make([]float64, p)
	w.Run(func(c *Comm) {
		buf := []float64{float64(c.Rank())}
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		c.SendRecvReplace(next, buf, prev, 4)
		finals[c.Rank()] = buf[0]
	})
	for r := 0; r < p; r++ {
		if finals[r] != float64((r-1+p)%p) {
			t.Errorf("rank %d buf = %v", r, finals[r])
		}
	}
}
